// Appendix: the paper's third trace. "We observed similar performance
// trends with all the three traces" (Section III) — this bench runs the
// headline comparison on the KTH-like workload (100 processors) to verify
// the claim carries over, and adds a diurnal-arrival sensitivity check.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("Appendix — KTH trace and diurnal-arrival sensitivity",
                "the Section III claim that all three traces agree");

  const auto trace =
      workload::generateTrace(workload::kthConfig(bench::benchJobs(), 42));
  const auto runs = core::compareSchemes(trace, core::ssSchemeSet());
  core::printRunSummaries(std::cout, runs);
  bench::printAvgPanels(runs, "KTH — avg slowdown by category",
                        "KTH — avg turnaround by category");

  // Diurnal sensitivity: the same machine and mix with a strong day/night
  // arrival cycle. The SS-vs-NS ordering must survive burstiness.
  auto cfg = workload::kthConfig(bench::benchJobs(), 43);
  cfg.diurnalAmplitude = 0.7;
  cfg.name = "KTH-diurnal";
  const auto diurnal = workload::generateTrace(cfg);
  const auto diurnalRuns =
      core::compareSchemes(diurnal, core::worstCaseSchemeSet());
  core::printHeading(std::cout,
                     "diurnal arrivals (amplitude 0.7) — summaries");
  core::printRunSummaries(std::cout, diurnalRuns);
  core::printFigurePanels(std::cout,
                          "diurnal — avg slowdown by category", diurnalRuns,
                          metrics::Metric::AvgSlowdown);
  return 0;
}
