// Shared plumbing for the experiment harnesses: the paper's two standard
// workloads at bench scale, and output helpers.
//
// Every bench accepts the environment variable SPS_BENCH_JOBS to scale the
// trace (default 8000 jobs — large enough that end effects are small, small
// enough that every bench finishes in seconds).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/simulation.hpp"
#include "metrics/report.hpp"
#include "workload/estimate_model.hpp"
#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"

namespace sps::bench {

inline std::size_t benchJobs() {
  if (const char* env = std::getenv("SPS_BENCH_JOBS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 8000;
}

inline workload::Trace ctcTrace() {
  return workload::generateTrace(workload::ctcConfig(benchJobs(), 42));
}

inline workload::Trace sdscTrace() {
  return workload::generateTrace(workload::sdscConfig(benchJobs(), 42));
}

inline void banner(const std::string& title, const std::string& paperRef) {
  std::cout << "============================================================\n"
            << title << "\n"
            << "(reproduces " << paperRef << " of Kettimuthu et al., "
            << "\"Selective Preemption Strategies for Parallel Job "
               "Scheduling\")\n"
            << "============================================================\n";
}

/// Both paper metrics for one scheme line-up, all four run classes.
inline void printAvgPanels(const std::vector<metrics::RunStats>& runs,
                           const std::string& figSlowdown,
                           const std::string& figTat,
                           metrics::EstimateFilter filter =
                               metrics::EstimateFilter::All) {
  core::printFigurePanels(std::cout, figSlowdown, runs,
                          metrics::Metric::AvgSlowdown, filter);
  core::printFigurePanels(std::cout, figTat, runs,
                          metrics::Metric::AvgTurnaround, filter);
}

inline void printWorstPanels(const std::vector<metrics::RunStats>& runs,
                             const std::string& figSlowdown,
                             const std::string& figTat) {
  core::printFigurePanels(std::cout, figSlowdown, runs,
                          metrics::Metric::WorstSlowdown);
  core::printFigurePanels(std::cout, figTat, runs,
                          metrics::Metric::WorstTurnaround);
}

}  // namespace sps::bench
