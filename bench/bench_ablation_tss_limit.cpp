// Ablation (design decision ◆4 in DESIGN.md): the TSS limit multiplier.
// The paper fixes the victim-protection limit at 1.5 x the category's NS
// average slowdown; this sweep shows the worst-case/average trade-off as the
// multiplier moves.
#include "bench_common.hpp"

#include "util/table.hpp"

int main() {
  using namespace sps;
  bench::banner("Ablation — TSS limit multiplier sweep",
                "Section IV-E design choice (limit = m x NS category avg)");
  const auto trace = bench::sdscTrace();

  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  const auto nsStats = core::runSimulation(trace, ns);

  Table t({"multiplier", "avg slowdown", "worst slowdown (L+VL rows)",
           "suspensions"});
  for (double m : {1.0, 1.25, 1.5, 2.0, 3.0, 1e9}) {
    core::PolicySpec tss;
    tss.kind = core::PolicyKind::SelectiveSuspension;
    tss.ss.tssLimits = metrics::tssLimits(nsStats.jobs, m);
    tss.label = m >= 1e9 ? "plain SS" : "TSS m=" + formatFixed(m, 2);
    const auto stats = core::runSimulation(trace, tss);
    const auto cat = metrics::categorize16(stats.jobs);
    double worstLong = 0;
    for (std::size_t c = 8; c < 16; ++c)
      worstLong = std::max(worstLong, cat[c].worstSlowdown());
    t.row()
        .cell(m >= 1e9 ? "inf (plain SS)" : formatFixed(m, 2))
        .cell(stats.meanBoundedSlowdown(), 2)
        .cell(worstLong, 2)
        .cell(static_cast<std::int64_t>(stats.suspensions));
  }
  t.printAscii(std::cout);
  std::cout << "\nNS reference: avg slowdown "
            << formatFixed(nsStats.meanBoundedSlowdown(), 2) << "\n";
  return 0;
}
