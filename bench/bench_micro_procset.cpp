// google-benchmark microbenchmarks of ProcSet and Machine primitives — the
// inner loop of every preemption pass.
#include <benchmark/benchmark.h>

#include "sim/machine.hpp"
#include "sim/procset.hpp"
#include "util/rng.hpp"

namespace {

using namespace sps;
using sim::Machine;
using sim::ProcSet;

ProcSet randomSet(Rng& rng, int bits) {
  ProcSet s;
  for (int i = 0; i < bits; ++i)
    s.insert(static_cast<std::uint32_t>(rng.uniformInt(0, 1023)));
  return s;
}

void BM_ProcSetOps(benchmark::State& state) {
  Rng rng(1);
  const ProcSet a = randomSet(rng, 128);
  const ProcSet b = randomSet(rng, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a & b);
    benchmark::DoNotOptimize(a | b);
    benchmark::DoNotOptimize(a - b);
    benchmark::DoNotOptimize(a.intersects(b));
    benchmark::DoNotOptimize(a.count());
  }
}
BENCHMARK(BM_ProcSetOps);

void BM_ProcSetLowest(benchmark::State& state) {
  Rng rng(2);
  const ProcSet a = randomSet(rng, static_cast<int>(state.range(0)));
  const std::uint32_t k = a.count() / 2;
  for (auto _ : state) benchmark::DoNotOptimize(a.lowest(k));
}
BENCHMARK(BM_ProcSetLowest)->Arg(32)->Arg(256)->Arg(1024);

// Large-set (windowed) mode: the same algebra with members spread over a
// 100k-processor machine, pricing the dynamic window against the inline
// fast path above.
ProcSet randomWideSet(Rng& rng, int bits) {
  ProcSet s;
  for (int i = 0; i < bits; ++i)
    s.insert(static_cast<std::uint32_t>(rng.uniformInt(0, 99'999)));
  return s;
}

void BM_ProcSetOpsWide(benchmark::State& state) {
  Rng rng(4);
  const ProcSet a = randomWideSet(rng, 128);
  const ProcSet b = randomWideSet(rng, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a & b);
    benchmark::DoNotOptimize(a | b);
    benchmark::DoNotOptimize(a - b);
    benchmark::DoNotOptimize(a.intersects(b));
    benchmark::DoNotOptimize(a.count());
  }
}
BENCHMARK(BM_ProcSetOpsWide);

void BM_MachineAllocateRelease100k(benchmark::State& state) {
  Machine m(100'000);
  Time now = 0;
  for (auto _ : state) {
    ++now;
    const ProcSet a = m.allocate(512, now);
    const ProcSet b = m.allocate(8192, now);
    m.release(a, now);
    m.release(b, now);
  }
}
BENCHMARK(BM_MachineAllocateRelease100k);

void BM_MachineAllocateRelease(benchmark::State& state) {
  Machine m(430);
  Time now = 0;
  for (auto _ : state) {
    ++now;
    const ProcSet a = m.allocate(64, now);
    const ProcSet b = m.allocate(128, now);
    m.release(a, now);
    m.release(b, now);
  }
}
BENCHMARK(BM_MachineAllocateRelease);

void BM_MachineAllocateAvoiding(benchmark::State& state) {
  Machine m(430);
  Rng rng(3);
  const ProcSet avoid = randomSet(rng, 64) & ProcSet::firstN(430);
  Time now = 0;
  for (auto _ : state) {
    ++now;
    const ProcSet a = m.allocateAvoiding(64, avoid, now);
    m.release(a, now);
  }
}
BENCHMARK(BM_MachineAllocateAvoiding);

}  // namespace

BENCHMARK_MAIN();
