// google-benchmark microbenchmarks of the discrete-event engine (event
// queue + whole-simulation throughput), plus the scheduling-kernel sweep:
// every backfilling policy on a high-load SDSC trace under both
// KernelMode::Incremental and KernelMode::Rebuild, with events/sec and
// wall time written to BENCH_engine.json. The Rebuild lane is the
// pre-kernel per-event-reconstruction behaviour, so the per-policy speedup
// column is the before/after number for the incremental kernel.
//
// `ctest -L perf-smoke` (the golden-equivalence suite) is the gate that
// makes these speedups meaningful: both lanes produce bit-identical
// schedules, so the comparison is pure engine cost.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "check/check_config.hpp"
#include "core/scheduler_service.hpp"
#include "core/simulation.hpp"
#include "fed/federation.hpp"
#include "fed/router.hpp"
#include "metrics/json.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace sps;
using sched::kernel::KernelMode;

template <sim::QueueKind Kind>
void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<Time> times(n);
  for (auto& t : times) t = rng.uniformInt(0, 1000000);
  for (auto _ : state) {
    sim::EventQueue q(Kind);
    for (std::size_t i = 0; i < n; ++i)
      q.push(times[i], sim::EventType::Timer, i);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop<sim::QueueKind::BinaryHeap>)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);
BENCHMARK(BM_EventQueuePushPop<sim::QueueKind::Calendar>)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

template <core::PolicyKind Kind>
void BM_Simulation(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const auto trace = workload::generateTrace(workload::sdscConfig(jobs, 7));
  core::PolicySpec spec;
  spec.kind = Kind;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::runSimulation(trace, spec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
  state.SetLabel("jobs/s");
}
BENCHMARK(BM_Simulation<core::PolicyKind::Fcfs>)->Arg(2000);
BENCHMARK(BM_Simulation<core::PolicyKind::Conservative>)->Arg(2000);
BENCHMARK(BM_Simulation<core::PolicyKind::Easy>)->Arg(2000);
BENCHMARK(BM_Simulation<core::PolicyKind::SelectiveSuspension>)->Arg(2000);
BENCHMARK(BM_Simulation<core::PolicyKind::ImmediateService>)->Arg(2000);

// --- scheduling-kernel sweep -----------------------------------------------

struct Lane {
  double wallSeconds = 0.0;
  double eventsPerSec = 0.0;
  std::uint64_t events = 0;
  obs::Counters counters;  ///< identical across repeats (deterministic)
};

Lane timeLane(const workload::Trace& trace, const core::PolicySpec& spec,
              int repeats, const core::SimulationOptions& options = {}) {
  Lane best;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const metrics::RunStats stats = core::runSimulation(trace, spec, options);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || wall < best.wallSeconds) {
      best.wallSeconds = wall;
      best.events = stats.eventsProcessed;
      best.eventsPerSec = static_cast<double>(stats.eventsProcessed) / wall;
      best.counters = stats.counters;
    }
  }
  return best;
}

std::size_t sweepJobs() {
  if (const char* env = std::getenv("SPS_BENCH_JOBS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 8000;
}

void runKernelSweep() {
  if (obs::kTraceCompiledIn) {
    // A -DSPS_TRACE=ON build carries per-event trace branches in the hot
    // path; numbers from it are not comparable to (and must not overwrite)
    // the reference BENCH_engine.json. Counters alone are part of the
    // measured configuration and stay in.
    std::cout << "kernel sweep: skipped — tracing compiled in "
                 "(SPS_TRACE=ON); refusing to write BENCH_engine.json\n";
    return;
  }
  const std::size_t jobs = sweepJobs();
  const int repeats = 3;
  // High-load SDSC: the regime where the availability profile is largest
  // (long queues, deep reservation sets) and per-event rebuilds hurt most.
  auto config = workload::sdscConfig(jobs, 42);
  config.offeredLoad = 0.95;
  const auto trace = workload::generateTrace(config);

  std::vector<std::pair<const char*, core::PolicySpec>> policies;
  core::PolicySpec spec;
  // FCFS uses no kernel structures; its lane measures the raw event-engine
  // floor the other speedups are bounded by.
  spec = {};
  spec.kind = core::PolicyKind::Fcfs;
  policies.emplace_back("fcfs", spec);
  spec = {};
  spec.kind = core::PolicyKind::Conservative;
  policies.emplace_back("conservative", spec);
  spec = {};
  spec.kind = core::PolicyKind::Easy;
  policies.emplace_back("easy", spec);
  spec = {};
  spec.kind = core::PolicyKind::Easy;
  spec.easy.order = sched::QueueOrder::ShortestFirst;
  policies.emplace_back("sjf-bf", spec);
  spec = {};
  spec.kind = core::PolicyKind::DepthBackfill;
  spec.depth.depth = sched::kUnlimitedDepth;
  policies.emplace_back("depth-inf", spec);
  spec = {};
  spec.kind = core::PolicyKind::SelectiveSuspension;
  policies.emplace_back("ss", spec);
  spec = {};
  spec.kind = core::PolicyKind::SelectiveSuspension;
  spec.ss.tssOnlineMultiplier = 1.5;
  policies.emplace_back("tss-online", spec);
  spec = {};
  spec.kind = core::PolicyKind::ImmediateService;
  policies.emplace_back("is", spec);

  std::ofstream out("BENCH_engine.json");
  metrics::JsonWriter w(out);
  w.beginObject();
  w.field("bench", "engine_kernel_sweep");
  w.key("trace").beginObject();
  w.field("kind", "sdsc");
  w.field("jobs", static_cast<std::uint64_t>(jobs));
  w.field("seed", static_cast<std::uint64_t>(42));
  w.field("offeredLoad", config.offeredLoad);
  w.endObject();
  w.field("repeats", static_cast<std::int64_t>(repeats));
  w.key("policies").beginArray();

  std::cout << "kernel sweep: sdsc jobs=" << jobs
            << " load=" << config.offeredLoad << " (best of " << repeats
            << ")\n";
  // The sps::check oracle lane: everything armed at the default stride.
  // Its overhead vs the unchecked incremental lane is the cost of --check.
  core::SimulationOptions checked;
  checked.check = check::CheckConfig::all();
  // The telemetry lane: timeline sampling at the default stride on the
  // incremental kernel. Its overhead vs the plain incremental lane is the
  // cost of --timeline; the acceptance bound is <= 5%.
  core::SimulationOptions sampled;
  sampled.timeline.enabled = true;
  // The rebuild lane is the pre-redesign configuration end to end: reference
  // kernel structure AND the binary-heap event queue. Incremental lanes run
  // the calendar queue (the default), so the speedup column prices the full
  // hot-path overhaul, with golden equivalence pinning both axes at once.
  core::SimulationOptions rebuildOptions;
  rebuildOptions.sim.queueKind = sim::QueueKind::BinaryHeap;

  for (const auto& [label, policySpec] : policies) {
    const Lane reb =
        timeLane(trace, sched::withKernelMode(policySpec, KernelMode::Rebuild),
                 repeats, rebuildOptions);
    const Lane inc = timeLane(
        trace, sched::withKernelMode(policySpec, KernelMode::Incremental),
        repeats);
    const Lane chk = timeLane(
        trace, sched::withKernelMode(policySpec, KernelMode::Incremental),
        repeats, checked);
    const Lane tl = timeLane(
        trace, sched::withKernelMode(policySpec, KernelMode::Incremental),
        repeats, sampled);
    const double speedup = inc.eventsPerSec / reb.eventsPerSec;
    const double checkOverhead = inc.eventsPerSec / chk.eventsPerSec;
    const double timelineOverhead = inc.eventsPerSec / tl.eventsPerSec;
    w.beginObject();
    w.field("policy", label);
    w.key("rebuild").beginObject();
    w.field("wallSeconds", reb.wallSeconds);
    w.field("eventsPerSec", reb.eventsPerSec);
    w.field("events", reb.events);
    w.key("counters");
    metrics::writeCountersJson(w, reb.counters);
    w.endObject();
    w.key("incremental").beginObject();
    w.field("wallSeconds", inc.wallSeconds);
    w.field("eventsPerSec", inc.eventsPerSec);
    w.field("events", inc.events);
    w.key("counters");
    metrics::writeCountersJson(w, inc.counters);
    w.endObject();
    w.key("checked").beginObject();
    w.field("wallSeconds", chk.wallSeconds);
    w.field("eventsPerSec", chk.eventsPerSec);
    w.field("auditStride",
            static_cast<std::uint64_t>(checked.check.auditStride));
    w.field("overheadFactor", checkOverhead);
    w.endObject();
    w.key("timeline").beginObject();
    w.field("wallSeconds", tl.wallSeconds);
    w.field("eventsPerSec", tl.eventsPerSec);
    w.field("samples", tl.counters.value(obs::Counter::TimelineSamples));
    w.field("decimations",
            tl.counters.value(obs::Counter::TimelineDecimations));
    w.field("overheadFactor", timelineOverhead);
    w.endObject();
    w.field("speedup", speedup);
    w.endObject();
    std::cout << "  " << label << ": rebuild " << reb.eventsPerSec
              << " ev/s, incremental " << inc.eventsPerSec << " ev/s ("
              << speedup << "x), checked " << chk.eventsPerSec << " ev/s ("
              << checkOverhead << "x overhead), timeline " << tl.eventsPerSec
              << " ev/s (" << timelineOverhead << "x overhead)\n";
  }
  // Large-machine lanes: the scale-out configurations ROADMAP item 2 asks
  // for, riding the same policies array so perf_guard covers them like any
  // other lane. SDSC mix re-targeted at 16k and 100k processors (width
  // bands scale proportionally); fewer jobs than the paper-scale sweep so
  // the sweep's wall time stays bounded — events/s is per-lane comparable
  // against its own baseline, which is all the guard checks.
  struct BigLane {
    const char* label;
    std::uint32_t procs;
  };
  constexpr BigLane bigLanes[] = {{"16k", 16'384}, {"100k", 100'000}};
  for (const BigLane& big : bigLanes) {
    auto bigConfig =
        workload::scaledToMachine(workload::sdscConfig(jobs / 2, 42),
                                  big.procs);
    bigConfig.offeredLoad = 0.95;
    const auto bigTrace = workload::generateTrace(bigConfig);
    for (const char* policyLabel : {"fcfs", "ss"}) {
      core::PolicySpec bigSpec;
      bigSpec.kind = policyLabel[0] == 'f'
                         ? core::PolicyKind::Fcfs
                         : core::PolicyKind::SelectiveSuspension;
      const Lane inc = timeLane(
          bigTrace, sched::withKernelMode(bigSpec, KernelMode::Incremental),
          repeats);
      const std::string label = std::string(policyLabel) + "@" + big.label;
      w.beginObject();
      w.field("policy", label);
      w.field("lane", "large-machine");
      w.field("machineProcs", static_cast<std::uint64_t>(big.procs));
      w.field("jobs", static_cast<std::uint64_t>(bigTrace.jobs.size()));
      w.key("incremental").beginObject();
      w.field("wallSeconds", inc.wallSeconds);
      w.field("eventsPerSec", inc.eventsPerSec);
      w.field("events", inc.events);
      w.endObject();
      w.endObject();
      std::cout << "  " << label << ": incremental " << inc.eventsPerSec
                << " ev/s (" << bigTrace.jobs.size() << " jobs, "
                << big.procs << " procs)\n";
    }
  }
  // Service-ingest lane: the same sweep trace pushed through the
  // SchedulerService line protocol (parse + bounded-lookahead advance +
  // streamed submit) instead of a pre-built Trace, pricing the online
  // scheduler-service mode end to end. Golden equivalence guarantees the
  // schedule is bit-identical to the batch lanes, so the gap to the `easy`
  // incremental lane is pure ingest-boundary cost. Rides the policies
  // array so perf_guard prices it like any other lane.
  {
    std::string script;
    script.reserve(trace.jobs.size() * 32);
    for (const workload::Job& job : trace.jobs) {
      script += "submit " + std::to_string(job.submit) + ' ' +
                std::to_string(job.procs) + ' ' + std::to_string(job.runtime) +
                ' ' + std::to_string(job.estimate) + ' ' +
                std::to_string(job.memoryMb) + '\n';
    }
    script += "drain\n";
    Lane lane;
    for (int r = 0; r < repeats; ++r) {
      core::ServiceConfig cfg;
      cfg.traceName = "service-ingest";
      cfg.machineProcs = trace.machineProcs;
      cfg.spec.kind = core::PolicyKind::Easy;
      core::SchedulerService service(std::move(cfg));
      const auto t0 = std::chrono::steady_clock::now();
      std::size_t pos = 0;
      while (pos < script.size()) {
        const std::size_t eol = script.find('\n', pos);
        benchmark::DoNotOptimize(
            service.processLine({script.data() + pos, eol - pos}));
        pos = eol + 1;
      }
      const metrics::RunStats stats = service.finish();
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (r == 0 || wall < lane.wallSeconds) {
        lane.wallSeconds = wall;
        lane.events = stats.eventsProcessed;
        lane.eventsPerSec = static_cast<double>(stats.eventsProcessed) / wall;
      }
    }
    w.beginObject();
    w.field("policy", "service-ingest");
    w.field("lane", "service");
    w.field("jobs", static_cast<std::uint64_t>(trace.jobs.size()));
    w.key("incremental").beginObject();
    w.field("wallSeconds", lane.wallSeconds);
    w.field("eventsPerSec", lane.eventsPerSec);
    w.field("events", lane.events);
    w.endObject();
    w.endObject();
    std::cout << "  service-ingest: " << lane.eventsPerSec << " ev/s ("
              << trace.jobs.size() << " protocol submissions, easy)\n";
  }
  // Fleet lane: the federated simulator at 10M jobs (scaled by
  // SPS_BENCH_JOBS like every other lane: jobs x 1250, so the default 8000
  // sweep prices the acceptance-scale run). Two configurations over the
  // SAME fleet workload: 4 clusters x 128 procs under conservative epochs,
  // and the monolithic control — one 4x-wide machine swallowing the whole
  // stream. Equal work, equal total capacity; the gap is partitioning's
  // algorithmic win (shorter per-shard queues, narrower ProcSets, smaller
  // backfill scans), not thread parallelism — fleetSpeedup is wall/wall on
  // however many cores the host gives. Single repeat: the lanes are long
  // and deterministic.
  {
    const std::size_t fleetJobs = jobs * 1250;
    constexpr std::uint32_t kClusters = 4;
    auto clusterCfg = workload::sdscConfig(fleetJobs, 42);
    clusterCfg.offeredLoad = 0.95;
    const auto fleetTrace = workload::generateFleetTrace(clusterCfg, kClusters);

    core::PolicySpec fleetSpec;
    fleetSpec.kind = core::PolicyKind::Easy;
    fleetSpec = sched::withKernelMode(fleetSpec, KernelMode::Incremental);

    Lane fedLane;
    std::uint64_t epochs = 0;
    {
      fed::StaticHashRouter router;
      fed::FederationConfig cfg;
      cfg.shards = kClusters;
      fed::Federation federation(fleetTrace, fleetSpec, router, cfg);
      const auto t0 = std::chrono::steady_clock::now();
      const fed::FleetStats fleet = federation.run();
      fedLane.wallSeconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      fedLane.events = fleet.eventsProcessed();
      fedLane.eventsPerSec =
          static_cast<double>(fedLane.events) / fedLane.wallSeconds;
      epochs = fleet.epochs;
    }

    workload::Trace mono = fleetTrace;
    mono.machineProcs = fleetTrace.machineProcs * kClusters;
    mono.name += "/mono";
    const Lane single = timeLane(mono, fleetSpec, 1);
    const double fleetSpeedup = single.wallSeconds / fedLane.wallSeconds;

    w.beginObject();
    w.field("policy", "fleet@4x128");
    w.field("lane", "fleet");
    w.field("jobs", static_cast<std::uint64_t>(fleetTrace.jobs.size()));
    w.field("shards", static_cast<std::uint64_t>(kClusters));
    w.field("epochs", epochs);
    w.key("incremental").beginObject();
    w.field("wallSeconds", fedLane.wallSeconds);
    w.field("eventsPerSec", fedLane.eventsPerSec);
    w.field("events", fedLane.events);
    w.endObject();
    w.field("fleetSpeedup", fleetSpeedup);
    w.endObject();
    w.beginObject();
    w.field("policy", "fleet@1x512");
    w.field("lane", "fleet");
    w.field("jobs", static_cast<std::uint64_t>(mono.jobs.size()));
    w.key("incremental").beginObject();
    w.field("wallSeconds", single.wallSeconds);
    w.field("eventsPerSec", single.eventsPerSec);
    w.field("events", single.events);
    w.endObject();
    w.endObject();
    std::cout << "  fleet@4x128: " << fedLane.eventsPerSec << " ev/s in "
              << fedLane.wallSeconds << "s (" << epochs
              << " epochs); fleet@1x512 control " << single.eventsPerSec
              << " ev/s in " << single.wallSeconds << "s — partition speedup "
              << fleetSpeedup << "x\n";
  }
  w.endArray();
  w.endObject();
  out << "\n";
  std::cout << "wrote BENCH_engine.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  runKernelSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
