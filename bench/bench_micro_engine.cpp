// google-benchmark microbenchmarks of the discrete-event engine: event queue
// throughput and whole-simulation throughput per scheduler.
#include <benchmark/benchmark.h>

#include "core/simulation.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace sps;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<Time> times(n);
  for (auto& t : times) t = rng.uniformInt(0, 1000000);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i)
      q.push(times[i], sim::EventType::Timer, i);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000)->Arg(100000);

template <core::PolicyKind Kind>
void BM_Simulation(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const auto trace = workload::generateTrace(workload::sdscConfig(jobs, 7));
  core::PolicySpec spec;
  spec.kind = Kind;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::runSimulation(trace, spec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
  state.SetLabel("jobs/s");
}
BENCHMARK(BM_Simulation<core::PolicyKind::Fcfs>)->Arg(2000);
BENCHMARK(BM_Simulation<core::PolicyKind::Conservative>)->Arg(2000);
BENCHMARK(BM_Simulation<core::PolicyKind::Easy>)->Arg(2000);
BENCHMARK(BM_Simulation<core::PolicyKind::SelectiveSuspension>)->Arg(2000);
BENCHMARK(BM_Simulation<core::PolicyKind::ImmediateService>)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
