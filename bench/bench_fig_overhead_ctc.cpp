// Reproduces Figs. 31 and 32: the effect of suspension/restart overhead
// (Section V-A) — TSS(SF=2) with and without the disk-swap overhead model
// (2 MB/s per processor, memory U[100 MB, 1 GB]) vs NS vs IS, CTC trace,
// modal estimates (the paper models overhead on top of Section V).
#include "bench_common.hpp"

#include "sched/overhead.hpp"

int main() {
  using namespace sps;
  bench::banner("Suspension/restart overhead impact, CTC",
                "Figs. 31 and 32");
  workload::Trace trace = bench::ctcTrace();
  workload::EstimateModelConfig est;
  est.kind = workload::EstimateModelKind::Modal;
  est.seed = 3042;
  applyEstimates(trace, est);

  const auto limits = core::bootstrapTssLimits(trace);
  core::PolicySpec tss;
  tss.kind = core::PolicyKind::SelectiveSuspension;
  tss.ss.tssLimits = limits;
  tss.label = "SF = 2";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  core::PolicySpec is;
  is.kind = core::PolicyKind::ImmediateService;
  is.label = "IS";

  // Free-preemption runs.
  auto runs = core::compareSchemes(trace, {tss, ns, is});
  // Overhead run of the same TSS config.
  const sched::DiskSwapOverhead overhead(trace, 2.0);
  core::SimulationOptions withOverhead;
  withOverhead.sim.overhead = &overhead;
  core::PolicySpec tssOh = tss;
  tssOh.label = "SF = 2 OH";
  runs.insert(runs.begin() + 1,
              core::runSimulation(trace, tssOh, withOverhead));

  core::printRunSummaries(std::cout, runs);
  bench::printAvgPanels(runs, "Fig. 31 — avg slowdown with overhead (CTC)",
                        "Fig. 32 — avg turnaround with overhead (CTC)");
  return 0;
}
