// Reproduces Figs. 19-24: inaccurate user estimates (Section V), CTC trace.
// TSS at SF in {1.5, 2, 5} (tuned) vs NS vs IS, with the metrics reported
// for all jobs (Figs. 19, 22), the well-estimated subset (Figs. 20, 23), and
// the badly-estimated subset (Figs. 21, 24).
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("Inaccurate estimates — average metrics by category, CTC",
                "Figs. 19-24");
  workload::Trace trace = bench::ctcTrace();
  workload::EstimateModelConfig est;
  est.kind = workload::EstimateModelKind::Modal;
  est.seed = 1042;
  applyEstimates(trace, est);

  const auto limits = core::bootstrapTssLimits(trace);
  const auto runs = core::compareSchemes(trace, core::tssSchemeSet(limits));
  core::printRunSummaries(std::cout, runs);

  bench::printAvgPanels(runs, "Fig. 19 — avg slowdown, all jobs (CTC)",
                        "Fig. 22 — avg turnaround, all jobs (CTC)");
  bench::printAvgPanels(runs,
                        "Fig. 20 — avg slowdown, well estimated jobs (CTC)",
                        "Fig. 23 — avg turnaround, well estimated jobs (CTC)",
                        metrics::EstimateFilter::WellEstimated);
  bench::printAvgPanels(runs,
                        "Fig. 21 — avg slowdown, badly estimated jobs (CTC)",
                        "Fig. 24 — avg turnaround, badly estimated jobs (CTC)",
                        metrics::EstimateFilter::BadlyEstimated);
  return 0;
}
