// Reproduces Figs. 7 and 8: average bounded slowdown and turnaround time per
// category for SS at SF in {1.5, 2, 5} vs NS vs IS — CTC trace, accurate
// estimates.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("SS vs NS vs IS — average metrics by category, CTC",
                "Figs. 7 and 8");
  const auto trace = bench::ctcTrace();
  const auto runs = core::compareSchemes(trace, core::ssSchemeSet());
  core::printRunSummaries(std::cout, runs);
  bench::printAvgPanels(runs, "Fig. 7 — average slowdown (CTC)",
                        "Fig. 8 — average turnaround time (CTC)");
  return 0;
}
