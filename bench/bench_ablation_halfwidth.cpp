// Ablation (design decision ◆5 in DESIGN.md): the half-width rule.
// The paper imposes it so narrow jobs cannot evict wide ones (Section IV-B).
// Disabling it helps narrow short jobs slightly but lets them shred wide
// jobs' service — visible in the W/VW columns.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("Ablation — half-width preemption rule",
                "Section IV-B design choice");
  const auto trace = bench::sdscTrace();

  core::PolicySpec on;
  on.kind = core::PolicyKind::SelectiveSuspension;
  on.label = "SS half-width ON";
  core::PolicySpec off = on;
  off.ss.halfWidthRule = false;
  off.label = "SS half-width OFF";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";

  const auto runs = core::compareSchemes(trace, {on, off, ns});
  core::printRunSummaries(std::cout, runs);
  bench::printAvgPanels(runs, "ablation — avg slowdown (SDSC)",
                        "ablation — avg turnaround (SDSC)");
  bench::printWorstPanels(runs, "ablation — worst-case slowdown (SDSC)",
                          "ablation — worst-case turnaround (SDSC)");
  return 0;
}
