// Ablation (extension): what does the no-migration constraint cost?
// The paper's model is local preemption — a suspended job must resume on
// its exact processors (Section II-C). The migratable model (Parsons &
// Sevcik, paper related work) relaxes that. Comparing the two quantifies
// the price of the constraint under the lease discipline.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("Ablation — local vs migratable preemption",
                "Section II-C constraint / Parsons & Sevcik model");
  const auto trace = bench::sdscTrace();

  core::PolicySpec local;
  local.kind = core::PolicyKind::SelectiveSuspension;
  local.label = "SS local (paper)";
  core::PolicySpec migrate = local;
  migrate.ss.migratableJobs = true;
  migrate.label = "SS migratable";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";

  const auto runs = core::compareSchemes(trace, {local, migrate, ns});
  core::printRunSummaries(std::cout, runs);
  bench::printAvgPanels(runs, "ablation — avg slowdown (SDSC)",
                        "ablation — avg turnaround (SDSC)");
  bench::printWorstPanels(runs, "ablation — worst-case slowdown (SDSC)",
                          "ablation — worst-case turnaround (SDSC)");
  return 0;
}
