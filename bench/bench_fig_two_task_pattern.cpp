// Reproduces the Section IV-A theoretical analysis (Figs. 4-6): two
// identical machine-wide tasks submitted together, execution alternating
// under the suspension factor, plus the suspension-count law
// s = 2^(1/(n+1)).
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "sched/selective_suspension.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {

struct TwoTaskResult {
  std::uint64_t suspensions;
  sps::Time finishFirst;
  sps::Time finishSecond;
};

TwoTaskResult runTwoTasks(double sf, sps::Time length) {
  using namespace sps;
  sched::SsConfig cfg;
  cfg.suspensionFactor = sf;
  sched::SelectiveSuspension policy(cfg);
  workload::Trace trace;
  trace.name = "two-task";
  trace.machineProcs = 8;
  for (JobId i = 0; i < 2; ++i) {
    workload::Job j;
    j.id = i;
    j.submit = 0;
    j.runtime = j.estimate = length;
    j.procs = 8;
    trace.jobs.push_back(j);
  }
  sim::Simulator s(trace, policy);
  s.run();
  return {s.totalSuspensions(), std::min(s.exec(0).finish, s.exec(1).finish),
          std::max(s.exec(0).finish, s.exec(1).finish)};
}

}  // namespace

int main() {
  using namespace sps;
  bench::banner("Two-task execution pattern vs suspension factor",
                "Figs. 4-6 and the Section IV-A analysis");

  const Time length = 4 * kHour;
  std::cout << "\nTwo identical tasks, each " << formatDuration(length)
            << " on the full machine, submitted together.\n"
            << "Theory: n suspensions for SF in [2^(1/(n+1)), 2^(1/n)); "
               "SF = 2 -> 0, SF = sqrt(2) -> 1, SF -> 1 -> unbounded "
               "(granularity-limited, Fig. 4).\n\n";

  Table t({"SF", "suspensions", "theory n", "first finish", "second finish"});
  const std::vector<double> sfs = {1.05, 1.1,
                                   std::pow(2.0, 0.25),  // n = 3
                                   std::cbrt(2.0),       // n = 2
                                   std::sqrt(2.0),       // n = 1
                                   1.7, 2.0, 3.0, 5.0};
  for (double sf : sfs) {
    const auto r = runTwoTasks(sf, length);
    const int theory =
        sf >= 2.0 ? 0
                  : static_cast<int>(std::ceil(std::log(2.0) / std::log(sf))) -
                        1;
    t.row()
        .cell(formatFixed(sf, 4))
        .cell(static_cast<std::int64_t>(r.suspensions))
        .cell(theory)
        .cell(formatDuration(r.finishFirst))
        .cell(formatDuration(r.finishSecond));
  }
  t.printAscii(std::cout);

  std::cout << "\nWith SF = 2 the tasks run strictly back-to-back "
               "(Fig. 6); smaller SF interleaves them at the preemption-"
               "routine granularity (Figs. 4-5).\n";
  return 0;
}
