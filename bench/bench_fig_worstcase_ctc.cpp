// Reproduces Figs. 11 and 12: worst-case slowdown and turnaround time per
// category, SS(SF=2) vs NS vs IS — CTC trace.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("Worst-case metrics by category, CTC", "Figs. 11 and 12");
  const auto trace = bench::ctcTrace();
  const auto runs = core::compareSchemes(trace, core::worstCaseSchemeSet());
  core::printRunSummaries(std::cout, runs);
  bench::printWorstPanels(runs, "Fig. 11 — worst-case slowdown (CTC)",
                          "Fig. 12 — worst-case turnaround time (CTC)");
  return 0;
}
