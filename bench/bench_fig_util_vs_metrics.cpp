// Reproduces Figs. 41-44: average slowdown and turnaround time plotted
// against the *achieved* overall system utilization, per Table-VI category,
// for TSS(SF=2) / NS / IS on CTC (41, 42) and SDSC (43, 44). Each scheme
// traces its own utilization curve as load rises, so the x-axis differs per
// scheme — exactly why the paper switches to utilization on the x-axis.
#include "bench_common.hpp"

#include "util/table.hpp"

namespace {

void printUtilVsMetric(const std::vector<sps::core::LoadPoint>& points,
                       std::size_t schemeIndex, const char* schemeName,
                       sps::metrics::Metric metric) {
  using namespace sps;
  Table t({"utilization", "SN", "SW", "LN", "LW"});
  for (const auto& p : points) {
    const auto& run = p.runs[schemeIndex];
    const auto stats = metrics::categorize4(run.jobs);
    t.row().cell(formatFixed(100.0 * run.steadyUtilization, 1) + "%");
    for (std::size_t cat = 0; cat < workload::kNumCategories4; ++cat)
      t.cell(metrics::metricValue(stats[cat], metric), 2);
  }
  std::cout << "\n-- " << schemeName << " --\n";
  t.printAscii(std::cout);
}

void sweepTrace(const sps::workload::Trace& trace,
                const std::vector<double>& factors, const char* figSlowdown,
                const char* figTat) {
  using namespace sps;
  core::PolicySpec tss;
  tss.kind = core::PolicyKind::SelectiveSuspension;
  tss.ss.tssLimits.emplace();
  tss.label = "SF = 2 Tuned";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  core::PolicySpec is;
  is.kind = core::PolicyKind::ImmediateService;
  is.label = "IS";
  const auto points = core::loadSweep(trace, {tss, ns, is}, factors);

  for (const auto& [metric, figure] :
       {std::pair{metrics::Metric::AvgSlowdown, figSlowdown},
        std::pair{metrics::Metric::AvgTurnaround, figTat}}) {
    core::printHeading(std::cout, figure);
    printUtilVsMetric(points, 0, "SF = 2 Tuned", metric);
    printUtilVsMetric(points, 1, "NS", metric);
    printUtilVsMetric(points, 2, "IS", metric);
  }
}

}  // namespace

int main() {
  using namespace sps;
  bench::banner("Metrics vs achieved utilization", "Figs. 41-44");
  sweepTrace(bench::ctcTrace(), {1.0, 1.2, 1.4, 1.6, 1.8},
             "Fig. 41 — avg slowdown vs utilization (CTC)",
             "Fig. 42 — avg turnaround vs utilization (CTC)");
  sweepTrace(bench::sdscTrace(), {1.0, 1.1, 1.2, 1.3, 1.4},
             "Fig. 43 — avg slowdown vs utilization (SDSC)",
             "Fig. 44 — avg turnaround vs utilization (SDSC)");
  return 0;
}
