// Extension: gang scheduling vs the paper's schemes. Section II names gang
// scheduling (Feitelson & Jette) as the other remedy for FCFS
// fragmentation; this bench shows where uniform time-slicing sits between
// NS and SS — interactive response for everything, paid for with runtime
// dilation and context-sweep overhead.
#include "bench_common.hpp"

#include "sched/overhead.hpp"

int main() {
  using namespace sps;
  bench::banner("Extension — gang scheduling vs SS vs NS",
                "Section II discussion (Feitelson & Jette [35])");
  const auto trace = bench::sdscTrace();

  core::PolicySpec gang2, gang4;
  gang2.kind = gang4.kind = core::PolicyKind::Gang;
  gang2.gang.maxSlots = 2;
  gang2.label = "Gang(2)";
  gang4.gang.maxSlots = 4;
  gang4.label = "Gang(4)";
  core::PolicySpec ss;
  ss.kind = core::PolicyKind::SelectiveSuspension;
  ss.label = "SS(SF=2)";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  core::PolicySpec sjf;
  sjf.kind = core::PolicyKind::Easy;
  sjf.easy.order = sched::QueueOrder::ShortestFirst;
  sjf.label = "SJF-BF";

  const auto runs =
      core::compareSchemes(trace, {gang2, gang4, ss, sjf, ns});
  core::printRunSummaries(std::cout, runs);
  bench::printAvgPanels(runs, "extension — avg slowdown (SDSC)",
                        "extension — avg turnaround (SDSC)");

  // With the paper's overhead model, every gang sweep pays the disk: the
  // contrast against SS (rare, targeted suspensions) sharpens.
  const sched::DiskSwapOverhead overhead(trace, 2.0);
  core::SimulationOptions withOverhead;
  withOverhead.sim.overhead = &overhead;
  const auto loaded =
      core::compareSchemes(trace, {gang2, ss, ns}, withOverhead);
  core::printHeading(std::cout,
                     "with the Section V-A overhead model (2 MB/s)");
  core::printRunSummaries(std::cout, loaded);
  return 0;
}
