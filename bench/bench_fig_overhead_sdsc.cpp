// Reproduces Figs. 33 and 34: suspension/restart overhead impact, SDSC.
#include "bench_common.hpp"

#include "sched/overhead.hpp"

int main() {
  using namespace sps;
  bench::banner("Suspension/restart overhead impact, SDSC",
                "Figs. 33 and 34");
  workload::Trace trace = bench::sdscTrace();
  workload::EstimateModelConfig est;
  est.kind = workload::EstimateModelKind::Modal;
  est.seed = 4042;
  applyEstimates(trace, est);

  const auto limits = core::bootstrapTssLimits(trace);
  core::PolicySpec tss;
  tss.kind = core::PolicyKind::SelectiveSuspension;
  tss.ss.tssLimits = limits;
  tss.label = "SF = 2";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  core::PolicySpec is;
  is.kind = core::PolicyKind::ImmediateService;
  is.label = "IS";

  auto runs = core::compareSchemes(trace, {tss, ns, is});
  const sched::DiskSwapOverhead overhead(trace, 2.0);
  core::SimulationOptions withOverhead;
  withOverhead.sim.overhead = &overhead;
  core::PolicySpec tssOh = tss;
  tssOh.label = "SF = 2 OH";
  runs.insert(runs.begin() + 1,
              core::runSimulation(trace, tssOh, withOverhead));

  core::printRunSummaries(std::cout, runs);
  bench::printAvgPanels(runs, "Fig. 33 — avg slowdown with overhead (SDSC)",
                        "Fig. 34 — avg turnaround with overhead (SDSC)");
  return 0;
}
