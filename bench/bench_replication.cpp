// Replication study (beyond the paper): the headline comparison across
// independently-seeded workloads with mean +/- stddev — evidence that the
// reproduction's orderings are not artifacts of one seed.
#include "bench_common.hpp"

#include "core/replicate.hpp"

int main() {
  using namespace sps;
  bench::banner("Replication — headline metrics across 5 seeds",
                "statistical confidence for the qualitative claims");

  const std::vector<std::uint64_t> seeds = {11, 22, 33, 44, 55};
  // Keep each run modest: 5 seeds x 4 schemes x 2 machines.
  const std::size_t jobs = std::min<std::size_t>(bench::benchJobs(), 5000);

  core::PolicySpec ss;
  ss.kind = core::PolicyKind::SelectiveSuspension;
  ss.label = "SS(SF=2)";
  core::PolicySpec tss = ss;
  tss.ss.tssLimits.emplace();  // re-calibrated per seed by replicate()
  tss.label = "TSS(SF=2)";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  core::PolicySpec is;
  is.kind = core::PolicyKind::ImmediateService;
  is.label = "IS";

  for (const char* machine : {"CTC", "SDSC"}) {
    const bool ctc = std::string(machine) == "CTC";
    auto makeTrace = [&, ctc](std::uint64_t seed) {
      return workload::generateTrace(ctc ? workload::ctcConfig(jobs, seed)
                                         : workload::sdscConfig(jobs, seed));
    };
    const auto results =
        core::replicate(makeTrace, seeds, {ss, tss, ns, is});
    core::printHeading(std::cout, std::string(machine) +
                                      " — mean ± stddev over 5 seeds");
    core::replicationTable(results).printAscii(std::cout);
  }
  std::cout << "\nReading: the SS/TSS-vs-NS slowdown gap dwarfs the seed "
               "noise; utilizations coincide; IS pays in both directions.\n";
  return 0;
}
