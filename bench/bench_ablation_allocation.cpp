// Ablation (design decision ◆1/◆7 in DESIGN.md): processor allocation for
// fresh starts under local preemption. Suspended jobs must resume on their
// exact processors; if fresh jobs are allowed to squat on those processors,
// suspended (mostly long) jobs strand and the whole schedule stretches.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("Ablation — allocation preference for suspended jobs' "
                "processors",
                "local-preemption constraint (Sections II-C, IV-C)");
  const auto trace = bench::sdscTrace();

  core::PolicySpec lease;
  lease.kind = core::PolicyKind::SelectiveSuspension;
  lease.ss.owedProcs = sched::OwedProcsPolicy::Lease;
  lease.label = "SS lease";
  core::PolicySpec prefer = lease;
  prefer.ss.owedProcs = sched::OwedProcsPolicy::Prefer;
  prefer.label = "SS prefer";
  core::PolicySpec squat = lease;
  squat.ss.owedProcs = sched::OwedProcsPolicy::Squat;
  squat.label = "SS squat";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";

  const auto runs = core::compareSchemes(trace, {lease, prefer, squat, ns});
  core::printRunSummaries(std::cout, runs);
  bench::printAvgPanels(runs, "ablation — avg slowdown (SDSC)",
                        "ablation — avg turnaround (SDSC)");
  return 0;
}
