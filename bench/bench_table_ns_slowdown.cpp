// Reproduces Tables IV and V: average bounded slowdown per category under
// non-preemptive aggressive (EASY) backfilling, CTC and SDSC.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("NS (EASY backfilling) average slowdown by category",
                "Tables IV and V");
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";

  for (const auto& trace : {bench::ctcTrace(), bench::sdscTrace()}) {
    const auto stats = core::runSimulation(trace, ns);
    core::printHeading(std::cout,
                       (trace.name.find("CTC") != std::string::npos
                            ? "Table IV — CTC trace"
                            : "Table V — SDSC trace"));
    metrics::categoryGrid16(metrics::categorize16(stats.jobs),
                            metrics::Metric::AvgSlowdown)
        .printAscii(std::cout);
    std::cout << "overall average slowdown: "
              << formatFixed(stats.meanBoundedSlowdown(), 2)
              << "  (paper: 3.58 CTC, 14.13 SDSC)\n";
    std::cout << metrics::summaryLine(stats) << "\n";
  }
  return 0;
}
