// Reproduces Figs. 9 and 10: average bounded slowdown and turnaround time
// per category for SS at SF in {1.5, 2, 5} vs NS vs IS — SDSC trace,
// accurate estimates.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("SS vs NS vs IS — average metrics by category, SDSC",
                "Figs. 9 and 10");
  const auto trace = bench::sdscTrace();
  const auto runs = core::compareSchemes(trace, core::ssSchemeSet());
  core::printRunSummaries(std::cout, runs);
  bench::printAvgPanels(runs, "Fig. 9 — average slowdown (SDSC)",
                        "Fig. 10 — average turnaround time (SDSC)");
  return 0;
}
