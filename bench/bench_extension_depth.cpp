// Extension: the reservation-depth axis. Sweeps Depth-BF(K) from EASY-like
// (K=1) to conservative (K=inf) and sets the whole non-preemptive spectrum
// against SS — the question the paper's Section II poses implicitly: can
// any amount of reservation tuning buy what selective preemption buys?
#include "bench_common.hpp"

#include "sched/depth_backfill.hpp"
#include "util/table.hpp"

int main() {
  using namespace sps;
  bench::banner("Extension — reservation-depth spectrum vs SS",
                "the Section II backfilling design space ([10], [16])");
  const auto trace = bench::sdscTrace();

  Table t({"scheme", "avg slowdown", "VS-row avg slowdown",
           "worst slowdown (L+VL)", "avg turnaround (s)"});
  auto addRow = [&](const core::PolicySpec& spec) {
    const auto stats = core::runSimulation(trace, spec);
    const auto cat = metrics::categorize16(stats.jobs);
    double vsRow = 0;
    int cells = 0;
    for (std::size_t c = 0; c < 4; ++c)
      if (!cat[c].empty()) {
        vsRow += cat[c].avgSlowdown();
        ++cells;
      }
    double worstLong = 0;
    for (std::size_t c = 8; c < 16; ++c)
      worstLong = std::max(worstLong, cat[c].worstSlowdown());
    t.row()
        .cell(stats.policyName)
        .cell(stats.meanBoundedSlowdown(), 2)
        .cell(cells > 0 ? vsRow / cells : 0.0, 2)
        .cell(worstLong, 1)
        .cell(stats.meanTurnaround(), 0);
  };

  for (std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{16}, std::size_t{64},
                            sched::kUnlimitedDepth}) {
    core::PolicySpec spec;
    spec.kind = core::PolicyKind::DepthBackfill;
    spec.depth.depth = depth;
    addRow(spec);
  }
  core::PolicySpec easy;
  easy.kind = core::PolicyKind::Easy;
  easy.label = "EASY (reference)";
  addRow(easy);
  core::PolicySpec conservative;
  conservative.kind = core::PolicyKind::Conservative;
  conservative.label = "Conservative (reference)";
  addRow(conservative);
  core::PolicySpec ss;
  ss.kind = core::PolicyKind::SelectiveSuspension;
  ss.label = "SS(SF=2)";
  addRow(ss);

  t.printAscii(std::cout);
  std::cout << "\nReading: no reservation depth approaches SS's short-job "
               "service — the axis trades average slowdown against "
               "predictability, while preemption sidesteps the trade.\n";
  return 0;
}
