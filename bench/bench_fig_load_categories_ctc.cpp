// Reproduces Figs. 36 and 37: average slowdown and turnaround time vs load
// factor for the four Table-VI categories (SN, SW, LN, LW) — CTC trace,
// TSS(SF=2) vs NS vs IS.
#include "bench_common.hpp"

#include "util/table.hpp"

namespace {

void printCategoryVsLoad(const std::vector<sps::core::LoadPoint>& points,
                         sps::metrics::Metric metric, const char* figure) {
  using namespace sps;
  core::printHeading(std::cout, figure);
  for (std::size_t cat = 0; cat < workload::kNumCategories4; ++cat) {
    std::cout << "\n-- category " << workload::category4Name(cat) << " — "
              << metrics::metricName(metric) << " --\n";
    Table t({"load", "SF = 2 Tuned", "NS", "IS"});
    for (const auto& p : points) {
      t.row().cell(formatFixed(p.loadFactor, 2));
      for (const auto& run : p.runs) {
        const auto stats = metrics::categorize4(run.jobs);
        t.cell(metrics::metricValue(stats[cat], metric), 2);
      }
    }
    t.printAscii(std::cout);
  }
}

}  // namespace

int main() {
  using namespace sps;
  bench::banner("Per-category metrics under load variation, CTC",
                "Figs. 36 and 37");
  core::PolicySpec tss;
  tss.kind = core::PolicyKind::SelectiveSuspension;
  tss.ss.tssLimits.emplace();
  tss.label = "SF = 2 Tuned";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  core::PolicySpec is;
  is.kind = core::PolicyKind::ImmediateService;
  is.label = "IS";

  const auto points = core::loadSweep(bench::ctcTrace(), {tss, ns, is},
                                      {1.0, 1.2, 1.4, 1.6});
  printCategoryVsLoad(points, metrics::Metric::AvgSlowdown,
                      "Fig. 36 — average slowdown vs load (CTC)");
  printCategoryVsLoad(points, metrics::Metric::AvgTurnaround,
                      "Fig. 37 — average turnaround vs load (CTC)");
  return 0;
}
