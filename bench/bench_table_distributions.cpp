// Reproduces Tables I, II, III (16-way criteria + job mixes) and Tables VI,
// VII, VIII (4-way criteria + mixes for the load-variation study).
#include "bench_common.hpp"

#include "metrics/category_stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace sps;
  bench::banner("Job categorization and workload distributions",
                "Tables I-III and VI-VIII");

  core::printHeading(std::cout, "Table I — 16-way categorization criteria");
  {
    Table t({"runtime \\ width", "1 Proc", "2-8 Procs", "9-32 Procs",
             ">32 Procs"});
    t.row().cell("0 - 10 min").cell("VS Seq").cell("VS N").cell("VS W")
        .cell("VS VW");
    t.row().cell("10 min - 1 hr").cell("S Seq").cell("S N").cell("S W")
        .cell("S VW");
    t.row().cell("1 hr - 8 hr").cell("L Seq").cell("L N").cell("L W")
        .cell("L VW");
    t.row().cell("> 8 hr").cell("VL Seq").cell("VL N").cell("VL W")
        .cell("VL VW");
    t.printAscii(std::cout);
  }

  const auto ctc = bench::ctcTrace();
  const auto sdsc = bench::sdscTrace();

  core::printHeading(std::cout,
                     "Table II — job distribution by category, CTC "
                     "(synthetic, calibrated to the paper's mix)");
  metrics::distributionGrid16(metrics::distribution16(ctc.jobs))
      .printAscii(std::cout);

  core::printHeading(std::cout,
                     "Table III — job distribution by category, SDSC");
  metrics::distributionGrid16(metrics::distribution16(sdsc.jobs))
      .printAscii(std::cout);

  core::printHeading(std::cout,
                     "Table VI — 4-way criteria (load-variation study)");
  {
    Table t({"runtime \\ width", "<= 8 Procs", "> 8 Procs"});
    t.row().cell("<= 1 hr").cell("SN").cell("SW");
    t.row().cell("> 1 hr").cell("LN").cell("LW");
    t.printAscii(std::cout);
  }

  auto print4 = [](const workload::Trace& trace) {
    const auto d = metrics::distribution4(trace.jobs);
    Table t({"category", "share"});
    for (std::size_t c = 0; c < workload::kNumCategories4; ++c)
      t.row().cell(workload::category4Name(c)).cell(formatFixed(d[c], 1) + "%");
    t.printAscii(std::cout);
  };

  core::printHeading(std::cout, "Table VII — 4-way distribution, CTC");
  print4(ctc);
  core::printHeading(std::cout, "Table VIII — 4-way distribution, SDSC");
  print4(sdsc);
  return 0;
}
