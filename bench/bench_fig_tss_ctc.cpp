// Reproduces Figs. 13 and 14: the Tunable Selective Suspension scheme's
// worst-case slowdown and turnaround time vs plain SS(2), NS and IS — CTC.
// TSS limits are bootstrapped from the NS run (1.5 x category average,
// Section IV-E).
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("TSS worst-case improvement, CTC", "Figs. 13 and 14");
  const auto trace = bench::ctcTrace();
  const auto limits = core::bootstrapTssLimits(trace);

  core::PolicySpec ss;
  ss.kind = core::PolicyKind::SelectiveSuspension;
  ss.label = "SF = 2";
  core::PolicySpec tss = ss;
  tss.ss.tssLimits = limits;
  tss.label = "SF = 2 Tuned";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  core::PolicySpec is;
  is.kind = core::PolicyKind::ImmediateService;
  is.label = "IS";

  const auto runs = core::compareSchemes(trace, {ss, tss, ns, is});
  core::printRunSummaries(std::cout, runs);
  bench::printWorstPanels(runs, "Fig. 13 — worst-case slowdown, TSS (CTC)",
                          "Fig. 14 — worst-case turnaround time, TSS (CTC)");
  bench::printAvgPanels(runs,
                        "check: averages unharmed — avg slowdown (CTC)",
                        "check: averages unharmed — avg turnaround (CTC)");
  return 0;
}
