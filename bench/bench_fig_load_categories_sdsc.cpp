// Reproduces Figs. 39 and 40: per-category metrics vs load factor, SDSC.
#include "bench_common.hpp"

#include "util/table.hpp"

namespace {

void printCategoryVsLoad(const std::vector<sps::core::LoadPoint>& points,
                         sps::metrics::Metric metric, const char* figure) {
  using namespace sps;
  core::printHeading(std::cout, figure);
  for (std::size_t cat = 0; cat < workload::kNumCategories4; ++cat) {
    std::cout << "\n-- category " << workload::category4Name(cat) << " — "
              << metrics::metricName(metric) << " --\n";
    Table t({"load", "SF = 2 Tuned", "NS", "IS"});
    for (const auto& p : points) {
      t.row().cell(formatFixed(p.loadFactor, 2));
      for (const auto& run : p.runs) {
        const auto stats = metrics::categorize4(run.jobs);
        t.cell(metrics::metricValue(stats[cat], metric), 2);
      }
    }
    t.printAscii(std::cout);
  }
}

}  // namespace

int main() {
  using namespace sps;
  bench::banner("Per-category metrics under load variation, SDSC",
                "Figs. 39 and 40");
  core::PolicySpec tss;
  tss.kind = core::PolicyKind::SelectiveSuspension;
  tss.ss.tssLimits.emplace();
  tss.label = "SF = 2 Tuned";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  core::PolicySpec is;
  is.kind = core::PolicyKind::ImmediateService;
  is.label = "IS";

  const auto points = core::loadSweep(bench::sdscTrace(), {tss, ns, is},
                                      {1.0, 1.1, 1.2, 1.3});
  printCategoryVsLoad(points, metrics::Metric::AvgSlowdown,
                      "Fig. 39 — average slowdown vs load (SDSC)");
  printCategoryVsLoad(points, metrics::Metric::AvgTurnaround,
                      "Fig. 40 — average turnaround vs load (SDSC)");
  return 0;
}
