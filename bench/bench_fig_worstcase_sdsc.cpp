// Reproduces Figs. 15 and 16: worst-case slowdown and turnaround time per
// category, SS(SF=2) vs NS vs IS — SDSC trace.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("Worst-case metrics by category, SDSC", "Figs. 15 and 16");
  const auto trace = bench::sdscTrace();
  const auto runs = core::compareSchemes(trace, core::worstCaseSchemeSet());
  core::printRunSummaries(std::cout, runs);
  bench::printWorstPanels(runs, "Fig. 15 — worst-case slowdown (SDSC)",
                          "Fig. 16 — worst-case turnaround time (SDSC)");
  return 0;
}
