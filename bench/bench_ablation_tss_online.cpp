// Ablation (extension): online-adaptive TSS limits vs the paper's
// pre-calibrated ones. The paper's Section IV-E limit needs a prior NS run
// of the same workload; a production scheduler has no such oracle. The
// online variant learns the per-category average slowdown from its own
// completions.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("Ablation — pre-calibrated vs online-adaptive TSS limits",
                "Section IV-E calibration requirement");
  const auto trace = bench::sdscTrace();
  const auto limits = core::bootstrapTssLimits(trace);

  core::PolicySpec ss;
  ss.kind = core::PolicyKind::SelectiveSuspension;
  ss.label = "plain SS";
  core::PolicySpec tss = ss;
  tss.ss.tssLimits = limits;
  tss.label = "TSS (NS-calibrated)";
  core::PolicySpec online = ss;
  online.ss.tssOnlineMultiplier = 1.5;
  online.label = "TSS (online)";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";

  const auto runs = core::compareSchemes(trace, {ss, tss, online, ns});
  core::printRunSummaries(std::cout, runs);
  bench::printAvgPanels(runs, "ablation — avg slowdown (SDSC)",
                        "ablation — avg turnaround (SDSC)");
  bench::printWorstPanels(runs, "ablation — worst-case slowdown (SDSC)",
                          "ablation — worst-case turnaround (SDSC)");
  return 0;
}
