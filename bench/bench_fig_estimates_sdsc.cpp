// Reproduces Figs. 25-30: inaccurate user estimates (Section V), SDSC trace.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("Inaccurate estimates — average metrics by category, SDSC",
                "Figs. 25-30");
  workload::Trace trace = bench::sdscTrace();
  workload::EstimateModelConfig est;
  est.kind = workload::EstimateModelKind::Modal;
  est.seed = 2042;
  applyEstimates(trace, est);

  const auto limits = core::bootstrapTssLimits(trace);
  const auto runs = core::compareSchemes(trace, core::tssSchemeSet(limits));
  core::printRunSummaries(std::cout, runs);

  bench::printAvgPanels(runs, "Fig. 25 — avg slowdown, all jobs (SDSC)",
                        "Fig. 28 — avg turnaround, all jobs (SDSC)");
  bench::printAvgPanels(
      runs, "Fig. 26 — avg slowdown, well estimated jobs (SDSC)",
      "Fig. 29 — avg turnaround, well estimated jobs (SDSC)",
      metrics::EstimateFilter::WellEstimated);
  bench::printAvgPanels(
      runs, "Fig. 27 — avg slowdown, badly estimated jobs (SDSC)",
      "Fig. 30 — avg turnaround, badly estimated jobs (SDSC)",
      metrics::EstimateFilter::BadlyEstimated);
  return 0;
}
