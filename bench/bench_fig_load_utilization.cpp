// Reproduces Figs. 35 and 38: overall system utilization vs load factor for
// TSS(SF=2) / NS / IS, CTC and SDSC. The load transform divides arrival
// times by the factor (Section VI); saturation shows as the utilization
// plateau (paper: ~1.6 for CTC, ~1.3 for SDSC).
#include "bench_common.hpp"

#include "util/table.hpp"

namespace {

void sweepTrace(const sps::workload::Trace& trace,
                const std::vector<double>& factors, const char* figure) {
  using namespace sps;
  core::PolicySpec tss;
  tss.kind = core::PolicyKind::SelectiveSuspension;
  tss.ss.tssLimits.emplace();  // placeholder; loadSweep recalibrates
  tss.label = "SF = 2 Tuned";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  core::PolicySpec is;
  is.kind = core::PolicyKind::ImmediateService;
  is.label = "IS";

  const auto points = core::loadSweep(trace, {tss, ns, is}, factors);

  core::printHeading(std::cout, figure);
  // Steady-state utilization (over the arrival window): a finite trace has
  // a drain tail after the last arrival that charges schedulers unequally;
  // the paper's utilization-vs-load comparison is about sustained capacity.
  Table t({"load factor", "offered load", "util SF=2 Tuned", "util NS",
           "util IS"});
  for (const auto& p : points) {
    t.row()
        .cell(formatFixed(p.loadFactor, 2))
        .cell(formatFixed(
            workload::offeredLoad(workload::scaleLoad(trace, p.loadFactor)),
            3))
        .cell(formatFixed(100.0 * p.runs[0].steadyUtilization, 1) + "%")
        .cell(formatFixed(100.0 * p.runs[1].steadyUtilization, 1) + "%")
        .cell(formatFixed(100.0 * p.runs[2].steadyUtilization, 1) + "%");
  }
  t.printAscii(std::cout);
}

}  // namespace

int main() {
  using namespace sps;
  bench::banner("System utilization under load variation",
                "Figs. 35 and 38");
  sweepTrace(bench::ctcTrace(), {1.0, 1.2, 1.4, 1.6, 1.8, 2.0},
             "Fig. 35 — utilization vs load, CTC (saturation ~1.6)");
  sweepTrace(bench::sdscTrace(), {1.0, 1.1, 1.2, 1.3, 1.4, 1.5},
             "Fig. 38 — utilization vs load, SDSC (saturation ~1.3)");
  return 0;
}
