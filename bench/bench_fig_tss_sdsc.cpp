// Reproduces Figs. 17 and 18: TSS worst-case metrics vs SS(2)/NS/IS — SDSC.
#include "bench_common.hpp"

int main() {
  using namespace sps;
  bench::banner("TSS worst-case improvement, SDSC", "Figs. 17 and 18");
  const auto trace = bench::sdscTrace();
  const auto limits = core::bootstrapTssLimits(trace);

  core::PolicySpec ss;
  ss.kind = core::PolicyKind::SelectiveSuspension;
  ss.label = "SF = 2";
  core::PolicySpec tss = ss;
  tss.ss.tssLimits = limits;
  tss.label = "SF = 2 Tuned";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS";
  core::PolicySpec is;
  is.kind = core::PolicyKind::ImmediateService;
  is.label = "IS";

  const auto runs = core::compareSchemes(trace, {ss, tss, ns, is});
  core::printRunSummaries(std::cout, runs);
  bench::printWorstPanels(runs, "Fig. 17 — worst-case slowdown, TSS (SDSC)",
                          "Fig. 18 — worst-case turnaround time, TSS (SDSC)");
  return 0;
}
