// Runner scaling — wall-clock speedup of the parallel experiment engine.
//
// The acceptance workload: a 5-spec x 4-load-factor loadSweep (the paper's
// Section VI shape) over a 10k-job synthetic SDSC trace, executed through
// core::Runner at 1 thread and at 8 threads (plus the hardware thread count
// when different). Prints per-configuration wall time, speedup, and a JSON
// RunResult export sample for downstream tooling.
//
// Environment:
//   SPS_BENCH_JOBS      trace size (default 10000 here)
//   SPS_BENCH_THREADS   comma-free single override for the "parallel" lane
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "util/table.hpp"

namespace {

using namespace sps;

std::size_t benchJobs10k() {
  if (const char* env = std::getenv("SPS_BENCH_JOBS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 10000;
}

struct Lane {
  std::size_t threads;
  double seconds = 0.0;
  std::vector<core::LoadPoint> points;
};

double timedSweep(Lane& lane, const workload::Trace& trace,
                  const std::vector<core::PolicySpec>& specs,
                  const std::vector<double>& factors) {
  core::Runner runner({.threads = lane.threads});
  const auto start = std::chrono::steady_clock::now();
  lane.points = core::loadSweep(runner, trace, specs, factors);
  lane.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return lane.seconds;
}

}  // namespace

int main() {
  bench::banner("Runner scaling — parallel experiment engine",
                "the Section VI load-sweep shape");

  const workload::Trace trace =
      workload::generateTrace(workload::sdscConfig(benchJobs10k(), 42));
  const std::vector<core::PolicySpec> specs = core::ssSchemeSet();  // 5 specs
  const std::vector<double> factors = {1.0, 1.1, 1.2, 1.3};

  std::cout << "workload: " << trace.jobs.size() << " jobs, "
            << specs.size() << " specs x " << factors.size()
            << " load factors = " << specs.size() * factors.size()
            << " simulations (+1 TSS-free calibration skip)\n"
            << "hardware threads: "
            << util::ThreadPool::defaultThreadCount() << "\n\n";

  std::vector<Lane> lanes;
  lanes.push_back({.threads = 1});
  std::size_t parallelThreads = 8;
  if (const char* env = std::getenv("SPS_BENCH_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) parallelThreads = static_cast<std::size_t>(v);
  }
  lanes.push_back({.threads = parallelThreads});

  for (Lane& lane : lanes) {
    std::cerr << "running sweep with " << lane.threads << " thread(s)...\n";
    timedSweep(lane, trace, specs, factors);
  }

  Table t({"threads", "wall (s)", "speedup vs 1 thread"});
  for (const Lane& lane : lanes) {
    t.row()
        .cell(static_cast<std::int64_t>(lane.threads))
        .cell(lane.seconds, 2)
        .cell(lanes[0].seconds / lane.seconds, 2);
  }
  t.printAscii(std::cout);

  // Cross-check: every lane must produce identical stats (the determinism
  // contract), so the speedup comparison is apples to apples.
  bool identical = true;
  for (std::size_t l = 1; l < lanes.size(); ++l) {
    for (std::size_t f = 0; f < factors.size(); ++f)
      for (std::size_t s = 0; s < specs.size(); ++s)
        identical &=
            metrics::runStatsJson(lanes[l].points[f].runs[s]) ==
            metrics::runStatsJson(lanes[0].points[f].runs[s]);
  }
  std::cout << "\nresults identical across thread counts: "
            << (identical ? "yes" : "NO — BUG") << "\n";

  const double speedup = lanes[0].seconds / lanes.back().seconds;
  std::cout << "speedup at " << lanes.back().threads
            << " threads: " << formatFixed(speedup, 2) << "x (target >= 3x on >= 8 hardware threads)\n";

  // JSON export sample: the load-1.0 row as a RunResult batch.
  core::Runner runner({.threads = 1});
  std::vector<core::RunRequest> batch;
  const auto shared = core::borrowTrace(trace);
  for (const core::PolicySpec& spec : specs) {
    core::RunRequest request;
    request.trace = shared;
    request.spec = spec;
    request.seed = 42;
    batch.push_back(std::move(request));
  }
  const auto results = runner.runAll(std::move(batch));
  metrics::JsonOptions options;
  options.includeJobs = false;  // keep the sample readable
  std::cout << "\nJSON export sample (load x1.0 row, jobs elided):\n"
            << core::runResultsJson(results, options) << "\n";
  return identical ? 0 : 1;
}
