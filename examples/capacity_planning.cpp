// Capacity planning: the Section VI workflow — how far can a machine's load
// grow before response times collapse, and how much headroom does selective
// preemption buy? Sweeps the load factor on a synthetic SDSC-like workload
// and prints utilization + responsiveness per scheme.
//
// Usage:
//   capacity_planning [jobs]
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "metrics/report.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"

int main(int argc, char** argv) {
  using namespace sps;
  const std::size_t jobs = argc > 1 ? std::stoul(argv[1]) : 3000;
  const workload::Trace base =
      workload::generateTrace(workload::sdscConfig(jobs));
  std::cout << "Base workload: " << base.name << ", offered load "
            << formatFixed(workload::offeredLoad(base), 2) << "\n\n";

  core::PolicySpec tss;
  tss.kind = core::PolicyKind::SelectiveSuspension;
  tss.ss.tssLimits.emplace();  // recalibrated per load point by loadSweep
  tss.label = "TSS(SF=2)";
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "EASY";

  const std::vector<double> factors = {1.0, 1.1, 1.2, 1.3, 1.4};
  const auto points = core::loadSweep(base, {tss, ns}, factors);

  Table t({"load factor", "offered", "util TSS", "util EASY",
           "avg slowdown TSS", "avg slowdown EASY"});
  for (const auto& p : points) {
    const double offered =
        workload::offeredLoad(workload::scaleLoad(base, p.loadFactor));
    t.row()
        .cell(formatFixed(p.loadFactor, 1))
        .cell(formatFixed(offered, 2))
        .cell(formatFixed(100.0 * p.runs[0].steadyUtilization, 1) + "%")
        .cell(formatFixed(100.0 * p.runs[1].steadyUtilization, 1) + "%")
        .cell(p.runs[0].meanBoundedSlowdown(), 2)
        .cell(p.runs[1].meanBoundedSlowdown(), 2);
  }
  t.printAscii(std::cout);

  std::cout << "\nReading the table: utilization plateaus where the machine "
               "saturates; the slowdown gap shows the responsiveness "
               "headroom selective preemption buys at every load "
               "(Section VI of the paper).\n";
  return 0;
}
