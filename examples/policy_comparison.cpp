// Policy comparison: the scenario from the paper's introduction — a
// supercomputer center asking whether preemptive scheduling is worth it.
// Runs the classic scheme set (core::classicSchemeSet: FCFS, conservative
// backfilling, EASY, Selective Suspension, Immediate Service, Gang, SJF-BF)
// on the same workload and prints the paper's metrics side by side. The
// schedulers run concurrently on a core::Runner; flag parsing is the shared
// core::CliConfig.
//
// This example is an alias for `sps_sim compare --set classic`; it remains
// as a minimal-code walkthrough of the experiment API.
//
// Usage:
//   policy_comparison [jobs] [machine] [--threads N]
#include <iostream>
#include <string>

#include "core/cli_config.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/runner.hpp"
#include "metrics/report.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace sps;

  std::size_t jobs = 4000;
  std::string machine = "sdsc";
  std::size_t threads = 0;
  core::CliConfig cli("policy_comparison",
                      "all schedulers side by side on one workload");
  cli.positional("jobs", &jobs, "synthetic job count (default: 4000)");
  cli.positional("machine", &machine, "ctc | sdsc | kth (default: sdsc)");
  cli.option("--threads", &threads, "N",
             "worker threads (0 = all hardware threads)");
  try {
    if (cli.parse(argc, argv).helpRequested) {
      cli.printUsage(std::cout);
      return 0;
    }
  } catch (const InputError& e) {
    std::cerr << "policy_comparison: " << e.what() << "\n";
    return 2;
  }

  workload::SyntheticConfig cfg =
      machine == "ctc"   ? workload::ctcConfig(jobs)
      : machine == "kth" ? workload::kthConfig(jobs)
                         : workload::sdscConfig(jobs);
  const workload::Trace trace = workload::generateTrace(cfg);
  std::cout << "Workload: " << trace.name << " — " << trace.jobs.size()
            << " jobs on " << trace.machineProcs << " processors (offered load "
            << formatFixed(workload::offeredLoad(trace), 2) << ")\n\n";

  core::Runner runner({.threads = threads});
  const auto runs =
      core::compareSchemes(runner, trace, core::classicSchemeSet());

  Table t({"policy", "avg slowdown", "avg turnaround", "worst slowdown",
           "utilization", "suspensions"});
  for (const auto& r : runs) {
    const auto overall = metrics::overallAggregate(r.jobs);
    t.row()
        .cell(r.policyName)
        .cell(overall.avgSlowdown(), 2)
        .cell(formatDuration(static_cast<Time>(overall.avgTurnaround())))
        .cell(overall.worstSlowdown(), 1)
        .cell(formatFixed(100.0 * r.utilization, 1) + "%")
        .cell(static_cast<std::int64_t>(r.suspensions));
  }
  t.printAscii(std::cout);

  core::printFigurePanels(std::cout,
                          "average slowdown by category (Table I classes)",
                          runs, metrics::Metric::AvgSlowdown);
  return 0;
}
