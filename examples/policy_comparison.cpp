// Policy comparison: the scenario from the paper's introduction — a
// supercomputer center asking whether preemptive scheduling is worth it.
// Runs all five schedulers (FCFS, conservative backfilling, EASY, Selective
// Suspension, Immediate Service) on the same workload and prints the paper's
// metrics side by side.
//
// Usage:
//   policy_comparison [jobs] [ctc|sdsc|kth]
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "metrics/report.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace sps;
  const std::size_t jobs = argc > 1 ? std::stoul(argv[1]) : 4000;
  const std::string machine = argc > 2 ? argv[2] : "sdsc";

  workload::SyntheticConfig cfg =
      machine == "ctc"   ? workload::ctcConfig(jobs)
      : machine == "kth" ? workload::kthConfig(jobs)
                         : workload::sdscConfig(jobs);
  const workload::Trace trace = workload::generateTrace(cfg);
  std::cout << "Workload: " << trace.name << " — " << trace.jobs.size()
            << " jobs on " << trace.machineProcs << " processors (offered load "
            << formatFixed(workload::offeredLoad(trace), 2) << ")\n\n";

  std::vector<core::PolicySpec> specs;
  for (auto [kind, label] :
       {std::pair{core::PolicyKind::Fcfs, "FCFS"},
        std::pair{core::PolicyKind::Conservative, "Conservative"},
        std::pair{core::PolicyKind::Easy, "EASY (NS)"},
        std::pair{core::PolicyKind::SelectiveSuspension, "SS (SF=2)"},
        std::pair{core::PolicyKind::ImmediateService, "IS"},
        std::pair{core::PolicyKind::Gang, "Gang(4)"}}) {
    core::PolicySpec s;
    s.kind = kind;
    s.label = label;
    specs.push_back(s);
  }
  {
    core::PolicySpec sjf;
    sjf.kind = core::PolicyKind::Easy;
    sjf.easy.order = sched::QueueOrder::ShortestFirst;
    sjf.label = "SJF-BF";
    specs.push_back(sjf);
  }

  const auto runs = core::compareSchemes(trace, specs);

  Table t({"policy", "avg slowdown", "avg turnaround", "worst slowdown",
           "utilization", "suspensions"});
  for (const auto& r : runs) {
    const auto overall = metrics::overallAggregate(r.jobs);
    t.row()
        .cell(r.policyName)
        .cell(overall.avgSlowdown(), 2)
        .cell(formatDuration(static_cast<Time>(overall.avgTurnaround())))
        .cell(overall.worstSlowdown(), 1)
        .cell(formatFixed(100.0 * r.utilization, 1) + "%")
        .cell(static_cast<std::int64_t>(r.suspensions));
  }
  t.printAscii(std::cout);

  core::printFigurePanels(std::cout,
                          "average slowdown by category (Table I classes)",
                          runs, metrics::Metric::AvgSlowdown);
  return 0;
}
