// Quickstart: generate a small workload, run the non-preemptive baseline and
// Selective Suspension, and compare the headline numbers.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "metrics/report.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace sps;

  // 1. A synthetic workload shaped like the paper's SDSC SP2 trace
  //    (128 processors; category mix from Table III).
  workload::SyntheticConfig cfg = workload::sdscConfig(/*jobCount=*/2000);
  const workload::Trace trace = workload::generateTrace(cfg);
  std::cout << "Workload: " << trace.jobs.size() << " jobs on "
            << trace.machineProcs << " processors, offered load "
            << workload::offeredLoad(trace) << "\n\n";

  // 2. The non-preemptive baseline: EASY (aggressive) backfilling.
  core::PolicySpec ns;
  ns.kind = core::PolicyKind::Easy;
  ns.label = "NS (EASY backfilling)";
  const metrics::RunStats nsStats = core::runSimulation(trace, ns);

  // 3. Selective Suspension with suspension factor 2.
  core::PolicySpec ss;
  ss.kind = core::PolicyKind::SelectiveSuspension;
  ss.ss.suspensionFactor = 2.0;
  ss.label = "SS (SF=2)";
  const metrics::RunStats ssStats = core::runSimulation(trace, ss);

  std::cout << metrics::summaryLine(nsStats) << "\n";
  std::cout << metrics::summaryLine(ssStats) << "\n\n";

  // 4. Per-category average slowdowns, the paper's standard lens.
  std::cout << "NS average bounded slowdown by category:\n";
  metrics::categoryGrid16(metrics::categorize16(nsStats.jobs),
                          metrics::Metric::AvgSlowdown)
      .printAscii(std::cout);
  std::cout << "\nSS average bounded slowdown by category:\n";
  metrics::categoryGrid16(metrics::categorize16(ssStats.jobs),
                          metrics::Metric::AvgSlowdown)
      .printAscii(std::cout);
  return 0;
}
