// Trace analysis: the workload-characterization workflow of Section III on a
// Standard Workload Format (SWF) log. Point it at a real archive log
// (e.g. CTC-SP2-1996-3.1-cln.swf from the Parallel Workloads Archive) or let
// it demonstrate on a synthetic trace that it round-trips through SWF first.
//
// Usage:
//   trace_analysis <file.swf> <machineProcs>
//   trace_analysis                 # self-contained demo
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "metrics/category_stats.hpp"
#include "metrics/report.hpp"
#include "util/table.hpp"
#include "workload/summary.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace sps;

  workload::Trace trace;
  workload::SwfReadStats stats;
  if (argc >= 3) {
    trace = workload::readSwfFile(argv[1], argv[1],
                                  static_cast<std::uint32_t>(
                                      std::stoul(argv[2])),
                                  &stats);
  } else {
    // Demo: generate a calibrated synthetic KTH-like workload, serialize it
    // to SWF, and read it back — exercising the exact path an archive log
    // takes.
    const workload::Trace synthetic =
        workload::generateTrace(workload::kthConfig(3000));
    std::stringstream swf;
    workload::writeSwf(swf, synthetic);
    trace = workload::readSwf(swf, synthetic.name, synthetic.machineProcs,
                              &stats);
    std::cout << "(no SWF file given — demonstrating on a synthetic "
              << synthetic.name << " log round-tripped through SWF)\n\n";
  }

  std::cout << "Parsed " << stats.linesRead << " records, accepted "
            << stats.jobsAccepted << " jobs (dropped: "
            << stats.droppedNonPositiveRuntime << " zero-runtime, "
            << stats.droppedNonPositiveProcs << " zero-proc, "
            << stats.droppedTooWide << " too wide; "
            << stats.estimatesClamped << " estimates clamped)\n\n";

  std::cout << "Machine: " << trace.machineProcs << " processors\n";
  std::cout << "Jobs:    " << trace.jobs.size() << "\n";
  std::cout << "Span:    "
            << formatDuration(trace.jobs.empty()
                                  ? 0
                                  : trace.jobs.back().submit)
            << " of submissions\n";
  std::cout << "Offered load: "
            << formatFixed(workload::offeredLoad(trace), 3) << "\n";

  std::cout << "\nJob distribution by category (Table II/III layout):\n";
  metrics::distributionGrid16(metrics::distribution16(trace.jobs))
      .printAscii(std::cout);

  const workload::TraceSummary summary = workload::summarizeTrace(trace);
  std::cout << "\nDistributional statistics:\n";
  workload::summaryStatsTable(summary).printAscii(std::cout);
  std::cout << "\nWork share by category (where the machine time goes):\n";
  workload::workShareGrid(summary).printAscii(std::cout);

  // Estimate quality (Section V dichotomy).
  std::size_t well = 0;
  for (const workload::Job& j : trace.jobs)
    if (j.estimate <= 2 * j.runtime) ++well;
  std::cout << "\nEstimate quality: " << well << " well estimated ("
            << formatFixed(100.0 * static_cast<double>(well) /
                               static_cast<double>(trace.jobs.size()),
                           1)
            << "%), " << trace.jobs.size() - well << " badly estimated\n";
  return 0;
}
