// Suspension timeline: renders the Section IV-A two-task alternation
// (Figs. 4-6) as an ASCII Gantt chart, using the Simulator's state-change
// observer hook. Shows how the suspension factor controls the execution
// pattern.
//
// Usage:
//   suspension_timeline [sf]     # default sweeps 1.1, sqrt(2), 2
#include <cmath>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sched/selective_suspension.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/job.hpp"

namespace {

using namespace sps;

struct Segment {
  Time start;
  Time end;
};

void renderTwoTasks(double sf, Time length) {
  sched::SsConfig cfg;
  cfg.suspensionFactor = sf;
  sched::SelectiveSuspension policy(cfg);

  workload::Trace trace;
  trace.name = "two-task";
  trace.machineProcs = 8;
  for (JobId i = 0; i < 2; ++i) {
    workload::Job j;
    j.id = i;
    j.submit = 0;
    j.runtime = j.estimate = length;
    j.procs = 8;
    trace.jobs.push_back(j);
  }

  // Record running segments through the observer hook.
  std::vector<std::vector<Segment>> segments(2);
  std::vector<Time> runningSince(2, kNoTime);
  sim::Simulator s(trace, policy);
  s.observers().onStateChange([&](const sim::Simulator& sim, JobId id,
                                  sim::JobState, sim::JobState to) {
    if (to == sim::JobState::Running) {
      runningSince[id] = sim.now();
    } else if (runningSince[id] != kNoTime) {
      segments[id].push_back({runningSince[id], sim.now()});
      runningSince[id] = kNoTime;
    }
  });
  s.run();

  const Time span = s.lastFinish();
  constexpr int kWidth = 72;
  auto column = [&](Time t) {
    return static_cast<int>(t * (kWidth - 1) / std::max<Time>(span, 1));
  };

  std::cout << "\nSF = " << formatFixed(sf, 4) << "  ("
            << s.totalSuspensions() << " suspensions, makespan "
            << formatDuration(span) << ")\n";
  for (JobId id = 0; id < 2; ++id) {
    std::string row(kWidth, '.');
    for (const Segment& seg : segments[id])
      for (int c = column(seg.start); c <= column(seg.end - 1); ++c)
        row[static_cast<std::size_t>(c)] = id == 0 ? '#' : '=';
    std::cout << "  T" << (id + 1) << " |" << row << "|\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sps;
  const Time length = 2 * kHour;
  std::cout << "Two identical tasks (full machine, "
            << formatDuration(length)
            << " each) submitted simultaneously — the Section IV-A "
               "analysis.\n"
            << "'#' = task 1 running, '=' = task 2 running, '.' = waiting/"
               "suspended.\n";
  if (argc > 1) {
    renderTwoTasks(std::stod(argv[1]), length);
  } else {
    renderTwoTasks(1.1, length);              // Fig. 4: rapid alternation
    renderTwoTasks(std::sqrt(2.0), length);   // Fig. 5: one swap
    renderTwoTasks(2.0, length);              // Fig. 6: back-to-back
  }
  std::cout << "\nSF = 2 eliminates mutual suspension of equal tasks "
               "entirely (Section IV-A).\n";
  return 0;
}
