# Empty dependencies file for sps_sim.
# This may be replaced when dependencies are built.
