file(REMOVE_RECURSE
  "CMakeFiles/sps_sim.dir/sps_sim.cpp.o"
  "CMakeFiles/sps_sim.dir/sps_sim.cpp.o.d"
  "sps_sim"
  "sps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
