# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_procset[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_category[1]_include.cmake")
include("/root/repo/build/tests/test_swf[1]_include.cmake")
include("/root/repo/build/tests/test_synthetic[1]_include.cmake")
include("/root/repo/build/tests/test_estimate_model[1]_include.cmake")
include("/root/repo/build/tests/test_availability_profile[1]_include.cmake")
include("/root/repo/build/tests/test_fcfs[1]_include.cmake")
include("/root/repo/build/tests/test_conservative[1]_include.cmake")
include("/root/repo/build/tests/test_easy[1]_include.cmake")
include("/root/repo/build/tests/test_selective_suspension[1]_include.cmake")
include("/root/repo/build/tests/test_immediate_service[1]_include.cmake")
include("/root/repo/build/tests/test_overhead[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_gang[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_regressions[1]_include.cmake")
include("/root/repo/build/tests/test_chaos[1]_include.cmake")
include("/root/repo/build/tests/test_depth_backfill[1]_include.cmake")
