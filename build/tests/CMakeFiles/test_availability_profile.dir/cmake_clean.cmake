file(REMOVE_RECURSE
  "CMakeFiles/test_availability_profile.dir/test_availability_profile.cpp.o"
  "CMakeFiles/test_availability_profile.dir/test_availability_profile.cpp.o.d"
  "test_availability_profile"
  "test_availability_profile.pdb"
  "test_availability_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_availability_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
