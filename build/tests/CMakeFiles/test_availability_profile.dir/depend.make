# Empty dependencies file for test_availability_profile.
# This may be replaced when dependencies are built.
