# Empty dependencies file for test_easy.
# This may be replaced when dependencies are built.
