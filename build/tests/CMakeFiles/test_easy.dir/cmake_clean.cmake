file(REMOVE_RECURSE
  "CMakeFiles/test_easy.dir/test_easy.cpp.o"
  "CMakeFiles/test_easy.dir/test_easy.cpp.o.d"
  "test_easy"
  "test_easy.pdb"
  "test_easy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_easy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
