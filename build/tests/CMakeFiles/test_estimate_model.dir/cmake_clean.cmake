file(REMOVE_RECURSE
  "CMakeFiles/test_estimate_model.dir/test_estimate_model.cpp.o"
  "CMakeFiles/test_estimate_model.dir/test_estimate_model.cpp.o.d"
  "test_estimate_model"
  "test_estimate_model.pdb"
  "test_estimate_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimate_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
