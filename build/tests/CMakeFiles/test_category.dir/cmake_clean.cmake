file(REMOVE_RECURSE
  "CMakeFiles/test_category.dir/test_category.cpp.o"
  "CMakeFiles/test_category.dir/test_category.cpp.o.d"
  "test_category"
  "test_category.pdb"
  "test_category[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_category.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
