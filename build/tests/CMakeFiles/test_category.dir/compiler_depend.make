# Empty compiler generated dependencies file for test_category.
# This may be replaced when dependencies are built.
