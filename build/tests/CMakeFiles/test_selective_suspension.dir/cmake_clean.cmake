file(REMOVE_RECURSE
  "CMakeFiles/test_selective_suspension.dir/test_selective_suspension.cpp.o"
  "CMakeFiles/test_selective_suspension.dir/test_selective_suspension.cpp.o.d"
  "test_selective_suspension"
  "test_selective_suspension.pdb"
  "test_selective_suspension[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selective_suspension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
