# Empty compiler generated dependencies file for test_selective_suspension.
# This may be replaced when dependencies are built.
