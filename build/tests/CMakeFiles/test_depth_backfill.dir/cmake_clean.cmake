file(REMOVE_RECURSE
  "CMakeFiles/test_depth_backfill.dir/test_depth_backfill.cpp.o"
  "CMakeFiles/test_depth_backfill.dir/test_depth_backfill.cpp.o.d"
  "test_depth_backfill"
  "test_depth_backfill.pdb"
  "test_depth_backfill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depth_backfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
