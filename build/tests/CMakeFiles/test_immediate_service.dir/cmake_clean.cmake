file(REMOVE_RECURSE
  "CMakeFiles/test_immediate_service.dir/test_immediate_service.cpp.o"
  "CMakeFiles/test_immediate_service.dir/test_immediate_service.cpp.o.d"
  "test_immediate_service"
  "test_immediate_service.pdb"
  "test_immediate_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_immediate_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
