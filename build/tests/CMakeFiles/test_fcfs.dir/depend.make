# Empty dependencies file for test_fcfs.
# This may be replaced when dependencies are built.
