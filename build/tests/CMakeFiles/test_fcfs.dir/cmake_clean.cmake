file(REMOVE_RECURSE
  "CMakeFiles/test_fcfs.dir/test_fcfs.cpp.o"
  "CMakeFiles/test_fcfs.dir/test_fcfs.cpp.o.d"
  "test_fcfs"
  "test_fcfs.pdb"
  "test_fcfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fcfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
