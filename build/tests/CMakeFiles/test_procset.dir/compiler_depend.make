# Empty compiler generated dependencies file for test_procset.
# This may be replaced when dependencies are built.
