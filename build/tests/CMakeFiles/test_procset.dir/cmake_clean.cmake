file(REMOVE_RECURSE
  "CMakeFiles/test_procset.dir/test_procset.cpp.o"
  "CMakeFiles/test_procset.dir/test_procset.cpp.o.d"
  "test_procset"
  "test_procset.pdb"
  "test_procset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
