
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/sps.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/sps.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/figures.cpp" "src/CMakeFiles/sps.dir/core/figures.cpp.o" "gcc" "src/CMakeFiles/sps.dir/core/figures.cpp.o.d"
  "/root/repo/src/core/replicate.cpp" "src/CMakeFiles/sps.dir/core/replicate.cpp.o" "gcc" "src/CMakeFiles/sps.dir/core/replicate.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/CMakeFiles/sps.dir/core/simulation.cpp.o" "gcc" "src/CMakeFiles/sps.dir/core/simulation.cpp.o.d"
  "/root/repo/src/metrics/category_stats.cpp" "src/CMakeFiles/sps.dir/metrics/category_stats.cpp.o" "gcc" "src/CMakeFiles/sps.dir/metrics/category_stats.cpp.o.d"
  "/root/repo/src/metrics/collector.cpp" "src/CMakeFiles/sps.dir/metrics/collector.cpp.o" "gcc" "src/CMakeFiles/sps.dir/metrics/collector.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/sps.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/sps.dir/metrics/report.cpp.o.d"
  "/root/repo/src/sched/availability_profile.cpp" "src/CMakeFiles/sps.dir/sched/availability_profile.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sched/availability_profile.cpp.o.d"
  "/root/repo/src/sched/conservative.cpp" "src/CMakeFiles/sps.dir/sched/conservative.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sched/conservative.cpp.o.d"
  "/root/repo/src/sched/depth_backfill.cpp" "src/CMakeFiles/sps.dir/sched/depth_backfill.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sched/depth_backfill.cpp.o.d"
  "/root/repo/src/sched/easy.cpp" "src/CMakeFiles/sps.dir/sched/easy.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sched/easy.cpp.o.d"
  "/root/repo/src/sched/fcfs.cpp" "src/CMakeFiles/sps.dir/sched/fcfs.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sched/fcfs.cpp.o.d"
  "/root/repo/src/sched/gang.cpp" "src/CMakeFiles/sps.dir/sched/gang.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sched/gang.cpp.o.d"
  "/root/repo/src/sched/immediate_service.cpp" "src/CMakeFiles/sps.dir/sched/immediate_service.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sched/immediate_service.cpp.o.d"
  "/root/repo/src/sched/overhead.cpp" "src/CMakeFiles/sps.dir/sched/overhead.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sched/overhead.cpp.o.d"
  "/root/repo/src/sched/selective_suspension.cpp" "src/CMakeFiles/sps.dir/sched/selective_suspension.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sched/selective_suspension.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/sps.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/sps.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/procset.cpp" "src/CMakeFiles/sps.dir/sim/procset.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sim/procset.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/sps.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/sps.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/sps.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/sps.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/sps.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/sps.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/sps.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/sps.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/sps.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/sps.dir/util/table.cpp.o.d"
  "/root/repo/src/workload/category.cpp" "src/CMakeFiles/sps.dir/workload/category.cpp.o" "gcc" "src/CMakeFiles/sps.dir/workload/category.cpp.o.d"
  "/root/repo/src/workload/estimate_model.cpp" "src/CMakeFiles/sps.dir/workload/estimate_model.cpp.o" "gcc" "src/CMakeFiles/sps.dir/workload/estimate_model.cpp.o.d"
  "/root/repo/src/workload/job.cpp" "src/CMakeFiles/sps.dir/workload/job.cpp.o" "gcc" "src/CMakeFiles/sps.dir/workload/job.cpp.o.d"
  "/root/repo/src/workload/summary.cpp" "src/CMakeFiles/sps.dir/workload/summary.cpp.o" "gcc" "src/CMakeFiles/sps.dir/workload/summary.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "src/CMakeFiles/sps.dir/workload/swf.cpp.o" "gcc" "src/CMakeFiles/sps.dir/workload/swf.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/sps.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/sps.dir/workload/synthetic.cpp.o.d"
  "/root/repo/src/workload/transforms.cpp" "src/CMakeFiles/sps.dir/workload/transforms.cpp.o" "gcc" "src/CMakeFiles/sps.dir/workload/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
