file(REMOVE_RECURSE
  "libsps.a"
)
