# Empty compiler generated dependencies file for sps.
# This may be replaced when dependencies are built.
