# Empty compiler generated dependencies file for suspension_timeline.
# This may be replaced when dependencies are built.
