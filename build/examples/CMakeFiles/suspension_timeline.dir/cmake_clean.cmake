file(REMOVE_RECURSE
  "CMakeFiles/suspension_timeline.dir/suspension_timeline.cpp.o"
  "CMakeFiles/suspension_timeline.dir/suspension_timeline.cpp.o.d"
  "suspension_timeline"
  "suspension_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suspension_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
