# Empty compiler generated dependencies file for bench_fig_overhead_ctc.
# This may be replaced when dependencies are built.
