file(REMOVE_RECURSE
  "../bench/bench_replication"
  "../bench/bench_replication.pdb"
  "CMakeFiles/bench_replication.dir/bench_replication.cpp.o"
  "CMakeFiles/bench_replication.dir/bench_replication.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
