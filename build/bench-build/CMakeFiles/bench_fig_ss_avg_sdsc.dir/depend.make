# Empty dependencies file for bench_fig_ss_avg_sdsc.
# This may be replaced when dependencies are built.
