# Empty compiler generated dependencies file for bench_extension_gang.
# This may be replaced when dependencies are built.
