file(REMOVE_RECURSE
  "../bench/bench_extension_gang"
  "../bench/bench_extension_gang.pdb"
  "CMakeFiles/bench_extension_gang.dir/bench_extension_gang.cpp.o"
  "CMakeFiles/bench_extension_gang.dir/bench_extension_gang.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_gang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
