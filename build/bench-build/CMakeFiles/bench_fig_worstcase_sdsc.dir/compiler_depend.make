# Empty compiler generated dependencies file for bench_fig_worstcase_sdsc.
# This may be replaced when dependencies are built.
