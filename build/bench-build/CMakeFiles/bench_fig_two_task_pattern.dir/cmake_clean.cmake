file(REMOVE_RECURSE
  "../bench/bench_fig_two_task_pattern"
  "../bench/bench_fig_two_task_pattern.pdb"
  "CMakeFiles/bench_fig_two_task_pattern.dir/bench_fig_two_task_pattern.cpp.o"
  "CMakeFiles/bench_fig_two_task_pattern.dir/bench_fig_two_task_pattern.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_two_task_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
