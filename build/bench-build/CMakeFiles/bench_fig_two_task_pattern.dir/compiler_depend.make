# Empty compiler generated dependencies file for bench_fig_two_task_pattern.
# This may be replaced when dependencies are built.
