# Empty compiler generated dependencies file for bench_fig_util_vs_metrics.
# This may be replaced when dependencies are built.
