file(REMOVE_RECURSE
  "../bench/bench_appendix_kth"
  "../bench/bench_appendix_kth.pdb"
  "CMakeFiles/bench_appendix_kth.dir/bench_appendix_kth.cpp.o"
  "CMakeFiles/bench_appendix_kth.dir/bench_appendix_kth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_kth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
