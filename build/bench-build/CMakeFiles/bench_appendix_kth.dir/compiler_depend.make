# Empty compiler generated dependencies file for bench_appendix_kth.
# This may be replaced when dependencies are built.
