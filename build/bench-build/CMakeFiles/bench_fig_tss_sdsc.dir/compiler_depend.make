# Empty compiler generated dependencies file for bench_fig_tss_sdsc.
# This may be replaced when dependencies are built.
