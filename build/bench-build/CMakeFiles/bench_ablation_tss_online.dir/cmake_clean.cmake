file(REMOVE_RECURSE
  "../bench/bench_ablation_tss_online"
  "../bench/bench_ablation_tss_online.pdb"
  "CMakeFiles/bench_ablation_tss_online.dir/bench_ablation_tss_online.cpp.o"
  "CMakeFiles/bench_ablation_tss_online.dir/bench_ablation_tss_online.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tss_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
