file(REMOVE_RECURSE
  "../bench/bench_table_ns_slowdown"
  "../bench/bench_table_ns_slowdown.pdb"
  "CMakeFiles/bench_table_ns_slowdown.dir/bench_table_ns_slowdown.cpp.o"
  "CMakeFiles/bench_table_ns_slowdown.dir/bench_table_ns_slowdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_ns_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
