# Empty dependencies file for bench_table_ns_slowdown.
# This may be replaced when dependencies are built.
