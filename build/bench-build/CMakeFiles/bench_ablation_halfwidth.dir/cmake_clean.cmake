file(REMOVE_RECURSE
  "../bench/bench_ablation_halfwidth"
  "../bench/bench_ablation_halfwidth.pdb"
  "CMakeFiles/bench_ablation_halfwidth.dir/bench_ablation_halfwidth.cpp.o"
  "CMakeFiles/bench_ablation_halfwidth.dir/bench_ablation_halfwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_halfwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
