# Empty compiler generated dependencies file for bench_ablation_halfwidth.
# This may be replaced when dependencies are built.
