# Empty dependencies file for bench_extension_depth.
# This may be replaced when dependencies are built.
