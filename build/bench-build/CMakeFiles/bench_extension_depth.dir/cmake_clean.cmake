file(REMOVE_RECURSE
  "../bench/bench_extension_depth"
  "../bench/bench_extension_depth.pdb"
  "CMakeFiles/bench_extension_depth.dir/bench_extension_depth.cpp.o"
  "CMakeFiles/bench_extension_depth.dir/bench_extension_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
