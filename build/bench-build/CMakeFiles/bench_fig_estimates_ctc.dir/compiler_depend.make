# Empty compiler generated dependencies file for bench_fig_estimates_ctc.
# This may be replaced when dependencies are built.
