file(REMOVE_RECURSE
  "../bench/bench_fig_estimates_ctc"
  "../bench/bench_fig_estimates_ctc.pdb"
  "CMakeFiles/bench_fig_estimates_ctc.dir/bench_fig_estimates_ctc.cpp.o"
  "CMakeFiles/bench_fig_estimates_ctc.dir/bench_fig_estimates_ctc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_estimates_ctc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
