# Empty dependencies file for bench_fig_worstcase_ctc.
# This may be replaced when dependencies are built.
