# Empty compiler generated dependencies file for bench_fig_load_categories_ctc.
# This may be replaced when dependencies are built.
