# Empty dependencies file for bench_fig_load_categories_sdsc.
# This may be replaced when dependencies are built.
