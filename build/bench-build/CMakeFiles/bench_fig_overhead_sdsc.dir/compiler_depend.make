# Empty compiler generated dependencies file for bench_fig_overhead_sdsc.
# This may be replaced when dependencies are built.
