# Empty compiler generated dependencies file for bench_fig_load_utilization.
# This may be replaced when dependencies are built.
