file(REMOVE_RECURSE
  "../bench/bench_table_distributions"
  "../bench/bench_table_distributions.pdb"
  "CMakeFiles/bench_table_distributions.dir/bench_table_distributions.cpp.o"
  "CMakeFiles/bench_table_distributions.dir/bench_table_distributions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
