# Empty dependencies file for bench_table_distributions.
# This may be replaced when dependencies are built.
