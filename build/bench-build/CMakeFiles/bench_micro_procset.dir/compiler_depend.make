# Empty compiler generated dependencies file for bench_micro_procset.
# This may be replaced when dependencies are built.
