file(REMOVE_RECURSE
  "../bench/bench_micro_procset"
  "../bench/bench_micro_procset.pdb"
  "CMakeFiles/bench_micro_procset.dir/bench_micro_procset.cpp.o"
  "CMakeFiles/bench_micro_procset.dir/bench_micro_procset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_procset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
