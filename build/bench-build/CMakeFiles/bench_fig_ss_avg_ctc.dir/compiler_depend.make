# Empty compiler generated dependencies file for bench_fig_ss_avg_ctc.
# This may be replaced when dependencies are built.
