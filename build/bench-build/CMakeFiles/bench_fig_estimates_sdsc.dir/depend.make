# Empty dependencies file for bench_fig_estimates_sdsc.
# This may be replaced when dependencies are built.
