file(REMOVE_RECURSE
  "../bench/bench_fig_estimates_sdsc"
  "../bench/bench_fig_estimates_sdsc.pdb"
  "CMakeFiles/bench_fig_estimates_sdsc.dir/bench_fig_estimates_sdsc.cpp.o"
  "CMakeFiles/bench_fig_estimates_sdsc.dir/bench_fig_estimates_sdsc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_estimates_sdsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
