# Empty compiler generated dependencies file for bench_ablation_tss_limit.
# This may be replaced when dependencies are built.
