file(REMOVE_RECURSE
  "../bench/bench_ablation_tss_limit"
  "../bench/bench_ablation_tss_limit.pdb"
  "CMakeFiles/bench_ablation_tss_limit.dir/bench_ablation_tss_limit.cpp.o"
  "CMakeFiles/bench_ablation_tss_limit.dir/bench_ablation_tss_limit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tss_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
