// TimelineRecorder — sim-clock time series of scheduler state.
//
// The paper's evaluation (and PR 3's counters) are end-of-run aggregates;
// this recorder closes the time-resolved gap. It rides the
// Simulator::observers() registry and samples the machine/queue state at a
// fixed sim-clock stride:
//
//   queue depth | running jobs | suspended jobs | free processors |
//   instantaneous utilization | queued backlog (processor-seconds)
//
// Memory is bounded: once the series reaches TimelineConfig::maxSamples
// points the recorder decimates 2x (keeping every second point and doubling
// the stride), so an arbitrarily long run costs O(maxSamples) regardless of
// span. Sample k (0-based) is always at sim time stride * (k + 1), so the
// time axis is implicit and never stored.
//
// The sampled state is the state that held over the half-open interval
// ending at the sample time: onClockAdvanced fires before the triggering
// event's handler runs, so reading the simulator inside the callback sees
// exactly the configuration that was live across (from, to].
//
// Off by default and free when disabled: a disabled recorder registers no
// observers and runSimulation never constructs one, so the hot path is
// untouched (the same contract as SPS_TRACE, but runtime- rather than
// compile-gated). When enabled, only the clock channel is subscribed —
// everything, including the queued backlog, is read from the simulator at
// the sample instant, so the per-event cost is a single early-out callback
// and the real work is O(samples), not O(events).
//
// Output paths:
//   * emitCounterTracks() renders the series as Chrome-trace counter events
//     ("ph":"C") through any TraceSink, giving Perfetto stacked
//     queue/processor/utilization tracks alongside PR 3's spans;
//   * metrics::writeTimelineJson() embeds the series as the "timeline"
//     block of the RunStats JSON for utilization-over-time figures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace sps::obs {

class TraceSink;

/// Default sampling stride: one point per simulated minute. At the default
/// cap that covers a ~2.8-day schedule before the first decimation.
inline constexpr Time kDefaultTimelineStride = 60;

struct TimelineConfig {
  /// Master switch; a default-constructed config records nothing.
  bool enabled = false;
  /// Sim-seconds between samples; 0 = auto: kDefaultTimelineStride doubled
  /// until the trace's submit horizon fits in maxSamples points (the grid
  /// decimation would converge to, chosen up front).
  Time stride = 0;
  /// Decimation cap (even, >= 2; odd values round down). 4096 points of six
  /// series is ~128 KB.
  std::size_t maxSamples = 4096;
};

/// The recorded series. Column-major: series[k] is the sample at sim time
/// stride * (k + 1). `stride` is the *final* stride after any decimations.
struct TimelineData {
  Time stride = 0;
  std::vector<std::uint32_t> queueDepth;
  std::vector<std::uint32_t> runningJobs;
  std::vector<std::uint32_t> suspendedJobs;  ///< Suspending + Suspended
  std::vector<std::uint32_t> freeProcs;
  /// Busy fraction of the machine at the sample instant, in [0, 1].
  std::vector<double> utilization;
  /// Sum over queued (never-started) jobs of procs x estimate — the demand
  /// the scheduler has accepted but not yet placed.
  std::vector<double> backlogProcSeconds;

  [[nodiscard]] std::size_t sampleCount() const { return queueDepth.size(); }
  [[nodiscard]] bool empty() const { return queueDepth.empty(); }
  [[nodiscard]] Time timeAt(std::size_t k) const {
    return stride * static_cast<Time>(k + 1);
  }
};

class TimelineRecorder {
 public:
  explicit TimelineRecorder(TimelineConfig config);

  /// Subscribe to the simulator's observer channels. Call before run();
  /// the recorder must outlive the run. Requires config.enabled — a
  /// disabled recorder must simply not be attached (that is the zero-cost
  /// contract).
  void attach(sim::Simulator& simulator);

  [[nodiscard]] const TimelineData& data() const { return data_; }
  /// Move the series out (the recorder is spent afterwards).
  [[nodiscard]] TimelineData take() { return std::move(data_); }

  /// Render every series as Chrome-trace counter tracks ("ph":"C"):
  /// "jobs" (queued/running/suspended, stacked), "procs" (free),
  /// "utilizationPct", and "backlogProcSeconds". Bounded post-run work —
  /// nothing is emitted while the simulation runs.
  void emitCounterTracks(TraceSink& sink) const;

 private:
  void onClock(const sim::Simulator& simulator, Time to);
  void record(const sim::Simulator& simulator);
  void decimate();

  TimelineConfig config_;
  TimelineData data_;
  Time nextSample_;
  bool strideDefaulted_ = false;  ///< config.stride was 0 → horizon-scaled
};

}  // namespace sps::obs
