#include "obs/trace_sink.hpp"

#include <fstream>
#include <mutex>
#include <ostream>

#include "metrics/json.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace sps::obs {

namespace {

/// Serialize one event as a compact JSON object. A fresh JsonWriter per
/// event keeps the writer state local; inter-event commas/newlines are the
/// caller's (they differ between the Chrome array and JSONL framing).
void writeEventObject(std::ostream& os, const TraceEvent& event) {
  metrics::JsonWriter w(os, /*indent=*/0);
  const char ph[2] = {static_cast<char>(event.phase), '\0'};
  w.beginObject()
      .field("ph", static_cast<const char*>(ph))
      .field("cat", event.category)
      .field("name", event.name)
      .field("ts", event.ts);
  if (event.phase == TraceEvent::Phase::Complete) w.field("dur", event.dur);
  w.field("pid", std::uint64_t{0}).field("tid", event.lane);
  if (event.argCount > 0 || event.strValue != nullptr) {
    w.key("args").beginObject();
    for (std::size_t i = 0; i < event.argCount; ++i)
      w.field(event.args[i].key, event.args[i].value);
    if (event.strValue != nullptr) w.field(event.strKey, event.strValue);
    w.endObject();
  }
  w.endObject();
}

std::unique_ptr<std::ostream> openTraceFile(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) throw InputError("cannot open trace file: " + path);
  return file;
}

}  // namespace

TraceSink::~TraceSink() = default;

ChromeTraceSink::ChromeTraceSink(std::ostream& os) : os_(os) {
  const std::lock_guard<std::mutex> lock(detail::ioMutex());
  os_ << "{\"traceEvents\":[";
}

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : owned_(openTraceFile(path)), os_(*owned_) {
  const std::lock_guard<std::mutex> lock(detail::ioMutex());
  os_ << "{\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() {
  const std::lock_guard<std::mutex> lock(detail::ioMutex());
  if (count_ > 0) os_ << '\n';
  os_ << "],\"displayTimeUnit\":\"ms\"}\n";
  os_.flush();
}

void ChromeTraceSink::emit(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(detail::ioMutex());
  os_ << (count_ == 0 ? "\n" : ",\n");
  writeEventObject(os_, event);
  ++count_;
}

void ChromeTraceSink::flush() {
  const std::lock_guard<std::mutex> lock(detail::ioMutex());
  os_.flush();
}

JsonlSink::JsonlSink(std::ostream& os) : os_(os) {}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(openTraceFile(path)), os_(*owned_) {}

void JsonlSink::emit(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(detail::ioMutex());
  writeEventObject(os_, event);
  os_ << '\n';
  ++count_;
}

void JsonlSink::flush() {
  const std::lock_guard<std::mutex> lock(detail::ioMutex());
  os_.flush();
}

}  // namespace sps::obs
