#include "obs/timeline.hpp"

#include "obs/trace_sink.hpp"
#include "util/check.hpp"

namespace sps::obs {

TimelineRecorder::TimelineRecorder(TimelineConfig config) : config_(config) {
  strideDefaulted_ = config_.stride <= 0;
  if (strideDefaulted_) config_.stride = kDefaultTimelineStride;
  config_.maxSamples &= ~std::size_t{1};  // decimation halves cleanly
  if (config_.maxSamples < 2) config_.maxSamples = 2;
  data_.stride = config_.stride;
  nextSample_ = config_.stride;
}

void TimelineRecorder::attach(sim::Simulator& simulator) {
  SPS_CHECK_MSG(config_.enabled,
                "attach() on a disabled TimelineRecorder — a disabled "
                "recorder must not subscribe at all");
  // A defaulted stride is pre-scaled to the trace horizon: the span is at
  // least lastSubmit(), and decimation only ever lands on the grid
  // kDefaultTimelineStride * 2^k, so starting on the grid the run would
  // converge to anyway skips recording maxSamples points per doubling on
  // the way there (a ~3x cut in record() calls on long traces).
  if (strideDefaulted_) {
    Time stride = data_.stride;
    const Time horizon = simulator.lastSubmit();
    while (stride * static_cast<Time>(config_.maxSamples) < horizon)
      stride *= 2;
    data_.stride = stride;
    nextSample_ = stride;
  }
  const auto reserve = [this](auto& v) { v.reserve(config_.maxSamples); };
  reserve(data_.queueDepth);
  reserve(data_.runningJobs);
  reserve(data_.suspendedJobs);
  reserve(data_.freeProcs);
  reserve(data_.utilization);
  reserve(data_.backlogProcSeconds);
  simulator.observers().onClockAdvanced(
      [this](const sim::Simulator& s, Time /*from*/, Time to) {
        onClock(s, to);
      });
}

void TimelineRecorder::onClock(const sim::Simulator& simulator, Time to) {
  // The observer fires before the event handler, so the simulator still
  // shows the state that held across (from, to]; every stride boundary in
  // that window gets a point with exactly that state.
  while (nextSample_ <= to) {
    if (data_.sampleCount() == config_.maxSamples) {
      decimate();
      simulator.counters().inc(Counter::TimelineDecimations);
      continue;  // nextSample_ moved to the new grid; re-test against `to`
    }
    record(simulator);
    simulator.counters().inc(Counter::TimelineSamples);
    nextSample_ += data_.stride;
  }
}

void TimelineRecorder::record(const sim::Simulator& simulator) {
  const auto total = simulator.machine().totalProcs();
  const auto free = simulator.freeCount();
  data_.queueDepth.push_back(
      static_cast<std::uint32_t>(simulator.queuedJobs().size()));
  data_.runningJobs.push_back(
      static_cast<std::uint32_t>(simulator.runningJobs().size()));
  data_.suspendedJobs.push_back(
      static_cast<std::uint32_t>(simulator.suspendedJobs().size()));
  data_.freeProcs.push_back(free);
  data_.utilization.push_back(static_cast<double>(total - free) /
                              static_cast<double>(total));
  data_.backlogProcSeconds.push_back(simulator.queuedProcEstimateSeconds());
}

void TimelineRecorder::decimate() {
  // Keep the odd indices: their sample times (2s, 4s, ...) are exactly the
  // multiples of the doubled stride, so the implicit time axis survives.
  const auto keep = [](auto& v) {
    for (std::size_t i = 0; 2 * i + 1 < v.size(); ++i) v[i] = v[2 * i + 1];
    v.resize(v.size() / 2);
  };
  keep(data_.queueDepth);
  keep(data_.runningJobs);
  keep(data_.suspendedJobs);
  keep(data_.freeProcs);
  keep(data_.utilization);
  keep(data_.backlogProcSeconds);
  data_.stride *= 2;
  nextSample_ =
      data_.stride * (static_cast<Time>(data_.sampleCount()) + 1);
}

void TimelineRecorder::emitCounterTracks(TraceSink& sink) const {
  for (std::size_t k = 0; k < data_.sampleCount(); ++k) {
    const std::int64_t ts = data_.timeAt(k);  // 1 sim-second == 1 us
    {
      TraceEvent e;
      e.phase = TraceEvent::Phase::Counter;
      e.category = "timeline";
      e.name = "jobs";
      e.ts = ts;
      e.arg("queued", data_.queueDepth[k])
          .arg("running", data_.runningJobs[k])
          .arg("suspended", data_.suspendedJobs[k]);
      sink.emit(e);
    }
    {
      TraceEvent e;
      e.phase = TraceEvent::Phase::Counter;
      e.category = "timeline";
      e.name = "procs";
      e.ts = ts;
      e.arg("free", data_.freeProcs[k]);
      sink.emit(e);
    }
    {
      TraceEvent e;
      e.phase = TraceEvent::Phase::Counter;
      e.category = "timeline";
      e.name = "utilizationPct";
      e.ts = ts;
      e.arg("value",
            static_cast<std::int64_t>(data_.utilization[k] * 100.0 + 0.5));
      sink.emit(e);
    }
    {
      TraceEvent e;
      e.phase = TraceEvent::Phase::Counter;
      e.category = "timeline";
      e.name = "backlogProcSeconds";
      e.ts = ts;
      e.arg("value", static_cast<std::int64_t>(data_.backlogProcSeconds[k]));
      sink.emit(e);
    }
  }
  sink.flush();
}

}  // namespace sps::obs
