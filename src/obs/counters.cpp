#include "obs/counters.hpp"

namespace sps::obs {

const char* counterName(Counter counter) {
  switch (counter) {
    case Counter::SimEvents: return "sim.events";
    case Counter::SimClockAdvances: return "sim.clockAdvances";
    case Counter::SimTransitions: return "sim.transitions";
    case Counter::SimStarts: return "sim.starts";
    case Counter::SimResumes: return "sim.resumes";
    case Counter::SimSuspensions: return "sim.suspensions";
    case Counter::LedgerAddBusy: return "kernel.ledger.addBusy";
    case Counter::LedgerRemoveBusy: return "kernel.ledger.removeBusy";
    case Counter::LedgerShiftOrigins: return "kernel.ledger.shiftOrigins";
    case Counter::LedgerRebuilds: return "kernel.ledger.rebuilds";
    case Counter::LedgerReservationsAdded:
      return "kernel.ledger.reservationsAdded";
    case Counter::LedgerReservationsRemoved:
      return "kernel.ledger.reservationsRemoved";
    case Counter::IndexHits: return "kernel.index.hits";
    case Counter::IndexMisses: return "kernel.index.misses";
    case Counter::IndexSeededSorts: return "kernel.index.seededSorts";
    case Counter::IndexFullSorts: return "kernel.index.fullSorts";
    case Counter::VictimInserts: return "kernel.victim.inserts";
    case Counter::VictimRemoves: return "kernel.victim.removes";
    case Counter::VictimRangeQueries: return "kernel.victim.rangeQueries";
    case Counter::VictimBoundSkips: return "kernel.victim.boundSkips";
    case Counter::AnchorQueries: return "kernel.engine.anchorQueries";
    case Counter::ShadowQueries: return "kernel.engine.shadowQueries";
    case Counter::BackfillTests: return "kernel.engine.backfillTests";
    case Counter::BackfillStarts: return "policy.backfillStarts";
    case Counter::BackfillRejects: return "policy.backfillRejects";
    case Counter::ArrivalFastPaths: return "policy.arrivalFastPaths";
    case Counter::CompletionFastPaths: return "policy.completionFastPaths";
    case Counter::FullPasses: return "policy.fullPasses";
    case Counter::FenceScans: return "policy.fenceScans";
    case Counter::VictimTests: return "policy.victimTests";
    case Counter::Preemptions: return "policy.preemptions";
    case Counter::PassSkips: return "policy.passSkips";
    case Counter::DispatchSkips: return "policy.dispatchSkips";
    case Counter::CheckTransitionAudits: return "check.transitionAudits";
    case Counter::CheckEpochAudits: return "check.epochAudits";
    case Counter::TimelineSamples: return "obs.timeline.samples";
    case Counter::TimelineDecimations: return "obs.timeline.decimations";
    case Counter::RunnerHookExceptions: return "runner.hookExceptions";
    case Counter::kCount: break;
  }
  return "?";
}

bool Counters::anyNonZero() const {
  for (const std::uint64_t v : values_)
    if (v != 0) return true;
  for (const std::uint64_t v : suspensionsByCategory_)
    if (v != 0) return true;
  return false;
}

}  // namespace sps::obs
