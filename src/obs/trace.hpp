// SPS_TRACE — the compile-time gate of the event-trace layer.
//
//   SPS_TRACE(&simulator.recorder(),
//             obs::instant("sim", "suspend", now).arg("job", id));
//
// In a default build the macro expands to nothing: the event expression is
// never evaluated, no sink virtual call is ever emitted, and the hot path
// carries zero tracing cost (the "disabled-trace build has no sink calls"
// test pins this with a counting stub sink). Configure with
// `cmake -DSPS_TRACE=ON` to compile the instrumentation in; the cost is
// then one null-sink branch per site until a sink is installed
// (sps_sim --trace FILE, or obs::Recorder::setSink).
//
// Counters (obs/counters.hpp) are NOT behind this gate — they are plain
// array increments, always on.
#pragma once

#include "obs/recorder.hpp"
#include "obs/trace_sink.hpp"

#if defined(SPS_TRACE_ENABLED)
#define SPS_TRACE_ON 1
#define SPS_TRACE(recorder, ...)                                      \
  do {                                                                \
    ::sps::obs::Recorder* sps_trace_rec_ = (recorder);                \
    if (sps_trace_rec_ != nullptr && sps_trace_rec_->sink() != nullptr) { \
      ::sps::obs::TraceEvent sps_trace_ev_ = (__VA_ARGS__);           \
      sps_trace_rec_->sink()->emit(sps_trace_ev_);                    \
    }                                                                 \
  } while (false)
#else
#define SPS_TRACE_ON 0
#define SPS_TRACE(recorder, ...) \
  do {                           \
  } while (false)
#endif

namespace sps::obs {

/// True when this build compiled the SPS_TRACE call sites in. Runtime code
/// (sps_sim --trace, the bench guard) branches on this instead of sprinkling
/// #ifdefs.
inline constexpr bool kTraceCompiledIn = SPS_TRACE_ON == 1;

}  // namespace sps::obs
