// Counters — the cheap half of the observability layer (sps::obs).
//
// One Counters block lives inside every Simulator (owned, or supplied via
// Simulator::Config::recorder), so counts are per-simulation by
// construction: concurrent runs on a core::Runner never share a block and
// the values are bit-identical for any thread count. An increment is one
// array add with no branches, so the counters stay compiled in even when
// the SPS_TRACE event layer is off.
//
// The slots mirror the quantities the paper's evaluation and the kernel's
// perf work care about: suspensions (total and per Table-I category),
// backfill successes/failures, the incremental kernel's fast-path vs
// full-pass split, PriorityIndex epoch-cache hits and resort kinds, and the
// ledger's profile maintenance operations. metrics::collect() copies the
// block into RunStats, where it reaches the JSON export and RunResult.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace sps::obs {

/// Every counter the library maintains. Grouped by owning layer; the dense
/// enum doubles as the array index, so adding a slot is one enum entry plus
/// one name.
enum class Counter : std::uint8_t {
  // --- simulator (sim/) --------------------------------------------------
  SimEvents,           ///< events dispatched by the run loop
  SimClockAdvances,    ///< events that moved the clock forward
  SimTransitions,      ///< job state transitions
  SimStarts,           ///< Queued -> Running
  SimResumes,          ///< Suspended -> Running
  SimSuspensions,      ///< Running -> Suspending/Suspended
  // --- scheduling kernel: reservation ledger (sched/core/) ---------------
  LedgerAddBusy,       ///< busy intervals entered into the profile
  LedgerRemoveBusy,    ///< busy intervals released from the profile
  LedgerShiftOrigins,  ///< incremental refreshes (origin advance only)
  LedgerRebuilds,      ///< full profile reconstructions (Rebuild refresh)
  LedgerReservationsAdded,
  LedgerReservationsRemoved,
  // --- scheduling kernel: priority index ---------------------------------
  IndexHits,           ///< idle() served from the epoch cache
  IndexMisses,         ///< idle() had to recompute
  IndexSeededSorts,    ///< resorts seeded by the previous epoch's order
  IndexFullSorts,      ///< from-scratch std::sort resorts
  // --- scheduling kernel: victim index ------------------------------------
  VictimInserts,       ///< running jobs entered into the VictimIndex
  VictimRemoves,       ///< running jobs dropped from the VictimIndex
  VictimRangeQueries,  ///< SF/TSS boundary searches over a category
  VictimBoundSkips,    ///< candidates rejected by the gain upper bound alone
  // --- scheduling kernel: backfill engine --------------------------------
  AnchorQueries,       ///< earliest-anchor scans over the profile
  ShadowQueries,       ///< shadow-time computations for a pivot job
  BackfillTests,       ///< canBackfill evaluations
  // --- policies (sched/) -------------------------------------------------
  BackfillStarts,      ///< jobs started out of order past a blocked head
  BackfillRejects,     ///< failed canBackfill tests at a decision point
  ArrivalFastPaths,    ///< arrivals handled without a full schedule pass
  CompletionFastPaths, ///< on-time completions that skipped compression
  FullPasses,          ///< full schedule passes / compressions / rebuilds
  FenceScans,          ///< SS claim/lease fence recomputations
  VictimTests,         ///< SS victim-eligibility evaluations
  Preemptions,         ///< suspensions issued by the SS preemption pass
  PassSkips,           ///< SS preemption passes proven no-ops and skipped
  DispatchSkips,       ///< SS dispatches proven no-ops and skipped
  // --- invariant oracle (check/) ------------------------------------------
  CheckTransitionAudits,  ///< state transitions audited by sps::check
  CheckEpochAudits,       ///< sampled epoch audits (guarantee poll + ledger)
  // --- telemetry (obs/timeline) -------------------------------------------
  TimelineSamples,      ///< time-series points recorded by TimelineRecorder
  TimelineDecimations,  ///< 2x decimations after hitting the sample cap
  // --- experiment engine (core/) ------------------------------------------
  RunnerHookExceptions,  ///< RunCompleteHook invocations that threw
  kCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Stable dotted identifier of a counter ("sim.suspensions",
/// "kernel.index.hits", ...) — the key used in the metrics JSON export.
[[nodiscard]] const char* counterName(Counter counter);

class Counters {
 public:
  /// Suspension breakdown slots — one per Table-I category (run class x
  /// width class). Kept as a plain constant so obs does not depend on
  /// workload/; the simulator static_asserts it against kNumCategories16.
  static constexpr std::size_t kSuspensionCategories = 16;

  void inc(Counter counter) { ++values_[index(counter)]; }
  void add(Counter counter, std::uint64_t n) { values_[index(counter)] += n; }
  [[nodiscard]] std::uint64_t value(Counter counter) const {
    return values_[index(counter)];
  }

  void incSuspensionCategory(std::size_t category) {
    ++suspensionsByCategory_[category];
  }
  [[nodiscard]] const std::array<std::uint64_t, kSuspensionCategories>&
  suspensionsByCategory() const {
    return suspensionsByCategory_;
  }

  void reset() { *this = Counters{}; }
  [[nodiscard]] bool anyNonZero() const;

  /// Add every slot of `other` into this block — the fleet aggregation
  /// path (sps::fed sums per-shard blocks into one). Merging blocks is
  /// exact: counting two disjoint runs into one block and merging their
  /// separate blocks produce identical values.
  void merge(const Counters& other) {
    for (std::size_t i = 0; i < kCounterCount; ++i)
      values_[i] += other.values_[i];
    for (std::size_t i = 0; i < kSuspensionCategories; ++i)
      suspensionsByCategory_[i] += other.suspensionsByCategory_[i];
  }

  friend bool operator==(const Counters&, const Counters&) = default;

 private:
  static constexpr std::size_t index(Counter counter) {
    return static_cast<std::size_t>(counter);
  }

  std::array<std::uint64_t, kCounterCount> values_{};
  std::array<std::uint64_t, kSuspensionCategories> suspensionsByCategory_{};
};

}  // namespace sps::obs
