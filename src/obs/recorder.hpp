// Recorder — the per-simulation observability bundle: one Counters block
// plus an optional TraceSink.
//
// Every Simulator carries exactly one Recorder (an owned default, or one
// supplied through Simulator::Config::recorder when the caller wants the
// counters and sink to outlive the run). Policies, the scheduling kernel,
// and the metrics collector all reach it through Simulator::recorder() /
// Simulator::counters(), so there is a single access point and zero global
// state — which is what keeps counters bit-identical across Runner thread
// counts.
#pragma once

#include "obs/counters.hpp"

namespace sps::obs {

class TraceSink;

class Recorder {
 public:
  Recorder() = default;
  explicit Recorder(TraceSink* sink) : sink_(sink) {}

  /// Hot-path counter block; incremented directly (recorder.counters.inc).
  Counters counters;

  [[nodiscard]] TraceSink* sink() const { return sink_; }
  void setSink(TraceSink* sink) { sink_ = sink; }

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace sps::obs
