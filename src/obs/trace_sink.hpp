// TraceSink — the structured-event half of the observability layer.
//
// Instrumentation sites build a TraceEvent (a flat, allocation-free record:
// static-string category/name, a timestamp, a lane, and up to four integer
// args) and hand it to whatever TraceSink the run's obs::Recorder carries.
// Two sinks ship with the library:
//
//   * ChromeTraceSink — the Chrome trace-event JSON format ({"traceEvents":
//     [...]}), loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//     Simulation seconds are written as microseconds (1 s -> 1 us), so a
//     day-long schedule spans a readable ~86 ms of trace time.
//   * JsonlSink — one JSON object per line, for jq/awk pipelines.
//
// Both serialize through metrics::JsonWriter and take the util/log emit
// mutex around every write, so trace output, SPS_LOG lines, and concurrent
// Runner workers sharing one sink never interleave mid-line.
//
// Event emission call sites only exist when the build compiles the SPS_TRACE
// macro layer in (cmake -DSPS_TRACE=ON) — see obs/trace.hpp.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

namespace sps::obs {

/// One structured trace event. Category, name, and arg keys must be string
/// literals (or otherwise outlive the emit() call): the record stores
/// pointers, never copies.
struct TraceEvent {
  /// Chrome trace-event phases (the "ph" field).
  enum class Phase : char {
    Instant = 'i',
    Begin = 'B',
    End = 'E',
    Complete = 'X',
    Counter = 'C',
  };

  static constexpr std::size_t kMaxArgs = 4;
  struct Arg {
    const char* key = nullptr;
    std::int64_t value = 0;
  };

  Phase phase = Phase::Instant;
  const char* category = "";
  const char* name = "";
  std::int64_t ts = 0;   ///< microseconds (simulation: 1 sim-second == 1 us)
  std::int64_t dur = 0;  ///< Complete events only
  std::uint64_t lane = 0;  ///< rendered as the Chrome "tid" (one row per lane)
  std::array<Arg, kMaxArgs> args{};
  std::size_t argCount = 0;
  const char* strKey = nullptr;  ///< optional single string arg
  const char* strValue = nullptr;

  /// Fluent integer arg; silently drops args past kMaxArgs.
  TraceEvent& arg(const char* key, std::int64_t value) {
    if (argCount < kMaxArgs) args[argCount++] = {key, value};
    return *this;
  }
  /// Fluent string arg (one slot; the pointer must outlive emit()).
  TraceEvent& str(const char* key, const char* value) {
    strKey = key;
    strValue = value;
    return *this;
  }
};

[[nodiscard]] inline TraceEvent instant(const char* category, const char* name,
                                        std::int64_t ts,
                                        std::uint64_t lane = 0) {
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.ts = ts;
  e.lane = lane;
  return e;
}

[[nodiscard]] inline TraceEvent begin(const char* category, const char* name,
                                      std::int64_t ts, std::uint64_t lane = 0) {
  TraceEvent e = instant(category, name, ts, lane);
  e.phase = TraceEvent::Phase::Begin;
  return e;
}

[[nodiscard]] inline TraceEvent end(const char* category, const char* name,
                                    std::int64_t ts, std::uint64_t lane = 0) {
  TraceEvent e = instant(category, name, ts, lane);
  e.phase = TraceEvent::Phase::End;
  return e;
}

[[nodiscard]] inline TraceEvent complete(const char* category,
                                         const char* name, std::int64_t ts,
                                         std::int64_t dur,
                                         std::uint64_t lane = 0) {
  TraceEvent e = instant(category, name, ts, lane);
  e.phase = TraceEvent::Phase::Complete;
  e.dur = dur;
  return e;
}

/// Destination for trace events. Implementations must tolerate emit() from
/// several Runner workers at once (the shipped sinks lock the shared log
/// mutex; see obs/trace_sink.cpp).
class TraceSink {
 public:
  virtual ~TraceSink();
  virtual void emit(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Chrome trace-event JSON, one event per line inside {"traceEvents":[...]}.
/// The closing bracket is written by the destructor — destroy (or flush and
/// close) the sink before handing the file to Perfetto.
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& os);
  /// Opens `path` for writing; throws InputError on failure.
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  void emit(const TraceEvent& event) override;
  void flush() override;
  [[nodiscard]] std::uint64_t eventCount() const { return count_; }

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream& os_;
  std::uint64_t count_ = 0;
};

/// One JSON object per line, no surrounding array — for streaming pipelines.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& os);
  explicit JsonlSink(const std::string& path);

  void emit(const TraceEvent& event) override;
  void flush() override;
  [[nodiscard]] std::uint64_t eventCount() const { return count_; }

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream& os_;
  std::uint64_t count_ = 0;
};

/// Counts emit() calls and drops the events — the stub the disabled-build
/// test and the bench guard use to prove the hot path makes no sink calls.
/// The count is atomic so one stub can be shared across Runner workers.
class CountingSink final : public TraceSink {
 public:
  void emit(const TraceEvent& /*event*/) override {
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace sps::obs
