// Job and Trace — the static workload model.
//
// A rigid parallel job in the paper's model: a rectangle in the 2D schedule
// whose height is the (fixed) number of processors requested and whose width
// is the run time. Users supply an estimate; the scheduler only ever sees the
// estimate, while completion is governed by the actual run time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace sps::workload {

struct Job {
  JobId id = kInvalidJob;
  /// Submission (arrival) time, seconds from trace start.
  Time submit = 0;
  /// Actual run time, seconds. > 0.
  Time runtime = 0;
  /// User-estimated run time (wall-clock request), seconds. The library
  /// enforces estimate >= runtime (jobs are killed at their wall-clock limit
  /// on real systems, so an "underestimated" job's runtime is the estimate).
  Time estimate = 0;
  /// Processors requested (rigid). >= 1.
  std::uint32_t procs = 1;
  /// Resident memory per processor, MB. Drives the suspension overhead model
  /// of Section V-A (write-out to local disk at 2 MB/s per processor).
  std::uint32_t memoryMb = 0;
};

/// A workload trace: jobs sorted by non-decreasing submit time, plus the
/// machine it was recorded on.
struct Trace {
  std::string name;
  std::uint32_t machineProcs = 0;
  std::vector<Job> jobs;
};

/// Validate a trace: jobs sorted by submit, ids dense 0..n-1, runtimes > 0,
/// estimate >= runtime, procs within the machine. Throws InputError.
void validateTrace(const Trace& trace);

/// Total work (runtime x procs) over all jobs, processor-seconds.
[[nodiscard]] double totalWork(const Trace& trace);

/// Offered load: totalWork / (machineProcs x submit span). The span runs
/// from the first submit to the last submit plus that job's runtime.
[[nodiscard]] double offeredLoad(const Trace& trace);

}  // namespace sps::workload
