// Trace transforms: normalization, load scaling (Section VI), filtering.
#pragma once

#include <cstdint>
#include <functional>

#include "workload/job.hpp"

namespace sps::workload {

/// Sort by submit time (stable), shift so the first submission is at t=0,
/// and re-number ids densely. Idempotent.
void normalizeTrace(Trace& trace);

/// The paper's load-variation transform (Section VI): divide every arrival
/// time by `factor`, keeping run times unchanged. factor > 1 compresses
/// arrivals and raises offered load proportionally. Returns a new trace
/// named "<name> xF".
[[nodiscard]] Trace scaleLoad(const Trace& trace, double factor);

/// Keep only the first `n` jobs (by submission order).
[[nodiscard]] Trace truncateTrace(const Trace& trace, std::size_t n);

/// Keep jobs satisfying the predicate; re-normalizes.
[[nodiscard]] Trace filterTrace(const Trace& trace,
                                const std::function<bool(const Job&)>& keep);

}  // namespace sps::workload
