#include "workload/transforms.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/table.hpp"

namespace sps::workload {

void normalizeTrace(Trace& trace) {
  std::stable_sort(trace.jobs.begin(), trace.jobs.end(),
                   [](const Job& a, const Job& b) {
                     return a.submit < b.submit;
                   });
  const Time base = trace.jobs.empty() ? 0 : trace.jobs.front().submit;
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    trace.jobs[i].submit -= base;
    trace.jobs[i].id = static_cast<JobId>(i);
  }
}

Trace scaleLoad(const Trace& trace, double factor) {
  SPS_CHECK_MSG(factor > 0.0, "load factor must be positive");
  Trace scaled = trace;
  scaled.name = trace.name + " x" + formatFixed(factor, 2);
  for (Job& j : scaled.jobs)
    j.submit = static_cast<Time>(
        std::llround(static_cast<double>(j.submit) / factor));
  normalizeTrace(scaled);  // rounding can reorder equal-submit neighbours
  return scaled;
}

Trace truncateTrace(const Trace& trace, std::size_t n) {
  Trace t = trace;
  if (t.jobs.size() > n) t.jobs.resize(n);
  normalizeTrace(t);
  return t;
}

Trace filterTrace(const Trace& trace,
                  const std::function<bool(const Job&)>& keep) {
  Trace t;
  t.name = trace.name;
  t.machineProcs = trace.machineProcs;
  for (const Job& j : trace.jobs)
    if (keep(j)) t.jobs.push_back(j);
  normalizeTrace(t);
  return t;
}

}  // namespace sps::workload
