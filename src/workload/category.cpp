#include "workload/category.hpp"

#include "util/check.hpp"

namespace sps::workload {

RunClass runClassOf(Time runtime) {
  if (runtime <= kVeryShortMax) return RunClass::VeryShort;
  if (runtime <= kShortMax) return RunClass::Short;
  if (runtime <= kLongMax) return RunClass::Long;
  return RunClass::VeryLong;
}

WidthClass widthClassOf(std::uint32_t procs) {
  if (procs <= kSequentialMax) return WidthClass::Sequential;
  if (procs <= kNarrowMax) return WidthClass::Narrow;
  if (procs <= kWideMax) return WidthClass::Wide;
  return WidthClass::VeryWide;
}

std::size_t category16(RunClass r, WidthClass w) {
  return static_cast<std::size_t>(r) * kNumWidthClasses +
         static_cast<std::size_t>(w);
}

std::size_t category16(const Job& job) {
  return category16(job.runtime, job.procs);
}

std::size_t category16(Time runtime, std::uint32_t procs) {
  return category16(runClassOf(runtime), widthClassOf(procs));
}

namespace {
const std::array<std::string, kNumRunClasses> kRunNames = {"VS", "S", "L",
                                                           "VL"};
const std::array<std::string, kNumWidthClasses> kWidthNames = {"Seq", "N", "W",
                                                               "VW"};
const std::array<std::string, kNumCategories16> kCategory16Names = [] {
  std::array<std::string, kNumCategories16> names;
  for (std::size_t r = 0; r < kNumRunClasses; ++r)
    for (std::size_t w = 0; w < kNumWidthClasses; ++w)
      names[r * kNumWidthClasses + w] = kRunNames[r] + " " + kWidthNames[w];
  return names;
}();
const std::array<std::string, kNumCategories4> kCategory4Names = {"SN", "SW",
                                                                  "LN", "LW"};
}  // namespace

const std::string& runClassName(RunClass r) {
  return kRunNames[static_cast<std::size_t>(r)];
}

const std::string& widthClassName(WidthClass w) {
  return kWidthNames[static_cast<std::size_t>(w)];
}

const std::string& category16Name(std::size_t index) {
  SPS_CHECK(index < kNumCategories16);
  return kCategory16Names[index];
}

RunClass runClassOfCategory(std::size_t index) {
  SPS_CHECK(index < kNumCategories16);
  return static_cast<RunClass>(index / kNumWidthClasses);
}

WidthClass widthClassOfCategory(std::size_t index) {
  SPS_CHECK(index < kNumCategories16);
  return static_cast<WidthClass>(index % kNumWidthClasses);
}

std::size_t category4(Time runtime, std::uint32_t procs) {
  const std::size_t longJob = runtime > kShort4Max ? 1 : 0;
  const std::size_t wideJob = procs > kNarrow4Max ? 1 : 0;
  return longJob * 2 + wideJob;
}

std::size_t category4(const Job& job) {
  return category4(job.runtime, job.procs);
}

const std::string& category4Name(std::size_t index) {
  SPS_CHECK(index < kNumCategories4);
  return kCategory4Names[index];
}

}  // namespace sps::workload
