// Job categorization (Tables I and VI of the paper).
//
// The evaluation never looks at a single overall average: every table and
// figure is broken down by category. Two schemes are used:
//
//  * Category16 (Table I): run time in {Very Short <=10 min, Short <=1 h,
//    Long <=8 h, Very Long >8 h} x width in {Sequential =1, Narrow 2-8,
//    Wide 9-32, Very Wide >32}. Used for the main study (Sections III-V).
//  * Category4 (Table VI): run time in {Short <=1 h, Long >1 h} x width in
//    {Narrow <=8, Wide >8}. Used for the load-variation study (Section VI).
//
// Categorization uses the *actual* run time ("we classified jobs into 16
// categories based on their actual run time and the number of processors
// requested", Section III).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/types.hpp"
#include "workload/job.hpp"

namespace sps::workload {

// --- 16-way scheme (Table I) -----------------------------------------------

enum class RunClass : std::uint8_t { VeryShort = 0, Short = 1, Long = 2, VeryLong = 3 };
enum class WidthClass : std::uint8_t { Sequential = 0, Narrow = 1, Wide = 2, VeryWide = 3 };

inline constexpr std::size_t kNumRunClasses = 4;
inline constexpr std::size_t kNumWidthClasses = 4;
inline constexpr std::size_t kNumCategories16 = 16;

/// Boundaries (inclusive upper bounds) of the run-time partitions, seconds.
inline constexpr Time kVeryShortMax = 10 * kMinute;
inline constexpr Time kShortMax = 1 * kHour;
inline constexpr Time kLongMax = 8 * kHour;

/// Boundaries (inclusive upper bounds) of the width partitions, processors.
inline constexpr std::uint32_t kSequentialMax = 1;
inline constexpr std::uint32_t kNarrowMax = 8;
inline constexpr std::uint32_t kWideMax = 32;

[[nodiscard]] RunClass runClassOf(Time runtime);
[[nodiscard]] WidthClass widthClassOf(std::uint32_t procs);

/// Dense category index: runClass * 4 + widthClass, in [0, 16).
[[nodiscard]] std::size_t category16(RunClass r, WidthClass w);
[[nodiscard]] std::size_t category16(const Job& job);
/// Category by a given runtime (used for the well/badly-estimated split,
/// where the *actual* runtime classifies the job even when the scheduler saw
/// a wildly different estimate).
[[nodiscard]] std::size_t category16(Time runtime, std::uint32_t procs);

[[nodiscard]] const std::string& runClassName(RunClass r);
[[nodiscard]] const std::string& widthClassName(WidthClass w);
/// e.g. "VS VW" for Very Short / Very Wide (paper's labels).
[[nodiscard]] const std::string& category16Name(std::size_t index);

[[nodiscard]] RunClass runClassOfCategory(std::size_t index);
[[nodiscard]] WidthClass widthClassOfCategory(std::size_t index);

// --- 4-way scheme (Table VI, load-variation study) --------------------------

inline constexpr std::size_t kNumCategories4 = 4;
/// Short/Long boundary for the 4-way scheme, seconds.
inline constexpr Time kShort4Max = 1 * kHour;
/// Narrow/Wide boundary for the 4-way scheme, processors.
inline constexpr std::uint32_t kNarrow4Max = 8;

/// Index: (runtime > 1h) * 2 + (procs > 8); order SN, SW, LN, LW.
[[nodiscard]] std::size_t category4(const Job& job);
[[nodiscard]] std::size_t category4(Time runtime, std::uint32_t procs);
[[nodiscard]] const std::string& category4Name(std::size_t index);

}  // namespace sps::workload
