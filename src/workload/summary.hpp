// Trace summarization — the workload-characterization numbers of Section
// III beyond the category mix: distributional statistics of runtimes,
// widths, estimates and interarrival gaps, plus each category's share of
// total *work* (which drives congestion far more than its share of jobs).
#pragma once

#include <array>
#include <cstddef>

#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/category.hpp"
#include "workload/job.hpp"

namespace sps::workload {

struct TraceSummary {
  std::size_t jobCount = 0;
  double totalWork = 0.0;    ///< processor-seconds
  double offeredLoad = 0.0;
  Time span = 0;             ///< first submit to last submit

  Samples runtimes;
  Samples widths;
  Samples estimateFactors;   ///< estimate / runtime
  Samples interarrivals;

  /// Percentage of jobs per 16-way category (Tables II/III).
  std::array<double, kNumCategories16> jobShare{};
  /// Percentage of total work per 16-way category.
  std::array<double, kNumCategories16> workShare{};
};

/// Compute the summary in one pass. The trace must be validated.
[[nodiscard]] TraceSummary summarizeTrace(const Trace& trace);

/// Distributional statistics as a table (min/median/p90/max rows).
[[nodiscard]] Table summaryStatsTable(const TraceSummary& summary);

/// Work-share grid in the Tables II/III layout — shows where the machine
/// time actually goes (the VW columns dominate despite small job counts).
[[nodiscard]] Table workShareGrid(const TraceSummary& summary);

}  // namespace sps::workload
