#include "workload/summary.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sps::workload {

TraceSummary summarizeTrace(const Trace& trace) {
  TraceSummary s;
  s.jobCount = trace.jobs.size();
  if (trace.jobs.empty()) return s;

  s.runtimes.reserve(s.jobCount);
  s.widths.reserve(s.jobCount);
  s.estimateFactors.reserve(s.jobCount);
  s.interarrivals.reserve(s.jobCount);

  Time prevSubmit = trace.jobs.front().submit;
  for (const Job& j : trace.jobs) {
    const double jobWork =
        static_cast<double>(j.runtime) * static_cast<double>(j.procs);
    s.totalWork += jobWork;
    s.runtimes.add(static_cast<double>(j.runtime));
    s.widths.add(static_cast<double>(j.procs));
    s.estimateFactors.add(static_cast<double>(j.estimate) /
                          static_cast<double>(j.runtime));
    s.interarrivals.add(static_cast<double>(j.submit - prevSubmit));
    prevSubmit = j.submit;
    const std::size_t cat = category16(j);
    s.jobShare[cat] += 1.0;
    s.workShare[cat] += jobWork;
  }
  for (double& v : s.jobShare)
    v = 100.0 * v / static_cast<double>(s.jobCount);
  for (double& v : s.workShare) v = 100.0 * v / s.totalWork;
  s.span = trace.jobs.back().submit - trace.jobs.front().submit;
  s.offeredLoad = offeredLoad(trace);
  return s;
}

Table summaryStatsTable(const TraceSummary& s) {
  Table t({"statistic", "min", "median", "p90", "max", "mean"});
  auto row = [&t](const char* label, const Samples& samples, int precision) {
    t.row().cell(label);
    if (samples.empty()) {
      for (int i = 0; i < 5; ++i) t.cell("-");
      return;
    }
    t.cell(samples.min(), precision)
        .cell(samples.median(), precision)
        .cell(samples.percentile(90), precision)
        .cell(samples.max(), precision)
        .cell(samples.mean(), precision);
  };
  row("runtime (s)", s.runtimes, 0);
  row("width (procs)", s.widths, 0);
  row("estimate / runtime", s.estimateFactors, 2);
  row("interarrival (s)", s.interarrivals, 0);
  return t;
}

Table workShareGrid(const TraceSummary& s) {
  Table t({"runtime \\ width (work %)", "Seq", "N", "W", "VW"});
  static constexpr const char* kRows[] = {"VS", "S", "L", "VL"};
  for (std::size_t r = 0; r < kNumRunClasses; ++r) {
    t.row().cell(kRows[r]);
    for (std::size_t w = 0; w < kNumWidthClasses; ++w)
      t.cell(formatFixed(s.workShare[r * kNumWidthClasses + w], 1) + "%");
  }
  return t;
}

}  // namespace sps::workload
