#include "workload/estimate_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sps::workload {

const char* estimateModelName(EstimateModelKind kind) {
  switch (kind) {
    case EstimateModelKind::Accurate: return "accurate";
    case EstimateModelKind::UniformFactor: return "uniform-factor";
    case EstimateModelKind::Modal: return "modal";
  }
  return "?";
}

void applyEstimates(Trace& trace, const EstimateModelConfig& config) {
  SPS_CHECK_MSG(config.maxFactor >= 2.0, "maxFactor must be >= 2");
  SPS_CHECK_MSG(config.pExact >= 0.0 && config.pWell >= 0.0 &&
                    config.pExact + config.pWell <= 1.0,
                "invalid Modal mixture probabilities");
  Rng rng(config.seed);
  for (Job& j : trace.jobs) {
    double factor = 1.0;
    switch (config.kind) {
      case EstimateModelKind::Accurate:
        factor = 1.0;
        break;
      case EstimateModelKind::UniformFactor:
        factor = rng.logUniform(1.0, config.maxFactor);
        break;
      case EstimateModelKind::Modal: {
        const double u = rng.uniform01();
        if (u < config.pExact) {
          factor = 1.0;
        } else if (u < config.pExact + config.pWell) {
          factor = rng.uniform(1.0, 2.0);
        } else {
          factor = rng.logUniform(2.0, config.maxFactor);
        }
        break;
      }
    }
    const double est = std::ceil(static_cast<double>(j.runtime) * factor);
    j.estimate = std::max<Time>(j.runtime, static_cast<Time>(est));
  }
}

}  // namespace sps::workload
