// SyntheticTraceGenerator — calibrated stand-in for the archive logs.
//
// The paper's CTC/SDSC/KTH SP2 subsets are not recoverable, but the paper
// publishes exactly the workload statistics its phenomena depend on: the
// category mix over the 16 runtime x width classes (Tables II and III), the
// machine sizes, and (implicitly, via the saturation points of Section VI)
// the offered load. This generator samples jobs to match those statistics:
//
//   * category: weighted by the paper's published mix;
//   * runtime: log-uniform within the category's runtime band (Table I);
//   * width:   log-uniform integers within the category's width band;
//   * arrival: Poisson process whose rate is solved so the realized offered
//              load hits the target;
//   * memory:  uniform [100 MB, 1 GB] per processor (Section V-A).
//
// Everything is seeded; a given config reproduces the identical trace.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "workload/category.hpp"
#include "workload/job.hpp"

namespace sps::workload {

struct SyntheticConfig {
  std::string name = "synthetic";
  std::uint32_t machineProcs = 128;
  std::size_t jobCount = 10000;
  std::uint64_t seed = 42;

  /// Relative weight of each of the 16 categories (need not sum to 1).
  std::array<double, kNumCategories16> categoryMix{};

  /// Target offered load: total work / (machineProcs x submit span).
  double offeredLoad = 0.65;

  /// Runtime band edges, seconds. Categories draw log-uniformly from
  /// (lower boundary of their class, upper boundary]. minRuntime applies to
  /// the VS class only; maxRuntime caps VL.
  Time minRuntime = 15;
  Time maxRuntime = 24 * kHour;

  /// Per-processor memory image, MB (Section V-A's U[100 MB, 1 GB]).
  std::uint32_t memMinMb = 100;
  std::uint32_t memMaxMb = 1024;

  /// Width distribution within a band: bounded power law with density
  /// ~ w^-widthAlpha (1.0 = log-uniform). Real SP2 logs are strongly
  /// bottom-heavy inside each band; 2.2-3.2 reproduces the paper's NS slowdown
  /// landscape.
  double widthAlpha = 2.2;
  /// Runtime distribution within a band (same parameterization).
  double runtimeAlpha = 1.0;

  /// Diurnal arrival modulation: instantaneous arrival rate is
  /// lambda x (1 + A sin(2 pi t / day)), A in [0, 1). 0 = homogeneous
  /// Poisson (the default). Real logs are strongly diurnal; this knob lets
  /// sensitivity studies include the day/night cycle.
  double diurnalAmplitude = 0.0;

  /// Scale the width-band boundaries with the machine instead of using the
  /// paper's absolute Table I cutoffs (Narrow <= 8, Wide <= 32, calibrated
  /// for the ~128-proc SP2s). When set, Narrow tops out at machineProcs/16
  /// and Wide at machineProcs/4 — the same *fractions* of the machine the
  /// paper's cutoffs represent on SDSC — so a 100k-processor run sees the
  /// same relative width spectrum rather than 99% VeryWide jobs. Off by
  /// default: the paper-calibrated presets must stay bit-identical.
  /// (Category16 *classification* of the resulting jobs still uses the
  /// fixed Table I cutoffs everywhere else in the stack.)
  bool scaleWidthBands = false;
};

/// Generate a trace; estimates are initialized to the exact runtime
/// (apply an EstimateModel afterwards for the Section V studies).
[[nodiscard]] Trace generateTrace(const SyntheticConfig& config);

/// Presets calibrated to the paper (category mixes from Tables II/III;
/// offered loads tuned so the NS baseline reproduces the qualitative
/// slowdown landscape of Tables IV/V and saturation near the Section VI
/// points). KTH's mix is not published in the paper; the preset reuses the
/// SDSC mix on the 100-processor machine (documented in DESIGN.md).
[[nodiscard]] SyntheticConfig ctcConfig(std::size_t jobCount = 10000,
                                        std::uint64_t seed = 42);
[[nodiscard]] SyntheticConfig sdscConfig(std::size_t jobCount = 10000,
                                         std::uint64_t seed = 42);
[[nodiscard]] SyntheticConfig kthConfig(std::size_t jobCount = 10000,
                                        std::uint64_t seed = 42);

/// Fleet-scale workload for the federated simulator (sps::fed): one
/// generator pass with `cluster`'s population (jobCount is the TOTAL fleet
/// job count; offeredLoad is the PER-CLUSTER target), arrivals compressed
/// by the cluster count so a federation of `clusters` machines sees the
/// configured load on each. Named "<name>-fleet<N>x". At clusters == 1 the
/// jobs are bit-identical to generateTrace(cluster).
[[nodiscard]] Trace generateFleetTrace(const SyntheticConfig& cluster,
                                       std::uint32_t clusters);

/// Re-target a preset at a different machine size (the `sps_sim --procs N`
/// override and the scale-out bench lanes): sets machineProcs and turns on
/// proportional width-band scaling so the width spectrum keeps its shape.
[[nodiscard]] SyntheticConfig scaledToMachine(SyntheticConfig cfg,
                                              std::uint32_t machineProcs);

}  // namespace sps::workload
