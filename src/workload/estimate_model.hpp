// User run-time estimate models (Section V of the paper).
//
// The study first assumes perfect estimates (Section IV), then inaccurate
// ones (Section V), splitting jobs into "well estimated" (estimate <= 2x
// actual) and "badly estimated" (> 2x, which includes jobs that abort
// almost immediately against a long wall-clock request). These models stamp
// Job::estimate accordingly; the actual runtime is never modified.
#pragma once

#include <cstdint>

#include "workload/job.hpp"

namespace sps::workload {

enum class EstimateModelKind {
  /// estimate = runtime (the Section IV idealization).
  Accurate,
  /// estimate = runtime * factor, factor ~ logUniform(1, maxFactor].
  UniformFactor,
  /// Mixture calibrated to the Section V dichotomy: a fraction exact, a
  /// fraction mildly over (uniform factor in (1, 2] — "well estimated"),
  /// and the rest badly over (log-uniform factor in (2, maxFactor] —
  /// includes the abort-like jobs whose tiny runtime meets a huge request).
  Modal,
};

struct EstimateModelConfig {
  EstimateModelKind kind = EstimateModelKind::Accurate;
  std::uint64_t seed = 1;
  /// Modal: probability of an exact estimate.
  double pExact = 0.15;
  /// Modal: probability of a mild overestimate (factor in (1, 2]).
  double pWell = 0.40;
  /// Largest overestimation factor (UniformFactor and Modal tails).
  double maxFactor = 50.0;
};

/// Human-readable model name for reports.
[[nodiscard]] const char* estimateModelName(EstimateModelKind kind);

/// Re-stamp every job's estimate in place. Deterministic in (config.seed,
/// job order). Guarantees estimate >= runtime afterwards.
void applyEstimates(Trace& trace, const EstimateModelConfig& config);

}  // namespace sps::workload
