#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/transforms.hpp"

namespace sps::workload {

namespace {

struct Band {
  Time runLo, runHi;            // runtime in (runLo, runHi] -> log-uniform
  std::uint32_t widthLo, widthHi;  // width in [widthLo, widthHi]
};

Band bandOf(std::size_t category, const SyntheticConfig& cfg) {
  const auto r = static_cast<std::size_t>(runClassOfCategory(category));
  const auto w = static_cast<std::size_t>(widthClassOfCategory(category));
  Band b{};
  switch (r) {
    case 0: b.runLo = cfg.minRuntime - 1; b.runHi = kVeryShortMax; break;
    case 1: b.runLo = kVeryShortMax; b.runHi = kShortMax; break;
    case 2: b.runLo = kShortMax; b.runHi = kLongMax; break;
    default: b.runLo = kLongMax; b.runHi = cfg.maxRuntime; break;
  }
  // Paper-absolute cutoffs by default; proportional to the machine when
  // scaleWidthBands is set (never narrower than the paper's, so small
  // machines are unaffected even with the flag on).
  std::uint32_t narrowMax = kNarrowMax;
  std::uint32_t wideMax = kWideMax;
  if (cfg.scaleWidthBands) {
    narrowMax = std::max<std::uint32_t>(kNarrowMax, cfg.machineProcs / 16);
    wideMax = std::max<std::uint32_t>(kWideMax, cfg.machineProcs / 4);
  }
  switch (w) {
    case 0: b.widthLo = 1; b.widthHi = 1; break;
    case 1: b.widthLo = 2; b.widthHi = narrowMax; break;
    case 2: b.widthLo = narrowMax + 1; b.widthHi = wideMax; break;
    default:
      b.widthLo = wideMax + 1;
      b.widthHi = cfg.machineProcs;
      break;
  }
  return b;
}

}  // namespace

Trace generateTrace(const SyntheticConfig& cfg) {
  SPS_CHECK_MSG(cfg.machineProcs > kWideMax,
                "machine must be wider than the Wide/VeryWide boundary");
  SPS_CHECK_MSG(cfg.jobCount > 0, "jobCount must be positive");
  SPS_CHECK_MSG(cfg.offeredLoad > 0.0 && cfg.offeredLoad < 1.5,
                "offered load " << cfg.offeredLoad << " out of range");
  SPS_CHECK_MSG(cfg.minRuntime > 0 && cfg.minRuntime < kVeryShortMax,
                "minRuntime must fall inside the VS band");
  SPS_CHECK_MSG(cfg.maxRuntime > kLongMax, "maxRuntime must exceed 8 h");
  SPS_CHECK_MSG(cfg.memMinMb > 0 && cfg.memMinMb <= cfg.memMaxMb,
                "bad memory range");
  SPS_CHECK_MSG(cfg.diurnalAmplitude >= 0.0 && cfg.diurnalAmplitude < 1.0,
                "diurnal amplitude must be in [0, 1)");

  Rng master(cfg.seed);
  Rng catRng = master.fork();
  Rng runRng = master.fork();
  Rng widthRng = master.fork();
  Rng memRng = master.fork();
  Rng arrivalRng = master.fork();

  Trace trace;
  trace.name = cfg.name;
  trace.machineProcs = cfg.machineProcs;
  trace.jobs.reserve(cfg.jobCount);

  double work = 0.0;
  for (std::size_t i = 0; i < cfg.jobCount; ++i) {
    const std::size_t cat =
        catRng.weightedIndex(cfg.categoryMix.data(), cfg.categoryMix.size());
    const Band b = bandOf(cat, cfg);
    Job j;
    // Power-law on (runLo, runHi]: sample on [runLo+1, runHi].
    j.runtime = runRng.boundedParetoInt(b.runLo + 1, b.runHi,
                                        cfg.runtimeAlpha);
    j.procs = static_cast<std::uint32_t>(
        widthRng.boundedParetoInt(b.widthLo, b.widthHi, cfg.widthAlpha));
    j.estimate = j.runtime;
    j.memoryMb = static_cast<std::uint32_t>(
        memRng.uniformInt(cfg.memMinMb, cfg.memMaxMb));
    work += static_cast<double>(j.runtime) * static_cast<double>(j.procs);
    trace.jobs.push_back(j);
  }

  // Solve the Poisson rate: span T such that work / (P x T) = offeredLoad.
  const double span =
      work / (static_cast<double>(cfg.machineProcs) * cfg.offeredLoad);
  const double meanInterarrival = span / static_cast<double>(cfg.jobCount);
  if (cfg.diurnalAmplitude == 0.0) {
    double t = 0.0;
    for (Job& j : trace.jobs) {
      j.submit = static_cast<Time>(std::llround(t));
      t += arrivalRng.exponential(meanInterarrival);
    }
  } else {
    // Thinning (Lewis-Shedler): propose at the peak rate, accept with
    // probability rate(t)/peak. The modulation averages out, so the mean
    // rate — and hence the offered load — matches the homogeneous case.
    const double amplitude = cfg.diurnalAmplitude;
    const double peakMeanInterarrival = meanInterarrival / (1.0 + amplitude);
    double t = 0.0;
    for (Job& j : trace.jobs) {
      j.submit = static_cast<Time>(std::llround(t));
      for (;;) {
        t += arrivalRng.exponential(peakMeanInterarrival);
        const double rate =
            1.0 + amplitude * std::sin(2.0 * 3.141592653589793 * t /
                                       static_cast<double>(kDay));
        if (arrivalRng.uniform01() * (1.0 + amplitude) <= rate) break;
      }
    }
  }

  normalizeTrace(trace);
  validateTrace(trace);
  return trace;
}

namespace {
/// Table II (CTC) row-major: rows VS,S,L,VL x cols Seq,N,W,VW, percent.
constexpr std::array<double, kNumCategories16> kCtcMix = {
    14, 8, 13, 9,   // VS
    18, 4, 6, 2,    // S
    6, 3, 9, 2,     // L
    2, 2, 1, 1,     // VL
};
/// Table III (SDSC).
constexpr std::array<double, kNumCategories16> kSdscMix = {
    8, 29, 9, 4,    // VS
    2, 8, 5, 3,     // S
    8, 5, 6, 1,     // L
    3, 5, 3, 1,     // VL
};
}  // namespace

SyntheticConfig ctcConfig(std::size_t jobCount, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "CTC-synth";
  cfg.machineProcs = 430;
  cfg.jobCount = jobCount;
  cfg.seed = seed;
  cfg.categoryMix = kCtcMix;
  cfg.offeredLoad = 0.60;
  cfg.widthAlpha = 3.0;
  return cfg;
}

SyntheticConfig sdscConfig(std::size_t jobCount, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "SDSC-synth";
  cfg.machineProcs = 128;
  cfg.jobCount = jobCount;
  cfg.seed = seed + 1;
  cfg.categoryMix = kSdscMix;
  cfg.offeredLoad = 0.68;
  cfg.widthAlpha = 3.2;
  return cfg;
}

SyntheticConfig kthConfig(std::size_t jobCount, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "KTH-synth";
  cfg.machineProcs = 100;
  cfg.jobCount = jobCount;
  cfg.seed = seed + 2;
  cfg.categoryMix = kSdscMix;  // mix not published; see DESIGN.md
  cfg.offeredLoad = 0.65;
  cfg.widthAlpha = 3.0;
  return cfg;
}

Trace generateFleetTrace(const SyntheticConfig& cluster,
                         std::uint32_t clusters) {
  SPS_CHECK_MSG(clusters >= 1, "a fleet needs at least one cluster");
  // One generator pass at the per-cluster offered load produces the right
  // job population; compressing the arrivals by the cluster count then
  // multiplies the offered load by `clusters`, so a federation that splits
  // the stream across `clusters` machines sees the configured load on each
  // — without ever tripping the single-machine load ceiling inside
  // generateTrace. scaleLoad divides every submit by the same factor
  // (monotone), so job order, ids, and all sampled shapes are untouched;
  // at clusters == 1 the jobs are bit-identical to generateTrace's.
  Trace fleet = generateTrace(cluster);
  if (clusters > 1) fleet = scaleLoad(fleet, static_cast<double>(clusters));
  fleet.name = cluster.name + "-fleet" + std::to_string(clusters) + "x";
  return fleet;
}

SyntheticConfig scaledToMachine(SyntheticConfig cfg,
                                std::uint32_t machineProcs) {
  SPS_CHECK_MSG(machineProcs > kWideMax,
                "machine must be wider than the Wide/VeryWide boundary");
  cfg.name += "@" + std::to_string(machineProcs);
  cfg.machineProcs = machineProcs;
  cfg.scaleWidthBands = true;
  return cfg;
}

}  // namespace sps::workload
