#include "workload/job.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace sps::workload {

void validateTrace(const Trace& trace) {
  if (trace.machineProcs == 0)
    throw InputError("trace '" + trace.name + "': machineProcs == 0");
  Time prevSubmit = std::numeric_limits<Time>::min();
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    const Job& j = trace.jobs[i];
    std::ostringstream ctx;
    ctx << "trace '" << trace.name << "' job index " << i << " (id " << j.id
        << "): ";
    if (j.id != static_cast<JobId>(i))
      throw InputError(ctx.str() + "ids must be dense 0..n-1");
    if (j.submit < prevSubmit)
      throw InputError(ctx.str() + "jobs must be sorted by submit time");
    if (j.runtime <= 0)
      throw InputError(ctx.str() + "runtime must be positive");
    if (j.estimate < j.runtime)
      throw InputError(ctx.str() + "estimate below runtime (jobs are killed "
                                   "at their wall-clock limit; clamp first)");
    if (j.procs == 0)
      throw InputError(ctx.str() + "procs must be >= 1");
    if (j.procs > trace.machineProcs)
      throw InputError(ctx.str() + "procs exceed machine size");
    prevSubmit = j.submit;
  }
}

double totalWork(const Trace& trace) {
  double w = 0.0;
  for (const Job& j : trace.jobs)
    w += static_cast<double>(j.runtime) * static_cast<double>(j.procs);
  return w;
}

double offeredLoad(const Trace& trace) {
  if (trace.jobs.empty() || trace.machineProcs == 0) return 0.0;
  const Time first = trace.jobs.front().submit;
  Time last = first;
  for (const Job& j : trace.jobs) last = std::max(last, j.submit + j.runtime);
  const double span = static_cast<double>(last - first);
  if (span <= 0.0) return 0.0;
  return totalWork(trace) / (static_cast<double>(trace.machineProcs) * span);
}

}  // namespace sps::workload
