#include "workload/swf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "workload/transforms.hpp"

namespace sps::workload {

namespace {
/// One SWF record's raw fields (only the ones we consume).
struct SwfFields {
  double submit = 0;
  double runtime = 0;
  double procsAlloc = -1;
  double memPerProcKb = -1;
  double procsReq = -1;
  double timeReq = -1;
};

bool parseLine(const std::string& line, SwfFields& out, std::size_t lineNo) {
  std::istringstream is(line);
  std::vector<double> fields;
  double v;
  while (is >> v) fields.push_back(v);
  if (fields.empty()) return false;  // blank line
  if (fields.size() < 5)
    throw InputError("SWF line " + std::to_string(lineNo) +
                     ": expected >= 5 fields, got " +
                     std::to_string(fields.size()));
  auto get = [&](std::size_t idx) {  // 1-based SWF field index
    return idx <= fields.size() ? fields[idx - 1] : -1.0;
  };
  out.submit = get(2);
  out.runtime = get(4);
  out.procsAlloc = get(5);
  out.memPerProcKb = get(7);
  out.procsReq = get(8);
  out.timeReq = get(9);
  return true;
}
}  // namespace

Trace readSwf(std::istream& in, const std::string& traceName,
              std::uint32_t machineProcs, SwfReadStats* stats) {
  SwfReadStats local;
  Trace trace;
  trace.name = traceName;
  trace.machineProcs = machineProcs;

  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == ';') continue;
    SwfFields f;
    if (!parseLine(line, f, lineNo)) continue;
    ++local.linesRead;

    const Time runtime = static_cast<Time>(std::llround(f.runtime));
    if (runtime <= 0) {
      ++local.droppedNonPositiveRuntime;
      continue;
    }
    double procsRaw = f.procsAlloc > 0 ? f.procsAlloc : f.procsReq;
    if (procsRaw <= 0) {
      ++local.droppedNonPositiveProcs;
      continue;
    }
    const auto procs = static_cast<std::uint32_t>(std::llround(procsRaw));
    if (procs > machineProcs) {
      ++local.droppedTooWide;
      continue;
    }

    Job j;
    j.submit = static_cast<Time>(std::llround(std::max(f.submit, 0.0)));
    j.runtime = runtime;
    j.procs = procs;
    Time estimate = f.timeReq > 0
                        ? static_cast<Time>(std::llround(f.timeReq))
                        : runtime;
    if (estimate < runtime) {
      estimate = runtime;
      ++local.estimatesClamped;
    }
    j.estimate = estimate;
    if (f.memPerProcKb > 0)
      j.memoryMb = static_cast<std::uint32_t>(
          std::ceil(f.memPerProcKb / 1024.0));
    trace.jobs.push_back(j);
    ++local.jobsAccepted;
  }

  normalizeTrace(trace);
  if (stats != nullptr) *stats = local;
  return trace;
}

Trace readSwfFile(const std::string& path, const std::string& traceName,
                  std::uint32_t machineProcs, SwfReadStats* stats) {
  std::ifstream in(path);
  if (!in) throw InputError("cannot open SWF file: " + path);
  return readSwf(in, traceName, machineProcs, stats);
}

void writeSwf(std::ostream& out, const Trace& trace) {
  out << "; trace: " << trace.name << "\n";
  out << "; MaxProcs: " << trace.machineProcs << "\n";
  for (const Job& j : trace.jobs) {
    // job submit wait run procs cpu mem procsReq timeReq memReq status uid
    // gid exe queue partition preceding think
    out << (j.id + 1) << ' ' << j.submit << ' ' << -1 << ' ' << j.runtime
        << ' ' << j.procs << ' ' << -1 << ' '
        << (j.memoryMb > 0 ? static_cast<long long>(j.memoryMb) * 1024 : -1)
        << ' ' << j.procs << ' ' << j.estimate
        << " -1 1 -1 -1 -1 -1 -1 -1 -1\n";
  }
}

}  // namespace sps::workload
