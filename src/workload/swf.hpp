// Standard Workload Format (SWF) I/O.
//
// The paper draws its workloads from Feitelson's Parallel Workloads Archive
// (CTC/SDSC/KTH SP2 logs), which are distributed in SWF: one line per job,
// 18 whitespace-separated fields, ';' comment lines. This reader lets real
// archive logs drop straight into the simulator; the synthetic generator is
// the stand-in when the logs themselves are not available (see DESIGN.md).
//
// Field mapping (SWF index -> Job):
//    1 job number        -> (re-numbered densely)
//    2 submit time       -> submit
//    4 run time          -> runtime
//    5 allocated procs   -> procs (falls back to field 8, requested procs)
//    7 used memory KB/proc-> memoryMb (rounded up; 0 when absent)
//    9 requested time    -> estimate (clamped up to runtime: jobs are killed
//                           at their wall-clock limit, so runtime never
//                           exceeds the request in a consistent model)
//
// Jobs with non-positive runtime or processor count (cancelled entries) are
// dropped, and a summary of drops is reported.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/job.hpp"

namespace sps::workload {

struct SwfReadStats {
  std::size_t linesRead = 0;
  std::size_t jobsAccepted = 0;
  std::size_t droppedNonPositiveRuntime = 0;
  std::size_t droppedNonPositiveProcs = 0;
  std::size_t droppedTooWide = 0;  ///< wider than machineProcs
  std::size_t estimatesClamped = 0;
};

/// Parse SWF from a stream. `machineProcs` is required (SWF headers carry it
/// only as a comment convention). Throws InputError on malformed lines.
[[nodiscard]] Trace readSwf(std::istream& in, const std::string& traceName,
                            std::uint32_t machineProcs,
                            SwfReadStats* stats = nullptr);

/// Parse an SWF file from disk. Throws InputError if the file cannot be
/// opened.
[[nodiscard]] Trace readSwfFile(const std::string& path,
                                const std::string& traceName,
                                std::uint32_t machineProcs,
                                SwfReadStats* stats = nullptr);

/// Write a trace in SWF (fields the model does not carry are -1).
void writeSwf(std::ostream& out, const Trace& trace);

}  // namespace sps::workload
