#include "fed/router.hpp"

#include "util/check.hpp"

namespace sps::fed {

std::uint32_t LeastLoadedRouter::route(const workload::Job&, std::uint64_t,
                                       const std::vector<ShardView>& shards) {
  std::uint32_t best = 0;
  double bestPressure = shards[0].pressure();
  for (std::uint32_t i = 1; i < shards.size(); ++i) {
    const double p = shards[i].pressure();
    if (p < bestPressure) {
      best = i;
      bestPressure = p;
    }
  }
  return best;
}

std::uint32_t ReplayRouter::route(const workload::Job&, std::uint64_t seq,
                                  const std::vector<ShardView>& shards) {
  SPS_CHECK_MSG(seq < assignments_.size(),
                "ReplayRouter: job seq beyond the recorded assignment vector");
  const std::uint32_t shard = assignments_[seq];
  SPS_CHECK_MSG(shard < shards.size(),
                "ReplayRouter: recorded assignment names a missing shard");
  return shard;
}

std::unique_ptr<JobRouter> routerFromToken(const std::string& token) {
  if (token == "hash") return std::make_unique<StaticHashRouter>();
  if (token == "least-loaded") return std::make_unique<LeastLoadedRouter>();
  throw InputError("unknown router token: " + token +
                   " (expected hash | least-loaded)");
}

std::vector<std::string> knownRouterTokens() {
  return {"hash", "least-loaded"};
}

}  // namespace sps::fed
