#include "fed/federation.hpp"

#include <algorithm>
#include <future>
#include <optional>
#include <queue>
#include <utility>

#include "sched/overhead.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace sps::fed {

namespace {

/// A routed job waiting for its effective submission instant.
struct PendingJob {
  Time effSubmit = 0;
  JobId fleetId = 0;
  /// Min-heap order: earliest effective submit first, fleet id breaking
  /// ties — exactly the order perShardTraces assigns shard-local ids, so
  /// the streamed shard and its batch replay submit identically.
  [[nodiscard]] bool operator>(const PendingJob& o) const {
    return std::tie(effSubmit, fleetId) > std::tie(o.effSubmit, o.fleetId);
  }
};

using PendingQueue =
    std::priority_queue<PendingJob, std::vector<PendingJob>,
                        std::greater<PendingJob>>;

/// One cluster: harness + the grown-as-submitted trace copy that backs the
/// shard's id-keyed overhead model. Heap-allocated so the overhead model's
/// Trace reference stays stable while the shard vector is built.
struct Shard {
  Shard(const std::string& name, std::uint32_t machineProcs,
        const core::PolicySpec& spec, const core::SimulationOptions& options,
        bool diskSwap)
      : overheadTrace{name, machineProcs, {}} {
    core::SimulationOptions armed = options;
    if (diskSwap) {
      overhead.emplace(overheadTrace, 2.0);
      armed.sim.overhead = &*overhead;
    }
    harness.emplace(name, machineProcs, spec, armed);
  }

  workload::Trace overheadTrace;
  std::optional<sched::DiskSwapOverhead> overhead;
  std::optional<core::SimulationHarness> harness;
  PendingQueue pending;
};

}  // namespace

Federation::Federation(const workload::Trace& fleetTrace,
                       const core::PolicySpec& spec, JobRouter& router,
                       FederationConfig config)
    : trace_(fleetTrace),
      spec_(spec),
      router_(router),
      config_(std::move(config)) {
  SPS_CHECK_MSG(config_.shards >= 1, "Federation: needs at least one shard");
  SPS_CHECK_MSG(config_.routingDelay >= 0,
                "Federation: routing delay must be non-negative");
  SPS_CHECK_MSG(config_.epochLength >= 0,
                "Federation: epoch length must be non-negative");
  if (config_.jobsPerEpoch == 0) config_.jobsPerEpoch = 1;
}

FleetStats Federation::run() {
  SPS_CHECK_MSG(!ran_, "Federation::run() is single-use");
  ran_ = true;

  const std::uint32_t shardCount = config_.shards;
  const auto& jobs = trace_.jobs;
  const std::size_t n = jobs.size();

  core::SimulationOptions shardOptions;
  shardOptions.sim.queueKind = config_.queueKind;
  shardOptions.check = config_.check;
  shardOptions.timeline = config_.timeline;

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(shardCount);
  for (std::uint32_t s = 0; s < shardCount; ++s)
    shards.push_back(std::make_unique<Shard>(
        trace_.name + "/shard" + std::to_string(s), trace_.machineProcs,
        spec_, shardOptions, config_.diskSwapOverhead));

  FleetStats fleet;
  fleet.assignments.resize(n);
  fleet.effectiveSubmits.resize(n);

  util::ThreadPool pool(config_.threads);
  std::vector<ShardView> views(shardCount);
  std::vector<std::vector<PendingJob>> released(shardCount);

  // Earliest instant at which anything is still due: the next unrouted
  // arrival or the earliest pending effective submission. kTimeMax = done.
  const auto nextInteresting = [&](std::size_t i) {
    Time next = i < n ? jobs[i].submit : kTimeMax;
    for (const auto& shard : shards)
      if (!shard->pending.empty())
        next = std::min(next, shard->pending.top().effSubmit);
    return next;
  };

  // The epoch boundary after `lastEnd`. Fixed mode tiles sim time in
  // epochLength steps, skipping straight to the tile containing the next
  // due instant so empty stretches of a multi-year trace cost one barrier,
  // not thousands. Auto mode cuts at the submit time of the job
  // jobsPerEpoch ahead of the routing cursor, extended past same-instant
  // bursts so every epoch makes progress. Both are functions of the trace
  // alone — never of shard timing — so boundaries are deterministic.
  const auto pickEpochEnd = [&](std::size_t i, Time lastEnd) {
    const Time next = nextInteresting(i);
    if (next == kTimeMax) return kTimeMax;
    if (config_.epochLength > 0) {
      const Time steps = (next - lastEnd) / config_.epochLength + 1;
      return lastEnd + steps * config_.epochLength;
    }
    if (i >= n) return kTimeMax;  // routed everything; release the tail
    std::size_t target = i + config_.jobsPerEpoch;
    if (target >= n) return kTimeMax;
    while (target < n && jobs[target].submit <= jobs[i].submit) ++target;
    return target < n ? jobs[target].submit : kTimeMax;
  };

  std::size_t i = 0;  // routing cursor into the fleet trace
  Time lastEnd = 0;
  while (i < n || std::any_of(shards.begin(), shards.end(),
                              [](const auto& s) { return !s->pending.empty(); })) {
    const Time epochEnd = pickEpochEnd(i, lastEnd);

    // --- barrier work: route this window in global (submit, id) order ---
    for (std::uint32_t s = 0; s < shardCount; ++s) {
      views[s].machineProcs = trace_.machineProcs;
      views[s].backlogProcSeconds =
          shards[s]->harness->simulator().queuedProcEstimateSeconds();
      views[s].routedProcSeconds = 0.0;
    }
    while (i < n && (epochEnd == kTimeMax || jobs[i].submit < epochEnd)) {
      const workload::Job& job = jobs[i];
      const std::uint32_t target = router_.route(job, job.id, views);
      SPS_CHECK_MSG(target < shardCount,
                    "Federation: router named a missing shard");
      const std::uint32_t home =
          static_cast<std::uint32_t>(job.id % shardCount);
      const Time effSubmit =
          target == home ? job.submit : job.submit + config_.routingDelay;
      fleet.assignments[job.id] = target;
      fleet.effectiveSubmits[job.id] = effSubmit;
      if (target != home) ++fleet.forwarded;
      views[target].routedProcSeconds +=
          static_cast<double>(job.procs) * static_cast<double>(job.estimate);
      shards[target]->pending.push(PendingJob{effSubmit, job.id});
      ++i;
    }

    // --- release each shard's due jobs and advance to the boundary ------
    for (std::uint32_t s = 0; s < shardCount; ++s) {
      released[s].clear();
      auto& pending = shards[s]->pending;
      while (!pending.empty() &&
             (epochEnd == kTimeMax || pending.top().effSubmit < epochEnd)) {
        released[s].push_back(pending.top());
        pending.pop();
      }
    }
    std::vector<std::future<void>> barrier;
    barrier.reserve(shardCount);
    for (std::uint32_t s = 0; s < shardCount; ++s) {
      Shard& shard = *shards[s];
      const std::vector<PendingJob>& due = released[s];
      barrier.push_back(pool.submit([this, &shard, &due, epochEnd] {
        sim::Simulator& simulator = shard.harness->simulator();
        for (const PendingJob& p : due) {
          simulator.runUntil(p.effSubmit - 1);
          workload::Job job = trace_.jobs[p.fleetId];
          job.submit = p.effSubmit;
          job.id = static_cast<JobId>(shard.overheadTrace.jobs.size());
          shard.overheadTrace.jobs.push_back(job);
          (void)simulator.submit(job);
        }
        if (epochEnd != kTimeMax) simulator.runUntil(epochEnd - 1);
      }));
    }
    // Awaiting in shard order keeps failure reporting deterministic; the
    // futures also form the epoch's memory barrier.
    for (auto& f : barrier) f.get();
    ++fleet.epochs;
    lastEnd = epochEnd;
    if (epochEnd == kTimeMax) break;
  }

  fleet.shards.reserve(shardCount);
  for (auto& shard : shards)
    fleet.shards.push_back(shard->harness->finish());
  return fleet;
}

std::vector<workload::Trace> perShardTraces(
    const workload::Trace& fleetTrace,
    const std::vector<std::uint32_t>& assignments,
    const std::vector<Time>& effectiveSubmits, std::uint32_t shards) {
  SPS_CHECK_MSG(assignments.size() == fleetTrace.jobs.size() &&
                    effectiveSubmits.size() == fleetTrace.jobs.size(),
                "perShardTraces: routing record does not match the trace");
  std::vector<workload::Trace> out(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    out[s].name = fleetTrace.name + "/shard" + std::to_string(s);
    out[s].machineProcs = fleetTrace.machineProcs;
  }
  // (effSubmit, fleet id) per shard — the release order of the federation.
  std::vector<std::vector<PendingJob>> byShard(shards);
  for (const workload::Job& job : fleetTrace.jobs) {
    SPS_CHECK_MSG(assignments[job.id] < shards,
                  "perShardTraces: assignment names a missing shard");
    byShard[assignments[job.id]].push_back(
        PendingJob{effectiveSubmits[job.id], job.id});
  }
  for (std::uint32_t s = 0; s < shards; ++s) {
    auto& list = byShard[s];
    std::sort(list.begin(), list.end(),
              [](const PendingJob& a, const PendingJob& b) { return b > a; });
    out[s].jobs.reserve(list.size());
    for (const PendingJob& p : list) {
      workload::Job job = fleetTrace.jobs[p.fleetId];
      job.submit = p.effSubmit;
      job.id = static_cast<JobId>(out[s].jobs.size());
      out[s].jobs.push_back(job);
    }
  }
  return out;
}

std::uint64_t FleetStats::jobCount() const {
  std::uint64_t total = 0;
  for (const auto& s : shards) total += s.jobs.size();
  return total;
}

std::uint64_t FleetStats::eventsProcessed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards) total += s.eventsProcessed;
  return total;
}

std::uint64_t FleetStats::suspensions() const {
  std::uint64_t total = 0;
  for (const auto& s : shards) total += s.suspensions;
  return total;
}

obs::Counters FleetStats::counters() const {
  obs::Counters merged;
  for (const auto& s : shards) merged.merge(s.counters);
  return merged;
}

double FleetStats::meanBoundedSlowdown() const {
  double weighted = 0.0;
  std::uint64_t jobs = 0;
  for (const auto& s : shards) {
    weighted += s.meanBoundedSlowdown() * static_cast<double>(s.jobs.size());
    jobs += s.jobs.size();
  }
  return jobs == 0 ? 0.0 : weighted / static_cast<double>(jobs);
}

double FleetStats::utilization() const {
  double busyWeighted = 0.0;
  double procSeconds = 0.0;
  for (const auto& s : shards) {
    const double weight = static_cast<double>(s.span);
    busyWeighted += s.utilization * weight;
    procSeconds += weight;
  }
  return procSeconds == 0.0 ? 0.0 : busyWeighted / procSeconds;
}

Time FleetStats::span() const {
  Time longest = 0;
  for (const auto& s : shards) longest = std::max(longest, s.span);
  return longest;
}

}  // namespace sps::fed
