// JobRouter — the placement seam of the cluster federation (sps::fed).
//
// A federated run partitions the machine into N identical clusters; every
// fleet job must land on exactly one of them. The router makes that call,
// once per job, in global submission order, at epoch barriers — the only
// moments when every shard's state is quiescent and consistent — so any
// routing rule is deterministic by construction, independent of the worker
// pool size.
//
// Three bundled rules:
//   * StaticHashRouter — shard = seq % shards. Stateless, the home-shard
//     rule; the forwarding-delay model prices any deviation from it.
//   * LeastLoadedRouter — smallest backlog, where backlog is the shard's
//     queuedProcEstimateSeconds() snapshot (O(1) on the simulator) plus the
//     work already routed there within the current epoch window. The
//     in-window accounting makes a burst spread instead of dog-piling the
//     shard that looked idle at the barrier.
//   * ReplayRouter — reproduces a recorded assignment vector verbatim. The
//     equivalence theorem runs through this: any federated schedule is
//     replayable shard by shard as plain single-cluster simulations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/types.hpp"
#include "workload/job.hpp"

namespace sps::fed {

/// One shard's load picture at routing time. `backlogProcSeconds` is the
/// simulator's queued procs x estimate aggregate sampled at the epoch
/// barrier; `routedProcSeconds` accumulates the demand the router has
/// already placed on the shard within the current window (reset at each
/// barrier, maintained by the federation, not the router).
struct ShardView {
  std::uint32_t machineProcs = 0;
  double backlogProcSeconds = 0.0;
  double routedProcSeconds = 0.0;
  [[nodiscard]] double pressure() const {
    return (backlogProcSeconds + routedProcSeconds) /
           static_cast<double>(machineProcs == 0 ? 1 : machineProcs);
  }
};

/// Routing decision interface. route() is called exactly once per fleet
/// job, in global (submit, seq) order; `seq` is the job's dense fleet id.
/// Implementations must be deterministic functions of their arguments and
/// any recorded state — the federation calls them single-threaded.
class JobRouter {
 public:
  virtual ~JobRouter() = default;
  [[nodiscard]] virtual std::uint32_t route(
      const workload::Job& job, std::uint64_t seq,
      const std::vector<ShardView>& shards) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// shard = seq % shards — the stateless home-shard rule.
class StaticHashRouter final : public JobRouter {
 public:
  [[nodiscard]] std::uint32_t route(
      const workload::Job&, std::uint64_t seq,
      const std::vector<ShardView>& shards) override {
    return static_cast<std::uint32_t>(seq % shards.size());
  }
  [[nodiscard]] std::string name() const override { return "hash"; }
};

/// Smallest pressure() wins; ties break to the lowest shard index so the
/// rule stays deterministic when several shards are equally idle.
class LeastLoadedRouter final : public JobRouter {
 public:
  [[nodiscard]] std::uint32_t route(
      const workload::Job& job, std::uint64_t seq,
      const std::vector<ShardView>& shards) override;
  [[nodiscard]] std::string name() const override { return "least-loaded"; }
};

/// Replays a recorded assignment vector: job seq i goes to assignments[i].
class ReplayRouter final : public JobRouter {
 public:
  explicit ReplayRouter(std::vector<std::uint32_t> assignments)
      : assignments_(std::move(assignments)) {}
  [[nodiscard]] std::uint32_t route(
      const workload::Job&, std::uint64_t seq,
      const std::vector<ShardView>&) override;
  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  std::vector<std::uint32_t> assignments_;
};

/// Parse a router token ("hash" | "least-loaded") into a fresh router.
/// Throws InputError on an unknown token. ("replay" needs an assignment
/// vector and is constructed directly.)
[[nodiscard]] std::unique_ptr<JobRouter> routerFromToken(
    const std::string& token);

/// The tokens routerFromToken accepts — the fuzzer's router lane list.
[[nodiscard]] std::vector<std::string> knownRouterTokens();

}  // namespace sps::fed
