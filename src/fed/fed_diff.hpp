// Federated differential — the equivalence theorem made executable.
//
// A federation with a recorded router must equal the matching single-
// cluster batch runs on the per-shard traces it induced, bit for bit.
// diffFederated runs one fuzz case both ways under BOTH kernel modes with
// the invariant oracle armed on every shard, audits fleet conservation,
// and compares each shard's collected RunStats through the OpenMetrics
// exposition — a strict string equality that covers the schedule-derived
// statistics, the full counter block, and the 16-category suspension
// breakdown at once. sps_fuzz's federation lane and the fed repros in
// tests/corpus/ replay through this entry point.
#pragma once

#include <cstdint>

#include "check/check_config.hpp"
#include "check/diff_harness.hpp"

namespace sps::fed {

/// Run `c` (which must have fedShards > 0) as a federation and diff it
/// against its per-shard single-cluster replay under both kernel modes.
/// The kernel-mode/queue-kind crossing matches DiffHarness: the rebuild
/// lane runs the binary-heap event queue, the incremental lane the
/// calendar queue. `threads` sizes the shard pool (0 = hardware).
[[nodiscard]] check::DiffOutcome diffFederated(
    const check::FuzzCase& c,
    const check::CheckConfig& checks = check::CheckConfig::all(1),
    std::size_t threads = 0);

}  // namespace sps::fed
