#include "fed/fed_diff.hpp"

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/fleet_audit.hpp"
#include "fed/federation.hpp"
#include "metrics/openmetrics.hpp"
#include "sched/overhead.hpp"
#include "sched/policy_factory.hpp"
#include "util/check.hpp"

namespace sps::fed {

namespace {

using check::CheckConfig;
using check::DiffOutcome;
using check::FuzzCase;
using sched::kernel::KernelMode;

[[nodiscard]] const char* modeName(KernelMode mode) {
  return mode == KernelMode::Rebuild ? "rebuild" : "incremental";
}

/// The same kernel-mode / queue-kind crossing DiffHarness uses, so the
/// federated lane keeps pinning both redesigned layers at once.
[[nodiscard]] sim::QueueKind queueKindFor(KernelMode mode) {
  return mode == KernelMode::Rebuild ? sim::QueueKind::BinaryHeap
                                     : sim::QueueKind::Calendar;
}

/// One single-cluster batch run of a shard's induced trace, configured
/// exactly as the federation configured that shard: same resolved spec,
/// same queue kind, same oracle toggles, and — when the case models
/// suspension cost — a DiskSwapOverhead over the shard trace, whose rows
/// match the shard's grown-as-submitted copy id for id.
[[nodiscard]] metrics::RunStats runShardBatch(const FuzzCase& c,
                                              const core::PolicySpec& spec,
                                              const workload::Trace& shard,
                                              KernelMode mode,
                                              const CheckConfig& checks) {
  std::optional<sched::DiskSwapOverhead> overhead;
  core::SimulationOptions options;
  options.sim.queueKind = queueKindFor(mode);
  options.check = checks;
  if (c.overhead) {
    overhead.emplace(shard);
    options.sim.overhead = &*overhead;
  }
  return core::runSimulation(shard, spec, options);
}

[[nodiscard]] DiffOutcome diffMode(const FuzzCase& c,
                                   const CheckConfig& checks,
                                   std::size_t threads, KernelMode mode) {
  DiffOutcome out;
  const core::PolicySpec spec =
      sched::withKernelMode(check::resolveCaseSpec(c), mode);

  FederationConfig config;
  config.shards = c.fedShards;
  config.routingDelay = c.fedDelay;
  config.threads = threads;
  config.queueKind = queueKindFor(mode);
  config.diskSwapOverhead = c.overhead;
  config.check = checks;

  // Lane 1: the live router, with the conservation audit over its record.
  FleetStats fleet;
  try {
    const auto router = routerFromToken(c.fedRouter);
    Federation federation(c.trace, spec, *router, config);
    fleet = federation.run();
    check::auditFleetConservation(c.trace, fleet.shards, fleet.assignments,
                                  fleet.effectiveSubmits, c.fedShards,
                                  c.fedDelay);
  } catch (const InvariantError& e) {
    out.violation = std::string(modeName(mode)) + ": " + e.what();
    return out;
  }

  // Lane 2: a federation driven by the recorded assignments must retrace
  // the live run exactly — the "recorded router" half of the theorem.
  FleetStats replay;
  try {
    ReplayRouter recorded(fleet.assignments);
    Federation federation(c.trace, spec, recorded, config);
    replay = federation.run();
  } catch (const InvariantError& e) {
    out.violation = std::string(modeName(mode)) + " replay: " + e.what();
    return out;
  }
  if (replay.assignments != fleet.assignments ||
      replay.effectiveSubmits != fleet.effectiveSubmits) {
    out.divergence = std::string(modeName(mode)) +
                     ": recorded-router replay routed the fleet differently";
    return out;
  }

  // Lane 3: each shard against its single-cluster batch run, bit for bit.
  const std::vector<workload::Trace> shardTraces = perShardTraces(
      c.trace, fleet.assignments, fleet.effectiveSubmits, c.fedShards);
  for (std::uint32_t s = 0; s < c.fedShards; ++s) {
    const std::string fedMetrics = metrics::openMetrics(fleet.shards[s]);
    if (metrics::openMetrics(replay.shards[s]) != fedMetrics) {
      std::ostringstream os;
      os << modeName(mode) << ": shard " << s
         << " metrics differ between the live and recorded-router runs";
      out.divergence = os.str();
      return out;
    }
    metrics::RunStats batch;
    try {
      batch = runShardBatch(c, spec, shardTraces[s], mode, checks);
    } catch (const InvariantError& e) {
      std::ostringstream os;
      os << modeName(mode) << " shard " << s << " batch replay: " << e.what();
      out.violation = os.str();
      return out;
    }
    if (metrics::openMetrics(batch) != fedMetrics) {
      std::ostringstream os;
      os << modeName(mode) << ": shard " << s
         << " federation metrics differ from the single-cluster batch run";
      out.divergence = os.str();
      return out;
    }
  }
  return out;
}

}  // namespace

DiffOutcome diffFederated(const FuzzCase& c, const CheckConfig& checks,
                          std::size_t threads) {
  SPS_CHECK_MSG(c.fedShards > 0,
                "diffFederated: case has no federated lane (fedShards == 0)");
  for (const KernelMode mode :
       {KernelMode::Rebuild, KernelMode::Incremental}) {
    DiffOutcome out = diffMode(c, checks, threads, mode);
    if (!out.ok()) return out;
  }
  return {};
}

}  // namespace sps::fed
