// Federation — conservative multi-cluster simulation (sps::fed).
//
// Runs N Simulator shards — each a full cluster with its own Machine,
// policy instance, and invariant oracle — on one util::ThreadPool, advanced
// in conservative epochs over the PR-8 steppable contract:
//
//   route the epoch's arrivals (single-threaded, global submit order)
//   release each shard's due jobs; per shard, on the pool:
//       runUntil(submit - 1); submit(job); ... runUntil(epochEnd - 1)
//   barrier on the futures; repeat; drain every shard.
//
// The epoch boundary is exclusive: an epoch [a, b) dispatches exactly the
// events with time < b, so no shard ever advances past a time at which a
// cross-shard arrival could still land. The routing delay is the lookahead
// channel: a job forwarded off its home shard arrives delay seconds late,
// and because every not-yet-routed job has submit >= b, its effective
// submission is >= b too — each epoch's release set is complete and final
// when the shards start running. That is the SST conservative-federate
// scheme with the ingest boundary as the synchronization interface
// (DESIGN.md §3.14).
//
// Determinism: routing is single-threaded at barriers, shards are
// independent between barriers, and futures are awaited in shard order —
// results are bit-identical for every pool size. Equivalence: a federation
// with a recorded router equals the matching single-shard batch runs on
// the per-shard traces (perShardTraces), bit for bit; tests/
// test_federation.cpp pins both, sps_fuzz's federation lane hammers them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/check_config.hpp"
#include "core/simulation.hpp"
#include "fed/router.hpp"
#include "metrics/collector.hpp"
#include "obs/timeline.hpp"
#include "workload/job.hpp"

namespace sps::fed {

struct FederationConfig {
  /// Cluster count. The fleet trace's machineProcs is the size of ONE
  /// cluster (every job must fit a single cluster; there is no cross-shard
  /// co-allocation in the paper's rigid-job model).
  std::uint32_t shards = 2;
  /// Seconds a job forwarded off its home shard (seq % shards) arrives
  /// late — the price of moving an input deck between clusters, and the
  /// federation's lookahead window. 0 = free forwarding.
  Time routingDelay = 0;
  /// Fixed epoch length in sim-seconds; 0 (default) sizes epochs by job
  /// count instead (jobsPerEpoch), which keeps barrier counts bounded on
  /// multi-year fleet traces. Given a routing record, results are invariant
  /// to this knob — epoch boundaries only batch work, they never change a
  /// schedule. (A load-observing router's DECISIONS may differ under a
  /// different cadence, since its inputs are barrier snapshots; replaying
  /// its recorded assignments is cadence-invariant again.)
  Time epochLength = 0;
  /// Auto-epoch batch size: each epoch routes roughly this many jobs.
  std::size_t jobsPerEpoch = 4096;
  /// Worker threads for the shard pool (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Per-shard event-queue structure.
  sim::QueueKind queueKind = sim::QueueKind::Calendar;
  /// Arm the 2 MB/s disk-swap suspension overhead model on every shard
  /// (built per shard over the shard's own stream, so per-job costs match
  /// the single-cluster replay bit for bit).
  bool diskSwapOverhead = false;
  /// Invariant-oracle toggles, armed per shard.
  check::CheckConfig check{};
  /// Sim-clock timeline sampling, armed per shard; the series land in the
  /// per-shard RunStats (mergeable downstream via the quantile sketches).
  obs::TimelineConfig timeline{};
};

/// Everything a federated run produced: the per-shard runs plus the
/// routing record that makes the run replayable and auditable.
struct FleetStats {
  /// Per-shard collected runs, indexed by shard. traceName is
  /// "<fleet>/shard<i>"; counters/timeline/jobs are the shard's own.
  std::vector<metrics::RunStats> shards;
  /// Shard index of every fleet job, by fleet job id (the replay record).
  std::vector<std::uint32_t> assignments;
  /// Effective submission instant of every fleet job: submit, plus the
  /// routing delay when the job was forwarded off its home shard.
  std::vector<Time> effectiveSubmits;
  /// Conservative epochs executed (barrier count).
  std::uint64_t epochs = 0;
  /// Jobs routed off their home shard (each pays routingDelay).
  std::uint64_t forwarded = 0;

  // --- fleet aggregates ----------------------------------------------------
  [[nodiscard]] std::uint64_t jobCount() const;
  [[nodiscard]] std::uint64_t eventsProcessed() const;
  [[nodiscard]] std::uint64_t suspensions() const;
  /// Sum of every shard's counter block (obs::Counters::merge).
  [[nodiscard]] obs::Counters counters() const;
  /// Job-weighted mean bounded slowdown across shards.
  [[nodiscard]] double meanBoundedSlowdown() const;
  /// Processor-second-weighted utilization across shards.
  [[nodiscard]] double utilization() const;
  /// Latest shard makespan (first fleet submit to last fleet completion).
  [[nodiscard]] Time span() const;
};

class Federation {
 public:
  /// The fleet trace must satisfy validateTrace(); machineProcs is the
  /// per-cluster size. The spec must be fully resolved (tss limits
  /// bootstrapped by the caller — from the fleet trace, so every shard and
  /// every replay sees identical limits). Router and trace must outlive
  /// run().
  Federation(const workload::Trace& fleetTrace, const core::PolicySpec& spec,
             JobRouter& router, FederationConfig config);

  /// Execute the federated run to completion. Call once.
  [[nodiscard]] FleetStats run();

 private:
  const workload::Trace& trace_;
  core::PolicySpec spec_;
  JobRouter& router_;
  FederationConfig config_;
  bool ran_ = false;
};

/// Rebuild the per-cluster traces a federated run induced: shard i's trace
/// holds exactly the jobs with assignments[id] == i, submitted at their
/// effective instants, ids re-numbered densely in shard arrival order, and
/// named "<fleet>/shard<i>" — the single-cluster workloads whose batch
/// runs the equivalence battery compares against the federation, bit for
/// bit.
[[nodiscard]] std::vector<workload::Trace> perShardTraces(
    const workload::Trace& fleetTrace,
    const std::vector<std::uint32_t>& assignments,
    const std::vector<Time>& effectiveSubmits, std::uint32_t shards);

}  // namespace sps::fed
