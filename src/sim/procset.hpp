// ProcSet — a fixed-capacity bitset over named processors.
//
// Local preemption (the model in the paper: no process migration) requires a
// suspended job to resume on the *identical* set of processors, so the
// simulator tracks concrete processor IDs rather than free counts. A flat
// 1024-bit set (16 machine words) covers every machine in the study (CTC SP2
// = 430, SDSC SP2 = 128, KTH SP2 = 100) with room for larger systems, and
// keeps every set operation branch-free over a few words.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace sps::sim {

class ProcSet {
 public:
  static constexpr std::uint32_t kMaxProcs = 1024;
  static constexpr std::size_t kWords = kMaxProcs / 64;

  /// The empty set.
  constexpr ProcSet() : words_{} {}

  /// The set {0, 1, ..., n-1}. Requires n <= kMaxProcs.
  static ProcSet firstN(std::uint32_t n);

  [[nodiscard]] bool contains(std::uint32_t proc) const {
    SPS_DCHECK(proc < kMaxProcs);
    return (words_[proc >> 6] >> (proc & 63)) & 1u;
  }

  void insert(std::uint32_t proc) {
    SPS_DCHECK(proc < kMaxProcs);
    words_[proc >> 6] |= std::uint64_t{1} << (proc & 63);
  }

  void erase(std::uint32_t proc) {
    SPS_DCHECK(proc < kMaxProcs);
    words_[proc >> 6] &= ~(std::uint64_t{1} << (proc & 63));
  }

  void clear() { words_.fill(0); }

  [[nodiscard]] std::uint32_t count() const;
  [[nodiscard]] bool empty() const;

  [[nodiscard]] bool intersects(const ProcSet& other) const;
  [[nodiscard]] bool isSubsetOf(const ProcSet& other) const;

  [[nodiscard]] ProcSet operator|(const ProcSet& other) const;
  [[nodiscard]] ProcSet operator&(const ProcSet& other) const;
  /// Set difference: elements of *this not in other.
  [[nodiscard]] ProcSet operator-(const ProcSet& other) const;
  ProcSet& operator|=(const ProcSet& other);
  ProcSet& operator&=(const ProcSet& other);
  ProcSet& operator-=(const ProcSet& other);

  bool operator==(const ProcSet& other) const = default;

  /// The n lowest-numbered processors of this set. Requires n <= count().
  [[nodiscard]] ProcSet lowest(std::uint32_t n) const;

  /// Lowest-numbered member; requires non-empty.
  [[nodiscard]] std::uint32_t first() const;

  /// Visit members in increasing order. F: void(std::uint32_t).
  template <typename F>
  void forEach(F&& f) const {
    for (std::size_t w = 0; w < kWords; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(bits));
        f(static_cast<std::uint32_t>(w * 64) + bit);
        bits &= bits - 1;
      }
    }
  }

  /// Compact human-readable form, e.g. "{0-3,7,12-15}".
  [[nodiscard]] std::string toString() const;

 private:
  std::array<std::uint64_t, kWords> words_;
};

}  // namespace sps::sim
