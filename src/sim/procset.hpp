// ProcSet — a capacity-parametric set of named processors.
//
// Local preemption (the model in the paper: no process migration) requires a
// suspended job to resume on the *identical* set of processors, so the
// simulator tracks concrete processor IDs rather than free counts. The
// representation is a hybrid:
//
//   * Small-set mode: processors < kInlineBits (1024) live in 16 inline
//     machine words — zero allocation, branch-free word loops, bit-identical
//     with the original fixed bitset for every machine of the paper's study
//     (CTC SP2 = 430, SDSC SP2 = 128, KTH SP2 = 100).
//   * Large-set mode: processors >= kInlineBits live in a dynamically sized
//     *window* of words [extBase, extBase + ext.size()) — memory is
//     proportional to the span a set actually touches, not to the machine.
//     On a 100k-processor machine the full free set costs ~12 KB, while a
//     job's allocation (first-fit keeps it clustered) costs a couple of
//     words wherever it landed.
//
// Canonical form: the window is trimmed (first and last ext words non-zero;
// extBase == 0 when the window is empty), so structural equality is
// memberwise equality and two equal sets always compare equal regardless of
// the operation history that built them. tests/test_procset_diff.cpp pins
// the hybrid against a plain reference bitset over adversarial run patterns.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace sps::sim {

class ProcSet {
 public:
  /// Small-set mode boundary: processors below this live in inline words.
  static constexpr std::uint32_t kInlineBits = 1024;
  static constexpr std::size_t kInlineWords = kInlineBits / 64;

  /// The empty set.
  ProcSet() : words_{} {}

  /// The set {0, 1, ..., n-1}, for any n.
  static ProcSet firstN(std::uint32_t n);

  [[nodiscard]] bool contains(std::uint32_t proc) const {
    if (proc < kInlineBits)
      return (words_[proc >> 6] >> (proc & 63)) & 1u;
    const std::uint32_t w = proc >> 6;
    if (w < extBase_ || w - extBase_ >= ext_.size()) return false;
    return (ext_[w - extBase_] >> (proc & 63)) & 1u;
  }

  void insert(std::uint32_t proc) {
    if (proc < kInlineBits) {
      words_[proc >> 6] |= std::uint64_t{1} << (proc & 63);
      return;
    }
    insertExt(proc);
  }

  void erase(std::uint32_t proc) {
    if (proc < kInlineBits) {
      words_[proc >> 6] &= ~(std::uint64_t{1} << (proc & 63));
      return;
    }
    eraseExt(proc);
  }

  void clear() {
    words_.fill(0);
    ext_.clear();
    extBase_ = 0;
  }

  [[nodiscard]] std::uint32_t count() const;
  [[nodiscard]] bool empty() const;

  [[nodiscard]] bool intersects(const ProcSet& other) const;
  [[nodiscard]] bool isSubsetOf(const ProcSet& other) const;

  [[nodiscard]] ProcSet operator|(const ProcSet& other) const;
  [[nodiscard]] ProcSet operator&(const ProcSet& other) const;
  /// Set difference: elements of *this not in other.
  [[nodiscard]] ProcSet operator-(const ProcSet& other) const;
  ProcSet& operator|=(const ProcSet& other);
  ProcSet& operator&=(const ProcSet& other);
  ProcSet& operator-=(const ProcSet& other);

  /// Structural equality; canonical trimming makes it semantic equality.
  bool operator==(const ProcSet& other) const = default;

  /// The n lowest-numbered processors of this set. Requires n <= count().
  [[nodiscard]] ProcSet lowest(std::uint32_t n) const;

  /// Lowest-numbered member; requires non-empty.
  [[nodiscard]] std::uint32_t first() const;

  /// Visit members in increasing order. F: void(std::uint32_t).
  template <typename F>
  void forEach(F&& f) const {
    for (std::size_t w = 0; w < kInlineWords; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(bits));
        f(static_cast<std::uint32_t>(w * 64) + bit);
        bits &= bits - 1;
      }
    }
    for (std::size_t i = 0; i < ext_.size(); ++i) {
      std::uint64_t bits = ext_[i];
      const auto base =
          static_cast<std::uint32_t>((extBase_ + i) * 64);
      while (bits != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(bits));
        f(base + bit);
        bits &= bits - 1;
      }
    }
  }

  /// Compact human-readable form, e.g. "{0-3,7,12-15}".
  [[nodiscard]] std::string toString() const;

 private:
  /// Word `w` (absolute index) of the dynamic window; 0 outside it.
  [[nodiscard]] std::uint64_t extWord(std::size_t w) const {
    return (w >= extBase_ && w - extBase_ < ext_.size())
               ? ext_[w - extBase_]
               : 0;
  }
  void insertExt(std::uint32_t proc);
  void eraseExt(std::uint32_t proc);
  /// Restore canonical form after an operation that may have cleared the
  /// window's leading or trailing words.
  void trimExt();

  /// Bits [0, kInlineBits): the zero-allocation small-set mode.
  std::array<std::uint64_t, kInlineWords> words_;
  /// Absolute word index of ext_[0]; >= kInlineWords when the window is
  /// non-empty, 0 when it is empty (canonical form).
  std::uint32_t extBase_ = 0;
  /// Bits [extBase_*64, (extBase_+ext_.size())*64): the large-set window.
  std::vector<std::uint64_t> ext_;
};

}  // namespace sps::sim
