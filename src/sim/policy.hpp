// SchedulingPolicy — the interface every scheduler implements.
//
// The Simulator owns time, the machine, and job lifecycle mechanics; a
// policy only *decides*: which queued/suspended job to (re)start, which
// running job to suspend. Policies act through Simulator's startJob /
// resumeJob / suspendJob / scheduleTimer and must never mutate state any
// other way.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace sps::sim {

class Simulator;

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Human-readable policy name ("EASY", "SS(SF=2)", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the first event fires.
  virtual void onSimulationStart(Simulator& /*simulator*/) {}

  /// A job entered the queue (Simulator has already queued it).
  virtual void onJobArrival(Simulator& simulator, JobId job) = 0;

  /// A running job completed (already removed from the machine).
  virtual void onJobCompletion(Simulator& simulator, JobId job) = 0;

  /// A suspended job finished writing out its memory image; its processors
  /// are free as of this instant. Only fires when an overhead model is
  /// active — with zero overhead suspension drains synchronously.
  virtual void onSuspendDrained(Simulator& /*simulator*/, JobId /*job*/) {}

  /// A timer previously armed with Simulator::scheduleTimer fired.
  virtual void onTimer(Simulator& /*simulator*/, std::uint64_t /*tag*/) {}

  /// Whether this policy tolerates Simulator::cancelJob removing one of its
  /// pending (Queued/Suspended) jobs mid-run. Policies that bind future
  /// state to specific jobs at decision time (reservation ledgers, gang
  /// rotations) return false until they learn to repair that state; the
  /// simulator then rejects the cancel instead of corrupting them.
  [[nodiscard]] virtual bool supportsCancel() const { return false; }

  /// A Queued or Suspended job was cancelled (Simulator::cancelJob). The
  /// simulator has already done the lifecycle bookkeeping — the job is in
  /// state Cancelled and off the pending lists — so the policy only drops
  /// its own references (queue entries, claims). Never fires unless
  /// supportsCancel() returned true.
  virtual void onJobCancelled(Simulator& /*simulator*/, JobId /*job*/) {}

  /// Called once after the last event, for end-of-run assertions.
  virtual void onSimulationEnd(Simulator& /*simulator*/) {}
};

/// Per-job suspension/restart cost model (Section V-A of the paper).
/// Implementations live in sched/overhead.hpp; the interface sits here so the
/// simulator core has no dependency on the policy layer.
class OverheadPolicy {
 public:
  virtual ~OverheadPolicy() = default;
  /// Seconds the job's processors stay busy writing state out on suspension.
  [[nodiscard]] virtual Time suspendOverhead(JobId job) const = 0;
  /// Seconds of read-back prepended to the job's next running segment.
  [[nodiscard]] virtual Time resumeOverhead(JobId job) const = 0;
};

}  // namespace sps::sim
