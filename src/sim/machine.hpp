// Machine — named-processor allocation with a busy-time integral.
//
// Owns the free/busy partition of the machine's processors, allocates
// concrete processor sets to jobs, and integrates busy processor-seconds for
// the utilization figures (Figs. 35, 38, 41–44 of the paper).
#pragma once

#include <cstdint>

#include "sim/procset.hpp"
#include "util/types.hpp"

namespace sps::sim {

class Machine {
 public:
  /// Sanity ceiling on machine size. The ProcSet representation is
  /// capacity-parametric, so this is not a storage bound — it only rejects
  /// nonsense (e.g. a sign error) before it allocates gigabytes.
  static constexpr std::uint32_t kMaxMachineProcs = 1u << 24;

  /// A machine with processors {0, ..., totalProcs-1}, all free.
  explicit Machine(std::uint32_t totalProcs);

  [[nodiscard]] std::uint32_t totalProcs() const { return total_; }
  [[nodiscard]] std::uint32_t freeCount() const { return freeCount_; }
  [[nodiscard]] std::uint32_t busyCount() const { return total_ - freeCount(); }
  [[nodiscard]] const ProcSet& freeSet() const { return free_; }

  /// Allocate the `n` lowest-numbered free processors at time `now`.
  /// Requires n <= freeCount(). First-fit-by-number keeps allocation
  /// deterministic and maximally packs low processor IDs.
  ProcSet allocate(std::uint32_t n, Time now);

  /// Allocate the `n` lowest-numbered free processors that are NOT in
  /// `avoid`. Used by preemptive policies to keep freshly-freed processors
  /// reserved for the preemptor that paid for them. Requires n free
  /// processors outside `avoid`.
  ProcSet allocateAvoiding(std::uint32_t n, const ProcSet& avoid, Time now);

  /// Allocate `n` free processors in two tiers: outside both avoid sets
  /// first, dipping into `softAvoid` only for the shortfall — minimizes the
  /// overlap with processor sets owed to suspended jobs when full avoidance
  /// is impossible. `hardAvoid` is a fence and is never touched (found by
  /// the differential fuzzer: folding both tiers into one set let the
  /// shortfall path hand out fenced processors). Requires n free
  /// processors outside `hardAvoid`.
  ProcSet allocatePreferring(std::uint32_t n, const ProcSet& softAvoid,
                             const ProcSet& hardAvoid, Time now);

  /// Allocate exactly `procs` (all must currently be free) — the resume path
  /// of a suspended job, which must reclaim its original processors.
  void allocateExact(const ProcSet& procs, Time now);

  /// Release `procs` (all must currently be busy).
  void release(const ProcSet& procs, Time now);

  /// Busy processor-seconds integrated from t=0 through `now`.
  [[nodiscard]] double busyProcSeconds(Time now) const;

 private:
  void advance(Time now);

  std::uint32_t total_;
  ProcSet free_;
  /// Cached free_.count(); a popcount sweep per query would be O(machine
  /// words) — noticeable at 100k processors, where freeCount() gates every
  /// dispatch decision.
  std::uint32_t freeCount_;
  Time lastChange_ = 0;
  double busyIntegral_ = 0.0;
};

}  // namespace sps::sim
