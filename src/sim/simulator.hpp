// Simulator — the discrete-event kernel for preemptive parallel job
// scheduling ("a locally developed simulator", Section III of the paper).
//
// Mechanics owned here, policy decisions delegated to SchedulingPolicy:
//   * steppable event loop over arrivals, completions, suspend-drains, and
//     timers (step / runUntil / drain; run() is the batch wrapper);
//   * streaming ingest: submit() injects jobs after construction and
//     cancelJob() withdraws pending ones, so an online driver
//     (core::SchedulerService) can feed the same core a live stream;
//   * named-processor allocation (local preemption: a suspended job resumes
//     on its exact original processors);
//   * per-job execution state: remaining work, accumulated wait (frozen
//     while running — the xfactor rule of Section IV-A), suspension counts;
//   * completion cancellation via generation counters;
//   * optional suspension/restart overhead (Section V-A): suspending holds
//     the processors for the write-out, resuming prepends the read-back.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/recorder.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/policy.hpp"
#include "sim/procset.hpp"
#include "workload/job.hpp"

namespace sps::sim {

enum class JobState : std::uint8_t {
  NotArrived,
  Queued,      ///< waiting, never ran or mid-preemption bookkeeping done
  Running,     ///< computing (or in its resume-overhead read-back phase)
  Suspending,  ///< preempted, processors still held for the write-out
  Suspended,   ///< preempted and drained; must resume on savedProcs
  Finished,
  Cancelled,   ///< withdrawn via cancelJob before completing; terminal
};

[[nodiscard]] const char* jobStateName(JobState state);

/// Dynamic execution state of one job. Readable by policies and by the
/// metrics layer after the run.
///
/// The job's lifecycle state itself lives in a dense side array inside the
/// Simulator (SoA layout: one byte per job, read via Simulator::state()).
/// The hot paths — index reconciliation, skip-on-stale walks, dispatch
/// scans — touch only the state byte of many jobs at once, and keeping
/// those reads out of this ~200-byte record keeps them in cache.
struct JobExec {
  /// Processors currently held (Running/Suspending) or to reclaim
  /// (Suspended). Empty before first start.
  ProcSet procs;
  /// Compute seconds still required.
  Time remainingWork = 0;
  /// Start of the current running segment (kNoTime unless Running).
  Time segStart = kNoTime;
  /// Resume-overhead at the front of the current segment.
  Time segOverhead = 0;
  /// Wait accumulated over all completed wait periods (queued + suspended).
  Time accumWait = 0;
  /// Start of the current wait period (kNoTime while running/finished).
  Time waitSince = kNoTime;
  /// Bumped on every suspension; a completion event with a stale generation
  /// is ignored.
  std::uint64_t completionGen = 0;
  std::uint32_t suspendCount = 0;
  Time firstStart = kNoTime;
  Time finish = kNoTime;
  /// Seconds spent writing the memory image out on suspensions (drains run
  /// to completion, so this is always fully elapsed).
  Time drainOverhead = 0;
  /// Seconds of read-back actually elapsed (a segment can be preempted
  /// before its read-back completes; only the elapsed part counts).
  Time resumeOverheadElapsed = 0;
  /// Total overhead seconds this job's processors spent not computing.
  [[nodiscard]] Time overheadTotal() const {
    return drainOverhead + resumeOverheadElapsed;
  }
};

class Simulator;

/// The single observer surface of the simulator (Simulator::observers()).
/// Three typed subscription channels; observers fire in registration order,
/// cannot be removed, and must outlive the run. Callbacks get a const
/// Simulator and must not call any mutating Simulator API.
///
/// This registry replaces the old two-slot scheme (setStateChangeHook for
/// "the user", addStateChangeObserver for the kernel) — every subscriber
/// now goes through the same list, so ordering is purely registration
/// order, with no hidden user-hook-fires-last rule.
class ObserverRegistry {
 public:
  using StateChangeFn = std::function<void(const Simulator&, JobId,
                                           JobState /*from*/,
                                           JobState /*to*/)>;
  using EventFn = std::function<void(const Simulator&, const Event&)>;
  using ClockFn =
      std::function<void(const Simulator&, Time /*from*/, Time /*to*/)>;

  /// Fires after every job state transition (the kernel's ReservationLedger
  /// and the timeline/debug tooling subscribe here).
  void onStateChange(StateChangeFn fn) {
    stateChange_.push_back(std::move(fn));
  }
  /// Fires for every event the run loop dispatches, after the clock has
  /// advanced to the event's time but before its handler runs.
  void onEventDispatched(EventFn fn) { event_.push_back(std::move(fn)); }
  /// Fires whenever the clock moves forward, before the triggering event's
  /// handler; `from` < `to` always.
  void onClockAdvanced(ClockFn fn) { clock_.push_back(std::move(fn)); }

  [[nodiscard]] std::size_t stateChangeCount() const {
    return stateChange_.size();
  }
  [[nodiscard]] std::size_t eventDispatchedCount() const {
    return event_.size();
  }
  [[nodiscard]] std::size_t clockAdvancedCount() const {
    return clock_.size();
  }

 private:
  friend class Simulator;

  void notifyStateChange(const Simulator& s, JobId id, JobState from,
                         JobState to) const {
    for (const StateChangeFn& fn : stateChange_) fn(s, id, from, to);
  }
  void notifyEvent(const Simulator& s, const Event& e) const {
    for (const EventFn& fn : event_) fn(s, e);
  }
  void notifyClock(const Simulator& s, Time from, Time to) const {
    for (const ClockFn& fn : clock_) fn(s, from, to);
  }

  std::vector<StateChangeFn> stateChange_;
  std::vector<EventFn> event_;
  std::vector<ClockFn> clock_;
};

/// Simulator knobs. This is the single simulator-facing options struct: the
/// CLI fills core::SimulationOptions, which embeds one of these (as `.sim`)
/// and hands it through Runner to the Simulator unchanged — no field is
/// threaded twice.
struct SimulatorConfig {
  /// nullptr = suspension and resumption are free (Sections III-IV).
  const OverheadPolicy* overhead = nullptr;
  /// Observability bundle (counters + optional trace sink). nullptr = the
  /// simulator uses an internal Recorder; supply one to keep counters and
  /// sink wiring alive after the simulator is destroyed (core::Runner
  /// harvests through metrics::collect either way).
  obs::Recorder* recorder = nullptr;
  /// Pending-event structure. Calendar (the default) and BinaryHeap pop
  /// the identical (time, band, seq) order, so schedules are bit-identical
  /// either way; the golden suite and the fuzzer pin one mode to each
  /// kind to keep that claim continuously tested.
  QueueKind queueKind = QueueKind::Calendar;
};

class Simulator {
 public:
  using Config = SimulatorConfig;

  /// Batch construction: every job of the trace is pre-submitted (the trace
  /// must satisfy validateTrace(); the simulator keeps its own copy). The
  /// policy must outlive the simulator.
  Simulator(const workload::Trace& trace, SchedulingPolicy& policy,
            Config config);
  Simulator(const workload::Trace& trace, SchedulingPolicy& policy)
      : Simulator(trace, policy, Config{}) {}

  /// Streaming construction: an empty machine-only workload. Jobs enter
  /// exclusively through submit(); run()/drain() on a simulator that never
  /// receives one is a no-op beyond the policy start/end hooks.
  Simulator(std::string traceName, std::uint32_t machineProcs,
            SchedulingPolicy& policy, Config config);

  // --- run loop ----------------------------------------------------------
  // The loop is steppable: between any two dispatched events the clock,
  // event queue, job sets, observer channels, and every accessor below are
  // all valid and mutually consistent ("paused state"). run() is literally
  // runUntil(kTimeMax); drain();.

  /// Dispatch the single earliest pending event. Returns false (and does
  /// nothing) if none is pending. The first dispatch anywhere fires
  /// SchedulingPolicy::onSimulationStart.
  bool step();

  /// Dispatch every event with time <= horizon. The clock only ever
  /// advances to times of dispatched events, so after return
  /// now() <= horizon and nextEventTime() (if any) > horizon.
  void runUntil(Time horizon);

  /// Dispatch everything left, then finalize: check no job was stranded
  /// (every submitted job Finished or Cancelled) and fire
  /// SchedulingPolicy::onSimulationEnd. Idempotent; submit() after drain()
  /// is rejected.
  void drain();

  /// Run to completion: runUntil(kTimeMax); drain();.
  void run();

  /// Earliest pending event time, or kNoTime when the queue is empty.
  [[nodiscard]] Time nextEventTime() const;
  /// True once drain() has finalized the run.
  [[nodiscard]] bool drained() const { return finalized_; }
  /// Jobs submitted but not yet Finished/Cancelled.
  [[nodiscard]] std::uint32_t unfinishedJobs() const { return unfinished_; }

  // --- streaming ingest --------------------------------------------------
  /// Inject a job after construction. `job.id` is assigned by the simulator
  /// (dense, in submission order) and returned. Requirements, checked:
  /// runtime > 0, estimate >= runtime, 1 <= procs <= machine, memory and
  /// submit non-negative, and submit >= max(now(), lastSubmit()) — the
  /// stream is monotone in submit time, like the trace files; out-of-order
  /// submissions are rejected with InputError. Feeding a trace's jobs
  /// through submit() one step() at a time replays the batch run
  /// bit-identically (the golden-equivalence discipline).
  JobId submit(workload::Job job);

  /// Withdraw a pending job. Succeeds — true, job becomes Cancelled — when
  /// the job is NotArrived (submitted, arrival not yet dispatched), or when
  /// it is Queued/Suspended *and* the policy declares supportsCancel().
  /// Running/Suspending/terminal jobs (and any pending job under a
  /// non-cancellable policy) are left untouched — returns false. Cancelled
  /// is terminal: the job's processors are never held, its metrics row is
  /// excluded from per-job aggregates.
  bool cancelJob(JobId id);

  // --- clock & workload data ---------------------------------------------
  [[nodiscard]] Time now() const { return now_; }
  /// The workload as submitted so far — the simulator's own copy. Grows at
  /// each submit(); a job's row is immutable once accepted, so references
  /// into `jobs` stay valid only until the next submit() (indexes by JobId
  /// are always safe).
  [[nodiscard]] const workload::Trace& trace() const { return trace_; }
  [[nodiscard]] const workload::Job& job(JobId id) const {
    return trace_.jobs[id];
  }
  [[nodiscard]] const JobExec& exec(JobId id) const { return exec_[id]; }
  /// Lifecycle state, from the dense SoA side array (see JobExec).
  [[nodiscard]] JobState state(JobId id) const { return states_[id]; }
  [[nodiscard]] const Machine& machine() const { return machine_; }
  [[nodiscard]] std::uint32_t freeCount() const { return machine_.freeCount(); }
  [[nodiscard]] const ProcSet& freeSet() const { return machine_.freeSet(); }

  /// Monotone change counter: bumped whenever the clock advances and on
  /// every job state transition. Two reads of scheduler-visible state made
  /// at the same epoch are guaranteed identical, so incremental caches
  /// (sched/core's ReservationLedger and PriorityIndex) key on it instead
  /// of recomputing per query.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  // --- job sets (unordered; copy before calling any mutating action) ----
  [[nodiscard]] const std::vector<JobId>& queuedJobs() const { return queued_; }
  [[nodiscard]] const std::vector<JobId>& runningJobs() const {
    return running_;
  }
  /// Suspending + Suspended jobs.
  [[nodiscard]] const std::vector<JobId>& suspendedJobs() const {
    return suspended_;
  }

  /// Sum of procs x estimate over the queued (never-started) jobs — the
  /// demand the scheduler has accepted but not yet placed. Maintained as two
  /// adds per job lifetime so samplers (obs::TimelineRecorder) read it O(1)
  /// instead of walking the queue.
  [[nodiscard]] double queuedProcEstimateSeconds() const {
    return queuedWork_;
  }

  // --- maintained processor aggregates -----------------------------------
  // O(1) reads for the fence sets every preemptive policy needs each pass.
  // Maintained at the state transitions themselves (two ProcSet updates per
  // suspension lifetime) and audited against a full recompute by
  // auditState(), so policies no longer rescan the suspended list.

  /// Union of processors owed to fully-drained Suspended jobs (their saved
  /// sets, which local preemption must eventually return to them). Owed
  /// sets can overlap — a job may start on processors another suspended job
  /// is owed and then be suspended itself — so membership is refcounted.
  [[nodiscard]] const ProcSet& suspendedOwedSet() const {
    return suspendedOwed_;
  }

  /// Union of processors still held by Suspending jobs (write-out in
  /// flight). Disjoint by construction: the machine holds them busy.
  [[nodiscard]] const ProcSet& drainingSet() const { return draining_; }

  // --- policy actions ----------------------------------------------------
  /// Start a queued job that has never been suspended, on the lowest-
  /// numbered free processors. Requires job.procs <= freeCount().
  void startJob(JobId id);

  /// As startJob, but never allocates processors in `avoid` — used while
  /// another job holds an exact-processor claim on part of the free set.
  void startJobAvoiding(JobId id, const ProcSet& avoid);

  /// As startJob, but draws processors outside `softAvoid` first and dips
  /// into it only for the shortfall (minimal squatting on processors owed
  /// to suspended jobs); processors in `hardAvoid` are never touched.
  void startJobPreferring(JobId id, const ProcSet& softAvoid,
                          const ProcSet& hardAvoid);

  /// Restart a Suspended job on its exact original processors. Requires all
  /// of them free.
  void resumeJob(JobId id);

  /// Restart a Suspended job on ANY free processors (drawn lowest-numbered
  /// outside `avoid`) — the *migratable* preemption model of Parsons &
  /// Sevcik discussed in the paper's related work. Only meaningful when the
  /// policy models process migration; the paper's main model (and the SS
  /// default) is local preemption via resumeJob.
  void resumeJobMigrating(JobId id, const ProcSet& avoid);

  /// Preempt a Running job. With an overhead model the processors drain
  /// until the write-out completes (state Suspending), then onSuspendDrained
  /// fires; otherwise they free immediately.
  void suspendJob(JobId id);

  /// Arm a one-shot policy timer. `when` must be >= now().
  void scheduleTimer(Time when, std::uint64_t tag);

  // --- derived per-job quantities ----------------------------------------
  /// Wait accrued so far: frozen while running (Section IV-A). Inline:
  /// priority-index rebuilds and the preemption tick gate evaluate this for
  /// every idle job at every decision point.
  [[nodiscard]] Time accumulatedWait(JobId id) const {
    const JobExec& x = exec_[id];
    Time wait = x.accumWait;
    if (x.waitSince != kNoTime) wait += now_ - x.waitSince;
    return wait;
  }
  /// Compute completed so far (excludes overhead phases).
  [[nodiscard]] Time accumulatedRun(JobId id) const;
  /// Expansion factor, Eq. 2: (wait + estimate) / estimate, on the user
  /// estimate. This is the SS suspension priority. Estimates are validated
  /// positive at construction (workload::validateTrace).
  [[nodiscard]] double xfactor(JobId id) const {
    const auto est = static_cast<double>(job(id).estimate);
    return (static_cast<double>(accumulatedWait(id)) + est) / est;
  }
  /// Chiang-Vernon instantaneous xfactor: (wait + run) / run on accumulated
  /// run time; +infinity for a job that has not computed yet.
  [[nodiscard]] double instantaneousXfactor(JobId id) const;

  // --- run statistics ------------------------------------------------------
  [[nodiscard]] double busyProcSeconds() const {
    return machine_.busyProcSeconds(now_);
  }
  /// Busy processor-seconds integrated over the arrival window only
  /// ([firstSubmit, lastSubmit]) — the steady-state utilization basis.
  /// A finite trace has a drain tail after the last arrival where no
  /// scheduler can stay fully packed; comparing schedulers over the window
  /// in which they face identical demand removes that end effect.
  [[nodiscard]] double busyProcSecondsAtLastSubmit() const {
    return busyAtLastSubmit_;
  }
  [[nodiscard]] Time lastSubmit() const { return lastSubmit_; }
  /// Latest completion time dispatched so far; final once drained().
  [[nodiscard]] Time lastFinish() const { return lastFinish_; }
  [[nodiscard]] Time firstSubmit() const { return firstSubmit_; }
  [[nodiscard]] std::uint64_t totalSuspensions() const {
    return totalSuspensions_;
  }
  [[nodiscard]] std::uint64_t eventsProcessed() const {
    return eventsProcessed_;
  }

  /// Full structural audit (free/busy partition vs job states). O(jobs).
  /// Called from tests; cheap enough to call every event in debug builds.
  void auditState() const;

  // --- observability -----------------------------------------------------
  /// The typed observer registry: state changes, dispatched events, clock
  /// advances. Subscribe before the first step()/runUntil()/run() dispatch;
  /// between steps the channels stay armed and consistent with the paused
  /// state, and submit()/cancelJob() fire them like any other transition
  /// source. See ObserverRegistry.
  [[nodiscard]] ObserverRegistry& observers() { return registry_; }
  [[nodiscard]] const ObserverRegistry& observers() const { return registry_; }

  /// The run's observability bundle (Config::recorder, or the internal
  /// default). Non-const through a const Simulator: counters and trace
  /// emission are observability, not simulation state, so read-only policy
  /// paths may record through it.
  [[nodiscard]] obs::Recorder& recorder() const { return *obs_; }
  [[nodiscard]] obs::Counters& counters() const { return obs_->counters; }

 private:
  /// Fire onSimulationStart exactly once, before the first dispatch.
  void ensureStarted();
  /// Pop and dispatch the earliest event; requires a non-empty queue.
  void dispatchOne();
  void handleArrival(JobId id);
  void handleCompletion(JobId id, std::uint64_t generation);
  void handleSuspendDrained(JobId id);
  void beginSegment(JobId id);
  void notifyStateChange(JobId id, JobState from, JobState to);
  void addTo(std::vector<JobId>& list, JobId id);
  void removeFrom(std::vector<JobId>& list, JobId id);
  void owedAdd(const ProcSet& procs);
  void owedRemove(const ProcSet& procs);
  [[nodiscard]] double queuedWorkOf(JobId id) const {
    const workload::Job& j = job(id);
    return static_cast<double>(j.procs) * static_cast<double>(j.estimate);
  }

  /// Owned: batch construction copies the input trace, streaming ingest
  /// appends to it, so trace() describes exactly what was submitted either
  /// way.
  workload::Trace trace_;
  SchedulingPolicy& policy_;
  Config config_;
  Machine machine_;
  EventQueue events_;
  std::vector<JobExec> exec_;
  /// SoA: per-job lifecycle state, one byte per job (see JobExec).
  std::vector<JobState> states_;
  std::vector<JobId> queued_;
  double queuedWork_ = 0.0;  ///< procs x estimate summed over queued_
  std::vector<JobId> running_;
  std::vector<JobId> suspended_;
  ProcSet suspendedOwed_;   ///< refcounted union of Suspended saved sets
  ProcSet draining_;        ///< union of Suspending (write-out) holdings
  std::vector<std::uint16_t> owedRef_;  ///< per-proc owners in suspendedOwed_
  /// Position of each job in whichever of the three lists holds it (a job
  /// is in at most one at a time). Lets removeFrom swap-and-pop in O(1) —
  /// which is why the lists are documented as unordered.
  std::vector<std::size_t> listPos_;
  Time now_ = 0;
  Time firstSubmit_ = 0;
  Time lastSubmit_ = 0;
  Time lastFinish_ = 0;
  double busyAtLastSubmit_ = 0.0;
  bool steadySnapshotTaken_ = false;
  std::uint64_t totalSuspensions_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint32_t unfinished_ = 0;
  bool started_ = false;    ///< onSimulationStart fired
  bool finalized_ = false;  ///< drain() completed
  ObserverRegistry registry_;
  /// Fallback Recorder when Config::recorder is null; obs_ always points at
  /// a live Recorder so the accessors are branch-free. Mutable because
  /// recording through a const Simulator is allowed by design.
  mutable obs::Recorder ownedRecorder_;
  obs::Recorder* obs_ = &ownedRecorder_;
};

}  // namespace sps::sim
