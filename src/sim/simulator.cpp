#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "obs/trace.hpp"
#include "util/log.hpp"
#include "workload/category.hpp"

namespace sps::sim {

namespace {

static_assert(obs::Counters::kSuspensionCategories ==
                  workload::kNumCategories16,
              "obs suspension breakdown must match the Table-I categories");

#if SPS_TRACE_ON
/// Static display name of a transition, for trace events. Covers exactly
/// the transitions the simulator can emit.
const char* transitionName(JobState from, JobState to) {
  switch (to) {
    case JobState::Queued: return "arrive";
    case JobState::Running:
      return from == JobState::Suspended ? "resume" : "start";
    case JobState::Suspending: return "suspend";
    case JobState::Suspended:
      return from == JobState::Suspending ? "drained" : "suspend";
    case JobState::Finished: return "finish";
    case JobState::Cancelled: return "cancel";
    case JobState::NotArrived: break;
  }
  return "transition";
}

const char* eventTypeName(EventType type) {
  switch (type) {
    case EventType::JobArrival: return "arrival";
    case EventType::JobCompletion: return "completion";
    case EventType::SuspendDrained: return "drained";
    case EventType::Timer: return "timer";
  }
  return "?";
}
#endif

}  // namespace

const char* jobStateName(JobState state) {
  switch (state) {
    case JobState::NotArrived: return "NotArrived";
    case JobState::Queued: return "Queued";
    case JobState::Running: return "Running";
    case JobState::Suspending: return "Suspending";
    case JobState::Suspended: return "Suspended";
    case JobState::Finished: return "Finished";
    case JobState::Cancelled: return "Cancelled";
  }
  return "?";
}

Simulator::Simulator(const workload::Trace& trace, SchedulingPolicy& policy,
                     Config config)
    : trace_(trace),
      policy_(policy),
      config_(config),
      machine_(trace.machineProcs),
      events_(config.queueKind),
      exec_(trace.jobs.size()),
      states_(trace.jobs.size(), JobState::NotArrived),
      owedRef_(trace.machineProcs, 0),
      listPos_(trace.jobs.size(), 0) {
  if (config.recorder != nullptr) obs_ = config.recorder;
  workload::validateTrace(trace_);
  unfinished_ = static_cast<std::uint32_t>(trace_.jobs.size());
  firstSubmit_ = trace_.jobs.empty() ? 0 : trace_.jobs.front().submit;
  lastSubmit_ = trace_.jobs.empty() ? 0 : trace_.jobs.back().submit;
  for (const workload::Job& j : trace_.jobs)
    events_.push(j.submit, EventType::JobArrival, j.id);
}

namespace {

/// Streaming-construction input check: there is no trace to validate, so
/// the machine size must be vetted here — before the Machine member is
/// built, whose own guard is an invariant (programmer) check, not an
/// input one.
std::uint32_t checkedMachineProcs(const std::string& name,
                                  std::uint32_t machineProcs) {
  if (machineProcs == 0)
    throw InputError("trace '" + name + "': machineProcs must be positive");
  return machineProcs;
}

}  // namespace

Simulator::Simulator(std::string traceName, std::uint32_t machineProcs,
                     SchedulingPolicy& policy, Config config)
    : trace_{std::move(traceName), machineProcs, {}},
      policy_(policy),
      config_(config),
      machine_(checkedMachineProcs(trace_.name, machineProcs)),
      events_(config.queueKind),
      owedRef_(machineProcs, 0) {
  if (config.recorder != nullptr) obs_ = config.recorder;
}

JobId Simulator::submit(workload::Job job) {
  SPS_CHECK_MSG(!finalized_, "submit() after drain()");
  job.id = static_cast<JobId>(trace_.jobs.size());
  {
    std::ostringstream ctx;
    ctx << "submit to '" << trace_.name << "' (job " << job.id << "): ";
    if (job.runtime <= 0)
      throw InputError(ctx.str() + "runtime must be positive");
    if (job.estimate < job.runtime)
      throw InputError(ctx.str() + "estimate below runtime (jobs are killed "
                                   "at their wall-clock limit; clamp first)");
    if (job.procs == 0) throw InputError(ctx.str() + "procs must be >= 1");
    if (job.procs > trace_.machineProcs)
      throw InputError(ctx.str() + "procs exceed machine size");
    if (job.submit < lastSubmit_ && !trace_.jobs.empty())
      throw InputError(ctx.str() + "out-of-order submit time " +
                       std::to_string(job.submit) + " (stream is at " +
                       std::to_string(lastSubmit_) + ")");
    if (job.submit < now_)
      throw InputError(ctx.str() + "submit time " +
                       std::to_string(job.submit) +
                       " in the simulated past (clock is at " +
                       std::to_string(now_) + ")");
  }
  if (trace_.jobs.empty()) firstSubmit_ = job.submit;
  if (job.submit > lastSubmit_) {
    // The steady-state utilization window [firstSubmit, lastSubmit] just
    // grew; re-arm the snapshot so the next dispatched event at or past the
    // new boundary retakes it.
    lastSubmit_ = job.submit;
    steadySnapshotTaken_ = false;
  }
  trace_.jobs.push_back(job);
  exec_.emplace_back();
  states_.push_back(JobState::NotArrived);
  listPos_.push_back(0);
  ++unfinished_;
  ++epoch_;  // trace contents are scheduler-visible state
  events_.push(job.submit, EventType::JobArrival, job.id);
  return job.id;
}

bool Simulator::cancelJob(JobId id) {
  SPS_CHECK_MSG(id < trace_.jobs.size(), "cancelJob(" << id << "): no such job");
  JobExec& x = exec_[id];
  const JobState from = states_[id];
  switch (from) {
    case JobState::NotArrived:
      // Arrival not yet dispatched: mark the job Cancelled and let the
      // pending arrival event fall through handleArrival as a no-op. No
      // policy ever saw the job, so no policy hook fires.
      break;
    case JobState::Queued:
      if (!policy_.supportsCancel()) return false;
      removeFrom(queued_, id);
      queuedWork_ -= queuedWorkOf(id);
      break;
    case JobState::Suspended:
      if (!policy_.supportsCancel()) return false;
      owedRemove(x.procs);
      removeFrom(suspended_, id);
      break;
    case JobState::Running:
    case JobState::Suspending:
      // Withdrawing a job that holds processors (or is draining onto disk)
      // is a kill, not a cancel; the service layer reports it as such.
      return false;
    case JobState::Finished:
    case JobState::Cancelled:
      return false;
  }
  if (x.waitSince != kNoTime) {
    x.accumWait += now_ - x.waitSince;
    x.waitSince = kNoTime;
  }
  states_[id] = JobState::Cancelled;
  SPS_CHECK(unfinished_ > 0);
  --unfinished_;
  notifyStateChange(id, from, JobState::Cancelled);
  if (from != JobState::NotArrived) policy_.onJobCancelled(*this, id);
  return true;
}

void Simulator::ensureStarted() {
  if (started_) return;
  started_ = true;
  policy_.onSimulationStart(*this);
}

void Simulator::dispatchOne() {
  const Event e = events_.pop();
  SPS_CHECK_MSG(e.time >= now_, "event time " << e.time << " before now "
                                              << now_);
  if (!steadySnapshotTaken_ && e.time >= lastSubmit_) {
    // Integral through the last arrival instant, taken before any state
    // change at or after it. A later submit() raising lastSubmit_ re-arms
    // the snapshot; state changes at exactly lastSubmit_ have zero measure
    // in the integral, so the retaken value matches the batch one.
    busyAtLastSubmit_ = machine_.busyProcSeconds(lastSubmit_);
    steadySnapshotTaken_ = true;
  }
  if (e.time != now_) {
    ++epoch_;
    obs_->counters.inc(obs::Counter::SimClockAdvances);
    const Time prev = now_;
    now_ = e.time;
    registry_.notifyClock(*this, prev, now_);
  }
  ++eventsProcessed_;
  obs_->counters.inc(obs::Counter::SimEvents);
  registry_.notifyEvent(*this, e);
  SPS_TRACE(obs_, obs::instant("sim", eventTypeName(e.type), now_)
                      .arg("payload",
                           static_cast<std::int64_t>(e.payload)));
  switch (e.type) {
    case EventType::JobArrival:
      handleArrival(static_cast<JobId>(e.payload));
      break;
    case EventType::JobCompletion:
      handleCompletion(static_cast<JobId>(e.payload), e.generation);
      break;
    case EventType::SuspendDrained:
      handleSuspendDrained(static_cast<JobId>(e.payload));
      break;
    case EventType::Timer:
      policy_.onTimer(*this, e.payload);
      break;
  }
}

bool Simulator::step() {
  ensureStarted();
  if (events_.empty()) return false;
  dispatchOne();
  return true;
}

void Simulator::runUntil(Time horizon) {
  ensureStarted();
  while (!events_.empty() && events_.nextTime() <= horizon) dispatchOne();
}

void Simulator::drain() {
  if (finalized_) return;
  ensureStarted();
  while (!events_.empty()) dispatchOne();
  SPS_CHECK_MSG(unfinished_ == 0,
                unfinished_ << " jobs never finished — policy starved them");
  finalized_ = true;
  policy_.onSimulationEnd(*this);
}

void Simulator::run() {
  runUntil(kTimeMax);
  drain();
}

Time Simulator::nextEventTime() const {
  return events_.empty() ? kNoTime : events_.nextTime();
}

void Simulator::handleArrival(JobId id) {
  JobExec& x = exec_[id];
  if (states_[id] == JobState::Cancelled) return;  // cancelled before arrival
  SPS_CHECK(states_[id] == JobState::NotArrived);
  states_[id] = JobState::Queued;
  x.remainingWork = job(id).runtime;
  x.waitSince = now_;
  addTo(queued_, id);
  queuedWork_ += queuedWorkOf(id);
  notifyStateChange(id, JobState::NotArrived, JobState::Queued);
  policy_.onJobArrival(*this, id);
}

void Simulator::handleCompletion(JobId id, std::uint64_t generation) {
  JobExec& x = exec_[id];
  if (generation != x.completionGen) return;  // cancelled by a suspension
  SPS_CHECK_MSG(states_[id] == JobState::Running,
                "completion of job " << id << " in state "
                                     << jobStateName(states_[id]));
  machine_.release(x.procs, now_);
  states_[id] = JobState::Finished;
  x.remainingWork = 0;
  x.finish = now_;
  x.resumeOverheadElapsed += x.segOverhead;
  x.segStart = kNoTime;
  removeFrom(running_, id);
  notifyStateChange(id, JobState::Running, JobState::Finished);
  lastFinish_ = std::max(lastFinish_, now_);
  SPS_CHECK(unfinished_ > 0);
  --unfinished_;
  policy_.onJobCompletion(*this, id);
}

void Simulator::handleSuspendDrained(JobId id) {
  JobExec& x = exec_[id];
  SPS_CHECK(states_[id] == JobState::Suspending);
  machine_.release(x.procs, now_);
  states_[id] = JobState::Suspended;
  draining_ -= x.procs;
  owedAdd(x.procs);
  notifyStateChange(id, JobState::Suspending, JobState::Suspended);
  policy_.onSuspendDrained(*this, id);
}

void Simulator::beginSegment(JobId id) {
  JobExec& x = exec_[id];
  const JobState from = states_[id];
  // Close the wait period.
  SPS_CHECK(x.waitSince != kNoTime);
  x.accumWait += now_ - x.waitSince;
  x.waitSince = kNoTime;
  states_[id] = JobState::Running;
  x.segStart = now_;
  x.segOverhead = 0;
  if (x.suspendCount > 0 && config_.overhead != nullptr) {
    x.segOverhead = config_.overhead->resumeOverhead(id);
    SPS_CHECK(x.segOverhead >= 0);
  }
  if (x.firstStart == kNoTime) x.firstStart = now_;
  addTo(running_, id);
  events_.push(now_ + x.segOverhead + x.remainingWork,
               EventType::JobCompletion, id, x.completionGen);
  notifyStateChange(id, from, JobState::Running);
}

void Simulator::startJob(JobId id) {
  JobExec& x = exec_[id];
  SPS_CHECK_MSG(states_[id] == JobState::Queued,
                "startJob(" << id << ") in state "
                            << jobStateName(states_[id]));
  SPS_CHECK_MSG(x.suspendCount == 0,
                "startJob(" << id << ") on a previously-suspended job; use "
                               "resumeJob");
  const std::uint32_t want = job(id).procs;
  SPS_CHECK_MSG(want <= machine_.freeCount(),
                "startJob(" << id << "): wants " << want << ", free "
                            << machine_.freeCount());
  x.procs = machine_.allocate(want, now_);
  removeFrom(queued_, id);
  queuedWork_ -= queuedWorkOf(id);
  beginSegment(id);
}

void Simulator::startJobAvoiding(JobId id, const ProcSet& avoid) {
  JobExec& x = exec_[id];
  SPS_CHECK_MSG(states_[id] == JobState::Queued,
                "startJobAvoiding(" << id << ") in state "
                                    << jobStateName(states_[id]));
  SPS_CHECK_MSG(x.suspendCount == 0,
                "startJobAvoiding(" << id << ") on a previously-suspended "
                                       "job; use resumeJob");
  x.procs = machine_.allocateAvoiding(job(id).procs, avoid, now_);
  removeFrom(queued_, id);
  queuedWork_ -= queuedWorkOf(id);
  beginSegment(id);
}

void Simulator::startJobPreferring(JobId id, const ProcSet& softAvoid,
                                   const ProcSet& hardAvoid) {
  JobExec& x = exec_[id];
  SPS_CHECK_MSG(states_[id] == JobState::Queued,
                "startJobPreferring(" << id << ") in state "
                                      << jobStateName(states_[id]));
  SPS_CHECK_MSG(x.suspendCount == 0,
                "startJobPreferring(" << id << ") on a previously-suspended "
                                         "job; use resumeJob");
  // Fence the hard set by pre-removing it from the pool: allocate from the
  // remaining free processors, preferring those outside softAvoid.
  const ProcSet pool = machine_.freeSet() - hardAvoid;
  SPS_CHECK_MSG(pool.count() >= job(id).procs,
                "startJobPreferring(" << id << "): insufficient unfenced "
                                         "processors");
  x.procs = machine_.allocatePreferring(job(id).procs, softAvoid, hardAvoid,
                                        now_);
  SPS_CHECK(!x.procs.intersects(hardAvoid));
  removeFrom(queued_, id);
  queuedWork_ -= queuedWorkOf(id);
  beginSegment(id);
}

void Simulator::resumeJob(JobId id) {
  JobExec& x = exec_[id];
  SPS_CHECK_MSG(states_[id] == JobState::Suspended,
                "resumeJob(" << id << ") in state "
                             << jobStateName(states_[id]));
  machine_.allocateExact(x.procs, now_);
  owedRemove(x.procs);
  removeFrom(suspended_, id);
  beginSegment(id);
}

void Simulator::resumeJobMigrating(JobId id, const ProcSet& avoid) {
  JobExec& x = exec_[id];
  SPS_CHECK_MSG(states_[id] == JobState::Suspended,
                "resumeJobMigrating(" << id << ") in state "
                                      << jobStateName(states_[id]));
  owedRemove(x.procs);  // before the saved set is replaced below
  x.procs = machine_.allocateAvoiding(job(id).procs, avoid, now_);
  removeFrom(suspended_, id);
  beginSegment(id);
}

void Simulator::suspendJob(JobId id) {
  JobExec& x = exec_[id];
  SPS_CHECK_MSG(states_[id] == JobState::Running,
                "suspendJob(" << id << ") in state "
                              << jobStateName(states_[id]));
  // Work completed in the current segment (the read-back overhead at the
  // front of the segment does no useful work).
  const Time elapsed = now_ - x.segStart;
  const Time done = std::clamp<Time>(elapsed - x.segOverhead, 0,
                                     x.remainingWork);
  x.remainingWork -= done;
  x.resumeOverheadElapsed += std::min(elapsed, x.segOverhead);
  ++x.completionGen;  // invalidate the scheduled completion
  ++x.suspendCount;
  ++totalSuspensions_;
  x.segStart = kNoTime;
  x.waitSince = now_;  // wait (and thus xfactor) accrues while suspended
  removeFrom(running_, id);
  addTo(suspended_, id);
  Time drain = 0;
  if (config_.overhead != nullptr) {
    drain = config_.overhead->suspendOverhead(id);
    SPS_CHECK(drain >= 0);
    x.drainOverhead += drain;
  }
  if (drain > 0) {
    states_[id] = JobState::Suspending;
    draining_ |= x.procs;
    events_.push(now_ + drain, EventType::SuspendDrained, id);
    notifyStateChange(id, JobState::Running, JobState::Suspending);
  } else {
    states_[id] = JobState::Suspended;
    machine_.release(x.procs, now_);
    owedAdd(x.procs);
    notifyStateChange(id, JobState::Running, JobState::Suspended);
  }
}

void Simulator::notifyStateChange(JobId id, JobState from, JobState to) {
  ++epoch_;
  obs::Counters& c = obs_->counters;
  c.inc(obs::Counter::SimTransitions);
  if (to == JobState::Running) {
    c.inc(from == JobState::Suspended ? obs::Counter::SimResumes
                                      : obs::Counter::SimStarts);
    SPS_TRACE(obs_, obs::begin("job", "run", now_, id)
                        .arg("procs", job(id).procs));
  } else if (from == JobState::Running) {
    // Finished, or preempted (Suspending with drain overhead, Suspended
    // without). Either way the running span closes here.
    if (to != JobState::Finished) {
      c.inc(obs::Counter::SimSuspensions);
      // Per-category breakdown uses the paper's Table-I categorization by
      // *actual* runtime, matching metrics::CategoryStats.
      c.incSuspensionCategory(
          workload::category16(job(id).runtime, job(id).procs));
    }
    SPS_TRACE(obs_, obs::end("job", "run", now_, id)
                        .arg("suspended",
                             static_cast<std::int64_t>(
                                 to != JobState::Finished)));
  } else {
    SPS_TRACE(obs_,
              obs::instant("job", transitionName(from, to), now_, id));
  }
  registry_.notifyStateChange(*this, id, from, to);
}

void Simulator::scheduleTimer(Time when, std::uint64_t tag) {
  SPS_CHECK_MSG(when >= now_, "timer in the past: " << when << " < " << now_);
  events_.push(when, EventType::Timer, tag);
}

Time Simulator::accumulatedRun(JobId id) const {
  const JobExec& x = exec_[id];
  Time done = job(id).runtime - x.remainingWork;
  if (states_[id] == JobState::Running) {
    // remainingWork is only decremented at suspension; subtract the current
    // segment's progress explicitly.
    const Time elapsed = now_ - x.segStart;
    const Time segDone =
        std::clamp<Time>(elapsed - x.segOverhead, 0, x.remainingWork);
    done = job(id).runtime - x.remainingWork + segDone;
  }
  return done;
}

double Simulator::instantaneousXfactor(JobId id) const {
  const auto run = static_cast<double>(accumulatedRun(id));
  if (run <= 0.0) return std::numeric_limits<double>::infinity();
  return (static_cast<double>(accumulatedWait(id)) + run) / run;
}

void Simulator::addTo(std::vector<JobId>& list, JobId id) {
  listPos_[id] = list.size();
  list.push_back(id);
}

void Simulator::owedAdd(const ProcSet& procs) {
  procs.forEach([this](std::uint32_t p) {
    if (owedRef_[p]++ == 0) suspendedOwed_.insert(p);
  });
}

void Simulator::owedRemove(const ProcSet& procs) {
  procs.forEach([this](std::uint32_t p) {
    SPS_DCHECK(owedRef_[p] > 0);
    if (--owedRef_[p] == 0) suspendedOwed_.erase(p);
  });
}

void Simulator::removeFrom(std::vector<JobId>& list, JobId id) {
  const std::size_t pos = listPos_[id];
  SPS_CHECK_MSG(pos < list.size() && list[pos] == id,
                "job " << id << " missing from state list");
  // Swap-and-pop: O(1), at the cost of list order — which the accessors
  // already declare meaningless (policies must impose their own order).
  list[pos] = list.back();
  listPos_[list[pos]] = pos;
  list.pop_back();
}

void Simulator::auditState() const {
  ProcSet busy;
  ProcSet owed;
  ProcSet draining;
  std::uint32_t busyCount = 0;
  std::size_t nQueued = 0, nRunning = 0, nSusp = 0;
  for (JobId id = 0; id < exec_.size(); ++id) {
    const JobExec& x = exec_[id];
    switch (states_[id]) {
      case JobState::Running:
      case JobState::Suspending: {
        SPS_CHECK_MSG(!busy.intersects(x.procs),
                      "processor double-booked by job " << id);
        SPS_CHECK_MSG(x.procs.count() == job(id).procs,
                      "job " << id << " holds wrong processor count");
        busy |= x.procs;
        busyCount += x.procs.count();
        if (states_[id] == JobState::Running) {
          ++nRunning;
        } else {
          draining |= x.procs;
          ++nSusp;
        }
        break;
      }
      case JobState::Suspended:
        SPS_CHECK_MSG(x.procs.count() == job(id).procs,
                      "suspended job " << id << " lost its processor set");
        owed |= x.procs;
        ++nSusp;
        break;
      case JobState::Queued:
        ++nQueued;
        break;
      case JobState::NotArrived:
      case JobState::Finished:
      case JobState::Cancelled:
        break;
    }
  }
  SPS_CHECK_MSG(owed == suspendedOwed_,
                "suspended-owed aggregate drifted: recomputed "
                    << owed.toString() << " vs maintained "
                    << suspendedOwed_.toString());
  SPS_CHECK_MSG(draining == draining_,
                "draining aggregate drifted: recomputed "
                    << draining.toString() << " vs maintained "
                    << draining_.toString());
  SPS_CHECK_MSG(!busy.intersects(machine_.freeSet()),
                "free set overlaps busy processors");
  SPS_CHECK_MSG(busyCount + machine_.freeCount() == machine_.totalProcs(),
                "processor conservation violated: busy=" << busyCount
                    << " free=" << machine_.freeCount() << " total="
                    << machine_.totalProcs());
  SPS_CHECK(nQueued == queued_.size());
  SPS_CHECK(nRunning == running_.size());
  SPS_CHECK(nSusp == suspended_.size());
  double queuedWork = 0.0;
  for (JobId id : queued_) queuedWork += queuedWorkOf(id);
  SPS_CHECK_MSG(queuedWork == queuedWork_,
                "queued-work aggregate drifted: recomputed "
                    << queuedWork << " vs maintained " << queuedWork_);
}

}  // namespace sps::sim
