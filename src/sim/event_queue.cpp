#include "sim/event_queue.hpp"

namespace sps::sim {

void EventQueue::push(Time time, EventType type, std::uint64_t payload,
                      std::uint64_t generation) {
  Event e;
  e.time = time;
  e.seq = nextSeq_++;
  e.type = type;
  e.payload = payload;
  e.generation = generation;
  heap_.push(e);
}

Time EventQueue::nextTime() const {
  SPS_CHECK_MSG(!heap_.empty(), "nextTime() on empty queue");
  return heap_.top().time;
}

Event EventQueue::pop() {
  SPS_CHECK_MSG(!heap_.empty(), "pop() on empty queue");
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace sps::sim
