#include "sim/event_queue.hpp"

#include <algorithm>

namespace sps::sim {

void CalendarEventQueue::push(const Event& e) {
  ++size_;
  const std::uint64_t ab = bucketOf(e.time);
  if (ab >= farStart_) {
    far_.push_back(e);
    ++farCount_;
    if (!curSorted_) settle();  // queue may have been empty
    return;
  }
  if (ab <= cur_ && curSorted_) {
    // Into the live cursor bucket (or logically before it — a push at or
    // below the consumed horizon): binary-insert into the unconsumed
    // suffix, which keeps it the global minimum region.
    auto& bucket = ring_[cur_ % kBuckets];
    const auto it =
        std::lower_bound(bucket.begin() + static_cast<std::ptrdiff_t>(curPos_),
                         bucket.end(), e, earlier);
    bucket.insert(it, e);
    return;
  }
  ring_[(ab <= cur_ ? cur_ : ab) % kBuckets].push_back(e);
  if (!curSorted_) settle();
}

Event CalendarEventQueue::pop() {
  auto& bucket = ring_[cur_ % kBuckets];
  const Event e = bucket[curPos_++];
  --size_;
  settle();
  return e;
}

void CalendarEventQueue::settle() {
  if (size_ == 0) {
    // Canonical empty state: without this, a pop that drains the queue
    // would leave curSorted_ set over a fully-consumed bucket, and the
    // next push into a future bucket would skip settling — nextTime()/pop()
    // would then read past the consumed prefix.
    ring_[cur_ % kBuckets].clear();
    curPos_ = 0;
    curSorted_ = false;
    return;
  }
  while (size_ > 0) {
    auto& bucket = ring_[cur_ % kBuckets];
    if (curSorted_) {
      if (curPos_ < bucket.size()) return;  // settled: live sorted bucket
      bucket.clear();
      curPos_ = 0;
      curSorted_ = false;
      ++cur_;
      if (cur_ == farStart_) rebase();
      continue;
    }
    if (size_ == farCount_) {
      // Ring is empty; jump the cursor straight to the overflow window.
      cur_ = farStart_;
      rebase();
      continue;
    }
    if (bucket.empty()) {
      ++cur_;
      if (cur_ == farStart_) rebase();
      continue;
    }
    std::sort(bucket.begin(), bucket.end(), earlier);
    curPos_ = 0;
    curSorted_ = true;
  }
}

void CalendarEventQueue::rebase() {
  // Reached only with the ring fully exhausted (the cursor crossed
  // farStart_), so the window can move wholesale without aliasing.
  if (far_.empty()) {
    farStart_ = cur_ + kBuckets;
    return;
  }
  std::uint64_t minBucket = bucketOf(far_.front().time);
  for (const Event& e : far_) minBucket = std::min(minBucket, bucketOf(e.time));
  if (minBucket > cur_) cur_ = minBucket;  // skip the empty stretch
  farStart_ = cur_ + kBuckets;
  std::size_t keep = 0;
  for (const Event& e : far_) {
    const std::uint64_t ab = bucketOf(e.time);
    if (ab < farStart_)
      ring_[ab % kBuckets].push_back(e);
    else
      far_[keep++] = e;
  }
  far_.resize(keep);
  farCount_ = keep;
}

void EventQueue::push(Time time, EventType type, std::uint64_t payload,
                      std::uint64_t generation) {
  Event e;
  e.time = time;
  e.seq = nextSeq_++;
  e.type = type;
  e.payload = payload;
  e.generation = generation;
  if (kind_ == QueueKind::Calendar)
    calendar_.push(e);
  else
    heap_.push(e);
}

Time EventQueue::nextTime() const {
  SPS_CHECK_MSG(!empty(), "nextTime() on empty queue");
  return kind_ == QueueKind::Calendar ? calendar_.nextTime() : heap_.nextTime();
}

Event EventQueue::pop() {
  SPS_CHECK_MSG(!empty(), "pop() on empty queue");
  return kind_ == QueueKind::Calendar ? calendar_.pop() : heap_.pop();
}

}  // namespace sps::sim
