#include "sim/machine.hpp"

namespace sps::sim {

Machine::Machine(std::uint32_t totalProcs)
    : total_(totalProcs),
      free_(ProcSet::firstN(totalProcs)),
      freeCount_(totalProcs) {
  SPS_CHECK_MSG(totalProcs > 0 && totalProcs <= kMaxMachineProcs,
                "machine size " << totalProcs << " out of range");
}

void Machine::advance(Time now) {
  SPS_CHECK_MSG(now >= lastChange_, "machine time went backwards: " << now
                                        << " < " << lastChange_);
  busyIntegral_ += static_cast<double>(busyCount()) *
                   static_cast<double>(now - lastChange_);
  lastChange_ = now;
}

ProcSet Machine::allocate(std::uint32_t n, Time now) {
  SPS_CHECK_MSG(n > 0, "allocate(0)");
  SPS_CHECK_MSG(n <= freeCount(),
                "allocate(" << n << ") with only " << freeCount() << " free");
  advance(now);
  ProcSet chosen = free_.lowest(n);
  free_ -= chosen;
  freeCount_ -= n;
  return chosen;
}

ProcSet Machine::allocateAvoiding(std::uint32_t n, const ProcSet& avoid,
                                  Time now) {
  SPS_CHECK_MSG(n > 0, "allocateAvoiding(0)");
  const ProcSet pool = free_ - avoid;
  SPS_CHECK_MSG(n <= pool.count(), "allocateAvoiding(" << n << ") with only "
                                       << pool.count()
                                       << " unreserved free processors");
  advance(now);
  ProcSet chosen = pool.lowest(n);
  free_ -= chosen;
  freeCount_ -= n;
  return chosen;
}

ProcSet Machine::allocatePreferring(std::uint32_t n, const ProcSet& softAvoid,
                                    const ProcSet& hardAvoid, Time now) {
  SPS_CHECK_MSG(n > 0, "allocatePreferring(0)");
  const ProcSet pool = free_ - hardAvoid;
  SPS_CHECK_MSG(n <= pool.count(), "allocatePreferring(" << n << ") with only "
                                       << pool.count()
                                       << " unfenced free processors");
  advance(now);
  const ProcSet preferred = pool - softAvoid;
  ProcSet chosen;
  if (preferred.count() >= n) {
    chosen = preferred.lowest(n);
  } else {
    chosen = preferred;
    chosen |= (pool & softAvoid).lowest(n - preferred.count());
  }
  free_ -= chosen;
  freeCount_ -= n;
  return chosen;
}

void Machine::allocateExact(const ProcSet& procs, Time now) {
  SPS_CHECK_MSG(!procs.empty(), "allocateExact of empty set");
  SPS_CHECK_MSG(procs.isSubsetOf(free_),
                "allocateExact of non-free processors " << procs.toString());
  advance(now);
  free_ -= procs;
  freeCount_ -= procs.count();
}

void Machine::release(const ProcSet& procs, Time now) {
  SPS_CHECK_MSG(!procs.empty(), "release of empty set");
  SPS_CHECK_MSG(!procs.intersects(free_),
                "release of already-free processors " << procs.toString());
  advance(now);
  free_ |= procs;
  freeCount_ += procs.count();
}

double Machine::busyProcSeconds(Time now) const {
  SPS_CHECK(now >= lastChange_);
  return busyIntegral_ + static_cast<double>(busyCount()) *
                             static_cast<double>(now - lastChange_);
}

}  // namespace sps::sim
