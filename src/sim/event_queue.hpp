// EventQueue — the discrete-event core's pending-event set.
//
// A binary min-heap ordered by (time, sequence). The sequence number makes
// ordering total and deterministic: two events at the same instant fire in
// the order they were scheduled, so simulations replay bit-identically.
//
// Completions cancelled by preemption are handled by the *simulator* with
// generation counters (stale events are popped and ignored), so the queue
// itself needs no removal support.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace sps::sim {

enum class EventType : std::uint8_t {
  JobArrival,     ///< job submitted; payload = JobId
  JobCompletion,  ///< running job finished; payload = JobId, gen = counter
  SuspendDrained, ///< suspension overhead (memory write-out) done; payload = JobId
  Timer,          ///< policy timer; payload = opaque tag
};

struct Event {
  Time time = 0;
  std::uint64_t seq = 0;  ///< tie-breaker; assigned by the queue
  EventType type = EventType::Timer;
  std::uint64_t payload = 0;  ///< JobId or timer tag
  std::uint64_t generation = 0;  ///< completion-validity counter
};

class EventQueue {
 public:
  void push(Time time, EventType type, std::uint64_t payload,
            std::uint64_t generation = 0);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest event's time; requires non-empty.
  [[nodiscard]] Time nextTime() const;

  /// Remove and return the earliest event; requires non-empty.
  Event pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace sps::sim
