// EventQueue — the discrete-event core's pending-event set.
//
// Two interchangeable implementations behind one façade, selected by
// QueueKind:
//
//  * BinaryHeap — the original std::priority_queue ordered by
//    (time, sequence). O(log n) per operation, kept as the reference
//    implementation and pinned against the calendar queue by the
//    event-queue property suite and the differential fuzzer.
//  * Calendar — a calendar/ladder queue tuned to the workload's shape:
//    minute-granularity preemption ticks plus arrival/completion events
//    spread over a bounded horizon. Events hash into fixed-width time
//    buckets; only the bucket under the cursor is ever sorted, so the
//    common push/pop pair is O(1) amortized.
//
// Both orders are the same total order (time, then band, then insertion
// sequence), so simulations replay bit-identically regardless of the queue
// kind. The band puts JobArrival ahead of every other event type at the
// same instant: batch construction pushes all arrivals first (so they won
// same-time ties by sequence number alone), and ranking arrivals explicitly
// keeps streamed-in submissions — pushed *after* dynamic events already in
// the queue — firing in exactly the batch order. Within a band, the
// sequence number makes ordering total and deterministic: two events at the
// same instant fire in the order they were scheduled.
//
// Completions cancelled by preemption are handled by the *simulator* with
// generation counters (stale events are popped and ignored), so the queue
// itself needs no removal support.
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace sps::sim {

enum class EventType : std::uint8_t {
  JobArrival,     ///< job submitted; payload = JobId
  JobCompletion,  ///< running job finished; payload = JobId, gen = counter
  SuspendDrained, ///< suspension overhead (memory write-out) done; payload = JobId
  Timer,          ///< policy timer; payload = opaque tag
};

struct Event {
  Time time = 0;
  std::uint64_t seq = 0;  ///< tie-breaker; assigned by the queue
  EventType type = EventType::Timer;
  std::uint64_t payload = 0;  ///< JobId or timer tag
  std::uint64_t generation = 0;  ///< completion-validity counter
};

/// Same-instant rank: arrivals fire before every other event type at the
/// same timestamp, so a submission streamed in mid-run (pushed after dynamic
/// events with earlier sequence numbers) still fires in the position the
/// batch path would have given it.
[[nodiscard]] inline std::uint8_t eventBand(EventType type) {
  return type == EventType::JobArrival ? 0 : 1;
}

enum class QueueKind : std::uint8_t { Calendar, BinaryHeap };

/// Reference implementation: binary min-heap over (time, band, seq).
class BinaryHeapEventQueue {
 public:
  void push(const Event& e) { heap_.push(e); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] Time nextTime() const { return heap_.top().time; }
  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (eventBand(a.type) != eventBand(b.type))
        return eventBand(a.type) > eventBand(b.type);
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

/// Calendar queue: a ring of fixed-width time buckets plus an overflow list
/// for events beyond the ring's window.
///
/// Invariants between operations ("settled" state):
///  * the ring covers absolute buckets [cur_, farStart_), with
///    farStart_ - cur_ <= kBuckets, so slots never alias;
///  * far_ holds every event whose bucket is >= farStart_;
///  * if the queue is non-empty, the cursor bucket is sorted by
///    (time, band, seq) and has unconsumed events at [curPos_, size), so
///    nextTime() is O(1).
///
/// Pushes at or before the cursor bucket (same-timestamp cascades, which
/// the simulator produces constantly) binary-insert into the unconsumed
/// suffix; future in-window pushes append unsorted and are sorted only when
/// the cursor reaches them; far pushes go to the overflow list, which is
/// redistributed when the cursor crosses farStart_.
class CalendarEventQueue {
 public:
  void push(const Event& e);
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] Time nextTime() const {
    return ring_[cur_ % kBuckets][curPos_].time;
  }
  Event pop();

 private:
  // 64-second buckets sit just above the minute-granularity preemption tick,
  // and 2048 of them give a ~36-hour window — wider than the arrival→
  // completion horizon of almost every job in the traces, so overflow
  // redistribution is rare.
  static constexpr std::uint64_t kBucketWidth = 64;
  static constexpr std::uint64_t kBuckets = 2048;

  static std::uint64_t bucketOf(Time t) {
    return t <= 0 ? 0 : static_cast<std::uint64_t>(t) / kBucketWidth;
  }
  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (eventBand(a.type) != eventBand(b.type))
      return eventBand(a.type) < eventBand(b.type);
    return a.seq < b.seq;
  }

  /// Re-establish the settled invariant after a push or pop.
  void settle();
  /// Advance the window: move far_ events now in range into the ring.
  void rebase();

  std::array<std::vector<Event>, kBuckets> ring_;
  std::vector<Event> far_;        ///< events in buckets >= farStart_
  std::uint64_t cur_ = 0;         ///< absolute bucket under the cursor
  std::uint64_t farStart_ = kBuckets;  ///< ring covers [cur_, farStart_)
  std::size_t curPos_ = 0;        ///< consumed prefix of the cursor bucket
  bool curSorted_ = false;        ///< cursor bucket sorted and live
  std::size_t size_ = 0;
  std::size_t farCount_ = 0;      ///< == far_.size(); ring holds the rest
};

/// The façade the simulator uses. Assigns sequence numbers and dispatches
/// to the selected implementation.
class EventQueue {
 public:
  explicit EventQueue(QueueKind kind = QueueKind::Calendar) : kind_(kind) {}

  void push(Time time, EventType type, std::uint64_t payload,
            std::uint64_t generation = 0);

  [[nodiscard]] QueueKind kind() const { return kind_; }
  [[nodiscard]] bool empty() const {
    return kind_ == QueueKind::Calendar ? calendar_.empty() : heap_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return kind_ == QueueKind::Calendar ? calendar_.size() : heap_.size();
  }

  /// Earliest event's time; requires non-empty.
  [[nodiscard]] Time nextTime() const;

  /// Remove and return the earliest event; requires non-empty.
  Event pop();

 private:
  QueueKind kind_;
  CalendarEventQueue calendar_;
  BinaryHeapEventQueue heap_;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace sps::sim
