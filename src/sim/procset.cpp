#include "sim/procset.hpp"

#include <algorithm>
#include <sstream>

namespace sps::sim {

ProcSet ProcSet::firstN(std::uint32_t n) {
  ProcSet s;
  const std::uint32_t inlineN = std::min(n, kInlineBits);
  std::uint32_t full = inlineN / 64;
  for (std::uint32_t w = 0; w < full; ++w) s.words_[w] = ~std::uint64_t{0};
  const std::uint32_t inlineRem = inlineN % 64;
  if (inlineRem != 0) s.words_[full] = (std::uint64_t{1} << inlineRem) - 1;
  if (n <= kInlineBits) return s;
  const std::uint32_t fullWords = n / 64;
  const std::uint32_t rem = n % 64;
  s.extBase_ = kInlineWords;
  s.ext_.assign(fullWords - kInlineWords + (rem != 0 ? 1 : 0),
                ~std::uint64_t{0});
  if (rem != 0) s.ext_.back() = (std::uint64_t{1} << rem) - 1;
  return s;
}

void ProcSet::insertExt(std::uint32_t proc) {
  const std::uint32_t w = proc >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (proc & 63);
  if (ext_.empty()) {
    extBase_ = w;
    ext_.push_back(bit);
    return;
  }
  if (w < extBase_) {
    ext_.insert(ext_.begin(), extBase_ - w, 0);
    extBase_ = w;
  } else if (w - extBase_ >= ext_.size()) {
    ext_.resize(w - extBase_ + 1, 0);
  }
  ext_[w - extBase_] |= bit;
}

void ProcSet::eraseExt(std::uint32_t proc) {
  const std::uint32_t w = proc >> 6;
  if (ext_.empty() || w < extBase_ || w - extBase_ >= ext_.size()) return;
  ext_[w - extBase_] &= ~(std::uint64_t{1} << (proc & 63));
  trimExt();
}

void ProcSet::trimExt() {
  while (!ext_.empty() && ext_.back() == 0) ext_.pop_back();
  std::size_t lead = 0;
  while (lead < ext_.size() && ext_[lead] == 0) ++lead;
  if (lead != 0) {
    ext_.erase(ext_.begin(), ext_.begin() + static_cast<std::ptrdiff_t>(lead));
    extBase_ += static_cast<std::uint32_t>(lead);
  }
  if (ext_.empty()) extBase_ = 0;
}

std::uint32_t ProcSet::count() const {
  std::uint32_t c = 0;
  for (auto w : words_) c += static_cast<std::uint32_t>(__builtin_popcountll(w));
  for (auto w : ext_) c += static_cast<std::uint32_t>(__builtin_popcountll(w));
  return c;
}

bool ProcSet::empty() const {
  if (!ext_.empty()) return false;
  for (auto w : words_)
    if (w != 0) return false;
  return true;
}

bool ProcSet::intersects(const ProcSet& other) const {
  for (std::size_t i = 0; i < kInlineWords; ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  if (ext_.empty() || other.ext_.empty()) return false;
  const std::uint32_t lo = std::max(extBase_, other.extBase_);
  const std::uint32_t hi =
      std::min(extBase_ + static_cast<std::uint32_t>(ext_.size()),
               other.extBase_ + static_cast<std::uint32_t>(other.ext_.size()));
  for (std::uint32_t w = lo; w < hi; ++w)
    if ((ext_[w - extBase_] & other.ext_[w - other.extBase_]) != 0)
      return true;
  return false;
}

bool ProcSet::isSubsetOf(const ProcSet& other) const {
  for (std::size_t i = 0; i < kInlineWords; ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  for (std::size_t i = 0; i < ext_.size(); ++i)
    if ((ext_[i] & ~other.extWord(extBase_ + i)) != 0) return false;
  return true;
}

ProcSet ProcSet::operator|(const ProcSet& other) const {
  ProcSet r = *this;
  r |= other;
  return r;
}

ProcSet ProcSet::operator&(const ProcSet& other) const {
  ProcSet r = *this;
  r &= other;
  return r;
}

ProcSet ProcSet::operator-(const ProcSet& other) const {
  ProcSet r = *this;
  r -= other;
  return r;
}

ProcSet& ProcSet::operator|=(const ProcSet& other) {
  for (std::size_t i = 0; i < kInlineWords; ++i) words_[i] |= other.words_[i];
  if (other.ext_.empty()) return *this;
  if (ext_.empty()) {
    extBase_ = other.extBase_;
    ext_ = other.ext_;
    return *this;
  }
  // Merge the two windows. The result stays canonical: its first and last
  // words each coincide with the (non-zero) base or tail word of whichever
  // operand extends furthest.
  const std::uint32_t lo = std::min(extBase_, other.extBase_);
  const std::uint32_t hi =
      std::max(extBase_ + static_cast<std::uint32_t>(ext_.size()),
               other.extBase_ + static_cast<std::uint32_t>(other.ext_.size()));
  std::vector<std::uint64_t> merged(hi - lo, 0);
  for (std::size_t i = 0; i < ext_.size(); ++i)
    merged[extBase_ - lo + i] = ext_[i];
  for (std::size_t i = 0; i < other.ext_.size(); ++i)
    merged[other.extBase_ - lo + i] |= other.ext_[i];
  ext_ = std::move(merged);
  extBase_ = lo;
  return *this;
}

ProcSet& ProcSet::operator&=(const ProcSet& other) {
  for (std::size_t i = 0; i < kInlineWords; ++i) words_[i] &= other.words_[i];
  if (ext_.empty()) return *this;
  if (other.ext_.empty()) {
    ext_.clear();
    extBase_ = 0;
    return *this;
  }
  for (std::size_t i = 0; i < ext_.size(); ++i)
    ext_[i] &= other.extWord(extBase_ + i);
  trimExt();
  return *this;
}

ProcSet& ProcSet::operator-=(const ProcSet& other) {
  for (std::size_t i = 0; i < kInlineWords; ++i) words_[i] &= ~other.words_[i];
  if (ext_.empty() || other.ext_.empty()) return *this;
  for (std::size_t i = 0; i < ext_.size(); ++i)
    ext_[i] &= ~other.extWord(extBase_ + i);
  trimExt();
  return *this;
}

ProcSet ProcSet::lowest(std::uint32_t n) const {
  SPS_CHECK_MSG(n <= count(),
                "lowest(" << n << ") from set of " << count());
  ProcSet r;
  std::uint32_t taken = 0;
  for (std::size_t w = 0; w < kInlineWords && taken < n; ++w) {
    std::uint64_t bits = words_[w];
    const auto avail = static_cast<std::uint32_t>(__builtin_popcountll(bits));
    if (taken + avail <= n) {
      r.words_[w] = bits;
      taken += avail;
    } else {
      while (taken < n) {
        const std::uint64_t low = bits & (~bits + 1);
        r.words_[w] |= low;
        bits ^= low;
        ++taken;
      }
    }
  }
  if (taken < n) {
    r.extBase_ = extBase_;
    for (std::size_t i = 0; i < ext_.size() && taken < n; ++i) {
      std::uint64_t bits = ext_[i];
      const auto avail = static_cast<std::uint32_t>(__builtin_popcountll(bits));
      if (taken + avail <= n) {
        r.ext_.push_back(bits);
        taken += avail;
      } else {
        std::uint64_t partial = 0;
        while (taken < n) {
          const std::uint64_t low = bits & (~bits + 1);
          partial |= low;
          bits ^= low;
          ++taken;
        }
        r.ext_.push_back(partial);
      }
    }
    r.trimExt();
  }
  return r;
}

std::uint32_t ProcSet::first() const {
  for (std::size_t w = 0; w < kInlineWords; ++w)
    if (words_[w] != 0)
      return static_cast<std::uint32_t>(w * 64) +
             static_cast<std::uint32_t>(__builtin_ctzll(words_[w]));
  if (!ext_.empty())
    return extBase_ * 64 +
           static_cast<std::uint32_t>(__builtin_ctzll(ext_.front()));
  SPS_CHECK_MSG(false, "first() on empty ProcSet");
  return 0;  // unreachable
}

std::string ProcSet::toString() const {
  std::ostringstream os;
  os << '{';
  bool firstRange = true;
  std::int64_t runStart = -1, prev = -2;
  auto flush = [&]() {
    if (runStart < 0) return;
    if (!firstRange) os << ',';
    firstRange = false;
    if (runStart == prev) os << runStart;
    else os << runStart << '-' << prev;
  };
  forEach([&](std::uint32_t p) {
    if (static_cast<std::int64_t>(p) != prev + 1) {
      flush();
      runStart = p;
    }
    prev = p;
  });
  flush();
  os << '}';
  return os.str();
}

}  // namespace sps::sim
