#include "sim/procset.hpp"

#include <sstream>

namespace sps::sim {

ProcSet ProcSet::firstN(std::uint32_t n) {
  SPS_CHECK_MSG(n <= kMaxProcs, "firstN(" << n << ") exceeds capacity");
  ProcSet s;
  std::uint32_t full = n / 64;
  for (std::uint32_t w = 0; w < full; ++w) s.words_[w] = ~std::uint64_t{0};
  const std::uint32_t rem = n % 64;
  if (rem != 0) s.words_[full] = (std::uint64_t{1} << rem) - 1;
  return s;
}

std::uint32_t ProcSet::count() const {
  std::uint32_t c = 0;
  for (auto w : words_) c += static_cast<std::uint32_t>(__builtin_popcountll(w));
  return c;
}

bool ProcSet::empty() const {
  for (auto w : words_)
    if (w != 0) return false;
  return true;
}

bool ProcSet::intersects(const ProcSet& other) const {
  for (std::size_t i = 0; i < kWords; ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

bool ProcSet::isSubsetOf(const ProcSet& other) const {
  for (std::size_t i = 0; i < kWords; ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

ProcSet ProcSet::operator|(const ProcSet& other) const {
  ProcSet r = *this;
  r |= other;
  return r;
}

ProcSet ProcSet::operator&(const ProcSet& other) const {
  ProcSet r = *this;
  r &= other;
  return r;
}

ProcSet ProcSet::operator-(const ProcSet& other) const {
  ProcSet r = *this;
  r -= other;
  return r;
}

ProcSet& ProcSet::operator|=(const ProcSet& other) {
  for (std::size_t i = 0; i < kWords; ++i) words_[i] |= other.words_[i];
  return *this;
}

ProcSet& ProcSet::operator&=(const ProcSet& other) {
  for (std::size_t i = 0; i < kWords; ++i) words_[i] &= other.words_[i];
  return *this;
}

ProcSet& ProcSet::operator-=(const ProcSet& other) {
  for (std::size_t i = 0; i < kWords; ++i) words_[i] &= ~other.words_[i];
  return *this;
}

ProcSet ProcSet::lowest(std::uint32_t n) const {
  SPS_CHECK_MSG(n <= count(),
                "lowest(" << n << ") from set of " << count());
  ProcSet r;
  std::uint32_t taken = 0;
  for (std::size_t w = 0; w < kWords && taken < n; ++w) {
    std::uint64_t bits = words_[w];
    const auto avail = static_cast<std::uint32_t>(__builtin_popcountll(bits));
    if (taken + avail <= n) {
      r.words_[w] = bits;
      taken += avail;
    } else {
      while (taken < n) {
        const std::uint64_t low = bits & (~bits + 1);
        r.words_[w] |= low;
        bits ^= low;
        ++taken;
      }
    }
  }
  return r;
}

std::uint32_t ProcSet::first() const {
  for (std::size_t w = 0; w < kWords; ++w)
    if (words_[w] != 0)
      return static_cast<std::uint32_t>(w * 64) +
             static_cast<std::uint32_t>(__builtin_ctzll(words_[w]));
  SPS_CHECK_MSG(false, "first() on empty ProcSet");
  return 0;  // unreachable
}

std::string ProcSet::toString() const {
  std::ostringstream os;
  os << '{';
  bool firstRange = true;
  std::int64_t runStart = -1, prev = -2;
  auto flush = [&]() {
    if (runStart < 0) return;
    if (!firstRange) os << ',';
    firstRange = false;
    if (runStart == prev) os << runStart;
    else os << runStart << '-' << prev;
  };
  forEach([&](std::uint32_t p) {
    if (static_cast<std::int64_t>(p) != prev + 1) {
      flush();
      runStart = p;
    }
    prev = p;
  });
  flush();
  os << '}';
  return os.str();
}

}  // namespace sps::sim
