#include "core/replicate.hpp"

#include <utility>

#include "core/experiment.hpp"
#include "util/check.hpp"

namespace sps::core {

std::vector<ReplicationResult> replicate(
    Runner& runner,
    const std::function<workload::Trace(std::uint64_t)>& makeTrace,
    const std::vector<std::uint64_t>& seeds, std::vector<PolicySpec> specs,
    const SimulationOptions& options) {
  SPS_CHECK_MSG(!seeds.empty(), "replication needs at least one seed");
  SPS_CHECK_MSG(!specs.empty(), "replication needs at least one spec");

  std::vector<ReplicationResult> results(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p)
    results[p].policyName = policyLabel(specs[p]);

  // Generate every seed's workload up front (makeTrace is caller code and
  // need not be thread-safe, so it runs on this thread).
  std::vector<std::shared_ptr<const workload::Trace>> traces;
  traces.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) traces.push_back(shareTrace(makeTrace(seed)));

  bool anyTss = false;
  for (const PolicySpec& s : specs)
    anyTss |= (s.kind == PolicyKind::SelectiveSuspension &&
               s.ss.tssLimits.has_value());

  // Stage 1 — TSS calibration where engaged: one NS run per seed, batched.
  // Each seed is its own workload, so each gets its own NS reference.
  std::vector<std::vector<PolicySpec>> seedSpecs(seeds.size(), specs);
  if (anyTss) {
    std::vector<RunRequest> calibration;
    calibration.reserve(seeds.size());
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      RunRequest request;
      request.trace = traces[s];
      request.spec.kind = PolicyKind::Easy;
      request.options = options;
      request.seed = seeds[s];
      request.label = "TSS calibration (NS)";
      calibration.push_back(std::move(request));
    }
    const std::vector<RunResult> nsRuns = runner.runAll(std::move(calibration));
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const auto limits = metrics::tssLimits(nsRuns[s].stats.jobs, 1.5);
      for (PolicySpec& spec : seedSpecs[s])
        if (spec.kind == PolicyKind::SelectiveSuspension &&
            spec.ss.tssLimits.has_value())
          spec.ss.tssLimits = limits;
    }
  }

  // Stage 2 — the full seed x spec grid as one batch.
  std::vector<RunRequest> batch;
  batch.reserve(seeds.size() * specs.size());
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    for (const PolicySpec& spec : seedSpecs[s]) {
      RunRequest request;
      request.trace = traces[s];
      request.spec = spec;
      request.options = options;
      request.seed = seeds[s];
      batch.push_back(std::move(request));
    }
  }
  const std::vector<RunResult> runs = runner.runAll(std::move(batch));

  // Accumulate in seed-major order — the same sample order as the original
  // sequential loop, so the floating-point aggregates match exactly.
  std::size_t next = 0;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    for (std::size_t p = 0; p < specs.size(); ++p) {
      const metrics::RunStats& stats = runs[next++].stats;
      results[p].meanSlowdown.add(stats.meanBoundedSlowdown());
      results[p].meanTurnaround.add(stats.meanTurnaround());
      results[p].steadyUtilization.add(stats.steadyUtilization);
      results[p].suspensionsPerJob.add(
          static_cast<double>(stats.suspensions) /
          static_cast<double>(stats.jobs.size()));
    }
  }
  return results;
}

std::vector<ReplicationResult> replicate(
    const std::function<workload::Trace(std::uint64_t)>& makeTrace,
    const std::vector<std::uint64_t>& seeds, std::vector<PolicySpec> specs,
    const SimulationOptions& options) {
  Runner runner;
  return replicate(runner, makeTrace, seeds, std::move(specs), options);
}

Table replicationTable(const std::vector<ReplicationResult>& results) {
  Table t({"policy", "avg slowdown", "avg turnaround (s)",
           "steady utilization", "suspensions/job"});
  auto pm = [](const Accumulator& acc, int precision) {
    return formatFixed(acc.mean(), precision) + " ± " +
           formatFixed(acc.stddev(), precision);
  };
  for (const ReplicationResult& r : results) {
    t.row()
        .cell(r.policyName)
        .cell(pm(r.meanSlowdown, 2))
        .cell(pm(r.meanTurnaround, 0))
        .cell(pm(r.steadyUtilization, 3))
        .cell(pm(r.suspensionsPerJob, 3));
  }
  return t;
}

}  // namespace sps::core
