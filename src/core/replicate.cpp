#include "core/replicate.hpp"

#include "core/experiment.hpp"
#include "util/check.hpp"

namespace sps::core {

std::vector<ReplicationResult> replicate(
    const std::function<workload::Trace(std::uint64_t)>& makeTrace,
    const std::vector<std::uint64_t>& seeds, std::vector<PolicySpec> specs,
    const SimulationOptions& options) {
  SPS_CHECK_MSG(!seeds.empty(), "replication needs at least one seed");
  SPS_CHECK_MSG(!specs.empty(), "replication needs at least one spec");

  std::vector<ReplicationResult> results(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p)
    results[p].policyName = policyLabel(specs[p]);

  for (const std::uint64_t seed : seeds) {
    const workload::Trace trace = makeTrace(seed);
    // Fresh TSS calibration per seed where engaged.
    std::vector<PolicySpec> seedSpecs = specs;
    bool anyTss = false;
    for (const PolicySpec& s : seedSpecs)
      anyTss |= (s.kind == PolicyKind::SelectiveSuspension &&
                 s.ss.tssLimits.has_value());
    if (anyTss) {
      const auto limits = bootstrapTssLimits(trace, 1.5, options);
      for (PolicySpec& s : seedSpecs)
        if (s.kind == PolicyKind::SelectiveSuspension &&
            s.ss.tssLimits.has_value())
          s.ss.tssLimits = limits;
    }
    for (std::size_t p = 0; p < seedSpecs.size(); ++p) {
      const metrics::RunStats stats =
          runSimulation(trace, seedSpecs[p], options);
      results[p].meanSlowdown.add(stats.meanBoundedSlowdown());
      results[p].meanTurnaround.add(stats.meanTurnaround());
      results[p].steadyUtilization.add(stats.steadyUtilization);
      results[p].suspensionsPerJob.add(
          static_cast<double>(stats.suspensions) /
          static_cast<double>(stats.jobs.size()));
    }
  }
  return results;
}

Table replicationTable(const std::vector<ReplicationResult>& results) {
  Table t({"policy", "avg slowdown", "avg turnaround (s)",
           "steady utilization", "suspensions/job"});
  auto pm = [](const Accumulator& acc, int precision) {
    return formatFixed(acc.mean(), precision) + " ± " +
           formatFixed(acc.stddev(), precision);
  };
  for (const ReplicationResult& r : results) {
    t.row()
        .cell(r.policyName)
        .cell(pm(r.meanSlowdown, 2))
        .cell(pm(r.meanTurnaround, 0))
        .cell(pm(r.steadyUtilization, 3))
        .cell(pm(r.suspensionsPerJob, 3));
  }
  return t;
}

}  // namespace sps::core
