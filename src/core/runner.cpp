#include "core/runner.hpp"

#include <chrono>
#include <exception>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/progress.hpp"
#include "metrics/openmetrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace sps::core {

std::shared_ptr<const workload::Trace> shareTrace(workload::Trace trace) {
  return std::make_shared<const workload::Trace>(std::move(trace));
}

std::shared_ptr<const workload::Trace> borrowTrace(
    const workload::Trace& trace) {
  // Aliasing constructor: shared_ptr interface, no ownership.
  return std::shared_ptr<const workload::Trace>(
      std::shared_ptr<const workload::Trace>(), &trace);
}

Runner::Runner() : Runner(Config{}) {}

Runner::Runner(Config config)
    : threads_(config.threads == 0 ? util::ThreadPool::defaultThreadCount()
                                   : config.threads) {}

Runner::~Runner() = default;

void Runner::onRunComplete(RunCompleteHook hook) { hook_ = std::move(hook); }

void Runner::attachProgress(ProgressBoard* board) { progress_ = board; }

obs::Counters Runner::engineCounters() const {
  std::lock_guard<std::mutex> lock(hookMutex_);
  return engineCounters_;
}

namespace {
Time progressHorizon(const workload::Trace& trace) {
  return trace.jobs.empty() ? Time{0} : trace.jobs.back().submit;
}
}  // namespace

RunResult Runner::execute(const RunRequest& request, std::size_t index) {
  SPS_CHECK_MSG(request.trace != nullptr,
                "RunRequest " << index << " has no trace");
  RunResult result;
  result.index = index;
  result.seed = request.seed;
  result.label =
      request.label.empty() ? policyLabel(request.spec) : request.label;
  SimulationOptions options = request.options;
  ProgressBoard::Ticket ticket;
  if (progress_ != nullptr) {
    ticket = progress_->startRun(progressHorizon(*request.trace));
    options.progress = &ticket;
  }
  const auto start = std::chrono::steady_clock::now();
  result.stats = runSimulation(*request.trace, request.spec, options);
  const auto end = std::chrono::steady_clock::now();
  if (progress_ != nullptr)
    progress_->finishRun(ticket, result.stats.eventsProcessed);
  result.wallSeconds = std::chrono::duration<double>(end - start).count();
  result.policyName = result.stats.policyName;
  result.traceName = result.stats.traceName;
#if SPS_TRACE_ON
  // Task-lifecycle span: wall-clock timebase (unlike the sim-time events
  // inside the run), one lane per request index so concurrent tasks stack
  // in the viewer. The local Recorder borrows the request's sink; the label
  // string outlives the synchronous emit.
  if (request.options.traceSink != nullptr) {
    obs::Recorder lifecycle(request.options.traceSink);
    const auto startUs = std::chrono::duration_cast<std::chrono::microseconds>(
        start.time_since_epoch());
    const auto durUs =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start);
    SPS_TRACE(&lifecycle,
              obs::complete("runner", result.label.c_str(), startUs.count(),
                            durUs.count(), index)
                  .arg("events",
                       static_cast<std::int64_t>(result.stats.eventsProcessed))
                  .arg("seed", static_cast<std::int64_t>(result.seed)));
  }
#endif
  return result;
}

void Runner::notify(const RunResult& result) {
  if (!hook_) return;
  std::lock_guard<std::mutex> lock(hookMutex_);
  // A hook failure is the caller's bug, but it must not tear down the pool
  // or poison the batch's results: contain it, make it visible, count it.
  try {
    hook_(result);
  } catch (const std::exception& e) {
    engineCounters_.inc(obs::Counter::RunnerHookExceptions);
    SPS_LOG_WARN("onRunComplete hook threw for run " << result.index << " ("
                                                     << result.label
                                                     << "): " << e.what());
  } catch (...) {
    engineCounters_.inc(obs::Counter::RunnerHookExceptions);
    SPS_LOG_WARN("onRunComplete hook threw for run "
                 << result.index << " (" << result.label
                 << "): non-std exception");
  }
}

RunResult Runner::runOne(const RunRequest& request) {
  if (progress_ != nullptr) progress_->beginBatch(1);
  RunResult result = execute(request, 0);
  notify(result);
  return result;
}

std::vector<RunResult> Runner::runAll(std::vector<RunRequest> requests) {
  std::vector<RunResult> results(requests.size());
  if (requests.empty()) return results;
  if (progress_ != nullptr) progress_->beginBatch(requests.size());

  // Inline path: one thread, or nothing to overlap.
  if (threads_ == 1 || requests.size() == 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      results[i] = execute(requests[i], i);
      notify(results[i]);
    }
    return results;
  }

  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(threads_);
  std::vector<std::future<void>> futures;
  futures.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    futures.push_back(pool_->submit([this, &requests, &results, i] {
      results[i] = execute(requests[i], i);
      notify(results[i]);
    }));
  }
  // Drain the whole batch before surfacing any failure: results/requests
  // live on this stack frame, so no task may outlive this scope.
  for (std::future<void>& f : futures) f.wait();
  // Rethrow the lowest-index failure so error reporting is deterministic.
  for (std::future<void>& f : futures) f.get();
  return results;
}

void writeRunResultsJson(std::ostream& os,
                         const std::vector<RunResult>& results,
                         const metrics::JsonOptions& options) {
  metrics::JsonWriter w(os, options.indent);
  w.beginObject()
      .field("schemaVersion", std::int64_t{1})
      .field("runCount", static_cast<std::uint64_t>(results.size()));
  w.key("results").beginArray();
  for (const RunResult& r : results) {
    w.beginObject()
        .field("index", static_cast<std::uint64_t>(r.index))
        .field("label", r.label)
        .field("seed", r.seed)
        .field("policy", r.policyName)
        .field("trace", r.traceName)
        .field("wallSeconds", r.wallSeconds);
    w.key("stats");
    metrics::writeRunStatsJson(w, r.stats, options);
    w.endObject();
  }
  w.endArray().endObject();
}

std::string runResultsJson(const std::vector<RunResult>& results,
                           const metrics::JsonOptions& options) {
  std::ostringstream os;
  writeRunResultsJson(os, results, options);
  return os.str();
}

void writeRunResultsOpenMetrics(std::ostream& os,
                                const std::vector<RunResult>& results) {
  std::vector<metrics::OpenMetricsEntry> entries;
  entries.reserve(results.size());
  for (const RunResult& r : results) {
    metrics::OpenMetricsEntry entry;
    entry.stats = &r.stats;
    entry.run = r.index;
    entry.label = r.label;
    entry.seed = r.seed;
    entry.wallSeconds = r.wallSeconds;
    entries.push_back(std::move(entry));
  }
  metrics::writeOpenMetrics(os, entries);
}

}  // namespace sps::core
