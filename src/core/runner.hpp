// Runner — the parallel experiment engine.
//
// Every figure and table in the paper's evaluation is a batch of independent,
// deterministic simulations. The Runner is the one seam through which such
// batches execute: describe each run as a RunRequest, hand the batch to
// runAll(), and get back one RunResult per request, ordered by request index
// and bit-for-bit identical for any thread count.
//
//   core::Runner runner({.threads = 8});
//   std::vector<core::RunRequest> batch;
//   for (const auto& spec : core::ssSchemeSet())
//     batch.push_back({trace, spec});
//   auto results = runner.runAll(std::move(batch));
//
// The convenience free functions (compareSchemes, loadSweep, replicate,
// bootstrapTssLimits) are thin compositions over this class.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "metrics/json.hpp"
#include "obs/counters.hpp"
#include "util/thread_pool.hpp"

namespace sps::core {

class ProgressBoard;  // core/progress.hpp

/// One simulation to run: trace + policy + options, plus bookkeeping fields
/// that are echoed untouched into the RunResult so batch builders can tag
/// runs (sweep coordinates, seeds) without side tables.
struct RunRequest {
  /// Shared so a batch can reference one trace from many requests and the
  /// trace safely outlives the calling scope. Use shareTrace()/borrowTrace().
  std::shared_ptr<const workload::Trace> trace;
  PolicySpec spec;
  SimulationOptions options{};
  /// Echoed into RunResult::seed — the workload seed, by convention.
  std::uint64_t seed = 0;
  /// Echoed into RunResult::label; empty = policyLabel(spec).
  std::string label;
};

/// Take ownership of a trace and share it between requests.
[[nodiscard]] std::shared_ptr<const workload::Trace> shareTrace(
    workload::Trace trace);

/// Non-owning view of a caller-owned trace (must outlive the runs).
[[nodiscard]] std::shared_ptr<const workload::Trace> borrowTrace(
    const workload::Trace& trace);

/// Outcome of one request: the collected stats plus request echo and timing.
struct RunResult {
  std::size_t index = 0;  ///< position in the submitted batch
  std::string policyName;
  std::string traceName;
  std::uint64_t seed = 0;  ///< RunRequest::seed, echoed
  std::string label;       ///< RunRequest::label, or policyLabel(spec)
  double wallSeconds = 0.0;  ///< wall-clock time of this simulation
  metrics::RunStats stats;
};

/// Executes batches of simulations on a fixed-size thread pool.
///
/// Determinism contract: RunResult::stats depends only on the request (the
/// simulations share no mutable state), results come back ordered by request
/// index, and a failing run rethrows the lowest-index exception — so any
/// thread count produces identical outcomes. Only wallSeconds and the
/// onRunComplete callback order vary run to run.
class Runner {
 public:
  struct Config {
    /// Worker threads; 0 = one per hardware thread. 1 runs inline on the
    /// calling thread (no pool).
    std::size_t threads = 0;
  };

  /// Progress hook, called once per finished run in *completion* order
  /// (not index order). It fires on the worker thread that finished the run
  /// (the calling thread on the inline threads==1 / single-request path).
  /// Invocations are serialized; the hook needs no internal locking. A hook
  /// that throws does not kill the worker or fail the batch: the exception
  /// is caught, logged at Warning, and counted in engineCounters() under
  /// obs::Counter::RunnerHookExceptions.
  using RunCompleteHook = std::function<void(const RunResult&)>;

  Runner();  ///< default Config
  explicit Runner(Config config);
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  [[nodiscard]] std::size_t threadCount() const { return threads_; }

  void onRunComplete(RunCompleteHook hook);

  /// Publish live batch progress to `board` (see core/progress.hpp):
  /// runAll/runOne announce their runs via beginBatch and every run streams
  /// its sim-clock fraction and event count through a board Ticket. nullptr
  /// detaches. The board must outlive any batch started while attached.
  void attachProgress(ProgressBoard* board);

  /// Engine-level counters (hook exceptions, …) — distinct from the per-run
  /// simulation counters inside each RunResult. Returns a copy; safe to
  /// call while a batch runs.
  [[nodiscard]] obs::Counters engineCounters() const;

  /// Run the whole batch; blocks until every run finished. Results are
  /// ordered by request index. Throws the first (by index) run's exception
  /// after the batch has drained.
  [[nodiscard]] std::vector<RunResult> runAll(
      std::vector<RunRequest> requests);

  /// Run one request inline on the calling thread.
  [[nodiscard]] RunResult runOne(const RunRequest& request);

 private:
  [[nodiscard]] RunResult execute(const RunRequest& request,
                                  std::size_t index);
  void notify(const RunResult& result);

  std::size_t threads_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< lazily created on first batch
  RunCompleteHook hook_;
  /// Serializes hook invocations and guards engineCounters_ across workers.
  mutable std::mutex hookMutex_;
  obs::Counters engineCounters_;  ///< under hookMutex_
  ProgressBoard* progress_ = nullptr;
};

/// JSON export of result batches, for the bench harness and sps_sim --json.
/// Schema: {"schemaVersion":1,"results":[{index,label,seed,policy,trace,
/// wallSeconds,stats:{...metrics::writeRunStatsJson...}},...]}.
void writeRunResultsJson(std::ostream& os,
                         const std::vector<RunResult>& results,
                         const metrics::JsonOptions& options = {});
[[nodiscard]] std::string runResultsJson(
    const std::vector<RunResult>& results,
    const metrics::JsonOptions& options = {});

/// OpenMetrics exposition of a result batch (sps_sim --metrics-out): one
/// metrics::OpenMetricsEntry per run, carrying the batch index, label, seed,
/// and wall time alongside the stats.
void writeRunResultsOpenMetrics(std::ostream& os,
                                const std::vector<RunResult>& results);

}  // namespace sps::core
