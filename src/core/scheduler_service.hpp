// core::SchedulerService — the online scheduler-service mode.
//
// Wraps a streaming-constructed simulator behind a line-oriented text
// protocol so a driver (stdin pipe, socket relay, test harness) can inject
// work while the simulation is in flight and interrogate it between steps:
//
//   submit <time> <procs> <runtime> <estimate> [memMb]   -> ok <id>
//   cancel <id>                                          -> ok cancelled <id>
//   query <id>                                           -> ok job <id> ...
//   stats                                                -> ok now <t> ...
//   drain                                                -> ok drained ...
//
// Any failure answers `err <verb>: <reason>` on the same line boundary;
// blank lines and `#` comments are ignored and produce no reply. One reply
// line per command line, in command order — the protocol is sequential by
// construction, so replies never interleave.
//
// Bounded lookahead: the simulator only ever advances to the instant just
// before the newest externally known submit time (`runUntil(t - 1)`), then
// ingests the job. It never speculates past its input, so a replayed trace
// produces the schedule the batch run produces, bit for bit — the same
// discipline a conservatively synchronized PDES federate (SST-style) uses,
// with the submit stream as the lookahead channel.
//
// Threading: processLine() is the whole service and is strictly
// single-threaded — call it from one thread. serve() adds the standard
// driver arrangement: a reader thread pumps the input stream into a
// bounded command queue (blocking when the simulator falls behind) while
// the calling thread drains commands in order and writes replies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "core/simulation.hpp"

namespace sps::core {

struct ServiceConfig {
  /// Label for the synthetic trace the stream builds up (lands in metrics).
  std::string traceName = "service";
  /// Machine size; must be positive (there is no trace to infer it from).
  std::uint32_t machineProcs = 0;
  /// Scheduling policy driven by the stream. Policies that cannot repair
  /// bound future state reject `cancel` (Simulator::cancelJob contract);
  /// every policy accepts `submit`.
  PolicySpec spec{};
  /// The usual run options (checkers, timeline, trace sink, sim config).
  /// `options.progress` is ignored — the protocol's `stats` verb is the
  /// service's progress channel.
  SimulationOptions options{};
};

class SchedulerService {
 public:
  /// Builds the policy and an empty (streaming) simulator. Throws
  /// InputError when machineProcs == 0.
  explicit SchedulerService(ServiceConfig config);

  /// Parse and execute one protocol line against the simulator, advancing
  /// it under bounded lookahead first when the command requires it.
  /// Returns the reply line (without trailing newline); empty for blank or
  /// comment lines, which have no reply. Never throws on malformed input —
  /// those become `err` replies; InvariantError (an armed oracle firing)
  /// propagates, as it does everywhere else.
  [[nodiscard]] std::string processLine(std::string_view line);

  /// Drive the service from a stream: a reader thread feeds lines into a
  /// bounded queue, this thread executes them in order and writes one
  /// reply line per command to `out` (flushed per line, so a socket pipe
  /// sees replies promptly). At end of input the run is finished
  /// implicitly if no `drain` command did it. Returns the final stats.
  metrics::RunStats serve(std::istream& in, std::ostream& out);

  /// Drain the simulator and collect final metrics. Idempotent: the first
  /// call finishes the run, later calls return the same stats. After this,
  /// state-changing verbs answer `err`.
  [[nodiscard]] metrics::RunStats finish();

  [[nodiscard]] bool drained() const { return stats_.has_value(); }
  [[nodiscard]] std::uint64_t submissions() const { return submissions_; }
  [[nodiscard]] sim::Simulator& simulator() { return harness_.simulator(); }

 private:
  std::string doSubmit(std::istream& args);
  std::string doCancel(std::istream& args);
  std::string doQuery(std::istream& args);
  std::string doStats();
  std::string doDrain();

  SimulationHarness harness_;
  std::uint64_t submissions_ = 0;
  std::optional<metrics::RunStats> stats_;
};

}  // namespace sps::core
