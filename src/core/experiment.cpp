#include "core/experiment.hpp"

#include "util/table.hpp"
#include "workload/transforms.hpp"

namespace sps::core {

std::array<double, workload::kNumCategories16> bootstrapTssLimits(
    const workload::Trace& trace, double multiplier,
    const SimulationOptions& options) {
  PolicySpec ns;
  ns.kind = PolicyKind::Easy;
  const metrics::RunStats stats = runSimulation(trace, ns, options);
  return metrics::tssLimits(stats.jobs, multiplier);
}

std::vector<metrics::RunStats> compareSchemes(
    const workload::Trace& trace, const std::vector<PolicySpec>& specs,
    const SimulationOptions& options) {
  std::vector<metrics::RunStats> runs;
  runs.reserve(specs.size());
  for (const PolicySpec& spec : specs)
    runs.push_back(runSimulation(trace, spec, options));
  return runs;
}

std::vector<LoadPoint> loadSweep(const workload::Trace& trace,
                                 std::vector<PolicySpec> specs,
                                 const std::vector<double>& factors,
                                 bool calibrateTssFromBase,
                                 const SimulationOptions& options) {
  if (calibrateTssFromBase) {
    bool anyTss = false;
    for (const PolicySpec& s : specs)
      anyTss |= (s.kind == PolicyKind::SelectiveSuspension &&
                 s.ss.tssLimits.has_value());
    if (anyTss) {
      const auto limits = bootstrapTssLimits(trace, 1.5, options);
      for (PolicySpec& s : specs)
        if (s.kind == PolicyKind::SelectiveSuspension &&
            s.ss.tssLimits.has_value())
          s.ss.tssLimits = limits;
    }
  }
  std::vector<LoadPoint> points;
  points.reserve(factors.size());
  for (double f : factors) {
    LoadPoint p;
    p.loadFactor = f;
    p.runs = compareSchemes(workload::scaleLoad(trace, f), specs, options);
    points.push_back(std::move(p));
  }
  return points;
}

namespace {
PolicySpec ssSpec(double sf) {
  PolicySpec spec;
  spec.kind = PolicyKind::SelectiveSuspension;
  spec.ss.suspensionFactor = sf;
  spec.label = "SS(SF=" + formatFixed(sf, 1) + ")";
  return spec;
}

PolicySpec nsSpec() {
  PolicySpec spec;
  spec.kind = PolicyKind::Easy;
  spec.label = "NS";
  return spec;
}

PolicySpec isSpec() {
  PolicySpec spec;
  spec.kind = PolicyKind::ImmediateService;
  spec.label = "IS";
  return spec;
}
}  // namespace

std::vector<PolicySpec> ssSchemeSet() {
  return {ssSpec(1.5), ssSpec(2.0), ssSpec(5.0), nsSpec(), isSpec()};
}

std::vector<PolicySpec> worstCaseSchemeSet() {
  return {ssSpec(2.0), nsSpec(), isSpec()};
}

std::vector<PolicySpec> tssSchemeSet(
    const std::array<double, workload::kNumCategories16>& limits) {
  std::vector<PolicySpec> specs;
  for (double sf : {1.5, 2.0, 5.0}) {
    PolicySpec spec = ssSpec(sf);
    spec.ss.tssLimits = limits;
    spec.label = "TSS(SF=" + formatFixed(sf, 1) + ")";
    specs.push_back(spec);
  }
  specs.push_back(nsSpec());
  specs.push_back(isSpec());
  return specs;
}

}  // namespace sps::core
