#include "core/experiment.hpp"

#include <utility>

#include "util/table.hpp"
#include "workload/transforms.hpp"

namespace sps::core {

std::array<double, workload::kNumCategories16> bootstrapTssLimits(
    Runner& runner, const workload::Trace& trace, double multiplier,
    const SimulationOptions& options) {
  RunRequest request;
  request.trace = borrowTrace(trace);
  request.spec.kind = PolicyKind::Easy;
  request.options = options;
  request.label = "TSS calibration (NS)";
  const RunResult result = runner.runOne(request);
  return metrics::tssLimits(result.stats.jobs, multiplier);
}

std::array<double, workload::kNumCategories16> bootstrapTssLimits(
    const workload::Trace& trace, double multiplier,
    const SimulationOptions& options) {
  Runner runner;
  return bootstrapTssLimits(runner, trace, multiplier, options);
}

std::vector<metrics::RunStats> compareSchemes(
    Runner& runner, const workload::Trace& trace,
    const std::vector<PolicySpec>& specs, const SimulationOptions& options) {
  const auto shared = borrowTrace(trace);
  std::vector<RunRequest> batch;
  batch.reserve(specs.size());
  for (const PolicySpec& spec : specs) {
    RunRequest request;
    request.trace = shared;
    request.spec = spec;
    request.options = options;
    batch.push_back(std::move(request));
  }
  std::vector<metrics::RunStats> runs;
  runs.reserve(specs.size());
  for (RunResult& result : runner.runAll(std::move(batch)))
    runs.push_back(std::move(result.stats));
  return runs;
}

std::vector<metrics::RunStats> compareSchemes(
    const workload::Trace& trace, const std::vector<PolicySpec>& specs,
    const SimulationOptions& options) {
  Runner runner;
  return compareSchemes(runner, trace, specs, options);
}

std::vector<LoadPoint> loadSweep(Runner& runner, const workload::Trace& trace,
                                 std::vector<PolicySpec> specs,
                                 const std::vector<double>& factors,
                                 bool calibrateTssFromBase,
                                 const SimulationOptions& options) {
  if (calibrateTssFromBase) {
    bool anyTss = false;
    for (const PolicySpec& s : specs)
      anyTss |= (s.kind == PolicyKind::SelectiveSuspension &&
                 s.ss.tssLimits.has_value());
    if (anyTss) {
      const auto limits = bootstrapTssLimits(runner, trace, 1.5, options);
      for (PolicySpec& s : specs)
        if (s.kind == PolicyKind::SelectiveSuspension &&
            s.ss.tssLimits.has_value())
          s.ss.tssLimits = limits;
    }
  }

  // One flat batch over the (factor, spec) grid; each factor's scaled trace
  // is shared by that row of requests.
  std::vector<RunRequest> batch;
  batch.reserve(factors.size() * specs.size());
  for (double f : factors) {
    const auto scaled = shareTrace(workload::scaleLoad(trace, f));
    for (const PolicySpec& spec : specs) {
      RunRequest request;
      request.trace = scaled;
      request.spec = spec;
      request.options = options;
      request.label = policyLabel(spec) + " @ load x" + formatFixed(f, 2);
      batch.push_back(std::move(request));
    }
  }
  std::vector<RunResult> results = runner.runAll(std::move(batch));

  std::vector<LoadPoint> points;
  points.reserve(factors.size());
  std::size_t next = 0;
  for (double f : factors) {
    LoadPoint p;
    p.loadFactor = f;
    p.runs.reserve(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s)
      p.runs.push_back(std::move(results[next++].stats));
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<LoadPoint> loadSweep(const workload::Trace& trace,
                                 std::vector<PolicySpec> specs,
                                 const std::vector<double>& factors,
                                 bool calibrateTssFromBase,
                                 const SimulationOptions& options) {
  Runner runner;
  return loadSweep(runner, trace, std::move(specs), factors,
                   calibrateTssFromBase, options);
}

namespace {
PolicySpec ssSpec(double sf) {
  PolicySpec spec;
  spec.kind = PolicyKind::SelectiveSuspension;
  spec.ss.suspensionFactor = sf;
  spec.label = "SS(SF=" + formatFixed(sf, 1) + ")";
  return spec;
}

PolicySpec nsSpec() {
  PolicySpec spec;
  spec.kind = PolicyKind::Easy;
  spec.label = "NS";
  return spec;
}

PolicySpec isSpec() {
  PolicySpec spec;
  spec.kind = PolicyKind::ImmediateService;
  spec.label = "IS";
  return spec;
}
}  // namespace

std::vector<PolicySpec> ssSchemeSet() {
  return {ssSpec(1.5), ssSpec(2.0), ssSpec(5.0), nsSpec(), isSpec()};
}

std::vector<PolicySpec> worstCaseSchemeSet() {
  return {ssSpec(2.0), nsSpec(), isSpec()};
}

std::vector<PolicySpec> tssSchemeSet(
    const std::array<double, workload::kNumCategories16>& limits) {
  std::vector<PolicySpec> specs;
  for (double sf : {1.5, 2.0, 5.0}) {
    PolicySpec spec = ssSpec(sf);
    spec.ss.tssLimits = limits;
    spec.label = "TSS(SF=" + formatFixed(sf, 1) + ")";
    specs.push_back(spec);
  }
  specs.push_back(nsSpec());
  specs.push_back(isSpec());
  return specs;
}

std::vector<PolicySpec> classicSchemeSet() {
  // Registry tokens, relabeled for the report tables. "ss:2" and "sjf"
  // carry their parameters in the token itself; the rest are defaults.
  std::vector<PolicySpec> specs;
  for (auto [token, label] :
       {std::pair{"fcfs", "FCFS"}, std::pair{"conservative", "Conservative"},
        std::pair{"easy", "EASY (NS)"}, std::pair{"ss:2", "SS (SF=2)"},
        std::pair{"is", "IS"}, std::pair{"gang", "Gang(4)"},
        std::pair{"sjf", "SJF-BF"}}) {
    PolicySpec spec = sched::specFromToken(token);
    spec.label = label;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace sps::core
