// Live batch progress — the third leg of the telemetry subsystem.
//
// A long `compare`/`sweep`/`replicate` batch on a core::Runner is opaque
// until it finishes; ProgressBoard makes it observable while it runs. Each
// worker publishes its run's sim-clock fraction and event count through
// lock-free atomics (one Slot per concurrent run), the board aggregates
// them into a ProgressSnapshot on demand, and ProgressReporter renders a
// single updating stderr line (`sps_sim --progress`).
//
// Determinism contract: the *final* snapshot is thread-count invariant —
// runsDone == runsTotal, `events` equals the exact sum of every run's
// eventsProcessed (per-run publishes are delta-corrected on finish), no
// active fractions remain. Only the intermediate snapshots (and their
// timing) vary run to run.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace sps::core {

/// Subscriber for in-run progress. runSimulation() invokes this every
/// SimulationOptions::progressStride events, on whatever thread runs the
/// simulation (a Runner worker, or the caller on the inline path).
class RunProgressListener {
 public:
  virtual ~RunProgressListener();
  /// `simNow` is the current sim clock, `eventsSoFar` the events dispatched
  /// by this run so far (monotone within the run).
  virtual void onSimProgress(Time simNow, std::uint64_t eventsSoFar) = 0;
};

/// Point-in-time aggregate of a batch (see ProgressBoard::snapshot()).
struct ProgressSnapshot {
  std::size_t runsTotal = 0;
  std::size_t runsDone = 0;
  std::size_t runsActive = 0;
  /// Events dispatched so far, summed across done and in-flight runs.
  std::uint64_t events = 0;
  double elapsedSeconds = 0.0;
  double eventsPerSec = 0.0;
  /// (runsDone + sum of active sim-clock fractions) / runsTotal, in [0, 1].
  double fractionDone = 0.0;
  /// Simple proportional estimate; -1 until fractionDone > 0.
  double etaSeconds = -1.0;
  /// Sim-clock fraction of each in-flight run (unordered).
  std::vector<double> activeSimFractions;
};

/// One publisher slot per concurrent run (internal to ProgressBoard; the
/// Ticket holds a stable pointer so publishes stay lock-free).
struct Slot {
  std::atomic<bool> active{false};
  std::atomic<double> fraction{0.0};
};

/// Shared scoreboard for one or more batches. Thread-safe throughout: the
/// Runner workers publish through Tickets, any thread may snapshot().
class ProgressBoard {
 public:
  ProgressBoard() = default;
  ProgressBoard(const ProgressBoard&) = delete;
  ProgressBoard& operator=(const ProgressBoard&) = delete;

  /// Per-run publisher handle. Obtained from startRun(); hand its address
  /// to SimulationOptions::progress. Releases its slot on destruction if
  /// finishRun was never called (exception path).
  class Ticket final : public RunProgressListener {
   public:
    Ticket() = default;
    ~Ticket() override;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    void onSimProgress(Time simNow, std::uint64_t eventsSoFar) override;

   private:
    friend class ProgressBoard;
    ProgressBoard* board_ = nullptr;
    Slot* slot_ = nullptr;
    Time horizon_ = 0;          ///< last submit time; caps the fraction at 1
    std::uint64_t published_ = 0;  ///< events already folded into the board
  };

  /// Announce `runs` more runs. Cumulative: a Runner used for several
  /// batches (replicate's calibration + grid) keeps one growing total. The
  /// wall clock starts at the first call.
  void beginBatch(std::size_t runs);

  /// Claim a slot for a run whose sim clock will top out around `horizon`
  /// (<= 0 reports fraction 1 throughout — span unknown).
  [[nodiscard]] Ticket startRun(Time horizon);

  /// Retire a run: folds the exact final event count (replacing the strided
  /// estimates) and increments runsDone. The ticket becomes inert.
  void finishRun(Ticket& ticket, std::uint64_t finalEvents);

  [[nodiscard]] ProgressSnapshot snapshot() const;

 private:
  void release(Ticket& ticket);

  mutable std::mutex mutex_;  ///< guards slots_/freeSlots_ structure
  std::deque<Slot> slots_;    ///< deque: stable addresses as it grows
  std::vector<Slot*> freeSlots_;
  std::atomic<std::size_t> runsTotal_{0};
  std::atomic<std::size_t> runsDone_{0};
  std::atomic<std::uint64_t> events_{0};
  std::chrono::steady_clock::time_point start_{};
  bool started_ = false;  ///< under mutex_
};

/// Background renderer: repaints one `\r`-terminated stderr-style status
/// line every `interval` until stopped. stop() (or destruction) paints a
/// final snapshot and ends the line with '\n'. Rendering locks the shared
/// io mutex so progress frames never shred concurrent log output.
class ProgressReporter {
 public:
  explicit ProgressReporter(
      const ProgressBoard& board, std::ostream& os,
      std::chrono::milliseconds interval = std::chrono::milliseconds(200));
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  void stop();  ///< idempotent

 private:
  void render(const ProgressSnapshot& snapshot, bool final);

  const ProgressBoard& board_;
  std::ostream& os_;
  std::chrono::milliseconds interval_;
  std::atomic<bool> stopping_{false};
  std::mutex stopMutex_;
  std::condition_variable stopCv_;
  bool stopped_ = false;  ///< under stopMutex_: final frame painted
  std::thread thread_;
};

}  // namespace sps::core
