// Simulation facade — the library's primary entry point.
//
// Wires a workload — a fixed trace OR a streaming JobSource — a scheduling
// policy, and an optional overhead model into one run and returns the
// collected metrics:
//
//   auto trace = sps::workload::generateTrace(sps::workload::ctcConfig());
//   sps::core::PolicySpec spec;
//   spec.kind = sps::core::PolicyKind::SelectiveSuspension;
//   spec.ss.suspensionFactor = 2.0;
//   auto stats = sps::core::runSimulation(trace, spec);
//
// Both overloads share one construction path (recorder, checker, timeline,
// progress, instrumentation), so batch callers (Runner, the CLI) and
// streaming callers (SchedulerService, DiffHarness, sps_fuzz) exercise the
// same wiring; the streaming overload replays a trace bit-identically to
// the batch one (the golden-equivalence discipline).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "check/check_config.hpp"
#include "check/invariants.hpp"
#include "obs/recorder.hpp"
#include "metrics/collector.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_sink.hpp"
#include "sched/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"

namespace sps::core {

class RunProgressListener;  // core/progress.hpp

// Policy descriptions and the factory live in sched/policy_factory.hpp —
// the registry every front end (CLI, fuzzer, presets) now shares. The
// core:: names remain the stable facade spelling.
using PolicyKind = sched::PolicyKind;
using PolicySpec = sched::PolicySpec;
using sched::makePolicy;
using sched::policyKindName;
using sched::policyLabel;

struct SimulationOptions {
  // The implicitly-generated special members touch the deprecated shims
  // below; declare them defaulted under suppression so every TU that merely
  // constructs or copies options does not warn — only real reads/writes of
  // the shims do.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  SimulationOptions() = default;
  SimulationOptions(const SimulationOptions&) = default;
  SimulationOptions(SimulationOptions&&) = default;
  SimulationOptions& operator=(const SimulationOptions&) = default;
  SimulationOptions& operator=(SimulationOptions&&) = default;
  ~SimulationOptions() = default;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

  /// The simulator-facing knobs (overhead model, event-queue kind), handed
  /// to sim::Simulator unchanged — this is the one documented options
  /// struct flowing CLI -> Runner -> Simulator. The recorder slot is owned
  /// by the run and overwritten.
  sim::SimulatorConfig sim{};
  /// Structured-trace destination. Events only flow in builds configured
  /// with -DSPS_TRACE=ON (obs::kTraceCompiledIn); counters are collected
  /// either way. The sink must be thread-safe when the same options are
  /// shared across core::Runner workers — the bundled sinks are.
  obs::TraceSink* traceSink = nullptr;
  /// Invariant oracle toggles (sps::check). Default: nothing armed, zero
  /// cost. With any checker enabled, runSimulation arms an
  /// InvariantChecker on the run and a violation throws InvariantError.
  check::CheckConfig check{};
  /// Sim-clock time-series sampling (obs::TimelineRecorder). Disabled by
  /// default; when enabled the series lands in RunStats::timeline and — if
  /// traceSink is set — as Chrome-trace counter tracks after the run.
  obs::TimelineConfig timeline{};
  /// Live progress subscriber (core::ProgressBoard::Ticket, or any
  /// RunProgressListener). nullptr = no publishing, zero cost. Invoked on
  /// the simulating thread every `progressStride` events.
  RunProgressListener* progress = nullptr;
  /// Events between progress publishes; keeps the listener off the
  /// per-event hot path.
  std::uint32_t progressStride = 4096;
  /// Instrumentation seam: called after the simulator is constructed and
  /// the run's checkers are armed, before the first dispatch — subscribe
  /// extra observers here (DiffHarness records transitions through it).
  std::function<void(sim::Simulator&)> instrument;

  // Deprecated shims (one PR, per the PR-3 migration convention): these
  // fields used to thread overhead/queueKind separately from
  // sim::Simulator::Config. When set away from their defaults they still
  // win over `sim`, so existing callers keep working for one release.
  [[deprecated("set sim.overhead instead")]]
  const sim::OverheadPolicy* overhead = nullptr;
  [[deprecated("set sim.queueKind instead")]]
  std::optional<sim::QueueKind> queueKind{};
};

/// A monotone stream of jobs for the streaming entry point. next() yields
/// jobs in non-decreasing submit order (Simulator::submit rejects
/// regressions) until std::nullopt; ids are assigned by the simulator in
/// stream order.
class JobSource {
 public:
  virtual ~JobSource() = default;
  /// Workload label (lands in RunStats::traceName).
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint32_t machineProcs() const = 0;
  virtual std::optional<workload::Job> next() = 0;
};

/// The trivial adapter: replay a validated trace as a stream. The trace
/// must outlive the source.
class TraceSource final : public JobSource {
 public:
  explicit TraceSource(const workload::Trace& trace) : trace_(&trace) {}
  [[nodiscard]] std::string name() const override { return trace_->name; }
  [[nodiscard]] std::uint32_t machineProcs() const override {
    return trace_->machineProcs;
  }
  std::optional<workload::Job> next() override {
    if (pos_ >= trace_->jobs.size()) return std::nullopt;
    return trace_->jobs[pos_++];
  }

 private:
  const workload::Trace* trace_;
  std::size_t pos_ = 0;
};

/// The wiring shared by every run shape: policy construction, the per-run
/// Recorder, checker/timeline/progress arming, and end-of-run collection.
/// runSimulation drives it to completion in one call; SchedulerService
/// holds one open and drives the simulator between protocol commands.
///
/// Lifecycle: construct (batch or streaming, mirroring the two Simulator
/// constructors), drive `simulator()` however the caller likes, then call
/// finish() exactly once — it drains the simulator (idempotent if the
/// caller already drained), finalizes any armed checkers, and collects
/// metrics. The harness must outlive nothing: it owns the policy, the
/// recorder, and the simulator.
class SimulationHarness {
 public:
  /// Batch shape: the whole trace pre-submitted.
  SimulationHarness(const workload::Trace& trace, const PolicySpec& spec,
                    const SimulationOptions& options);
  /// Streaming shape: an empty simulator; inject via simulator().submit().
  SimulationHarness(std::string traceName, std::uint32_t machineProcs,
                    const PolicySpec& spec, const SimulationOptions& options);

  SimulationHarness(const SimulationHarness&) = delete;
  SimulationHarness& operator=(const SimulationHarness&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return *simulator_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return *simulator_; }

  /// Drain the simulator (no-op when already drained), finalize checkers,
  /// and collect the run's metrics. Call once, at the end.
  [[nodiscard]] metrics::RunStats finish();

 private:
  /// Post-construction arming shared by both constructors (checker,
  /// timeline, progress, then the caller's instrument seam — in that order,
  /// so instrument-registered observers fire after the oracle's).
  void arm(const SimulationOptions& options);

  std::unique_ptr<sim::SchedulingPolicy> policy_;
  obs::Recorder recorder_;
  std::optional<sim::Simulator> simulator_;
  std::optional<check::InvariantChecker> checker_;
  std::optional<obs::TimelineRecorder> timeline_;
  obs::TraceSink* traceSink_ = nullptr;
  std::string label_;
};

/// Run one simulation to completion and collect metrics (batch: the whole
/// trace is pre-submitted).
[[nodiscard]] metrics::RunStats runSimulation(
    const workload::Trace& trace, const PolicySpec& spec,
    const SimulationOptions& options = {});

/// Streaming entry point: pump the source through Simulator::submit with
/// minimum lookahead — the simulator advances to just before each job's
/// submit instant, then ingests it — and drain. Bit-identical to the batch
/// overload on the same workload.
[[nodiscard]] metrics::RunStats runSimulation(
    JobSource& source, const PolicySpec& spec,
    const SimulationOptions& options = {});

}  // namespace sps::core
