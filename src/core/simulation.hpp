// Simulation facade — the library's primary entry point.
//
// Wires a workload trace, a scheduling policy, and an optional overhead
// model into one run and returns the collected metrics:
//
//   auto trace = sps::workload::generateTrace(sps::workload::ctcConfig());
//   sps::core::PolicySpec spec;
//   spec.kind = sps::core::PolicyKind::SelectiveSuspension;
//   spec.ss.suspensionFactor = 2.0;
//   auto stats = sps::core::runSimulation(trace, spec);
#pragma once

#include <memory>
#include <string>

#include "check/check_config.hpp"
#include "metrics/collector.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_sink.hpp"
#include "sched/policy_factory.hpp"
#include "sim/event_queue.hpp"
#include "sim/policy.hpp"
#include "workload/job.hpp"

namespace sps::core {

class RunProgressListener;  // core/progress.hpp

// Policy descriptions and the factory live in sched/policy_factory.hpp —
// the registry every front end (CLI, fuzzer, presets) now shares. The
// core:: names remain the stable facade spelling.
using PolicyKind = sched::PolicyKind;
using PolicySpec = sched::PolicySpec;
using sched::makePolicy;
using sched::policyKindName;
using sched::policyLabel;

struct SimulationOptions {
  /// Suspension/restart cost model; nullptr = free preemption.
  const sim::OverheadPolicy* overhead = nullptr;
  /// Pending-event set implementation (sim::EventQueue). Both kinds replay
  /// bit-identically; BinaryHeap is the reference the calendar queue is
  /// pinned against by the property suite and the differential fuzzer.
  sim::QueueKind queueKind = sim::QueueKind::Calendar;
  /// Structured-trace destination. Events only flow in builds configured
  /// with -DSPS_TRACE=ON (obs::kTraceCompiledIn); counters are collected
  /// either way. The sink must be thread-safe when the same options are
  /// shared across core::Runner workers — the bundled sinks are.
  obs::TraceSink* traceSink = nullptr;
  /// Invariant oracle toggles (sps::check). Default: nothing armed, zero
  /// cost. With any checker enabled, runSimulation arms an
  /// InvariantChecker on the run and a violation throws InvariantError.
  check::CheckConfig check{};
  /// Sim-clock time-series sampling (obs::TimelineRecorder). Disabled by
  /// default; when enabled the series lands in RunStats::timeline and — if
  /// traceSink is set — as Chrome-trace counter tracks after the run.
  obs::TimelineConfig timeline{};
  /// Live progress subscriber (core::ProgressBoard::Ticket, or any
  /// RunProgressListener). nullptr = no publishing, zero cost. Invoked on
  /// the simulating thread every `progressStride` events.
  RunProgressListener* progress = nullptr;
  /// Events between progress publishes; keeps the listener off the
  /// per-event hot path.
  std::uint32_t progressStride = 4096;
};

/// Run one simulation to completion and collect metrics.
[[nodiscard]] metrics::RunStats runSimulation(
    const workload::Trace& trace, const PolicySpec& spec,
    const SimulationOptions& options = {});

}  // namespace sps::core
