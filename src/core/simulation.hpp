// Simulation facade — the library's primary entry point.
//
// Wires a workload trace, a scheduling policy, and an optional overhead
// model into one run and returns the collected metrics:
//
//   auto trace = sps::workload::generateTrace(sps::workload::ctcConfig());
//   sps::core::PolicySpec spec;
//   spec.kind = sps::core::PolicyKind::SelectiveSuspension;
//   spec.ss.suspensionFactor = 2.0;
//   auto stats = sps::core::runSimulation(trace, spec);
#pragma once

#include <memory>
#include <string>

#include "check/check_config.hpp"
#include "metrics/collector.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_sink.hpp"
#include "sched/conservative.hpp"
#include "sched/depth_backfill.hpp"
#include "sched/easy.hpp"
#include "sched/gang.hpp"
#include "sched/immediate_service.hpp"
#include "sched/selective_suspension.hpp"
#include "sim/policy.hpp"
#include "workload/job.hpp"

namespace sps::core {

class RunProgressListener;  // core/progress.hpp

enum class PolicyKind {
  Fcfs,
  Conservative,
  Easy,                 ///< the paper's "No Suspension (NS)" baseline
  SelectiveSuspension,  ///< SS; TSS when spec.ss.tssLimits is set
  ImmediateService,
  Gang,                 ///< extension: Ousterhout-matrix time slicing
  DepthBackfill,        ///< extension: K-deep reservation backfilling
};

[[nodiscard]] const char* policyKindName(PolicyKind kind);

struct PolicySpec {
  PolicyKind kind = PolicyKind::Easy;
  sched::SsConfig ss{};      ///< used when kind == SelectiveSuspension
  sched::IsConfig is{};      ///< used when kind == ImmediateService
  sched::EasyConfig easy{};    ///< used when kind == Easy
  sched::GangConfig gang{};    ///< used when kind == Gang
  sched::DepthConfig depth{};  ///< used when kind == DepthBackfill
  sched::ConservativeConfig conservative{};  ///< when kind == Conservative
  /// Optional display label override (defaults to the policy's own name()).
  std::string label;
};

struct SimulationOptions {
  /// Suspension/restart cost model; nullptr = free preemption.
  const sim::OverheadPolicy* overhead = nullptr;
  /// Structured-trace destination. Events only flow in builds configured
  /// with -DSPS_TRACE=ON (obs::kTraceCompiledIn); counters are collected
  /// either way. The sink must be thread-safe when the same options are
  /// shared across core::Runner workers — the bundled sinks are.
  obs::TraceSink* traceSink = nullptr;
  /// Invariant oracle toggles (sps::check). Default: nothing armed, zero
  /// cost. With any checker enabled, runSimulation arms an
  /// InvariantChecker on the run and a violation throws InvariantError.
  check::CheckConfig check{};
  /// Sim-clock time-series sampling (obs::TimelineRecorder). Disabled by
  /// default; when enabled the series lands in RunStats::timeline and — if
  /// traceSink is set — as Chrome-trace counter tracks after the run.
  obs::TimelineConfig timeline{};
  /// Live progress subscriber (core::ProgressBoard::Ticket, or any
  /// RunProgressListener). nullptr = no publishing, zero cost. Invoked on
  /// the simulating thread every `progressStride` events.
  RunProgressListener* progress = nullptr;
  /// Events between progress publishes; keeps the listener off the
  /// per-event hot path.
  std::uint32_t progressStride = 4096;
};

/// Instantiate the policy a spec describes.
[[nodiscard]] std::unique_ptr<sim::SchedulingPolicy> makePolicy(
    const PolicySpec& spec);

/// Display label of a spec: spec.label if set, else the policy's name().
[[nodiscard]] std::string policyLabel(const PolicySpec& spec);

/// Run one simulation to completion and collect metrics.
[[nodiscard]] metrics::RunStats runSimulation(
    const workload::Trace& trace, const PolicySpec& spec,
    const SimulationOptions& options = {});

}  // namespace sps::core
