// Figure/table formatters shared by the bench harnesses.
//
// Each of the paper's figures is a set of 4 panels (one per run-time class),
// each panel a bar group per width class with one bar per scheme. We print
// the same data as one table per panel.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/category_stats.hpp"
#include "metrics/collector.hpp"
#include "metrics/report.hpp"

namespace sps::core {

/// Print a figure's four panels (VS/S/L/VL x width classes x schemes) for
/// one metric. `filter` selects the Section V estimate-quality split.
void printFigurePanels(
    std::ostream& os, const std::string& title,
    const std::vector<metrics::RunStats>& runs, metrics::Metric metric,
    metrics::EstimateFilter filter = metrics::EstimateFilter::All);

/// Print the per-run summary lines (overall slowdown, utilization, ...).
void printRunSummaries(std::ostream& os,
                       const std::vector<metrics::RunStats>& runs);

/// A section heading matching the bench output style.
void printHeading(std::ostream& os, const std::string& text);

}  // namespace sps::core
