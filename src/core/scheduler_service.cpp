#include "core/scheduler_service.hpp"

#include <condition_variable>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "util/check.hpp"

namespace sps::core {

namespace {

/// Reply helpers: every command answers exactly one `ok ...` or
/// `err <verb>: ...` line.
std::string err(const char* verb, const std::string& why) {
  return std::string("err ") + verb + ": " + why;
}

/// Times that may legitimately be "not yet" (kNoTime) print as '-'.
void putTime(std::ostream& os, Time t) {
  if (t == kNoTime) os << '-';
  else os << t;
}

}  // namespace

SchedulerService::SchedulerService(ServiceConfig config)
    : harness_(std::move(config.traceName), config.machineProcs, config.spec,
               config.options) {}

std::string SchedulerService::processLine(std::string_view line) {
  std::istringstream in{std::string(line)};
  std::string verb;
  if (!(in >> verb) || verb[0] == '#') return "";  // blank / comment
  if (verb == "submit") return doSubmit(in);
  if (verb == "cancel") return doCancel(in);
  if (verb == "query") return doQuery(in);
  if (verb == "stats") return doStats();
  if (verb == "drain") return doDrain();
  return err("parse", "unknown verb '" + verb + "'");
}

std::string SchedulerService::doSubmit(std::istream& args) {
  if (drained()) return err("submit", "run already drained");
  workload::Job job;
  if (!(args >> job.submit >> job.procs >> job.runtime >> job.estimate))
    return err("submit",
               "expected: submit <time> <procs> <runtime> <estimate> [memMb]");
  if (!(args >> job.memoryMb)) job.memoryMb = 0;  // optional field
  try {
    // Bounded lookahead: the submit line extends the known-input horizon to
    // job.submit, so the simulator may now advance to the instant before it
    // (events AT the submit instant must see the arrival already enqueued).
    // A submit in the simulated past is rejected by Simulator::submit
    // before any state changes, so runUntil first is safe: job.submit - 1
    // below now() makes runUntil a no-op.
    if (job.submit > harness_.simulator().now())
      harness_.simulator().runUntil(job.submit - 1);
    const JobId id = harness_.simulator().submit(job);
    ++submissions_;
    return "ok " + std::to_string(id);
  } catch (const InputError& e) {
    return err("submit", e.what());
  }
}

std::string SchedulerService::doCancel(std::istream& args) {
  if (drained()) return err("cancel", "run already drained");
  JobId id = kInvalidJob;
  if (!(args >> id)) return err("cancel", "expected: cancel <id>");
  if (id >= harness_.simulator().trace().jobs.size())
    return err("cancel", "no such job " + std::to_string(id));
  if (!harness_.simulator().cancelJob(id))
    return err("cancel",
               "job " + std::to_string(id) + " not cancellable (state " +
                   sim::jobStateName(harness_.simulator().state(id)) + ")");
  return "ok cancelled " + std::to_string(id);
}

std::string SchedulerService::doQuery(std::istream& args) {
  JobId id = kInvalidJob;
  if (!(args >> id)) return err("query", "expected: query <id>");
  const sim::Simulator& s = harness_.simulator();
  if (id >= s.trace().jobs.size())
    return err("query", "no such job " + std::to_string(id));
  std::ostringstream os;
  os << "ok job " << id << " state " << sim::jobStateName(s.state(id))
     << " submit " << s.job(id).submit << " start ";
  putTime(os, s.exec(id).firstStart);
  os << " finish ";
  putTime(os, s.exec(id).finish);
  return os.str();
}

std::string SchedulerService::doStats() {
  const sim::Simulator& s = harness_.simulator();
  std::ostringstream os;
  os << "ok now " << s.now() << " events " << s.eventsProcessed()
     << " submitted " << submissions_ << " unfinished " << s.unfinishedJobs()
     << " free " << s.freeCount();
  return os.str();
}

std::string SchedulerService::doDrain() {
  if (drained()) return err("drain", "run already drained");
  const metrics::RunStats stats = finish();
  std::ostringstream os;
  os << "ok drained jobs " << stats.jobs.size() << " events "
     << stats.eventsProcessed << " span " << stats.span << " util "
     << stats.utilization;
  return os.str();
}

metrics::RunStats SchedulerService::finish() {
  if (!stats_) stats_ = harness_.finish();
  return *stats_;
}

metrics::RunStats SchedulerService::serve(std::istream& in,
                                          std::ostream& out) {
  // Reader thread -> bounded queue -> this thread. The bound is
  // backpressure, not correctness: when the simulator falls behind, the
  // reader blocks instead of buffering the whole input; commands still
  // execute strictly in input order on this thread only.
  constexpr std::size_t kQueueBound = 1024;
  std::mutex mutex;
  std::condition_variable readable;
  std::condition_variable writable;
  std::deque<std::string> pending;
  bool eof = false;

  std::thread reader([&] {
    std::string line;
    while (std::getline(in, line)) {
      std::unique_lock lock(mutex);
      writable.wait(lock, [&] { return pending.size() < kQueueBound; });
      pending.push_back(std::move(line));
      readable.notify_one();
    }
    std::lock_guard lock(mutex);
    eof = true;
    readable.notify_one();
  });

  for (;;) {
    std::string line;
    {
      std::unique_lock lock(mutex);
      readable.wait(lock, [&] { return eof || !pending.empty(); });
      if (pending.empty()) break;  // eof and nothing left
      line = std::move(pending.front());
      pending.pop_front();
      writable.notify_one();
    }
    const std::string reply = processLine(line);
    if (!reply.empty()) out << reply << '\n' << std::flush;
  }
  reader.join();
  // End of input finishes the run exactly as an explicit `drain` does.
  return finish();
}

}  // namespace sps::core
