// Multi-seed replication — statistical confidence for the headline claims.
//
// The paper reports single-trace numbers (its logs are fixed); a synthetic
// reproduction can do better: rerun every scheme over independently-seeded
// workloads and report mean +/- stddev, so "SS beats NS 8x" is visibly not
// a seed fluke.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/simulation.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sps::core {

/// Per-scheme aggregate over the replication seeds. Each Accumulator holds
/// one sample per seed (the run-level mean/total of that metric).
struct ReplicationResult {
  std::string policyName;
  Accumulator meanSlowdown;
  Accumulator meanTurnaround;
  Accumulator steadyUtilization;
  Accumulator suspensionsPerJob;
};

/// Run every spec over makeTrace(seed) for each seed. TSS specs with
/// engaged static limits are re-calibrated per seed (each seed is its own
/// workload, so each gets its own NS reference). Executes as two Runner
/// batches — the per-seed NS calibration runs, then the full seed x spec
/// grid — so replication parallelizes across seeds *and* schemes. makeTrace
/// is always called on the calling thread.
[[nodiscard]] std::vector<ReplicationResult> replicate(
    Runner& runner,
    const std::function<workload::Trace(std::uint64_t)>& makeTrace,
    const std::vector<std::uint64_t>& seeds,
    std::vector<PolicySpec> specs, const SimulationOptions& options = {});
[[nodiscard]] std::vector<ReplicationResult> replicate(
    const std::function<workload::Trace(std::uint64_t)>& makeTrace,
    const std::vector<std::uint64_t>& seeds,
    std::vector<PolicySpec> specs, const SimulationOptions& options = {});

/// Render mean +/- stddev per scheme and metric.
[[nodiscard]] Table replicationTable(
    const std::vector<ReplicationResult>& results);

}  // namespace sps::core
