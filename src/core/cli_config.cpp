#include "core/cli_config.hpp"

#include <algorithm>
#include <ostream>

namespace sps::core {

CliConfig::CliConfig(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {
  sections_.push_back("Options");
}

void CliConfig::section(std::string heading) {
  // The implicit leading "Options" section is replaced if still unused.
  if (options_.empty() && sections_.size() == 1)
    sections_.back() = std::move(heading);
  else
    sections_.push_back(std::move(heading));
}

void CliConfig::flag(std::string name, bool* target, std::string help) {
  SPS_CHECK(target != nullptr);
  SPS_CHECK_MSG(find(name) == nullptr, "duplicate option " << name);
  Option opt;
  opt.name = std::move(name);
  opt.help = std::move(help);
  opt.sectionIndex = sections_.size() - 1;
  opt.flagTarget = target;
  options_.push_back(std::move(opt));
}

void CliConfig::addOption(std::string name, std::string valueName,
                          std::string help, Parser parse) {
  SPS_CHECK_MSG(find(name) == nullptr, "duplicate option " << name);
  Option opt;
  opt.name = std::move(name);
  opt.valueName = std::move(valueName);
  opt.help = std::move(help);
  opt.sectionIndex = sections_.size() - 1;
  opt.parse = std::move(parse);
  options_.push_back(std::move(opt));
}

void CliConfig::addPositional(std::string name, std::string help,
                              Parser parse) {
  Positional pos;
  pos.name = std::move(name);
  pos.help = std::move(help);
  pos.parse = std::move(parse);
  positionals_.push_back(std::move(pos));
}

const CliConfig::Option* CliConfig::find(std::string_view name) const {
  const auto it = std::find_if(
      options_.begin(), options_.end(),
      [name](const Option& opt) { return opt.name == name; });
  return it == options_.end() ? nullptr : &*it;
}

CliConfig::ParseOutcome CliConfig::parse(int argc,
                                         const char* const* argv) const {
  std::size_t nextPositional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return {.helpRequested = true};
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      const Option* opt = find(arg);
      if (opt == nullptr)
        throw InputError("unknown option: " + arg);
      if (opt->flagTarget != nullptr) {
        *opt->flagTarget = true;
        continue;
      }
      if (i + 1 >= argc) throw InputError(arg + " requires a value");
      opt->parse(arg, argv[++i]);
      continue;
    }
    if (nextPositional >= positionals_.size())
      throw InputError("unexpected argument: " + arg);
    const Positional& pos = positionals_[nextPositional++];
    pos.parse(pos.name, arg);
  }
  return {};
}

void CliConfig::printUsage(std::ostream& os) const {
  os << program_ << " — " << summary_ << "\n";
  if (!positionals_.empty()) {
    os << "\nUsage: " << program_;
    for (const Positional& pos : positionals_) os << " [" << pos.name << "]";
    os << "\n";
    for (const Positional& pos : positionals_)
      os << "  " << pos.name << "  " << pos.help << "\n";
  }

  // Column where help text starts, aligned across all sections.
  std::size_t width = 0;
  for (const Option& opt : options_) {
    std::size_t w = opt.name.size();
    if (!opt.valueName.empty()) w += 1 + opt.valueName.size();
    width = std::max(width, w);
  }

  for (std::size_t s = 0; s < sections_.size(); ++s) {
    bool any = false;
    for (const Option& opt : options_) {
      if (opt.sectionIndex != s) continue;
      if (!any) {
        os << "\n" << sections_[s] << ":\n";
        any = true;
      }
      std::string left = opt.name;
      if (!opt.valueName.empty()) left += " " + opt.valueName;
      os << "  " << left;
      for (std::size_t pad = left.size(); pad < width + 2; ++pad) os << ' ';
      os << opt.help << "\n";
    }
  }
  os << "\n  --help, -h" << std::string(width > 8 ? width - 8 : 2, ' ')
     << "show this message\n";
}

CliCommands::CliCommands(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

CliConfig& CliCommands::command(std::string name, std::string summary) {
  SPS_CHECK_MSG(find(name) == nullptr, "duplicate command " << name);
  std::string qualified = program_ + " " + name;
  // Braced-init evaluates left to right: the summary copy lands in the
  // Command before the move hands it to the per-command CliConfig.
  commands_.push_back(Command{std::move(name), summary,
                              CliConfig(std::move(qualified),
                                        std::move(summary))});
  return commands_.back().config;
}

void CliCommands::setDefault(std::string name) {
  SPS_CHECK_MSG(find(name) != nullptr, "default names no command: " << name);
  default_ = std::move(name);
}

CliConfig* CliCommands::find(std::string_view name) {
  for (Command& c : commands_)
    if (c.name == name) return &c.config;
  return nullptr;
}

const CliConfig* CliCommands::find(std::string_view name) const {
  for (const Command& c : commands_)
    if (c.name == name) return &c.config;
  return nullptr;
}

CliCommands::Outcome CliCommands::parse(int argc,
                                        const char* const* argv) const {
  SPS_CHECK_MSG(!commands_.empty(), "no commands registered");
  const std::string_view first = argc >= 2 ? argv[1] : std::string_view{};
  if (first == "--help" || first == "-h")
    return {.command = {}, .helpRequested = true};
  if (!first.empty() && first.front() != '-') {
    const CliConfig* config = find(first);
    if (config == nullptr)
      throw InputError("unknown command: " + std::string(first) +
                       " (see " + program_ + " --help)");
    // Shift so the command word plays argv[0] for the sub-parse.
    const auto outcome = config->parse(argc - 1, argv + 1);
    return {.command = std::string(first),
            .helpRequested = outcome.helpRequested};
  }
  SPS_CHECK_MSG(!default_.empty(), "no default command set");
  const CliConfig* config = find(default_);
  const auto outcome = config->parse(argc, argv);
  return {.command = default_, .helpRequested = outcome.helpRequested};
}

void CliCommands::printUsage(std::ostream& os, std::string_view name) const {
  if (!name.empty()) {
    const CliConfig* config = find(name);
    SPS_CHECK_MSG(config != nullptr, "unknown command: " << name);
    config->printUsage(os);
    return;
  }
  os << program_ << " — " << summary_ << "\n";
  os << "\nUsage: " << program_ << " <command> [options]\n\nCommands:\n";
  std::size_t width = 0;
  for (const Command& c : commands_) width = std::max(width, c.name.size());
  for (const Command& c : commands_) {
    os << "  " << c.name;
    for (std::size_t pad = c.name.size(); pad < width + 2; ++pad) os << ' ';
    os << c.summary;
    if (c.name == default_) os << " (default)";
    os << "\n";
  }
  os << "\nRun '" << program_ << " <command> --help' for command options.\n";
}

}  // namespace sps::core
