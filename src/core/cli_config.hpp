// CliConfig — declarative command-line parsing shared by the tools and
// examples.
//
// Replaces per-tool hand-rolled flag loops: a tool declares its flags once
// (name, bound variable, help text), and CliConfig provides parsing,
// numeric validation, unknown-flag/missing-value errors (InputError), and
// generated --help text, all in one place.
//
//   CliOptions opt;
//   core::CliConfig cli("sps_sim", "parallel job scheduling simulator");
//   cli.section("Workload");
//   cli.option("--preset", &opt.preset, "ctc|sdsc|kth", "synthetic preset");
//   cli.option("--jobs", &opt.jobs, "N", "synthetic job count");
//   cli.flag("--csv", &opt.csv, "CSV tables instead of aligned ASCII");
//   if (cli.parse(argc, argv).helpRequested) { cli.printUsage(std::cout); return 0; }
#pragma once

#include <charconv>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace sps::core {

namespace detail {

/// Parse one scalar CLI value; throws InputError naming the flag on failure.
template <typename T>
T parseCliValue(const std::string& flag, const std::string& text) {
  if constexpr (std::is_same_v<T, std::string>) {
    return text;
  } else if constexpr (std::is_floating_point_v<T>) {
    T out{};
    const char* end = text.data() + text.size();
    const auto res = std::from_chars(text.data(), end, out);
    if (res.ec != std::errc{} || res.ptr != end)
      throw InputError("bad numeric value for " + flag + ": '" + text + "'");
    return out;
  } else {
    static_assert(std::is_integral_v<T>);
    T out{};
    const char* end = text.data() + text.size();
    const auto res = std::from_chars(text.data(), end, out);
    if (res.ec == std::errc::result_out_of_range)
      throw InputError("value out of range for " + flag + ": '" + text + "'");
    if (res.ec != std::errc{} || res.ptr != end)
      throw InputError("bad numeric value for " + flag + ": '" + text + "'");
    return out;
  }
}

}  // namespace detail

class CliConfig {
 public:
  CliConfig(std::string program, std::string summary);

  /// Start a usage section; subsequently declared options render under it.
  void section(std::string heading);

  /// Boolean switch: present => *target = true. No value.
  void flag(std::string name, bool* target, std::string help);

  /// Valued option bound to a scalar (string / integral / floating-point).
  template <typename T>
  void option(std::string name, T* target, std::string valueName,
              std::string help) {
    addOption(std::move(name), std::move(valueName), std::move(help),
              [target](const std::string& flagName, const std::string& text) {
                *target = detail::parseCliValue<T>(flagName, text);
              });
  }

  /// Valued option bound to an optional scalar (absent = disengaged).
  template <typename T>
  void option(std::string name, std::optional<T>* target,
              std::string valueName, std::string help) {
    addOption(std::move(name), std::move(valueName), std::move(help),
              [target](const std::string& flagName, const std::string& text) {
                *target = detail::parseCliValue<T>(flagName, text);
              });
  }

  /// Positional argument, filled in declaration order; optional if the tool
  /// tolerates its default.
  template <typename T>
  void positional(std::string name, T* target, std::string help) {
    addPositional(std::move(name), std::move(help),
                  [target](const std::string& argName,
                           const std::string& text) {
                    *target = detail::parseCliValue<T>(argName, text);
                  });
  }

  struct ParseOutcome {
    bool helpRequested = false;
  };

  /// Parse argv. Handles --help/-h itself (sets helpRequested, stops).
  /// Throws InputError on unknown flags, missing values, bad numbers, or
  /// excess positionals.
  ParseOutcome parse(int argc, const char* const* argv) const;

  /// Generated usage text: summary, then sections of aligned options.
  void printUsage(std::ostream& os) const;

 private:
  using Parser = std::function<void(const std::string&, const std::string&)>;

  struct Option {
    std::string name;
    std::string valueName;  ///< empty for flags
    std::string help;
    std::size_t sectionIndex = 0;
    Parser parse;       ///< null for flags
    bool* flagTarget = nullptr;  ///< set for flags
  };

  struct Positional {
    std::string name;
    std::string help;
    Parser parse;
  };

  void addOption(std::string name, std::string valueName, std::string help,
                 Parser parse);
  void addPositional(std::string name, std::string help, Parser parse);
  [[nodiscard]] const Option* find(std::string_view name) const;

  std::string program_;
  std::string summary_;
  std::vector<std::string> sections_;
  std::vector<Option> options_;
  std::vector<Positional> positionals_;
};

/// Subcommand dispatcher layered on CliConfig: `tool <command> [options]`.
///
/// Each registered command owns a full CliConfig (sections, flags,
/// positionals); parse() routes on argv[1] and hands the remaining
/// arguments to that command's config. A bare word that names no command is
/// an InputError; a missing or flag-like first argument selects the default
/// command, so pre-subcommand invocations (`tool --preset ctc`) keep
/// working.
///
///   core::CliCommands cli("sps_sim", "parallel job scheduling simulator");
///   CliConfig& run = cli.command("run", "simulate one policy");
///   run.option("--preset", &opt.preset, "NAME", "synthetic preset");
///   cli.setDefault("run");
///   const auto outcome = cli.parse(argc, argv);
///   if (outcome.helpRequested) { cli.printUsage(std::cout, outcome.command); ... }
class CliCommands {
 public:
  CliCommands(std::string program, std::string summary);

  /// Register a subcommand and return its CliConfig for flag declarations.
  /// The reference stays valid for the dispatcher's lifetime.
  CliConfig& command(std::string name, std::string summary);

  /// Command used when argv[1] is absent or starts with '-'. Must name a
  /// registered command before parse().
  void setDefault(std::string name);

  struct Outcome {
    /// Selected command; empty when help was requested at the top level
    /// (before any command word).
    std::string command;
    bool helpRequested = false;
  };

  /// Dispatch on argv[1], then parse the remainder with the selected
  /// command's CliConfig. Throws InputError for an unknown command word.
  [[nodiscard]] Outcome parse(int argc, const char* const* argv) const;

  /// Empty `name`: the top-level command list. Otherwise that command's
  /// full option usage.
  void printUsage(std::ostream& os, std::string_view name = {}) const;

  [[nodiscard]] CliConfig* find(std::string_view name);
  [[nodiscard]] const CliConfig* find(std::string_view name) const;

 private:
  struct Command {
    std::string name;
    std::string summary;
    CliConfig config;
  };

  std::string program_;
  std::string summary_;
  std::string default_;
  /// deque, not vector: command() hands out references into it.
  std::deque<Command> commands_;
};

}  // namespace sps::core
