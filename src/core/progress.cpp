#include "core/progress.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/log.hpp"

namespace sps::core {

RunProgressListener::~RunProgressListener() = default;

// --- Ticket ----------------------------------------------------------------

ProgressBoard::Ticket::~Ticket() {
  // Exception path: the run never reached finishRun. Free the slot so the
  // board does not report a phantom in-flight run forever; the events
  // published so far stay counted (they did happen).
  if (board_ != nullptr) board_->release(*this);
}

ProgressBoard::Ticket& ProgressBoard::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    if (board_ != nullptr) board_->release(*this);
    board_ = std::exchange(other.board_, nullptr);
    slot_ = std::exchange(other.slot_, nullptr);
    horizon_ = other.horizon_;
    published_ = other.published_;
  }
  return *this;
}

void ProgressBoard::Ticket::onSimProgress(Time simNow,
                                          std::uint64_t eventsSoFar) {
  if (board_ == nullptr) return;
  const double fraction =
      horizon_ > 0
          ? std::min(1.0, static_cast<double>(simNow) /
                              static_cast<double>(horizon_))
          : 1.0;
  slot_->fraction.store(fraction, std::memory_order_relaxed);
  board_->events_.fetch_add(eventsSoFar - published_,
                            std::memory_order_relaxed);
  published_ = eventsSoFar;
}

// --- ProgressBoard ---------------------------------------------------------

void ProgressBoard::beginBatch(std::size_t runs) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!started_) {
    start_ = std::chrono::steady_clock::now();
    started_ = true;
  }
  runsTotal_.fetch_add(runs, std::memory_order_relaxed);
}

ProgressBoard::Ticket ProgressBoard::startRun(Time horizon) {
  Ticket ticket;
  ticket.board_ = this;
  ticket.horizon_ = horizon;
  std::lock_guard<std::mutex> lock(mutex_);
  if (freeSlots_.empty()) {
    slots_.emplace_back();
    ticket.slot_ = &slots_.back();
  } else {
    ticket.slot_ = freeSlots_.back();
    freeSlots_.pop_back();
  }
  ticket.slot_->fraction.store(0.0, std::memory_order_relaxed);
  ticket.slot_->active.store(true, std::memory_order_release);
  return ticket;
}

void ProgressBoard::finishRun(Ticket& ticket, std::uint64_t finalEvents) {
  if (ticket.board_ == nullptr) return;
  // Replace the strided estimate with the exact count: the board's total is
  // then the exact sum over finished runs, independent of publish timing —
  // the thread-count-invariance half of the determinism contract.
  events_.fetch_add(finalEvents - ticket.published_,
                    std::memory_order_relaxed);
  ticket.published_ = finalEvents;
  runsDone_.fetch_add(1, std::memory_order_relaxed);
  release(ticket);
}

void ProgressBoard::release(Ticket& ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  ticket.slot_->active.store(false, std::memory_order_release);
  ticket.slot_->fraction.store(0.0, std::memory_order_relaxed);
  freeSlots_.push_back(ticket.slot_);
  ticket.board_ = nullptr;
  ticket.slot_ = nullptr;
}

ProgressSnapshot ProgressBoard::snapshot() const {
  ProgressSnapshot s;
  std::lock_guard<std::mutex> lock(mutex_);
  s.runsTotal = runsTotal_.load(std::memory_order_relaxed);
  s.runsDone = runsDone_.load(std::memory_order_relaxed);
  s.events = events_.load(std::memory_order_relaxed);
  double activeSum = 0.0;
  for (const Slot& slot : slots_) {
    if (!slot.active.load(std::memory_order_acquire)) continue;
    const double f = slot.fraction.load(std::memory_order_relaxed);
    s.activeSimFractions.push_back(f);
    activeSum += f;
  }
  s.runsActive = s.activeSimFractions.size();
  if (started_) {
    s.elapsedSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  }
  if (s.elapsedSeconds > 0.0)
    s.eventsPerSec = static_cast<double>(s.events) / s.elapsedSeconds;
  if (s.runsTotal > 0) {
    s.fractionDone = (static_cast<double>(s.runsDone) + activeSum) /
                     static_cast<double>(s.runsTotal);
    s.fractionDone = std::min(s.fractionDone, 1.0);
  }
  if (s.fractionDone > 0.0)
    s.etaSeconds = s.elapsedSeconds * (1.0 - s.fractionDone) / s.fractionDone;
  return s;
}

// --- ProgressReporter ------------------------------------------------------

namespace {

std::string formatEta(double seconds) {
  if (seconds < 0.0) return "--";
  const auto total = static_cast<std::int64_t>(seconds + 0.5);
  std::ostringstream os;
  if (total >= 3600) os << total / 3600 << "h" << (total % 3600) / 60 << "m";
  else if (total >= 60) os << total / 60 << "m" << total % 60 << "s";
  else os << total << "s";
  return os.str();
}

std::string formatRate(double eventsPerSec) {
  std::ostringstream os;
  os << std::fixed;
  if (eventsPerSec >= 1e6) os << std::setprecision(1)
                              << eventsPerSec / 1e6 << "M";
  else if (eventsPerSec >= 1e3) os << std::setprecision(0)
                                   << eventsPerSec / 1e3 << "k";
  else os << std::setprecision(0) << eventsPerSec;
  return os.str();
}

}  // namespace

ProgressReporter::ProgressReporter(const ProgressBoard& board,
                                   std::ostream& os,
                                   std::chrono::milliseconds interval)
    : board_(board), os_(os), interval_(interval) {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(stopMutex_);
    while (!stopping_.load(std::memory_order_relaxed)) {
      lock.unlock();
      render(board_.snapshot(), /*final=*/false);
      lock.lock();
      stopCv_.wait_for(lock, interval_, [this] {
        return stopping_.load(std::memory_order_relaxed);
      });
    }
  });
}

ProgressReporter::~ProgressReporter() { stop(); }

void ProgressReporter::stop() {
  {
    std::lock_guard<std::mutex> lock(stopMutex_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  stopCv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(stopMutex_);
  if (!stopped_) {
    stopped_ = true;
    render(board_.snapshot(), /*final=*/true);
  }
}

void ProgressReporter::render(const ProgressSnapshot& s, bool final) {
  std::ostringstream line;
  line << "[" << s.runsDone << "/" << s.runsTotal << " runs] "
       << std::fixed << std::setprecision(1) << s.fractionDone * 100.0
       << "% | " << formatRate(s.eventsPerSec) << " ev/s | eta "
       << formatEta(final ? 0.0 : s.etaSeconds);
  if (!final && s.runsActive > 0) line << " | " << s.runsActive << " active";
  // Pad so a shorter frame fully overwrites a longer previous one.
  std::string text = line.str();
  if (text.size() < 64) text.append(64 - text.size(), ' ');
  std::lock_guard<std::mutex> lock(sps::detail::ioMutex());
  os_ << '\r' << text;
  if (final) os_ << '\n';
  os_.flush();
}

}  // namespace sps::core
