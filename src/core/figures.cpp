#include "core/figures.hpp"

#include <ostream>

namespace sps::core {

void printHeading(std::ostream& os, const std::string& text) {
  os << '\n' << "== " << text << " ==\n";
}

void printFigurePanels(std::ostream& os, const std::string& title,
                       const std::vector<metrics::RunStats>& runs,
                       metrics::Metric metric,
                       metrics::EstimateFilter filter) {
  printHeading(os, title);
  std::vector<std::pair<std::string, metrics::Category16Stats>> perScheme;
  perScheme.reserve(runs.size());
  for (const metrics::RunStats& r : runs)
    perScheme.emplace_back(r.policyName,
                           metrics::categorize16(r.jobs, filter));
  static constexpr const char* kPanelNames[] = {
      "Very Short (0-10 min)", "Short (10 min-1 hr)", "Long (1-8 hr)",
      "Very Long (>8 hr)"};
  for (std::size_t r = 0; r < workload::kNumRunClasses; ++r) {
    os << "\n-- " << kPanelNames[r] << " — " << metrics::metricName(metric)
       << " --\n";
    metrics::schemeComparison(perScheme,
                              static_cast<workload::RunClass>(r), metric)
        .printAscii(os);
  }
}

void printRunSummaries(std::ostream& os,
                       const std::vector<metrics::RunStats>& runs) {
  for (const metrics::RunStats& r : runs)
    os << metrics::summaryLine(r) << '\n';
}

}  // namespace sps::core
