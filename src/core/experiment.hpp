// Experiment helpers — the sweeps the evaluation section is built from.
//
// Each helper is a thin composition over core::Runner: it builds a batch of
// RunRequests, executes them (concurrently when the Runner has threads), and
// reshapes the ordered RunResults. Every overload without an explicit Runner
// is the convenience layer: it uses a default Runner (one worker per
// hardware thread) and produces results identical to the sequential
// originals — see the determinism contract in runner.hpp.
#pragma once

#include <array>
#include <vector>

#include "core/runner.hpp"
#include "core/simulation.hpp"
#include "metrics/category_stats.hpp"

namespace sps::core {

/// TSS calibration (Section IV-E): run the NS baseline on the trace and set
/// each category's victim-protection limit to `multiplier` x that category's
/// average NS slowdown.
[[nodiscard]] std::array<double, workload::kNumCategories16>
bootstrapTssLimits(Runner& runner, const workload::Trace& trace,
                   double multiplier = 1.5,
                   const SimulationOptions& options = {});
[[nodiscard]] std::array<double, workload::kNumCategories16>
bootstrapTssLimits(const workload::Trace& trace, double multiplier = 1.5,
                   const SimulationOptions& options = {});

/// Run every spec on the same trace. One batch: |specs| runs.
[[nodiscard]] std::vector<metrics::RunStats> compareSchemes(
    Runner& runner, const workload::Trace& trace,
    const std::vector<PolicySpec>& specs,
    const SimulationOptions& options = {});
[[nodiscard]] std::vector<metrics::RunStats> compareSchemes(
    const workload::Trace& trace, const std::vector<PolicySpec>& specs,
    const SimulationOptions& options = {});

/// One point of the Section VI load sweep.
struct LoadPoint {
  double loadFactor = 1.0;
  std::vector<metrics::RunStats> runs;  ///< one per spec, same order
};

/// Scale the trace to each load factor (Section VI transform) and run every
/// spec at each point — one batch of |factors| x |specs| runs. When
/// `calibrateTssFromBase` is set, TSS specs get their victim-protection
/// limits from one NS run of the *unscaled* trace — the paper's Section IV-E
/// calibration is a property of the normal-load workload, and re-deriving
/// limits at every load point would inflate them until the protection
/// disappears exactly where it matters most.
[[nodiscard]] std::vector<LoadPoint> loadSweep(
    Runner& runner, const workload::Trace& trace,
    std::vector<PolicySpec> specs, const std::vector<double>& factors,
    bool calibrateTssFromBase = true, const SimulationOptions& options = {});
[[nodiscard]] std::vector<LoadPoint> loadSweep(
    const workload::Trace& trace, std::vector<PolicySpec> specs,
    const std::vector<double>& factors, bool calibrateTssFromBase = true,
    const SimulationOptions& options = {});

/// The paper's standard scheme line-ups.
/// SS at SF in {1.5, 2, 5} plus NS plus IS (Figs. 7-10).
[[nodiscard]] std::vector<PolicySpec> ssSchemeSet();
/// SS(2), NS, IS (Figs. 11/12/15/16).
[[nodiscard]] std::vector<PolicySpec> worstCaseSchemeSet();
/// TSS at SF in {1.5, 2, 5} plus NS plus IS, calibrated on `limits`.
[[nodiscard]] std::vector<PolicySpec> tssSchemeSet(
    const std::array<double, workload::kNumCategories16>& limits);
/// The introduction's every-scheduler line-up: FCFS, Conservative, EASY
/// (NS), SS(2), IS, Gang(4), SJF-BF — what `sps_sim compare --set classic`
/// and the policy_comparison example run.
[[nodiscard]] std::vector<PolicySpec> classicSchemeSet();

}  // namespace sps::core
