#include "core/simulation.hpp"

#include <optional>
#include <utility>

#include "core/progress.hpp"

namespace sps::core {

namespace {

/// Resolve the effective simulator config: the unified `sim` member, with
/// the deprecated flat fields still winning when a legacy caller set them.
sim::SimulatorConfig effectiveSimConfig(const SimulationOptions& options) {
  sim::SimulatorConfig config = options.sim;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  if (options.overhead != nullptr) config.overhead = options.overhead;
  if (options.queueKind) config.queueKind = *options.queueKind;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  return config;
}

}  // namespace

SimulationHarness::SimulationHarness(const workload::Trace& trace,
                                     const PolicySpec& spec,
                                     const SimulationOptions& options)
    : policy_(makePolicy(spec)),
      // One Recorder per run: counters stay per-simulation (thread-count
      // invariant under core::Runner) even when many runs share one sink.
      recorder_(options.traceSink),
      traceSink_(options.traceSink),
      label_(policyLabel(spec)) {
  sim::SimulatorConfig config = effectiveSimConfig(options);
  config.recorder = &recorder_;
  simulator_.emplace(trace, *policy_, config);
  arm(options);
}

SimulationHarness::SimulationHarness(std::string traceName,
                                     std::uint32_t machineProcs,
                                     const PolicySpec& spec,
                                     const SimulationOptions& options)
    : policy_(makePolicy(spec)),
      recorder_(options.traceSink),
      traceSink_(options.traceSink),
      label_(policyLabel(spec)) {
  sim::SimulatorConfig config = effectiveSimConfig(options);
  config.recorder = &recorder_;
  simulator_.emplace(std::move(traceName), machineProcs, *policy_, config);
  arm(options);
}

void SimulationHarness::arm(const SimulationOptions& options) {
  if (options.check.any()) {
    checker_.emplace(options.check);
    checker_->arm(*simulator_, *policy_);
  }
  // Telemetry rides the observer registry; with both features off nothing
  // is registered and the event loop is untouched (the zero-cost contract).
  if (options.timeline.enabled) {
    timeline_.emplace(options.timeline);
    timeline_->attach(*simulator_);
  }
  if (options.progress != nullptr) {
    const std::uint64_t stride =
        options.progressStride == 0 ? 1 : options.progressStride;
    simulator_->observers().onEventDispatched(
        [listener = options.progress, stride,
         n = std::uint64_t{0}](const sim::Simulator& s,
                               const sim::Event&) mutable {
          if (++n % stride == 0)
            listener->onSimProgress(s.now(), s.eventsProcessed());
        });
  }
  if (options.instrument) options.instrument(*simulator_);
}

metrics::RunStats SimulationHarness::finish() {
  simulator_->drain();
  if (checker_) checker_->finalize(*simulator_);
  metrics::RunStats stats = metrics::collect(*simulator_, label_);
  if (timeline_) {
    // Counter tracks are bounded post-run output (4 events per sample), so
    // emission is runtime-gated on the sink — unlike the per-event SPS_TRACE
    // layer, no instrumented build is required.
    if (traceSink_ != nullptr) timeline_->emitCounterTracks(*traceSink_);
    stats.timeline = timeline_->take();
  }
  return stats;
}

metrics::RunStats runSimulation(const workload::Trace& trace,
                                const PolicySpec& spec,
                                const SimulationOptions& options) {
  SimulationHarness harness(trace, spec, options);
  harness.simulator().run();
  return harness.finish();
}

metrics::RunStats runSimulation(JobSource& source, const PolicySpec& spec,
                                const SimulationOptions& options) {
  SimulationHarness harness(source.name(), source.machineProcs(), spec,
                            options);
  // Minimum-lookahead pump: advance to the instant before each job's
  // submit time, then ingest it — every event at the submit instant
  // dispatches with the arrival already enqueued, which (with the
  // arrivals-first event band) reproduces the batch order exactly.
  sim::Simulator& simulator = harness.simulator();
  while (std::optional<workload::Job> j = source.next()) {
    simulator.runUntil(j->submit - 1);
    simulator.submit(std::move(*j));
  }
  return harness.finish();
}

}  // namespace sps::core
