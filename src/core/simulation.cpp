#include "core/simulation.hpp"

#include <optional>

#include "check/invariants.hpp"
#include "sched/conservative.hpp"
#include "sched/easy.hpp"
#include "sched/fcfs.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace sps::core {

const char* policyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Fcfs: return "FCFS";
    case PolicyKind::Conservative: return "Conservative";
    case PolicyKind::Easy: return "EASY";
    case PolicyKind::SelectiveSuspension: return "SelectiveSuspension";
    case PolicyKind::ImmediateService: return "ImmediateService";
    case PolicyKind::Gang: return "Gang";
    case PolicyKind::DepthBackfill: return "DepthBackfill";
  }
  return "?";
}

std::unique_ptr<sim::SchedulingPolicy> makePolicy(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicyKind::Fcfs:
      return std::make_unique<sched::FcfsScheduler>();
    case PolicyKind::Conservative:
      return std::make_unique<sched::ConservativeBackfill>(spec.conservative);
    case PolicyKind::Easy:
      return std::make_unique<sched::EasyBackfill>(spec.easy);
    case PolicyKind::SelectiveSuspension:
      return std::make_unique<sched::SelectiveSuspension>(spec.ss);
    case PolicyKind::ImmediateService:
      return std::make_unique<sched::ImmediateService>(spec.is);
    case PolicyKind::Gang:
      return std::make_unique<sched::GangScheduler>(spec.gang);
    case PolicyKind::DepthBackfill:
      return std::make_unique<sched::DepthBackfill>(spec.depth);
  }
  SPS_CHECK_MSG(false, "unknown policy kind");
  return nullptr;  // unreachable
}

std::string policyLabel(const PolicySpec& spec) {
  if (!spec.label.empty()) return spec.label;
  return makePolicy(spec)->name();
}

metrics::RunStats runSimulation(const workload::Trace& trace,
                                const PolicySpec& spec,
                                const SimulationOptions& options) {
  auto policy = makePolicy(spec);
  // One Recorder per run: counters stay per-simulation (thread-count
  // invariant under core::Runner) even when many runs share one sink.
  obs::Recorder recorder(options.traceSink);
  sim::Simulator::Config config;
  config.overhead = options.overhead;
  config.recorder = &recorder;
  sim::Simulator simulator(trace, *policy, config);
  std::optional<check::InvariantChecker> checker;
  if (options.check.any()) {
    checker.emplace(options.check);
    checker->arm(simulator, *policy);
  }
  simulator.run();
  if (checker) checker->finalize(simulator);
  return metrics::collect(simulator, policyLabel(spec));
}

}  // namespace sps::core
