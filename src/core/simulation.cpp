#include "core/simulation.hpp"

#include <optional>

#include "check/invariants.hpp"
#include "core/progress.hpp"
#include "obs/timeline.hpp"
#include "sched/conservative.hpp"
#include "sched/easy.hpp"
#include "sched/fcfs.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace sps::core {

const char* policyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Fcfs: return "FCFS";
    case PolicyKind::Conservative: return "Conservative";
    case PolicyKind::Easy: return "EASY";
    case PolicyKind::SelectiveSuspension: return "SelectiveSuspension";
    case PolicyKind::ImmediateService: return "ImmediateService";
    case PolicyKind::Gang: return "Gang";
    case PolicyKind::DepthBackfill: return "DepthBackfill";
  }
  return "?";
}

std::unique_ptr<sim::SchedulingPolicy> makePolicy(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicyKind::Fcfs:
      return std::make_unique<sched::FcfsScheduler>();
    case PolicyKind::Conservative:
      return std::make_unique<sched::ConservativeBackfill>(spec.conservative);
    case PolicyKind::Easy:
      return std::make_unique<sched::EasyBackfill>(spec.easy);
    case PolicyKind::SelectiveSuspension:
      return std::make_unique<sched::SelectiveSuspension>(spec.ss);
    case PolicyKind::ImmediateService:
      return std::make_unique<sched::ImmediateService>(spec.is);
    case PolicyKind::Gang:
      return std::make_unique<sched::GangScheduler>(spec.gang);
    case PolicyKind::DepthBackfill:
      return std::make_unique<sched::DepthBackfill>(spec.depth);
  }
  SPS_CHECK_MSG(false, "unknown policy kind");
  return nullptr;  // unreachable
}

std::string policyLabel(const PolicySpec& spec) {
  if (!spec.label.empty()) return spec.label;
  return makePolicy(spec)->name();
}

metrics::RunStats runSimulation(const workload::Trace& trace,
                                const PolicySpec& spec,
                                const SimulationOptions& options) {
  auto policy = makePolicy(spec);
  // One Recorder per run: counters stay per-simulation (thread-count
  // invariant under core::Runner) even when many runs share one sink.
  obs::Recorder recorder(options.traceSink);
  sim::Simulator::Config config;
  config.overhead = options.overhead;
  config.recorder = &recorder;
  sim::Simulator simulator(trace, *policy, config);
  std::optional<check::InvariantChecker> checker;
  if (options.check.any()) {
    checker.emplace(options.check);
    checker->arm(simulator, *policy);
  }
  // Telemetry rides the observer registry; with both features off nothing
  // is registered and the event loop is untouched (the zero-cost contract).
  std::optional<obs::TimelineRecorder> timeline;
  if (options.timeline.enabled) {
    timeline.emplace(options.timeline);
    timeline->attach(simulator);
  }
  if (options.progress != nullptr) {
    const std::uint64_t stride =
        options.progressStride == 0 ? 1 : options.progressStride;
    simulator.observers().onEventDispatched(
        [listener = options.progress, stride,
         n = std::uint64_t{0}](const sim::Simulator& s,
                               const sim::Event&) mutable {
          if (++n % stride == 0)
            listener->onSimProgress(s.now(), s.eventsProcessed());
        });
  }
  simulator.run();
  if (checker) checker->finalize(simulator);
  metrics::RunStats stats = metrics::collect(simulator, policyLabel(spec));
  if (timeline) {
    // Counter tracks are bounded post-run output (4 events per sample), so
    // emission is runtime-gated on the sink — unlike the per-event SPS_TRACE
    // layer, no instrumented build is required.
    if (options.traceSink != nullptr)
      timeline->emitCounterTracks(*options.traceSink);
    stats.timeline = timeline->take();
  }
  return stats;
}

}  // namespace sps::core
