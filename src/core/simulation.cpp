#include "core/simulation.hpp"

#include <optional>

#include "check/invariants.hpp"
#include "core/progress.hpp"
#include "obs/timeline.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace sps::core {

metrics::RunStats runSimulation(const workload::Trace& trace,
                                const PolicySpec& spec,
                                const SimulationOptions& options) {
  auto policy = makePolicy(spec);
  // One Recorder per run: counters stay per-simulation (thread-count
  // invariant under core::Runner) even when many runs share one sink.
  obs::Recorder recorder(options.traceSink);
  sim::Simulator::Config config;
  config.overhead = options.overhead;
  config.queueKind = options.queueKind;
  config.recorder = &recorder;
  sim::Simulator simulator(trace, *policy, config);
  std::optional<check::InvariantChecker> checker;
  if (options.check.any()) {
    checker.emplace(options.check);
    checker->arm(simulator, *policy);
  }
  // Telemetry rides the observer registry; with both features off nothing
  // is registered and the event loop is untouched (the zero-cost contract).
  std::optional<obs::TimelineRecorder> timeline;
  if (options.timeline.enabled) {
    timeline.emplace(options.timeline);
    timeline->attach(simulator);
  }
  if (options.progress != nullptr) {
    const std::uint64_t stride =
        options.progressStride == 0 ? 1 : options.progressStride;
    simulator.observers().onEventDispatched(
        [listener = options.progress, stride,
         n = std::uint64_t{0}](const sim::Simulator& s,
                               const sim::Event&) mutable {
          if (++n % stride == 0)
            listener->onSimProgress(s.now(), s.eventsProcessed());
        });
  }
  simulator.run();
  if (checker) checker->finalize(simulator);
  metrics::RunStats stats = metrics::collect(simulator, policyLabel(spec));
  if (timeline) {
    // Counter tracks are bounded post-run output (4 events per sample), so
    // emission is runtime-gated on the sink — unlike the per-event SPS_TRACE
    // layer, no instrumented build is required.
    if (options.traceSink != nullptr)
      timeline->emitCounterTracks(*options.traceSink);
    stats.timeline = timeline->take();
  }
  return stats;
}

}  // namespace sps::core
