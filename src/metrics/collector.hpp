// Collector — turns a finished Simulator into a RunStats record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/job_record.hpp"
#include "obs/counters.hpp"
#include "obs/timeline.hpp"
#include "sim/simulator.hpp"

namespace sps::metrics {

struct RunStats {
  std::string policyName;
  std::string traceName;
  std::vector<JobResult> jobs;
  /// Busy processor-seconds (incl. overhead phases) / (procs x span).
  double utilization = 0.0;
  /// Pure compute processor-seconds / (procs x span) — overhead excluded.
  double usefulUtilization = 0.0;
  /// Utilization over the arrival window only (first..last submission) —
  /// the steady-state basis used for the load-variation figures. The full
  /// `utilization` divides by the makespan and therefore charges each
  /// scheduler for its drain tail after the last arrival.
  double steadyUtilization = 0.0;
  /// First submission to last completion, seconds.
  Time span = 0;
  std::uint64_t suspensions = 0;
  std::uint64_t eventsProcessed = 0;
  /// The run's obs counter block (always collected; counting is on in every
  /// build, only the SPS_TRACE event layer is compile-gated).
  obs::Counters counters;
  /// Sim-clock time series, filled only when SimulationOptions::timeline is
  /// enabled (empty otherwise — and omitted from the JSON export).
  obs::TimelineData timeline;

  [[nodiscard]] double meanBoundedSlowdown() const;
  [[nodiscard]] double meanTurnaround() const;
};

/// Harvest per-job results and machine statistics from a completed run.
/// Requires Simulator::run() to have finished.
[[nodiscard]] RunStats collect(const sim::Simulator& simulator,
                               const std::string& policyName);

}  // namespace sps::metrics
