#include "metrics/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace sps::metrics {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {
  SPS_CHECK(indent >= 0);
}

void JsonWriter::newlineIndent() {
  if (indent_ == 0) return;
  os_ << '\n';
  for (int i = 0; i < depth_ * indent_; ++i) os_ << ' ';
}

void JsonWriter::separate() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;  // the key already placed the comma and indentation
  }
  if (!firstInScope_) os_ << ',';
  if (depth_ > 0) newlineIndent();
  firstInScope_ = false;
}

JsonWriter& JsonWriter::beginObject() {
  separate();
  os_ << '{';
  ++depth_;
  firstInScope_ = true;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  SPS_CHECK(depth_ > 0 && !pendingKey_);
  --depth_;
  if (!firstInScope_) newlineIndent();
  os_ << '}';
  firstInScope_ = false;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  separate();
  os_ << '[';
  ++depth_;
  firstInScope_ = true;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  SPS_CHECK(depth_ > 0 && !pendingKey_);
  --depth_;
  if (!firstInScope_) newlineIndent();
  os_ << ']';
  firstInScope_ = false;
  return *this;
}

namespace {
void writeEscaped(std::ostream& os, std::string_view text) {
  os << '"';
  for (char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}
}  // namespace

JsonWriter& JsonWriter::key(std::string_view name) {
  SPS_CHECK_MSG(!pendingKey_, "two keys in a row");
  separate();
  writeEscaped(os_, name);
  os_ << (indent_ == 0 ? ":" : ": ");
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  writeEscaped(os_, text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  separate();
  if (!std::isfinite(number)) {
    os_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  // Shortest round-trip representation: what you parse is bit-for-bit what
  // was serialized.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, number);
  os_ << std::string_view(buf, static_cast<std::size_t>(res.ptr - buf));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separate();
  os_ << (flag ? "true" : "false");
  return *this;
}

void writeJobResultJson(JsonWriter& w, const JobResult& job) {
  w.beginObject()
      .field("id", static_cast<std::uint64_t>(job.id))
      .field("submit", job.submit)
      .field("runtime", job.runtime)
      .field("estimate", job.estimate)
      .field("procs", static_cast<std::uint64_t>(job.procs))
      .field("firstStart", job.firstStart)
      .field("finish", job.finish)
      .field("suspendCount", static_cast<std::uint64_t>(job.suspendCount))
      .field("overheadTotal", job.overheadTotal)
      .endObject();
}

void writeRunStatsJson(JsonWriter& w, const RunStats& stats,
                       const JsonOptions& options) {
  w.beginObject()
      .field("policy", stats.policyName)
      .field("trace", stats.traceName)
      .field("jobCount", static_cast<std::uint64_t>(stats.jobs.size()))
      .field("meanBoundedSlowdown", stats.meanBoundedSlowdown())
      .field("meanTurnaround", stats.meanTurnaround())
      .field("utilization", stats.utilization)
      .field("usefulUtilization", stats.usefulUtilization)
      .field("steadyUtilization", stats.steadyUtilization)
      .field("span", stats.span)
      .field("suspensions", stats.suspensions)
      .field("eventsProcessed", stats.eventsProcessed);
  if (options.includeJobs) {
    w.key("jobs").beginArray();
    for (const JobResult& job : stats.jobs) writeJobResultJson(w, job);
    w.endArray();
  }
  w.endObject();
}

void writeRunStatsJson(std::ostream& os, const RunStats& stats,
                       const JsonOptions& options) {
  JsonWriter w(os, options.indent);
  writeRunStatsJson(w, stats, options);
}

std::string runStatsJson(const RunStats& stats, const JsonOptions& options) {
  std::ostringstream os;
  writeRunStatsJson(os, stats, options);
  return os.str();
}

}  // namespace sps::metrics
