#include "metrics/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace sps::metrics {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {
  SPS_CHECK(indent >= 0);
}

void JsonWriter::newlineIndent() {
  if (indent_ == 0) return;
  os_ << '\n';
  for (int i = 0; i < depth_ * indent_; ++i) os_ << ' ';
}

void JsonWriter::separate() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;  // the key already placed the comma and indentation
  }
  if (!firstInScope_) os_ << ',';
  if (depth_ > 0) newlineIndent();
  firstInScope_ = false;
}

JsonWriter& JsonWriter::beginObject() {
  separate();
  os_ << '{';
  ++depth_;
  firstInScope_ = true;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  SPS_CHECK(depth_ > 0 && !pendingKey_);
  --depth_;
  if (!firstInScope_) newlineIndent();
  os_ << '}';
  firstInScope_ = false;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  separate();
  os_ << '[';
  ++depth_;
  firstInScope_ = true;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  SPS_CHECK(depth_ > 0 && !pendingKey_);
  --depth_;
  if (!firstInScope_) newlineIndent();
  os_ << ']';
  firstInScope_ = false;
  return *this;
}

namespace {
void writeEscaped(std::ostream& os, std::string_view text) {
  os << '"';
  for (char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}
}  // namespace

JsonWriter& JsonWriter::key(std::string_view name) {
  SPS_CHECK_MSG(!pendingKey_, "two keys in a row");
  separate();
  writeEscaped(os_, name);
  os_ << (indent_ == 0 ? ":" : ": ");
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  writeEscaped(os_, text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  separate();
  if (!std::isfinite(number)) {
    os_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  // Shortest round-trip representation: what you parse is bit-for-bit what
  // was serialized.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, number);
  os_ << std::string_view(buf, static_cast<std::size_t>(res.ptr - buf));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separate();
  os_ << (flag ? "true" : "false");
  return *this;
}

void writeJobResultJson(JsonWriter& w, const JobResult& job) {
  w.beginObject()
      .field("id", static_cast<std::uint64_t>(job.id))
      .field("submit", job.submit)
      .field("runtime", job.runtime)
      .field("estimate", job.estimate)
      .field("procs", static_cast<std::uint64_t>(job.procs))
      .field("firstStart", job.firstStart)
      .field("finish", job.finish)
      .field("suspendCount", static_cast<std::uint64_t>(job.suspendCount))
      .field("overheadTotal", job.overheadTotal)
      .endObject();
}

void writeCountersJson(JsonWriter& w, const obs::Counters& counters) {
  w.beginObject();
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    if (counters.value(c) != 0) w.field(obs::counterName(c), counters.value(c));
  }
  bool anyCategory = false;
  for (const std::uint64_t v : counters.suspensionsByCategory())
    anyCategory = anyCategory || v != 0;
  if (anyCategory) {
    w.key("suspensionsByCategory").beginArray();
    for (const std::uint64_t v : counters.suspensionsByCategory()) w.value(v);
    w.endArray();
  }
  w.endObject();
}

void writeTimelineJson(JsonWriter& w, const obs::TimelineData& timeline) {
  const auto writeInts = [&w](std::string_view name,
                              const std::vector<std::uint32_t>& series) {
    w.key(name).beginArray();
    for (const std::uint32_t v : series)
      w.value(static_cast<std::uint64_t>(v));
    w.endArray();
  };
  const auto writeDoubles = [&w](std::string_view name,
                                 const std::vector<double>& series) {
    w.key(name).beginArray();
    for (const double v : series) w.value(v);
    w.endArray();
  };
  w.beginObject()
      .field("stride", timeline.stride)
      .field("samples", static_cast<std::uint64_t>(timeline.sampleCount()));
  writeInts("queueDepth", timeline.queueDepth);
  writeInts("runningJobs", timeline.runningJobs);
  writeInts("suspendedJobs", timeline.suspendedJobs);
  writeInts("freeProcs", timeline.freeProcs);
  writeDoubles("utilization", timeline.utilization);
  writeDoubles("backlogProcSeconds", timeline.backlogProcSeconds);
  w.endObject();
}

void writeRunStatsJson(JsonWriter& w, const RunStats& stats,
                       const JsonOptions& options) {
  w.beginObject()
      .field("policy", stats.policyName)
      .field("trace", stats.traceName)
      .field("jobCount", static_cast<std::uint64_t>(stats.jobs.size()))
      .field("meanBoundedSlowdown", stats.meanBoundedSlowdown())
      .field("meanTurnaround", stats.meanTurnaround())
      .field("utilization", stats.utilization)
      .field("usefulUtilization", stats.usefulUtilization)
      .field("steadyUtilization", stats.steadyUtilization)
      .field("span", stats.span)
      .field("suspensions", stats.suspensions)
      .field("eventsProcessed", stats.eventsProcessed);
  if (stats.counters.anyNonZero()) {
    w.key("counters");
    writeCountersJson(w, stats.counters);
  }
  if (!stats.timeline.empty()) {
    w.key("timeline");
    writeTimelineJson(w, stats.timeline);
  }
  if (options.includeJobs) {
    w.key("jobs").beginArray();
    for (const JobResult& job : stats.jobs) writeJobResultJson(w, job);
    w.endArray();
  }
  w.endObject();
}

void writeRunStatsJson(std::ostream& os, const RunStats& stats,
                       const JsonOptions& options) {
  JsonWriter w(os, options.indent);
  writeRunStatsJson(w, stats, options);
}

std::string runStatsJson(const RunStats& stats, const JsonOptions& options) {
  std::ostringstream os;
  writeRunStatsJson(os, stats, options);
  return os.str();
}

namespace {

/// Recursive-descent RFC 8259 syntax checker. Values only — no DOM, no
/// allocation; depth is bounded to keep malicious input from overflowing
/// the stack.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  [[nodiscard]] bool run(std::string* error) {
    skipWs();
    if (!parseValue()) return report(error);
    skipWs();
    if (pos_ != text_.size()) {
      message_ = "trailing content after top-level value";
      return report(error);
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 512;

  bool report(std::string* error) const {
    if (error != nullptr) {
      std::ostringstream os;
      os << message_ << " at byte " << pos_;
      *error = os.str();
    }
    return false;
  }

  bool err(std::string message) {
    message_ = std::move(message);
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] bool peekIs(char c) const {
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool consume(char c) {
    if (!peekIs(c)) return err(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }

  [[nodiscard]] bool digitAt() const {
    return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9';
  }

  [[nodiscard]] static bool hexDigit(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
           (c >= 'A' && c <= 'F');
  }

  bool parseValue() {
    if (++depth_ > kMaxDepth) return err("nesting too deep");
    skipWs();
    if (pos_ >= text_.size()) return err("unexpected end of input");
    bool ok = false;
    switch (text_[pos_]) {
      case '{': ok = parseObject(); break;
      case '[': ok = parseArray(); break;
      case '"': ok = parseString(); break;
      case 't': ok = parseLiteral("true"); break;
      case 'f': ok = parseLiteral("false"); break;
      case 'n': ok = parseLiteral("null"); break;
      default: ok = parseNumber(); break;
    }
    --depth_;
    return ok;
  }

  bool parseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return err("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parseObject() {
    ++pos_;  // '{'
    skipWs();
    if (peekIs('}')) {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!peekIs('"')) return err("expected object key");
      if (!parseString()) return false;
      skipWs();
      if (!consume(':')) return false;
      if (!parseValue()) return false;
      skipWs();
      if (peekIs(',')) {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parseArray() {
    ++pos_;  // '['
    skipWs();
    if (peekIs(']')) {
      ++pos_;
      return true;
    }
    while (true) {
      if (!parseValue()) return false;
      skipWs();
      if (peekIs(',')) {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parseString() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const auto c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return err("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_];
        if (e == 'u') {
          for (std::size_t i = 1; i <= 4; ++i)
            if (pos_ + i >= text_.size() || !hexDigit(text_[pos_ + i]))
              return err("bad \\u escape");
          pos_ += 4;
        } else if (std::string_view(R"("\/bfnrt)").find(e) ==
                   std::string_view::npos) {
          return err("bad escape");
        }
      }
      ++pos_;
    }
    return err("unterminated string");
  }

  bool parseNumber() {
    if (peekIs('-')) ++pos_;
    if (peekIs('0')) {
      ++pos_;  // no leading zeros
    } else if (digitAt()) {
      while (digitAt()) ++pos_;
    } else {
      return err("expected a value");
    }
    if (peekIs('.')) {
      ++pos_;
      if (!digitAt()) return err("digits required after decimal point");
      while (digitAt()) ++pos_;
    }
    if (peekIs('e') || peekIs('E')) {
      ++pos_;
      if (peekIs('+') || peekIs('-')) ++pos_;
      if (!digitAt()) return err("digits required in exponent");
      while (digitAt()) ++pos_;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string message_;
};

}  // namespace

bool validateJson(std::string_view text, std::string* error) {
  return JsonValidator(text).run(error);
}

}  // namespace sps::metrics
