// OpenMetrics text exposition of run metrics — the scrape-friendly sibling
// of the JSON export.
//
// openMetrics() renders a run (or a whole Runner batch) in the OpenMetrics
// 1.0 text format, so sps_sim output can be ingested by Prometheus-family
// tooling (`--metrics-out FILE`, then point any OpenMetrics scraper or
// `promtool` at the file). Three kinds of families are emitted, each with
// {run,policy,trace,label,seed} identifying labels per sample:
//
//   * gauges  — the RunStats scalars (utilization, span, mean slowdown, …);
//   * counters — every non-zero obs counter (name "sps_" + dotted counter
//     name with separators folded to '_', samples suffixed "_total"), plus
//     the Table-I suspension breakdown with a `category` label;
//   * summaries — slowdown and wait-time quantiles computed through
//     util::QuantileSketch, with the standard `quantile` label and
//     `_count`/`_sum` samples.
//
// validateOpenMetrics() is the format gate: a strict line-level checker in
// the spirit of metrics::validateJson, enforcing the exposition grammar
// (TYPE-before-samples, no family interleaving, name/label syntax, the
// `_total` suffix rule, terminal `# EOF`). Tests run every emitted document
// through it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/collector.hpp"

namespace sps::metrics {

/// One run in an exposition: the stats plus the batch-level identity the
/// RunStats record itself does not carry.
struct OpenMetricsEntry {
  const RunStats* stats = nullptr;
  std::size_t run = 0;  ///< batch index; becomes the `run` label
  std::string label;    ///< display label; empty = stats->policyName
  std::uint64_t seed = 0;
  double wallSeconds = 0.0;  ///< 0 = wall time unknown; gauge omitted
};

/// Render a batch as one OpenMetrics document (terminated by `# EOF`).
void writeOpenMetrics(std::ostream& os,
                      const std::vector<OpenMetricsEntry>& entries);
[[nodiscard]] std::string openMetrics(
    const std::vector<OpenMetricsEntry>& entries);

/// Single-run convenience: one entry, run index 0.
[[nodiscard]] std::string openMetrics(const RunStats& stats);

/// Strict OpenMetrics 1.0 text-format syntax check over a complete
/// document. Like validateJson: no external dependency, `error` (when
/// non-null) receives a message with the 1-based line of the first problem.
/// Checks the line grammar (metric/label/value syntax, escaping), the
/// family structure (TYPE once per family, HELP/samples within their
/// family's block, counter samples end in `_total`, summary samples are
/// base+quantile / `_count` / `_sum`), and the terminal `# EOF` line.
[[nodiscard]] bool validateOpenMetrics(std::string_view text,
                                       std::string* error = nullptr);

}  // namespace sps::metrics
