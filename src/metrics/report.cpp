#include "metrics/report.hpp"

#include <sstream>

namespace sps::metrics {

const char* metricName(Metric metric) {
  switch (metric) {
    case Metric::AvgSlowdown: return "avg slowdown";
    case Metric::WorstSlowdown: return "worst-case slowdown";
    case Metric::P95Slowdown: return "p95 slowdown";
    case Metric::AvgTurnaround: return "avg turnaround (s)";
    case Metric::WorstTurnaround: return "worst-case turnaround (s)";
    case Metric::P95Turnaround: return "p95 turnaround (s)";
  }
  return "?";
}

double metricValue(const CategoryAggregate& agg, Metric metric) {
  switch (metric) {
    case Metric::AvgSlowdown: return agg.avgSlowdown();
    case Metric::WorstSlowdown: return agg.worstSlowdown();
    case Metric::P95Slowdown: return agg.slowdownPercentile(95);
    case Metric::AvgTurnaround: return agg.avgTurnaround();
    case Metric::WorstTurnaround: return agg.worstTurnaround();
    case Metric::P95Turnaround: return agg.turnaroundPercentile(95);
  }
  return 0.0;
}

namespace {
std::vector<std::string> gridHeader() {
  std::vector<std::string> h;
  h.emplace_back("runtime \\ width");
  for (std::size_t w = 0; w < workload::kNumWidthClasses; ++w)
    h.push_back(
        workload::widthClassName(static_cast<workload::WidthClass>(w)));
  return h;
}

const char* runRowLabel(std::size_t r) {
  switch (r) {
    case 0: return "0 - 10 min (VS)";
    case 1: return "10 min - 1 hr (S)";
    case 2: return "1 hr - 8 hr (L)";
    case 3: return "> 8 hr (VL)";
  }
  return "?";
}
}  // namespace

Table categoryGrid16(const Category16Stats& stats, Metric metric,
                     int precision) {
  Table t(gridHeader());
  for (std::size_t r = 0; r < workload::kNumRunClasses; ++r) {
    t.row().cell(runRowLabel(r));
    for (std::size_t w = 0; w < workload::kNumWidthClasses; ++w) {
      const auto& agg = stats[r * workload::kNumWidthClasses + w];
      if (agg.empty()) t.cell("-");
      else t.cell(metricValue(agg, metric), precision);
    }
  }
  return t;
}

Table distributionGrid16(
    const std::array<double, workload::kNumCategories16>& dist) {
  Table t(gridHeader());
  for (std::size_t r = 0; r < workload::kNumRunClasses; ++r) {
    t.row().cell(runRowLabel(r));
    for (std::size_t w = 0; w < workload::kNumWidthClasses; ++w)
      t.cell(formatFixed(dist[r * workload::kNumWidthClasses + w], 1) + "%");
  }
  return t;
}

Table schemeComparison(
    const std::vector<std::pair<std::string, Category16Stats>>& runs,
    workload::RunClass runClass, Metric metric, int precision) {
  std::vector<std::string> header;
  header.emplace_back("width");
  for (const auto& [name, stats] : runs) header.push_back(name);
  Table t(header);
  const auto r = static_cast<std::size_t>(runClass);
  for (std::size_t w = 0; w < workload::kNumWidthClasses; ++w) {
    t.row().cell(
        workload::widthClassName(static_cast<workload::WidthClass>(w)));
    for (const auto& [name, stats] : runs) {
      const auto& agg = stats[r * workload::kNumWidthClasses + w];
      if (agg.empty()) t.cell("-");
      else t.cell(metricValue(agg, metric), precision);
    }
  }
  return t;
}

std::string summaryLine(const RunStats& stats) {
  std::ostringstream os;
  os << stats.policyName << " on " << stats.traceName << ": "
     << stats.jobs.size() << " jobs, avg slowdown "
     << formatFixed(stats.meanBoundedSlowdown(), 2) << ", avg turnaround "
     << formatFixed(stats.meanTurnaround(), 0) << " s, utilization "
     << formatFixed(100.0 * stats.utilization, 1) << "%"
     << " (steady " << formatFixed(100.0 * stats.steadyUtilization, 1)
     << "%), " << stats.suspensions << " suspensions";
  return os.str();
}

}  // namespace sps::metrics
