#include "metrics/collector.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sps::metrics {

double boundedSlowdown(const JobResult& job) {
  const double denom = static_cast<double>(
      std::max(job.runtime, kBoundedSlowdownThreshold));
  const double sd =
      static_cast<double>(job.waitTime() + job.runtime) / denom;
  return std::max(sd, 1.0);
}

double rawSlowdown(const JobResult& job) {
  return static_cast<double>(job.turnaround()) /
         static_cast<double>(job.runtime);
}

bool isWellEstimated(const JobResult& job) {
  return job.estimate <= 2 * job.runtime;
}

double RunStats::meanBoundedSlowdown() const {
  SPS_CHECK(!jobs.empty());
  double s = 0.0;
  for (const JobResult& j : jobs) s += boundedSlowdown(j);
  return s / static_cast<double>(jobs.size());
}

double RunStats::meanTurnaround() const {
  SPS_CHECK(!jobs.empty());
  double s = 0.0;
  for (const JobResult& j : jobs) s += static_cast<double>(j.turnaround());
  return s / static_cast<double>(jobs.size());
}

RunStats collect(const sim::Simulator& simulator,
                 const std::string& policyName) {
  RunStats stats;
  stats.policyName = policyName;
  stats.traceName = simulator.trace().name;
  stats.jobs.reserve(simulator.trace().jobs.size());
  double computeProcSeconds = 0.0;
  for (const workload::Job& j : simulator.trace().jobs) {
    const sim::JobExec& x = simulator.exec(j.id);
    // Cancelled jobs never completed any service; they carry no per-job
    // metrics row (slowdown/turnaround are undefined for withdrawn work).
    if (simulator.state(j.id) == sim::JobState::Cancelled) continue;
    SPS_CHECK_MSG(simulator.state(j.id) == sim::JobState::Finished,
                  "job " << j.id << " did not finish");
    JobResult r;
    r.id = j.id;
    r.submit = j.submit;
    r.runtime = j.runtime;
    r.estimate = j.estimate;
    r.procs = j.procs;
    r.firstStart = x.firstStart;
    r.finish = x.finish;
    r.suspendCount = x.suspendCount;
    r.overheadTotal = x.overheadTotal();
    SPS_CHECK_MSG(r.finish >= r.submit + r.runtime,
                  "job " << j.id << " finished before its runtime elapsed");
    stats.jobs.push_back(r);
    computeProcSeconds +=
        static_cast<double>(j.runtime) * static_cast<double>(j.procs);
  }
  stats.span = simulator.lastFinish() - simulator.firstSubmit();
  const double capacity =
      static_cast<double>(simulator.machine().totalProcs()) *
      static_cast<double>(std::max<Time>(stats.span, 1));
  stats.utilization = simulator.busyProcSeconds() / capacity;
  stats.usefulUtilization = computeProcSeconds / capacity;
  const Time window = simulator.lastSubmit() - simulator.firstSubmit();
  if (window > 0) {
    stats.steadyUtilization =
        simulator.busyProcSecondsAtLastSubmit() /
        (static_cast<double>(simulator.machine().totalProcs()) *
         static_cast<double>(window));
  }
  stats.suspensions = simulator.totalSuspensions();
  stats.eventsProcessed = simulator.eventsProcessed();
  stats.counters = simulator.counters();
  return stats;
}

}  // namespace sps::metrics
