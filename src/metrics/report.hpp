// Report rendering — turns aggregates into the paper's table shapes.
#pragma once

#include <string>
#include <vector>

#include "metrics/category_stats.hpp"
#include "metrics/collector.hpp"
#include "util/table.hpp"

namespace sps::metrics {

/// Which statistic of a CategoryAggregate a table shows.
enum class Metric {
  AvgSlowdown,
  WorstSlowdown,
  P95Slowdown,
  AvgTurnaround,
  WorstTurnaround,
  P95Turnaround,
};

[[nodiscard]] const char* metricName(Metric metric);
[[nodiscard]] double metricValue(const CategoryAggregate& agg, Metric metric);

/// A 4x4 grid in the layout of Tables IV/V: rows = run-time classes,
/// columns = width classes.
[[nodiscard]] Table categoryGrid16(const Category16Stats& stats,
                                   Metric metric, int precision = 2);

/// Job-count distribution grid (Tables II/III layout).
[[nodiscard]] Table distributionGrid16(
    const std::array<double, workload::kNumCategories16>& dist);

/// Side-by-side scheme comparison for one run-time class (one panel of
/// Figs. 7-34): rows = width classes, one column per scheme.
[[nodiscard]] Table schemeComparison(
    const std::vector<std::pair<std::string, Category16Stats>>& runs,
    workload::RunClass runClass, Metric metric, int precision = 2);

/// One-line human summary of a run.
[[nodiscard]] std::string summaryLine(const RunStats& stats);

}  // namespace sps::metrics
