#include "metrics/category_stats.hpp"

#include <limits>

namespace sps::metrics {

void CategoryAggregate::add(const JobResult& job) {
  const double sd = boundedSlowdown(job);
  const auto tat = static_cast<double>(job.turnaround());
  slowdown.add(sd);
  turnaround.add(tat);
  slowdownSamples.add(sd);
  turnaroundSamples.add(tat);
}

double CategoryAggregate::avgSlowdown() const {
  return slowdown.empty() ? 0.0 : slowdown.mean();
}
double CategoryAggregate::worstSlowdown() const {
  return slowdown.empty() ? 0.0 : slowdown.max();
}
double CategoryAggregate::avgTurnaround() const {
  return turnaround.empty() ? 0.0 : turnaround.mean();
}
double CategoryAggregate::worstTurnaround() const {
  return turnaround.empty() ? 0.0 : turnaround.max();
}
double CategoryAggregate::slowdownPercentile(double p) const {
  return slowdownSamples.empty() ? 0.0 : slowdownSamples.percentile(p);
}
double CategoryAggregate::turnaroundPercentile(double p) const {
  return turnaroundSamples.empty() ? 0.0 : turnaroundSamples.percentile(p);
}

bool passesFilter(const JobResult& job, EstimateFilter filter) {
  switch (filter) {
    case EstimateFilter::All: return true;
    case EstimateFilter::WellEstimated: return isWellEstimated(job);
    case EstimateFilter::BadlyEstimated: return !isWellEstimated(job);
  }
  return true;
}

Category16Stats categorize16(const std::vector<JobResult>& jobs,
                             EstimateFilter filter) {
  Category16Stats stats{};
  for (const JobResult& j : jobs) {
    if (!passesFilter(j, filter)) continue;
    stats[workload::category16(j.runtime, j.procs)].add(j);
  }
  return stats;
}

Category4Stats categorize4(const std::vector<JobResult>& jobs,
                           EstimateFilter filter) {
  Category4Stats stats{};
  for (const JobResult& j : jobs) {
    if (!passesFilter(j, filter)) continue;
    stats[workload::category4(j.runtime, j.procs)].add(j);
  }
  return stats;
}

CategoryAggregate overallAggregate(const std::vector<JobResult>& jobs,
                                   EstimateFilter filter) {
  CategoryAggregate agg;
  for (const JobResult& j : jobs)
    if (passesFilter(j, filter)) agg.add(j);
  return agg;
}

std::array<double, workload::kNumCategories16> distribution16(
    const std::vector<workload::Job>& jobs) {
  std::array<double, workload::kNumCategories16> dist{};
  if (jobs.empty()) return dist;
  for (const workload::Job& j : jobs)
    dist[workload::category16(j)] += 1.0;
  for (double& d : dist) d = 100.0 * d / static_cast<double>(jobs.size());
  return dist;
}

std::array<double, workload::kNumCategories4> distribution4(
    const std::vector<workload::Job>& jobs) {
  std::array<double, workload::kNumCategories4> dist{};
  if (jobs.empty()) return dist;
  for (const workload::Job& j : jobs)
    dist[workload::category4(j)] += 1.0;
  for (double& d : dist) d = 100.0 * d / static_cast<double>(jobs.size());
  return dist;
}

std::array<double, workload::kNumCategories16> tssLimits(
    const std::vector<JobResult>& referenceJobs, double multiplier) {
  std::array<Accumulator, workload::kNumCategories16> perCat{};
  for (const JobResult& j : referenceJobs)
    perCat[workload::category16(j.estimate, j.procs)].add(boundedSlowdown(j));
  std::array<double, workload::kNumCategories16> limits{};
  for (std::size_t c = 0; c < limits.size(); ++c) {
    limits[c] = perCat[c].empty()
                    ? std::numeric_limits<double>::infinity()
                    : multiplier * perCat[c].mean();
  }
  return limits;
}

}  // namespace sps::metrics
