#include "metrics/openmetrics.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"
#include "util/quantile_sketch.hpp"

namespace sps::metrics {

namespace {

/// Shortest round-trip double, same contract as the JSON writer.
void writeNumber(std::ostream& os, double number) {
  if (std::isnan(number)) {
    os << "NaN";
    return;
  }
  if (std::isinf(number)) {
    os << (number > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, number);
  os << std::string_view(buf, static_cast<std::size_t>(res.ptr - buf));
}

/// Label values escape backslash, double-quote, and line feed.
void writeLabelValue(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}

/// "sim.clockAdvances" -> "sim_clock_advances"-style folding is overkill;
/// OpenMetrics only needs a legal name, so separators become '_' and
/// anything outside [a-zA-Z0-9_] is dropped to '_'.
std::string sanitizeName(std::string_view dotted) {
  std::string out;
  out.reserve(dotted.size());
  for (const char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// The per-entry identity labels shared by every sample.
std::string baseLabels(const OpenMetricsEntry& entry) {
  std::ostringstream os;
  os << "run=\"" << entry.run << "\",policy=";
  writeLabelValue(os, entry.stats->policyName);
  os << ",trace=";
  writeLabelValue(os, entry.stats->traceName);
  os << ",label=";
  writeLabelValue(os,
                  entry.label.empty() ? entry.stats->policyName : entry.label);
  os << ",seed=\"" << entry.seed << "\"";
  return os.str();
}

struct Emitter {
  std::ostream& os;

  void family(std::string_view name, std::string_view type,
              std::string_view help) {
    os << "# TYPE " << name << " " << type << "\n";
    os << "# HELP " << name << " " << help << "\n";
  }

  void sample(std::string_view name, const std::string& labels, double value,
              std::string_view extraLabel = {}) {
    os << name << "{" << labels;
    if (!extraLabel.empty()) os << "," << extraLabel;
    os << "} ";
    writeNumber(os, value);
    os << "\n";
  }
};

}  // namespace

void writeOpenMetrics(std::ostream& os,
                      const std::vector<OpenMetricsEntry>& entries) {
  for (const OpenMetricsEntry& e : entries)
    SPS_CHECK_MSG(e.stats != nullptr, "OpenMetricsEntry without stats");
  Emitter out{os};

  std::vector<std::string> labels;
  labels.reserve(entries.size());
  for (const OpenMetricsEntry& e : entries) labels.push_back(baseLabels(e));

  // --- gauges: the RunStats scalars --------------------------------------
  struct Gauge {
    const char* name;
    const char* help;
    double (*get)(const OpenMetricsEntry&);
  };
  const Gauge gauges[] = {
      {"sps_run_jobs", "Jobs completed by the run",
       [](const OpenMetricsEntry& e) {
         return static_cast<double>(e.stats->jobs.size());
       }},
      {"sps_run_utilization",
       "Busy processor-seconds over procs x makespan, [0,1]",
       [](const OpenMetricsEntry& e) { return e.stats->utilization; }},
      {"sps_run_useful_utilization",
       "Pure compute utilization (overhead excluded), [0,1]",
       [](const OpenMetricsEntry& e) { return e.stats->usefulUtilization; }},
      {"sps_run_steady_utilization",
       "Utilization over the arrival window only, [0,1]",
       [](const OpenMetricsEntry& e) { return e.stats->steadyUtilization; }},
      {"sps_run_span_seconds",
       "First submission to last completion, sim-seconds",
       [](const OpenMetricsEntry& e) {
         return static_cast<double>(e.stats->span);
       }},
      {"sps_run_mean_bounded_slowdown",
       "Mean bounded slowdown (Eq. 1) over all jobs",
       [](const OpenMetricsEntry& e) {
         return e.stats->jobs.empty() ? 0.0 : e.stats->meanBoundedSlowdown();
       }},
      {"sps_run_mean_turnaround_seconds", "Mean turnaround time, sim-seconds",
       [](const OpenMetricsEntry& e) {
         return e.stats->jobs.empty() ? 0.0 : e.stats->meanTurnaround();
       }},
  };
  for (const Gauge& g : gauges) {
    out.family(g.name, "gauge", g.help);
    for (std::size_t i = 0; i < entries.size(); ++i)
      out.sample(g.name, labels[i], g.get(entries[i]));
  }
  bool anyWall = false;
  for (const OpenMetricsEntry& e : entries) anyWall |= e.wallSeconds > 0.0;
  if (anyWall) {
    out.family("sps_run_wall_seconds", "gauge",
               "Wall-clock time of the simulation");
    for (std::size_t i = 0; i < entries.size(); ++i)
      if (entries[i].wallSeconds > 0.0)
        out.sample("sps_run_wall_seconds", labels[i],
                   entries[i].wallSeconds);
  }

  // --- counters: the obs counter block, one family per slot --------------
  for (std::size_t c = 0; c < obs::kCounterCount; ++c) {
    const auto counter = static_cast<obs::Counter>(c);
    bool any = false;
    for (const OpenMetricsEntry& e : entries)
      any |= e.stats->counters.value(counter) != 0;
    if (!any) continue;
    const std::string family =
        "sps_" + sanitizeName(obs::counterName(counter));
    const std::string sampleName = family + "_total";
    out.family(family, "counter",
               std::string("obs counter ") + obs::counterName(counter));
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const std::uint64_t v = entries[i].stats->counters.value(counter);
      if (v != 0)
        out.sample(sampleName, labels[i], static_cast<double>(v));
    }
  }
  bool anyCategory = false;
  for (const OpenMetricsEntry& e : entries)
    for (const std::uint64_t v : e.stats->counters.suspensionsByCategory())
      anyCategory |= v != 0;
  if (anyCategory) {
    out.family("sps_sim_suspensions_by_category", "counter",
               "Suspensions per Table-I category (run class x width class)");
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& byCat = entries[i].stats->counters.suspensionsByCategory();
      for (std::size_t cat = 0; cat < byCat.size(); ++cat) {
        if (byCat[cat] == 0) continue;
        out.sample("sps_sim_suspensions_by_category_total", labels[i],
                   static_cast<double>(byCat[cat]),
                   "category=\"" + std::to_string(cat) + "\"");
      }
    }
  }

  // --- summaries: tail metrics through the quantile sketch ----------------
  struct Summary {
    const char* name;
    const char* help;
    double (*get)(const JobResult&);
  };
  const Summary summaries[] = {
      {"sps_run_bounded_slowdown",
       "Per-job bounded slowdown distribution (QuantileSketch estimate)",
       [](const JobResult& j) { return boundedSlowdown(j); }},
      {"sps_run_wait_seconds",
       "Per-job wait time distribution, sim-seconds (QuantileSketch "
       "estimate)",
       [](const JobResult& j) { return static_cast<double>(j.waitTime()); }},
  };
  constexpr double kQuantiles[] = {0.5, 0.9, 0.95, 0.99};
  for (const Summary& s : summaries) {
    bool anyJobs = false;
    for (const OpenMetricsEntry& e : entries) anyJobs |= !e.stats->jobs.empty();
    if (!anyJobs) continue;
    out.family(s.name, "summary", s.help);
    const std::string countName = std::string(s.name) + "_count";
    const std::string sumName = std::string(s.name) + "_sum";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const RunStats& stats = *entries[i].stats;
      if (stats.jobs.empty()) continue;
      util::QuantileSketch sketch;
      for (const JobResult& j : stats.jobs) sketch.add(s.get(j));
      for (const double q : kQuantiles) {
        std::ostringstream extra;
        extra << "quantile=\"";
        writeNumber(extra, q);
        extra << "\"";
        // The ostringstream already wrote the quotes; pass without them.
        std::string extraLabel = extra.str();
        out.sample(s.name, labels[i], sketch.quantile(q), extraLabel);
      }
      out.sample(countName, labels[i],
                 static_cast<double>(sketch.count()));
      out.sample(sumName, labels[i], sketch.sum());
    }
  }

  os << "# EOF\n";
}

std::string openMetrics(const std::vector<OpenMetricsEntry>& entries) {
  std::ostringstream os;
  writeOpenMetrics(os, entries);
  return os.str();
}

std::string openMetrics(const RunStats& stats) {
  OpenMetricsEntry entry;
  entry.stats = &stats;
  return openMetrics({entry});
}

// --- validator --------------------------------------------------------------

namespace {

/// Line-oriented strict checker for the subset of OpenMetrics 1.0 the
/// library emits (gauge/counter/summary families, no timestamps, no
/// exemplars). Mirrors the JsonValidator structure: no allocation beyond
/// the family table, first error wins.
class OpenMetricsValidator {
 public:
  explicit OpenMetricsValidator(std::string_view text) : text_(text) {}

  [[nodiscard]] bool run(std::string* error) {
    while (pos_ <= text_.size()) {
      if (sawEof_) {
        if (pos_ < text_.size()) return fail(error, "content after # EOF");
        break;
      }
      if (pos_ == text_.size())
        return fail(error, "missing terminal # EOF line");
      std::string_view line = nextLine();
      ++lineNo_;
      if (!checkLine(line)) return fail(error, message_);
    }
    if (!sawEof_) return fail(error, "missing terminal # EOF line");
    return true;
  }

 private:
  enum class FamilyType { Gauge, Counter, Summary };

  [[nodiscard]] bool fail(std::string* error, std::string_view message) const {
    if (error != nullptr) {
      std::ostringstream os;
      os << message << " at line " << lineNo_;
      *error = os.str();
    }
    return false;
  }

  bool err(std::string message) {
    message_ = std::move(message);
    return false;
  }

  std::string_view nextLine() {
    const std::size_t eol = text_.find('\n', pos_);
    if (eol == std::string_view::npos) {
      std::string_view line = text_.substr(pos_);
      pos_ = text_.size() + 1;  // consume the (absent) terminator
      return line;
    }
    std::string_view line = text_.substr(pos_, eol - pos_);
    pos_ = eol + 1;
    return line;
  }

  static bool validMetricName(std::string_view name) {
    if (name.empty()) return false;
    const auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
             c == ':';
    };
    if (!head(name[0])) return false;
    for (const char c : name.substr(1))
      if (!head(c) && !(c >= '0' && c <= '9')) return false;
    return true;
  }

  static bool validLabelName(std::string_view name) {
    if (name.empty()) return false;
    const auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    };
    if (!head(name[0])) return false;
    for (const char c : name.substr(1))
      if (!head(c) && !(c >= '0' && c <= '9')) return false;
    return true;
  }

  static bool validValue(std::string_view v) {
    if (v == "+Inf" || v == "-Inf" || v == "NaN") return true;
    if (v.empty()) return false;
    double parsed = 0.0;
    const auto res = std::from_chars(v.data(), v.data() + v.size(), parsed);
    return res.ec == std::errc{} && res.ptr == v.data() + v.size();
  }

  // `line` arrives with the leading "# " already stripped.
  bool checkComment(std::string_view line) {
    if (line == "EOF") {
      sawEof_ = true;
      return true;
    }
    const auto word = [&line]() -> std::string_view {
      const std::size_t sp = line.find(' ');
      std::string_view w = line.substr(0, sp);
      line.remove_prefix(sp == std::string_view::npos ? line.size() : sp + 1);
      return w;
    };
    const std::string_view keyword = word();
    if (keyword != "TYPE" && keyword != "HELP" && keyword != "UNIT")
      return err("unknown comment line (only TYPE/HELP/UNIT/EOF allowed)");
    const std::string_view name = word();
    if (!validMetricName(name)) return err("bad metric family name");
    if (keyword == "TYPE") {
      const std::string_view type = line;
      FamilyType parsed;
      if (type == "gauge") parsed = FamilyType::Gauge;
      else if (type == "counter") parsed = FamilyType::Counter;
      else if (type == "summary") parsed = FamilyType::Summary;
      else return err("unsupported family type '" + std::string(type) + "'");
      if (!declared_.insert(std::string(name)).second)
        return err("family '" + std::string(name) +
                   "' declared twice (interleaved families)");
      family_ = std::string(name);
      type_ = parsed;
      return true;
    }
    // HELP/UNIT must sit inside their family's block.
    if (name != family_)
      return err(std::string(keyword) + " for '" + std::string(name) +
                 "' outside its family block");
    return true;
  }

  bool checkLabels(std::string_view block) {
    // block is the text between '{' and '}'.
    std::unordered_set<std::string> seen;
    std::size_t i = 0;
    while (i < block.size()) {
      const std::size_t eq = block.find('=', i);
      if (eq == std::string_view::npos) return err("label without '='");
      const std::string_view name = block.substr(i, eq - i);
      if (!validLabelName(name)) return err("bad label name");
      if (!seen.insert(std::string(name)).second)
        return err("duplicate label '" + std::string(name) + "'");
      if (name == "quantile") sawQuantileLabel_ = true;
      i = eq + 1;
      if (i >= block.size() || block[i] != '"')
        return err("label value must be quoted");
      ++i;
      bool closed = false;
      std::string value;
      while (i < block.size()) {
        const char c = block[i];
        if (c == '\\') {
          if (i + 1 >= block.size()) return err("dangling escape");
          const char e = block[i + 1];
          if (e != '\\' && e != '"' && e != 'n') return err("bad escape");
          value.push_back(e == 'n' ? '\n' : e);
          i += 2;
          continue;
        }
        if (c == '"') {
          closed = true;
          ++i;
          break;
        }
        value.push_back(c);
        ++i;
      }
      if (!closed) return err("unterminated label value");
      if (sawQuantileLabel_ && name == "quantile") quantileValue_ = value;
      if (i == block.size()) break;
      if (block[i] != ',') return err("expected ',' between labels");
      ++i;
      if (i == block.size()) return err("trailing ',' in label set");
    }
    return true;
  }

  bool checkSample(std::string_view line) {
    if (family_.empty()) return err("sample before any # TYPE");
    std::size_t nameEnd = line.find_first_of("{ ");
    if (nameEnd == std::string_view::npos)
      return err("sample line without value");
    const std::string_view name = line.substr(0, nameEnd);
    if (!validMetricName(name)) return err("bad sample metric name");
    sawQuantileLabel_ = false;
    quantileValue_.clear();
    std::size_t rest = nameEnd;
    if (line[nameEnd] == '{') {
      const std::size_t close = line.find('}', nameEnd);
      if (close == std::string_view::npos) return err("unterminated '{'");
      if (!checkLabels(line.substr(nameEnd + 1, close - nameEnd - 1)))
        return false;
      rest = close + 1;
    }
    if (rest >= line.size() || line[rest] != ' ')
      return err("expected ' ' before the sample value");
    const std::string_view value = line.substr(rest + 1);
    if (value.find(' ') != std::string_view::npos)
      return err("unexpected content after the sample value");
    if (!validValue(value)) return err("bad sample value");

    // Family-membership rules per declared type.
    const auto suffixed = [&name, this](const char* suffix) {
      return std::string(name) == family_ + suffix;
    };
    switch (type_) {
      case FamilyType::Gauge:
        if (name != family_)
          return err("gauge sample name must equal the family name");
        break;
      case FamilyType::Counter:
        if (!suffixed("_total"))
          return err("counter sample must be <family>_total");
        break;
      case FamilyType::Summary:
        if (name == family_) {
          if (!sawQuantileLabel_)
            return err("summary base sample needs a quantile label");
          double q = 0.0;
          const auto res = std::from_chars(
              quantileValue_.data(),
              quantileValue_.data() + quantileValue_.size(), q);
          if (res.ec != std::errc{} ||
              res.ptr != quantileValue_.data() + quantileValue_.size() ||
              q < 0.0 || q > 1.0)
            return err("quantile label must be a float in [0,1]");
        } else if (!suffixed("_count") && !suffixed("_sum")) {
          return err("summary sample must be the family, _count, or _sum");
        }
        break;
    }
    return true;
  }

  bool checkLine(std::string_view line) {
    if (line.empty()) return err("empty line");
    if (line[0] == '#') {
      if (line.size() < 2 || line[1] != ' ')
        return err("'#' must start a '# ' comment line");
      return checkComment(line.substr(2));
    }
    return checkSample(line);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t lineNo_ = 0;
  bool sawEof_ = false;
  std::string family_;
  FamilyType type_ = FamilyType::Gauge;
  std::unordered_set<std::string> declared_;
  bool sawQuantileLabel_ = false;
  std::string quantileValue_;
  std::string message_;
};

}  // namespace

bool validateOpenMetrics(std::string_view text, std::string* error) {
  return OpenMetricsValidator(text).run(error);
}

}  // namespace sps::metrics
