// Per-category aggregation — the lens through which every result in the
// paper is reported (Sections III-VI).
#pragma once

#include <array>
#include <vector>

#include "metrics/job_record.hpp"
#include "util/stats.hpp"
#include "workload/category.hpp"

namespace sps::metrics {

/// Aggregate of one job category: average, worst case, and tail percentiles
/// of both paper metrics (bounded slowdown and turnaround time). The paper
/// reports averages and worst cases; percentiles are provided because a
/// single pathological job dominates a worst-case cell, and a production
/// report would quote p95/p99 instead.
struct CategoryAggregate {
  Accumulator slowdown;
  Accumulator turnaround;
  Samples slowdownSamples;
  Samples turnaroundSamples;

  [[nodiscard]] std::size_t count() const { return slowdown.count(); }
  [[nodiscard]] bool empty() const { return slowdown.empty(); }
  /// Average / worst-case / percentile accessors returning 0 for empty
  /// categories so sparse cells print as 0 (the paper leaves them blank).
  [[nodiscard]] double avgSlowdown() const;
  [[nodiscard]] double worstSlowdown() const;
  [[nodiscard]] double avgTurnaround() const;
  [[nodiscard]] double worstTurnaround() const;
  [[nodiscard]] double slowdownPercentile(double p) const;
  [[nodiscard]] double turnaroundPercentile(double p) const;

  void add(const JobResult& job);
};

using Category16Stats =
    std::array<CategoryAggregate, workload::kNumCategories16>;
using Category4Stats = std::array<CategoryAggregate, workload::kNumCategories4>;

/// Estimate-quality filter for the Section V split.
enum class EstimateFilter { All, WellEstimated, BadlyEstimated };

[[nodiscard]] bool passesFilter(const JobResult& job, EstimateFilter filter);

/// Aggregate per 16-way category (classification by *actual* runtime,
/// Section III), optionally restricted to well/badly estimated jobs.
[[nodiscard]] Category16Stats categorize16(
    const std::vector<JobResult>& jobs,
    EstimateFilter filter = EstimateFilter::All);

/// Aggregate per 4-way category (Table VI; the load-variation study).
[[nodiscard]] Category4Stats categorize4(
    const std::vector<JobResult>& jobs,
    EstimateFilter filter = EstimateFilter::All);

/// Whole-trace aggregate.
[[nodiscard]] CategoryAggregate overallAggregate(
    const std::vector<JobResult>& jobs,
    EstimateFilter filter = EstimateFilter::All);

/// Job-count distribution over the 16 categories as percentages of the
/// total (Tables II and III).
[[nodiscard]] std::array<double, workload::kNumCategories16>
distribution16(const std::vector<workload::Job>& jobs);

/// Job-count distribution over the 4 categories (Tables VII and VIII).
[[nodiscard]] std::array<double, workload::kNumCategories4> distribution4(
    const std::vector<workload::Job>& jobs);

/// TSS limits: 1.5 x the per-category average slowdown of a reference
/// (non-preemptive) run, as prescribed in Section IV-E. Classification by
/// user estimate — the signal a live scheduler has. Empty categories get an
/// infinite limit (no protection needed — nothing to calibrate against).
[[nodiscard]] std::array<double, workload::kNumCategories16> tssLimits(
    const std::vector<JobResult>& referenceJobs, double multiplier = 1.5);

}  // namespace sps::metrics
