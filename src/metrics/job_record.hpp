// JobResult — the per-job outcome record the evaluation metrics are built
// from, plus the paper's two metrics (Section II-B).
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace sps::metrics {

struct JobResult {
  JobId id = kInvalidJob;
  Time submit = 0;
  Time runtime = 0;
  Time estimate = 0;
  std::uint32_t procs = 1;
  Time firstStart = kNoTime;
  Time finish = kNoTime;
  std::uint32_t suspendCount = 0;
  /// Seconds spent in suspension write-out + resume read-back phases.
  Time overheadTotal = 0;

  /// Turnaround time: completion - submission (includes suspended periods).
  [[nodiscard]] Time turnaround() const { return finish - submit; }

  /// Total time not spent computing: turnaround - runtime. For preempted
  /// jobs this folds in suspended time and overhead.
  [[nodiscard]] Time waitTime() const { return turnaround() - runtime; }
};

/// Threshold below which a job's runtime is clamped for the slowdown metric,
/// "to limit the influence of very short jobs" (Eq. 1).
inline constexpr Time kBoundedSlowdownThreshold = 10;

/// Bounded slowdown, Eq. 1 of the paper:
///   max( (wait + runtime) / max(runtime, 10), 1 ).
[[nodiscard]] double boundedSlowdown(const JobResult& job);

/// Unbounded slowdown (turnaround / runtime), for diagnostics.
[[nodiscard]] double rawSlowdown(const JobResult& job);

/// Well-estimated split of Section V: estimate no more than twice the
/// actual runtime.
[[nodiscard]] bool isWellEstimated(const JobResult& job);

}  // namespace sps::metrics
