// JSON serialization of run metrics — the machine-readable sibling of the
// util::Table renderers, used by the bench harness and sps_sim --json.
//
// The emitted numbers round-trip exactly (shortest-form std::to_chars for
// doubles, plain decimal for integers), so two RunStats are bit-for-bit
// identical iff their JSON strings are byte-identical. The determinism tests
// lean on that property.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/collector.hpp"

namespace sps::metrics {

struct JsonOptions {
  /// Emit the per-job results array (can be large: one record per job).
  bool includeJobs = true;
  /// Spaces per nesting level; 0 = compact single-line output.
  int indent = 2;
};

/// Minimal streaming JSON writer: tracks nesting and comma placement so
/// callers only state structure. Strings are escaped per RFC 8259; doubles
/// use shortest round-trip form; non-finite doubles become null.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Object key; must be followed by a value or begin*().
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    key(name);
    return value(v);
  }

 private:
  void separate();  ///< comma/newline/indent bookkeeping before an element
  void newlineIndent();

  std::ostream& os_;
  int indent_;
  int depth_ = 0;
  bool firstInScope_ = true;
  bool pendingKey_ = false;
};

void writeJobResultJson(JsonWriter& w, const JobResult& job);
/// Counter block as one object: non-zero scalar counters keyed by
/// obs::counterName (enum order), plus a "suspensionsByCategory" array when
/// any Table-I slot is non-zero. Zero counters are omitted so compact runs
/// stay compact.
void writeCountersJson(JsonWriter& w, const obs::Counters& counters);
/// Timeline block: {"stride":s,"samples":n,<series arrays>}. Sample k of
/// every series is at sim time s * (k + 1); the time axis is implicit.
void writeTimelineJson(JsonWriter& w, const obs::TimelineData& timeline);
void writeRunStatsJson(JsonWriter& w, const RunStats& stats,
                       const JsonOptions& options = {});

void writeRunStatsJson(std::ostream& os, const RunStats& stats,
                       const JsonOptions& options = {});
[[nodiscard]] std::string runStatsJson(const RunStats& stats,
                                       const JsonOptions& options = {});

/// Strict RFC 8259 syntax check over a complete document (one value, no
/// trailing content). Used by tests and tools to verify emitted output —
/// including chrome://tracing files — without an external JSON dependency.
/// On failure, `error` (when non-null) receives a message with the byte
/// offset of the first problem.
[[nodiscard]] bool validateJson(std::string_view text,
                                std::string* error = nullptr);

}  // namespace sps::metrics
