// Invariant-checking macros used across the library.
//
// SPS_CHECK is always active (release and debug) — simulator invariants are
// cheap relative to event processing and catching a broken schedule early is
// worth far more than the branch. SPS_DCHECK compiles out in NDEBUG builds
// and guards the O(n) structural audits.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sps {

/// Thrown when a library invariant is violated. Indicates a bug in the
/// library (or a policy driving it), never a user-input problem.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on malformed user input (bad trace file, invalid config values).
class InputError : public std::runtime_error {
 public:
  explicit InputError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "SPS_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace sps

#define SPS_CHECK(expr)                                                 \
  do {                                                                  \
    if (!(expr)) [[unlikely]]                                           \
      ::sps::detail::checkFailed(#expr, __FILE__, __LINE__, {});        \
  } while (false)

#define SPS_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      std::ostringstream sps_check_os_;                                 \
      sps_check_os_ << msg;                                             \
      ::sps::detail::checkFailed(#expr, __FILE__, __LINE__,             \
                                 sps_check_os_.str());                  \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define SPS_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define SPS_DCHECK(expr) SPS_CHECK(expr)
#endif
