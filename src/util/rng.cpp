#include "util/rng.hpp"

#include <cmath>

namespace sps {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SPS_CHECK_MSG(lo < hi, "uniform(" << lo << ", " << hi << ")");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  SPS_CHECK_MSG(lo <= hi, "uniformInt(" << lo << ", " << hi << ")");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Lemire-style rejection for unbiased sampling.
  const std::uint64_t threshold = (~range + 1) % range;  // 2^64 mod range
  std::uint64_t r;
  do {
    r = next();
  } while (r < threshold);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::logUniform(double lo, double hi) {
  SPS_CHECK_MSG(lo > 0.0 && lo < hi, "logUniform(" << lo << ", " << hi << ")");
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

std::int64_t Rng::logUniformInt(std::int64_t lo, std::int64_t hi) {
  SPS_CHECK_MSG(lo > 0 && lo <= hi, "logUniformInt(" << lo << ", " << hi << ")");
  if (lo == hi) return lo;
  const double v = logUniform(static_cast<double>(lo),
                              static_cast<double>(hi) + 1.0);
  auto r = static_cast<std::int64_t>(v);
  if (r < lo) r = lo;
  if (r > hi) r = hi;
  return r;
}

double Rng::boundedPareto(double lo, double hi, double alpha) {
  SPS_CHECK_MSG(lo > 0.0 && lo < hi, "boundedPareto(" << lo << "," << hi
                                                      << ")");
  SPS_CHECK_MSG(alpha >= 1.0, "boundedPareto alpha=" << alpha << " < 1");
  if (alpha == 1.0) return logUniform(lo, hi);
  // Inverse CDF of the truncated power law with density ~ x^-alpha.
  const double oneMinus = 1.0 - alpha;
  const double a = std::pow(lo, oneMinus);
  const double b = std::pow(hi, oneMinus);
  const double u = uniform01();
  return std::pow(a + u * (b - a), 1.0 / oneMinus);
}

std::int64_t Rng::boundedParetoInt(std::int64_t lo, std::int64_t hi,
                                   double alpha) {
  SPS_CHECK_MSG(lo > 0 && lo <= hi,
                "boundedParetoInt(" << lo << "," << hi << ")");
  if (lo == hi) return lo;
  const double v = boundedPareto(static_cast<double>(lo),
                                 static_cast<double>(hi) + 1.0, alpha);
  auto r = static_cast<std::int64_t>(v);
  if (r < lo) r = lo;
  if (r > hi) r = hi;
  return r;
}

double Rng::exponential(double mean) {
  SPS_CHECK_MSG(mean > 0.0, "exponential(mean=" << mean << ")");
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

std::size_t Rng::weightedIndex(const double* weights, std::size_t n) {
  SPS_CHECK(n > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    SPS_CHECK_MSG(weights[i] >= 0.0, "negative weight at " << i);
    total += weights[i];
  }
  SPS_CHECK_MSG(total > 0.0, "weights sum to zero");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < n; ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return n - 1;  // floating-point edge: land on the last positive weight
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace sps
