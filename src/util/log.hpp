// Minimal leveled logger. The simulator is a library first: logging defaults
// to Warning and goes to stderr, so benchmark/table output on stdout stays
// machine-readable.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace sps {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warning = 3, Error = 4, Off = 5 };

/// Global log threshold. Thread-safe: the threshold is atomic and message
/// emission is serialized, so simulations running concurrently on a
/// core::Runner can log without racing (each Simulator instance itself
/// remains single-threaded).
void setLogLevel(LogLevel level);
[[nodiscard]] LogLevel logLevel();

[[nodiscard]] const char* logLevelName(LogLevel level);

namespace detail {
void emitLog(LogLevel level, const std::string& message);

/// The process-wide output serialization point. Log emission and the
/// obs::TraceSink implementations all lock this one mutex, so `--trace`
/// events and `-v` log lines never interleave mid-line even when Runner
/// workers write concurrently. Lock it around any other multi-part stream
/// write that must stay atomic against logging.
[[nodiscard]] std::mutex& ioMutex();
}

}  // namespace sps

#define SPS_LOG(level, msg)                                  \
  do {                                                       \
    if (static_cast<int>(level) >=                           \
        static_cast<int>(::sps::logLevel())) {               \
      std::ostringstream sps_log_os_;                        \
      sps_log_os_ << msg;                                    \
      ::sps::detail::emitLog(level, sps_log_os_.str());      \
    }                                                        \
  } while (false)

#define SPS_LOG_TRACE(msg) SPS_LOG(::sps::LogLevel::Trace, msg)
#define SPS_LOG_DEBUG(msg) SPS_LOG(::sps::LogLevel::Debug, msg)
#define SPS_LOG_INFO(msg) SPS_LOG(::sps::LogLevel::Info, msg)
#define SPS_LOG_WARN(msg) SPS_LOG(::sps::LogLevel::Warning, msg)
#define SPS_LOG_ERROR(msg) SPS_LOG(::sps::LogLevel::Error, msg)
