// Fundamental scalar types shared by every subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace sps {

/// Simulation time in whole seconds since the start of the trace.
/// Supercomputer traces are second-granular; 64 bits holds ~292 Gyears.
using Time = std::int64_t;

/// Sentinel for "no time" / "not yet".
inline constexpr Time kNoTime = std::numeric_limits<Time>::min();

/// Largest representable time, used as "infinitely far in the future".
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

/// Dense job identifier: index into the trace's job vector.
using JobId = std::uint32_t;

inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();

/// Seconds in common units, for readable constants.
inline constexpr Time kMinute = 60;
inline constexpr Time kHour = 3600;
inline constexpr Time kDay = 86400;

}  // namespace sps
