#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace sps {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SPS_CHECK_MSG(!header_.empty(), "table requires at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  SPS_CHECK_MSG(!rows_.empty(), "cell() before row()");
  SPS_CHECK_MSG(rows_.back().size() < header_.size(),
                "row has more cells than header columns");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(formatFixed(value, precision));
}

Table& Table::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

void Table::printAscii(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emitRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << v;
      if (c + 1 < header_.size()) os << "  ";
    }
    os << '\n';
  };

  emitRow(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emitRow(r);
}

namespace {
std::string csvEscape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (char ch : v) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::printCsv(std::ostream& os) const {
  auto emitRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << csvEscape(cells[c]);
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emitRow(header_);
  for (const auto& r : rows_) emitRow(r);
}

std::string Table::toAscii() const {
  std::ostringstream os;
  printAscii(os);
  return os.str();
}

std::string Table::toCsv() const {
  std::ostringstream os;
  printCsv(os);
  return os.str();
}

std::string formatFixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string formatDuration(std::int64_t seconds) {
  std::ostringstream os;
  const bool neg = seconds < 0;
  if (neg) {
    os << '-';
    seconds = -seconds;
  }
  const std::int64_t h = seconds / 3600;
  const std::int64_t m = (seconds % 3600) / 60;
  const std::int64_t s = seconds % 60;
  if (h > 0) os << h << "h ";
  if (h > 0 || m > 0)
    os << std::setw(h > 0 ? 2 : 1) << std::setfill('0') << m << "m ";
  os << std::setw((h > 0 || m > 0) ? 2 : 1) << std::setfill('0') << s << 's';
  return os.str();
}

}  // namespace sps
