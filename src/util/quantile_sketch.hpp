// QuantileSketch — mergeable streaming quantile estimation (t-digest style).
//
// The exact `Samples` store keeps every observation, which is the right
// default for a finished run. A sketch is the tool for the two places exact
// storage does not fit: online percentiles *during* a run (slowdown/wait
// tails while the simulation is still going) and cross-thread aggregation,
// where each core::Runner worker sketches locally and the results merge
// without sharing the underlying samples.
//
// The implementation is the merging-buffer t-digest: observations collect in
// a buffer and periodically compact into a sorted list of (mean, weight)
// centroids whose sizes are bounded by the k1 scale function
//
//   k(q) = delta / (2*pi) * asin(2q - 1)
//
// so centroids are tiny near q=0 and q=1 (accurate tails) and wide in the
// middle. Compaction is deterministic — same insertion sequence, same
// centroids — which keeps sketch output usable inside the bit-reproducible
// metrics pipeline. Accuracy against the exact store is enforced by the
// telemetry test suite (p50/p95/p99 within 1% relative error on the tier-1
// workloads; see tests/test_telemetry.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sps::util {

class QuantileSketch {
 public:
  /// Compression delta: upper bound on the number of retained centroids and
  /// the accuracy knob (bigger = more accurate, more memory). The default is
  /// sized so tail quantiles on the paper's workloads land well within 1%
  /// relative error while the sketch stays a few kilobytes.
  static constexpr std::size_t kDefaultCompression = 400;

  explicit QuantileSketch(std::size_t compression = kDefaultCompression);

  /// Add one observation with the given weight (default 1).
  void add(double x, double weight = 1.0);

  /// Fold another sketch into this one. merge(a, b) approximates the sketch
  /// of the concatenated streams; the compressions need not match.
  void merge(const QuantileSketch& other);

  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Number of add() observations folded in (merges included).
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double totalWeight() const { return weight_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Estimated value at cumulative weight fraction q in [0, 1]; clamped to
  /// the observed min/max at the extremes. Requires a non-empty sketch.
  [[nodiscard]] double quantile(double q) const;
  /// percentile(p) == quantile(p / 100), p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  /// Retained centroids after compaction (diagnostics; <= compression + a
  /// small constant).
  [[nodiscard]] std::size_t centroidCount() const;

 private:
  struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  void compress() const;  ///< fold buffer_ into centroids_ (logically const)

  std::size_t compression_;
  /// Compacted centroids, sorted by mean. Mutable with buffer_ so read
  /// queries can compact lazily.
  mutable std::vector<Centroid> centroids_;
  mutable std::vector<Centroid> buffer_;  ///< pending, unsorted
  std::uint64_t count_ = 0;
  double weight_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sps::util
