// Fixed-size thread pool — the execution substrate of core::Runner.
//
// Deliberately minimal: a FIFO task queue drained by N worker threads, no
// work stealing, no priorities. Simulations are coarse-grained (milliseconds
// to seconds each), so a single locked queue is nowhere near contended and
// keeps the scheduling order easy to reason about. Results/exceptions travel
// through std::future, so a caller that waits on futures in submission order
// observes failures deterministically regardless of completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace sps::util {

class ThreadPool {
 public:
  /// threads == 0 means one worker per hardware thread (at least one).
  explicit ThreadPool(std::size_t threads = 0);

  /// Blocks until every queued task has run, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// max(1, std::thread::hardware_concurrency()) — what `threads == 0`
  /// resolves to.
  [[nodiscard]] static std::size_t defaultThreadCount();

  /// Enqueue a nullary callable. The returned future carries the result, or
  /// rethrows whatever the task threw. Submitting to a destroyed pool is a
  /// caller bug (InvariantError).
  template <typename F>
  [[nodiscard]] auto submit(F&& task)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> task);
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable available_;
  bool stopping_ = false;
};

}  // namespace sps::util
