// Streaming and exact statistics used by the metrics layer.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace sps {

/// Streaming accumulator: count / mean / min / max / variance in O(1) space
/// (Welford's algorithm for numerically stable variance).
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Mean of the added samples. Requires at least one sample.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

  /// Merge another accumulator into this one (parallel Welford merge).
  void merge(const Accumulator& other);

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact sample store with percentile queries. Used where the evaluation
/// needs worst-case and tail statistics; job counts are small enough
/// (O(10^4–10^5)) that keeping every sample is cheap.
class Samples {
 public:
  void add(double x) { values_.push_back(x); sortedValid_ = false; }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, p in [0, 100]. Requires non-empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Samples in submission order, always — percentile/min/max queries work
  /// on a private sorted copy and never reorder this vector, so exports that
  /// walk values() are deterministic regardless of query history.
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;  ///< submission order, never reordered
  mutable std::vector<double> sorted_;  ///< lazily rebuilt sorted copy
  mutable bool sortedValid_ = false;
  void ensureSorted() const;
};

}  // namespace sps
