// ASCII / CSV table rendering used by the bench harnesses to print the
// paper's tables and figure series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sps {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with a fixed precision. Render as aligned ASCII (for terminals) or CSV
/// (for plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Start a new row. Subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::int64_t value);
  Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
  Table& cell(std::size_t value) {
    return cell(static_cast<std::int64_t>(value));
  }

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }
  [[nodiscard]] std::size_t columnCount() const { return header_.size(); }

  /// Render column-aligned ASCII with a header underline.
  void printAscii(std::ostream& os) const;
  /// Render RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void printCsv(std::ostream& os) const;

  [[nodiscard]] std::string toAscii() const;
  [[nodiscard]] std::string toCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (no trailing-zero trimming).
[[nodiscard]] std::string formatFixed(double value, int precision);

/// Human-readable duration, e.g. "2h 03m 04s".
[[nodiscard]] std::string formatDuration(std::int64_t seconds);

}  // namespace sps
