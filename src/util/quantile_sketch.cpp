#include "util/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sps::util {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// k1 scale function: maps cumulative fraction q to "k units". A centroid
/// may absorb weight as long as it spans at most one k unit, which bounds
/// centroid width to ~ q(1-q) — fine near the tails, coarse in the middle.
double kScale(double q, double compression) {
  q = std::clamp(q, 0.0, 1.0);
  return static_cast<double>(compression) / (2.0 * kPi) *
         std::asin(2.0 * q - 1.0);
}

}  // namespace

QuantileSketch::QuantileSketch(std::size_t compression)
    : compression_(std::max<std::size_t>(compression, 20)) {
  centroids_.reserve(compression_ + 8);
}

void QuantileSketch::add(double x, double weight) {
  SPS_CHECK_MSG(std::isfinite(x), "QuantileSketch::add of non-finite value");
  SPS_CHECK_MSG(weight > 0.0, "QuantileSketch::add weight=" << weight);
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  weight_ += weight;
  sum_ += x * weight;
  buffer_.push_back({x, weight});
  // Compact once the buffer rivals the centroid list: amortizes the sort
  // while keeping peak memory O(compression).
  if (buffer_.size() >= 8 * compression_) compress();
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  other.compress();
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  weight_ += other.weight_;
  sum_ += other.sum_;
  buffer_.insert(buffer_.end(), other.centroids_.begin(),
                 other.centroids_.end());
  compress();
}

void QuantileSketch::compress() const {
  if (buffer_.empty()) return;
  buffer_.insert(buffer_.end(), centroids_.begin(), centroids_.end());
  std::sort(buffer_.begin(), buffer_.end(),
            [](const Centroid& a, const Centroid& b) {
              return a.mean < b.mean;
            });
  centroids_.clear();
  double total = 0.0;
  for (const Centroid& c : buffer_) total += c.weight;
  double before = 0.0;  // weight strictly left of the centroid being grown
  Centroid cur = buffer_.front();
  for (std::size_t i = 1; i < buffer_.size(); ++i) {
    const Centroid& next = buffer_[i];
    const double qLeft = before / total;
    const double qRight = (before + cur.weight + next.weight) / total;
    if (kScale(qRight, static_cast<double>(compression_)) -
            kScale(qLeft, static_cast<double>(compression_)) <=
        1.0) {
      // Absorb: weighted-mean update keeps the centroid at the weight
      // center of everything it swallowed.
      const double w = cur.weight + next.weight;
      cur.mean += (next.mean - cur.mean) * next.weight / w;
      cur.weight = w;
    } else {
      centroids_.push_back(cur);
      before += cur.weight;
      cur = next;
    }
  }
  centroids_.push_back(cur);
  buffer_.clear();
}

double QuantileSketch::mean() const {
  SPS_CHECK_MSG(count_ > 0, "mean() of empty sketch");
  return sum_ / weight_;
}

double QuantileSketch::min() const {
  SPS_CHECK_MSG(count_ > 0, "min() of empty sketch");
  return min_;
}

double QuantileSketch::max() const {
  SPS_CHECK_MSG(count_ > 0, "max() of empty sketch");
  return max_;
}

std::size_t QuantileSketch::centroidCount() const {
  compress();
  return centroids_.size();
}

double QuantileSketch::quantile(double q) const {
  SPS_CHECK_MSG(count_ > 0, "quantile() of empty sketch");
  SPS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q=" << q);
  compress();
  if (centroids_.size() == 1) {
    // Single centroid: interpolate across [min, max] by weight fraction.
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    return min_ + (max_ - min_) * q;
  }
  const double target = q * weight_;
  // Piecewise-linear CDF through the centroid weight-centers, pinned to the
  // exact min at cumulative weight 0 and exact max at full weight.
  double prevPos = 0.0;
  double prevVal = min_;
  double cum = 0.0;
  for (const Centroid& c : centroids_) {
    const double pos = cum + c.weight / 2.0;
    if (target <= pos) {
      const double span = pos - prevPos;
      if (span <= 0.0) return c.mean;
      const double frac = (target - prevPos) / span;
      return prevVal + (c.mean - prevVal) * frac;
    }
    prevPos = pos;
    prevVal = c.mean;
    cum += c.weight;
  }
  const double span = weight_ - prevPos;
  if (span <= 0.0) return max_;
  const double frac = (target - prevPos) / span;
  return std::min(prevVal + (max_ - prevVal) * frac, max_);
}

double QuantileSketch::percentile(double p) const {
  SPS_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p=" << p);
  return quantile(p / 100.0);
}

}  // namespace sps::util
