#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sps {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  SPS_CHECK_MSG(count_ > 0, "mean() of empty accumulator");
  return mean_;
}

double Accumulator::min() const {
  SPS_CHECK_MSG(count_ > 0, "min() of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  SPS_CHECK_MSG(count_ > 0, "max() of empty accumulator");
  return max_;
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::ensureSorted() const {
  if (!sortedValid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
  }
}

double Samples::mean() const {
  SPS_CHECK_MSG(!values_.empty(), "mean() of empty samples");
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::min() const {
  SPS_CHECK_MSG(!values_.empty(), "min() of empty samples");
  ensureSorted();
  return sorted_.front();
}

double Samples::max() const {
  SPS_CHECK_MSG(!values_.empty(), "max() of empty samples");
  ensureSorted();
  return sorted_.back();
}

double Samples::percentile(double p) const {
  SPS_CHECK_MSG(!values_.empty(), "percentile() of empty samples");
  SPS_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p=" << p);
  ensureSorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace sps
