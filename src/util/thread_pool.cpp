#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sps::util {

std::size_t ThreadPool::defaultThreadCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = defaultThreadCount();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SPS_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
    tasks_.push(std::move(task));
  }
  available_.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      // Drain the queue before honouring shutdown so every submitted task's
      // future is eventually satisfied.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions are captured by the packaged_task
  }
}

}  // namespace sps::util
