#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace sps {

namespace {
// Atomic + serialized emission: simulations run concurrently under
// core::Runner, and the logger (plus any trace sinks, which share the same
// mutex via detail::ioMutex) is the one piece of state they all share.
std::atomic<LogLevel> g_level{LogLevel::Warning};
}  // namespace

void setLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warning: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

namespace detail {
std::mutex& ioMutex() {
  static std::mutex mutex;
  return mutex;
}

void emitLog(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(ioMutex());
  std::cerr << '[' << logLevelName(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace sps
