#include "util/log.hpp"

#include <iostream>

namespace sps {

namespace {
LogLevel g_level = LogLevel::Warning;
}

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warning: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

namespace detail {
void emitLog(LogLevel level, const std::string& message) {
  std::cerr << '[' << logLevelName(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace sps
