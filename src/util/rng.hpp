// Deterministic random number generation.
//
// The simulator must be bit-reproducible across runs and platforms, so we
// ship our own xoshiro256** generator (public-domain algorithm by Blackman &
// Vigna) seeded through SplitMix64 instead of relying on implementation-
// defined std::default_random_engine behaviour. Distribution helpers avoid
// std::uniform_*_distribution for the same reason: libstdc++ and libc++
// produce different streams.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace sps {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive, unbiased (rejection sampling).
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Log-uniform double in [lo, hi): uniform in log-space. Requires 0 < lo < hi.
  double logUniform(double lo, double hi);

  /// Log-uniform integer in [lo, hi] inclusive. Requires 0 < lo <= hi.
  std::int64_t logUniformInt(std::int64_t lo, std::int64_t hi);

  /// Bounded Pareto (power law) on [lo, hi): density proportional to
  /// x^-alpha. alpha == 1 degenerates to logUniform. Requires 0 < lo < hi,
  /// alpha >= 1. Larger alpha biases harder toward lo.
  double boundedPareto(double lo, double hi, double alpha);

  /// Integer bounded Pareto in [lo, hi] inclusive.
  std::int64_t boundedParetoInt(std::int64_t lo, std::int64_t hi,
                                double alpha);

  /// Exponential with the given mean (inverse rate). Requires mean > 0.
  double exponential(double mean);

  /// Standard normal via Box–Muller (deterministic two-call form).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Pick an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative and sum to > 0.
  std::size_t weightedIndex(const double* weights, std::size_t n);

  /// Fork an independent stream (seeded from this stream's output). Used to
  /// give each job-attribute sampler its own stream so adding a sampler does
  /// not perturb the others.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace sps
