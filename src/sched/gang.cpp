#include "sched/gang.hpp"

#include <algorithm>
#include <sstream>

#include "sim/simulator.hpp"

namespace sps::sched {

GangScheduler::GangScheduler(GangConfig config) : config_(config) {
  SPS_CHECK_MSG(config_.slotQuantum > 0, "gang quantum must be positive");
  SPS_CHECK_MSG(config_.maxSlots >= 1, "gang needs at least one slot");
}

std::string GangScheduler::name() const {
  std::ostringstream os;
  os << "Gang(slots=" << config_.maxSlots << ")";
  return os.str();
}

std::size_t GangScheduler::findSlotFor(const sim::Simulator& s,
                                       std::uint32_t procs) const {
  for (std::size_t k = 0; k < slots_.size(); ++k)
    if (slots_[k].load + procs <= s.machine().totalProcs()) return k;
  return slots_.size();
}

bool GangScheduler::placeJob(sim::Simulator& simulator, JobId job) {
  const std::uint32_t procs = simulator.job(job).procs;
  std::size_t k = findSlotFor(simulator, procs);
  if (k == slots_.size()) {
    if (slots_.size() >= config_.maxSlots) return false;
    slots_.emplace_back();
  }
  slots_[k].jobs.push_back(job);
  slots_[k].load += procs;
  // A job landing in the active row starts right away (unless a switch is
  // mid-drain; launchActiveSlot runs again when the switch completes).
  if (k == active_ && !switching_) launchActiveSlot(simulator);
  if (slots_.size() > 1) armQuantum(simulator);
  return true;
}

void GangScheduler::launchActiveSlot(sim::Simulator& simulator) {
  SPS_CHECK(active_ < slots_.size());
  // Resume previously-run members first: they must reclaim their exact
  // processors before first-time starts can grab anything.
  for (JobId id : slots_[active_].jobs) {
    if (simulator.state(id) == sim::JobState::Suspended)
      simulator.resumeJob(id);
  }
  for (JobId id : slots_[active_].jobs) {
    const auto& x = simulator.exec(id);
    if (simulator.state(id) == sim::JobState::Queued && x.suspendCount == 0)
      simulator.startJob(id);
  }
}

void GangScheduler::armQuantum(sim::Simulator& simulator) {
  // Do not reset a pending quantum (arrivals must not postpone the switch);
  // the epoch counter invalidates timers orphaned by slot-count changes.
  if (quantumArmed_) return;
  quantumArmed_ = true;
  ++quantumEpoch_;
  simulator.scheduleTimer(simulator.now() + config_.slotQuantum,
                          quantumEpoch_);
}

void GangScheduler::onTimer(sim::Simulator& simulator, std::uint64_t tag) {
  if (tag != quantumEpoch_) return;  // superseded
  quantumArmed_ = false;
  if (switching_ || slots_.size() <= 1) return;
  beginSwitch(simulator);
}

void GangScheduler::beginSwitch(sim::Simulator& simulator) {
  SPS_CHECK(!switching_);
  SPS_CHECK(slots_.size() > 1);
  switching_ = true;
  targetSlot_ = (active_ + 1) % slots_.size();
  drainsOutstanding_ = 0;
  // Suspend the whole active row. With an overhead model the write-outs
  // drain asynchronously; the target row activates once the last one ends.
  const std::vector<JobId> members = slots_[active_].jobs;
  for (JobId id : members) {
    if (simulator.state(id) != sim::JobState::Running) continue;
    simulator.suspendJob(id);
    if (simulator.state(id) == sim::JobState::Suspending)
      ++drainsOutstanding_;
  }
  finishSwitchIfDrained(simulator);
}

void GangScheduler::finishSwitchIfDrained(sim::Simulator& simulator) {
  if (!switching_ || drainsOutstanding_ != 0) return;
  switching_ = false;
  active_ = targetSlot_;
  ++switches_;
  launchActiveSlot(simulator);
  if (slots_.size() > 1) armQuantum(simulator);
}

void GangScheduler::onSuspendDrained(sim::Simulator& simulator,
                                     JobId /*job*/) {
  SPS_CHECK(drainsOutstanding_ > 0);
  --drainsOutstanding_;
  finishSwitchIfDrained(simulator);
}

void GangScheduler::onJobArrival(sim::Simulator& simulator, JobId job) {
  if (!placeJob(simulator, job)) pending_.push_back(job);
}

void GangScheduler::removeJob(sim::Simulator& simulator, JobId job) {
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    auto& jobs = slots_[k].jobs;
    auto it = std::find(jobs.begin(), jobs.end(), job);
    if (it == jobs.end()) continue;
    jobs.erase(it);
    slots_[k].load -= simulator.job(job).procs;
    if (jobs.empty()) {
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(k));
      if (slots_.empty()) {
        active_ = 0;
      } else {
        if (switching_ && targetSlot_ >= k && targetSlot_ > 0) --targetSlot_;
        if (active_ >= k && active_ > 0) --active_;
        if (switching_) targetSlot_ %= slots_.size();
        active_ %= slots_.size();
      }
    }
    return;
  }
  SPS_CHECK_MSG(false, "completed job " << job << " not found in any slot");
}

void GangScheduler::drainPendingQueue(sim::Simulator& simulator) {
  while (!pending_.empty()) {
    const JobId job = pending_.front();
    if (!placeJob(simulator, job)) break;  // matrix still full
    pending_.pop_front();
  }
}

void GangScheduler::onJobCompletion(sim::Simulator& simulator, JobId job) {
  removeJob(simulator, job);
  drainPendingQueue(simulator);
  // Capacity freed inside the active row: late members may now start.
  if (!switching_ && !slots_.empty()) launchActiveSlot(simulator);
}

void GangScheduler::onSimulationEnd(sim::Simulator& /*simulator*/) {
  SPS_CHECK_MSG(pending_.empty(), "gang overflow queue not drained");
  SPS_CHECK_MSG(slots_.empty(), "gang matrix not empty at end of run");
  SPS_CHECK_MSG(!switching_, "gang switch left incomplete");
}

}  // namespace sps::sched
