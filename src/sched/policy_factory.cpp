#include "sched/policy_factory.hpp"

#include <sstream>
#include <stdexcept>

#include "sched/fcfs.hpp"
#include "util/check.hpp"

namespace sps::sched {

namespace {

/// "name" / "name:param" split.
std::pair<std::string, std::string> splitToken(const std::string& token) {
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos) return {token, ""};
  return {token.substr(0, colon), token.substr(colon + 1)};
}

double parseFactor(const std::string& token, const std::string& param) {
  std::istringstream is(param);
  double value = 0.0;
  if (!(is >> value) || !is.eof() || value <= 0.0)
    throw std::invalid_argument("bad parameter in policy token '" + token +
                                "'");
  return value;
}

}  // namespace

const char* policyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Fcfs: return "FCFS";
    case PolicyKind::Conservative: return "Conservative";
    case PolicyKind::Easy: return "EASY";
    case PolicyKind::SelectiveSuspension: return "SelectiveSuspension";
    case PolicyKind::ImmediateService: return "ImmediateService";
    case PolicyKind::Gang: return "Gang";
    case PolicyKind::DepthBackfill: return "DepthBackfill";
  }
  return "?";
}

std::unique_ptr<sim::SchedulingPolicy> makePolicy(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicyKind::Fcfs:
      return std::make_unique<FcfsScheduler>();
    case PolicyKind::Conservative:
      return std::make_unique<ConservativeBackfill>(spec.conservative);
    case PolicyKind::Easy:
      return std::make_unique<EasyBackfill>(spec.easy);
    case PolicyKind::SelectiveSuspension:
      return std::make_unique<SelectiveSuspension>(spec.ss);
    case PolicyKind::ImmediateService:
      return std::make_unique<ImmediateService>(spec.is);
    case PolicyKind::Gang:
      return std::make_unique<GangScheduler>(spec.gang);
    case PolicyKind::DepthBackfill:
      return std::make_unique<DepthBackfill>(spec.depth);
  }
  SPS_CHECK_MSG(false, "unknown policy kind");
  return nullptr;  // unreachable
}

std::string policyLabel(const PolicySpec& spec) {
  if (!spec.label.empty()) return spec.label;
  return makePolicy(spec)->name();
}

PolicySpec specFromToken(const std::string& token) {
  const auto [name, param] = splitToken(token);
  PolicySpec spec;
  spec.label = token;
  if (name == "conservative") {
    spec.kind = PolicyKind::Conservative;
  } else if (name == "easy") {
    spec.kind = PolicyKind::Easy;
  } else if (name == "sjf") {
    spec.kind = PolicyKind::Easy;
    spec.easy.order = QueueOrder::ShortestFirst;
  } else if (name == "fcfs") {
    spec.kind = PolicyKind::Fcfs;
  } else if (name == "gang") {
    spec.kind = PolicyKind::Gang;
  } else if (name == "is") {
    spec.kind = PolicyKind::ImmediateService;
  } else if (name == "depth") {
    spec.kind = PolicyKind::DepthBackfill;
    if (param == "inf")
      spec.depth.depth = kUnlimitedDepth;
    else
      spec.depth.depth = static_cast<std::size_t>(parseFactor(token, param));
  } else if (name == "ss") {
    spec.kind = PolicyKind::SelectiveSuspension;
    spec.ss.suspensionFactor = parseFactor(token, param);
  } else if (name == "tss") {
    // Per-category limits are supplied by the caller (calibrated against
    // the target trace); the token only fixes the suspension factor.
    spec.kind = PolicyKind::SelectiveSuspension;
    spec.ss.suspensionFactor = parseFactor(token, param);
  } else if (name == "tss-online") {
    spec.kind = PolicyKind::SelectiveSuspension;
    spec.ss.tssOnlineMultiplier = parseFactor(token, param);
  } else {
    throw std::invalid_argument("unknown policy token: '" + token + "'");
  }
  return spec;
}

std::vector<std::string> knownPolicyTokens() {
  return {"fcfs",    "conservative", "easy", "sjf",
          "depth:2", "depth:inf",    "ss:2", "ss:1.5",
          "tss:2",   "tss-online:2", "is",   "gang"};
}

PolicySpec withKernelMode(PolicySpec spec, kernel::KernelMode mode) {
  spec.conservative.kernelMode = mode;
  spec.easy.kernelMode = mode;
  spec.depth.kernelMode = mode;
  spec.ss.kernelMode = mode;
  spec.is.kernelMode = mode;
  return spec;
}

}  // namespace sps::sched
