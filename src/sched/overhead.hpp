// Suspension/restart overhead models (Section V-A of the paper).
#pragma once

#include <cstdint>

#include "sim/policy.hpp"
#include "workload/job.hpp"

namespace sps::sched {

/// The paper's model: every node has a commodity local disk; each processor
/// writes (reads) its share of the job's memory image at a fixed bandwidth.
/// Overhead is therefore memoryMb / bandwidth, independent of job width —
/// all processors drain in parallel. The paper's configuration: per-processor
/// image uniform in [100 MB, 1 GB] (sampled by the workload generator into
/// Job::memoryMb) and 2 MB/s per processor (8 MB/s disk shared by a quad).
class DiskSwapOverhead final : public sim::OverheadPolicy {
 public:
  /// The trace must outlive this object.
  DiskSwapOverhead(const workload::Trace& trace, double mbPerSecond = 2.0);

  [[nodiscard]] Time suspendOverhead(JobId job) const override;
  [[nodiscard]] Time resumeOverhead(JobId job) const override;

  [[nodiscard]] double bandwidthMbPerSecond() const { return mbPerSecond_; }

 private:
  [[nodiscard]] Time transferSeconds(JobId job) const;

  const workload::Trace& trace_;
  double mbPerSecond_;
};

/// Fixed cost per suspension/resumption, for ablations and tests.
class FixedOverhead final : public sim::OverheadPolicy {
 public:
  FixedOverhead(Time suspendSeconds, Time resumeSeconds)
      : suspend_(suspendSeconds), resume_(resumeSeconds) {}

  [[nodiscard]] Time suspendOverhead(JobId) const override { return suspend_; }
  [[nodiscard]] Time resumeOverhead(JobId) const override { return resume_; }

 private:
  Time suspend_;
  Time resume_;
};

}  // namespace sps::sched
