#include "sched/overhead.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sps::sched {

DiskSwapOverhead::DiskSwapOverhead(const workload::Trace& trace,
                                   double mbPerSecond)
    : trace_(trace), mbPerSecond_(mbPerSecond) {
  SPS_CHECK_MSG(mbPerSecond > 0.0, "bandwidth must be positive");
}

Time DiskSwapOverhead::transferSeconds(JobId job) const {
  SPS_CHECK(job < trace_.jobs.size());
  const double mb = static_cast<double>(trace_.jobs[job].memoryMb);
  return static_cast<Time>(std::ceil(mb / mbPerSecond_));
}

Time DiskSwapOverhead::suspendOverhead(JobId job) const {
  return transferSeconds(job);
}

Time DiskSwapOverhead::resumeOverhead(JobId job) const {
  return transferSeconds(job);
}

}  // namespace sps::sched
