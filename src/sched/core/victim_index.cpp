#include "sched/core/victim_index.hpp"

#include <algorithm>
#include <limits>

#include "obs/counters.hpp"
#include "sim/simulator.hpp"
#include "workload/category.hpp"

namespace sps::sched::kernel {

namespace {

/// Strict total order (frozen xfactor, id) — the reference pass's
/// runningAsc sort order.
bool entryLess(const VictimIndex::Entry& a, const VictimIndex::Entry& b) {
  if (a.xfactor != b.xfactor) return a.xfactor < b.xfactor;
  return a.job < b.job;
}

}  // namespace

void VictimIndex::attach(sim::Simulator& simulator) {
  for (std::vector<Entry>& vec : cats_) vec.clear();
  prefixDirty_.fill(true);
  serial_ = 0;
  count_ = 0;
  owner_.assign(simulator.machine().totalProcs(), kInvalidJob);
  catOf_.assign(simulator.trace().jobs.size(), 0);
  const bool firstAttach = attached_ == nullptr;
  attached_ = &simulator;
  if (firstAttach) {
    // One registration per index lifetime: on re-attach the observer is
    // already in place (stale simulators are filtered by `attached_`).
    simulator.observers().onStateChange(
        [this](const sim::Simulator& s, JobId id, sim::JobState from,
               sim::JobState to) {
          if (&s != attached_) return;
          if (to == sim::JobState::Running)
            insert(s, id);
          else if (from == sim::JobState::Running)
            remove(s, id);
        });
  }
}

void VictimIndex::insert(const sim::Simulator& s, JobId id) {
  // Streamed submits grow the job table after attach.
  if (catOf_.size() <= id) catOf_.resize(s.trace().jobs.size(), 0);
  const workload::Job& j = s.job(id);
  // Scheduler-visible categorization (estimate, not actual runtime) — the
  // same classification the TSS limits are keyed by.
  const std::size_t cat = workload::category16(j.estimate, j.procs);
  Entry e;
  e.xfactor = s.xfactor(id);  // frozen for the whole running segment
  e.job = id;
  e.procs = j.procs;
  e.serial = serial_++;
  std::vector<Entry>& vec = cats_[cat];
  vec.insert(std::lower_bound(vec.begin(), vec.end(), e, entryLess), e);
  prefixDirty_[cat] = true;
  catOf_[id] = static_cast<std::uint8_t>(cat);
  ++count_;
  s.exec(id).procs.forEach([this, id](std::uint32_t p) { owner_[p] = id; });
  s.counters().inc(obs::Counter::VictimInserts);
}

void VictimIndex::remove(const sim::Simulator& s, JobId id) {
  const std::size_t cat = catOf_[id];
  std::vector<Entry>& vec = cats_[cat];
  // The frozen priority is bit-identical to the insertion value (wait is
  // frozen while running and the formula is the same), so the entry is
  // found by binary search, not a scan.
  Entry probe;
  probe.xfactor = s.xfactor(id);
  probe.job = id;
  const auto it = std::lower_bound(vec.begin(), vec.end(), probe, entryLess);
  SPS_CHECK_MSG(it != vec.end() && it->job == id,
                "victim index missing running job " << id);
  vec.erase(it);
  prefixDirty_[cat] = true;
  --count_;
  s.exec(id).procs.forEach([this](std::uint32_t p) {
    owner_[p] = kInvalidJob;
  });
  s.counters().inc(obs::Counter::VictimRemoves);
}

double VictimIndex::minPriority() const {
  double best = std::numeric_limits<double>::infinity();
  for (const std::vector<Entry>& vec : cats_)
    if (!vec.empty()) best = std::min(best, vec.front().xfactor);
  return best;
}

std::size_t VictimIndex::sfBoundary(std::size_t cat, double preemptorPriority,
                                    double sf) const {
  const std::vector<Entry>& vec = cats_[cat];
  attached_->counters().inc(obs::Counter::VictimRangeQueries);
  const auto it = std::partition_point(
      vec.begin(), vec.end(), [preemptorPriority, sf](const Entry& e) {
        // Eligible prefix: exactly the entries the reference's per-victim
        // SF test `preemptorPriority < sf * xfactor` would NOT reject.
        return !(preemptorPriority < sf * e.xfactor);
      });
  return static_cast<std::size_t>(it - vec.begin());
}

std::size_t VictimIndex::limitBoundary(std::size_t cat, double limit) const {
  const std::vector<Entry>& vec = cats_[cat];
  attached_->counters().inc(obs::Counter::VictimRangeQueries);
  const auto it = std::partition_point(
      vec.begin(), vec.end(),
      [limit](const Entry& e) { return e.xfactor < limit; });
  return static_cast<std::size_t>(it - vec.begin());
}

std::uint32_t VictimIndex::gainPrefix(std::size_t cat, std::size_t end) const {
  const std::vector<Entry>& vec = cats_[cat];
  std::vector<std::uint32_t>& pre = prefix_[cat];
  if (prefixDirty_[cat]) {
    pre.resize(vec.size() + 1);
    pre[0] = 0;
    for (std::size_t i = 0; i < vec.size(); ++i)
      pre[i + 1] = pre[i] + vec[i].procs;
    prefixDirty_[cat] = false;
  }
  return pre[end];
}

}  // namespace sps::sched::kernel
