// PriorityIndex — maintained priority ordering of the idle jobs (queued +
// fully-suspended), the third piece of the scheduling kernel.
//
// The preemptive policies (SS/TSS, IS) walk the idle set in priority order
// at every decision point — and a single event typically triggers several
// such walks (resume pass, backfill pass, preemption pass). The seed code
// re-gathered and re-sorted the set for each walk. Priorities are a pure
// function of the clock and per-job transition history, both of which are
// summarized by Simulator::epoch(), so the sorted order is cached and
// reused until the epoch moves.
//
// Comparators are strict total orders (every tie broken by job id), so the
// sort result is independent of the input order — which is what makes the
// simulator's unordered (swap-and-pop) job lists safe to consume here.
//
// idle() returns a snapshot by value: callers mutate the simulator while
// walking the list (starting and suspending jobs), and must re-check each
// job's state at use, exactly as the seed loops did.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/core/reservation_ledger.hpp"
#include "util/types.hpp"

namespace sps::sim {
class Simulator;
}

namespace sps::sched::kernel {

/// Priority order over idle jobs.
enum class IndexOrder : std::uint8_t {
  /// Expansion factor descending (the SS suspension priority, Eq. 2); ties
  /// by submit time, then id.
  XFactorDesc,
  /// Submission order (IS dispatch); ties by id.
  SubmitAsc,
};

class PriorityIndex {
 public:
  explicit PriorityIndex(IndexOrder order,
                         KernelMode mode = KernelMode::Incremental)
      : order_(order), mode_(mode) {}

  [[nodiscard]] KernelMode mode() const { return mode_; }

  /// Invalidate the cache — call from onSimulationStart (a fresh simulator
  /// could otherwise alias a previous run's address and epoch).
  void reset() {
    valid_ = false;
    sim_ = nullptr;
  }

  /// The idle jobs — Queued plus fully-Suspended (never Suspending) —
  /// sorted by the index order. Cached on Simulator::epoch() in incremental
  /// mode; recomputed per call (the seed behaviour) in rebuild mode.
  [[nodiscard]] std::vector<JobId> idle(const sim::Simulator& simulator);

 private:
  void recompute(const sim::Simulator& simulator);

  IndexOrder order_;
  KernelMode mode_;
  bool valid_ = false;
  std::uint64_t epoch_ = 0;
  const sim::Simulator* sim_ = nullptr;
  std::vector<JobId> idle_;
  /// Per-job priority scratch, indexed by JobId — computed once per rebuild
  /// instead of inside the sort comparator.
  std::vector<double> priority_;
  /// Membership-reconciliation scratch for the seeded (incremental) path:
  /// the freshly gathered idle set, plus two generation-stamp arrays used
  /// to diff it against the previous epoch's order without clearing.
  std::vector<JobId> gather_;
  std::vector<std::uint64_t> memberStamp_;
  std::vector<std::uint64_t> previousStamp_;
  std::uint64_t generation_ = 0;
};

}  // namespace sps::sched::kernel
