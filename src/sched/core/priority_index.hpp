// PriorityIndex — maintained priority ordering of the idle jobs (queued +
// fully-suspended), the third piece of the scheduling kernel.
//
// The preemptive policies (SS/TSS, IS) walk the idle set in priority order
// at every decision point — and a single event typically triggers several
// such walks (resume pass, backfill pass, preemption pass). The seed code
// re-gathered and re-sorted the set for each walk. Priorities are a pure
// function of the clock and per-job transition history, both of which are
// summarized by Simulator::epoch(), so the sorted order is cached and
// reused until the epoch moves.
//
// Comparators are strict total orders (every tie broken by job id), so the
// sort result is independent of the input order — which is what makes the
// simulator's unordered (swap-and-pop) job lists safe to consume here.
//
// idle() returns a snapshot by value: callers mutate the simulator while
// walking the list (starting and suspending jobs), and must re-check each
// job's state at use, exactly as the seed loops did.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/core/reservation_ledger.hpp"
#include "util/types.hpp"

namespace sps::sim {
class Simulator;
enum class JobState : std::uint8_t;
}  // namespace sps::sim

namespace sps::sched::kernel {

/// Priority order over idle jobs.
enum class IndexOrder : std::uint8_t {
  /// Expansion factor descending (the SS suspension priority, Eq. 2); ties
  /// by submit time, then id.
  XFactorDesc,
  /// Submission order (IS dispatch); ties by id.
  SubmitAsc,
};

/// Which lifecycle states a walk over the index yields.
enum class IdleFilter : std::uint8_t {
  Queued = 1,
  Suspended = 2,
  Idle = 3,  ///< Queued | Suspended
};

/// Borrowing, skip-on-stale view over the index's maintained order
/// (PriorityIndex::walk). The order is a snapshot, but the *membership
/// test is live*: each step re-reads the job's current state and skips
/// entries that no longer match the filter — so jobs started, resumed, or
/// suspended mid-walk (the walker's own actions) disappear from the walk
/// at the index layer instead of needing a state re-check at every call
/// site. Valid until the next walk()/idle()/reset() on the owning index;
/// no copy of the order is made.
class IdleWalk {
 public:
  class iterator {
   public:
    using value_type = JobId;
    [[nodiscard]] JobId operator*() const { return (*walk_->order_)[pos_]; }
    iterator& operator++() {
      ++pos_;
      settle();
      return *this;
    }
    [[nodiscard]] bool operator==(const iterator& o) const {
      return pos_ == o.pos_;
    }

   private:
    friend class IdleWalk;
    iterator(const IdleWalk* walk, std::size_t pos)
        : walk_(walk), pos_(pos) {
      settle();
    }
    /// Advance past entries whose current state fails the filter.
    void settle();

    const IdleWalk* walk_;
    std::size_t pos_;
  };

  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, order_->size()}; }

 private:
  friend class PriorityIndex;
  IdleWalk(const std::vector<JobId>& order, const sim::Simulator& simulator,
           IdleFilter filter)
      : order_(&order), sim_(&simulator), filter_(filter) {}

  const std::vector<JobId>* order_;
  const sim::Simulator* sim_;
  IdleFilter filter_;
};

class PriorityIndex {
 public:
  explicit PriorityIndex(IndexOrder order,
                         KernelMode mode = KernelMode::Incremental)
      : order_(order), mode_(mode) {}

  [[nodiscard]] KernelMode mode() const { return mode_; }

  /// Invalidate the cache — call from onSimulationStart (a fresh simulator
  /// could otherwise alias a previous run's address and epoch).
  void reset() {
    valid_ = false;
    sim_ = nullptr;
    pending_.clear();
    orderValidUntil_ = kNoTime;
  }

  /// Maintained mode: bind to a simulator and register a state-change
  /// observer that keeps idle *membership* current (the way VictimIndex
  /// follows the running set), so walks serve the cached order without a
  /// per-epoch rebuild. The *order* is revalidated against a crossing
  /// horizon: idle priorities all rise with the clock but at per-job rates
  /// (slope 1/estimate), so the earliest time any two adjacent entries can
  /// swap is computable at sort time — until then a fresh sort would
  /// reproduce the cached order bit-identically, and the order stays valid
  /// across arbitrarily many transitions that walks' live state filter
  /// already hides. Call from onSimulationStart (incremental mode only);
  /// replaces reset().
  void attach(sim::Simulator& simulator);

  /// The idle jobs — Queued plus fully-Suspended (never Suspending) —
  /// sorted by the index order. Cached on Simulator::epoch() in incremental
  /// mode; recomputed per call (the seed behaviour) in rebuild mode.
  [[nodiscard]] std::vector<JobId> idle(const sim::Simulator& simulator);

  /// Like idle(), but returns a borrowing skip-on-stale view instead of a
  /// by-value snapshot: no copy, and jobs whose state changes mid-walk are
  /// filtered by the iterator itself. The view is invalidated by the next
  /// idle()/walk()/reset() call on this index.
  [[nodiscard]] IdleWalk walk(const sim::Simulator& simulator,
                              IdleFilter filter = IdleFilter::Idle);

 private:
  void recompute(const sim::Simulator& simulator);
  /// Precompute priorities for the current members and sort idle_ under the
  /// index comparator (the shared tail of recompute / refreshMaintained).
  void sortCurrent(const sim::Simulator& simulator, bool seeded);
  /// Maintained-mode cache check: full refresh on horizon expiry, pending
  /// insertion otherwise. Serves idle() and walk().
  void ensureMaintained(const sim::Simulator& simulator);
  /// Full rebuild: seeded recompute plus a fresh adjacent-pair crossing
  /// horizon.
  void refreshMaintained(const sim::Simulator& simulator);
  /// Drop tombstoned entries (jobs no longer idle — walks were already
  /// skipping them) and binary-insert the pending arrivals/drains, folding
  /// each new adjacency's crossing into the running horizon minimum.
  void compactAndApply(const sim::Simulator& simulator);
  /// Fold the crossing time of adjacent entries idle_[i], idle_[i+1]
  /// (current priorities xa >= xb) into orderValidUntil_.
  void pairHorizon(const sim::Simulator& simulator, std::size_t i,
                   double xa, double xb);

  IndexOrder order_;
  KernelMode mode_;
  bool valid_ = false;
  std::uint64_t epoch_ = 0;
  const sim::Simulator* sim_ = nullptr;
  std::vector<JobId> idle_;
  /// Per-job priority scratch, indexed by JobId — computed once per rebuild
  /// instead of inside the sort comparator.
  std::vector<double> priority_;
  /// Membership-reconciliation scratch for the seeded (incremental) path:
  /// the freshly gathered idle set, plus two generation-stamp arrays used
  /// to diff it against the previous epoch's order without clearing.
  std::vector<JobId> gather_;
  std::vector<std::uint64_t> memberStamp_;
  std::vector<std::uint64_t> previousStamp_;
  std::uint64_t generation_ = 0;
  /// Maintained-mode state. The cached order is fresh-sort-consistent
  /// while now < orderValidUntil_ (exclusive); pending_ holds jobs that
  /// entered the idle set since the last walk and await placement. Entries
  /// whose jobs left the idle set are tombstones: walks' live state filter
  /// hides them, and they are compacted away before the next placement.
  bool maintained_ = false;
  const sim::Simulator* attached_ = nullptr;
  Time orderValidUntil_ = kNoTime;
  std::vector<JobId> pending_;
  std::vector<std::uint8_t> inPending_;  ///< compaction scratch, per job
};

}  // namespace sps::sched::kernel
