// BackfillEngine — the backfill scan shared by every profile-driven policy
// (conservative, EASY, depth-K, and the non-preemptive start paths of the
// preemptive schedulers).
//
// The engine owns no schedule state; it is a set of decision queries over a
// ReservationLedger that the owning policy has refreshed for the current
// event. Three rules, previously duplicated per policy:
//
//   * anchor rule — the earliest profile slot holding a job for its full
//     estimate, plus the "start now" test (anchor == now AND the job
//     physically fits in the currently-free processors; the profile alone
//     is not enough, because a completion pending in the same timestamp
//     batch makes the profile optimistic — the deferred-start edge
//     documented in conservative.cpp);
//   * shadow rule — EASY's head reservation: the shadow time and the extra
//     processors left beside the head once it starts. Computed under a
//     zombie overlay: running jobs whose estimated end has already passed
//     (completion pending this batch) are pinned busy over [now, now+1), as
//     the seed EASY's max(end, now+1) clamp did;
//   * backfill rule — a candidate may start iff it fits now and either ends
//     by the shadow time or needs no more than the extra processors.
#pragma once

#include <cstdint>

#include "sched/core/reservation_ledger.hpp"
#include "util/types.hpp"

namespace sps::sim {
class Simulator;
}

namespace sps::sched::kernel {

class BackfillEngine {
 public:
  explicit BackfillEngine(ReservationLedger& ledger) : ledger_(ledger) {}

  struct Anchor {
    Time start;
    /// anchor == now() and the job fits in the free processors — safe to
    /// call Simulator::startJob immediately.
    bool startNow;
  };

  struct Shadow {
    Time time;            ///< earliest guaranteed start of the head job
    std::uint32_t extra;  ///< processors free beside the head at that time
  };

  /// Earliest anchor for `job` against the ledger's profile (which the
  /// caller must have refreshed for this event).
  [[nodiscard]] Anchor anchorOf(const sim::Simulator& simulator,
                                JobId job) const;

  /// Shadow time and extra processors for a head job that does NOT fit now.
  /// Applies the zombie overlay for the duration of the query only.
  [[nodiscard]] Shadow shadowOf(const sim::Simulator& simulator, JobId head);

  /// EASY backfill admission for `job` under the head's shadow.
  [[nodiscard]] bool canBackfill(const sim::Simulator& simulator, JobId job,
                                 const Shadow& shadow) const;

 private:
  ReservationLedger& ledger_;
};

/// True when `job`'s just-fired completion left the availability function
/// unchanged for every t >= now(): the job ran one uninterrupted segment
/// and its belief interval [firstStart, firstStart + estimate) had fully
/// elapsed when the completion fired (an on-time finish). Reservation-
/// holding policies use this to take a provably-equivalent fast path on
/// completion — re-anchoring any reservation in guarantee order against an
/// unchanged function returns its current start (an earlier candidate
/// window fails strictly before the reservation's own start, where no
/// later-guarantee interval reaches), so full compression reduces to
/// starting the reservations whose guarantee is exactly now.
[[nodiscard]] bool completionPreservesProfile(const sim::Simulator& simulator,
                                              JobId job);

}  // namespace sps::sched::kernel
