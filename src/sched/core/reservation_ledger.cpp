#include "sched/core/reservation_ledger.hpp"

#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace sps::sched::kernel {

namespace {
/// The scheduler's belief about a running segment: it occupies the machine
/// for the full user estimate from segment start. Uniform across fresh and
/// resumed segments (both frozen at segment start, so Incremental and
/// Rebuild agree exactly); the profile-driven policies are non-preemptive,
/// so the resumed case is never exercised.
Time beliefEnd(const sim::Simulator& simulator, JobId id) {
  return simulator.exec(id).segStart + simulator.job(id).estimate;
}
}  // namespace

void ReservationLedger::attach(sim::Simulator& simulator) {
  totalProcs_ = simulator.machine().totalProcs();
  profile_ = AvailabilityProfile(simulator.now(), totalProcs_);
  running_.clear();
  byEnd_.clear();
  reservations_.clear();
  const bool firstAttach = attached_ == nullptr;
  attached_ = &simulator;
  if (firstAttach) {
    // One registration per ledger lifetime: on re-attach the observer is
    // already in place (stale simulators are filtered by `attached_`).
    // Registered in BOTH modes — between two refresh() calls the profile
    // must track jobs the policy starts mid-decision (the seed code's
    // manual addBusy-after-startJob), and that bookkeeping is identical
    // either way; the modes differ only in what refresh() itself does.
    simulator.observers().onStateChange(
        [this](const sim::Simulator& s, JobId id, sim::JobState from,
               sim::JobState to) {
          if (&s == attached_) onTransition(s, id, from, to);
        });
  }
}

void ReservationLedger::refresh(const sim::Simulator& simulator) {
  SPS_CHECK_MSG(attached_ == &simulator, "ledger not attached to this run");
  if (mode_ == KernelMode::Incremental) {
    simulator.counters().inc(obs::Counter::LedgerShiftOrigins);
    SPS_TRACE(&simulator.recorder(),
              obs::instant("kernel", "ledger.shiftOrigin", simulator.now()));
    profile_.shiftOrigin(simulator.now());
  } else {
    simulator.counters().inc(obs::Counter::LedgerRebuilds);
    SPS_TRACE(&simulator.recorder(),
              obs::instant("kernel", "ledger.rebuild", simulator.now()));
    rebuild(simulator);
  }
}

void ReservationLedger::rebuild(const sim::Simulator& simulator) {
  profile_ = AvailabilityProfile(simulator.now(), totalProcs_);
  running_.clear();
  byEnd_.clear();
  for (const JobId id : simulator.runningJobs()) {
    const Time start = simulator.exec(id).segStart;
    const Time end = beliefEnd(simulator, id);
    const std::uint32_t procs = simulator.job(id).procs;
    profile_.addBusy(start, end, procs);
    const auto endIt = byEnd_.emplace(end, procs);
    running_.emplace(id, RunningEntry{start, end, procs, endIt});
  }
  for (const auto& [id, entry] : reservations_) {
    (void)id;
    profile_.addBusy(entry.start, entry.end, entry.procs);
  }
}

void ReservationLedger::onTransition(const sim::Simulator& simulator, JobId id,
                                     sim::JobState from, sim::JobState to) {
  if (to == sim::JobState::Running) {
    const Time start = simulator.exec(id).segStart;
    const Time end = beliefEnd(simulator, id);
    const std::uint32_t procs = simulator.job(id).procs;
    simulator.counters().inc(obs::Counter::LedgerAddBusy);
    SPS_TRACE(&simulator.recorder(),
              obs::instant("kernel", "ledger.addBusy", simulator.now(), id)
                  .arg("end", end)
                  .arg("procs", procs));
    profile_.addBusy(start, end, procs);
    const auto endIt = byEnd_.emplace(end, procs);
    const bool inserted =
        running_.emplace(id, RunningEntry{start, end, procs, endIt}).second;
    SPS_CHECK_MSG(inserted, "job " << id << " started while already in ledger");
  } else if (from == sim::JobState::Running) {
    const auto it = running_.find(id);
    SPS_CHECK_MSG(it != running_.end(),
                  "job " << id << " left Running without a ledger entry");
    // removeBusy clamps to the current origin; any part of the belief that
    // already elapsed (or a zombie interval entirely in the past) is gone
    // from the profile and needs no return.
    simulator.counters().inc(obs::Counter::LedgerRemoveBusy);
    SPS_TRACE(&simulator.recorder(),
              obs::instant("kernel", "ledger.removeBusy", simulator.now(), id));
    profile_.removeBusy(it->second.start, it->second.end, it->second.procs);
    byEnd_.erase(it->second.endIt);
    running_.erase(it);
  }
}

void ReservationLedger::addReservation(JobId job, Time start, Time duration,
                                       std::uint32_t procs) {
  SPS_CHECK_MSG(reservations_.count(job) == 0,
                "job " << job << " already holds a reservation");
  const Time end = start + duration;
  if (attached_ != nullptr) {
    attached_->counters().inc(obs::Counter::LedgerReservationsAdded);
    SPS_TRACE(&attached_->recorder(),
              obs::instant("kernel", "ledger.reserve", attached_->now(), job)
                  .arg("start", start)
                  .arg("procs", procs));
  }
  reservations_.emplace(job, ReservationEntry{start, end, procs});
  profile_.addBusy(start, end, procs);
}

void ReservationLedger::removeReservation(JobId job) {
  const auto it = reservations_.find(job);
  SPS_CHECK_MSG(it != reservations_.end(),
                "job " << job << " holds no reservation");
  if (attached_ != nullptr) {
    attached_->counters().inc(obs::Counter::LedgerReservationsRemoved);
    SPS_TRACE(&attached_->recorder(),
              obs::instant("kernel", "ledger.unreserve", attached_->now(),
                           job));
  }
  profile_.removeBusy(it->second.start, it->second.end, it->second.procs);
  reservations_.erase(it);
}

void ReservationLedger::audit(const sim::Simulator& simulator) const {
  SPS_CHECK_MSG(attached_ == &simulator,
                "ledger audit against a simulator it is not attached to");
  SPS_CHECK_MSG(running_.size() == simulator.runningJobs().size(),
                "ledger audit: " << running_.size() << " running entries, "
                                 << simulator.runningJobs().size()
                                 << " running jobs");
  for (const JobId id : simulator.runningJobs()) {
    const auto it = running_.find(id);
    SPS_CHECK_MSG(it != running_.end(),
                  "ledger audit: running job " << id << " has no entry");
    SPS_CHECK_MSG(it->second.start == simulator.exec(id).segStart,
                  "ledger audit: job " << id << " entry start "
                                       << it->second.start << " != segStart "
                                       << simulator.exec(id).segStart);
    SPS_CHECK_MSG(it->second.end == beliefEnd(simulator, id),
                  "ledger audit: job " << id << " entry end "
                                       << it->second.end << " != believed end "
                                       << beliefEnd(simulator, id));
    SPS_CHECK_MSG(it->second.procs == simulator.job(id).procs,
                  "ledger audit: job " << id << " entry width "
                                       << it->second.procs << " != "
                                       << simulator.job(id).procs);
  }
  // From-scratch rebuild of the ledger's own layers at the profile's
  // current origin — exactly what rebuild() would produce — compared as a
  // step function, so incremental-maintenance drift (a bad addBusy /
  // removeBusy / shiftOrigin) cannot hide behind breakpoint layout.
  AvailabilityProfile scratch(profile_.origin(), totalProcs_);
  for (const auto& [id, entry] : running_) {
    (void)id;
    scratch.addBusy(entry.start, entry.end, entry.procs);
  }
  for (const auto& [id, entry] : reservations_) {
    (void)id;
    scratch.addBusy(entry.start, entry.end, entry.procs);
  }
  SPS_CHECK_MSG(profile_.sameFunctionAs(scratch),
                "ledger audit: maintained profile diverged from a "
                "from-scratch rebuild at origin "
                    << profile_.origin());
}

std::uint32_t ReservationLedger::zombieProcsAt(Time now) const {
  std::uint32_t procs = 0;
  for (auto it = byEnd_.begin(); it != byEnd_.end() && it->first <= now; ++it)
    procs += it->second;
  return procs;
}

}  // namespace sps::sched::kernel
