// VictimIndex — maintained per-category ordering of the *running* jobs,
// the fourth piece of the scheduling kernel.
//
// The SS/TSS preemption pass asks, for every idle candidate, "which running
// jobs could it preempt?" — and the paper's Section IV eligibility rules
// answer per victim: the suspension-factor ratio test, the half-width rule,
// and (for TSS) a per-category suspension limit. The seed code re-sorted
// the full running set and re-tested every member for every candidate,
// which BENCH_engine.json shows as millions of victimTests per run.
//
// The pivotal property making an index possible: a job's suspension
// priority (xfactor, Eq. 2) *freezes while it runs* — wait does not accrue
// on-processor — so the running set's priority order never drifts between
// transitions. Each Table-I category (by the scheduler-visible estimate x
// width classification) keeps its members sorted by (frozen xfactor, id),
// maintained by a state-change observer exactly the way PriorityIndex
// follows the idle set. The pass's per-victim tests then collapse into
// per-category range queries:
//
//   * SF ratio  — victims failing `priority < SF * xfactor` form a suffix
//     of the sorted order: one binary search per category.
//   * TSS limit — protected victims (`xfactor >= limit`) are likewise a
//     suffix; the boundary is a second binary search.
//   * half-width — width bands are constant within a category, so whole
//     categories pass or fail wholesale; only the unbounded Very-Wide band
//     (and the preemptor's own boundary band) needs per-entry width checks.
//
// A lazily maintained prefix sum of widths over each category's eligible
// prefix gives an upper bound on the processors a candidate could free —
// candidates whose bound cannot cover their shortfall are dismissed with
// zero per-victim work (the dominant case at high load).
//
// Pass-start snapshot semantics: the reference implementation sorts the
// running set once at the top of the pass, so jobs *started mid-pass* are
// invisible to later candidates. beginPass() captures a serial stamp;
// entries inserted at or after it must be skipped by enumeration. (Jobs
// *removed* mid-pass leave the index immediately — matching the reference,
// whose per-victim state test rejects no-longer-running victims.)
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sched/core/reservation_ledger.hpp"
#include "util/types.hpp"

namespace sps::sim {
class Simulator;
enum class JobState : std::uint8_t;
}  // namespace sps::sim

namespace sps::sched::kernel {

class VictimIndex {
 public:
  struct Entry {
    double xfactor = 0.0;  ///< frozen suspension priority (Eq. 2)
    JobId job = 0;
    std::uint32_t procs = 0;  ///< width, for gain sums and width checks
    std::uint64_t serial = 0; ///< insertion stamp; pass-visibility filter
  };

  static constexpr std::size_t kCategories = 16;

  /// Bind to a simulator: clears all state, sizes the owner map to the
  /// machine, and registers the state-change observer that keeps the
  /// per-category orders current. Call from onSimulationStart. An index
  /// serves one simulator at a time and must outlive it.
  void attach(sim::Simulator& simulator);

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Minimum frozen priority over ALL running jobs (every category, no
  /// serial filter); +infinity when empty. O(categories). This is the basis
  /// of the pass gate: an idle candidate below SF x this value can preempt
  /// nothing at all.
  [[nodiscard]] double minPriority() const;

  /// Snapshot stamp for one preemption pass: entries with
  /// serial >= the returned stamp were started mid-pass and must be
  /// skipped by enumeration (the reference's pass-start sort would not
  /// contain them).
  [[nodiscard]] std::uint64_t beginPass() const { return serial_; }

  /// The category's members, ascending (frozen xfactor, id).
  [[nodiscard]] const std::vector<Entry>& category(std::size_t cat) const {
    return cats_[cat];
  }

  /// Length of the category prefix passing the SF ratio test for a
  /// preemptor of priority `preemptorPriority`: the first index whose
  /// entry fails `preemptorPriority < sf * xfactor` (the exact float
  /// predicate of the scan this replaces). Entries beyond it are a
  /// monotone ineligible suffix.
  [[nodiscard]] std::size_t sfBoundary(std::size_t cat,
                                       double preemptorPriority,
                                       double sf) const;

  /// Length of the category prefix below a TSS protection limit: the first
  /// index with xfactor >= limit.
  [[nodiscard]] std::size_t limitBoundary(std::size_t cat,
                                          double limit) const;

  /// Sum of widths over category[0, end) — an upper bound on the
  /// processors preempting that whole prefix could free. Lazily
  /// recomputed per category after churn.
  [[nodiscard]] std::uint32_t gainPrefix(std::size_t cat,
                                         std::size_t end) const;

  /// The running job holding processor `proc`, or kInvalidJob if it is
  /// free or held by a Suspending job. Live (not pass-snapshotted) —
  /// matching the reference's live occupant scan on the re-entry path.
  [[nodiscard]] JobId ownerOf(std::uint32_t proc) const {
    return owner_[proc];
  }

 private:
  void onTransition(const sim::Simulator& s, JobId id, sim::JobState from,
                    sim::JobState to);
  void insert(const sim::Simulator& s, JobId id);
  void remove(const sim::Simulator& s, JobId id);

  std::array<std::vector<Entry>, kCategories> cats_;
  /// prefix_[cat][i] = sum of widths of cats_[cat][0, i). Rebuilt on
  /// demand; mutable because queries are logically const.
  mutable std::array<std::vector<std::uint32_t>, kCategories> prefix_;
  mutable std::array<bool, kCategories> prefixDirty_{};
  std::vector<JobId> owner_;       ///< per processor; kInvalidJob if free
  std::vector<std::uint8_t> catOf_;  ///< per job: category at insertion
  std::uint64_t serial_ = 0;
  std::size_t count_ = 0;
  /// Distinguishes the simulator currently served from a stale one still
  /// holding our observer (a policy may be re-attached across runs).
  const sim::Simulator* attached_ = nullptr;
};

}  // namespace sps::sched::kernel
