#include "sched/core/backfill_engine.hpp"

#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace sps::sched::kernel {

BackfillEngine::Anchor BackfillEngine::anchorOf(
    const sim::Simulator& simulator, JobId job) const {
  simulator.counters().inc(obs::Counter::AnchorQueries);
  const auto& j = simulator.job(job);
  const Time now = simulator.now();
  const Time start =
      ledger_.profile().findAnchor(now, j.estimate, j.procs);
  return {start, start == now && j.procs <= simulator.freeCount()};
}

BackfillEngine::Shadow BackfillEngine::shadowOf(const sim::Simulator& simulator,
                                                JobId head) {
  simulator.counters().inc(obs::Counter::ShadowQueries);
  const auto& j = simulator.job(head);
  const Time now = simulator.now();
  // Zombie overlay: jobs whose estimated end has passed still hold their
  // processors until their completion events fire later in this batch. Pin
  // them busy for one second so the shadow cannot land at `now` (the head
  // does not physically fit — that is why it is still queued).
  const std::uint32_t zombies = ledger_.zombieProcsAt(now);
  AvailabilityProfile& profile = ledger_.mutableProfile();
  profile.addBusy(now, now + 1, zombies);
  const Time shadow = profile.findAnchor(now, j.estimate, j.procs);
  SPS_CHECK_MSG(shadow > now, "head fits now but was left queued");
  const std::uint32_t freeAtShadow = profile.freeAt(shadow);
  profile.removeBusy(now, now + 1, zombies);
  SPS_CHECK(freeAtShadow >= j.procs);
  return {shadow, freeAtShadow - j.procs};
}

bool BackfillEngine::canBackfill(const sim::Simulator& simulator, JobId job,
                                 const Shadow& shadow) const {
  simulator.counters().inc(obs::Counter::BackfillTests);
  SPS_TRACE(&simulator.recorder(),
            obs::instant("kernel", "backfill.test", simulator.now(), job));
  const auto& j = simulator.job(job);
  if (j.procs > simulator.freeCount()) return false;
  return simulator.now() + j.estimate <= shadow.time || j.procs <= shadow.extra;
}

bool completionPreservesProfile(const sim::Simulator& simulator, JobId job) {
  const auto& x = simulator.exec(job);
  return x.suspendCount == 0 &&
         x.firstStart + simulator.job(job).estimate <= simulator.now();
}

}  // namespace sps::sched::kernel
