#include "sched/core/priority_index.hpp"

#ifdef SPS_MANUAL_PROF
#include <x86intrin.h>
#include <cstdio>
namespace {
struct PIProfAcc {
  unsigned long long t[4] = {};
  ~PIProfAcc() {
    std::fprintf(stderr,
                 "PROF(pidx Mcycles) ensure=%llu refresh=%llu sort=%llu compact=%llu\n",
                 t[0] / 1000000, t[1] / 1000000, t[2] / 1000000, t[3] / 1000000);
  }
} piProfAcc;
struct PIProfScope {
  unsigned long long s; int i;
  explicit PIProfScope(int idx) : s(__rdtsc()), i(idx) {}
  ~PIProfScope() { piProfAcc.t[i] += __rdtsc() - s; }
};
}  // namespace
#define SPS_PIPROF(i) PIProfScope pi_prof_scope_(i)
#else
#define SPS_PIPROF(i)
#endif

#include <algorithm>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace sps::sched::kernel {

namespace {

/// Sort `jobs` under a strict total order. When `seeded`, the vector is the
/// previous epoch's order with membership churn applied — nearly sorted,
/// because priorities drift continuously between events and pairwise order
/// flips are rare — so an adaptive insertion sort finishes in
/// O(n + inversions). The comparator breaks every tie (by id), the sorted
/// permutation is unique, and therefore the result is bit-identical to a
/// from-scratch std::sort. A shift budget bounds the pathological case
/// (e.g. a long event gap crossing many priorities) by falling back to
/// std::sort.
template <class Cmp>
void adaptiveSort(std::vector<JobId>& jobs, Cmp cmp, bool seeded) {
  if (!seeded) {
    std::sort(jobs.begin(), jobs.end(), cmp);
    return;
  }
  std::size_t budget = jobs.size() * 32 + 64;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const JobId v = jobs[i];
    std::size_t j = i;
    while (j > 0 && cmp(v, jobs[j - 1])) {
      jobs[j] = jobs[j - 1];
      --j;
      if (--budget == 0) {
        // The in-flight element still lives in `v` and the shift left its
        // hole at jobs[j] — restore it first, or the fallback sorts an
        // array with one element duplicated and one lost.
        jobs[j] = v;
        std::sort(jobs.begin(), jobs.end(), cmp);
        return;
      }
    }
    jobs[j] = v;
  }
}

}  // namespace

void IdleWalk::iterator::settle() {
  const std::vector<JobId>& order = *walk_->order_;
  const auto mask = static_cast<std::uint8_t>(walk_->filter_);
  while (pos_ < order.size()) {
    const sim::JobState st = walk_->sim_->state(order[pos_]);
    const std::uint8_t bit = st == sim::JobState::Queued      ? 1
                             : st == sim::JobState::Suspended ? 2
                                                              : 0;
    if ((bit & mask) != 0) return;
    ++pos_;
  }
}

std::vector<JobId> PriorityIndex::idle(const sim::Simulator& simulator) {
  if (maintained_ && attached_ == &simulator) {
    // May contain tombstones (jobs no longer idle); callers re-check state
    // at use, exactly as with any stale snapshot entry.
    ensureMaintained(simulator);
    return idle_;
  }
  const bool hit = mode_ == KernelMode::Incremental && valid_ &&
                   sim_ == &simulator && epoch_ == simulator.epoch();
  simulator.counters().inc(hit ? obs::Counter::IndexHits
                               : obs::Counter::IndexMisses);
  if (!hit) recompute(simulator);
  return idle_;
}

IdleWalk PriorityIndex::walk(const sim::Simulator& simulator,
                             IdleFilter filter) {
  if (maintained_ && attached_ == &simulator) {
    ensureMaintained(simulator);
    return {idle_, simulator, filter};
  }
  const bool hit = mode_ == KernelMode::Incremental && valid_ &&
                   sim_ == &simulator && epoch_ == simulator.epoch();
  simulator.counters().inc(hit ? obs::Counter::IndexHits
                               : obs::Counter::IndexMisses);
  if (!hit) recompute(simulator);
  return {idle_, simulator, filter};
}

void PriorityIndex::attach(sim::Simulator& simulator) {
  valid_ = false;
  sim_ = nullptr;
  pending_.clear();
  orderValidUntil_ = kNoTime;
  inPending_.assign(simulator.trace().jobs.size(), 0);
  maintained_ = true;
  const bool firstAttach = attached_ == nullptr;
  attached_ = &simulator;
  if (firstAttach) {
    // One registration per index lifetime: on re-attach the observer is
    // already in place (stale simulators are filtered by `attached_`).
    simulator.observers().onStateChange(
        [this](const sim::Simulator& s, JobId id, sim::JobState from,
               sim::JobState to) {
          if (&s != attached_) return;
          const auto idle = [](sim::JobState st) {
            return st == sim::JobState::Queued ||
                   st == sim::JobState::Suspended;
          };
          const bool was = idle(from);
          const bool is = idle(to);
          // Invalid cache: the next refresh gathers membership from
          // scratch, so nothing to track. Note this never mutates idle_ —
          // transitions fire mid-walk (the walker's own starts and
          // resumes), and IdleWalk borrows idle_ by reference.
          if (was == is || !valid_) return;
          if (is) {
            pending_.push_back(id);
          } else {
            // Leaving the idle set: cancel an unplaced arrival, or leave a
            // placed entry behind as a tombstone the walks' live state
            // filter already hides (compacted before the next placement).
            const auto it = std::find(pending_.begin(), pending_.end(), id);
            if (it != pending_.end()) pending_.erase(it);
          }
        });
  }
}

void PriorityIndex::ensureMaintained(const sim::Simulator& simulator) {
  SPS_PIPROF(0);
  // Streamed submits grow the job table after attach; the stamp/priority
  // scratch arrays already resize at point of use, this one is indexed by
  // every pending id below.
  if (inPending_.size() < simulator.trace().jobs.size())
    inPending_.resize(simulator.trace().jobs.size(), 0);
  const bool hit =
      valid_ && sim_ == &simulator && simulator.now() < orderValidUntil_;
  simulator.counters().inc(hit ? obs::Counter::IndexHits
                               : obs::Counter::IndexMisses);
  if (!hit) {
    refreshMaintained(simulator);
  } else if (!pending_.empty()) {
    compactAndApply(simulator);
  }
#ifdef SPS_INDEX_AUDIT
  {
    std::vector<JobId> live;
    for (const JobId id : idle_)
      if (simulator.state(id) == sim::JobState::Queued ||
          simulator.state(id) == sim::JobState::Suspended)
        live.push_back(id);
    std::vector<JobId> ref;
    for (const JobId id : simulator.queuedJobs()) ref.push_back(id);
    for (const JobId id : simulator.suspendedJobs())
      if (simulator.state(id) == sim::JobState::Suspended) ref.push_back(id);
    std::sort(ref.begin(), ref.end(), [&](JobId a, JobId b) {
      const double xa = simulator.xfactor(a);
      const double xb = simulator.xfactor(b);
      if (order_ == IndexOrder::XFactorDesc && xa != xb) return xa > xb;
      if (simulator.job(a).submit != simulator.job(b).submit)
        return simulator.job(a).submit < simulator.job(b).submit;
      return a < b;
    });
    if (live != ref) {
      std::fprintf(stderr, "INDEX AUDIT FAIL at t=%lld hit=%d live=%zu ref=%zu\n",
                   static_cast<long long>(simulator.now()), hit ? 1 : 0,
                   live.size(), ref.size());
      for (std::size_t i = 0; i < std::max(live.size(), ref.size()); ++i) {
        const long long l = i < live.size() ? static_cast<long long>(live[i]) : -1;
        const long long r = i < ref.size() ? static_cast<long long>(ref[i]) : -1;
        if (l != r)
          std::fprintf(stderr, "  [%zu] live=%lld (x=%g) ref=%lld (x=%g)\n", i,
                       l, l >= 0 ? simulator.xfactor(static_cast<JobId>(l)) : 0.0,
                       r, r >= 0 ? simulator.xfactor(static_cast<JobId>(r)) : 0.0);
      }
      std::abort();
    }
  }
#endif
}

void PriorityIndex::refreshMaintained(const sim::Simulator& simulator) {
  SPS_PIPROF(1);
  if (!valid_ || sim_ != &simulator) {
    // No trustworthy bookkeeping to lean on: gather membership from the
    // simulator's lists (the full recompute path).
    pending_.clear();
    recompute(simulator);
  } else {
    // Horizon expiry with membership still exact: the observer tracked
    // every idle transition, so skip the gather/stamp reconciliation
    // entirely — drop tombstones (and stale copies of re-entered jobs),
    // append the unplaced arrivals anywhere, and let the seeded sort
    // repair the handful of drifted positions.
    simulator.counters().inc(obs::Counter::IndexSeededSorts);
    for (const JobId id : pending_) inPending_[id] = 1;
    std::size_t keep = 0;
    for (const JobId id : idle_) {
      const sim::JobState st = simulator.state(id);
      if ((st == sim::JobState::Queued || st == sim::JobState::Suspended) &&
          inPending_[id] == 0)
        idle_[keep++] = id;
    }
    idle_.resize(keep);
    for (const JobId id : pending_) {
      inPending_[id] = 0;
      const sim::JobState st = simulator.state(id);
      if (st == sim::JobState::Queued || st == sim::JobState::Suspended)
        idle_.push_back(id);
    }
    pending_.clear();
    epoch_ = simulator.epoch();
    sortCurrent(simulator, /*seeded=*/true);
  }
  orderValidUntil_ = kTimeMax;
  if (order_ != IndexOrder::XFactorDesc) return;  // static order: no drift
  for (std::size_t i = 0; i + 1 < idle_.size(); ++i)
    pairHorizon(simulator, i, priority_[idle_[i]], priority_[idle_[i + 1]]);
}

void PriorityIndex::pairHorizon(const sim::Simulator& simulator,
                                std::size_t i, double xa, double xb) {
  // Idle priorities rise linearly at slope 1/estimate. The lower entry b
  // can only overtake its neighbor a when it rises faster; the crossing of
  // the two lines then bounds how long the cached pairwise order holds.
  // Chained across adjacencies (any global order change passes through an
  // adjacent equality first), the minimum over all pairs ever adjacent
  // bounds the first time a fresh sort could disagree with the cache. The
  // floor-minus-one margin dwarfs the float error of the crossing (well
  // under a second), and sub-second proximity to the true crossing is also
  // where equal-double ties could flip the comparator — the margin keeps
  // every served time clear of both.
  const auto ea = static_cast<double>(simulator.job(idle_[i]).estimate);
  const auto eb = static_cast<double>(simulator.job(idle_[i + 1]).estimate);
  if (eb >= ea) return;
  const double rate = 1.0 / eb - 1.0 / ea;
  const double tc =
      static_cast<double>(simulator.now()) + (xa - xb) / rate;
  const Time h = tc >= static_cast<double>(kTimeMax)
                     ? kTimeMax
                     : static_cast<Time>(tc) - 1;
  orderValidUntil_ = std::min(orderValidUntil_, h);
}

void PriorityIndex::compactAndApply(const sim::Simulator& simulator) {
  SPS_PIPROF(3);
  // Tombstones must go before a binary search can trust the array: a
  // no-longer-idle entry's priority froze when it left, so the live
  // entries around it may have outgrown it without any recorded crossing.
  // A job that left and re-entered the idle set is both a tombstone and a
  // pending arrival — inPending_ drops the stale copy.
  for (const JobId id : pending_) inPending_[id] = 1;
  std::size_t keep = 0;
  for (const JobId id : idle_) {
    const sim::JobState st = simulator.state(id);
    if ((st == sim::JobState::Queued || st == sim::JobState::Suspended) &&
        inPending_[id] == 0)
      idle_[keep++] = id;
  }
  idle_.resize(keep);
  for (const JobId id : pending_) {
    inPending_[id] = 0;
    const sim::JobState st = simulator.state(id);
    if (st != sim::JobState::Queued && st != sim::JobState::Suspended)
      continue;  // guard; the observer cancels unplaced leavers
    const Time submit = simulator.job(id).submit;
    double x = 0.0;
    auto before = [&](JobId m) {
      if (order_ == IndexOrder::SubmitAsc) {
        const Time sm = simulator.job(m).submit;
        if (sm != submit) return sm < submit;
        return m < id;
      }
      // Walk order against *current* priorities — the horizon guarantees
      // the cached order agrees with them, so the sequence is monotone.
      const double xm = simulator.xfactor(m);
      if (xm != x) return xm > x;
      const Time sm = simulator.job(m).submit;
      if (sm != submit) return sm < submit;
      return m < id;
    };
    if (order_ == IndexOrder::XFactorDesc) x = simulator.xfactor(id);
    const auto it =
        std::lower_bound(idle_.begin(), idle_.end(), id,
                         [&](JobId m, JobId) { return before(m); });
    const auto pos = static_cast<std::size_t>(it - idle_.begin());
    idle_.insert(it, id);
    if (order_ != IndexOrder::XFactorDesc) continue;
    if (pos > 0)
      pairHorizon(simulator, pos - 1, simulator.xfactor(idle_[pos - 1]), x);
    if (pos + 1 < idle_.size())
      pairHorizon(simulator, pos, x, simulator.xfactor(idle_[pos + 1]));
  }
  pending_.clear();
}

void PriorityIndex::recompute(const sim::Simulator& simulator) {
  // A previous epoch's order for the same simulator seeds the sort; its
  // membership is reconciled below (drop no-longer-idle jobs in place,
  // append newcomers) so only genuine priority inversions cost anything.
  const bool seeded = mode_ == KernelMode::Incremental && valid_ &&
                      sim_ == &simulator && !idle_.empty();
  simulator.counters().inc(seeded ? obs::Counter::IndexSeededSorts
                                  : obs::Counter::IndexFullSorts);
  SPS_TRACE(&simulator.recorder(),
            obs::instant("kernel", "index.resort", simulator.now())
                .arg("seeded", seeded ? 1 : 0));
  sim_ = &simulator;
  epoch_ = simulator.epoch();
  valid_ = true;

  gather_.clear();
  gather_.reserve(simulator.queuedJobs().size() +
                  simulator.suspendedJobs().size());
  for (const JobId id : simulator.queuedJobs()) gather_.push_back(id);
  for (const JobId id : simulator.suspendedJobs())
    if (simulator.state(id) == sim::JobState::Suspended)
      gather_.push_back(id);

  if (seeded) {
    ++generation_;
    memberStamp_.resize(simulator.trace().jobs.size(), 0);
    previousStamp_.resize(simulator.trace().jobs.size(), 0);
    for (const JobId id : gather_) memberStamp_[id] = generation_;
    for (const JobId id : idle_) previousStamp_[id] = generation_;
    // Survivors keep the previous order; newcomers append in gather order
    // (arbitrary — the total order makes the final result unique).
    std::size_t keep = 0;
    for (const JobId id : idle_)
      if (memberStamp_[id] == generation_) idle_[keep++] = id;
    idle_.resize(keep);
    for (const JobId id : gather_)
      if (previousStamp_[id] != generation_) idle_.push_back(id);
  } else {
    idle_ = gather_;
  }

  sortCurrent(simulator, seeded);
}

void PriorityIndex::sortCurrent(const sim::Simulator& simulator,
                                bool seeded) {
  SPS_PIPROF(2);
  if (order_ == IndexOrder::XFactorDesc) {
    priority_.resize(simulator.trace().jobs.size());
    for (const JobId id : idle_) priority_[id] = simulator.xfactor(id);
    adaptiveSort(
        idle_,
        [this, &simulator](JobId a, JobId b) {
          if (priority_[a] != priority_[b]) return priority_[a] > priority_[b];
          if (simulator.job(a).submit != simulator.job(b).submit)
            return simulator.job(a).submit < simulator.job(b).submit;
          return a < b;
        },
        seeded);
  } else {
    adaptiveSort(
        idle_,
        [&simulator](JobId a, JobId b) {
          if (simulator.job(a).submit != simulator.job(b).submit)
            return simulator.job(a).submit < simulator.job(b).submit;
          return a < b;
        },
        seeded);
  }
}

}  // namespace sps::sched::kernel
