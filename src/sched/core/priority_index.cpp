#include "sched/core/priority_index.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace sps::sched::kernel {

namespace {

/// Sort `jobs` under a strict total order. When `seeded`, the vector is the
/// previous epoch's order with membership churn applied — nearly sorted,
/// because priorities drift continuously between events and pairwise order
/// flips are rare — so an adaptive insertion sort finishes in
/// O(n + inversions). The comparator breaks every tie (by id), the sorted
/// permutation is unique, and therefore the result is bit-identical to a
/// from-scratch std::sort. A shift budget bounds the pathological case
/// (e.g. a long event gap crossing many priorities) by falling back to
/// std::sort.
template <class Cmp>
void adaptiveSort(std::vector<JobId>& jobs, Cmp cmp, bool seeded) {
  if (!seeded) {
    std::sort(jobs.begin(), jobs.end(), cmp);
    return;
  }
  std::size_t budget = jobs.size() * 32 + 64;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const JobId v = jobs[i];
    std::size_t j = i;
    while (j > 0 && cmp(v, jobs[j - 1])) {
      jobs[j] = jobs[j - 1];
      --j;
      if (--budget == 0) {
        std::sort(jobs.begin(), jobs.end(), cmp);
        return;
      }
    }
    jobs[j] = v;
  }
}

}  // namespace

std::vector<JobId> PriorityIndex::idle(const sim::Simulator& simulator) {
  const bool hit = mode_ == KernelMode::Incremental && valid_ &&
                   sim_ == &simulator && epoch_ == simulator.epoch();
  simulator.counters().inc(hit ? obs::Counter::IndexHits
                               : obs::Counter::IndexMisses);
  if (!hit) recompute(simulator);
  return idle_;
}

void PriorityIndex::recompute(const sim::Simulator& simulator) {
  // A previous epoch's order for the same simulator seeds the sort; its
  // membership is reconciled below (drop no-longer-idle jobs in place,
  // append newcomers) so only genuine priority inversions cost anything.
  const bool seeded = mode_ == KernelMode::Incremental && valid_ &&
                      sim_ == &simulator && !idle_.empty();
  simulator.counters().inc(seeded ? obs::Counter::IndexSeededSorts
                                  : obs::Counter::IndexFullSorts);
  SPS_TRACE(&simulator.recorder(),
            obs::instant("kernel", "index.resort", simulator.now())
                .arg("seeded", seeded ? 1 : 0));
  sim_ = &simulator;
  epoch_ = simulator.epoch();
  valid_ = true;

  gather_.clear();
  gather_.reserve(simulator.queuedJobs().size() +
                  simulator.suspendedJobs().size());
  for (const JobId id : simulator.queuedJobs()) gather_.push_back(id);
  for (const JobId id : simulator.suspendedJobs())
    if (simulator.exec(id).state == sim::JobState::Suspended)
      gather_.push_back(id);

  if (seeded) {
    ++generation_;
    memberStamp_.resize(simulator.trace().jobs.size(), 0);
    previousStamp_.resize(simulator.trace().jobs.size(), 0);
    for (const JobId id : gather_) memberStamp_[id] = generation_;
    for (const JobId id : idle_) previousStamp_[id] = generation_;
    // Survivors keep the previous order; newcomers append in gather order
    // (arbitrary — the total order makes the final result unique).
    std::size_t keep = 0;
    for (const JobId id : idle_)
      if (memberStamp_[id] == generation_) idle_[keep++] = id;
    idle_.resize(keep);
    for (const JobId id : gather_)
      if (previousStamp_[id] != generation_) idle_.push_back(id);
  } else {
    idle_ = gather_;
  }

  if (order_ == IndexOrder::XFactorDesc) {
    priority_.resize(simulator.trace().jobs.size());
    for (const JobId id : idle_) priority_[id] = simulator.xfactor(id);
    adaptiveSort(
        idle_,
        [this, &simulator](JobId a, JobId b) {
          if (priority_[a] != priority_[b]) return priority_[a] > priority_[b];
          if (simulator.job(a).submit != simulator.job(b).submit)
            return simulator.job(a).submit < simulator.job(b).submit;
          return a < b;
        },
        seeded);
  } else {
    adaptiveSort(
        idle_,
        [&simulator](JobId a, JobId b) {
          if (simulator.job(a).submit != simulator.job(b).submit)
            return simulator.job(a).submit < simulator.job(b).submit;
          return a < b;
        },
        seeded);
  }
}

}  // namespace sps::sched::kernel
