// ReservationLedger — the scheduling kernel's incrementally-maintained
// availability profile (the paper's Section II-A "2D chart", kept alive
// across events instead of rebuilt at each one).
//
// The ledger owns one AvailabilityProfile holding two kinds of busy
// intervals:
//
//   * running jobs' estimated remainders — [segStart, segStart + estimate),
//     entered automatically when a job starts and released when it leaves
//     the Running state, via a Simulator state-change observer;
//   * reservations — future start-time guarantees a backfilling policy has
//     handed out, entered and released explicitly through addReservation /
//     removeReservation.
//
// Policies call refresh() once at the top of every decision point; in
// incremental mode that only advances the profile origin to now()
// (dropping elapsed steps), so the amortized maintenance cost per event is
// the handful of addBusy/removeBusy calls its transitions actually cause —
// not a rebuild over every active job.
//
// KernelMode::Rebuild keeps the seed behaviour: refresh() reconstructs the
// profile from the simulator's running set plus the recorded reservations,
// exactly as conservative.cpp/easy.cpp/depth_backfill.cpp did per event
// before this kernel existed. The two modes produce bit-identical profiles
// (the golden-equivalence suite runs every policy under both and asserts
// identical schedules), and the Rebuild lane doubles as the before/after
// baseline in bench_micro_engine.
//
// Suspension is effectively out of scope: the ledger drops a job's
// interval as soon as it leaves Running, and a resumed segment is
// re-entered with the full user estimate (uniform with fresh starts, so
// both kernel modes agree bit-for-bit). The policies that anchor against
// profiles (conservative, EASY, depth) are exactly the non-preemptive
// ones, so the resumed case is never exercised in practice.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "sched/availability_profile.hpp"
#include "util/types.hpp"

namespace sps::sim {
class Simulator;
enum class JobState : std::uint8_t;
}

namespace sps::sched::kernel {

/// Maintenance strategy for the kernel's incremental structures. Rebuild is
/// the pre-kernel, per-event-reconstruction behaviour, kept as the
/// golden-equivalence reference and the bench baseline.
enum class KernelMode : std::uint8_t { Incremental, Rebuild };

class ReservationLedger {
 public:
  explicit ReservationLedger(KernelMode mode = KernelMode::Incremental)
      : mode_(mode) {}

  [[nodiscard]] KernelMode mode() const { return mode_; }

  /// Bind to a simulator: resets all state, sizes the profile to the
  /// machine, and registers the state-change observer that keeps the
  /// running layer current between refreshes (both modes — a policy that
  /// starts jobs mid-decision needs the profile to follow). Call from
  /// onSimulationStart. A ledger serves one simulator at a time and must
  /// outlive it.
  void attach(sim::Simulator& simulator);

  /// Bring the profile up to date with the simulation clock. Incremental:
  /// shift the origin to now(). Rebuild: reconstruct running + reservations
  /// from scratch. Call once at the top of every policy decision point,
  /// before any query.
  void refresh(const sim::Simulator& simulator);

  // --- reservations (the policy-owned layer) ---------------------------
  /// Record a start-time guarantee occupying [start, start + duration).
  /// The job must not already hold a reservation.
  void addReservation(JobId job, Time start, Time duration,
                      std::uint32_t procs);
  /// Release a guarantee previously recorded with addReservation.
  void removeReservation(JobId job);
  [[nodiscard]] bool hasReservation(JobId job) const {
    return reservations_.count(job) != 0;
  }
  [[nodiscard]] std::size_t reservationCount() const {
    return reservations_.size();
  }

  // --- queries ----------------------------------------------------------
  /// The profile of running remainders + reservations, valid as of the
  /// last refresh(). Do not mutate; BackfillEngine owns scan overlays.
  [[nodiscard]] const AvailabilityProfile& profile() const {
    return profile_;
  }
  [[nodiscard]] AvailabilityProfile& mutableProfile() { return profile_; }

  /// Invariant audit (sps::check): the running layer must mirror the
  /// simulator's Running set exactly (same jobs, segment starts, widths,
  /// believed ends), and the profile must equal a from-scratch rebuild of
  /// running entries + reservations at the profile's current origin
  /// (AvailabilityProfile::sameFunctionAs). Read-only; callable between
  /// events in either kernel mode. Throws InvariantError on divergence.
  void audit(const sim::Simulator& simulator) const;

  /// Total processors held by running jobs whose *estimated* end is <= now
  /// — their completion events are pending in the current timestamp batch,
  /// so the profile already counts them free, but the machine has not
  /// released them yet. EASY's shadow computation re-occupies them for
  /// [now, now + 1).
  [[nodiscard]] std::uint32_t zombieProcsAt(Time now) const;

 private:
  struct RunningEntry {
    Time start;
    Time end;
    std::uint32_t procs;
    /// Position in byEnd_ for O(log n) removal.
    std::multimap<Time, std::uint32_t>::iterator endIt;
  };
  struct ReservationEntry {
    Time start;
    Time end;
    std::uint32_t procs;
  };

  void onTransition(const sim::Simulator& simulator, JobId id,
                    sim::JobState from, sim::JobState to);
  void rebuild(const sim::Simulator& simulator);

  KernelMode mode_;
  std::uint32_t totalProcs_ = 0;
  AvailabilityProfile profile_{0, 0};
  std::unordered_map<JobId, RunningEntry> running_;
  /// Running entries keyed by estimated end, for the zombie query.
  std::multimap<Time, std::uint32_t> byEnd_;
  std::unordered_map<JobId, ReservationEntry> reservations_;
  /// Distinguishes the simulator currently served from a stale one still
  /// holding our observer (a policy may be re-attached across runs).
  const sim::Simulator* attached_ = nullptr;
};

}  // namespace sps::sched::kernel
