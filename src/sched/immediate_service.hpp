// Immediate Service (IS) — the comparator strategy of Chiang & Vernon,
// re-implemented from the paper's description (Section II-C):
//
//   "each arriving job is given an immediate timeslice of 10 minutes, by
//    suspending one or more running jobs if needed. The selection of jobs
//    for suspension is based on their instantaneous-xfactor, defined as
//    (wait time + total accumulated run time) / (total accumulated run
//    time). Jobs with the lowest instantaneous-xfactor are suspended."
//
// Interpretation choices (documented in DESIGN.md):
//  * A job still inside its own guaranteed first quantum cannot be chosen as
//    a victim — otherwise the arrival of job B would revoke the guarantee
//    just granted to job A (a just-started job also has the *minimum*
//    possible instantaneous-xfactor of 1, so without this rule the
//    guarantee would be meaningless).
//  * At quantum expiry the job is suspended iff other work is waiting;
//    otherwise it keeps running.
//  * Waiting work (fresh + suspended) is dispatched greedily in submission
//    order whenever processors free up; suspended jobs need their exact
//    processors (local preemption, same constraint as SS). No reservations:
//    preemption voids start-time guarantees anyway.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/core/priority_index.hpp"
#include "sim/policy.hpp"

namespace sps::sched {

struct IsConfig {
  /// Guaranteed initial timeslice, seconds (paper: 10 minutes).
  Time quantum = 10 * kMinute;
  /// Maintenance mode of the kernel dispatch index (sched/core).
  kernel::KernelMode kernelMode = kernel::KernelMode::Incremental;
};

class ImmediateService final : public sim::SchedulingPolicy {
 public:
  explicit ImmediateService(IsConfig config = {});

  [[nodiscard]] std::string name() const override { return "IS"; }

  void onSimulationStart(sim::Simulator& simulator) override;
  void onJobArrival(sim::Simulator& simulator, JobId job) override;
  void onJobCompletion(sim::Simulator& simulator, JobId job) override;
  void onSuspendDrained(sim::Simulator& simulator, JobId job) override;
  void onTimer(sim::Simulator& simulator, std::uint64_t tag) override;
  void onSimulationEnd(sim::Simulator& simulator) override;

  [[nodiscard]] std::uint64_t preemptionsInitiated() const {
    return preemptions_;
  }

 private:
  /// True while the job is running inside its guaranteed first quantum.
  [[nodiscard]] bool inFirstQuantum(const sim::Simulator& s, JobId id) const;

  /// Greedy submission-order dispatch of queued + suspended work.
  void dispatch(sim::Simulator& simulator);

  /// Try to grant the arriving job its immediate timeslice, suspending the
  /// lowest instantaneous-xfactor victims if needed.
  void grantImmediateService(sim::Simulator& simulator, JobId job);

  [[nodiscard]] bool anyWaitingWork(const sim::Simulator& s) const;

  IsConfig config_;
  /// Waiting work (queued + fully-suspended) in submission order — the
  /// kernel priority index replaces the per-dispatch gather-and-sort.
  kernel::PriorityIndex waitingIndex_;
  std::uint64_t preemptions_ = 0;
  /// A job whose immediate-service victims are still draining their memory
  /// images (overhead model only). Until it starts, nothing else may be
  /// dispatched — otherwise the freed processors would be re-occupied and
  /// the grant retried forever (suspend/drain/steal livelock).
  JobId pendingGrant_ = kInvalidJob;
};

}  // namespace sps::sched
