#include "sched/fcfs.hpp"

#include <algorithm>

#include "sim/simulator.hpp"

namespace sps::sched {

void FcfsScheduler::onJobArrival(sim::Simulator& simulator, JobId job) {
  queue_.push_back(job);
  dispatch(simulator);
}

void FcfsScheduler::onJobCompletion(sim::Simulator& simulator, JobId /*job*/) {
  dispatch(simulator);
}

void FcfsScheduler::onJobCancelled(sim::Simulator& simulator, JobId job) {
  const auto it = std::find(queue_.begin(), queue_.end(), job);
  SPS_CHECK_MSG(it != queue_.end(), "cancelled job " << job << " not queued");
  queue_.erase(it);
  // Removing the head (or any blocker) may unblock the jobs behind it.
  dispatch(simulator);
}

void FcfsScheduler::dispatch(sim::Simulator& simulator) {
  while (!queue_.empty() &&
         simulator.job(queue_.front()).procs <= simulator.freeCount()) {
    simulator.startJob(queue_.front());
    queue_.pop_front();
  }
}

void FcfsScheduler::onSimulationEnd(sim::Simulator& /*simulator*/) {
  SPS_CHECK_MSG(queue_.empty(), "FCFS queue not drained at end of run");
}

}  // namespace sps::sched
