#include "sched/fcfs.hpp"

#include "sim/simulator.hpp"

namespace sps::sched {

void FcfsScheduler::onJobArrival(sim::Simulator& simulator, JobId job) {
  queue_.push_back(job);
  dispatch(simulator);
}

void FcfsScheduler::onJobCompletion(sim::Simulator& simulator, JobId /*job*/) {
  dispatch(simulator);
}

void FcfsScheduler::dispatch(sim::Simulator& simulator) {
  while (!queue_.empty() &&
         simulator.job(queue_.front()).procs <= simulator.freeCount()) {
    simulator.startJob(queue_.front());
    queue_.pop_front();
  }
}

void FcfsScheduler::onSimulationEnd(sim::Simulator& /*simulator*/) {
  SPS_CHECK_MSG(queue_.empty(), "FCFS queue not drained at end of run");
}

}  // namespace sps::sched
