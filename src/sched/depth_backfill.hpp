// Reservation-depth backfilling — the spectrum between the paper's two
// backfilling baselines, after the "relaxed"/"selective reservation"
// strategies of the paper's own reference list (Ward et al. [10],
// Srinivasan et al. [16]).
//
// depth = K means the first K queued jobs hold start-time guarantees
// (anchored exactly as in conservative backfilling); every other queued job
// may start only if doing so delays none of those K reservations. K = 1 is
// EASY's guarantee structure on a FCFS queue; K = infinity is conservative
// backfilling. Intermediate K trades the responsiveness of aggressive
// backfilling against the predictability of conservative — a useful
// non-preemptive axis to set next to SS, which abandons guarantees
// entirely.
//
// Anchoring runs over the shared sched/core kernel (ReservationLedger +
// BackfillEngine); this file keeps the depth cutoff and the two-pass
// ordering.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sched/core/backfill_engine.hpp"
#include "sched/core/reservation_ledger.hpp"
#include "sim/policy.hpp"

namespace sps::sched {

struct DepthConfig {
  /// Number of queued jobs holding reservations. >= 1.
  std::size_t depth = 2;
  kernel::KernelMode kernelMode = kernel::KernelMode::Incremental;
};

inline constexpr std::size_t kUnlimitedDepth =
    std::numeric_limits<std::size_t>::max();

class DepthBackfill final : public sim::SchedulingPolicy {
 public:
  explicit DepthBackfill(DepthConfig config);

  [[nodiscard]] std::string name() const override;

  void onSimulationStart(sim::Simulator& simulator) override;
  void onJobArrival(sim::Simulator& simulator, JobId job) override;
  void onJobCompletion(sim::Simulator& simulator, JobId job) override;
  void onSimulationEnd(sim::Simulator& simulator) override;

  /// Current guarantee of a queued job, or kNoTime when it holds none
  /// (either unreserved or already started). O(log depth): guarantees_
  /// parallels a prefix of the submission-ordered queue, and ids are dense
  /// in submission order, so the vector is sorted by id.
  [[nodiscard]] Time guaranteeOf(JobId job) const;

  /// The kernel ledger backing this policy, for the sps::check ledger
  /// audit. Read-only.
  [[nodiscard]] const kernel::ReservationLedger& ledger() const {
    return ledger_;
  }

 private:
  /// Re-derive the whole schedule decision: anchor the first `depth` queued
  /// jobs (their guarantees must never regress), then backfill the rest
  /// against the resulting profile. Starts everything whose anchor is now.
  void rebuild(sim::Simulator& simulator);

  /// Incremental-mode equivalent of rebuild() for events that leave the
  /// availability function unchanged (every arrival; on-time completions):
  /// existing guarantees are fixed points of pass 1, so they stay in the
  /// ledger untouched. Only due guarantees (start == now), promotions into
  /// freed pass-1 slots, and pass-2 candidates do any profile work.
  void incrementalPass(sim::Simulator& simulator);

  DepthConfig config_;
  kernel::ReservationLedger ledger_;
  kernel::BackfillEngine engine_{ledger_};
  std::vector<JobId> queue_;  ///< submission order
  /// Guarantee per reserved job, parallel to the first entries of queue_.
  /// kNoTime marks "no guarantee recorded yet".
  std::vector<std::pair<JobId, Time>> guarantees_;
};

}  // namespace sps::sched
