#include "sched/depth_backfill.hpp"

#include <algorithm>
#include <sstream>

#include "sim/simulator.hpp"

namespace sps::sched {

DepthBackfill::DepthBackfill(DepthConfig config) : config_(config) {
  SPS_CHECK_MSG(config_.depth >= 1, "reservation depth must be >= 1");
}

std::string DepthBackfill::name() const {
  std::ostringstream os;
  if (config_.depth == kUnlimitedDepth) os << "Depth-BF(inf)";
  else os << "Depth-BF(" << config_.depth << ")";
  return os.str();
}

Time DepthBackfill::guaranteeOf(JobId job) const {
  for (const auto& [id, start] : guarantees_)
    if (id == job) return start;
  return kNoTime;
}

void DepthBackfill::onJobArrival(sim::Simulator& simulator, JobId job) {
  queue_.push_back(job);
  rebuild(simulator);
}

void DepthBackfill::onJobCompletion(sim::Simulator& simulator,
                                    JobId /*job*/) {
  rebuild(simulator);
}

void DepthBackfill::rebuild(sim::Simulator& simulator) {
  const Time now = simulator.now();

  // Profile of running jobs' estimated remainders (same zombie handling as
  // conservative backfilling: a job whose estimated end is exactly `now`
  // counts as done; its completion event fires in this timestamp batch and
  // triggers another rebuild).
  AvailabilityProfile profile(now, simulator.machine().totalProcs());
  for (JobId id : simulator.runningJobs()) {
    const auto& x = simulator.exec(id);
    const Time end = x.segStart + simulator.job(id).estimate;
    profile.addBusy(now, end, simulator.job(id).procs);
  }

  std::vector<std::pair<JobId, Time>> oldGuarantees;
  oldGuarantees.swap(guarantees_);
  auto previousGuarantee = [&](JobId id) {
    for (const auto& [job, start] : oldGuarantees)
      if (job == id) return start;
    return kTimeMax;  // never guaranteed: anything is an improvement
  };

  // Pass 1: (re-)anchor the first `depth` queued jobs in order. Guarantees
  // must never regress — the old slot stays feasible by induction, exactly
  // as in conservative compression.
  std::vector<JobId> pending;
  pending.swap(queue_);
  std::size_t reserved = 0;
  std::vector<JobId> backfillCandidates;
  for (JobId id : pending) {
    const auto& j = simulator.job(id);
    if (reserved < config_.depth) {
      const Time anchor = profile.findAnchor(now, j.estimate, j.procs);
      SPS_CHECK_MSG(anchor <= previousGuarantee(id),
                    "depth-backfill guarantee regressed for job " << id);
      const bool startNow =
          anchor == now && j.procs <= simulator.machine().freeCount();
      if (startNow) {
        simulator.startJob(id);
      } else {
        queue_.push_back(id);
        guarantees_.emplace_back(id, anchor);
      }
      profile.addBusy(anchor, anchor + j.estimate, j.procs);
      ++reserved;
    } else {
      backfillCandidates.push_back(id);
    }
  }

  // Pass 2: unreserved jobs backfill iff they fit *now* without delaying
  // any reservation — i.e. their earliest anchor against the profile
  // (running + all reservations + earlier backfills) is the present.
  for (JobId id : backfillCandidates) {
    const auto& j = simulator.job(id);
    const Time anchor = profile.findAnchor(now, j.estimate, j.procs);
    if (anchor == now && j.procs <= simulator.machine().freeCount()) {
      simulator.startJob(id);
      profile.addBusy(now, now + j.estimate, j.procs);
    } else {
      queue_.push_back(id);
    }
  }

  // queue_ now holds reserved-but-waiting jobs first (in order), then the
  // unreserved tail — submission order within each group is preserved, and
  // reserved jobs all precede unreserved ones in the original order too.
  std::sort(queue_.begin(), queue_.end());
}

void DepthBackfill::onSimulationEnd(sim::Simulator& /*simulator*/) {
  SPS_CHECK_MSG(queue_.empty(), "depth-backfill queue not drained");
}

}  // namespace sps::sched
