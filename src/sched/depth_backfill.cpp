#include "sched/depth_backfill.hpp"

#include <algorithm>
#include <sstream>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {

DepthBackfill::DepthBackfill(DepthConfig config)
    : config_(config), ledger_(config.kernelMode) {
  SPS_CHECK_MSG(config_.depth >= 1, "reservation depth must be >= 1");
}

std::string DepthBackfill::name() const {
  std::ostringstream os;
  if (config_.depth == kUnlimitedDepth) os << "Depth-BF(inf)";
  else os << "Depth-BF(" << config_.depth << ")";
  return os.str();
}

Time DepthBackfill::guaranteeOf(JobId job) const {
  // guarantees_ parallels the reserved prefix of queue_, which is in
  // submission order; trace ids are dense in submission order, so the
  // vector is sorted by id and binary search applies. The sps::check
  // guarantee oracle polls this per queued job per sampled event, so the
  // old linear scan would make checked depth-inf runs O(queue^2).
  const auto it = std::lower_bound(
      guarantees_.begin(), guarantees_.end(), job,
      [](const std::pair<JobId, Time>& entry, JobId id) {
        return entry.first < id;
      });
  if (it == guarantees_.end() || it->first != job) return kNoTime;
  return it->second;
}

void DepthBackfill::onSimulationStart(sim::Simulator& simulator) {
  ledger_.attach(simulator);
  queue_.clear();
  guarantees_.clear();
}

void DepthBackfill::onJobArrival(sim::Simulator& simulator, JobId job) {
  // The new arrival has the highest id, so push_back keeps queue_ sorted.
  queue_.push_back(job);
  // An arrival never changes the availability function, so incremental
  // mode can skip re-anchoring existing guarantees entirely.
  if (config_.kernelMode == kernel::KernelMode::Incremental) {
    simulator.counters().inc(obs::Counter::ArrivalFastPaths);
    incrementalPass(simulator);
  } else {
    rebuild(simulator);
  }
}

void DepthBackfill::onJobCompletion(sim::Simulator& simulator, JobId job) {
  // Same fast-path rule as conservative compression: an on-time completion
  // leaves the function unchanged, making every pass-1 re-anchor the
  // identity (see conservative.cpp for the argument). Early completions
  // free capacity and take the full rebuild.
  if (config_.kernelMode == kernel::KernelMode::Incremental &&
      kernel::completionPreservesProfile(simulator, job)) {
    simulator.counters().inc(obs::Counter::CompletionFastPaths);
    incrementalPass(simulator);
  } else {
    rebuild(simulator);
  }
}

void DepthBackfill::incrementalPass(sim::Simulator& simulator) {
  ledger_.refresh(simulator);
  const Time now = simulator.now();
  std::vector<JobId> pending;
  pending.swap(queue_);
  // Pass-1 membership is positional, exactly as in rebuild(): the first
  // min(depth, pending) jobs, started ones included. Guaranteed jobs are
  // always the lowest-id queued jobs (new arrivals take higher ids, and
  // unreserved tail jobs outrank every pass-1 job), so they appear as a
  // prefix of pending, in guarantee-list order.
  const std::size_t passOne =
      std::min<std::size_t>(config_.depth, pending.size());
  std::vector<std::pair<JobId, Time>> oldGuarantees;
  oldGuarantees.swap(guarantees_);
  std::size_t consumed = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const JobId id = pending[i];
    const auto& j = simulator.job(id);
    if (i < passOne) {
      if (consumed < oldGuarantees.size() &&
          oldGuarantees[consumed].first == id) {
        // Existing guarantee: a fixed point of re-anchoring. Start it when
        // due and physically possible; otherwise leave its ledger entry
        // untouched (a pending same-timestamp completion retries later in
        // the cascade).
        const Time start = oldGuarantees[consumed++].second;
        if (start == now && j.procs <= simulator.freeCount()) {
          ledger_.removeReservation(id);
          simulator.startJob(id);
        } else {
          queue_.push_back(id);
          guarantees_.emplace_back(id, start);
        }
      } else {
        // Promotion into a pass-1 slot (freed by starts, or the arrival
        // itself): anchor exactly as rebuild() would.
        const auto anchor = engine_.anchorOf(simulator, id);
        if (anchor.startNow) {
          simulator.startJob(id);
        } else {
          queue_.push_back(id);
          guarantees_.emplace_back(id, anchor.start);
          ledger_.addReservation(id, anchor.start, j.estimate, j.procs);
        }
      }
    } else {
      // Pass 2: unreserved jobs backfill iff their earliest anchor is now.
      const auto anchor = engine_.anchorOf(simulator, id);
      if (anchor.startNow) {
        simulator.counters().inc(obs::Counter::BackfillStarts);
        simulator.startJob(id);
      } else {
        queue_.push_back(id);
      }
    }
  }
  SPS_CHECK_MSG(consumed == oldGuarantees.size(),
                "guarantee list out of sync with the queue prefix");
}

void DepthBackfill::rebuild(sim::Simulator& simulator) {
  simulator.counters().inc(obs::Counter::FullPasses);
  SPS_TRACE(&simulator.recorder(),
            obs::instant("policy", "depth.rebuild", simulator.now()));
  // Drop every guarantee from the ledger before re-anchoring: job k must be
  // anchored against running jobs + re-anchored jobs 0..k-1 only, never
  // against later jobs' old slots. Zombie handling is conservative's: a job
  // whose estimated end is exactly now() counts as done; its completion
  // event fires in this timestamp batch and triggers another rebuild.
  ledger_.refresh(simulator);
  for (const auto& [id, start] : guarantees_) {
    (void)start;
    ledger_.removeReservation(id);
  }

  std::vector<std::pair<JobId, Time>> oldGuarantees;
  oldGuarantees.swap(guarantees_);

  // Pass-1 membership is positional (the first `depth` queued jobs), but
  // the re-anchoring ORDER is increasing old guarantee, exactly as in
  // conservative compression: a job re-anchored earlier only moves left,
  // into times strictly before its old start and therefore before every
  // later old start, so each job's old slot stays feasible and guarantees
  // never regress. Queue order would break that — an earlier-queued job's
  // improved anchor can steal the hole a later-queued job was anchored in.
  // Guaranteed jobs are always the lowest-id prefix of the sorted queue,
  // so a lockstep scan recovers each old guarantee; never-guaranteed slots
  // (promotions) anchor last, in queue order.
  std::vector<JobId> pending;
  pending.swap(queue_);
  const std::size_t passOne =
      std::min<std::size_t>(config_.depth, pending.size());
  std::vector<std::pair<Time, JobId>> passOneOrder;
  passOneOrder.reserve(passOne);
  std::size_t consumed = 0;
  for (std::size_t i = 0; i < passOne; ++i) {
    Time previous = kTimeMax;  // never guaranteed: anything is an improvement
    if (consumed < oldGuarantees.size() &&
        oldGuarantees[consumed].first == pending[i]) {
      previous = oldGuarantees[consumed++].second;
    }
    passOneOrder.emplace_back(previous, pending[i]);
  }
  SPS_CHECK_MSG(consumed == oldGuarantees.size(),
                "guarantee list out of sync with the queue prefix");
  std::stable_sort(passOneOrder.begin(), passOneOrder.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  for (const auto& [previous, id] : passOneOrder) {
    const auto& j = simulator.job(id);
    const auto anchor = engine_.anchorOf(simulator, id);
    SPS_CHECK_MSG(anchor.start <= previous,
                  "depth-backfill guarantee regressed for job " << id);
    if (anchor.startNow) {
      simulator.startJob(id);
    } else {
      queue_.push_back(id);
      guarantees_.emplace_back(id, anchor.start);
      ledger_.addReservation(id, anchor.start, j.estimate, j.procs);
    }
  }
  // Restore guarantees_ to queue-prefix (id) order — the lockstep scans
  // above and in incrementalPass() depend on it.
  std::sort(guarantees_.begin(), guarantees_.end());

  std::vector<JobId> backfillCandidates(pending.begin() +
                                            static_cast<std::ptrdiff_t>(passOne),
                                        pending.end());

  // Pass 2: unreserved jobs backfill iff they fit *now* without delaying
  // any reservation — i.e. their earliest anchor against the profile
  // (running + all reservations + earlier backfills) is the present.
  for (JobId id : backfillCandidates) {
    const auto anchor = engine_.anchorOf(simulator, id);
    if (anchor.startNow) {
      simulator.counters().inc(obs::Counter::BackfillStarts);
      simulator.startJob(id);
    } else {
      queue_.push_back(id);
    }
  }

  // queue_ now holds reserved-but-waiting jobs first (in order), then the
  // unreserved tail — submission order within each group is preserved, and
  // reserved jobs all precede unreserved ones in the original order too.
  std::sort(queue_.begin(), queue_.end());
}

void DepthBackfill::onSimulationEnd(sim::Simulator& /*simulator*/) {
  SPS_CHECK_MSG(queue_.empty(), "depth-backfill queue not drained");
}

}  // namespace sps::sched
