// Selective Suspension (SS) and Tunable Selective Suspension (TSS) —
// Section IV of the paper, the primary contribution.
//
// Priority-based local preemption on top of reservation-free backfilling:
//
//  * Suspension priority = expansion factor (Eq. 2): (wait + estimate) /
//    estimate, where wait accrues only while queued or suspended. It grows
//    fast for short jobs, slowly for long jobs, and grows without bound —
//    that is the starvation-freedom argument that lets SS drop reservation
//    guarantees entirely.
//  * An idle job may suspend a running job only if its priority is at least
//    SF (the suspension factor) times the running job's priority. SF = 2
//    provably eliminates repeated mutual suspension of equal-length tasks;
//    smaller SF trades more suspensions for better short-job service
//    (Section IV-A, Figs. 4-6).
//  * Half-width rule: a preemptor must request at least half the processors
//    of each victim, so narrow jobs cannot evict wide ones (wide jobs
//    already struggle to collect victims; Section IV-B).
//  * Reentry: a suspended job must reclaim its exact processors (local
//    preemption, no migration). When it attempts reentry it may preempt the
//    current occupants of those processors under the same priority test, and
//    the half-width rule is waived so a narrow job stranded under a wide one
//    is not stuck until the wide job completes (Section IV-C).
//  * The preemption routine runs every minute (Section IV-B); plain
//    dispatch (start whatever fits, highest priority first, skipping past
//    blocked jobs — backfilling without guarantees) runs on every event.
//  * TSS (Section IV-E): a running job whose priority already exceeds its
//    category limit (1.5 x that category's average slowdown under NS) may
//    not be preempted, which caps worst-case slowdown/turnaround without
//    hurting the averages.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sched/core/priority_index.hpp"
#include "sched/core/victim_index.hpp"
#include "sim/policy.hpp"
#include "sim/procset.hpp"
#include "workload/category.hpp"

namespace sps::sched {

/// How fresh starts treat processors "owed" to suspended jobs (which must
/// resume on their exact original sets — local preemption, no migration).
enum class OwedProcsPolicy {
  /// Ignore ownership: allocate lowest-numbered free processors.
  Squat,
  /// Draw from un-owed processors first, dip into owed sets for shortfall.
  Prefer,
  /// Hard lease: fresh jobs never take owed processors; only the preemption
  /// path may (a preemptor consumes its own victims' processors). This is
  /// the only discipline under which suspended jobs are guaranteed to
  /// reassemble their sets within their occupants' remaining runtimes, and
  /// it is required to reproduce the paper's utilization-vs-load results
  /// (Figs. 35/38) — see bench_ablation_allocation.
  Lease,
};

struct SsConfig {
  /// Minimum ratio of preemptor priority to victim priority (SF). The paper
  /// evaluates 1.5, 2, and 5; values below 1 allow priority inversions and
  /// are rejected.
  double suspensionFactor = 2.0;

  /// Enforce the half-width rule for fresh (never-suspended) preemptors.
  bool halfWidthRule = true;

  /// Period of the preemption routine, seconds.
  Time preemptionInterval = kMinute;

  /// Fresh-start discipline for processors owed to suspended jobs.
  OwedProcsPolicy owedProcs = OwedProcsPolicy::Lease;

  /// Migratable-job model (Parsons & Sevcik, paper related work): a
  /// suspended job may restart on ANY free processors instead of its exact
  /// original set. The paper's main model — and the default — is local
  /// preemption (no migration); this flag exists to quantify what the
  /// no-migration constraint costs (bench_ablation_migration).
  bool migratableJobs = false;

  /// TSS: per-Category16 victim-protection limits. A running job whose
  /// current priority >= limit of its category cannot be suspended. The
  /// category is computed from the *estimate* (the only runtime signal a
  /// real scheduler has). std::nullopt = plain (untuned) SS.
  std::optional<std::array<double, workload::kNumCategories16>> tssLimits;

  /// Online-adaptive TSS (extension): instead of pre-calibrated limits,
  /// maintain a running average of completed jobs' bounded slowdowns per
  /// category and protect victims above multiplier x that average. A
  /// category protects nothing until it has tssOnlineMinSamples
  /// completions. Mutually exclusive with tssLimits.
  std::optional<double> tssOnlineMultiplier;
  std::size_t tssOnlineMinSamples = 20;

  /// Maintenance mode of the kernel priority index (sched/core). Rebuild
  /// re-sorts the idle set on every walk, as the seed implementation did.
  kernel::KernelMode kernelMode = kernel::KernelMode::Incremental;
};

class SelectiveSuspension final : public sim::SchedulingPolicy {
 public:
  explicit SelectiveSuspension(SsConfig config);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const SsConfig& config() const { return config_; }

  void onSimulationStart(sim::Simulator& simulator) override;
  void onJobArrival(sim::Simulator& simulator, JobId job) override;
  void onJobCompletion(sim::Simulator& simulator, JobId job) override;
  void onSuspendDrained(sim::Simulator& simulator, JobId job) override;
  void onTimer(sim::Simulator& simulator, std::uint64_t tag) override;
  /// Idle membership lives in the kernel PriorityIndex, which follows the
  /// ->Cancelled transition like any other departure; the only policy-owned
  /// reference to repair is a capacity claim held by the cancelled job.
  [[nodiscard]] bool supportsCancel() const override { return true; }
  void onJobCancelled(sim::Simulator& simulator, JobId job) override;
  void onSimulationEnd(sim::Simulator& simulator) override;

  /// Preemptions initiated (== victims suspended) so far.
  [[nodiscard]] std::uint64_t preemptionsInitiated() const {
    return preemptions_;
  }

  /// Current TSS victim-protection limit applying to `job`: the static
  /// per-category limit (tssLimits), or the online average once the job's
  /// category has enough samples; nullopt when no protection applies
  /// (plain SS, or an online category still warming up). Evaluated against
  /// the same state victimEligible sees, so the sps::check TSS-bound
  /// oracle can assert every suspension honoured it.
  [[nodiscard]] std::optional<double> victimProtectionLimit(
      const sim::Simulator& s, JobId job) const;

 private:
  /// A preemptor that paid for suspensions whose processors are still
  /// draining (only arises with an overhead model). The claim fences the
  /// capacity it is owed against other starters.
  struct Claim {
    JobId job;
    bool exact;  ///< reentry claim: the job's saved processor set is fenced
  };

  [[nodiscard]] bool isClaimant(JobId id) const;
  /// Sum of processor counts owed to count-based (fresh) claims. Served
  /// from a dirty-flagged cache invalidated on claims_ mutation.
  [[nodiscard]] std::uint32_t claimedCount(const sim::Simulator& s) const;
  /// Union of processor sets fenced by exact (reentry) claims. Same cache.
  [[nodiscard]] const sim::ProcSet& claimedSet(const sim::Simulator& s) const;
  /// Rebuild both claim caches if claims_ changed since the last read.
  void refreshClaims(const sim::Simulator& s) const;

  /// Union of processor sets owed to suspended jobs (they must resume on
  /// exactly these). Fresh starts avoid them when possible so suspended
  /// jobs are not stranded behind squatters. Served from the simulator's
  /// refcounted suspendedOwedSet() aggregate — O(1), audited by sps::check.
  [[nodiscard]] const sim::ProcSet& suspendedSets(
      const sim::Simulator& s) const;

  /// Start a fresh job, preferring processors no suspended job is owed.
  void startFreshPreferring(sim::Simulator& s, JobId id);

  /// Victim-protection test: priority ratio, TSS limit, and (for fresh
  /// preemptors) the half-width rule.
  [[nodiscard]] bool victimEligible(const sim::Simulator& s, JobId victim,
                                    double preemptorPriority,
                                    std::uint32_t preemptorWidth,
                                    bool reentry) const;

  /// Idle jobs (Queued + Suspended) ordered by descending priority; ties
  /// broken by submit time then id for determinism. Snapshot of the kernel
  /// priority index; callers skip claimants (and anything that changed
  /// state mid-walk) at the point of use.
  [[nodiscard]] std::vector<JobId> idleByPriority(const sim::Simulator& s);

  /// Start/resume everything that fits on unclaimed free processors,
  /// claimants first. Runs on every event.
  void dispatch(sim::Simulator& simulator);

  /// The paper's preemption routine (pseudocode, Section IV-C). Runs on the
  /// periodic timer; dispatches by kernel mode.
  void preemptionPass(sim::Simulator& simulator);
  /// Reference shape: sort the whole running set, test every victim per
  /// candidate. The bit-identical baseline the golden suite pins.
  void preemptionPassRebuild(sim::Simulator& simulator);
  /// Indexed shape: VictimIndex range queries + gain bound + 16-way merge.
  /// Same decisions as Rebuild (argued inline), a fraction of the work.
  void preemptionPassIncremental(sim::Simulator& simulator);

  /// Tick gate (Incremental only): one sweep over the idle jobs that both
  /// decides skippability and gathers the pass's working set. Returns true
  /// when this tick's pass is provably a no-op — every idle candidate's
  /// priority is below SF x the weakest running priority, so every SF test
  /// in the pass would fail. Otherwise tickPrefix_ holds the (priority, id)
  /// pairs at or above that threshold — exactly the candidates the pass
  /// can reach before its live break — so the pass needs no further index
  /// work. Caches the verdict with a transition stamp and an algebraic
  /// horizon so consecutive quiet ticks skip in O(1).
  [[nodiscard]] bool tickPassSkippable(sim::Simulator& simulator);

  /// Suspend `victims` on behalf of preemptor `id` needing `width` procs
  /// beyond `freeNow`: widest-first until covered, then claim or place the
  /// preemptor. The tail shared verbatim by both pass shapes.
  void executeFreshPreemption(sim::Simulator& simulator, JobId id,
                              std::uint32_t width, std::uint32_t freeNow,
                              std::vector<JobId>& victims);

  void armTick(sim::Simulator& simulator);

  SsConfig config_;
  kernel::PriorityIndex idleIndex_;
  kernel::VictimIndex victimIndex_;
  std::vector<Claim> claims_;
  /// Claim-fence caches; claims_ mutations set claimsDirty_.
  mutable sim::ProcSet claimedSetCache_;
  mutable std::uint32_t claimedCountCache_ = 0;
  mutable bool claimsDirty_ = true;
  /// Tick-gate cache: while SimTransitions still equals gateStamp_ and
  /// now < gateSkipUntil_, the last gate verdict (skip) still holds.
  std::uint64_t gateStamp_ = ~std::uint64_t{0};
  Time gateSkipUntil_ = kNoTime;
  /// Gate-sweep carryover into the pass: idle candidates at or above the
  /// SF threshold as (priority, id), unsorted until the pass sorts them.
  std::vector<std::pair<double, JobId>> tickPrefix_;
  /// Earliest time a below-threshold candidate can cross SF x minPriority
  /// (from the gate sweep) / earliest time any examined candidate's failed
  /// arm can go live via an SF-boundary crossing (from a no-op pass). Their
  /// min extends gateSkipUntil_ past passes that ran but did nothing.
  Time sweepHorizon_ = kNoTime;
  Time passHorizon_ = kNoTime;
  /// Pass scratch, reused across ticks to avoid per-pass allocation.
  std::vector<JobId> occupantsScratch_;
  std::vector<JobId> victimsScratch_;
  std::vector<std::uint64_t> seenStamp_;  ///< occupant dedup, per job
  std::uint64_t seenGen_ = 0;
  bool tickArmed_ = false;
  std::uint64_t preemptions_ = 0;
  /// Online-TSS state: running average slowdown of completed jobs per
  /// estimate-based category.
  std::array<std::pair<std::uint64_t, double>, workload::kNumCategories16>
      onlineSlowdowns_{};
};

}  // namespace sps::sched
