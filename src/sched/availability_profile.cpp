#include "sched/availability_profile.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sps::sched {

AvailabilityProfile::AvailabilityProfile(Time origin, std::uint32_t totalProcs)
    : origin_(origin), total_(totalProcs) {
  steps_.push_back({origin, totalProcs});
}

std::size_t AvailabilityProfile::stepIndex(Time t) const {
  SPS_CHECK_MSG(t >= origin_, "profile query at " << t << " before origin "
                                                  << origin_);
  // Last step with start <= t.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Time value, const Step& s) { return value < s.start; });
  SPS_CHECK(it != steps_.begin());
  return static_cast<std::size_t>(std::distance(steps_.begin(), it)) - 1;
}

std::size_t AvailabilityProfile::splitAt(Time t) {
  const std::size_t i = stepIndex(t);
  if (steps_[i].start == t) return i;
  steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                {t, steps_[i].free});
  return i + 1;
}

void AvailabilityProfile::addBusy(Time start, Time end, std::uint32_t procs) {
  if (procs == 0) return;
  start = std::max(start, origin_);
  if (start >= end) return;
  const std::size_t first = splitAt(start);
  const std::size_t last = splitAt(end);  // step starting exactly at `end`
  for (std::size_t i = first; i < last; ++i) {
    SPS_CHECK_MSG(steps_[i].free >= procs,
                  "profile oversubscribed at t=" << steps_[i].start << ": "
                      << steps_[i].free << " free, adding " << procs);
    steps_[i].free -= procs;
  }
}

void AvailabilityProfile::removeBusy(Time start, Time end,
                                     std::uint32_t procs) {
  if (procs == 0) return;
  start = std::max(start, origin_);
  if (start >= end) return;
  const std::size_t first = splitAt(start);
  std::size_t last = splitAt(end);  // step starting exactly at `end`
  for (std::size_t i = first; i < last; ++i) {
    SPS_CHECK_MSG(steps_[i].free + procs <= total_,
                  "profile over-freed at t=" << steps_[i].start << ": "
                      << steps_[i].free << " free, returning " << procs);
    steps_[i].free += procs;
  }
  // Coalesce the touched range (one step either side included): removal can
  // equalize availability across the boundaries it just created, and an
  // incremental ledger would otherwise accumulate dead breakpoints with
  // every reservation it re-anchors. Dropping a step never changes the
  // function, so comparing against the compacted predecessor is the same as
  // comparing against the original one.
  const std::size_t lo = std::max<std::size_t>(first, 1);
  const std::size_t hi = std::min(last + 1, steps_.size() - 1);
  std::size_t write = lo;
  for (std::size_t read = lo; read < steps_.size(); ++read) {
    if (read <= hi && steps_[write - 1].free == steps_[read].free) continue;
    steps_[write++] = steps_[read];
  }
  steps_.resize(write);
}

void AvailabilityProfile::shiftOrigin(Time newOrigin) {
  SPS_CHECK_MSG(newOrigin >= origin_, "shiftOrigin moving backwards: "
                                          << newOrigin << " < " << origin_);
  if (newOrigin == origin_) return;
  const std::size_t i = stepIndex(newOrigin);
  if (i > 0)
    steps_.erase(steps_.begin(),
                 steps_.begin() + static_cast<std::ptrdiff_t>(i));
  steps_.front().start = newOrigin;
  origin_ = newOrigin;
}

std::uint32_t AvailabilityProfile::freeAt(Time t) const {
  return steps_[stepIndex(t)].free;
}

std::uint32_t AvailabilityProfile::minFreeIn(Time start, Time end) const {
  SPS_CHECK(start < end);
  std::uint32_t m = total_;
  for (std::size_t i = stepIndex(start); i < steps_.size(); ++i) {
    if (steps_[i].start >= end) break;
    m = std::min(m, steps_[i].free);
  }
  return m;
}

Time AvailabilityProfile::findAnchor(Time notBefore, Time duration,
                                     std::uint32_t procs) const {
  SPS_CHECK_MSG(procs <= total_, "job wider than machine");
  SPS_CHECK(duration > 0);
  notBefore = std::max(notBefore, origin_);
  std::size_t i = stepIndex(notBefore);
  while (true) {
    // Candidate anchor: max(notBefore, current step start).
    const Time anchor = std::max(notBefore, steps_[i].start);
    if (steps_[i].free >= procs) {
      // Scan forward to confirm the window [anchor, anchor+duration).
      bool ok = true;
      for (std::size_t k = i; k < steps_.size(); ++k) {
        if (steps_[k].start >= anchor + duration) break;
        if (steps_[k].free < procs) {
          ok = false;
          i = k;  // restart the search at the blocking step
          break;
        }
      }
      if (ok) return anchor;
    }
    // Advance past the blocking step.
    ++i;
    SPS_CHECK_MSG(i < steps_.size(),
                  "no anchor found — profile never drains (bug)");
  }
}

bool AvailabilityProfile::sameFunctionAs(
    const AvailabilityProfile& other) const {
  if (origin_ != other.origin_ || total_ != other.total_) return false;
  // Merge-walk the two breakpoint sequences, comparing the free value over
  // every maximal interval of the union. Both step vectors are non-empty
  // (the constructor seeds one step) and the last step extends forever.
  std::size_t i = 0;
  std::size_t j = 0;
  while (true) {
    if (steps_[i].free != other.steps_[j].free) return false;
    const Time nextA =
        i + 1 < steps_.size() ? steps_[i + 1].start : kTimeMax;
    const Time nextB =
        j + 1 < other.steps_.size() ? other.steps_[j + 1].start : kTimeMax;
    if (nextA == kTimeMax && nextB == kTimeMax) return true;
    if (nextA <= nextB) ++i;
    if (nextB <= nextA) ++j;
  }
}

}  // namespace sps::sched
