#include "sched/immediate_service.hpp"

#include <algorithm>

#include "sim/simulator.hpp"

namespace sps::sched {

ImmediateService::ImmediateService(IsConfig config)
    : config_(config),
      waitingIndex_(kernel::IndexOrder::SubmitAsc, config.kernelMode) {
  SPS_CHECK_MSG(config_.quantum > 0, "IS quantum must be positive");
}

void ImmediateService::onSimulationStart(sim::Simulator& /*simulator*/) {
  waitingIndex_.reset();
}

bool ImmediateService::inFirstQuantum(const sim::Simulator& s,
                                      JobId id) const {
  const auto& x = s.exec(id);
  return s.state(id) == sim::JobState::Running && x.suspendCount == 0 &&
         s.accumulatedRun(id) < config_.quantum;
}

bool ImmediateService::anyWaitingWork(const sim::Simulator& s) const {
  return !s.queuedJobs().empty() || !s.suspendedJobs().empty();
}

void ImmediateService::onJobArrival(sim::Simulator& simulator, JobId job) {
  grantImmediateService(simulator, job);
  dispatch(simulator);
}

void ImmediateService::onJobCompletion(sim::Simulator& simulator,
                                       JobId /*job*/) {
  dispatch(simulator);
}

void ImmediateService::onSuspendDrained(sim::Simulator& simulator,
                                        JobId /*job*/) {
  dispatch(simulator);
}

void ImmediateService::onTimer(sim::Simulator& simulator, std::uint64_t tag) {
  // Quantum-expiry timer; the tag is the job id.
  const JobId job = static_cast<JobId>(tag);
  const auto& x = simulator.exec(job);
  if (simulator.state(job) != sim::JobState::Running || x.suspendCount != 0)
    return;  // finished or already preempted some other way
  // Suspend only if some waiting job could actually use the processors.
  const std::uint32_t wouldFree =
      simulator.freeCount() + simulator.job(job).procs;
  const sim::ProcSet wouldFreeSet =
      simulator.freeSet() | simulator.exec(job).procs;
  bool helpsSomeone = false;
  for (JobId w : simulator.queuedJobs())
    helpsSomeone |= simulator.job(w).procs <= wouldFree;
  for (JobId w : simulator.suspendedJobs())
    if (w != job && simulator.state(w) == sim::JobState::Suspended)
      helpsSomeone |= simulator.exec(w).procs.isSubsetOf(wouldFreeSet);
  if (helpsSomeone) {
    simulator.suspendJob(job);
    ++preemptions_;
    dispatch(simulator);
  }
}

void ImmediateService::grantImmediateService(sim::Simulator& simulator,
                                             JobId job) {
  const auto& j = simulator.job(job);
  SPS_CHECK(simulator.state(job) == sim::JobState::Queued);
  if (pendingGrant_ != kInvalidJob) return;  // one outstanding grant at a time
  if (j.procs > simulator.freeCount()) {
    // Collect victims: lowest instantaneous-xfactor first, skipping jobs
    // still inside their own guaranteed quantum.
    std::vector<JobId> running(simulator.runningJobs());
    std::sort(running.begin(), running.end(),
              [&simulator](JobId a, JobId b) {
                const double xa = simulator.instantaneousXfactor(a);
                const double xb = simulator.instantaneousXfactor(b);
                if (xa != xb) return xa < xb;
                return a < b;
              });
    std::uint32_t gain = 0;
    std::vector<JobId> victims;
    for (JobId r : running) {
      if (inFirstQuantum(simulator, r)) continue;
      victims.push_back(r);
      gain += simulator.job(r).procs;
      if (simulator.freeCount() + gain >= j.procs) break;
    }
    if (simulator.freeCount() + gain < j.procs)
      return;  // immediate service impossible; the job queues normally
    bool anyDraining = false;
    for (JobId r : victims) {
      simulator.suspendJob(r);
      ++preemptions_;
      if (simulator.state(r) == sim::JobState::Suspending)
        anyDraining = true;
    }
    if (anyDraining) {
      // Fence the freed capacity: until this job starts, dispatch() serves
      // nobody else.
      pendingGrant_ = job;
      return;
    }
  }
  if (j.procs <= simulator.freeCount()) {
    simulator.startJob(job);
    if (j.estimate > config_.quantum)
      simulator.scheduleTimer(simulator.now() + config_.quantum, job);
  }
}

void ImmediateService::dispatch(sim::Simulator& simulator) {
  // An outstanding grant owns every processor that frees up until it runs.
  if (pendingGrant_ != kInvalidJob) {
    const JobId job = pendingGrant_;
    SPS_CHECK(simulator.state(job) == sim::JobState::Queued);
    if (simulator.job(job).procs <= simulator.freeCount()) {
      pendingGrant_ = kInvalidJob;
      simulator.startJob(job);
      if (simulator.job(job).estimate > config_.quantum)
        simulator.scheduleTimer(simulator.now() + config_.quantum, job);
    } else {
      return;  // still draining; nobody else may start
    }
  }

  // Single greedy pass over all waiting work in submission order. Starts
  // and resumptions only consume processors, so one pass is complete.
  //
  // The owed set starts from the simulator's refcounted aggregate (the
  // union the old per-dispatch suspended-list scan rebuilt) but must be a
  // local snapshot: the walk below subtracts each resumed job's processors
  // as it goes, and that running remainder is policy bookkeeping the
  // live aggregate does not mirror (overlapping owed sets refcount).
  sim::ProcSet owed = simulator.suspendedOwedSet();
  for (JobId id : waitingIndex_.walk(simulator, kernel::IdleFilter::Idle)) {
    const auto& x = simulator.exec(id);
    if (simulator.state(id) == sim::JobState::Suspended) {
      // Never bounce a job suspended at this very instant straight back in
      // — the suspension was made to give its processors to someone else.
      if (x.waitSince == simulator.now()) continue;
      if (x.procs.isSubsetOf(simulator.freeSet())) {
        owed -= x.procs;
        simulator.resumeJob(id);
      }
    } else if (simulator.job(id).procs <= simulator.freeCount()) {
      // Prefer processors no suspended job is owed, so suspended jobs are
      // not stranded behind squatters.
      if ((simulator.freeSet() - owed).count() >= simulator.job(id).procs)
        simulator.startJobAvoiding(id, owed);
      else
        simulator.startJob(id);
      if (simulator.job(id).estimate > config_.quantum)
        simulator.scheduleTimer(simulator.now() + config_.quantum, id);
    }
  }

  // The immediate-service guarantee is outstanding for any job that has
  // never computed: retry the grant for the oldest such job (one per pass,
  // so a hard-to-place job cannot cascade suspensions for its whole cohort).
  JobId oldest = kInvalidJob;
  for (JobId id : simulator.queuedJobs()) {
    if (simulator.exec(id).firstStart != kNoTime) continue;
    if (oldest == kInvalidJob ||
        simulator.job(id).submit < simulator.job(oldest).submit ||
        (simulator.job(id).submit == simulator.job(oldest).submit &&
         id < oldest))
      oldest = id;
  }
  if (oldest != kInvalidJob) grantImmediateService(simulator, oldest);
}

void ImmediateService::onSimulationEnd(sim::Simulator& simulator) {
  SPS_CHECK_MSG(pendingGrant_ == kInvalidJob,
                "IS grant left pending at end of run");
  SPS_CHECK_MSG(simulator.queuedJobs().empty(),
                "IS queue not drained at end of run");
  SPS_CHECK_MSG(simulator.suspendedJobs().empty(),
                "IS left suspended jobs stranded");
}

}  // namespace sps::sched
