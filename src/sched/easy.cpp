#include "sched/easy.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {

void EasyBackfill::onSimulationStart(sim::Simulator& simulator) {
  ledger_.attach(simulator);
  queue_.clear();
}

void EasyBackfill::enqueue(const sim::Simulator& simulator, JobId job) {
  if (config_.order == QueueOrder::Fcfs) {
    queue_.push_back(job);
    return;
  }
  // ShortestFirst: keep the queue sorted by (estimate, submit, id).
  auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), job,
      [&simulator](JobId a, JobId b) {
        const auto& ja = simulator.job(a);
        const auto& jb = simulator.job(b);
        if (ja.estimate != jb.estimate) return ja.estimate < jb.estimate;
        if (ja.submit != jb.submit) return ja.submit < jb.submit;
        return a < b;
      });
  queue_.insert(pos, job);
}

void EasyBackfill::onJobArrival(sim::Simulator& simulator, JobId job) {
  enqueue(simulator, job);
  // Arrival fast path: an arrival changes neither the availability function
  // nor free capacity, so when the pivot is unchanged the previous pass's
  // verdicts stand — the pivot still cannot start, and every older
  // candidate still fails its backfill test (its estimated finish only
  // moved later against the same absolute shadow; a believed completion
  // strictly between two events is impossible, so the shadow is the same
  // absolute instant the last pass saw). Only the newcomer needs a test,
  // and its start can only shrink capacity/extra, enabling nobody else.
  // A zombie (running job whose believed end is exactly now) invalidates
  // the argument — the shadow overlay can push the pivot's anchor later and
  // un-fail older candidates — so that case takes the full pass, as does a
  // newcomer that becomes the pivot (ShortestFirst insert at the head).
  if (config_.kernelMode == kernel::KernelMode::Incremental &&
      queue_.size() > 1 && queue_.front() != job) {
    ledger_.refresh(simulator);
    if (ledger_.zombieProcsAt(simulator.now()) == 0) {
      simulator.counters().inc(obs::Counter::ArrivalFastPaths);
      const auto shadow = engine_.shadowOf(simulator, queue_.front());
      if (engine_.canBackfill(simulator, job, shadow)) {
        queue_.erase(std::find(queue_.begin(), queue_.end(), job));
        simulator.counters().inc(obs::Counter::BackfillStarts);
        simulator.startJob(job);
        ++backfills_;
      } else {
        simulator.counters().inc(obs::Counter::BackfillRejects);
      }
      return;
    }
  }
  schedulePass(simulator);
}

void EasyBackfill::onJobCompletion(sim::Simulator& simulator, JobId /*job*/) {
  schedulePass(simulator);
}

void EasyBackfill::onJobCancelled(sim::Simulator& simulator, JobId job) {
  const auto it = std::find(queue_.begin(), queue_.end(), job);
  SPS_CHECK_MSG(it != queue_.end(), "cancelled job " << job << " not queued");
  queue_.erase(it);
  // A cancelled pivot releases its shadow fence; rescan for newly-feasible
  // starts and backfills.
  schedulePass(simulator);
}

void EasyBackfill::schedulePass(sim::Simulator& simulator) {
  simulator.counters().inc(obs::Counter::FullPasses);
  SPS_TRACE(&simulator.recorder(),
            obs::instant("policy", "easy.pass", simulator.now()));
  // Phase 1: start jobs from the head while they fit.
  while (!queue_.empty() &&
         simulator.job(queue_.front()).procs <= simulator.freeCount()) {
    simulator.startJob(queue_.front());
    queue_.erase(queue_.begin());
  }
  if (queue_.empty()) return;

  // Phase 2: the head does not fit. Compute its shadow time and the extra
  // processors, then backfill. Restart the scan whenever a job starts, since
  // free processors (and hence shadow/extra) change — the ledger follows
  // each start through its observer, so the shadow query always sees the
  // current machine.
  bool progress = true;
  while (progress && !queue_.empty()) {
    progress = false;
    // Inside the loop so KernelMode::Rebuild reconstructs per restart, as
    // the seed did; incremental refresh at an unchanged clock is a no-op.
    ledger_.refresh(simulator);
    const auto shadow = engine_.shadowOf(simulator, queue_.front());
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      const JobId id = queue_[i];
      if (!engine_.canBackfill(simulator, id, shadow)) {
        simulator.counters().inc(obs::Counter::BackfillRejects);
        continue;
      }
      simulator.counters().inc(obs::Counter::BackfillStarts);
      simulator.startJob(id);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      ++backfills_;
      progress = true;
      break;  // recompute shadow/extra with the new machine state
    }
  }
}

void EasyBackfill::onSimulationEnd(sim::Simulator& /*simulator*/) {
  SPS_CHECK_MSG(queue_.empty(), "EASY queue not drained at end of run");
}

}  // namespace sps::sched
