#include "sched/easy.hpp"

#include <algorithm>

#include "sim/simulator.hpp"

namespace sps::sched {

void EasyBackfill::enqueue(const sim::Simulator& simulator, JobId job) {
  if (config_.order == QueueOrder::Fcfs) {
    queue_.push_back(job);
    return;
  }
  // ShortestFirst: keep the queue sorted by (estimate, submit, id).
  auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), job,
      [&simulator](JobId a, JobId b) {
        const auto& ja = simulator.job(a);
        const auto& jb = simulator.job(b);
        if (ja.estimate != jb.estimate) return ja.estimate < jb.estimate;
        if (ja.submit != jb.submit) return ja.submit < jb.submit;
        return a < b;
      });
  queue_.insert(pos, job);
}

void EasyBackfill::onJobArrival(sim::Simulator& simulator, JobId job) {
  enqueue(simulator, job);
  schedulePass(simulator);
}

void EasyBackfill::onJobCompletion(sim::Simulator& simulator, JobId /*job*/) {
  schedulePass(simulator);
}

void EasyBackfill::schedulePass(sim::Simulator& simulator) {
  const Time now = simulator.now();

  // Phase 1: start jobs from the head while they fit.
  while (!queue_.empty() &&
         simulator.job(queue_.front()).procs <= simulator.freeCount()) {
    simulator.startJob(queue_.front());
    queue_.erase(queue_.begin());
  }
  if (queue_.empty()) return;

  // Phase 2: the head does not fit. Compute its shadow time and the extra
  // processors, then backfill. Restart the scan whenever a job starts, since
  // free processors (and hence shadow/extra) change.
  bool progress = true;
  while (progress && !queue_.empty()) {
    progress = false;

    AvailabilityProfile profile(now, simulator.machine().totalProcs());
    for (JobId id : simulator.runningJobs()) {
      const auto& x = simulator.exec(id);
      const Time end = x.segStart + simulator.job(id).estimate;
      profile.addBusy(now, std::max(end, now + 1), simulator.job(id).procs);
    }
    const auto& head = simulator.job(queue_.front());
    const Time shadow = profile.findAnchor(now, head.estimate, head.procs);
    SPS_CHECK_MSG(shadow > now, "head fits now but phase 1 left it queued");
    // Processors not needed by the head once it starts at the shadow time.
    const std::uint32_t freeAtShadow = profile.freeAt(shadow);
    SPS_CHECK(freeAtShadow >= head.procs);
    const std::uint32_t extra = freeAtShadow - head.procs;

    for (std::size_t i = 1; i < queue_.size(); ++i) {
      const JobId id = queue_[i];
      const auto& j = simulator.job(id);
      if (j.procs > simulator.freeCount()) continue;
      const bool endsBeforeShadow = now + j.estimate <= shadow;
      const bool fitsInExtra = j.procs <= extra;
      if (endsBeforeShadow || fitsInExtra) {
        simulator.startJob(id);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        ++backfills_;
        progress = true;
        break;  // recompute shadow/extra with the new machine state
      }
    }
  }
}

void EasyBackfill::onSimulationEnd(sim::Simulator& /*simulator*/) {
  SPS_CHECK_MSG(queue_.empty(), "EASY queue not drained at end of run");
}

}  // namespace sps::sched
