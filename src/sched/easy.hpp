// Aggressive (EASY) backfilling (Section II-A.2 of the paper).
//
// Only the job at the head of the queue holds a reservation: the earliest
// time the required processors are expected to free up given running jobs'
// estimates (the "shadow time"). Any other queued job may start immediately
// if it fits in the currently-free processors AND one of the two conditions
// that protect the head job holds:
//   (1) it is estimated to terminate by the shadow time, or
//   (2) it uses no more processors than will remain free at the shadow time
//       once the head job starts (the "extra" processors).
//
// This is the paper's "No Suspension (NS)" baseline for every evaluation.
// The shadow/extra computation lives in sched/core's BackfillEngine over a
// ReservationLedger; this file keeps only the queue discipline and the
// scan-restart loop.
#pragma once

#include <vector>

#include "sched/core/backfill_engine.hpp"
#include "sched/core/reservation_ledger.hpp"
#include "sim/policy.hpp"

namespace sps::sched {

/// Queue discipline for the backfilling queue.
enum class QueueOrder {
  /// Submission order — the classical EASY scheduler (the paper's NS).
  Fcfs,
  /// Shortest estimated runtime first (SJF-backfill, a common variant in
  /// the backfilling literature; ties broken by submission). Trades
  /// fairness for average slowdown — a useful non-preemptive comparison
  /// point for SS, which achieves short-job service *with* a starvation
  /// guarantee.
  ShortestFirst,
};

struct EasyConfig {
  QueueOrder order = QueueOrder::Fcfs;
  kernel::KernelMode kernelMode = kernel::KernelMode::Incremental;
};

class EasyBackfill final : public sim::SchedulingPolicy {
 public:
  EasyBackfill() = default;
  explicit EasyBackfill(EasyConfig config)
      : config_(config), ledger_(config.kernelMode) {}

  [[nodiscard]] std::string name() const override {
    return config_.order == QueueOrder::Fcfs ? "EASY (NS)" : "SJF-BF";
  }

  void onSimulationStart(sim::Simulator& simulator) override;
  void onJobArrival(sim::Simulator& simulator, JobId job) override;
  void onJobCompletion(sim::Simulator& simulator, JobId job) override;
  /// Cancellation only ever removes a queue entry — the ledger tracks
  /// running jobs and the head's reservation is recomputed per pass, so
  /// there is no bound future state to repair.
  [[nodiscard]] bool supportsCancel() const override { return true; }
  void onJobCancelled(sim::Simulator& simulator, JobId job) override;
  void onSimulationEnd(sim::Simulator& simulator) override;

  /// Number of backfilled starts (started ahead of an earlier-submitted
  /// queued job), for tests and diagnostics.
  [[nodiscard]] std::uint64_t backfillCount() const { return backfills_; }

  /// The kernel ledger backing this policy, for the sps::check ledger
  /// audit. Read-only.
  [[nodiscard]] const kernel::ReservationLedger& ledger() const {
    return ledger_;
  }

 private:
  void schedulePass(sim::Simulator& simulator);
  void enqueue(const sim::Simulator& simulator, JobId job);

  EasyConfig config_;
  kernel::ReservationLedger ledger_;
  kernel::BackfillEngine engine_{ledger_};
  std::vector<JobId> queue_;  ///< FCFS or shortest-first, per config
  std::uint64_t backfills_ = 0;
};

}  // namespace sps::sched
