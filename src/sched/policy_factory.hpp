// Policy factory — the single seam between policy *descriptions* and
// policy *objects*.
//
// Every front end used to hand-roll its own switch over policy names
// (sps_sim's CLI parser, the fuzz harness's token parser, the experiment
// presets), each constructing concrete schedulers with slightly different
// defaults. This registry replaces them:
//
//   * PolicySpec — a plain-data description: which policy, with which
//     per-policy config block. Serializable-by-hand, comparable, and the
//     unit the experiment engine and diff harness pass around.
//   * makePolicy(spec) — the only place a spec becomes a scheduler.
//   * specFromToken("ss:2") — the shared textual form ("fcfs", "easy",
//     "sjf", "depth:4", "depth:inf", "ss:1.5", "tss:2", "tss-online:2",
//     "is", "gang", "conservative") used by CLIs and the fuzzer alike.
//   * withKernelMode(spec, mode) — flip every per-policy kernel-mode knob
//     at once; the golden-equivalence suite and diff harness pin
//     KernelMode::Rebuild as the bit-identical reference lane.
//
// core::PolicySpec et al. remain as aliases of these types, so existing
// callers (and the stable core:: facade) are unaffected.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/conservative.hpp"
#include "sched/depth_backfill.hpp"
#include "sched/easy.hpp"
#include "sched/gang.hpp"
#include "sched/immediate_service.hpp"
#include "sched/selective_suspension.hpp"
#include "sim/policy.hpp"

namespace sps::sched {

enum class PolicyKind {
  Fcfs,
  Conservative,
  Easy,                 ///< the paper's "No Suspension (NS)" baseline
  SelectiveSuspension,  ///< SS; TSS when spec.ss.tssLimits is set
  ImmediateService,
  Gang,                 ///< extension: Ousterhout-matrix time slicing
  DepthBackfill,        ///< extension: K-deep reservation backfilling
};

[[nodiscard]] const char* policyKindName(PolicyKind kind);

struct PolicySpec {
  PolicyKind kind = PolicyKind::Easy;
  SsConfig ss{};        ///< used when kind == SelectiveSuspension
  IsConfig is{};        ///< used when kind == ImmediateService
  EasyConfig easy{};    ///< used when kind == Easy
  GangConfig gang{};    ///< used when kind == Gang
  DepthConfig depth{};  ///< used when kind == DepthBackfill
  ConservativeConfig conservative{};  ///< when kind == Conservative
  /// Optional display label override (defaults to the policy's own name()).
  std::string label;
};

/// Instantiate the policy a spec describes.
[[nodiscard]] std::unique_ptr<sim::SchedulingPolicy> makePolicy(
    const PolicySpec& spec);

/// Display label of a spec: spec.label if set, else the policy's name().
[[nodiscard]] std::string policyLabel(const PolicySpec& spec);

/// Parse the shared textual policy form, "name" or "name:param". The
/// returned spec's label is the token itself. "tss:SF" sets the suspension
/// factor only — the caller supplies the per-category limits (they are
/// derived from a calibration run of the target trace). Throws
/// std::invalid_argument on an unknown name or a malformed parameter.
[[nodiscard]] PolicySpec specFromToken(const std::string& token);

/// One representative token per registry entry (parameterized names carry
/// example parameters) — the fuzzer's policy lane list.
[[nodiscard]] std::vector<std::string> knownPolicyTokens();

/// Copy of `spec` with every per-policy kernel-mode knob set to `mode`.
[[nodiscard]] PolicySpec withKernelMode(PolicySpec spec,
                                        kernel::KernelMode mode);

}  // namespace sps::sched
