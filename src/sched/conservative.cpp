#include "sched/conservative.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {

void ConservativeBackfill::onSimulationStart(sim::Simulator& simulator) {
  ledger_.attach(simulator);
  reservations_.clear();
  guaranteeIndex_.clear();
}

void ConservativeBackfill::recordReservation(sim::Simulator& simulator,
                                             JobId job, Time start) {
  const auto& j = simulator.job(job);
  ledger_.addReservation(job, start, j.estimate, j.procs);
  guaranteeIndex_.emplace(job, start);
}

void ConservativeBackfill::onJobArrival(sim::Simulator& simulator, JobId job) {
  // Anchor against running jobs + every existing reservation. A job whose
  // estimated end is exactly now() has its completion event pending in the
  // same timestamp batch — the ledger treats it as done, and the startNow
  // test defers starts that do not physically fit until that completion
  // fires.
  ledger_.refresh(simulator);
  const auto anchor = engine_.anchorOf(simulator, job);
  if (anchor.startNow) {
    simulator.startJob(job);
  } else {
    recordReservation(simulator, job, anchor.start);
    auto pos = std::upper_bound(
        reservations_.begin(), reservations_.end(), anchor.start,
        [](Time t, const Reservation& r) { return t < r.start; });
    reservations_.insert(pos, {job, anchor.start});
  }
}

void ConservativeBackfill::onJobCompletion(sim::Simulator& simulator,
                                           JobId job) {
  // On-time completions leave the availability function untouched for
  // t >= now (the belief interval expired exactly), and re-anchoring in
  // guarantee order against an unchanged function is the identity: a
  // candidate window earlier than a reservation's start fails at a time
  // strictly before that start, where none of the (later-starting)
  // reservations compression strips could have been the blocker. The full
  // O(reservations x profile) compression therefore reduces to starting
  // the due (start == now) prefix. Gated on incremental mode so the
  // Rebuild lane stays the pre-kernel reference behaviour; the golden-
  // equivalence suite pins the two lanes to identical schedules.
  if (config_.kernelMode == kernel::KernelMode::Incremental &&
      kernel::completionPreservesProfile(simulator, job)) {
    simulator.counters().inc(obs::Counter::CompletionFastPaths);
    startDueReservations(simulator);
  } else {
    compress(simulator);
  }
}

void ConservativeBackfill::startDueReservations(sim::Simulator& simulator) {
  ledger_.refresh(simulator);
  const Time now = simulator.now();
  std::size_t scan = 0;
  std::size_t keep = 0;
  for (; scan < reservations_.size() && reservations_[scan].start <= now;
       ++scan) {
    const Reservation r = reservations_[scan];
    SPS_CHECK_MSG(r.start == now,
                  "reservation for job " << r.job << " missed its slot");
    if (simulator.job(r.job).procs <= simulator.freeCount()) {
      ledger_.removeReservation(r.job);
      guaranteeIndex_.erase(r.job);
      // The ledger's observer re-enters the identical interval as a
      // running segment, so the profile function is preserved.
      simulator.startJob(r.job);
    } else {
      // A completion pending in this timestamp batch still holds the
      // processors; the guarantee stays put and the cascade retries.
      reservations_[keep++] = r;
    }
  }
  reservations_.erase(reservations_.begin() + static_cast<std::ptrdiff_t>(keep),
                      reservations_.begin() + static_cast<std::ptrdiff_t>(scan));
}

void ConservativeBackfill::compress(sim::Simulator& simulator) {
  simulator.counters().inc(obs::Counter::FullPasses);
  SPS_TRACE(&simulator.recorder(),
            obs::instant("policy", "conservative.compress", simulator.now()));
  // Release reservations in order of increasing start guarantee and
  // re-anchor each against the profile of running jobs + the reservations
  // re-anchored so far (paper, Section II-A.1). Every reservation leaves
  // the ledger first: re-anchoring job k must not see jobs k+1.. at their
  // OLD slots.
  ledger_.refresh(simulator);
  std::vector<Reservation> old;
  old.swap(reservations_);
  guaranteeIndex_.clear();
  for (const Reservation& r : old) ledger_.removeReservation(r.job);
  for (const Reservation& r : old) {
    const auto anchor = engine_.anchorOf(simulator, r.job);
    SPS_CHECK_MSG(anchor.start <= r.start,
                  "compression regressed guarantee of job "
                      << r.job << ": " << r.start << " -> " << anchor.start);
    // A start can be deferred when the anchor's processors belong to a job
    // completing at this very instant (its completion event is still
    // pending): keep the reservation at the anchor; the completion cascade
    // re-runs compression at the same timestamp and starts the job then.
    if (anchor.startNow) {
      // The ledger picks the running segment up via its observer.
      simulator.startJob(r.job);
    } else {
      recordReservation(simulator, r.job, anchor.start);
      reservations_.push_back({r.job, anchor.start});
    }
  }
  // Anchors are found in nondecreasing... not necessarily sorted: keep order.
  std::stable_sort(reservations_.begin(), reservations_.end(),
                   [](const Reservation& a, const Reservation& b) {
                     return a.start < b.start;
                   });
}

Time ConservativeBackfill::guaranteeOf(JobId job) const {
  const auto it = guaranteeIndex_.find(job);
  return it == guaranteeIndex_.end() ? kNoTime : it->second;
}

void ConservativeBackfill::onSimulationEnd(sim::Simulator& /*simulator*/) {
  SPS_CHECK_MSG(reservations_.empty(),
                "reservations remain at end of run — jobs stranded");
}

}  // namespace sps::sched
