#include "sched/conservative.hpp"

#include <algorithm>

#include "sim/simulator.hpp"

namespace sps::sched {

AvailabilityProfile ConservativeBackfill::runningProfile(
    const sim::Simulator& simulator) const {
  const Time now = simulator.now();
  AvailabilityProfile profile(now, simulator.machine().totalProcs());
  for (JobId id : simulator.runningJobs()) {
    const auto& x = simulator.exec(id);
    // Non-preemptive: one segment, no overhead; the scheduler believes the
    // job ends at start + estimate. A job whose estimated end is exactly
    // `now` has its completion event pending in the same timestamp batch —
    // the profile treats it as done (addBusy no-ops on an empty interval),
    // and the anchor==now paths below defer starts that do not physically
    // fit until that completion fires.
    const Time end = x.segStart + simulator.job(id).estimate;
    profile.addBusy(now, end, simulator.job(id).procs);
  }
  return profile;
}

void ConservativeBackfill::onJobArrival(sim::Simulator& simulator, JobId job) {
  // Anchor against running jobs + every existing reservation.
  AvailabilityProfile profile = runningProfile(simulator);
  for (const Reservation& r : reservations_) {
    const auto& j = simulator.job(r.job);
    profile.addBusy(r.start, r.start + j.estimate, j.procs);
  }
  const auto& j = simulator.job(job);
  const Time anchor = profile.findAnchor(simulator.now(), j.estimate, j.procs);
  if (anchor == simulator.now() &&
      j.procs <= simulator.machine().freeCount()) {
    simulator.startJob(job);
  } else {
    auto pos = std::upper_bound(
        reservations_.begin(), reservations_.end(), anchor,
        [](Time t, const Reservation& r) { return t < r.start; });
    reservations_.insert(pos, {job, anchor});
  }
}

void ConservativeBackfill::onJobCompletion(sim::Simulator& simulator,
                                           JobId /*job*/) {
  compress(simulator);
}

void ConservativeBackfill::compress(sim::Simulator& simulator) {
  // Release reservations in order of increasing start guarantee and
  // re-anchor each against the rebuilt profile (paper, Section II-A.1).
  AvailabilityProfile profile = runningProfile(simulator);
  std::vector<Reservation> old;
  old.swap(reservations_);
  for (const Reservation& r : old) {
    const auto& j = simulator.job(r.job);
    const Time anchor =
        profile.findAnchor(simulator.now(), j.estimate, j.procs);
    SPS_CHECK_MSG(anchor <= r.start,
                  "compression regressed guarantee of job "
                      << r.job << ": " << r.start << " -> " << anchor);
    // A start can be deferred when the anchor's processors belong to a job
    // completing at this very instant (its completion event is still
    // pending): keep the reservation at `anchor`; the completion cascade
    // re-runs compression at the same timestamp and starts the job then.
    const bool startNow = anchor == simulator.now() &&
                          j.procs <= simulator.machine().freeCount();
    if (startNow) simulator.startJob(r.job);
    profile.addBusy(anchor, anchor + j.estimate, j.procs);
    if (!startNow) reservations_.push_back({r.job, anchor});
  }
  // Anchors are found in nondecreasing... not necessarily sorted: keep order.
  std::stable_sort(reservations_.begin(), reservations_.end(),
                   [](const Reservation& a, const Reservation& b) {
                     return a.start < b.start;
                   });
}

Time ConservativeBackfill::guaranteeOf(JobId job) const {
  for (const Reservation& r : reservations_)
    if (r.job == job) return r.start;
  return kNoTime;
}

void ConservativeBackfill::onSimulationEnd(sim::Simulator& /*simulator*/) {
  SPS_CHECK_MSG(reservations_.empty(),
                "reservations remain at end of run — jobs stranded");
}

}  // namespace sps::sched
