// First-come-first-served scheduling (Section II of the paper).
//
// Jobs start strictly in submission order; the head job blocks everything
// behind it until enough processors free up. Included as the classical
// baseline whose fragmentation losses motivate backfilling.
#pragma once

#include <deque>

#include "sim/policy.hpp"

namespace sps::sched {

class FcfsScheduler final : public sim::SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "FCFS"; }

  void onJobArrival(sim::Simulator& simulator, JobId job) override;
  void onJobCompletion(sim::Simulator& simulator, JobId job) override;
  [[nodiscard]] bool supportsCancel() const override { return true; }
  void onJobCancelled(sim::Simulator& simulator, JobId job) override;
  void onSimulationEnd(sim::Simulator& simulator) override;

 private:
  void dispatch(sim::Simulator& simulator);

  std::deque<JobId> queue_;  ///< submission order
};

}  // namespace sps::sched
