#include "sched/selective_suspension.hpp"

#ifdef SPS_MANUAL_PROF
#include <x86intrin.h>
#include <cstdio>
namespace {
struct ProfAcc {
  unsigned long long t[8] = {};
  ~ProfAcc() {
    std::fprintf(stderr,
                 "PROF(ss Mcycles) dispatch=%llu pass=%llu gate=%llu arrival=%llu\n",
                 t[0] / 1000000, t[1] / 1000000, t[2] / 1000000, t[3] / 1000000);
  }
} profAcc;
struct ProfScope {
  unsigned long long s; int i;
  explicit ProfScope(int idx) : s(__rdtsc()), i(idx) {}
  ~ProfScope() { profAcc.t[i] += __rdtsc() - s; }
};
}  // namespace
#define SPS_PROF(i) ProfScope prof_scope_(i)
#else
#define SPS_PROF(i)
#endif

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {

namespace {
constexpr std::uint64_t kTickTag = 0;

/// Scheduler-visible category of a job: computed from the user estimate,
/// the only runtime signal available before completion.
std::size_t estimateCategory(const workload::Job& j) {
  return workload::category16(j.estimate, j.procs);
}

/// Inclusive processor-count band of a Table-I category's width class.
/// Within a VictimIndex category every member's width falls in this band,
/// so the half-width rule often resolves for the whole category at once.
struct WidthBand {
  std::uint32_t min;
  std::uint32_t max;   ///< meaningless when unbounded
  bool unbounded;
};

WidthBand widthBandOfCategory(std::size_t cat) {
  switch (workload::widthClassOfCategory(cat)) {
    case workload::WidthClass::Sequential:
      return {1, workload::kSequentialMax, false};
    case workload::WidthClass::Narrow:
      return {workload::kSequentialMax + 1, workload::kNarrowMax, false};
    case workload::WidthClass::Wide:
      return {workload::kNarrowMax + 1, workload::kWideMax, false};
    case workload::WidthClass::VeryWide:
      break;
  }
  return {workload::kWideMax + 1, 0, true};
}

/// Last tick-skippable horizon for idle job `id` (current priority `x`,
/// rising linearly in wait) against a frozen `target` threshold: ticks
/// strictly before the returned time still satisfy !(priority >= target).
/// The crossing is estimated algebraically, then re-verified with the
/// simulator's own integer+double arithmetic at the horizon so float
/// rounding can only shrink the window, never hide a live pass.
Time crossingHorizon(const sim::Simulator& s, JobId id, double x,
                     double target) {
  const Time now = s.now();
  if (!(x < target)) return now;
  const auto est = static_cast<double>(s.job(id).estimate);
  const double tc = static_cast<double>(now) + (target - x) * est;
  Time cross = tc >= static_cast<double>(kTimeMax) ? kTimeMax
                                                   : static_cast<Time>(tc) - 1;
  if (cross > now && cross != kTimeMax) {
    const auto wait =
        static_cast<double>(s.accumulatedWait(id) + (cross - 1 - now));
    if (!((wait + est) / est < target)) cross = now;
  }
  return cross;
}
}  // namespace

SelectiveSuspension::SelectiveSuspension(SsConfig config)
    : config_(config),
      idleIndex_(kernel::IndexOrder::XFactorDesc, config.kernelMode) {
  SPS_CHECK_MSG(config_.suspensionFactor >= 1.0,
                "suspension factor must be >= 1");
  SPS_CHECK_MSG(config_.preemptionInterval > 0,
                "preemption interval must be positive");
  SPS_CHECK_MSG(!(config_.tssLimits && config_.tssOnlineMultiplier),
                "static and online TSS limits are mutually exclusive");
  if (config_.tssOnlineMultiplier)
    SPS_CHECK_MSG(*config_.tssOnlineMultiplier > 0,
                  "online TSS multiplier must be positive");
}

std::string SelectiveSuspension::name() const {
  std::ostringstream os;
  if (config_.tssOnlineMultiplier) os << "TSS-online";
  else os << (config_.tssLimits ? "TSS" : "SS");
  os << "(SF=" << config_.suspensionFactor << ")";
  return os.str();
}

void SelectiveSuspension::onSimulationStart(sim::Simulator& simulator) {
  idleIndex_.reset();
  claimsDirty_ = true;
  gateStamp_ = ~std::uint64_t{0};
  gateSkipUntil_ = kNoTime;
  tickPrefix_.clear();
  sweepHorizon_ = kNoTime;
  passHorizon_ = kNoTime;
  if (config_.kernelMode == kernel::KernelMode::Incremental) {
    idleIndex_.attach(simulator);
    victimIndex_.attach(simulator);
  }
}

void SelectiveSuspension::onJobArrival(sim::Simulator& simulator, JobId job) {
  SPS_PROF(3);
  if (config_.kernelMode == kernel::KernelMode::Incremental) {
    // At handler entry the machine sits at a dispatch fixpoint (every
    // handler ends in dispatch() or a proven no-op skip), and an arrival
    // adds no capacity and no claims: claimants and resumes still fail,
    // and every previously queued job still fails its backfill test
    // whether or not the newcomer starts (capacity only shrinks). The
    // full walk therefore reduces to the newcomer's own backfill test —
    // the exact usable/fence arithmetic of the backfill loop.
    const sim::ProcSet& fenced = claimedSet(simulator);
    sim::ProcSet unusable = fenced;
    if (config_.owedProcs == OwedProcsPolicy::Lease)
      unusable |= suspendedSets(simulator);
    const std::uint32_t usableCount =
        (simulator.freeSet() - unusable).count();
    if (usableCount >= simulator.job(job).procs + claimedCount(simulator))
      startFreshPreferring(simulator, job);
    simulator.counters().inc(obs::Counter::DispatchSkips);
  } else {
    dispatch(simulator);
  }
  armTick(simulator);
}

void SelectiveSuspension::onJobCompletion(sim::Simulator& simulator,
                                          JobId job) {
  if (config_.tssOnlineMultiplier) {
    const auto& j = simulator.job(job);
    const auto& x = simulator.exec(job);
    const auto tat = static_cast<double>(x.finish - j.submit);
    const double sd = std::max(
        1.0, tat / static_cast<double>(std::max<Time>(j.runtime, 10)));
    auto& [n, mean] = onlineSlowdowns_[estimateCategory(j)];
    ++n;
    mean += (sd - mean) / static_cast<double>(n);
  }
  dispatch(simulator);
}

void SelectiveSuspension::onSuspendDrained(sim::Simulator& simulator,
                                           JobId /*job*/) {
  dispatch(simulator);
}

void SelectiveSuspension::onJobCancelled(sim::Simulator& simulator,
                                         JobId job) {
  // Drop the cancelled job's capacity claim, if it held one; the fenced
  // processors become dispatchable again immediately.
  const auto it =
      std::find_if(claims_.begin(), claims_.end(),
                   [job](const Claim& c) { return c.job == job; });
  if (it != claims_.end()) {
    claims_.erase(it);
    claimsDirty_ = true;
  }
  dispatch(simulator);
}

void SelectiveSuspension::onTimer(sim::Simulator& simulator,
                                  std::uint64_t tag) {
  SPS_CHECK(tag == kTickTag);
  tickArmed_ = false;
  const bool incremental =
      config_.kernelMode == kernel::KernelMode::Incremental;
  // Every event handler ends in dispatch(), so at tick entry the machine is
  // already at a dispatch fixpoint: each idle job individually fails its
  // feasibility test, and those tests do not depend on the clock. If the
  // pass changes nothing, they all still fail — walk order only matters
  // once some action is taken — so dispatch() is provably a no-op too and
  // is skipped along with (or after) the pass.
  if (incremental && tickPassSkippable(simulator)) {
    simulator.counters().inc(obs::Counter::PassSkips);
    simulator.counters().inc(obs::Counter::DispatchSkips);
  } else {
    const std::uint64_t before =
        simulator.counters().value(obs::Counter::SimTransitions);
    preemptionPass(simulator);
    const bool passActed =
        simulator.counters().value(obs::Counter::SimTransitions) != before;
    if (!incremental || passActed) {
      dispatch(simulator);
    } else {
      simulator.counters().inc(obs::Counter::DispatchSkips);
      // The pass ran and proved itself a no-op. Absent transitions (which
      // invalidate gateStamp_), it can only go live once some candidate
      // crosses an SF boundary it failed this tick — the pass and the gate
      // sweep both recorded the earliest such crossing, so ticks before it
      // skip on the cache.
      gateSkipUntil_ = std::min(sweepHorizon_, passHorizon_);
    }
  }
  if (!simulator.queuedJobs().empty() || !simulator.suspendedJobs().empty())
    armTick(simulator);
}

bool SelectiveSuspension::tickPassSkippable(sim::Simulator& simulator) {
  SPS_PROF(2);
  const std::uint64_t stamp =
      simulator.counters().value(obs::Counter::SimTransitions);
  if (stamp == gateStamp_ && simulator.now() < gateSkipUntil_) return true;
  gateStamp_ = stamp;
  gateSkipUntil_ = simulator.now();
  if (victimIndex_.empty()) {
    // Nothing is running: reentry candidates find no occupants and fresh
    // candidates collect no victims, so the pass cannot act — and cannot
    // start to until some transition puts a job on the machine, which
    // invalidates the stamp.
    gateSkipUntil_ = kTimeMax;
    return true;
  }
  // The pass can only act through a successful SF test, and the easiest
  // victim is the weakest running job. If every idle candidate's priority
  // is below SF x that minimum, every victimEligible call this pass could
  // make returns false: reentry candidates block on their first occupant
  // and fresh candidates collect nothing. Candidates at or above the
  // threshold are collected for the pass — they are precisely the prefix
  // its live break can reach (the threshold never falls mid-pass: fresh
  // preemptors and reentrants enter the index at >= SF x a victim's
  // priority, and removals only raise the minimum) — so the pass runs off
  // this sweep instead of a priority-index rebuild.
  //
  // Idle priorities grow linearly in wait while running priorities (hence
  // the threshold) are frozen until the next transition, so each
  // below-threshold candidate also yields the tick horizon up to which it
  // stays below — their minimum caps how long the verdict may be cached.
  const double threshold =
      config_.suspensionFactor * victimIndex_.minPriority();
  // Below-threshold candidates only contribute the *minimum* crossing, so
  // the sweep accumulates the raw algebraic crossing (a multiply per
  // candidate) and runs the exact re-verified crossingHorizon once, on the
  // winner. The raw crossing is monotone in the verified one (floor is
  // monotone and verification can only clamp to now), so the minimum is
  // unchanged.
  const auto nowD = static_cast<double>(simulator.now());
  const double tMinus1 = threshold - 1.0;
  double minTc = std::numeric_limits<double>::infinity();
  JobId minId = kInvalidJob;
  tickPrefix_.clear();
  auto consider = [&](JobId id) {
    // x >= threshold <=> wait >= (threshold - 1) * estimate in real
    // arithmetic — a multiply instead of the xfactor division. Floats can
    // disagree only within rounding distance of the boundary, so anything
    // inside a generous relative margin falls back to the verbatim
    // division test; the slack is also exactly the algebraic crossing
    // distance (tc = now + slack), and its float noise (~1e-7 s) is
    // absorbed by crossingHorizon's floor-minus-one margin below.
    const workload::Job& j = simulator.job(id);
    const auto est = static_cast<double>(j.estimate);
    const auto wait = static_cast<double>(simulator.accumulatedWait(id));
    const double slack = tMinus1 * est - wait;
    if (slack > 1e-9 * (wait + est)) {
      const double tc = nowD + slack;
      if (tc < minTc) {
        minTc = tc;
        minId = id;
      }
      return;
    }
    const double x = (wait + est) / est;
    if (!(x < threshold)) {
      tickPrefix_.emplace_back(x, id);
      return;
    }
    const double tc = nowD + (threshold - x) * est;
    if (tc < minTc) {
      minTc = tc;
      minId = id;
    }
  };
  for (JobId id : simulator.queuedJobs()) consider(id);
  for (JobId id : simulator.suspendedJobs()) {
    if (simulator.state(id) != sim::JobState::Suspended) continue;
    consider(id);
  }
  sweepHorizon_ =
      minId == kInvalidJob
          ? kTimeMax
          : crossingHorizon(simulator, minId, simulator.xfactor(minId),
                            threshold);
  if (!tickPrefix_.empty()) return false;  // gateSkipUntil_ stays at now
  gateSkipUntil_ = sweepHorizon_;
  return true;
}

void SelectiveSuspension::armTick(sim::Simulator& simulator) {
  if (tickArmed_) return;
  tickArmed_ = true;
  simulator.scheduleTimer(simulator.now() + config_.preemptionInterval,
                          kTickTag);
}

bool SelectiveSuspension::isClaimant(JobId id) const {
  return std::any_of(claims_.begin(), claims_.end(),
                     [id](const Claim& c) { return c.job == id; });
}

void SelectiveSuspension::refreshClaims(const sim::Simulator& s) const {
  if (!claimsDirty_) return;
  claimedSetCache_.clear();
  claimedCountCache_ = 0;
  for (const Claim& c : claims_) {
    if (c.exact)
      claimedSetCache_ |= s.exec(c.job).procs;
    else
      claimedCountCache_ += s.job(c.job).procs;
  }
  claimsDirty_ = false;
}

std::uint32_t SelectiveSuspension::claimedCount(
    const sim::Simulator& s) const {
  refreshClaims(s);
  return claimedCountCache_;
}

const sim::ProcSet& SelectiveSuspension::claimedSet(
    const sim::Simulator& s) const {
  refreshClaims(s);
  return claimedSetCache_;
}

const sim::ProcSet& SelectiveSuspension::suspendedSets(
    const sim::Simulator& s) const {
  static const sim::ProcSet kNoneOwed;
  // Migration: nothing is owed. Otherwise the simulator's refcounted owed
  // aggregate is exactly the union the old per-call suspended-list scan
  // rebuilt (sps::check audits the equality on every transition sweep).
  return config_.migratableJobs ? kNoneOwed : s.suspendedOwedSet();
}

void SelectiveSuspension::startFreshPreferring(sim::Simulator& s, JobId id) {
  const sim::ProcSet& fenced = claimedSet(s);
  switch (config_.owedProcs) {
    case OwedProcsPolicy::Squat:
      s.startJobAvoiding(id, fenced);
      break;
    case OwedProcsPolicy::Prefer:
      s.startJobPreferring(id, suspendedSets(s), fenced);
      break;
    case OwedProcsPolicy::Lease:
      s.startJobAvoiding(id, fenced | suspendedSets(s));
      break;
  }
}

bool SelectiveSuspension::victimEligible(const sim::Simulator& s,
                                         JobId victim,
                                         double preemptorPriority,
                                         std::uint32_t preemptorWidth,
                                         bool reentry) const {
  s.counters().inc(obs::Counter::VictimTests);
  if (s.state(victim) != sim::JobState::Running) return false;
  const double victimPriority = s.xfactor(victim);
  if (preemptorPriority < config_.suspensionFactor * victimPriority)
    return false;
  // Half-width rule: only for fresh preemptors (Section IV-C removes it for
  // reentry, otherwise a narrow job stranded under a wide one could wait for
  // the wide job's entire remaining runtime).
  if (!reentry && config_.halfWidthRule &&
      2 * preemptorWidth < s.job(victim).procs)
    return false;
  // TSS victim protection: a job whose priority already exceeds its category
  // limit has suffered enough; preempting it would blow up the worst case.
  if (config_.tssLimits) {
    const double limit = (*config_.tssLimits)[estimateCategory(s.job(victim))];
    if (victimPriority >= limit) return false;
  }
  if (config_.tssOnlineMultiplier) {
    const auto& [n, mean] = onlineSlowdowns_[estimateCategory(s.job(victim))];
    if (n >= config_.tssOnlineMinSamples &&
        victimPriority >= *config_.tssOnlineMultiplier * mean)
      return false;
  }
  return true;
}

std::optional<double> SelectiveSuspension::victimProtectionLimit(
    const sim::Simulator& s, JobId job) const {
  const std::size_t category = estimateCategory(s.job(job));
  if (config_.tssLimits) return (*config_.tssLimits)[category];
  if (config_.tssOnlineMultiplier) {
    const auto& [n, mean] = onlineSlowdowns_[category];
    if (n >= config_.tssOnlineMinSamples)
      return *config_.tssOnlineMultiplier * mean;
  }
  return std::nullopt;
}

std::vector<JobId> SelectiveSuspension::idleByPriority(
    const sim::Simulator& s) {
  // The kernel index does not know about claims (they are policy state, not
  // simulator state, so they cannot invalidate its epoch-keyed cache);
  // claimants are skipped at each use site instead. Filtering after the
  // sort yields the same order — the comparator is a strict total order.
  return idleIndex_.idle(s);
}

void SelectiveSuspension::dispatch(sim::Simulator& simulator) {
  SPS_PROF(0);
  const bool incremental =
      config_.kernelMode == kernel::KernelMode::Incremental;
  // Serve claimants first, in claim order (they were fenced in priority
  // order by the preemption pass).
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < claims_.size(); ++i) {
      const Claim c = claims_[i];
      if (c.exact) {
        if (simulator.exec(c.job).procs.isSubsetOf(simulator.freeSet())) {
          claims_.erase(claims_.begin() + static_cast<std::ptrdiff_t>(i));
          claimsDirty_ = true;
          simulator.resumeJob(c.job);
          progress = true;
          break;
        }
      } else {
        const sim::ProcSet fenced = claimedSet(simulator);
        const sim::ProcSet usable = simulator.freeSet() - fenced;
        if (usable.count() >= simulator.job(c.job).procs) {
          claims_.erase(claims_.begin() + static_cast<std::ptrdiff_t>(i));
          claimsDirty_ = true;
          // The claimant paid for its victims' processors; everything else
          // owed to suspended jobs is touched only for the shortfall. A
          // suspended claimant only arises in the migratable model (its
          // count-based claim could not otherwise exist).
          if (simulator.state(c.job) == sim::JobState::Suspended)
            simulator.resumeJobMigrating(c.job, fenced);
          else
            simulator.startJobPreferring(c.job, suspendedSets(simulator),
                                         fenced);
          progress = true;
          break;
        }
      }
    }
  }

  // A count-based claim still standing caps the entire dispatch: the loop
  // above exits only after a full pass in which every claim failed against
  // the *current* state, so that claim's width exceeds usable (= free minus
  // exact fences, the same set the walks below test against) — and the
  // width is itself part of countFence, so usableCount < countFence and
  // every resume and backfill test (usableCount >= procs + countFence)
  // fails unconditionally. Skip both walks; only capacity growth or claim
  // service — both of which re-enter dispatch — can change the verdict.
  // This gates the intermediate drain events of a multi-victim preemption
  // and the tick-end dispatch right after a pass fences its preemptors.
  if (incremental && std::any_of(claims_.begin(), claims_.end(),
                                 [](const Claim& c) { return !c.exact; })) {
    simulator.counters().inc(obs::Counter::DispatchSkips);
    return;
  }

  // Resume-first: a suspended job holds an implicit lease on its exact
  // processors (local preemption, no migration), so whenever they free it
  // reclaims them before any fresh job can squat. Without this, every wide
  // start entombs the suspended jobs under its footprint for its whole
  // runtime and parked capacity accumulates until utilization collapses.
  // Reentry on already-free processors needs no priority test; overlapping
  // suspended sets resolve by priority order.
  //
  // Claims are policy state and nothing in the resume/backfill walks below
  // touches them, so the claim fences are loop invariants — hoisted out of
  // the per-candidate work.
  const sim::ProcSet fenced = claimedSet(simulator);
  const std::uint32_t countFence = claimedCount(simulator);
  // usable = freeSet - fence changes only when this walk resumes or starts
  // a job; incremental mode recomputes it on those mutations only, rebuild
  // mode per candidate (the reference behaviour).
  sim::ProcSet usable;
  std::uint32_t usableCount = 0;
  bool usableDirty = true;
  auto refreshUsable = [&](const sim::ProcSet& fence) {
    if (incremental && !usableDirty) return;
    simulator.counters().inc(obs::Counter::FenceScans);
    usable = simulator.freeSet() - fence;
    usableCount = usable.count();
    usableDirty = false;
  };
  // Incremental fast-outs: an empty suspended list or an empty free set
  // makes the whole walk decision-free (every resume needs at least one
  // usable processor), so the index refresh and fence scan are skipped.
  if (!incremental ||
      (!simulator.suspendedJobs().empty() && simulator.freeCount() != 0)) {
    for (JobId id :
         idleIndex_.walk(simulator, kernel::IdleFilter::Suspended)) {
      if (isClaimant(id)) continue;
      refreshUsable(fenced);
      // usable only shrinks as this walk acts, so once the fence eats all
      // of it no later candidate can resume either.
      if (incremental && usableCount <= countFence) break;
      if (config_.migratableJobs) {
        if (usableCount >= simulator.job(id).procs + countFence) {
          simulator.resumeJobMigrating(id, fenced);
          usableDirty = true;
        }
        continue;
      }
      // x.procs subset of (freeSet - fenced) == subset of freeSet and
      // disjoint from the fence.
      const sim::ProcSet& procs = simulator.exec(id).procs;
      if (procs.isSubsetOf(usable)) {
        if (usableCount >= procs.count() + countFence) {
          simulator.resumeJob(id);
          usableDirty = true;
        }
      }
    }
  }

  // Backfilling without guarantees: walk queued jobs in priority order and
  // start anything that fits on unclaimed capacity; do not stop at the
  // first job that does not fit. The suspended-set lease fence is fixed for
  // the whole walk (starting a job never changes the suspended set), so it
  // is computed once, after the resume pass above settled it.
  sim::ProcSet unusable = fenced;
  if (config_.owedProcs == OwedProcsPolicy::Lease)
    unusable |= suspendedSets(simulator);
  usableDirty = true;  // the fence changed; first candidate recomputes
  if (!incremental ||
      (!simulator.queuedJobs().empty() && simulator.freeCount() != 0)) {
    for (JobId id : idleIndex_.walk(simulator, kernel::IdleFilter::Queued)) {
      if (isClaimant(id)) continue;
      refreshUsable(unusable);
      if (incremental && usableCount <= countFence) break;
      if (usableCount >= simulator.job(id).procs + countFence) {
        startFreshPreferring(simulator, id);
        usableDirty = true;
      }
    }
  }
}

void SelectiveSuspension::preemptionPass(sim::Simulator& simulator) {
  SPS_TRACE(&simulator.recorder(),
            obs::instant("policy", "ss.preemptionPass", simulator.now()));
  if (config_.kernelMode == kernel::KernelMode::Rebuild)
    preemptionPassRebuild(simulator);
  else
    preemptionPassIncremental(simulator);
}

void SelectiveSuspension::executeFreshPreemption(
    sim::Simulator& simulator, JobId id, std::uint32_t width,
    std::uint32_t freeNow, std::vector<JobId>& victims) {
  // Suspend the widest candidates first so the fewest jobs are hit.
  std::sort(victims.begin(), victims.end(),
            [&simulator](JobId a, JobId b) {
              if (simulator.job(a).procs != simulator.job(b).procs)
                return simulator.job(a).procs > simulator.job(b).procs;
              return a < b;
            });
  std::uint32_t freed = 0;
  bool anyDraining = false;
  sim::ProcSet victimProcs;
  for (JobId r : victims) {
    if (freeNow + freed >= width) break;
    victimProcs |= simulator.exec(r).procs;
    simulator.counters().inc(obs::Counter::Preemptions);
    SPS_TRACE(&simulator.recorder(),
              obs::instant("policy", "preempt", simulator.now(), r)
                  .arg("for", id));
    simulator.suspendJob(r);
    ++preemptions_;
    freed += simulator.job(r).procs;
    if (simulator.state(r) == sim::JobState::Suspending)
      anyDraining = true;
  }
  if (anyDraining) {
    claims_.push_back({id, /*exact=*/false});
    claimsDirty_ = true;
  } else if (simulator.state(id) == sim::JobState::Suspended) {
    // Migratable model: the suspended preemptor restarts on whatever
    // freed up (a fresh-path suspended preemptor only exists when
    // migratableJobs is set).
    simulator.resumeJobMigrating(id, claimedSet(simulator));
  } else {
    // Use the victims' processors in preference to (Lease: instead of)
    // processors owed to other suspended jobs — squatting on an owed
    // set strands its owner until the squatter completes.
    const sim::ProcSet owedOthers = suspendedSets(simulator) - victimProcs;
    if (config_.owedProcs == OwedProcsPolicy::Lease)
      simulator.startJobAvoiding(id, claimedSet(simulator) | owedOthers);
    else
      simulator.startJobPreferring(id, owedOthers, claimedSet(simulator));
  }
}

void SelectiveSuspension::preemptionPassRebuild(sim::Simulator& simulator) {
  // Sort the running set once: priorities are frozen while running, so the
  // order cannot change during the pass. Jobs suspended or started during
  // the pass are filtered by state when scanned (a job started this pass is
  // simply not victimizable until the next tick).
  std::vector<JobId> runningAsc(simulator.runningJobs());
  std::sort(runningAsc.begin(), runningAsc.end(),
            [&simulator](JobId a, JobId b) {
              const double xa = simulator.xfactor(a);
              const double xb = simulator.xfactor(b);
              if (xa != xb) return xa < xb;
              return a < b;
            });

  // The fresh-preemptor fences (claims, owed sets, usable free count) are
  // recomputed per use — the reference per-candidate-reconstruction shape
  // the golden suite compares the indexed pass against.
  sim::ProcSet offLimits;
  std::uint32_t freeNow = 0;
  auto refreshFences = [&] {
    simulator.counters().inc(obs::Counter::FenceScans);
    offLimits = claimedSet(simulator);
    if (config_.owedProcs == OwedProcsPolicy::Lease)
      offLimits |= suspendedSets(simulator);
    const std::uint32_t countFence = claimedCount(simulator);
    const std::uint32_t usableFree = (simulator.freeSet() - offLimits).count();
    freeNow = usableFree >= countFence ? usableFree - countFence : 0;
  };

  for (JobId id : idleByPriority(simulator)) {
    // The idle snapshot can go stale as this loop suspends and starts jobs;
    // skip anything no longer idle.
    const sim::JobState st = simulator.state(id);
    if (st != sim::JobState::Queued && st != sim::JobState::Suspended)
      continue;
    if (isClaimant(id)) continue;

    const double priority = simulator.xfactor(id);
    const bool reentry =
        st == sim::JobState::Suspended && !config_.migratableJobs;
    const std::uint32_t width = simulator.job(id).procs;

    if (reentry) {
      // Must reclaim the exact saved set: every current occupant of those
      // processors has to be an eligible victim, and none may be mid-drain.
      const sim::ProcSet needed = simulator.exec(id).procs;
      if (needed.intersects(claimedSet(simulator))) continue;
      std::vector<JobId> occupants;
      bool blocked = false;
      for (JobId r : simulator.runningJobs())
        if (simulator.exec(r).procs.intersects(needed)) occupants.push_back(r);
      // Canonical suspension order: the running list is unordered (swap-
      // and-pop), and with an overhead model the occupants' drain events
      // tie-break by insertion sequence — so the schedule would otherwise
      // depend on list internals.
      std::sort(occupants.begin(), occupants.end());
      for (JobId r : simulator.suspendedJobs())
        if (simulator.state(r) == sim::JobState::Suspending &&
            simulator.exec(r).procs.intersects(needed))
          blocked = true;  // draining; try again next tick
      if (blocked) continue;
      sim::ProcSet covered = needed & simulator.freeSet();
      for (JobId r : occupants) {
        if (!victimEligible(simulator, r, priority, width,
                            /*reentry=*/true)) {
          blocked = true;
          break;
        }
        covered |= simulator.exec(r).procs & needed;
      }
      if (blocked || !(needed - covered).empty()) continue;
      if (occupants.empty()) continue;  // dispatch() handles the free case
      bool anyDraining = false;
      for (JobId r : occupants) {
        simulator.counters().inc(obs::Counter::Preemptions);
        SPS_TRACE(&simulator.recorder(),
                  obs::instant("policy", "preempt", simulator.now(), r)
                      .arg("for", id));
        simulator.suspendJob(r);
        ++preemptions_;
        if (simulator.state(r) == sim::JobState::Suspending)
          anyDraining = true;
      }
      if (anyDraining) {
        claims_.push_back({id, /*exact=*/true});
        claimsDirty_ = true;
      } else {
        simulator.resumeJob(id);
      }
    } else {
      // Fresh preemptor: collect the lowest-priority eligible victims until
      // free + gain covers the request (pseudocode label suspend_jobs_1).
      // Under the lease discipline, processors owed to OTHER suspended jobs
      // are not usable — the preemptor runs on its victims' processors plus
      // unowed free ones.
      refreshFences();
      if (freeNow >= width) continue;  // dispatch() handles the free case

      std::vector<JobId> candidates;
      std::uint32_t gain = 0;
      for (JobId r : runningAsc) {
        // runningAsc is ascending in priority and xfactor is a pure
        // function of the (fixed) clock, so once the suspension-factor test
        // fails here it fails for every later victim too — victimEligible
        // cannot pass past this point.
        if (priority < config_.suspensionFactor * simulator.xfactor(r)) break;
        if (!victimEligible(simulator, r, priority, width,
                            /*reentry=*/false))
          continue;
        candidates.push_back(r);
        gain += simulator.job(r).procs;
        if (freeNow + gain >= width) break;
      }
      if (freeNow + gain < width) continue;
      executeFreshPreemption(simulator, id, width, freeNow, candidates);
    }
  }
}

void SelectiveSuspension::preemptionPassIncremental(
    sim::Simulator& simulator) {
  SPS_PROF(1);
  // No running jobs: the candidate walk below could only hit the
  // decision-free continue arms (argued per arm), so skip it outright.
  if (victimIndex_.empty()) return;
  // Reference snapshot semantics: entries inserted at or after this stamp
  // were started mid-pass and are invisible to the fresh-victim merge (the
  // reference's pass-start sort would not contain them). The reentry
  // occupant map stays live — so does the reference's occupant scan.
  const std::uint64_t passStamp = victimIndex_.beginPass();
  seenStamp_.resize(simulator.trace().jobs.size(), 0);
  passHorizon_ = kTimeMax;
  // Failed arms fold their raw algebraic crossing (one multiply) into a
  // running minimum; the exact re-verified crossingHorizon runs once, on
  // the winner, at pass end. Sound for the non-winners too: their raw
  // crossings are at least the winner's, and the floor-minus-one margin
  // keeps every skipped tick strictly before any candidate's true crossing
  // even under the ~1e-7 s float noise of the raw form.
  const auto nowD = static_cast<double>(simulator.now());
  double passMinTc = std::numeric_limits<double>::infinity();
  JobId passMinId = kInvalidJob;
  double passMinX = 0.0;
  double passMinTarget = 0.0;
  auto noteHorizon = [&](JobId id, double x, double target) {
    const double tc =
        nowD + (target - x) * static_cast<double>(simulator.job(id).estimate);
    if (tc < passMinTc) {
      passMinTc = tc;
      passMinId = id;
      passMinX = x;
      passMinTarget = target;
    }
  };

  // The gate sweep already gathered every candidate the live break can
  // reach, with its priority evaluated at this very clock (idle priorities
  // change only on the candidate's own transitions, and those drop it from
  // the walk anyway). Ordering it under the priority-index comparator —
  // xfactor descending, ties by submit then id — reproduces the reference
  // walk exactly, without touching the full idle index.
  std::sort(tickPrefix_.begin(), tickPrefix_.end(),
            [&simulator](const std::pair<double, JobId>& a,
                         const std::pair<double, JobId>& b) {
              if (a.first != b.first) return a.first > b.first;
              const Time sa = simulator.job(a.second).submit;
              const Time sb = simulator.job(b.second).submit;
              if (sa != sb) return sa < sb;
              return a.second < b.second;
            });

  // Fresh-preemptor fences, recomputed only after this pass changes them.
  bool fencesDirty = true;
  sim::ProcSet offLimits;
  std::uint32_t freeNow = 0;
  auto refreshFences = [&] {
    if (!fencesDirty) return;
    simulator.counters().inc(obs::Counter::FenceScans);
    offLimits = claimedSet(simulator);
    if (config_.owedProcs == OwedProcsPolicy::Lease)
      offLimits |= suspendedSets(simulator);
    const std::uint32_t countFence = claimedCount(simulator);
    const std::uint32_t usableFree = (simulator.freeSet() - offLimits).count();
    freeNow = usableFree >= countFence ? usableFree - countFence : 0;
    fencesDirty = false;
  };

  // Per-category cut cursors, shared across this pass's fresh candidates.
  // Candidates walk in *descending* priority, so each category's SF cut
  // (the eligible prefix length) only shrinks from one candidate to the
  // next — instead of two binary searches per candidate per category, walk
  // the cursor down with the exact same float predicate and adjust the
  // summed gain bound by the widths that fall out. The TSS cut and the
  // frozen xfactors are pass-constant between actions, so cursors stay
  // valid until the pass suspends or starts something (which edits the
  // category vectors); any action rebuilds them at the next candidate.
  struct CatCursor {
    std::size_t sfCur;     ///< sfBoundary(cat, priority, SF), maintained
    std::size_t limitEnd;  ///< TSS protection cut (pass-constant)
    std::uint32_t gain;    ///< gainPrefix(cat, min(sfCur, limitEnd))
  };
  std::array<CatCursor, kernel::VictimIndex::kCategories> cursors;
  std::uint32_t boundTotal = 0;
  bool cursorsDirty = true;
  double minPrio = 0.0;
  bool minPrioDirty = true;
  auto categoryLimit = [&](std::size_t cat,
                           const std::vector<kernel::VictimIndex::Entry>& vec)
      -> std::size_t {
    if (config_.tssLimits)
      return victimIndex_.limitBoundary(cat, (*config_.tssLimits)[cat]);
    if (config_.tssOnlineMultiplier) {
      const auto& [n, mean] = onlineSlowdowns_[cat];
      if (n >= config_.tssOnlineMinSamples)
        return victimIndex_.limitBoundary(cat,
                                          *config_.tssOnlineMultiplier * mean);
    }
    return vec.size();
  };
  auto rebuildCursors = [&](double priority) {
    boundTotal = 0;
    for (std::size_t cat = 0; cat < kernel::VictimIndex::kCategories; ++cat) {
      const auto& vec = victimIndex_.category(cat);
      CatCursor& cc = cursors[cat];
      if (vec.empty()) {
        cc = {0, 0, 0};
        continue;
      }
      cc.sfCur = victimIndex_.sfBoundary(cat, priority,
                                         config_.suspensionFactor);
      cc.limitEnd = categoryLimit(cat, vec);
      cc.gain = victimIndex_.gainPrefix(cat, std::min(cc.sfCur, cc.limitEnd));
      boundTotal += cc.gain;
    }
    cursorsDirty = false;
  };
  auto advanceCursors = [&](double priority) {
    for (std::size_t cat = 0; cat < kernel::VictimIndex::kCategories; ++cat) {
      CatCursor& cc = cursors[cat];
      if (cc.sfCur == 0) continue;
      const auto& vec = victimIndex_.category(cat);
      // Verbatim sfBoundary predicate: entry sfCur-1 stays eligible iff
      // !(priority < SF * xfactor). Total movement per pass is bounded by
      // the running-set size, amortized O(1) per candidate.
      while (cc.sfCur > 0 &&
             priority <
                 config_.suspensionFactor * vec[cc.sfCur - 1].xfactor) {
        --cc.sfCur;
        if (cc.sfCur < cc.limitEnd) {
          cc.gain -= vec[cc.sfCur].procs;
          boundTotal -= vec[cc.sfCur].procs;
        }
      }
    }
  };
  // Steady-state O(1) per candidate: no cursor moves while the candidate's
  // priority stays at or above SF x the strongest entry still inside any SF
  // cut (the max over categories of the advance predicate's right side), so
  // a single compare proves every cursor exact. While cursors are still,
  // the gain excluded by the half-width rule and the wake-up xfactor depend
  // only on which width bands the candidate can reach — four possible
  // reach classes (band mins are the only cuts 2 x width is tested
  // against), each cached on first use and invalidated on any movement.
  double advanceTrigger = -std::numeric_limits<double>::infinity();
  std::array<double, 4> xNextByReach{};
  std::array<std::uint32_t, 4> exclByReach{};
  std::array<bool, 4> reachValid{};
  auto cursorsMoved = [&] {
    advanceTrigger = -std::numeric_limits<double>::infinity();
    for (std::size_t cat = 0; cat < kernel::VictimIndex::kCategories; ++cat) {
      const CatCursor& cc = cursors[cat];
      if (cc.sfCur == 0) continue;
      advanceTrigger = std::max(
          advanceTrigger, config_.suspensionFactor *
                              victimIndex_.category(cat)[cc.sfCur - 1].xfactor);
    }
    reachValid.fill(false);
  };
  // Reach class: highest width-band rank whose band.min the candidate's
  // doubled width covers. Identical to testing 2 x width < band.min per
  // category — a rank-q band is excluded exactly when q > reach.
  auto reachOf = [&](std::uint32_t width) -> int {
    if (!config_.halfWidthRule) return 3;
    const std::uint32_t w2 = 2 * width;
    if (w2 >= workload::kWideMax + 1) return 3;
    if (w2 >= workload::kNarrowMax + 1) return 2;
    if (w2 >= workload::kSequentialMax + 1) return 1;
    return 0;
  };
  auto computeReach = [&](int reach) {
    double xn = std::numeric_limits<double>::infinity();
    std::uint32_t excl = 0;
    for (std::size_t cat = 0; cat < kernel::VictimIndex::kCategories; ++cat) {
      const CatCursor& cc = cursors[cat];
      const auto& vec = victimIndex_.category(cat);
      if (vec.empty()) continue;
      if (static_cast<int>(workload::widthClassOfCategory(cat)) > reach) {
        excl += cc.gain;  // band too wide to reach: no gain, no wake-up
        continue;
      }
      if (cc.sfCur < cc.limitEnd && cc.sfCur < vec.size())
        xn = std::min(xn, vec[cc.sfCur].xfactor);
    }
    xNextByReach[reach] = xn;
    exclByReach[reach] = excl;
    reachValid[reach] = true;
  };

  for (const auto& [priority, id] : tickPrefix_) {
    // Same skip-on-stale semantics as the index walk: jobs this pass
    // started or resumed no longer match the idle filter.
    const sim::JobState st = simulator.state(id);
    if (st != sim::JobState::Queued && st != sim::JobState::Suspended)
      continue;
    if (isClaimant(id)) continue;
    // Candidates walk in descending priority, so once even the weakest
    // running job fails the SF test no later candidate can preempt
    // anything: reentry blocks on its first occupant, fresh collects no
    // victims — the reference merely burns failing victimTests past this
    // point. minPriority() is live but only the pass's own actions can move
    // it mid-pass, so it is cached on the same dirty signal as the cursors;
    // if the index empties mid-pass it returns +infinity and the break
    // fires, an equally decision-free tail.
    if (minPrioDirty) {
      minPrio = victimIndex_.minPriority();
      minPrioDirty = false;
    }
    if (priority < config_.suspensionFactor * minPrio) break;
    const bool reentry =
        st == sim::JobState::Suspended && !config_.migratableJobs;
    const std::uint32_t width = simulator.job(id).procs;

    if (reentry) {
      // Must reclaim the exact saved set: every current occupant of those
      // processors has to be an eligible victim, and none may be mid-drain.
      const sim::ProcSet needed = simulator.exec(id).procs;
      if (needed.intersects(claimedSet(simulator))) continue;
      // The reference's Suspending scan, as one aggregate intersection.
      if (needed.intersects(simulator.drainingSet())) continue;
      // Occupants via the owner map: O(width) instead of O(running). The
      // map tracks Running holders only, exactly the reference's scan of
      // runningJobs(); ascending sort gives the canonical suspension order.
      occupantsScratch_.clear();
      ++seenGen_;
      needed.forEach([this](std::uint32_t p) {
        const JobId r = victimIndex_.ownerOf(p);
        if (r == kInvalidJob) return;
        if (seenStamp_[r] != seenGen_) {
          seenStamp_[r] = seenGen_;
          occupantsScratch_.push_back(r);
        }
      });
      std::sort(occupantsScratch_.begin(), occupantsScratch_.end());
      sim::ProcSet covered = needed & simulator.freeSet();
      bool blocked = false;
      for (JobId r : occupantsScratch_) {
        if (!victimEligible(simulator, r, priority, width,
                            /*reentry=*/true)) {
          blocked = true;
          // If the SF ratio is what failed, this arm cannot go live before
          // the candidate's priority crosses SF x this occupant's (frozen)
          // priority — a sound wake-up bound even when later occupants
          // would fail too. A TSS-limit failure is time-independent; only
          // transitions (stamp) can change it.
          const double xr = simulator.xfactor(r);
          if (priority < config_.suspensionFactor * xr)
            noteHorizon(id, priority, config_.suspensionFactor * xr);
          break;
        }
        covered |= simulator.exec(r).procs & needed;
      }
      if (blocked || !(needed - covered).empty()) continue;
      if (occupantsScratch_.empty()) continue;  // free case: dispatch()
      bool anyDraining = false;
      for (JobId r : occupantsScratch_) {
        simulator.counters().inc(obs::Counter::Preemptions);
        SPS_TRACE(&simulator.recorder(),
                  obs::instant("policy", "preempt", simulator.now(), r)
                      .arg("for", id));
        simulator.suspendJob(r);
        ++preemptions_;
        if (simulator.state(r) == sim::JobState::Suspending)
          anyDraining = true;
      }
      fencesDirty = true;
      cursorsDirty = true;
      minPrioDirty = true;
      if (anyDraining) {
        claims_.push_back({id, /*exact=*/true});
        claimsDirty_ = true;
      } else {
        simulator.resumeJob(id);
      }
    } else {
      refreshFences();
      if (freeNow >= width) continue;  // dispatch() handles the free case

      // Per-category range cuts: within a category the eligible victims
      // form a prefix of the (frozen xfactor, id) order — the SF test and
      // any TSS limit both reject monotone suffixes, and the half-width
      // rule resolves bandwise. The cuts come from the maintained pass
      // cursors; in the steady state (no cursor crosses the advance
      // trigger) the candidate costs one compare plus a cached reach-class
      // lookup. The summed prefix widths bound the gain this candidate
      // could possibly collect, and most candidates die on that bound
      // without a single per-victim test. xNext is the weakest victim just
      // beyond a binding SF cut (and inside any TSS cut): a candidate that
      // fails for lack of gain cannot go live before its priority crosses
      // SF x that — the earliest any eligible prefix can grow without a
      // transition.
      if (cursorsDirty) {
        rebuildCursors(priority);
        cursorsMoved();
      } else if (priority < advanceTrigger) {
        advanceCursors(priority);
        cursorsMoved();
      }
      const int reach = reachOf(width);
      if (!reachValid[reach]) computeReach(reach);
      const std::uint32_t bound = boundTotal - exclByReach[reach];
      const double xNext = xNextByReach[reach];
      if (freeNow + bound < width) {
        simulator.counters().inc(obs::Counter::VictimBoundSkips);
        if (std::isfinite(xNext))
          noteHorizon(id, priority, config_.suspensionFactor * xNext);
        continue;
      }

      // The bound passed (rare at load): materialize the merge heads from
      // the cursors exactly as the search-based cuts did.
      struct Head {
        const kernel::VictimIndex::Entry* cur;
        const kernel::VictimIndex::Entry* end;
        bool widthCheck;
      };
      std::array<Head, kernel::VictimIndex::kCategories> heads;
      std::size_t nHeads = 0;
      for (std::size_t cat = 0; cat < kernel::VictimIndex::kCategories;
           ++cat) {
        const CatCursor& cc = cursors[cat];
        const auto& vec = victimIndex_.category(cat);
        if (vec.empty()) continue;
        bool widthCheck = false;
        if (config_.halfWidthRule) {
          const WidthBand band = widthBandOfCategory(cat);
          if (2 * width < band.min) continue;
          widthCheck = band.unbounded || 2 * width < band.max;
        }
        const std::size_t end = std::min(cc.sfCur, cc.limitEnd);
        if (end == 0) continue;
        heads[nHeads++] = {vec.data(), vec.data() + end, widthCheck};
      }

      // Exact collection: merge the eligible prefixes ascending by
      // (frozen xfactor, id) — the reference's runningAsc order — taking
      // the lowest-priority victims first until free + gain covers the
      // request (pseudocode label suspend_jobs_1).
      victimsScratch_.clear();
      std::uint32_t gain = 0;
      while (freeNow + gain < width) {
        std::size_t best = nHeads;
        for (std::size_t h = 0; h < nHeads; ++h) {
          if (heads[h].cur == heads[h].end) continue;
          if (best == nHeads ||
              heads[h].cur->xfactor < heads[best].cur->xfactor ||
              (heads[h].cur->xfactor == heads[best].cur->xfactor &&
               heads[h].cur->job < heads[best].cur->job))
            best = h;
        }
        if (best == nHeads) break;
        const kernel::VictimIndex::Entry& e = *heads[best].cur++;
        if (e.serial >= passStamp) continue;  // started mid-pass: invisible
        simulator.counters().inc(obs::Counter::VictimTests);
        if (heads[best].widthCheck && 2 * width < e.procs) continue;
        victimsScratch_.push_back(e.job);
        gain += e.procs;
      }
      if (freeNow + gain < width) {
        // The merge exhausted every eligible prefix (bound counts serial-
        // stamped and width-failing entries, so it can pass where the
        // exact collection falls short); more gain likewise needs an SF
        // boundary to move.
        if (std::isfinite(xNext))
          noteHorizon(id, priority, config_.suspensionFactor * xNext);
        continue;
      }
      executeFreshPreemption(simulator, id, width, freeNow, victimsScratch_);
      fencesDirty = true;
      cursorsDirty = true;
      minPrioDirty = true;
    }
  }
  if (passMinId != kInvalidJob)
    passHorizon_ = crossingHorizon(simulator, passMinId, passMinX,
                                   passMinTarget);
}

void SelectiveSuspension::onSimulationEnd(sim::Simulator& simulator) {
  SPS_CHECK_MSG(claims_.empty(), "unserved claims at end of run");
  SPS_CHECK_MSG(simulator.queuedJobs().empty(),
                "SS queue not drained at end of run");
  SPS_CHECK_MSG(simulator.suspendedJobs().empty(),
                "suspended jobs stranded at end of run");
}

}  // namespace sps::sched
