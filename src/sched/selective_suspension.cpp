#include "sched/selective_suspension.hpp"

#include <algorithm>
#include <sstream>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {

namespace {
constexpr std::uint64_t kTickTag = 0;

/// Scheduler-visible category of a job: computed from the user estimate,
/// the only runtime signal available before completion.
std::size_t estimateCategory(const workload::Job& j) {
  return workload::category16(j.estimate, j.procs);
}
}  // namespace

SelectiveSuspension::SelectiveSuspension(SsConfig config)
    : config_(config),
      idleIndex_(kernel::IndexOrder::XFactorDesc, config.kernelMode) {
  SPS_CHECK_MSG(config_.suspensionFactor >= 1.0,
                "suspension factor must be >= 1");
  SPS_CHECK_MSG(config_.preemptionInterval > 0,
                "preemption interval must be positive");
  SPS_CHECK_MSG(!(config_.tssLimits && config_.tssOnlineMultiplier),
                "static and online TSS limits are mutually exclusive");
  if (config_.tssOnlineMultiplier)
    SPS_CHECK_MSG(*config_.tssOnlineMultiplier > 0,
                  "online TSS multiplier must be positive");
}

std::string SelectiveSuspension::name() const {
  std::ostringstream os;
  if (config_.tssOnlineMultiplier) os << "TSS-online";
  else os << (config_.tssLimits ? "TSS" : "SS");
  os << "(SF=" << config_.suspensionFactor << ")";
  return os.str();
}

void SelectiveSuspension::onSimulationStart(sim::Simulator& /*simulator*/) {
  idleIndex_.reset();
}

void SelectiveSuspension::onJobArrival(sim::Simulator& simulator,
                                       JobId /*job*/) {
  dispatch(simulator);
  armTick(simulator);
}

void SelectiveSuspension::onJobCompletion(sim::Simulator& simulator,
                                          JobId job) {
  if (config_.tssOnlineMultiplier) {
    const auto& j = simulator.job(job);
    const auto& x = simulator.exec(job);
    const auto tat = static_cast<double>(x.finish - j.submit);
    const double sd = std::max(
        1.0, tat / static_cast<double>(std::max<Time>(j.runtime, 10)));
    auto& [n, mean] = onlineSlowdowns_[estimateCategory(j)];
    ++n;
    mean += (sd - mean) / static_cast<double>(n);
  }
  dispatch(simulator);
}

void SelectiveSuspension::onSuspendDrained(sim::Simulator& simulator,
                                           JobId /*job*/) {
  dispatch(simulator);
}

void SelectiveSuspension::onTimer(sim::Simulator& simulator,
                                  std::uint64_t tag) {
  SPS_CHECK(tag == kTickTag);
  tickArmed_ = false;
  preemptionPass(simulator);
  dispatch(simulator);
  if (!simulator.queuedJobs().empty() || !simulator.suspendedJobs().empty())
    armTick(simulator);
}

void SelectiveSuspension::armTick(sim::Simulator& simulator) {
  if (tickArmed_) return;
  tickArmed_ = true;
  simulator.scheduleTimer(simulator.now() + config_.preemptionInterval,
                          kTickTag);
}

bool SelectiveSuspension::isClaimant(JobId id) const {
  return std::any_of(claims_.begin(), claims_.end(),
                     [id](const Claim& c) { return c.job == id; });
}

std::uint32_t SelectiveSuspension::claimedCount(
    const sim::Simulator& s) const {
  std::uint32_t n = 0;
  for (const Claim& c : claims_)
    if (!c.exact) n += s.job(c.job).procs;
  return n;
}

sim::ProcSet SelectiveSuspension::claimedSet(const sim::Simulator& s) const {
  sim::ProcSet set;
  for (const Claim& c : claims_)
    if (c.exact) set |= s.exec(c.job).procs;
  return set;
}

sim::ProcSet SelectiveSuspension::suspendedSets(
    const sim::Simulator& s) const {
  sim::ProcSet set;
  if (config_.migratableJobs) return set;  // migration: nothing is owed
  for (JobId id : s.suspendedJobs())
    if (s.exec(id).state == sim::JobState::Suspended)
      set |= s.exec(id).procs;
  return set;
}

void SelectiveSuspension::startFreshPreferring(sim::Simulator& s, JobId id) {
  const sim::ProcSet fenced = claimedSet(s);
  switch (config_.owedProcs) {
    case OwedProcsPolicy::Squat:
      s.startJobAvoiding(id, fenced);
      break;
    case OwedProcsPolicy::Prefer:
      s.startJobPreferring(id, suspendedSets(s), fenced);
      break;
    case OwedProcsPolicy::Lease:
      s.startJobAvoiding(id, fenced | suspendedSets(s));
      break;
  }
}

bool SelectiveSuspension::victimEligible(const sim::Simulator& s,
                                         JobId victim,
                                         double preemptorPriority,
                                         std::uint32_t preemptorWidth,
                                         bool reentry) const {
  s.counters().inc(obs::Counter::VictimTests);
  if (s.exec(victim).state != sim::JobState::Running) return false;
  const double victimPriority = s.xfactor(victim);
  if (preemptorPriority < config_.suspensionFactor * victimPriority)
    return false;
  // Half-width rule: only for fresh preemptors (Section IV-C removes it for
  // reentry, otherwise a narrow job stranded under a wide one could wait for
  // the wide job's entire remaining runtime).
  if (!reentry && config_.halfWidthRule &&
      2 * preemptorWidth < s.job(victim).procs)
    return false;
  // TSS victim protection: a job whose priority already exceeds its category
  // limit has suffered enough; preempting it would blow up the worst case.
  if (config_.tssLimits) {
    const double limit = (*config_.tssLimits)[estimateCategory(s.job(victim))];
    if (victimPriority >= limit) return false;
  }
  if (config_.tssOnlineMultiplier) {
    const auto& [n, mean] = onlineSlowdowns_[estimateCategory(s.job(victim))];
    if (n >= config_.tssOnlineMinSamples &&
        victimPriority >= *config_.tssOnlineMultiplier * mean)
      return false;
  }
  return true;
}

std::optional<double> SelectiveSuspension::victimProtectionLimit(
    const sim::Simulator& s, JobId job) const {
  const std::size_t category = estimateCategory(s.job(job));
  if (config_.tssLimits) return (*config_.tssLimits)[category];
  if (config_.tssOnlineMultiplier) {
    const auto& [n, mean] = onlineSlowdowns_[category];
    if (n >= config_.tssOnlineMinSamples)
      return *config_.tssOnlineMultiplier * mean;
  }
  return std::nullopt;
}

std::vector<JobId> SelectiveSuspension::idleByPriority(
    const sim::Simulator& s) {
  // The kernel index does not know about claims (they are policy state, not
  // simulator state, so they cannot invalidate its epoch-keyed cache);
  // claimants are skipped at each use site instead. Filtering after the
  // sort yields the same order — the comparator is a strict total order.
  return idleIndex_.idle(s);
}

void SelectiveSuspension::dispatch(sim::Simulator& simulator) {
  // Serve claimants first, in claim order (they were fenced in priority
  // order by the preemption pass).
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < claims_.size(); ++i) {
      const Claim c = claims_[i];
      const auto& x = simulator.exec(c.job);
      if (c.exact) {
        if (x.procs.isSubsetOf(simulator.freeSet())) {
          claims_.erase(claims_.begin() + static_cast<std::ptrdiff_t>(i));
          simulator.resumeJob(c.job);
          progress = true;
          break;
        }
      } else {
        const sim::ProcSet fenced = claimedSet(simulator);
        const sim::ProcSet usable = simulator.freeSet() - fenced;
        if (usable.count() >= simulator.job(c.job).procs) {
          claims_.erase(claims_.begin() + static_cast<std::ptrdiff_t>(i));
          // The claimant paid for its victims' processors; everything else
          // owed to suspended jobs is touched only for the shortfall. A
          // suspended claimant only arises in the migratable model (its
          // count-based claim could not otherwise exist).
          if (x.state == sim::JobState::Suspended)
            simulator.resumeJobMigrating(c.job, fenced);
          else
            simulator.startJobPreferring(c.job, suspendedSets(simulator),
                                         fenced);
          progress = true;
          break;
        }
      }
    }
  }

  // Resume-first: a suspended job holds an implicit lease on its exact
  // processors (local preemption, no migration), so whenever they free it
  // reclaims them before any fresh job can squat. Without this, every wide
  // start entombs the suspended jobs under its footprint for its whole
  // runtime and parked capacity accumulates until utilization collapses.
  // Reentry on already-free processors needs no priority test; overlapping
  // suspended sets resolve by priority order.
  //
  // Claims are policy state and nothing in the resume/backfill walks below
  // touches them, so the claim fences are loop invariants — hoisted out of
  // the per-candidate work (they were rebuilt per candidate before, an
  // O(idle x suspended) bitset cost per event).
  const sim::ProcSet fenced = claimedSet(simulator);
  const std::uint32_t countFence = claimedCount(simulator);
  // usable = freeSet - fence changes only when this walk resumes or starts
  // a job; incremental mode recomputes it on those mutations only, rebuild
  // mode per candidate (the reference behaviour).
  const bool incremental =
      config_.kernelMode == kernel::KernelMode::Incremental;
  sim::ProcSet usable;
  std::uint32_t usableCount = 0;
  bool usableDirty = true;
  auto refreshUsable = [&](const sim::ProcSet& fence) {
    if (incremental && !usableDirty) return;
    simulator.counters().inc(obs::Counter::FenceScans);
    usable = simulator.freeSet() - fence;
    usableCount = usable.count();
    usableDirty = false;
  };
  for (JobId id : idleByPriority(simulator)) {
    const auto& x = simulator.exec(id);
    if (x.state != sim::JobState::Suspended) continue;
    if (isClaimant(id)) continue;
    refreshUsable(fenced);
    if (config_.migratableJobs) {
      if (usableCount >= simulator.job(id).procs + countFence) {
        simulator.resumeJobMigrating(id, fenced);
        usableDirty = true;
      }
      continue;
    }
    // x.procs subset of (freeSet - fenced) == subset of freeSet and
    // disjoint from the fence.
    if (x.procs.isSubsetOf(usable)) {
      if (usableCount >= x.procs.count() + countFence) {
        simulator.resumeJob(id);
        usableDirty = true;
      }
    }
  }

  // Backfilling without guarantees: walk queued jobs in priority order and
  // start anything that fits on unclaimed capacity; do not stop at the
  // first job that does not fit. The suspended-set lease fence is fixed for
  // the whole walk (starting a job never changes the suspended set), so it
  // is computed once, after the resume pass above settled it.
  sim::ProcSet unusable = fenced;
  if (config_.owedProcs == OwedProcsPolicy::Lease)
    unusable |= suspendedSets(simulator);
  usableDirty = true;  // the fence changed; first candidate recomputes
  for (JobId id : idleByPriority(simulator)) {
    const auto& x = simulator.exec(id);
    if (x.state != sim::JobState::Queued) continue;
    if (isClaimant(id)) continue;
    refreshUsable(unusable);
    if (usableCount >= simulator.job(id).procs + countFence) {
      startFreshPreferring(simulator, id);
      usableDirty = true;
    }
  }
}

void SelectiveSuspension::preemptionPass(sim::Simulator& simulator) {
  SPS_TRACE(&simulator.recorder(),
            obs::instant("policy", "ss.preemptionPass", simulator.now()));
  // Sort the running set once: priorities are frozen while running, so the
  // order cannot change during the pass. Jobs suspended or started during
  // the pass are filtered by state when scanned (a job started this pass is
  // simply not victimizable until the next tick).
  std::vector<JobId> runningAsc(simulator.runningJobs());
  std::sort(runningAsc.begin(), runningAsc.end(),
            [&simulator](JobId a, JobId b) {
              const double xa = simulator.xfactor(a);
              const double xb = simulator.xfactor(b);
              if (xa != xb) return xa < xb;
              return a < b;
            });

  // The fresh-preemptor fences (claims, owed sets, usable free count) only
  // change when this pass suspends, resumes, starts, or claims — in
  // incremental mode they are cached across candidates and recomputed on
  // those mutations only. Rebuild mode recomputes per use (the reference
  // per-event-reconstruction behaviour the golden suite compares against).
  const bool incremental =
      config_.kernelMode == kernel::KernelMode::Incremental;
  bool fencesDirty = true;
  sim::ProcSet offLimits;
  std::uint32_t freeNow = 0;
  auto refreshFences = [&] {
    if (incremental && !fencesDirty) return;
    simulator.counters().inc(obs::Counter::FenceScans);
    offLimits = claimedSet(simulator);
    if (config_.owedProcs == OwedProcsPolicy::Lease)
      offLimits |= suspendedSets(simulator);
    const std::uint32_t countFence = claimedCount(simulator);
    const std::uint32_t usableFree = (simulator.freeSet() - offLimits).count();
    freeNow = usableFree >= countFence ? usableFree - countFence : 0;
    fencesDirty = false;
  };

  for (JobId id : idleByPriority(simulator)) {
    const auto& x = simulator.exec(id);
    // The idle snapshot can go stale as this loop suspends and starts jobs;
    // skip anything no longer idle.
    if (x.state != sim::JobState::Queued &&
        x.state != sim::JobState::Suspended)
      continue;
    if (isClaimant(id)) continue;

    const double priority = simulator.xfactor(id);
    const bool reentry =
        x.state == sim::JobState::Suspended && !config_.migratableJobs;
    const std::uint32_t width = simulator.job(id).procs;

    if (reentry) {
      // Must reclaim the exact saved set: every current occupant of those
      // processors has to be an eligible victim, and none may be mid-drain.
      const sim::ProcSet needed = x.procs;
      if (needed.intersects(claimedSet(simulator))) continue;
      std::vector<JobId> occupants;
      bool blocked = false;
      for (JobId r : simulator.runningJobs())
        if (simulator.exec(r).procs.intersects(needed)) occupants.push_back(r);
      // Canonical suspension order: the running list is unordered (swap-
      // and-pop), and with an overhead model the occupants' drain events
      // tie-break by insertion sequence — so the schedule would otherwise
      // depend on list internals.
      std::sort(occupants.begin(), occupants.end());
      for (JobId r : simulator.suspendedJobs())
        if (simulator.exec(r).state == sim::JobState::Suspending &&
            simulator.exec(r).procs.intersects(needed))
          blocked = true;  // draining; try again next tick
      if (blocked) continue;
      sim::ProcSet covered = needed & simulator.freeSet();
      for (JobId r : occupants) {
        if (!victimEligible(simulator, r, priority, width,
                            /*reentry=*/true)) {
          blocked = true;
          break;
        }
        covered |= simulator.exec(r).procs & needed;
      }
      if (blocked || !(needed - covered).empty()) continue;
      if (occupants.empty()) continue;  // dispatch() handles the free case
      bool anyDraining = false;
      for (JobId r : occupants) {
        simulator.counters().inc(obs::Counter::Preemptions);
        SPS_TRACE(&simulator.recorder(),
                  obs::instant("policy", "preempt", simulator.now(), r)
                      .arg("for", id));
        simulator.suspendJob(r);
        ++preemptions_;
        if (simulator.exec(r).state == sim::JobState::Suspending)
          anyDraining = true;
      }
      fencesDirty = true;
      if (anyDraining) {
        claims_.push_back({id, /*exact=*/true});
      } else {
        simulator.resumeJob(id);
      }
    } else {
      // Fresh preemptor: collect the lowest-priority eligible victims until
      // free + gain covers the request (pseudocode label suspend_jobs_1).
      // Under the lease discipline, processors owed to OTHER suspended jobs
      // are not usable — the preemptor runs on its victims' processors plus
      // unowed free ones.
      refreshFences();
      if (freeNow >= width) continue;  // dispatch() handles the free case

      std::vector<JobId> candidates;
      std::uint32_t gain = 0;
      for (JobId r : runningAsc) {
        // runningAsc is ascending in priority and xfactor is a pure
        // function of the (fixed) clock, so once the suspension-factor test
        // fails here it fails for every later victim too — victimEligible
        // cannot pass past this point.
        if (priority < config_.suspensionFactor * simulator.xfactor(r)) break;
        if (!victimEligible(simulator, r, priority, width,
                            /*reentry=*/false))
          continue;
        candidates.push_back(r);
        gain += simulator.job(r).procs;
        if (freeNow + gain >= width) break;
      }
      if (freeNow + gain < width) continue;

      // Suspend the widest candidates first so the fewest jobs are hit.
      std::sort(candidates.begin(), candidates.end(),
                [&simulator](JobId a, JobId b) {
                  if (simulator.job(a).procs != simulator.job(b).procs)
                    return simulator.job(a).procs > simulator.job(b).procs;
                  return a < b;
                });
      std::uint32_t freed = 0;
      bool anyDraining = false;
      sim::ProcSet victimProcs;
      for (JobId r : candidates) {
        if (freeNow + freed >= width) break;
        victimProcs |= simulator.exec(r).procs;
        simulator.counters().inc(obs::Counter::Preemptions);
        SPS_TRACE(&simulator.recorder(),
                  obs::instant("policy", "preempt", simulator.now(), r)
                      .arg("for", id));
        simulator.suspendJob(r);
        ++preemptions_;
        freed += simulator.job(r).procs;
        if (simulator.exec(r).state == sim::JobState::Suspending)
          anyDraining = true;
      }
      fencesDirty = true;
      if (anyDraining) {
        claims_.push_back({id, /*exact=*/false});
      } else if (x.state == sim::JobState::Suspended) {
        // Migratable model: the suspended preemptor restarts on whatever
        // freed up (reentry == false only when migratableJobs is set).
        simulator.resumeJobMigrating(id, claimedSet(simulator));
      } else {
        // Use the victims' processors in preference to (Lease: instead of)
        // processors owed to other suspended jobs — squatting on an owed
        // set strands its owner until the squatter completes.
        const sim::ProcSet owedOthers =
            suspendedSets(simulator) - victimProcs;
        if (config_.owedProcs == OwedProcsPolicy::Lease)
          simulator.startJobAvoiding(id,
                                     claimedSet(simulator) | owedOthers);
        else
          simulator.startJobPreferring(id, owedOthers,
                                       claimedSet(simulator));
      }
    }
  }
}

void SelectiveSuspension::onSimulationEnd(sim::Simulator& simulator) {
  SPS_CHECK_MSG(claims_.empty(), "unserved claims at end of run");
  SPS_CHECK_MSG(simulator.queuedJobs().empty(),
                "SS queue not drained at end of run");
  SPS_CHECK_MSG(simulator.suspendedJobs().empty(),
                "suspended jobs stranded at end of run");
}

}  // namespace sps::sched
