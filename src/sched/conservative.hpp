// Conservative backfilling (Section II-A.1 of the paper).
//
// Every job receives a start-time guarantee (its "anchor point") when it
// enters the system: the earliest time at which the availability profile —
// running jobs' estimated remainders plus all earlier reservations — can
// hold the job for its full estimated duration. A job may backfill only if
// doing so delays no previously-queued job, which the anchor construction
// guarantees by building the profile from every existing reservation.
//
// When a running job terminates earlier than its estimate, the schedule is
// compressed: reservations are released one by one in order of increasing
// guaranteed start and re-anchored against the rebuilt profile. A job's new
// anchor can never be later than its old guarantee (the old slot is still
// feasible), so guarantees only improve — the paper's no-starvation argument.
#pragma once

#include <vector>

#include "sched/availability_profile.hpp"
#include "sim/policy.hpp"

namespace sps::sched {

class ConservativeBackfill final : public sim::SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "Conservative"; }

  void onJobArrival(sim::Simulator& simulator, JobId job) override;
  void onJobCompletion(sim::Simulator& simulator, JobId job) override;
  void onSimulationEnd(sim::Simulator& simulator) override;

  /// Current start-time guarantee for a queued job (tests/diagnostics).
  [[nodiscard]] Time guaranteeOf(JobId job) const;

 private:
  struct Reservation {
    JobId job;
    Time start;
  };

  /// Profile of running jobs' estimated remainders only.
  [[nodiscard]] AvailabilityProfile runningProfile(
      const sim::Simulator& simulator) const;

  /// Re-anchor every reservation (in guarantee order) against a fresh
  /// profile, starting any whose anchor is now. Guarantees must not regress.
  void compress(sim::Simulator& simulator);

  std::vector<Reservation> reservations_;  ///< sorted by (start, FCFS rank)
};

}  // namespace sps::sched
