// Conservative backfilling (Section II-A.1 of the paper).
//
// Every job receives a start-time guarantee (its "anchor point") when it
// enters the system: the earliest time at which the availability profile —
// running jobs' estimated remainders plus all earlier reservations — can
// hold the job for its full estimated duration. A job may backfill only if
// doing so delays no previously-queued job, which the anchor construction
// guarantees by building the profile from every existing reservation.
//
// When a running job terminates earlier than its estimate, the schedule is
// compressed: reservations are released one by one in order of increasing
// guaranteed start and re-anchored against the rebuilt profile. A job's new
// anchor can never be later than its old guarantee (the old slot is still
// feasible), so guarantees only improve — the paper's no-starvation argument.
//
// The profile lives in a sched/core ReservationLedger; this file holds only
// the decision rule (guarantee ordering + the compression loop). The
// config's kernel mode selects incremental maintenance or the per-event
// rebuild the seed implementation used.
#pragma once

#include <unordered_map>
#include <vector>

#include "sched/core/backfill_engine.hpp"
#include "sched/core/reservation_ledger.hpp"
#include "sim/policy.hpp"

namespace sps::sched {

struct ConservativeConfig {
  kernel::KernelMode kernelMode = kernel::KernelMode::Incremental;
};

class ConservativeBackfill final : public sim::SchedulingPolicy {
 public:
  ConservativeBackfill() : ConservativeBackfill(ConservativeConfig{}) {}
  explicit ConservativeBackfill(ConservativeConfig config)
      : config_(config), ledger_(config.kernelMode) {}

  [[nodiscard]] std::string name() const override { return "Conservative"; }

  void onSimulationStart(sim::Simulator& simulator) override;
  void onJobArrival(sim::Simulator& simulator, JobId job) override;
  void onJobCompletion(sim::Simulator& simulator, JobId job) override;
  void onSimulationEnd(sim::Simulator& simulator) override;

  /// Current start-time guarantee for a queued job (tests/diagnostics).
  /// O(1): backed by a per-job map kept alongside the guarantee-ordered
  /// vector.
  [[nodiscard]] Time guaranteeOf(JobId job) const;

  /// The kernel ledger backing this policy, for the sps::check ledger
  /// audit. Read-only.
  [[nodiscard]] const kernel::ReservationLedger& ledger() const {
    return ledger_;
  }

 private:
  struct Reservation {
    JobId job;
    Time start;
  };

  /// Re-anchor every reservation (in guarantee order) against a fresh
  /// profile, starting any whose anchor is now. Guarantees must not regress.
  void compress(sim::Simulator& simulator);

  /// Fast-path compression for on-time completions (incremental mode):
  /// the availability function is unchanged, so every re-anchor would
  /// return the reservation's current start. Only the start == now prefix
  /// can act — start those that physically fit, keep the rest untouched.
  void startDueReservations(sim::Simulator& simulator);

  void recordReservation(sim::Simulator& simulator, JobId job, Time start);

  ConservativeConfig config_;
  kernel::ReservationLedger ledger_;
  kernel::BackfillEngine engine_{ledger_};
  std::vector<Reservation> reservations_;  ///< sorted by (start, FCFS rank)
  /// JobId -> guaranteed start, mirroring reservations_.
  std::unordered_map<JobId, Time> guaranteeIndex_;
};

}  // namespace sps::sched
