// AvailabilityProfile — the "2D chart" of future free processors that
// backfilling reasons over (Section II-A of the paper).
//
// A step function free(t) for t >= origin, built by subtracting busy
// intervals (running jobs' estimated remainders, reservations). Supports the
// two queries backfilling needs: the earliest anchor point where a job fits
// for its full estimated duration, and the minimum availability over a
// window.
//
// Counts, not named processors: backfilling predicts the future, and with no
// migration constraint on *queued* jobs any set of free processors is as
// good as any other at start time.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace sps::sched {

class AvailabilityProfile {
 public:
  /// Profile with `totalProcs` free everywhere from `origin` onward.
  AvailabilityProfile(Time origin, std::uint32_t totalProcs);

  [[nodiscard]] Time origin() const { return origin_; }
  [[nodiscard]] std::uint32_t totalProcs() const { return total_; }

  /// Mark `procs` processors busy over [start, end). Clamps start to the
  /// origin. No-op when the interval is empty. It is an invariant error to
  /// drive availability below zero anywhere.
  void addBusy(Time start, Time end, std::uint32_t procs);

  /// Exact inverse of addBusy: return `procs` processors over [start, end).
  /// Clamps start to the origin; no-op on an empty interval. It is an
  /// invariant error to drive availability above totalProcs anywhere.
  /// Adjacent steps left with equal availability are coalesced, so an
  /// add/remove churn (incremental maintenance) cannot grow the step vector
  /// without bound.
  void removeBusy(Time start, Time end, std::uint32_t procs);

  /// Advance the origin to `newOrigin` (>= origin()), dropping every step
  /// that ends at or before it. Availability at times >= newOrigin is
  /// unchanged. This is how an incrementally-maintained profile follows the
  /// simulation clock instead of being rebuilt at each event.
  void shiftOrigin(Time newOrigin);

  /// Free processors at time t (t >= origin).
  [[nodiscard]] std::uint32_t freeAt(Time t) const;

  /// Minimum of free(t) over [start, end). Requires start < end.
  [[nodiscard]] std::uint32_t minFreeIn(Time start, Time end) const;

  /// Earliest t >= notBefore such that free(u) >= procs for all
  /// u in [t, t+duration). Always exists because the profile empties out.
  [[nodiscard]] Time findAnchor(Time notBefore, Time duration,
                                std::uint32_t procs) const;

  /// Number of internal steps (for tests).
  [[nodiscard]] std::size_t stepCount() const { return steps_.size(); }

  /// Semantic equality: same origin, same totalProcs, and the same free(t)
  /// everywhere — regardless of how each profile's breakpoints happen to be
  /// split (add/remove churn can leave equal-valued adjacent steps). Used
  /// by the sps::check ledger audit to compare an incrementally-maintained
  /// profile against a from-scratch rebuild.
  [[nodiscard]] bool sameFunctionAs(const AvailabilityProfile& other) const;

 private:
  struct Step {
    Time start;          ///< step covers [start, next.start)
    std::uint32_t free;  ///< free processors during the step
  };
  /// Index of the step containing t.
  [[nodiscard]] std::size_t stepIndex(Time t) const;
  /// Ensure a breakpoint exists exactly at t; return its step index.
  std::size_t splitAt(Time t);

  Time origin_;
  std::uint32_t total_;
  std::vector<Step> steps_;  ///< sorted by start; last step extends forever
};

}  // namespace sps::sched
