// Gang scheduling — the other classical answer (besides backfilling) to
// FCFS fragmentation that the paper discusses in Section II (Feitelson &
// Jette [35]): all processes of a job are co-scheduled, and the machine
// time-slices between "slots" of an Ousterhout matrix.
//
// Model:
//  * The matrix has up to `maxSlots` rows; each row holds jobs whose
//    processor demands sum to at most the machine size. Jobs in different
//    rows may use the same processors — they never run simultaneously.
//  * The active row's jobs run; every `slotQuantum` seconds the scheduler
//    suspends the active row and resumes the next non-empty row (each job
//    on its exact previous processors — gang scheduling is local
//    preemption too, so the paper's overhead model applies unchanged and
//    prices the context sweep).
//  * Arrivals are placed into the first row with room, a fresh row if the
//    matrix is not full, and otherwise wait in a FIFO queue.
//  * A row that empties is deleted; with a single populated row the
//    scheduler stops slicing (no needless suspensions).
//
// Included as an extension baseline: it shows what uniform time-slicing
// buys (interactive response for everything) and costs (runtime dilation
// proportional to the multiprogramming level) next to SS's *selective*
// preemption.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/policy.hpp"

namespace sps::sched {

struct GangConfig {
  /// Length of one time slice, seconds.
  Time slotQuantum = 10 * kMinute;
  /// Maximum multiprogramming level (rows of the Ousterhout matrix).
  std::size_t maxSlots = 4;
};

class GangScheduler final : public sim::SchedulingPolicy {
 public:
  explicit GangScheduler(GangConfig config = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const GangConfig& config() const { return config_; }

  void onJobArrival(sim::Simulator& simulator, JobId job) override;
  void onJobCompletion(sim::Simulator& simulator, JobId job) override;
  void onSuspendDrained(sim::Simulator& simulator, JobId job) override;
  void onTimer(sim::Simulator& simulator, std::uint64_t tag) override;
  void onSimulationEnd(sim::Simulator& simulator) override;

  /// Current number of populated rows (tests/diagnostics).
  [[nodiscard]] std::size_t slotCount() const { return slots_.size(); }
  /// Completed slot switches.
  [[nodiscard]] std::uint64_t switches() const { return switches_; }

 private:
  struct Slot {
    std::vector<JobId> jobs;
    std::uint32_t load = 0;  ///< sum of member widths
  };

  /// Row a job can join (capacity check), or slots_.size() for "none".
  [[nodiscard]] std::size_t findSlotFor(const sim::Simulator& s,
                                        std::uint32_t procs) const;
  /// Put a job into a row (creating one if allowed); returns false when the
  /// matrix is full and the job must wait in the FIFO queue.
  bool placeJob(sim::Simulator& simulator, JobId job);
  /// Launch every member of the active row that is not already running:
  /// resumptions first (exact sets), then first-time starts.
  void launchActiveSlot(sim::Simulator& simulator);
  /// Begin the suspend-drain-activate sequence toward the next row.
  void beginSwitch(sim::Simulator& simulator);
  void finishSwitchIfDrained(sim::Simulator& simulator);
  void armQuantum(sim::Simulator& simulator);
  void removeJob(sim::Simulator& simulator, JobId job);
  void drainPendingQueue(sim::Simulator& simulator);

  GangConfig config_;
  std::vector<Slot> slots_;
  std::size_t active_ = 0;
  std::deque<JobId> pending_;  ///< FIFO overflow queue
  bool switching_ = false;
  std::size_t targetSlot_ = 0;
  std::uint32_t drainsOutstanding_ = 0;
  bool quantumArmed_ = false;
  std::uint64_t quantumEpoch_ = 0;  ///< invalidates stale quantum timers
  std::uint64_t switches_ = 0;
};

}  // namespace sps::sched
