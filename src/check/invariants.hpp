// sps::check — the online invariant oracle.
//
// The paper's central claims are safety properties a live observer can
// verify on every run, not just on golden seeds:
//
//   * capacity        — no processor oversubscription, ever (the 2D-chart
//                       packing of Section II is physically realizable);
//   * conservation    — every arrived job runs and finishes exactly once,
//                       and suspensions balance resumes (nothing starves
//                       forever or is lost mid-preemption);
//   * guarantees      — conservative/depth-K start-time guarantees never
//                       regress (the no-starvation argument of Section
//                       II-A: compression may only improve an anchor);
//   * tssBound        — TSS never suspends a job whose slowdown already
//                       meets its category's protection limit (the tunable
//                       worst-case bound of Section IV-E);
//   * ledger          — the incremental AvailabilityProfile equals a
//                       from-scratch rebuild (the kernel optimization of
//                       PR 2 changed no scheduler-visible state).
//
// The validator cores (TransitionAudit, CapacityAudit, GuaranteeAudit,
// checkTssBound) are plain classes fed explicit streams so tests can drive
// them with corrupted histories directly. InvariantChecker composes them
// onto a live run through the typed Simulator::observers() registry and
// discovers policy probes (guaranteeOf, the kernel ledger, TSS limits) by
// policy type. Violations throw InvariantError, exactly like the
// simulator's own SPS_CHECK failures.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "check/check_config.hpp"
#include "sim/procset.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace sps::sched {
class SelectiveSuspension;
namespace kernel {
class ReservationLedger;
}
}  // namespace sps::sched

namespace sps::check {

/// Transition-stream auditor: legality of every (from, to) edge against the
/// simulator's lifecycle graph, per-job sequencing (the observed `from`
/// must be the state the previous transition left the job in), and
/// lifecycle tallies for the end-of-run conservation balance.
class TransitionAudit {
 public:
  /// Per-job lifecycle counts, exposed for the finalize cross-checks.
  struct Tally {
    sim::JobState last = sim::JobState::NotArrived;
    std::uint32_t arrivals = 0;
    std::uint32_t starts = 0;       ///< Queued -> Running
    std::uint32_t resumes = 0;      ///< Suspended -> Running
    std::uint32_t suspensions = 0;  ///< Running -> Suspending/Suspended
    std::uint32_t finishes = 0;
    std::uint32_t cancels = 0;      ///< * -> Cancelled (streaming ingest)
  };

  /// Feed one observed transition; throws InvariantError on an illegal
  /// edge or a `from` that contradicts the job's recorded state.
  void onTransition(JobId id, sim::JobState from, sim::JobState to, Time now);

  /// End-of-run conservation: exactly `expectedJobs` jobs seen, each
  /// arrived once, started once, finished once, with suspensions == resumes.
  void finalize(std::size_t expectedJobs) const;

  [[nodiscard]] const Tally& tally(JobId id);
  [[nodiscard]] std::uint64_t totalStarts() const { return starts_; }
  [[nodiscard]] std::uint64_t totalResumes() const { return resumes_; }
  [[nodiscard]] std::uint64_t totalSuspensions() const { return suspensions_; }

 private:
  std::unordered_map<JobId, Tally> jobs_;
  std::uint64_t starts_ = 0;
  std::uint64_t resumes_ = 0;
  std::uint64_t suspensions_ = 0;
};

/// Occupancy mirror: processor sets held by Running/Suspending jobs,
/// rebuilt independently from the transition stream so a double allocation
/// is caught even when the Machine's own books are internally consistent.
class CapacityAudit {
 public:
  explicit CapacityAudit(std::uint32_t totalProcs);

  /// Job begins holding `procs` (entered Running). Throws if the set is
  /// empty, overlaps another job's, or the job already holds one.
  void hold(JobId id, const sim::ProcSet& procs, Time now);
  /// Job stops holding its processors (left Running/Suspending for a
  /// non-holding state). Throws if it holds none.
  void release(JobId id, Time now);

  /// The held sets and `freeSet` must partition the machine exactly.
  void verify(const sim::ProcSet& freeSet, Time now) const;

  [[nodiscard]] std::uint32_t heldCount() const { return held_.count(); }

 private:
  std::uint32_t total_;
  sim::ProcSet all_;   ///< {0 .. total-1}
  sim::ProcSet held_;  ///< union of every job's held set
  std::unordered_map<JobId, sim::ProcSet> byJob_;
};

/// Start-time guarantee monotonicity: once a queued job is observed with a
/// guarantee, every later observation (while still queued) must be at the
/// same time or earlier, and the guarantee may not disappear.
class GuaranteeAudit {
 public:
  /// Record one observation; `guarantee` == kNoTime means "none held".
  void observe(JobId id, Time guarantee, Time now);
  /// The job started (or finished): its guarantee is consumed, not lost.
  void forget(JobId id);

 private:
  std::unordered_map<JobId, Time> last_;
};

/// TSS bound: a suspension of `id` at priority (slowdown) `priority` under
/// protection limit `limit` must satisfy priority < limit — a job at or
/// past its category limit has suffered its bound already.
void checkTssBound(JobId id, double priority, double limit, Time now);

/// Composes the validators onto a live run. Construct, arm() before
/// Simulator::run(), finalize() after. One checker serves one run.
class InvariantChecker {
 public:
  using GuaranteeProbe = std::function<Time(JobId)>;
  using TssProbe =
      std::function<std::optional<double>(const sim::Simulator&, JobId)>;

  explicit InvariantChecker(CheckConfig config) : config_(config) {}

  /// Register observers on the simulator and discover the policy's probes
  /// (guarantee oracle, kernel ledger, TSS protection limits) by type.
  /// Must run before Simulator::run() so the kernel's own observers see
  /// the same stream the checker audits.
  void arm(sim::Simulator& simulator, const sim::SchedulingPolicy& policy);

  /// End-of-run half of the conservation checks: per-job lifecycle balance
  /// against JobExec, totals against the sps::obs counters, final capacity
  /// partition, final ledger audit.
  void finalize(const sim::Simulator& simulator);

  /// Sampled (per-auditStride) audits performed, for tests asserting the
  /// oracle actually ran.
  [[nodiscard]] std::uint64_t epochAudits() const { return epochAudits_; }

  /// Test seams: install a probe in place of (or in the absence of) the
  /// discovered one — how the corrupted-run suite makes a healthy
  /// simulation look like it broke a guarantee or the TSS bound.
  void setGuaranteeProbe(GuaranteeProbe probe) {
    guaranteeProbe_ = std::move(probe);
  }
  void setTssProbe(TssProbe probe) { tssProbe_ = std::move(probe); }

 private:
  void onStateChange(const sim::Simulator& s, JobId id, sim::JobState from,
                     sim::JobState to);
  void onEvent(const sim::Simulator& s);

  CheckConfig config_;
  TransitionAudit transitions_;
  std::optional<CapacityAudit> capacity_;
  GuaranteeAudit guarantees_;
  GuaranteeProbe guaranteeProbe_;
  TssProbe tssProbe_;
  const sched::kernel::ReservationLedger* ledger_ = nullptr;
  std::uint64_t dispatches_ = 0;
  std::uint64_t epochAudits_ = 0;
  bool armed_ = false;
};

}  // namespace sps::check
