// DiffHarness — the differential half of sps::check.
//
// Cross-checking two independent implementations of the same scheduler is
// the standing trust argument for scheduling simulators; here the two
// implementations already exist: every kernel policy runs under
// KernelMode::Incremental (amortized ledger maintenance) and
// KernelMode::Rebuild (the pre-kernel per-event reconstruction). The
// harness runs a workload through both with the invariant oracle armed and
// diffs the full schedules — any divergence or invariant firing is a bug by
// construction.
//
// A failing case shrinks via a greedy job-removal minimizer and round-trips
// through a self-contained text repro file (policy token + overhead flag +
// machine + job list) that tests/test_fuzz_corpus.cpp replays under ctest.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <tuple>
#include <vector>

#include "check/check_config.hpp"
#include "core/simulation.hpp"
#include "sched/core/reservation_ledger.hpp"
#include "workload/job.hpp"

namespace sps::check {

/// One differential test case: a policy (compact token form), the
/// suspension-overhead toggle, and the workload.
struct FuzzCase {
  /// Policy token: "conservative", "easy", "sjf", "fcfs", "gang", "is",
  /// "depth:<K|inf>", "ss:<SF>", "tss:<SF>" (limits bootstrapped from the
  /// trace's NS run), "tss-online:<mult>".
  std::string policyToken = "ss:2";
  /// Run with the DiskSwap suspension/restart overhead model.
  bool overhead = false;
  workload::Trace trace;
  /// Federated lane (sps::fed): when fedShards > 0, the case is a fleet
  /// trace run as a federation of that many clusters (each of
  /// trace.machineProcs processors) and diffed against its per-shard
  /// replay (fed::diffFederated). 0 = a plain single-cluster case.
  std::uint32_t fedShards = 0;
  /// Router token for the federated lane ("hash" | "least-loaded").
  std::string fedRouter = "hash";
  /// Cross-cluster forwarding delay for the federated lane, seconds.
  Time fedDelay = 0;
};

/// Parse a policy token into a spec (kernel mode left at default). Throws
/// InputError on an unknown token. The "tss:" bootstrap marker is resolved
/// by the harness, which owns the trace.
[[nodiscard]] core::PolicySpec policyFromToken(const std::string& token);

/// Resolve a case's full spec, including the "tss:" bootstrap (limits
/// calibrated from the case trace's own NS run — deterministic and
/// kernel-mode independent, so every lane of a diff sees identical
/// limits). The federated lane resolves against the *fleet* trace through
/// this same call, so federation shards and their single-cluster replays
/// agree on the limits too.
[[nodiscard]] core::PolicySpec resolveCaseSpec(const FuzzCase& c);

/// The standing fuzz set: every policy family x the paper's interesting
/// parameter points. Each runs under both kernel modes per case.
[[nodiscard]] std::vector<std::string> fuzzPolicyTokens();

/// Seeded adversarial workload generator. Rotates through shapes the
/// golden suite never covers: SyntheticTraceGenerator runs concentrated on
/// corner categories, same-instant arrival bursts, full-width/single-proc
/// storms on tiny machines — then stamps estimates from accurate through
/// pathologically overestimated. Deterministic in `seed`.
[[nodiscard]] workload::Trace makeFuzzTrace(std::uint64_t seed);

/// A complete case for fuzz iteration i of a --seed run: trace, overhead
/// flag, and the given policy, all deterministic in (seed, token).
[[nodiscard]] FuzzCase makeFuzzCase(std::uint64_t seed, std::string token);

/// Everything one mode's run produced that the other mode must reproduce.
struct RunRecord {
  /// (time, job, from, to) for every state transition, in order.
  std::vector<std::tuple<Time, JobId, int, int>> transitions;
  std::vector<Time> firstStart;
  std::vector<Time> finish;
  std::vector<std::uint32_t> suspendCount;
};

struct DiffOutcome {
  /// First-divergence description; empty when the schedules are identical.
  std::string divergence;
  /// First invariant firing (InvariantError::what); empty when silent.
  std::string violation;
  [[nodiscard]] bool ok() const {
    return divergence.empty() && violation.empty();
  }
};

class DiffHarness {
 public:
  explicit DiffHarness(CheckConfig checks = CheckConfig::all(1))
      : checks_(checks) {}

  /// Run the case once under `mode` with the oracle armed. On an invariant
  /// firing, *violation gets the message and the (partial) record returns.
  [[nodiscard]] RunRecord runOnce(const FuzzCase& c,
                                  sched::kernel::KernelMode mode,
                                  std::string* violation) const;

  /// Run under both kernel modes and diff the records.
  [[nodiscard]] DiffOutcome diff(const FuzzCase& c) const;

  /// Run the case once under `mode` through the streaming ingest boundary:
  /// the trace is chopped into seeded segments, each submitted as a block
  /// after advancing the simulator under bounded lookahead. Coarse segments
  /// deliberately leave several future arrivals pending in the event queue
  /// at once — the interleaving the per-job pump (core::runSimulation's
  /// streaming overload) never produces. Same record/violation contract as
  /// runOnce.
  [[nodiscard]] RunRecord runStreamed(const FuzzCase& c,
                                      sched::kernel::KernelMode mode,
                                      std::uint64_t seed,
                                      std::string* violation) const;

  /// Golden equivalence across the ingest boundary: for each kernel mode,
  /// batch vs streamed replay of the same case must be bit-identical.
  /// A divergence here is an ingest-boundary bug (ordering, steady-state
  /// snapshot, index growth), not a kernel one.
  [[nodiscard]] DiffOutcome diffStreamed(const FuzzCase& c,
                                         std::uint64_t seed) const;

  /// Greedy job-removal minimizer: smallest sub-trace of `c` that still
  /// fails diff(). Requires !diff(c).ok(); at most `maxRuns` diff
  /// evaluations.
  [[nodiscard]] FuzzCase shrink(const FuzzCase& c,
                                std::size_t maxRuns = 400) const;

  /// Generalized minimizer: same greedy chunk removal, but against any
  /// failure oracle — the federated fuzz lane shrinks with
  /// fed::diffFederated as the predicate. `stillFails(candidate)` must
  /// return true while the candidate reproduces the failure.
  [[nodiscard]] static FuzzCase shrinkWith(
      const FuzzCase& c,
      const std::function<bool(const FuzzCase&)>& stillFails,
      std::size_t maxRuns = 400);

 private:
  CheckConfig checks_;
};

/// Repro file I/O (line-based text; see tests/corpus/*.repro).
void writeRepro(std::ostream& os, const FuzzCase& c);
[[nodiscard]] FuzzCase readRepro(std::istream& is);  ///< throws InputError

}  // namespace sps::check
