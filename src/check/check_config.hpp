// CheckConfig — toggle block for the sps::check invariant oracle.
//
// Plain data with no dependencies so core::SimulationOptions can embed one
// without pulling the checker machinery into every translation unit. All
// checkers default off: a default-constructed config arms nothing and
// runSimulation skips the checker entirely (off ≈ zero cost).
#pragma once

#include <cstdint>

namespace sps::check {

struct CheckConfig {
  /// No processor oversubscription: the union of processor sets held by
  /// Running/Suspending jobs and the machine's free set partition the
  /// machine, and no two jobs' sets overlap (mirrored from transitions, so
  /// a double-allocation is caught even if Machine's own books agree).
  bool capacity = false;

  /// Transition legality + lifecycle conservation: every arrived job is
  /// arrived exactly once, started before it finishes, suspended exactly as
  /// often as it is resumed (+1 if suspended at the end, which never
  /// survives a completed run), finished exactly once; and the sps::obs
  /// counters (sim.starts / sim.resumes / sim.suspensions and the
  /// per-category breakdown) balance against the observed stream.
  bool conservation = false;

  /// Guarantee monotonicity: a queued job's start-time guarantee
  /// (conservative / depth-K anchor, via guaranteeOf) never moves later —
  /// the paper's no-starvation argument for reservation-based backfilling.
  bool guarantees = false;

  /// TSS bound compliance: no job is suspended while its priority
  /// (slowdown-at-suspension) already meets its category's victim-
  /// protection limit — the tunable guarantee of Section IV-E.
  bool tssBound = false;

  /// Ledger/profile consistency: the ReservationLedger's incrementally-
  /// maintained AvailabilityProfile matches a from-scratch rebuild at
  /// sampled epochs, and its running layer matches the simulator's running
  /// set exactly.
  bool ledger = false;

  /// Stride for the sampled audits (ledger rebuild comparison and the
  /// guarantee poll): run them on every auditStride-th dispatched event.
  /// 1 = every event (what the fuzzer and the test suites use); the CLI
  /// default keeps the oracle affordable on long traces.
  std::uint32_t auditStride = 16;

  [[nodiscard]] bool any() const {
    return capacity || conservation || guarantees || tssBound || ledger;
  }

  /// Everything armed at the given stride.
  [[nodiscard]] static CheckConfig all(std::uint32_t stride = 16) {
    CheckConfig c;
    c.capacity = c.conservation = c.guarantees = c.tssBound = c.ledger = true;
    c.auditStride = stride == 0 ? 1 : stride;
    return c;
  }
};

}  // namespace sps::check
