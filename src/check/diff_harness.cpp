#include "check/diff_harness.hpp"

#include <algorithm>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "check/invariants.hpp"
#include "core/experiment.hpp"
#include "sched/overhead.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/estimate_model.hpp"
#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"

namespace sps::check {

namespace {

using sched::kernel::KernelMode;

std::string describeTransition(const std::tuple<Time, JobId, int, int>& t) {
  std::ostringstream os;
  os << "t=" << std::get<0>(t) << " job=" << std::get<1>(t) << " "
     << std::get<2>(t) << "->" << std::get<3>(t);
  return os.str();
}

std::string diffRecords(const RunRecord& inc, const RunRecord& reb,
                        const char* lhs = "incremental",
                        const char* rhs = "rebuild") {
  const std::size_t n = std::min(inc.transitions.size(),
                                 reb.transitions.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (inc.transitions[i] == reb.transitions[i]) continue;
    std::ostringstream os;
    os << "schedules diverge at transition " << i << ": " << lhs << " ("
       << describeTransition(inc.transitions[i]) << ") vs " << rhs << " ("
       << describeTransition(reb.transitions[i]) << ")";
    return os.str();
  }
  if (inc.transitions.size() != reb.transitions.size()) {
    std::ostringstream os;
    os << "transition counts differ: " << lhs << " " << inc.transitions.size()
       << " vs " << rhs << " " << reb.transitions.size();
    return os.str();
  }
  for (std::size_t id = 0; id < inc.firstStart.size(); ++id) {
    if (inc.firstStart[id] != reb.firstStart[id] ||
        inc.finish[id] != reb.finish[id] ||
        inc.suspendCount[id] != reb.suspendCount[id]) {
      std::ostringstream os;
      os << "per-job records diverge for job " << id << ": " << lhs
         << " (start " << inc.firstStart[id] << ", finish " << inc.finish[id]
         << ", " << inc.suspendCount[id] << " suspensions) vs " << rhs
         << " (start " << reb.firstStart[id] << ", finish " << reb.finish[id]
         << ", " << reb.suspendCount[id] << " suspensions)";
      return os.str();
    }
  }
  return "";
}

// --- workload shapes -------------------------------------------------------

workload::Job makeJob(Time submit, Time runtime, std::uint32_t procs,
                      std::uint32_t memoryMb) {
  workload::Job j;
  j.submit = submit;
  j.runtime = runtime;
  j.estimate = runtime;
  j.procs = procs;
  j.memoryMb = memoryMb;
  return j;
}

/// SyntheticTraceGenerator concentrated on a few corner categories.
/// generateTrace requires machineProcs > 32 (the VeryWide band needs room),
/// so this shape runs on the larger machines.
workload::Trace cornerSynthetic(Rng& rng, std::size_t jobs) {
  // The paper-scale machines plus two scale-out sizes that force ProcSet's
  // windowed large-set mode (procs >= 1024) through every policy and both
  // kernel modes.
  static constexpr std::uint32_t kMachines[] = {64,   100,  128,
                                                430,  4096, 65'536};
  workload::SyntheticConfig cfg;
  cfg.name = "fuzz-corner";
  cfg.machineProcs = kMachines[rng.uniformInt(0, 5)];
  // Scale the width bands with the machine past the inline boundary so the
  // big configs exercise wide-window sets instead of 99% VeryWide jobs.
  cfg.scaleWidthBands = cfg.machineProcs > 1024;
  cfg.jobCount = jobs;
  cfg.seed = rng.next();
  const int corners = static_cast<int>(rng.uniformInt(1, 3));
  for (int k = 0; k < corners; ++k)
    cfg.categoryMix[static_cast<std::size_t>(rng.uniformInt(0, 15))] = 1.0;
  cfg.offeredLoad = rng.uniform(0.5, 1.4);
  cfg.widthAlpha = rng.uniform(1.0, 3.2);
  cfg.minRuntime = 1;
  // generateTrace needs the Long band non-empty (maxRuntime > 8 h); vary
  // the tail so short-heavy and long-heavy category mixes both occur.
  cfg.maxRuntime = kHour * rng.uniformInt(9, 48);
  if (rng.uniform01() < 0.3) cfg.diurnalAmplitude = rng.uniform(0.3, 0.9);
  return workload::generateTrace(cfg);
}

/// Same-instant arrival bursts on a (usually tiny) machine.
workload::Trace burstTrace(Rng& rng, std::uint32_t machineProcs,
                           std::size_t jobs) {
  workload::Trace trace;
  trace.name = "fuzz-burst";
  trace.machineProcs = machineProcs;
  Time now = 0;
  while (trace.jobs.size() < jobs) {
    const auto burst = static_cast<std::size_t>(rng.uniformInt(1, 12));
    for (std::size_t k = 0; k < burst && trace.jobs.size() < jobs; ++k) {
      const Time runtime = rng.logUniformInt(1, 2 * kHour);
      std::uint32_t procs;
      const double p = rng.uniform01();
      if (p < 0.3) {
        procs = 1;
      } else if (p < 0.5) {
        procs = machineProcs;  // full-width: serializes the whole machine
      } else {
        procs = static_cast<std::uint32_t>(rng.uniformInt(1, machineProcs));
      }
      const auto mem = static_cast<std::uint32_t>(rng.uniformInt(0, 1024));
      trace.jobs.push_back(makeJob(now, runtime, procs, mem));
    }
    // Most bursts land on the same instant as the next one; the rest leave
    // a gap up to two hours.
    if (rng.uniform01() >= 0.3)
      now += rng.logUniformInt(1, 2 * kHour);
  }
  return trace;
}

/// Alternating full-width long jobs and narrow shorts with tight arrivals —
/// the shape that maximizes preemption pressure and backfill churn.
workload::Trace widthStorm(Rng& rng, std::uint32_t machineProcs,
                           std::size_t jobs) {
  workload::Trace trace;
  trace.name = "fuzz-widths";
  trace.machineProcs = machineProcs;
  Time now = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::Job j;
    if (i % 7 == 0) {
      j = makeJob(now, rng.logUniformInt(30 * kMinute, 4 * kHour),
                  machineProcs,
                  static_cast<std::uint32_t>(rng.uniformInt(100, 1024)));
    } else {
      const auto half = std::max<std::uint32_t>(1, machineProcs / 2);
      j = makeJob(now, rng.logUniformInt(1, 20 * kMinute),
                  static_cast<std::uint32_t>(rng.uniformInt(1, half)),
                  static_cast<std::uint32_t>(rng.uniformInt(0, 512)));
    }
    trace.jobs.push_back(j);
    now += rng.uniformInt(0, 10 * kMinute);
  }
  return trace;
}

/// Estimate regimes from exact through pathological overestimates.
void stampEstimates(Rng& rng, workload::Trace& trace) {
  const double p = rng.uniform01();
  if (p < 0.3) return;  // accurate: estimate == runtime, as generated
  if (p < 0.6) {
    workload::EstimateModelConfig cfg;
    cfg.kind = workload::EstimateModelKind::Modal;
    cfg.seed = rng.next();
    workload::applyEstimates(trace, cfg);
  } else if (p < 0.8) {
    workload::EstimateModelConfig cfg;
    cfg.kind = workload::EstimateModelKind::UniformFactor;
    cfg.seed = rng.next();
    cfg.maxFactor = rng.uniform(2.0, 100.0);
    workload::applyEstimates(trace, cfg);
  } else {
    // Pathological: every estimate wildly over, a fixed huge factor per
    // job — the regime where belief-based profiles are most wrong.
    for (workload::Job& j : trace.jobs)
      j.estimate = j.runtime * rng.uniformInt(10, 1000);
  }
}

}  // namespace

core::PolicySpec policyFromToken(const std::string& token) {
  // The shared registry parses; harness callers expect InputError.
  try {
    return sched::specFromToken(token);
  } catch (const std::invalid_argument& e) {
    throw InputError(e.what());
  }
}

std::vector<std::string> fuzzPolicyTokens() {
  return sched::knownPolicyTokens();
}

core::PolicySpec resolveCaseSpec(const FuzzCase& c) {
  core::PolicySpec spec = policyFromToken(c.policyToken);
  if (c.policyToken.rfind("tss:", 0) == 0)
    spec.ss.tssLimits = core::bootstrapTssLimits(c.trace);
  return spec;
}

workload::Trace makeFuzzTrace(std::uint64_t seed) {
  Rng rng(seed);
  static constexpr std::uint32_t kTinyMachines[] = {2, 3, 5, 8, 13, 32, 100};
  const auto machineProcs =
      kTinyMachines[rng.uniformInt(0, 6)];
  const auto jobs = static_cast<std::size_t>(rng.uniformInt(20, 120));
  workload::Trace trace;
  switch (rng.uniformInt(0, 2)) {
    case 0: trace = cornerSynthetic(rng, jobs); break;
    case 1: trace = burstTrace(rng, machineProcs, jobs); break;
    default: trace = widthStorm(rng, machineProcs, jobs); break;
  }
  stampEstimates(rng, trace);
  workload::normalizeTrace(trace);
  workload::validateTrace(trace);
  return trace;
}

FuzzCase makeFuzzCase(std::uint64_t seed, std::string token) {
  SplitMix64 mix(seed);
  FuzzCase c;
  c.policyToken = std::move(token);
  const std::uint64_t traceSeed = mix.next();
  c.overhead = (mix.next() & 1) != 0;
  c.trace = makeFuzzTrace(traceSeed);
  return c;
}

namespace {

/// Shared body of runOnce/runStreamed: construct (batch or streaming),
/// arm the oracle and the transition recorder, run `drive`, harvest.
template <typename Drive>
RunRecord runRecorded(const CheckConfig& checks, const FuzzCase& c,
                      KernelMode mode, bool streamed, Drive&& drive,
                      std::string* violation) {
  const core::PolicySpec spec =
      sched::withKernelMode(resolveCaseSpec(c), mode);
  const auto policy = core::makePolicy(spec);
  std::optional<sched::DiskSwapOverhead> overhead;
  sim::Simulator::Config config;
  // Cross the event-queue implementations with the kernel modes, so one
  // diff pins both redesigned layers against their references: the rebuild
  // lane runs the binary heap, the incremental lane the calendar queue.
  config.queueKind = mode == KernelMode::Rebuild
                         ? sim::QueueKind::BinaryHeap
                         : sim::QueueKind::Calendar;
  if (c.overhead) {
    // Per-job costs are precomputed by id from the original trace; the
    // streamed lane assigns identical ids (stream order == trace order).
    overhead.emplace(c.trace);
    config.overhead = &*overhead;
  }
  std::optional<sim::Simulator> simulator;
  if (streamed)
    simulator.emplace(c.trace.name, c.trace.machineProcs, *policy, config);
  else
    simulator.emplace(c.trace, *policy, config);
  InvariantChecker checker(checks);
  checker.arm(*simulator, *policy);
  RunRecord record;
  simulator->observers().onStateChange(
      [&record](const sim::Simulator& s, JobId id, sim::JobState from,
                sim::JobState to) {
        record.transitions.emplace_back(s.now(), id, static_cast<int>(from),
                                        static_cast<int>(to));
      });
  try {
    drive(*simulator);
    checker.finalize(*simulator);
  } catch (const InvariantError& e) {
    if (violation != nullptr) *violation = e.what();
    return record;
  }
  for (JobId id = 0; id < c.trace.jobs.size(); ++id) {
    record.firstStart.push_back(simulator->exec(id).firstStart);
    record.finish.push_back(simulator->exec(id).finish);
    record.suspendCount.push_back(simulator->exec(id).suspendCount);
  }
  return record;
}

}  // namespace

RunRecord DiffHarness::runOnce(const FuzzCase& c, KernelMode mode,
                               std::string* violation) const {
  return runRecorded(
      checks_, c, mode, /*streamed=*/false,
      [](sim::Simulator& simulator) { simulator.run(); }, violation);
}

RunRecord DiffHarness::runStreamed(const FuzzCase& c, KernelMode mode,
                                   std::uint64_t seed,
                                   std::string* violation) const {
  return runRecorded(
      checks_, c, mode, /*streamed=*/true,
      [&c, seed](sim::Simulator& simulator) {
        // Seeded coarse chopping: submit the trace in blocks of 1..8 jobs.
        // Usually advance under minimum lookahead first (to the instant
        // before the block's first submit); sometimes stay put, so a block
        // lands while the simulator lags several events behind — both leave
        // multiple future arrivals pending in the event queue, which the
        // per-job pump never does.
        Rng rng(seed);
        const auto& jobs = c.trace.jobs;
        std::size_t i = 0;
        while (i < jobs.size()) {
          const auto seg = std::min<std::size_t>(
              jobs.size() - i,
              static_cast<std::size_t>(rng.uniformInt(1, 8)));
          if (rng.uniform01() < 0.7)
            simulator.runUntil(jobs[i].submit - 1);
          for (std::size_t k = 0; k < seg; ++k) simulator.submit(jobs[i + k]);
          i += seg;
        }
        simulator.drain();
      },
      violation);
}

DiffOutcome DiffHarness::diffStreamed(const FuzzCase& c,
                                      std::uint64_t seed) const {
  DiffOutcome out;
  for (const KernelMode mode :
       {KernelMode::Incremental, KernelMode::Rebuild}) {
    const char* lane =
        mode == KernelMode::Incremental ? "incremental" : "rebuild";
    std::string violation;
    const RunRecord batch = runOnce(c, mode, &violation);
    if (!violation.empty()) {
      out.violation = "[batch/" + std::string(lane) + "] " + violation;
      return out;
    }
    const RunRecord streamed = runStreamed(c, mode, seed, &violation);
    if (!violation.empty()) {
      out.violation = "[streamed/" + std::string(lane) + "] " + violation;
      return out;
    }
    out.divergence = diffRecords(streamed, batch, "streamed", "batch");
    if (!out.divergence.empty()) {
      out.divergence = "[" + std::string(lane) + "] " + out.divergence;
      return out;
    }
  }
  return out;
}

DiffOutcome DiffHarness::diff(const FuzzCase& c) const {
  DiffOutcome out;
  std::string violation;
  const RunRecord inc = runOnce(c, KernelMode::Incremental, &violation);
  if (!violation.empty()) {
    out.violation = "[incremental] " + violation;
    return out;
  }
  const RunRecord reb = runOnce(c, KernelMode::Rebuild, &violation);
  if (!violation.empty()) {
    out.violation = "[rebuild] " + violation;
    return out;
  }
  out.divergence = diffRecords(inc, reb);
  return out;
}

FuzzCase DiffHarness::shrink(const FuzzCase& c, std::size_t maxRuns) const {
  return shrinkWith(
      c, [this](const FuzzCase& candidate) { return !diff(candidate).ok(); },
      maxRuns);
}

FuzzCase DiffHarness::shrinkWith(
    const FuzzCase& c,
    const std::function<bool(const FuzzCase&)>& stillFails,
    std::size_t maxRuns) {
  FuzzCase best = c;
  std::size_t runs = 0;
  bool improved = true;
  // Delta-debugging lite: try dropping ever-smaller chunks; accept any
  // removal that keeps the case failing, restart from large chunks after
  // progress. Bounded by maxRuns oracle evaluations.
  while (improved && best.trace.jobs.size() > 1 && runs < maxRuns) {
    improved = false;
    for (std::size_t chunk = best.trace.jobs.size() / 2;
         chunk >= 1 && runs < maxRuns; chunk /= 2) {
      for (std::size_t start = 0;
           start + chunk <= best.trace.jobs.size() && runs < maxRuns;) {
        FuzzCase candidate = best;
        auto& js = candidate.trace.jobs;
        js.erase(js.begin() + static_cast<std::ptrdiff_t>(start),
                 js.begin() + static_cast<std::ptrdiff_t>(start + chunk));
        workload::normalizeTrace(candidate.trace);
        ++runs;
        if (stillFails(candidate)) {
          best = std::move(candidate);
          improved = true;
        } else {
          start += chunk;
        }
      }
    }
  }
  return best;
}

void writeRepro(std::ostream& os, const FuzzCase& c) {
  os << "sps-repro 1\n";
  os << "policy " << c.policyToken << "\n";
  os << "overhead " << (c.overhead ? 1 : 0) << "\n";
  os << "machine " << c.trace.machineProcs << "\n";
  if (c.fedShards > 0) {
    // Federated lane directives (absent on single-cluster repros, so every
    // pre-federation corpus file still parses unchanged).
    os << "shards " << c.fedShards << "\n";
    os << "router " << c.fedRouter << "\n";
    os << "delay " << c.fedDelay << "\n";
  }
  os << "# job <submit> <runtime> <estimate> <procs> <memoryMb>\n";
  for (const workload::Job& j : c.trace.jobs)
    os << "job " << j.submit << " " << j.runtime << " " << j.estimate << " "
       << j.procs << " " << j.memoryMb << "\n";
}

FuzzCase readRepro(std::istream& is) {
  FuzzCase c;
  c.trace.name = "repro";
  std::string line;
  bool sawHeader = false;
  bool sawPolicy = false;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (!sawHeader) {
      int version = 0;
      if (key != "sps-repro" || !(fields >> version) || version != 1)
        throw InputError("repro line " + std::to_string(lineNo) +
                         ": expected header 'sps-repro 1'");
      sawHeader = true;
      continue;
    }
    if (key == "policy") {
      if (!(fields >> c.policyToken))
        throw InputError("repro line " + std::to_string(lineNo) +
                         ": policy token missing");
      sawPolicy = true;
    } else if (key == "overhead") {
      int flag = 0;
      if (!(fields >> flag) || (flag != 0 && flag != 1))
        throw InputError("repro line " + std::to_string(lineNo) +
                         ": overhead must be 0 or 1");
      c.overhead = flag == 1;
    } else if (key == "machine") {
      if (!(fields >> c.trace.machineProcs) || c.trace.machineProcs == 0)
        throw InputError("repro line " + std::to_string(lineNo) +
                         ": bad machine size");
    } else if (key == "shards") {
      if (!(fields >> c.fedShards) || c.fedShards == 0)
        throw InputError("repro line " + std::to_string(lineNo) +
                         ": shards must be >= 1");
    } else if (key == "router") {
      if (!(fields >> c.fedRouter))
        throw InputError("repro line " + std::to_string(lineNo) +
                         ": router token missing");
    } else if (key == "delay") {
      if (!(fields >> c.fedDelay) || c.fedDelay < 0)
        throw InputError("repro line " + std::to_string(lineNo) +
                         ": delay must be non-negative");
    } else if (key == "job") {
      workload::Job j;
      if (!(fields >> j.submit >> j.runtime >> j.estimate >> j.procs >>
            j.memoryMb))
        throw InputError("repro line " + std::to_string(lineNo) +
                         ": bad job record");
      c.trace.jobs.push_back(j);
    } else {
      throw InputError("repro line " + std::to_string(lineNo) +
                       ": unknown directive '" + key + "'");
    }
  }
  if (!sawHeader) throw InputError("repro: missing 'sps-repro 1' header");
  if (!sawPolicy) throw InputError("repro: missing policy line");
  if (c.trace.jobs.empty()) throw InputError("repro: no jobs");
  (void)policyFromToken(c.policyToken);  // validate the token eagerly
  workload::normalizeTrace(c.trace);
  workload::validateTrace(c.trace);
  return c;
}

}  // namespace sps::check
