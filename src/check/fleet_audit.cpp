#include "check/fleet_audit.hpp"

#include <sstream>

#include "util/check.hpp"

namespace sps::check {

namespace {

[[noreturn]] void fleetViolation(const std::string& what) {
  throw InvariantError("fleet conservation: " + what);
}

}  // namespace

void auditFleetConservation(const workload::Trace& fleetTrace,
                            const std::vector<metrics::RunStats>& shardStats,
                            const std::vector<std::uint32_t>& assignments,
                            const std::vector<Time>& effectiveSubmits,
                            std::uint32_t shards, Time routingDelay) {
  const std::size_t n = fleetTrace.jobs.size();
  if (shards == 0) fleetViolation("no shards");
  if (shardStats.size() != shards)
    fleetViolation("shard result count does not match the shard count");
  if (assignments.size() != n || effectiveSubmits.size() != n)
    fleetViolation("routing record size does not match the fleet trace");

  std::vector<std::uint64_t> routedCount(shards, 0);
  // Work sums in exact integer arithmetic: runtime x procs never overflows
  // 64 bits at fleet scale, while double accumulation would silently lose
  // units past 2^53 proc-seconds (a 100k-processor, 10M-job fleet exceeds
  // that) and order-dependent rounding would fake violations.
  std::vector<std::uint64_t> routedWork(shards, 0);
  for (const workload::Job& job : fleetTrace.jobs) {
    const std::uint32_t target = assignments[job.id];
    if (target >= shards) {
      std::ostringstream os;
      os << "job " << job.id << " assigned to missing shard " << target;
      fleetViolation(os.str());
    }
    const auto home = static_cast<std::uint32_t>(job.id % shards);
    const Time expected =
        target == home ? job.submit : job.submit + routingDelay;
    if (effectiveSubmits[job.id] != expected) {
      std::ostringstream os;
      os << "job " << job.id << " effective submit "
         << effectiveSubmits[job.id] << " != " << expected
         << (target == home ? " (home shard, no delay)"
                            : " (forwarded: submit + delay)");
      fleetViolation(os.str());
    }
    ++routedCount[target];
    routedWork[target] +=
        static_cast<std::uint64_t>(job.runtime) * job.procs;
  }

  std::uint64_t fleetWork = 0;
  std::uint64_t fleetRouted = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const metrics::RunStats& stats = shardStats[s];
    if (stats.jobs.size() != routedCount[s]) {
      std::ostringstream os;
      os << "shard " << s << " finished " << stats.jobs.size()
         << " jobs but was routed " << routedCount[s];
      fleetViolation(os.str());
    }
    std::uint64_t shardWork = 0;
    for (const metrics::JobResult& job : stats.jobs) {
      if (job.finish == kNoTime) {
        std::ostringstream os;
        os << "shard " << s << " job " << job.id << " never finished";
        fleetViolation(os.str());
      }
      shardWork += static_cast<std::uint64_t>(job.runtime) * job.procs;
    }
    if (shardWork != routedWork[s]) {
      std::ostringstream os;
      os << "shard " << s << " completed " << shardWork
         << " proc-seconds of work but was routed " << routedWork[s];
      fleetViolation(os.str());
    }
    fleetWork += shardWork;
    fleetRouted += routedWork[s];
  }
  if (fleetWork != fleetRouted)
    fleetViolation("summed shard work does not equal the fleet trace's");
}

}  // namespace sps::check
