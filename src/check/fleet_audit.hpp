// Fleet conservation audit — the federation-level half of sps::check.
//
// The per-shard invariant oracle (InvariantChecker, armed inside every
// shard by fed::Federation) proves each cluster's schedule is internally
// sound; this audit proves the *routing* layer lost nothing in between:
// every fleet job landed on exactly one cluster, at exactly its recorded
// effective instant, with its work intact. Plain-argument signature on
// purpose — check/ stays below fed/ in the layer order, so the federation
// can call the audit without a dependency cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/collector.hpp"
#include "util/types.hpp"
#include "workload/job.hpp"

namespace sps::check {

/// Audit a completed federated run against its fleet trace and routing
/// record. Throws InvariantError on the first violation:
///
///   * routing record sizes match the trace; every assignment names a
///     real shard;
///   * effective submits obey the forwarding model — submit untouched on
///     the home shard (id % shards), submit + routingDelay elsewhere;
///   * per-shard job counts equal the assignment counts, and every shard
///     job completed (finish recorded);
///   * work is conserved: summed runtime x procs across shard results
///     equals the fleet trace's total, and per-shard submitted work
///     matches the jobs routed there.
void auditFleetConservation(const workload::Trace& fleetTrace,
                            const std::vector<metrics::RunStats>& shardStats,
                            const std::vector<std::uint32_t>& assignments,
                            const std::vector<Time>& effectiveSubmits,
                            std::uint32_t shards, Time routingDelay);

}  // namespace sps::check
