#include "check/invariants.hpp"

#include <utility>

#include "obs/counters.hpp"
#include "sched/conservative.hpp"
#include "sched/core/reservation_ledger.hpp"
#include "sched/depth_backfill.hpp"
#include "sched/easy.hpp"
#include "sched/selective_suspension.hpp"
#include "util/check.hpp"

namespace sps::check {

namespace {

using sim::JobState;

/// The simulator's lifecycle graph. Everything else is a corrupt stream.
bool legalEdge(JobState from, JobState to) {
  switch (from) {
    // Cancellation (streaming ingest) may withdraw a job at any point where
    // it holds no processors: before arrival, queued, or fully drained.
    case JobState::NotArrived:
      return to == JobState::Queued || to == JobState::Cancelled;
    case JobState::Queued:
      return to == JobState::Running || to == JobState::Cancelled;
    case JobState::Running:
      return to == JobState::Suspending || to == JobState::Suspended ||
             to == JobState::Finished;
    case JobState::Suspending: return to == JobState::Suspended;
    case JobState::Suspended:
      return to == JobState::Running || to == JobState::Cancelled;
    case JobState::Finished:
    case JobState::Cancelled:
      return false;
  }
  return false;
}

}  // namespace

// --- TransitionAudit -------------------------------------------------------

void TransitionAudit::onTransition(JobId id, JobState from, JobState to,
                                   Time now) {
  Tally& t = jobs_[id];
  SPS_CHECK_MSG(legalEdge(from, to),
                "illegal transition for job " << id << " at t=" << now << ": "
                                              << sim::jobStateName(from)
                                              << " -> "
                                              << sim::jobStateName(to));
  SPS_CHECK_MSG(t.last == from, "job " << id << " at t=" << now
                                       << " claims to leave "
                                       << sim::jobStateName(from)
                                       << " but was last seen in "
                                       << sim::jobStateName(t.last));
  t.last = to;
  if (to == JobState::Queued) ++t.arrivals;
  if (from == JobState::Queued && to == JobState::Running) {
    ++t.starts;
    ++starts_;
  }
  if (from == JobState::Suspended && to == JobState::Running) {
    ++t.resumes;
    ++resumes_;
  }
  if (from == JobState::Running &&
      (to == JobState::Suspending || to == JobState::Suspended)) {
    ++t.suspensions;
    ++suspensions_;
  }
  if (to == JobState::Finished) ++t.finishes;
  if (to == JobState::Cancelled) ++t.cancels;
}

void TransitionAudit::finalize(std::size_t expectedJobs) const {
  SPS_CHECK_MSG(jobs_.size() == expectedJobs,
                "conservation: " << jobs_.size() << " jobs observed, trace has "
                                 << expectedJobs);
  for (const auto& [id, t] : jobs_) {
    if (t.last == JobState::Cancelled) {
      // Withdrawn before completing: never finished, at most one arrival
      // and one start, and at most one unmatched suspension (a cancel from
      // Suspended leaves the final preemption unresumed).
      SPS_CHECK_MSG(t.cancels == 1, "conservation: cancelled job "
                                        << id << " cancelled " << t.cancels
                                        << " times");
      SPS_CHECK_MSG(t.finishes == 0, "conservation: cancelled job "
                                         << id << " also finished");
      SPS_CHECK_MSG(t.arrivals <= 1, "conservation: job " << id << " arrived "
                                                          << t.arrivals
                                                          << " times");
      SPS_CHECK_MSG(t.starts <= 1, "conservation: job " << id << " started "
                                                        << t.starts
                                                        << " times");
      SPS_CHECK_MSG(t.suspensions == t.resumes ||
                        t.suspensions == t.resumes + 1,
                    "conservation: cancelled job "
                        << id << " suspended " << t.suspensions
                        << " times but resumed " << t.resumes);
      continue;
    }
    SPS_CHECK_MSG(t.last == JobState::Finished,
                  "conservation: job " << id << " ended in "
                                       << sim::jobStateName(t.last));
    SPS_CHECK_MSG(t.arrivals == 1, "conservation: job " << id << " arrived "
                                                        << t.arrivals
                                                        << " times");
    SPS_CHECK_MSG(t.starts == 1, "conservation: job " << id << " started "
                                                      << t.starts << " times");
    SPS_CHECK_MSG(t.finishes == 1, "conservation: job "
                                       << id << " finished " << t.finishes
                                       << " times");
    SPS_CHECK_MSG(t.suspensions == t.resumes,
                  "conservation: job " << id << " suspended " << t.suspensions
                                       << " times but resumed " << t.resumes);
  }
}

const TransitionAudit::Tally& TransitionAudit::tally(JobId id) {
  return jobs_[id];
}

// --- CapacityAudit ---------------------------------------------------------

CapacityAudit::CapacityAudit(std::uint32_t totalProcs)
    : total_(totalProcs), all_(sim::ProcSet::firstN(totalProcs)) {}

void CapacityAudit::hold(JobId id, const sim::ProcSet& procs, Time now) {
  SPS_CHECK_MSG(!procs.empty(),
                "capacity: job " << id << " starts with no processors at t="
                                 << now);
  SPS_CHECK_MSG(procs.isSubsetOf(all_),
                "capacity: job " << id << " allocated outside the machine at t="
                                 << now);
  SPS_CHECK_MSG(byJob_.find(id) == byJob_.end(),
                "capacity: job " << id << " starts while already holding "
                                 << "processors at t=" << now);
  SPS_CHECK_MSG(!procs.intersects(held_),
                "capacity: oversubscription — job "
                    << id << " allocated processors already held at t=" << now);
  held_ |= procs;
  byJob_.emplace(id, procs);
}

void CapacityAudit::release(JobId id, Time now) {
  const auto it = byJob_.find(id);
  SPS_CHECK_MSG(it != byJob_.end(), "capacity: job "
                                        << id
                                        << " releases processors it never "
                                        << "held at t=" << now);
  held_ -= it->second;
  byJob_.erase(it);
}

void CapacityAudit::verify(const sim::ProcSet& freeSet, Time now) const {
  SPS_CHECK_MSG(!held_.intersects(freeSet),
                "capacity: processors both held and free at t=" << now);
  SPS_CHECK_MSG((held_ | freeSet) == all_,
                "capacity: held+free sets do not cover the machine at t="
                    << now << " (held " << held_.count() << " free "
                    << freeSet.count() << " of " << total_ << ")");
}

// --- GuaranteeAudit --------------------------------------------------------

void GuaranteeAudit::observe(JobId id, Time guarantee, Time now) {
  const auto it = last_.find(id);
  if (it == last_.end()) {
    if (guarantee != kNoTime) last_.emplace(id, guarantee);
    return;
  }
  SPS_CHECK_MSG(guarantee != kNoTime,
                "guarantee: queued job " << id
                                         << " lost its start-time guarantee ("
                                         << it->second << ") at t=" << now);
  SPS_CHECK_MSG(guarantee <= it->second,
                "guarantee: job " << id << " regressed from " << it->second
                                  << " to " << guarantee << " at t=" << now);
  it->second = guarantee;
}

void GuaranteeAudit::forget(JobId id) { last_.erase(id); }

// --- TSS bound -------------------------------------------------------------

void checkTssBound(JobId id, double priority, double limit, Time now) {
  SPS_CHECK_MSG(priority < limit,
                "tssBound: job " << id << " suspended at t=" << now
                                 << " with priority " << priority
                                 << " >= protection limit " << limit);
}

// --- InvariantChecker ------------------------------------------------------

void InvariantChecker::arm(sim::Simulator& simulator,
                           const sim::SchedulingPolicy& policy) {
  SPS_CHECK_MSG(!armed_, "InvariantChecker::arm called twice");
  armed_ = true;

  // Probe discovery by policy type. The reservation-based policies expose
  // their kernel ledger and guarantee oracle; SS exposes its protection
  // limit. Policies outside these families still get the policy-agnostic
  // checkers (capacity / conservation).
  if (const auto* c = dynamic_cast<const sched::ConservativeBackfill*>(
          &policy)) {
    ledger_ = &c->ledger();
    if (!guaranteeProbe_)
      guaranteeProbe_ = [c](JobId id) { return c->guaranteeOf(id); };
  } else if (const auto* d =
                 dynamic_cast<const sched::DepthBackfill*>(&policy)) {
    ledger_ = &d->ledger();
    if (!guaranteeProbe_)
      guaranteeProbe_ = [d](JobId id) { return d->guaranteeOf(id); };
  } else if (const auto* e = dynamic_cast<const sched::EasyBackfill*>(
                 &policy)) {
    ledger_ = &e->ledger();
  } else if (const auto* ss = dynamic_cast<const sched::SelectiveSuspension*>(
                 &policy)) {
    if (!tssProbe_)
      tssProbe_ = [ss](const sim::Simulator& s, JobId id) {
        return ss->victimProtectionLimit(s, id);
      };
  }

  if (config_.capacity)
    capacity_.emplace(simulator.machine().totalProcs());

  if (config_.capacity || config_.conservation || config_.tssBound ||
      config_.guarantees) {
    simulator.observers().onStateChange(
        [this](const sim::Simulator& s, JobId id, sim::JobState from,
               sim::JobState to) { onStateChange(s, id, from, to); });
  }
  if (config_.guarantees || config_.ledger) {
    simulator.observers().onEventDispatched(
        [this](const sim::Simulator& s, const sim::Event&) { onEvent(s); });
  }
}

void InvariantChecker::onStateChange(const sim::Simulator& s, JobId id,
                                     sim::JobState from, sim::JobState to) {
  const Time now = s.now();
  s.counters().inc(obs::Counter::CheckTransitionAudits);
  if (config_.conservation) transitions_.onTransition(id, from, to, now);
  if (config_.guarantees &&
      (to == JobState::Running || to == JobState::Cancelled))
    guarantees_.forget(id);
  if (config_.tssBound && tssProbe_ && from == JobState::Running &&
      (to == JobState::Suspending || to == JobState::Suspended)) {
    if (const std::optional<double> limit = tssProbe_(s, id))
      checkTssBound(id, s.xfactor(id), *limit, now);
  }
  if (capacity_) {
    if (to == JobState::Running) {
      capacity_->hold(id, s.exec(id).procs, now);
    } else if ((from == JobState::Running &&
                (to == JobState::Suspended || to == JobState::Finished)) ||
               (from == JobState::Suspending && to == JobState::Suspended)) {
      capacity_->release(id, now);
    }
    // Running -> Suspending keeps the processors for the write-out drain.
    capacity_->verify(s.freeSet(), now);
  }
}

void InvariantChecker::onEvent(const sim::Simulator& s) {
  ++dispatches_;
  const std::uint32_t stride = config_.auditStride == 0 ? 1
                                                        : config_.auditStride;
  if (dispatches_ % stride != 0) return;
  ++epochAudits_;
  s.counters().inc(obs::Counter::CheckEpochAudits);
  if (config_.guarantees && guaranteeProbe_) {
    for (const JobId id : s.queuedJobs())
      guarantees_.observe(id, guaranteeProbe_(id), s.now());
  }
  if (config_.ledger && ledger_ != nullptr) ledger_->audit(s);
}

void InvariantChecker::finalize(const sim::Simulator& simulator) {
  SPS_CHECK_MSG(armed_, "InvariantChecker::finalize before arm");
  if (config_.conservation) {
    const std::size_t jobs = simulator.trace().jobs.size();
    transitions_.finalize(jobs);
    // Per-job balance against the simulator's own execution records, and
    // totals against the always-on obs counters (the "suspension counters
    // from sps::obs balance" half of the conservation property).
    for (JobId id = 0; id < jobs; ++id) {
      const sim::JobExec& x = simulator.exec(id);
      const TransitionAudit::Tally& t = transitions_.tally(id);
      SPS_CHECK_MSG(simulator.state(id) == JobState::Finished ||
                        simulator.state(id) == JobState::Cancelled,
                    "conservation: exec state of job "
                        << id << " is " << sim::jobStateName(simulator.state(id))
                        << " after the run");
      SPS_CHECK_MSG(x.suspendCount == t.suspensions,
                    "conservation: job " << id << " exec.suspendCount "
                                         << x.suspendCount << " != observed "
                                         << t.suspensions);
    }
    const obs::Counters& c = simulator.counters();
    SPS_CHECK_MSG(c.value(obs::Counter::SimStarts) == transitions_.totalStarts(),
                  "conservation: sim.starts counter "
                      << c.value(obs::Counter::SimStarts) << " != observed "
                      << transitions_.totalStarts());
    SPS_CHECK_MSG(
        c.value(obs::Counter::SimResumes) == transitions_.totalResumes(),
        "conservation: sim.resumes counter "
            << c.value(obs::Counter::SimResumes) << " != observed "
            << transitions_.totalResumes());
    SPS_CHECK_MSG(
        c.value(obs::Counter::SimSuspensions) ==
            transitions_.totalSuspensions(),
        "conservation: sim.suspensions counter "
            << c.value(obs::Counter::SimSuspensions) << " != observed "
            << transitions_.totalSuspensions());
    SPS_CHECK_MSG(simulator.totalSuspensions() ==
                      transitions_.totalSuspensions(),
                  "conservation: totalSuspensions() "
                      << simulator.totalSuspensions() << " != observed "
                      << transitions_.totalSuspensions());
    std::uint64_t byCategory = 0;
    for (const std::uint64_t v : c.suspensionsByCategory()) byCategory += v;
    SPS_CHECK_MSG(byCategory == transitions_.totalSuspensions(),
                  "conservation: per-category suspension counters sum to "
                      << byCategory << ", observed "
                      << transitions_.totalSuspensions());
  }
  if (capacity_) {
    SPS_CHECK_MSG(capacity_->heldCount() == 0,
                  "capacity: " << capacity_->heldCount()
                               << " processors still held after the run");
    capacity_->verify(simulator.freeSet(), simulator.now());
  }
  if (config_.ledger && ledger_ != nullptr) ledger_->audit(simulator);
}

}  // namespace sps::check
