// Unit tests: metrics — bounded slowdown (Eq. 1), estimate split, category
// aggregation, distributions, TSS limit calibration, report rendering.
#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "metrics/category_stats.hpp"
#include "metrics/collector.hpp"
#include "metrics/report.hpp"
#include "sched/easy.hpp"
#include "sim/simulator.hpp"

namespace sps::metrics {
namespace {

using test::J;
using test::makeTrace;

JobResult result(Time submit, Time runtime, std::uint32_t procs, Time finish,
                 Time estimate = 0) {
  JobResult r;
  r.submit = submit;
  r.runtime = runtime;
  r.estimate = estimate == 0 ? runtime : estimate;
  r.procs = procs;
  r.finish = finish;
  r.firstStart = finish - runtime;
  return r;
}

// --- Eq. 1 -------------------------------------------------------------------

TEST(BoundedSlowdown, NoWaitIsOne) {
  EXPECT_DOUBLE_EQ(boundedSlowdown(result(0, 100, 1, 100)), 1.0);
}

TEST(BoundedSlowdown, WaitScales) {
  // 100 s job, waited 300 s: (300 + 100)/100 = 4.
  EXPECT_DOUBLE_EQ(boundedSlowdown(result(0, 100, 1, 400)), 4.0);
}

TEST(BoundedSlowdown, TenSecondThresholdLimitsShortJobs) {
  // 1 s job waited 99 s: raw slowdown 100, bounded (99+1)/10 = 10.
  EXPECT_DOUBLE_EQ(boundedSlowdown(result(0, 1, 1, 100)), 10.0);
}

TEST(BoundedSlowdown, NeverBelowOne) {
  // 5 s job with no wait: (0+5)/10 = 0.5 -> clamped to 1.
  EXPECT_DOUBLE_EQ(boundedSlowdown(result(0, 5, 1, 5)), 1.0);
}

TEST(BoundedSlowdown, ExactlyTenSecondJob) {
  EXPECT_DOUBLE_EQ(boundedSlowdown(result(0, 10, 1, 20)), 2.0);
}

TEST(RawSlowdown, Ratio) {
  EXPECT_DOUBLE_EQ(rawSlowdown(result(0, 100, 1, 400)), 4.0);
}

TEST(JobResult, DerivedQuantities) {
  const JobResult r = result(50, 100, 4, 400);
  EXPECT_EQ(r.turnaround(), 350);
  EXPECT_EQ(r.waitTime(), 250);
}

// --- estimate split (Section V) ---------------------------------------------

TEST(EstimateSplit, BoundaryIsTwice) {
  EXPECT_TRUE(isWellEstimated(result(0, 100, 1, 100, 200)));   // exactly 2x
  EXPECT_FALSE(isWellEstimated(result(0, 100, 1, 100, 201)));  // just over
  EXPECT_TRUE(isWellEstimated(result(0, 100, 1, 100, 100)));   // exact
}

TEST(EstimateSplit, FilterPartitions) {
  std::vector<JobResult> jobs = {result(0, 100, 1, 100, 100),
                                 result(0, 100, 1, 100, 500)};
  EXPECT_EQ(overallAggregate(jobs, EstimateFilter::All).count(), 2u);
  EXPECT_EQ(overallAggregate(jobs, EstimateFilter::WellEstimated).count(), 1u);
  EXPECT_EQ(overallAggregate(jobs, EstimateFilter::BadlyEstimated).count(),
            1u);
}

// --- category aggregation ----------------------------------------------------

TEST(CategoryStats, PlacesJobsByActualRuntimeAndWidth) {
  std::vector<JobResult> jobs = {
      result(0, 300, 1, 300),     // VS Seq
      result(0, 300, 40, 600),    // VS VW
      result(0, 40000, 16, 80000)  // VL W
  };
  const auto stats = categorize16(jobs);
  EXPECT_EQ(stats[workload::category16(300, 1)].count(), 1u);
  EXPECT_EQ(stats[workload::category16(300, 40)].count(), 1u);
  EXPECT_EQ(stats[workload::category16(40000, 16)].count(), 1u);
  std::size_t total = 0;
  for (const auto& agg : stats) total += agg.count();
  EXPECT_EQ(total, 3u);
}

TEST(CategoryStats, AverageAndWorst) {
  std::vector<JobResult> jobs = {result(0, 100, 1, 100),
                                 result(0, 100, 1, 400),
                                 result(0, 100, 1, 700)};
  const auto agg = overallAggregate(jobs);
  EXPECT_DOUBLE_EQ(agg.avgSlowdown(), (1.0 + 4.0 + 7.0) / 3.0);
  EXPECT_DOUBLE_EQ(agg.worstSlowdown(), 7.0);
  EXPECT_DOUBLE_EQ(agg.avgTurnaround(), 400.0);
  EXPECT_DOUBLE_EQ(agg.worstTurnaround(), 700.0);
}

TEST(CategoryStats, PercentilesFromSamples) {
  std::vector<JobResult> jobs;
  for (int i = 1; i <= 100; ++i)
    jobs.push_back(result(0, 100, 1, 100 + 100 * i));  // slowdowns 2..101
  const auto agg = overallAggregate(jobs);
  EXPECT_NEAR(agg.slowdownPercentile(95), 96.05, 0.01);  // rank 94.05 interp
  EXPECT_DOUBLE_EQ(agg.slowdownPercentile(100), agg.worstSlowdown());
  EXPECT_GT(agg.turnaroundPercentile(95), agg.avgTurnaround());
}

TEST(CategoryStats, PercentileOfEmptyCellIsZero) {
  const CategoryAggregate agg;
  EXPECT_DOUBLE_EQ(agg.slowdownPercentile(95), 0.0);
  EXPECT_DOUBLE_EQ(agg.turnaroundPercentile(50), 0.0);
}

TEST(CategoryStats, EmptyCellReadsZero) {
  const CategoryAggregate agg;
  EXPECT_TRUE(agg.empty());
  EXPECT_DOUBLE_EQ(agg.avgSlowdown(), 0.0);
  EXPECT_DOUBLE_EQ(agg.worstTurnaround(), 0.0);
}

TEST(CategoryStats, FourWayAggregation) {
  std::vector<JobResult> jobs = {
      result(0, 100, 1, 100),      // SN
      result(0, 100, 9, 100),      // SW
      result(0, 7200, 2, 7200),    // LN
      result(0, 7200, 100, 7200),  // LW
      result(0, 100, 2, 200)};     // SN again
  const auto stats = categorize4(jobs);
  EXPECT_EQ(stats[0].count(), 2u);
  EXPECT_EQ(stats[1].count(), 1u);
  EXPECT_EQ(stats[2].count(), 1u);
  EXPECT_EQ(stats[3].count(), 1u);
}

TEST(Distribution, SumsToHundred) {
  const auto trace = makeTrace(430, {{0, 100, 1}, {0, 100, 10}, {0, 5000, 40},
                                     {0, 100, 2}});
  const auto d16 = distribution16(trace.jobs);
  double total = 0;
  for (double v : d16) total += v;
  EXPECT_NEAR(total, 100.0, 1e-9);
  const auto d4 = distribution4(trace.jobs);
  total = 0;
  for (double v : d4) total += v;
  EXPECT_NEAR(total, 100.0, 1e-9);
}

// --- TSS limits ---------------------------------------------------------------

TEST(TssLimits, OneAndAHalfTimesCategoryAverage) {
  std::vector<JobResult> jobs = {result(0, 100, 1, 100),
                                 result(0, 100, 1, 500)};  // slowdowns 1, 5
  const auto limits = tssLimits(jobs);
  const std::size_t cat = workload::category16(100, 1);
  EXPECT_DOUBLE_EQ(limits[cat], 1.5 * 3.0);
}

TEST(TssLimits, ClassifiesByEstimate) {
  // Runtime 100 (VS) but estimate 40000 (VL): the limit must land in the
  // estimate's category — the only signal a live scheduler has.
  std::vector<JobResult> jobs = {result(0, 100, 1, 300, 40000)};
  const auto limits = tssLimits(jobs);
  EXPECT_TRUE(std::isinf(limits[workload::category16(100, 1)]));
  EXPECT_FALSE(std::isinf(limits[workload::category16(40000, 1)]));
}

TEST(TssLimits, EmptyCategoriesUnlimited) {
  const auto limits = tssLimits({});
  for (double v : limits) EXPECT_TRUE(std::isinf(v));
}

TEST(TssLimits, CustomMultiplier) {
  std::vector<JobResult> jobs = {result(0, 100, 1, 300)};  // slowdown 3
  const auto limits = tssLimits(jobs, 2.0);
  EXPECT_DOUBLE_EQ(limits[workload::category16(100, 1)], 6.0);
}

// --- collector ----------------------------------------------------------------

TEST(Collector, HarvestsRunResults) {
  const auto trace = makeTrace(8, {{0, 100, 4}, {0, 200, 4}});
  sched::EasyBackfill policy;
  sim::Simulator s(trace, policy);
  s.run();
  const RunStats stats = collect(s, "EASY");
  EXPECT_EQ(stats.policyName, "EASY");
  EXPECT_EQ(stats.traceName, "test");
  ASSERT_EQ(stats.jobs.size(), 2u);
  EXPECT_EQ(stats.jobs[0].finish, 100);
  EXPECT_EQ(stats.jobs[1].finish, 200);
  EXPECT_EQ(stats.span, 200);
  // Work = 100*4 + 200*4 = 1200 proc-s over 8 procs x 200 s.
  EXPECT_NEAR(stats.utilization, 1200.0 / 1600.0, 1e-12);
  EXPECT_NEAR(stats.usefulUtilization, 1200.0 / 1600.0, 1e-12);
  EXPECT_EQ(stats.suspensions, 0u);
  EXPECT_GT(stats.eventsProcessed, 0u);
  EXPECT_DOUBLE_EQ(stats.meanBoundedSlowdown(), 1.0);
  EXPECT_DOUBLE_EQ(stats.meanTurnaround(), 150.0);
}

// --- report rendering ----------------------------------------------------------

TEST(Report, MetricNamesAndValues) {
  CategoryAggregate agg;
  agg.add(result(0, 100, 1, 400));
  EXPECT_DOUBLE_EQ(metricValue(agg, Metric::AvgSlowdown), 4.0);
  EXPECT_DOUBLE_EQ(metricValue(agg, Metric::WorstSlowdown), 4.0);
  EXPECT_DOUBLE_EQ(metricValue(agg, Metric::AvgTurnaround), 400.0);
  EXPECT_DOUBLE_EQ(metricValue(agg, Metric::WorstTurnaround), 400.0);
  EXPECT_DOUBLE_EQ(metricValue(agg, Metric::P95Slowdown), 4.0);
  EXPECT_DOUBLE_EQ(metricValue(agg, Metric::P95Turnaround), 400.0);
  EXPECT_STREQ(metricName(Metric::AvgSlowdown), "avg slowdown");
  EXPECT_STREQ(metricName(Metric::P95Slowdown), "p95 slowdown");
}

TEST(Report, CategoryGridShape) {
  std::vector<JobResult> jobs = {result(0, 100, 1, 400)};
  const Table t = categoryGrid16(categorize16(jobs), Metric::AvgSlowdown);
  EXPECT_EQ(t.columnCount(), 5u);  // label + 4 width classes
  EXPECT_EQ(t.rowCount(), 4u);
  const std::string ascii = t.toAscii();
  EXPECT_NE(ascii.find("4.00"), std::string::npos);
  EXPECT_NE(ascii.find("-"), std::string::npos);  // empty cells dashed
}

TEST(Report, SchemeComparisonColumnsPerRun) {
  std::vector<JobResult> a = {result(0, 100, 1, 400)};
  std::vector<JobResult> b = {result(0, 100, 1, 800)};
  const Table t = schemeComparison(
      {{"one", categorize16(a)}, {"two", categorize16(b)}},
      workload::RunClass::VeryShort, Metric::AvgSlowdown);
  EXPECT_EQ(t.columnCount(), 3u);
  const std::string ascii = t.toAscii();
  EXPECT_NE(ascii.find("4.00"), std::string::npos);
  EXPECT_NE(ascii.find("8.00"), std::string::npos);
}

TEST(Report, SummaryLineMentionsKeyNumbers) {
  const auto trace = makeTrace(8, {{0, 100, 4}});
  sched::EasyBackfill policy;
  sim::Simulator s(trace, policy);
  s.run();
  const std::string line = summaryLine(collect(s, "EASY"));
  EXPECT_NE(line.find("EASY"), std::string::npos);
  EXPECT_NE(line.find("utilization"), std::string::npos);
}

}  // namespace
}  // namespace sps::metrics
