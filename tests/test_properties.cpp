// Property-based tests: randomized small workloads x every scheduler, with
// invariants audited throughout — conservation, no oversubscription, wait
// accounting, determinism, and the SF law on randomized task pairs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.hpp"
#include "helpers.hpp"
#include "metrics/collector.hpp"
#include "sched/overhead.hpp"
#include "sched/selective_suspension.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace sps {
namespace {

using core::PolicyKind;
using core::PolicySpec;
using test::J;
using test::makeTrace;

workload::Trace randomTrace(std::uint64_t seed, std::size_t n = 60,
                            std::uint32_t machine = 16) {
  Rng rng(seed);
  std::vector<J> jobs;
  Time t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.uniformInt(0, 400);
    const Time runtime = rng.uniformInt(1, 2000);
    const auto procs =
        static_cast<std::uint32_t>(rng.uniformInt(1, machine));
    const Time estimate =
        runtime * rng.uniformInt(1, 4);  // mildly inaccurate
    const auto mem = static_cast<std::uint32_t>(rng.uniformInt(1, 64));
    jobs.push_back({t, runtime, procs, estimate, mem});
  }
  return makeTrace(machine, jobs);
}

struct PropertyCase {
  PolicyKind kind;
  std::uint64_t seed;
  bool overhead;
};

std::string caseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string name = core::policyKindName(info.param.kind);
  name += "_seed" + std::to_string(info.param.seed);
  name += info.param.overhead ? "_oh" : "_free";
  return name;
}

class SchedulerProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SchedulerProperty, InvariantsHoldOverRandomWorkload) {
  const auto& param = GetParam();
  const workload::Trace trace = randomTrace(param.seed);
  PolicySpec spec;
  spec.kind = param.kind;
  auto policy = core::makePolicy(spec);

  sched::DiskSwapOverhead overhead(trace, 16.0);  // fast disk: small drains
  sim::Simulator::Config config;
  if (param.overhead) config.overhead = &overhead;

  sim::Simulator s(trace, *policy, config);
  s.run();
  s.auditState();

  double work = 0.0;
  for (const workload::Job& j : trace.jobs) {
    const auto& x = s.exec(j.id);
    // Every job finishes, after doing all its work.
    EXPECT_EQ(s.state(j.id), sim::JobState::Finished);
    EXPECT_EQ(x.remainingWork, 0);
    EXPECT_GE(x.firstStart, j.submit);
    EXPECT_GE(x.finish, x.firstStart + j.runtime);
    // Wait accounting: turnaround = runtime + wait + elapsed read-back
    // (drain write-outs overlap with waiting and are inside `wait`).
    EXPECT_EQ(s.accumulatedWait(j.id) + j.runtime + x.resumeOverheadElapsed,
              x.finish - j.submit);
    // Non-preemptive policies must not suspend.
    if (param.kind == PolicyKind::Fcfs ||
        param.kind == PolicyKind::Conservative ||
        param.kind == PolicyKind::Easy) {
      EXPECT_EQ(x.suspendCount, 0u);
    }
    work += static_cast<double>(j.runtime) * j.procs +
            static_cast<double>(x.overheadTotal()) * j.procs;
  }
  // Machine busy integral == work + overhead proc-seconds.
  EXPECT_NEAR(s.busyProcSeconds(), work, 1e-6);
}

TEST_P(SchedulerProperty, BitIdenticalReplay) {
  const auto& param = GetParam();
  const workload::Trace trace = randomTrace(param.seed ^ 0xabcdef);
  PolicySpec spec;
  spec.kind = param.kind;
  sched::DiskSwapOverhead overhead(trace, 16.0);
  core::SimulationOptions options;
  if (param.overhead) options.sim.overhead = &overhead;
  const auto a = core::runSimulation(trace, spec, options);
  const auto b = core::runSimulation(trace, spec, options);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].firstStart, b.jobs[i].firstStart);
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_EQ(a.jobs[i].suspendCount, b.jobs[i].suspendCount);
  }
  EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerProperty,
    ::testing::Values(
        PropertyCase{PolicyKind::Fcfs, 1, false},
        PropertyCase{PolicyKind::Fcfs, 2, false},
        PropertyCase{PolicyKind::Conservative, 1, false},
        PropertyCase{PolicyKind::Conservative, 2, false},
        PropertyCase{PolicyKind::Conservative, 3, false},
        PropertyCase{PolicyKind::Easy, 1, false},
        PropertyCase{PolicyKind::Easy, 2, false},
        PropertyCase{PolicyKind::Easy, 3, false},
        PropertyCase{PolicyKind::SelectiveSuspension, 1, false},
        PropertyCase{PolicyKind::SelectiveSuspension, 2, false},
        PropertyCase{PolicyKind::SelectiveSuspension, 3, false},
        PropertyCase{PolicyKind::SelectiveSuspension, 1, true},
        PropertyCase{PolicyKind::SelectiveSuspension, 2, true},
        PropertyCase{PolicyKind::ImmediateService, 1, false},
        PropertyCase{PolicyKind::ImmediateService, 2, false},
        PropertyCase{PolicyKind::ImmediateService, 1, true},
        PropertyCase{PolicyKind::ImmediateService, 2, true},
        PropertyCase{PolicyKind::DepthBackfill, 1, false},
        PropertyCase{PolicyKind::DepthBackfill, 2, false},
        PropertyCase{PolicyKind::Gang, 1, false},
        PropertyCase{PolicyKind::Gang, 2, false},
        PropertyCase{PolicyKind::Gang, 1, true},
        PropertyCase{PolicyKind::Gang, 2, true}),
    caseName);

// --- SF law on randomized equal task pairs -----------------------------------

class TwoTaskSfLaw : public ::testing::TestWithParam<int> {};

TEST_P(TwoTaskSfLaw, SuspensionCountMatchesTheory) {
  // n suspensions occur for s in [2^(1/(n+1)), 2^(1/n)); verify n for a
  // randomized task length and several SF values per seed.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Time length = 3600 * rng.uniformInt(1, 6);
  for (const int n : {0, 1, 2, 3}) {
    // Pick s in the middle of the band for n suspensions.
    const double lo = std::pow(2.0, 1.0 / (n + 1));
    const double hi = n == 0 ? 2.5 : std::pow(2.0, 1.0 / n);
    const double s = 0.5 * (lo + hi);
    sched::SsConfig cfg;
    cfg.suspensionFactor = s;
    sched::SelectiveSuspension policy(cfg);
    const auto trace = makeTrace(8, {{0, length, 8}, {0, length, 8}});
    sim::Simulator simulator(trace, policy);
    simulator.run();
    // The 60 s preemption granularity can delay a boundary crossing by one
    // tick, so allow the count to undershoot by at most one when the tick
    // lands after the other task completed.
    EXPECT_LE(simulator.totalSuspensions(), static_cast<std::uint64_t>(n));
    EXPECT_GE(simulator.totalSuspensions() + 1,
              static_cast<std::uint64_t>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoTaskSfLaw, ::testing::Range(1, 9));

// --- SS-specific randomized properties ---------------------------------------

class SsRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SsRandom, NoJobStarves) {
  const workload::Trace trace = randomTrace(GetParam(), 80);
  PolicySpec spec;
  spec.kind = PolicyKind::SelectiveSuspension;
  spec.ss.suspensionFactor = 1.5;
  const auto stats = core::runSimulation(trace, spec);
  for (const auto& j : stats.jobs) EXPECT_GE(j.finish, j.submit + j.runtime);
}

TEST_P(SsRandom, TssNeverSuspendsProtectedVictims) {
  // With limits at 1.0 every running job is protected the moment it starts
  // (xfactor >= 1 always): TSS must degrade to zero suspensions.
  const workload::Trace trace = randomTrace(GetParam() * 31, 60);
  PolicySpec spec;
  spec.kind = PolicyKind::SelectiveSuspension;
  spec.ss.tssLimits.emplace();
  spec.ss.tssLimits->fill(1.0);
  const auto stats = core::runSimulation(trace, spec);
  EXPECT_EQ(stats.suspensions, 0u);
}

TEST_P(SsRandom, HalfWidthRuleNeverViolated) {
  // Direct observation is internal, so construct a workload where any
  // suspension of the single wide job would prove a violation: every other
  // job is sequential (1 proc), and 2 x 1 < 8, so with the rule ON nothing
  // may ever evict the wide job once it runs.
  Rng rng(GetParam() * 77);
  std::vector<J> jobs;
  Time t = 0;
  for (int i = 0; i < 50; ++i) {
    t += rng.uniformInt(0, 300);
    if (i == 20) jobs.push_back({t, 4000, 8});
    else jobs.push_back({t, rng.uniformInt(10, 400), 1});
  }
  const auto trace = makeTrace(8, jobs);
  PolicySpec spec;
  spec.kind = PolicyKind::SelectiveSuspension;
  const auto stats = core::runSimulation(trace, spec);
  for (const auto& j : stats.jobs)
    if (j.procs == 8) {
      EXPECT_EQ(j.suspendCount, 0u) << "wide job " << j.id << " suspended";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsRandom,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace sps
