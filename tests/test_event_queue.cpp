// Unit tests: sim::EventQueue ordering semantics.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sps::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), InvariantError);
  EXPECT_THROW((void)q.nextTime(), InvariantError);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(30, EventType::Timer, 3);
  q.push(10, EventType::Timer, 1);
  q.push(20, EventType::Timer, 2);
  EXPECT_EQ(q.nextTime(), 10);
  EXPECT_EQ(q.pop().payload, 1u);
  EXPECT_EQ(q.pop().payload, 2u);
  EXPECT_EQ(q.pop().payload, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 50; ++i) q.push(42, EventType::Timer, i);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Event e = q.pop();
    EXPECT_EQ(e.time, 42);
    EXPECT_EQ(e.payload, i);
  }
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push(5, EventType::JobArrival, 0);
  q.push(1, EventType::JobArrival, 1);
  EXPECT_EQ(q.pop().payload, 1u);
  q.push(2, EventType::JobCompletion, 2);
  q.push(4, EventType::SuspendDrained, 3);
  EXPECT_EQ(q.pop().payload, 2u);
  EXPECT_EQ(q.pop().payload, 3u);
  EXPECT_EQ(q.pop().payload, 0u);
}

TEST(EventQueue, CarriesTypeAndGeneration) {
  EventQueue q;
  q.push(7, EventType::JobCompletion, 99, 5);
  const Event e = q.pop();
  EXPECT_EQ(e.type, EventType::JobCompletion);
  EXPECT_EQ(e.payload, 99u);
  EXPECT_EQ(e.generation, 5u);
  EXPECT_EQ(e.time, 7);
}

TEST(EventQueue, RandomizedOrderIsNonDecreasing) {
  EventQueue q;
  Rng rng(99);
  for (int i = 0; i < 1000; ++i)
    q.push(rng.uniformInt(0, 500), EventType::Timer,
           static_cast<std::uint64_t>(i));
  Time prev = -1;
  std::uint64_t prevSeq = 0;
  bool first = true;
  while (!q.empty()) {
    const Event e = q.pop();
    EXPECT_GE(e.time, prev);
    if (!first && e.time == prev) {
      EXPECT_GT(e.seq, prevSeq);
    }
    prev = e.time;
    prevSeq = e.seq;
    first = false;
  }
}

// ---------------------------------------------------------------------------
// Property suite: the calendar queue and the binary heap implement the SAME
// total order (time, then insertion sequence). Every test below drives both
// kinds through an identical operation sequence and requires identical pop
// streams — the contract that lets simulations replay bit-identically
// regardless of QueueKind.

/// Drive both queue kinds through one scripted load and compare every pop.
class QueuePair {
 public:
  QueuePair() : cal_(QueueKind::Calendar), heap_(QueueKind::BinaryHeap) {}

  void push(Time t, EventType type, std::uint64_t payload,
            std::uint64_t gen = 0) {
    cal_.push(t, type, payload, gen);
    heap_.push(t, type, payload, gen);
  }

  /// Pop one event from each and assert full equality (including seq, which
  /// both façades assign identically from the push order).
  Event popBoth() {
    EXPECT_EQ(cal_.empty(), heap_.empty());
    const Event c = cal_.pop();
    const Event h = heap_.pop();
    EXPECT_EQ(c.time, h.time);
    EXPECT_EQ(c.seq, h.seq);
    EXPECT_EQ(c.type, h.type);
    EXPECT_EQ(c.payload, h.payload);
    EXPECT_EQ(c.generation, h.generation);
    EXPECT_EQ(cal_.nextTimeOrSentinel(), heap_.nextTimeOrSentinel());
    return c;
  }

  void drainBoth() {
    while (!cal_.empty() || !heap_.empty()) popBoth();
    EXPECT_TRUE(cal_.empty());
    EXPECT_TRUE(heap_.empty());
  }

  [[nodiscard]] bool empty() const { return cal_.empty() && heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return cal_.size(); }

 private:
  // nextTime() requires non-empty; fold the empty case into a sentinel so
  // popBoth can compare the successor state unconditionally.
  struct Facade : EventQueue {
    using EventQueue::EventQueue;
    [[nodiscard]] Time nextTimeOrSentinel() const {
      return empty() ? Time{-1} : nextTime();
    }
  };
  Facade cal_;
  Facade heap_;
};

TEST(EventQueueProperty, KindsAreExplicit) {
  EventQueue cal(QueueKind::Calendar);
  EventQueue heap(QueueKind::BinaryHeap);
  EXPECT_EQ(cal.kind(), QueueKind::Calendar);
  EXPECT_EQ(heap.kind(), QueueKind::BinaryHeap);
  EXPECT_EQ(EventQueue{}.kind(), QueueKind::Calendar);
}

TEST(EventQueueProperty, RandomLoadPopsIdentically) {
  for (const std::uint64_t seed : {1u, 7u, 1234u, 987654u}) {
    QueuePair q;
    Rng rng(seed);
    for (int i = 0; i < 5000; ++i)
      q.push(rng.uniformInt(0, 200000), EventType::Timer,
             static_cast<std::uint64_t>(i));
    Time prev = -1;
    std::uint64_t prevSeq = 0;
    while (!q.empty()) {
      const Event e = q.popBoth();
      // Non-decreasing time; strictly increasing seq within a timestamp.
      EXPECT_GE(e.time, prev);
      if (e.time == prev) EXPECT_GT(e.seq, prevSeq);
      prev = e.time;
      prevSeq = e.seq;
    }
  }
}

TEST(EventQueueProperty, InterleavedPushPopIdentical) {
  // The simulator's actual shape: pop the earliest event, then push a
  // handful of follow-ups at or after "now" (same-instant cascades
  // included). Time never runs backwards relative to the last pop.
  QueuePair q;
  Rng rng(4242);
  q.push(0, EventType::Timer, 0);
  Time now = 0;
  std::uint64_t payload = 1;
  for (int step = 0; step < 4000 && !q.empty(); ++step) {
    const Event e = q.popBoth();
    now = e.time;
    const int follow = rng.uniformInt(0, 3);
    for (int f = 0; f < follow; ++f) {
      const Time at = now + rng.uniformInt(0, 300);
      const auto type = static_cast<EventType>(rng.uniformInt(0, 3));
      q.push(at, type, payload++, rng.uniformInt(0, 2));
    }
  }
  q.drainBoth();
}

TEST(EventQueueProperty, SameInstantBurstIsFifo) {
  // A tick cascade: many events at one instant must fire in push order on
  // BOTH kinds (the calendar binary-inserts into its live cursor bucket,
  // the heap orders by seq — same answer required).
  QueuePair q;
  for (std::uint64_t i = 0; i < 200; ++i)
    q.push(777, EventType::JobArrival, i);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Event e = q.popBoth();
    EXPECT_EQ(e.time, 777);
    EXPECT_EQ(e.payload, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueProperty, FarFutureEventsSurviveRebase) {
  // Events far beyond the calendar ring's window (2048 x 64 s) land in the
  // overflow list and are redistributed as the cursor advances. Spread
  // events over many windows and verify the pop stream matches the heap
  // throughout.
  QueuePair q;
  Rng rng(55);
  const Time window = 2048 * 64;
  for (int i = 0; i < 2000; ++i)
    q.push(rng.uniformInt(0, 40) * window + rng.uniformInt(0, 131071),
           EventType::JobCompletion, static_cast<std::uint64_t>(i),
           static_cast<std::uint64_t>(i % 3));
  Time prev = -1;
  while (!q.empty()) {
    const Event e = q.popBoth();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueueProperty, DrainThenPushBeforeOldCursor) {
  // Regression shape: drain the queue completely, then push an event whose
  // bucket precedes the stale cursor position. The calendar must re-anchor
  // its window instead of serving from the dead cursor bucket.
  QueuePair q;
  q.push(100000, EventType::Timer, 1);
  EXPECT_EQ(q.popBoth().payload, 1u);
  EXPECT_TRUE(q.empty());
  q.push(3, EventType::Timer, 2);  // far before the drained cursor
  q.push(100001, EventType::Timer, 3);
  EXPECT_EQ(q.popBoth().payload, 2u);
  EXPECT_EQ(q.popBoth().payload, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueProperty, RepeatedDrainRefillCycles) {
  // Alternate full drains with refills at ever-later times — each cycle
  // forces the calendar to re-anchor, and the streams must stay identical.
  QueuePair q;
  Rng rng(321);
  Time base = 0;
  for (int cycle = 0; cycle < 30; ++cycle) {
    const int n = rng.uniformInt(1, 40);
    for (int i = 0; i < n; ++i)
      q.push(base + rng.uniformInt(0, 5000), EventType::SuspendDrained,
             static_cast<std::uint64_t>(cycle * 1000 + i));
    q.drainBoth();
    base += rng.uniformInt(0, 200000);
  }
}

}  // namespace
}  // namespace sps::sim
