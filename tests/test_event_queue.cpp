// Unit tests: sim::EventQueue ordering semantics.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sps::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), InvariantError);
  EXPECT_THROW((void)q.nextTime(), InvariantError);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(30, EventType::Timer, 3);
  q.push(10, EventType::Timer, 1);
  q.push(20, EventType::Timer, 2);
  EXPECT_EQ(q.nextTime(), 10);
  EXPECT_EQ(q.pop().payload, 1u);
  EXPECT_EQ(q.pop().payload, 2u);
  EXPECT_EQ(q.pop().payload, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 50; ++i) q.push(42, EventType::Timer, i);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Event e = q.pop();
    EXPECT_EQ(e.time, 42);
    EXPECT_EQ(e.payload, i);
  }
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push(5, EventType::JobArrival, 0);
  q.push(1, EventType::JobArrival, 1);
  EXPECT_EQ(q.pop().payload, 1u);
  q.push(2, EventType::JobCompletion, 2);
  q.push(4, EventType::SuspendDrained, 3);
  EXPECT_EQ(q.pop().payload, 2u);
  EXPECT_EQ(q.pop().payload, 3u);
  EXPECT_EQ(q.pop().payload, 0u);
}

TEST(EventQueue, CarriesTypeAndGeneration) {
  EventQueue q;
  q.push(7, EventType::JobCompletion, 99, 5);
  const Event e = q.pop();
  EXPECT_EQ(e.type, EventType::JobCompletion);
  EXPECT_EQ(e.payload, 99u);
  EXPECT_EQ(e.generation, 5u);
  EXPECT_EQ(e.time, 7);
}

TEST(EventQueue, RandomizedOrderIsNonDecreasing) {
  EventQueue q;
  Rng rng(99);
  for (int i = 0; i < 1000; ++i)
    q.push(rng.uniformInt(0, 500), EventType::Timer,
           static_cast<std::uint64_t>(i));
  Time prev = -1;
  std::uint64_t prevSeq = 0;
  bool first = true;
  while (!q.empty()) {
    const Event e = q.pop();
    EXPECT_GE(e.time, prev);
    if (!first && e.time == prev) {
      EXPECT_GT(e.seq, prevSeq);
    }
    prev = e.time;
    prevSeq = e.seq;
    first = false;
  }
}

}  // namespace
}  // namespace sps::sim
