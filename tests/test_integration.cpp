// Integration tests: every scheduler end-to-end on calibrated synthetic
// workloads, checking the paper's qualitative claims hold on real-sized runs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "metrics/category_stats.hpp"
#include "workload/estimate_model.hpp"
#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"
#include "sched/overhead.hpp"

namespace sps {
namespace {

using core::PolicyKind;
using core::PolicySpec;

const workload::Trace& sdscTrace() {
  static const workload::Trace trace =
      workload::generateTrace(workload::sdscConfig(3000, 42));
  return trace;
}

const workload::Trace& ctcTrace() {
  static const workload::Trace trace =
      workload::generateTrace(workload::ctcConfig(3000, 42));
  return trace;
}

PolicySpec spec(PolicyKind kind, double sf = 2.0) {
  PolicySpec s;
  s.kind = kind;
  s.ss.suspensionFactor = sf;
  return s;
}

TEST(Integration, AllSchedulersCompleteTheTrace) {
  for (PolicyKind kind :
       {PolicyKind::Fcfs, PolicyKind::Conservative, PolicyKind::Easy,
        PolicyKind::SelectiveSuspension, PolicyKind::ImmediateService}) {
    const auto stats = core::runSimulation(sdscTrace(), spec(kind));
    EXPECT_EQ(stats.jobs.size(), sdscTrace().jobs.size());
    for (const auto& j : stats.jobs) {
      EXPECT_GE(j.finish, j.submit + j.runtime);
      EXPECT_GE(j.firstStart, j.submit);
    }
  }
}

TEST(Integration, NonPreemptiveSchedulersNeverSuspend) {
  for (PolicyKind kind :
       {PolicyKind::Fcfs, PolicyKind::Conservative, PolicyKind::Easy}) {
    const auto stats = core::runSimulation(ctcTrace(), spec(kind));
    EXPECT_EQ(stats.suspensions, 0u);
  }
}

TEST(Integration, BackfillingBeatsFcfsOnSlowdown) {
  const auto fcfs = core::runSimulation(sdscTrace(), spec(PolicyKind::Fcfs));
  const auto easy = core::runSimulation(sdscTrace(), spec(PolicyKind::Easy));
  EXPECT_LT(easy.meanBoundedSlowdown(), fcfs.meanBoundedSlowdown());
}

TEST(Integration, SsBeatsNsOnOverallSlowdown) {
  // The paper's headline: SS sharply reduces average slowdown vs NS.
  for (const workload::Trace* trace : {&ctcTrace(), &sdscTrace()}) {
    const auto ns = core::runSimulation(*trace, spec(PolicyKind::Easy));
    const auto ss =
        core::runSimulation(*trace, spec(PolicyKind::SelectiveSuspension));
    EXPECT_LT(ss.meanBoundedSlowdown(), ns.meanBoundedSlowdown() / 2.0)
        << trace->name;
  }
}

TEST(Integration, SsHelpsVeryShortCategoriesMost) {
  const auto ns = core::runSimulation(sdscTrace(), spec(PolicyKind::Easy));
  const auto ss =
      core::runSimulation(sdscTrace(), spec(PolicyKind::SelectiveSuspension));
  const auto nsCat = metrics::categorize16(ns.jobs);
  const auto ssCat = metrics::categorize16(ss.jobs);
  // VS-W and VS-VW: at least 3x improvement (paper: ~10-20x).
  const std::size_t vsW = workload::category16(workload::RunClass::VeryShort,
                                               workload::WidthClass::Wide);
  const std::size_t vsVW = workload::category16(
      workload::RunClass::VeryShort, workload::WidthClass::VeryWide);
  EXPECT_LT(ssCat[vsW].avgSlowdown(), nsCat[vsW].avgSlowdown() / 3.0);
  EXPECT_LT(ssCat[vsVW].avgSlowdown(), nsCat[vsVW].avgSlowdown() / 3.0);
}

TEST(Integration, SsCostsVeryLongJobsOnlyModestly) {
  // "a slight deterioration for the VL categories" — bounded here at 4x.
  const auto ns = core::runSimulation(sdscTrace(), spec(PolicyKind::Easy));
  const auto ss =
      core::runSimulation(sdscTrace(), spec(PolicyKind::SelectiveSuspension));
  const auto nsCat = metrics::categorize16(ns.jobs);
  const auto ssCat = metrics::categorize16(ss.jobs);
  for (std::size_t w = 0; w < workload::kNumWidthClasses; ++w) {
    const std::size_t c = workload::category16(
        workload::RunClass::VeryLong, static_cast<workload::WidthClass>(w));
    if (nsCat[c].empty() || ssCat[c].empty()) continue;
    EXPECT_LT(ssCat[c].avgSlowdown(),
              std::max(nsCat[c].avgSlowdown() * 4.0, 6.0))
        << workload::category16Name(c);
  }
}

TEST(Integration, IsBestForVeryShortWorstForLong) {
  const auto runs = core::compareSchemes(
      sdscTrace(), {spec(PolicyKind::SelectiveSuspension),
                    spec(PolicyKind::Easy), spec(PolicyKind::ImmediateService)});
  const auto ssCat = metrics::categorize16(runs[0].jobs);
  const auto isCat = metrics::categorize16(runs[2].jobs);
  // IS no worse than SS on every populated VS cell...
  for (std::size_t w = 0; w < workload::kNumWidthClasses; ++w) {
    const std::size_t c = workload::category16(
        workload::RunClass::VeryShort, static_cast<workload::WidthClass>(w));
    if (isCat[c].empty()) continue;
    EXPECT_LE(isCat[c].avgSlowdown(), ssCat[c].avgSlowdown() * 1.25)
        << workload::category16Name(c);
  }
  // ...and much worse on long-wide work.
  const std::size_t lVW = workload::category16(workload::RunClass::Long,
                                               workload::WidthClass::VeryWide);
  EXPECT_GT(isCat[lVW].avgSlowdown(), ssCat[lVW].avgSlowdown() * 2.0);
}

TEST(Integration, IsUtilizationCollapses) {
  const auto ns = core::runSimulation(sdscTrace(), spec(PolicyKind::Easy));
  const auto is =
      core::runSimulation(sdscTrace(), spec(PolicyKind::ImmediateService));
  EXPECT_LT(is.utilization, ns.utilization - 0.05);
}

TEST(Integration, SsUtilizationComparableToNs) {
  const auto ns = core::runSimulation(ctcTrace(), spec(PolicyKind::Easy));
  const auto ss =
      core::runSimulation(ctcTrace(), spec(PolicyKind::SelectiveSuspension));
  EXPECT_NEAR(ss.utilization, ns.utilization, 0.03);
}

TEST(Integration, TssCapsWorstCaseWithoutHurtingAverages) {
  const auto limits = core::bootstrapTssLimits(sdscTrace());
  PolicySpec ss = spec(PolicyKind::SelectiveSuspension);
  PolicySpec tss = ss;
  tss.ss.tssLimits = limits;
  const auto ssStats = core::runSimulation(sdscTrace(), ss);
  const auto tssStats = core::runSimulation(sdscTrace(), tss);
  // Averages stay in the same ballpark (within 50%).
  EXPECT_LT(tssStats.meanBoundedSlowdown(),
            ssStats.meanBoundedSlowdown() * 1.5 + 1.0);
  // The victim-protection limit suppresses preemptions...
  EXPECT_LT(tssStats.suspensions, ssStats.suspensions);
  // ...and caps how far a protected running job can be pushed: the worst
  // slowdown over the long classes stays in the same regime (per-seed noise
  // can move individual waiting jobs either way, so this is a loose bound —
  // the per-category panels are examined in bench_fig_tss_*).
  const auto ssCat = metrics::categorize16(ssStats.jobs);
  const auto tssCat = metrics::categorize16(tssStats.jobs);
  double ssWorstLong = 0, tssWorstLong = 0;
  for (std::size_t c = 8; c < 16; ++c) {  // L and VL rows
    ssWorstLong = std::max(ssWorstLong, ssCat[c].worstSlowdown());
    tssWorstLong = std::max(tssWorstLong, tssCat[c].worstSlowdown());
  }
  EXPECT_LE(tssWorstLong, ssWorstLong * 2.5 + 1.0);
}

TEST(Integration, OverheadBarelyMovesSsResults) {
  // Section V-A: "overhead does not significantly affect the performance of
  // the SS scheme".
  const sched::DiskSwapOverhead overhead(ctcTrace());
  core::SimulationOptions withOverhead;
  withOverhead.sim.overhead = &overhead;
  const auto plain =
      core::runSimulation(ctcTrace(), spec(PolicyKind::SelectiveSuspension));
  const auto loaded = core::runSimulation(
      ctcTrace(), spec(PolicyKind::SelectiveSuspension), withOverhead);
  EXPECT_LT(loaded.meanBoundedSlowdown(),
            plain.meanBoundedSlowdown() * 2.0 + 2.0);
  EXPECT_NEAR(loaded.utilization, plain.utilization, 0.05);
}

TEST(Integration, HigherLoadAmplifiesSsAdvantage) {
  // Section VI: SS improvements are more pronounced under high load.
  const auto base = workload::generateTrace(workload::sdscConfig(2500, 17));
  double prevRatio = 0.0;
  for (double factor : {1.0, 1.25}) {
    const auto scaled = workload::scaleLoad(base, factor);
    const auto ns = core::runSimulation(scaled, spec(PolicyKind::Easy));
    const auto ss =
        core::runSimulation(scaled, spec(PolicyKind::SelectiveSuspension));
    const double ratio =
        ns.meanBoundedSlowdown() / ss.meanBoundedSlowdown();
    EXPECT_GT(ratio, 1.0) << "factor " << factor;
    EXPECT_GT(ratio, prevRatio * 0.8) << "factor " << factor;
    prevRatio = ratio;
  }
}

TEST(Integration, InaccurateEstimatesPenalizeBadlyEstimatedJobs) {
  // Section V: with modal estimates, SS's residual VS penalty concentrates
  // in the badly-estimated group.
  workload::Trace trace = workload::generateTrace(workload::sdscConfig(3000, 21));
  workload::EstimateModelConfig est;
  est.kind = workload::EstimateModelKind::Modal;
  applyEstimates(trace, est);
  const auto ss =
      core::runSimulation(trace, spec(PolicyKind::SelectiveSuspension));
  const auto well =
      metrics::overallAggregate(ss.jobs, metrics::EstimateFilter::WellEstimated);
  const auto badly = metrics::overallAggregate(
      ss.jobs, metrics::EstimateFilter::BadlyEstimated);
  ASSERT_FALSE(well.empty());
  ASSERT_FALSE(badly.empty());
  EXPECT_GT(badly.avgSlowdown(), well.avgSlowdown());
}

TEST(Integration, LowerSfServesShortJobsBetter) {
  // Figs. 7-10: lower SF lowers VS-class slowdowns (more suspensions).
  const auto sf15 = core::runSimulation(
      sdscTrace(), spec(PolicyKind::SelectiveSuspension, 1.5));
  const auto sf5 = core::runSimulation(
      sdscTrace(), spec(PolicyKind::SelectiveSuspension, 5.0));
  EXPECT_GT(sf15.suspensions, sf5.suspensions);
  const auto c15 = metrics::categorize16(sf15.jobs);
  const auto c5 = metrics::categorize16(sf5.jobs);
  double vs15 = 0, vs5 = 0;  // aggregate over the whole VS row
  for (std::size_t c = 0; c < 4; ++c) {
    vs15 += c15[c].avgSlowdown();
    vs5 += c5[c].avgSlowdown();
  }
  EXPECT_LT(vs15, vs5 * 1.2);
}

}  // namespace
}  // namespace sps
