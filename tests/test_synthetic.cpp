// Unit tests: the synthetic workload generator and its paper calibration.
#include <gtest/gtest.h>

#include "metrics/category_stats.hpp"
#include "util/check.hpp"
#include "workload/synthetic.hpp"

namespace sps::workload {
namespace {

TEST(Synthetic, Deterministic) {
  const Trace a = generateTrace(ctcConfig(500, 7));
  const Trace b = generateTrace(ctcConfig(500, 7));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].submit, b.jobs[i].submit);
    EXPECT_EQ(a.jobs[i].runtime, b.jobs[i].runtime);
    EXPECT_EQ(a.jobs[i].procs, b.jobs[i].procs);
    EXPECT_EQ(a.jobs[i].memoryMb, b.jobs[i].memoryMb);
  }
}

TEST(Synthetic, SeedChangesTrace) {
  const Trace a = generateTrace(ctcConfig(500, 7));
  const Trace b = generateTrace(ctcConfig(500, 8));
  bool anyDiff = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    anyDiff |= a.jobs[i].runtime != b.jobs[i].runtime;
  EXPECT_TRUE(anyDiff);
}

TEST(Synthetic, ProducesRequestedCount) {
  EXPECT_EQ(generateTrace(ctcConfig(123, 1)).jobs.size(), 123u);
}

TEST(Synthetic, ResultValidates) {
  EXPECT_NO_THROW(validateTrace(generateTrace(sdscConfig(1000, 3))));
}

TEST(Synthetic, EstimatesAreAccurateByDefault) {
  const Trace t = generateTrace(kthConfig(300, 5));
  for (const Job& j : t.jobs) EXPECT_EQ(j.estimate, j.runtime);
}

TEST(Synthetic, MemoryWithinConfiguredRange) {
  SyntheticConfig cfg = ctcConfig(500, 9);
  cfg.memMinMb = 100;
  cfg.memMaxMb = 1024;
  const Trace t = generateTrace(cfg);
  for (const Job& j : t.jobs) {
    EXPECT_GE(j.memoryMb, 100u);
    EXPECT_LE(j.memoryMb, 1024u);
  }
}

TEST(Synthetic, RuntimesAndWidthsRespectCategoryBands) {
  const Trace t = generateTrace(sdscConfig(2000, 11));
  for (const Job& j : t.jobs) {
    EXPECT_GE(j.runtime, 1);
    EXPECT_LE(j.runtime, 24 * kHour);
    EXPECT_GE(j.procs, 1u);
    EXPECT_LE(j.procs, t.machineProcs);
  }
}

TEST(Synthetic, OfferedLoadHitsTarget) {
  SyntheticConfig cfg = ctcConfig(4000, 13);
  cfg.offeredLoad = 0.5;
  const Trace t = generateTrace(cfg);
  EXPECT_NEAR(offeredLoad(t), 0.5, 0.05);
}

TEST(Synthetic, CategoryMixMatchesTableII) {
  // With 20k jobs each cell should be within ~1.5 points of its target.
  const Trace t = generateTrace(ctcConfig(20000, 17));
  const auto dist = metrics::distribution16(t.jobs);
  const auto& mix = ctcConfig().categoryMix;
  double mixTotal = 0;
  for (double m : mix) mixTotal += m;
  for (std::size_t c = 0; c < kNumCategories16; ++c) {
    const double target = 100.0 * mix[c] / mixTotal;
    EXPECT_NEAR(dist[c], target, 1.5) << "category " << category16Name(c);
  }
}

TEST(Synthetic, ArrivalsAreSortedFromZero) {
  const Trace t = generateTrace(sdscConfig(1000, 19));
  EXPECT_EQ(t.jobs.front().submit, 0);
  for (std::size_t i = 1; i < t.jobs.size(); ++i)
    EXPECT_GE(t.jobs[i].submit, t.jobs[i - 1].submit);
}

TEST(Synthetic, PresetsMatchPaperMachines) {
  EXPECT_EQ(ctcConfig().machineProcs, 430u);   // CTC SP2
  EXPECT_EQ(sdscConfig().machineProcs, 128u);  // SDSC SP2
  EXPECT_EQ(kthConfig().machineProcs, 100u);   // KTH SP2
}

TEST(Synthetic, DistinctPresetSeedsGiveDistinctTraces) {
  const Trace c = generateTrace(ctcConfig(200, 42));
  const Trace s = generateTrace(sdscConfig(200, 42));
  bool anyDiff = false;
  for (std::size_t i = 0; i < 200; ++i)
    anyDiff |= c.jobs[i].runtime != s.jobs[i].runtime;
  EXPECT_TRUE(anyDiff);
}

TEST(Synthetic, RejectsBadConfigs) {
  SyntheticConfig cfg = ctcConfig(10, 1);
  cfg.machineProcs = 16;  // narrower than the VW boundary
  EXPECT_THROW(generateTrace(cfg), InvariantError);

  cfg = ctcConfig(10, 1);
  cfg.jobCount = 0;
  EXPECT_THROW(generateTrace(cfg), InvariantError);

  cfg = ctcConfig(10, 1);
  cfg.offeredLoad = 0.0;
  EXPECT_THROW(generateTrace(cfg), InvariantError);

  cfg = ctcConfig(10, 1);
  cfg.memMinMb = 0;
  EXPECT_THROW(generateTrace(cfg), InvariantError);

  cfg = ctcConfig(10, 1);
  cfg.maxRuntime = kLongMax;  // VL band empty
  EXPECT_THROW(generateTrace(cfg), InvariantError);
}

// Width-bias property: a larger widthAlpha must not increase mean width.
class WidthAlpha : public ::testing::TestWithParam<double> {};

TEST_P(WidthAlpha, WidthsStayInVwBand) {
  SyntheticConfig cfg = sdscConfig(2000, 23);
  cfg.widthAlpha = GetParam();
  // Force everything into the VS-VW cell to probe the band directly.
  cfg.categoryMix.fill(0.0);
  cfg.categoryMix[3] = 1.0;
  const Trace t = generateTrace(cfg);
  for (const Job& j : t.jobs) {
    EXPECT_GE(j.procs, kWideMax + 1);
    EXPECT_LE(j.procs, cfg.machineProcs);
    EXPECT_LE(j.runtime, kVeryShortMax);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, WidthAlpha,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 4.0));

TEST(Synthetic, ScaledToMachineKeepsBandShape) {
  const SyntheticConfig cfg =
      scaledToMachine(sdscConfig(2000, 31), 100'000);
  EXPECT_EQ(cfg.machineProcs, 100'000u);
  EXPECT_TRUE(cfg.scaleWidthBands);
  EXPECT_EQ(cfg.name, "SDSC-synth@100000");
  const Trace t = generateTrace(cfg);
  EXPECT_EQ(t.machineProcs, 100'000u);
  std::uint32_t maxWidth = 0;
  std::size_t beyondPaperVw = 0;
  for (const Job& j : t.jobs) {
    ASSERT_GE(j.procs, 1u);
    ASSERT_LE(j.procs, cfg.machineProcs);
    maxWidth = std::max(maxWidth, j.procs);
    if (j.procs > 100'000 / 4) ++beyondPaperVw;
  }
  // Scaled bands: the VW band starts at machineProcs/4, so genuinely wide
  // jobs exist, but the bottom-heavy in-band law keeps them a minority.
  EXPECT_GT(maxWidth, 25'000u);
  EXPECT_GT(beyondPaperVw, 0u);
  EXPECT_LT(beyondPaperVw, t.jobs.size() / 2);
}

TEST(Synthetic, ScaleFlagOffIsBitIdentical) {
  SyntheticConfig plain = sdscConfig(500, 7);
  SyntheticConfig flagged = plain;
  flagged.scaleWidthBands = true;  // no-op at 128 procs: bands never shrink
  const Trace a = generateTrace(plain);
  const Trace b = generateTrace(flagged);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].procs, b.jobs[i].procs);
    EXPECT_EQ(a.jobs[i].runtime, b.jobs[i].runtime);
    EXPECT_EQ(a.jobs[i].submit, b.jobs[i].submit);
  }
}

TEST(Synthetic, HigherWidthAlphaGivesNarrowerJobs) {
  double prevMean = 1e9;
  for (double alpha : {1.0, 2.0, 3.0}) {
    SyntheticConfig cfg = sdscConfig(4000, 29);
    cfg.widthAlpha = alpha;
    cfg.categoryMix.fill(0.0);
    cfg.categoryMix[3] = 1.0;  // VS-VW only
    const Trace t = generateTrace(cfg);
    double mean = 0;
    for (const Job& j : t.jobs) mean += j.procs;
    mean /= static_cast<double>(t.jobs.size());
    EXPECT_LT(mean, prevMean);
    prevMean = mean;
  }
}

}  // namespace
}  // namespace sps::workload
