// Unit tests: user-estimate error models (Section V).
#include <gtest/gtest.h>

#include "metrics/job_record.hpp"
#include "util/check.hpp"
#include "workload/estimate_model.hpp"
#include "workload/synthetic.hpp"

namespace sps::workload {
namespace {

Trace sampleTrace(std::size_t n = 2000) {
  return generateTrace(ctcConfig(n, 31));
}

TEST(EstimateModel, AccurateSetsEstimateToRuntime) {
  Trace t = sampleTrace(500);
  EstimateModelConfig cfg;
  cfg.kind = EstimateModelKind::Accurate;
  applyEstimates(t, cfg);
  for (const Job& j : t.jobs) EXPECT_EQ(j.estimate, j.runtime);
}

TEST(EstimateModel, EstimateNeverBelowRuntime) {
  for (auto kind : {EstimateModelKind::Accurate,
                    EstimateModelKind::UniformFactor,
                    EstimateModelKind::Modal}) {
    Trace t = sampleTrace(500);
    EstimateModelConfig cfg;
    cfg.kind = kind;
    applyEstimates(t, cfg);
    for (const Job& j : t.jobs) EXPECT_GE(j.estimate, j.runtime);
    EXPECT_NO_THROW(validateTrace(t));
  }
}

TEST(EstimateModel, UniformFactorWithinMax) {
  Trace t = sampleTrace(2000);
  EstimateModelConfig cfg;
  cfg.kind = EstimateModelKind::UniformFactor;
  cfg.maxFactor = 10.0;
  applyEstimates(t, cfg);
  for (const Job& j : t.jobs) {
    const double factor = static_cast<double>(j.estimate) /
                          static_cast<double>(j.runtime);
    EXPECT_LE(factor, 10.0 + 1.0);  // +1 slack for the ceil()
  }
}

TEST(EstimateModel, ModalMixtureFractions) {
  Trace t = sampleTrace(20000);
  EstimateModelConfig cfg;
  cfg.kind = EstimateModelKind::Modal;
  cfg.pExact = 0.2;
  cfg.pWell = 0.4;
  applyEstimates(t, cfg);
  std::size_t well = 0;
  for (const Job& j : t.jobs)
    if (j.estimate <= 2 * j.runtime) ++well;
  // Exact + mild-overestimate jobs are all "well estimated": ~60%.
  EXPECT_NEAR(static_cast<double>(well) / static_cast<double>(t.jobs.size()),
              0.6, 0.03);
}

TEST(EstimateModel, DeterministicInSeed) {
  Trace a = sampleTrace(500), b = sampleTrace(500);
  EstimateModelConfig cfg;
  cfg.kind = EstimateModelKind::Modal;
  cfg.seed = 77;
  applyEstimates(a, cfg);
  applyEstimates(b, cfg);
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_EQ(a.jobs[i].estimate, b.jobs[i].estimate);
}

TEST(EstimateModel, SeedChangesEstimates) {
  Trace a = sampleTrace(500), b = sampleTrace(500);
  EstimateModelConfig cfg;
  cfg.kind = EstimateModelKind::Modal;
  cfg.seed = 1;
  applyEstimates(a, cfg);
  cfg.seed = 2;
  applyEstimates(b, cfg);
  bool anyDiff = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    anyDiff |= a.jobs[i].estimate != b.jobs[i].estimate;
  EXPECT_TRUE(anyDiff);
}

TEST(EstimateModel, RejectsBadConfig) {
  Trace t = sampleTrace(10);
  EstimateModelConfig cfg;
  cfg.maxFactor = 1.0;
  EXPECT_THROW(applyEstimates(t, cfg), InvariantError);
  cfg = {};
  cfg.pExact = 0.8;
  cfg.pWell = 0.5;  // sums over 1
  EXPECT_THROW(applyEstimates(t, cfg), InvariantError);
}

TEST(EstimateModel, Names) {
  EXPECT_STREQ(estimateModelName(EstimateModelKind::Accurate), "accurate");
  EXPECT_STREQ(estimateModelName(EstimateModelKind::Modal), "modal");
  EXPECT_STREQ(estimateModelName(EstimateModelKind::UniformFactor),
               "uniform-factor");
}

}  // namespace
}  // namespace sps::workload
