// Unit tests: reservation-depth backfilling (extension) — the spectrum
// between EASY (depth 1) and conservative (depth infinity).
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "helpers.hpp"
#include "sched/conservative.hpp"
#include "sched/depth_backfill.hpp"
#include "sched/easy.hpp"
#include "sim/simulator.hpp"
#include "workload/synthetic.hpp"

namespace sps::sched {
namespace {

using test::J;
using test::makeTrace;

TEST(DepthBF, ConfigRejectsZeroDepth) {
  DepthConfig cfg;
  cfg.depth = 0;
  EXPECT_THROW(DepthBackfill{cfg}, InvariantError);
}

TEST(DepthBF, NameCarriesDepth) {
  EXPECT_EQ(DepthBackfill(DepthConfig{3}).name(), "Depth-BF(3)");
  EXPECT_EQ(DepthBackfill(DepthConfig{kUnlimitedDepth}).name(),
            "Depth-BF(inf)");
}

TEST(DepthBF, BackfillsIntoHoleLikeEasy) {
  // The canonical backfill scenario: short narrow job slides past a wide
  // reserved head.
  DepthBackfill policy(DepthConfig{1});
  const auto trace = makeTrace(4, {{0, 100, 3}, {1, 100, 4}, {2, 50, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(2).firstStart, 2);
  EXPECT_EQ(s.exec(1).firstStart, 100);
}

TEST(DepthBF, DepthOneLeavesSecondJobUnprotected) {
  // Same scenario as EASY's "SecondQueuedJobHasNoReservation": with depth 1
  // the backfill may delay the second queued job.
  DepthBackfill policy(DepthConfig{1});
  const auto trace =
      makeTrace(4, {{0, 100, 2}, {1, 100, 4}, {2, 100, 3}, {3, 97, 2}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(3).firstStart, 3);    // backfilled
  EXPECT_EQ(s.exec(1).firstStart, 100);  // head protected
  EXPECT_GE(s.exec(2).firstStart, 200);  // second job delayed
}

TEST(DepthBF, DepthTwoProtectsSecondJob) {
  // With depth 2 the would-be backfill delays a reserved job and must wait.
  DepthBackfill policy(DepthConfig{2});
  const auto trace =
      makeTrace(4, {{0, 100, 2}, {1, 100, 4}, {2, 100, 3}, {3, 97, 2}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 100);
  // Job 2 reserved right after job 1; job 3's backfill (ending at 100)
  // would occupy 2 of the 4 procs job 1 needs... it actually fits before
  // job 1's anchor; the reservation structure decides. Either way job 2's
  // guarantee (200) must hold:
  EXPECT_LE(s.exec(2).firstStart, 200);
}

TEST(DepthBF, UnlimitedDepthMatchesConservative) {
  const auto trace = workload::generateTrace(workload::sdscConfig(600, 41));
  DepthBackfill depth(DepthConfig{kUnlimitedDepth});
  ConservativeBackfill conservative;
  sim::Simulator a(trace, depth);
  a.run();
  sim::Simulator b(trace, conservative);
  b.run();
  // Same guarantee structure => same schedule.
  for (JobId i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(a.exec(i).firstStart, b.exec(i).firstStart) << "job " << i;
  }
}

TEST(DepthBF, DepthOneMatchesEasyOnAverage) {
  // Depth-1 and EASY share the guarantee structure; their backfill rules
  // are equivalent (see depth_backfill.hpp), so aggregate behaviour must
  // coincide closely on a real workload.
  const auto trace = workload::generateTrace(workload::sdscConfig(800, 43));
  core::PolicySpec d1;
  d1.kind = core::PolicyKind::DepthBackfill;
  d1.depth.depth = 1;
  core::PolicySpec easy;
  easy.kind = core::PolicyKind::Easy;
  const auto a = core::runSimulation(trace, d1);
  const auto b = core::runSimulation(trace, easy);
  EXPECT_NEAR(a.meanBoundedSlowdown(), b.meanBoundedSlowdown(),
              0.15 * b.meanBoundedSlowdown() + 0.5);
}

TEST(DepthBF, GuaranteesNeverRegress) {
  // Track every queued job's guarantee across the run via the accessor; the
  // internal CHECK enforces monotonicity, so completing the run is the
  // assertion. Exercise with early completions (estimates 4x runtimes).
  DepthBackfill policy(DepthConfig{4});
  std::vector<J> jobs;
  for (int i = 0; i < 40; ++i)
    jobs.push_back({i * 30, 200 + i * 10,
                    static_cast<std::uint32_t>(1 + (i % 8)),
                    (200 + i * 10) * 4});
  const auto trace = makeTrace(8, jobs);
  sim::Simulator s(trace, policy);
  s.run();
  for (JobId i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(s.state(i), sim::JobState::Finished);
}

TEST(DepthBF, InterpolatesBetweenExtremes) {
  // Mean slowdown should vary monotonically-ish from EASY-like to
  // conservative-like; at minimum, all depths must complete and stay
  // within the envelope spanned by the two extremes (with slack).
  const auto trace = workload::generateTrace(workload::sdscConfig(800, 47));
  std::vector<double> slowdowns;
  for (std::size_t depth : {std::size_t{1}, std::size_t{4},
                            std::size_t{16}, kUnlimitedDepth}) {
    core::PolicySpec spec;
    spec.kind = core::PolicyKind::DepthBackfill;
    spec.depth.depth = depth;
    slowdowns.push_back(
        core::runSimulation(trace, spec).meanBoundedSlowdown());
  }
  const double lo =
      std::min(slowdowns.front(), slowdowns.back()) / 1.5 - 0.5;
  const double hi =
      std::max(slowdowns.front(), slowdowns.back()) * 1.5 + 0.5;
  for (double sd : slowdowns) {
    EXPECT_GT(sd, lo);
    EXPECT_LT(sd, hi);
  }
}

TEST(DepthBF, NoSuspensionsEver) {
  DepthBackfill policy(DepthConfig{2});
  const auto trace = makeTrace(8, {{0, 50, 2}, {5, 50, 8}, {9, 50, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.totalSuspensions(), 0u);
}

TEST(DepthBF, FactoryIntegration) {
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::DepthBackfill;
  spec.depth.depth = 7;
  EXPECT_EQ(core::makePolicy(spec)->name(), "Depth-BF(7)");
}

}  // namespace
}  // namespace sps::sched
