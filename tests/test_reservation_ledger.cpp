// Unit + property tests: the scheduling kernel's incremental availability
// maintenance — AvailabilityProfile::removeBusy/shiftOrigin and the
// ReservationLedger built on them. The randomized suites cross-check every
// incremental path against a profile rebuilt naively from the live interval
// set, which is exactly the Rebuild-mode contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "helpers.hpp"
#include "sched/availability_profile.hpp"
#include "sched/core/backfill_engine.hpp"
#include "sched/core/reservation_ledger.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/job.hpp"

namespace sps::sched {
namespace {

using kernel::BackfillEngine;
using kernel::KernelMode;
using kernel::ReservationLedger;
using test::J;
using test::makeTrace;

struct Interval {
  Time start;
  Time end;
  std::uint32_t procs;
};

/// Ground truth: free processors at t from the live interval set.
std::uint32_t naiveFreeAt(const std::vector<Interval>& live, Time t,
                          std::uint32_t total) {
  std::uint32_t busy = 0;
  for (const Interval& iv : live)
    if (iv.start <= t && t < iv.end) busy += iv.procs;
  return total - busy;
}

/// Ground truth profile rebuilt from scratch (the Rebuild-mode semantics).
AvailabilityProfile naiveProfile(const std::vector<Interval>& live,
                                 Time origin, std::uint32_t total) {
  AvailabilityProfile p(origin, total);
  for (const Interval& iv : live) p.addBusy(iv.start, iv.end, iv.procs);
  return p;
}

TEST(RemoveBusy, ExactInverseOfAddBusy) {
  AvailabilityProfile p(0, 10);
  p.addBusy(5, 15, 4);
  p.addBusy(10, 20, 3);
  p.removeBusy(5, 15, 4);
  p.removeBusy(10, 20, 3);
  EXPECT_EQ(p.stepCount(), 1u);
  EXPECT_EQ(p.freeAt(0), 10u);
  EXPECT_EQ(p.freeAt(12), 10u);
}

TEST(RemoveBusy, CoalescesInteriorBoundaries) {
  AvailabilityProfile p(0, 8);
  p.addBusy(10, 20, 2);
  p.addBusy(20, 30, 2);  // same depth, adjacent: boundary at 20 is dead
  EXPECT_EQ(p.freeAt(15), 6u);
  EXPECT_EQ(p.freeAt(25), 6u);
  p.addBusy(15, 25, 3);
  p.removeBusy(15, 25, 3);
  // The add/remove churn must not leave breakpoints at 15/25 behind.
  EXPECT_EQ(p.stepCount(), 3u);  // [0,10) [10,30) [30,inf)
}

TEST(RemoveBusy, OverFreeingTripsInvariant) {
  AvailabilityProfile p(0, 4);
  p.addBusy(0, 10, 2);
  EXPECT_THROW(p.removeBusy(0, 10, 3), InvariantError);
}

TEST(RemoveBusy, ClampsToOrigin) {
  AvailabilityProfile p(0, 4);
  p.addBusy(0, 10, 2);
  p.shiftOrigin(6);
  p.removeBusy(0, 10, 2);  // past part [0,6) is gone; only [6,10) returns
  EXPECT_EQ(p.freeAt(7), 4u);
  EXPECT_EQ(p.stepCount(), 1u);
}

TEST(ShiftOrigin, DropsElapsedStepsOnly) {
  AvailabilityProfile p(0, 6);
  p.addBusy(0, 4, 1);
  p.addBusy(8, 12, 5);
  p.shiftOrigin(6);
  EXPECT_EQ(p.origin(), 6);
  EXPECT_EQ(p.freeAt(6), 6u);
  EXPECT_EQ(p.freeAt(9), 1u);
  EXPECT_EQ(p.findAnchor(6, 4, 6), 12);
  EXPECT_THROW(p.shiftOrigin(5), InvariantError);
}

TEST(ShiftOrigin, MidStepLandingKeepsValue) {
  AvailabilityProfile p(0, 6);
  p.addBusy(2, 10, 4);
  p.shiftOrigin(5);  // lands inside [2,10)
  EXPECT_EQ(p.freeAt(5), 2u);
  EXPECT_EQ(p.freeAt(10), 6u);
}

// The core property: an arbitrary interleaving of addBusy / removeBusy /
// shiftOrigin agrees everywhere with a profile rebuilt from the live
// interval set — and the step vector stays coalesced (minimal), so
// incremental churn cannot leak breakpoints.
TEST(ProfileProperty, IncrementalChurnMatchesNaiveRebuild) {
  Rng rng(0xfeedbeefULL);
  const std::uint32_t total = 48;
  for (int round = 0; round < 40; ++round) {
    AvailabilityProfile p(0, total);
    std::vector<Interval> live;
    Time origin = 0;
    for (int op = 0; op < 120; ++op) {
      const std::int64_t kind = rng.uniformInt(0, 9);
      if (kind < 5 || live.empty()) {
        // addBusy of a random interval that keeps the profile feasible.
        const Time start = origin + rng.uniformInt(0, 50);
        const Time end = start + rng.uniformInt(1, 40);
        std::uint32_t room = total;
        for (Time t = start; t < end; ++t)
          room = std::min(room, naiveFreeAt(live, t, total));
        if (room == 0) continue;
        const auto procs =
            static_cast<std::uint32_t>(rng.uniformInt(1, room));
        p.addBusy(start, end, procs);
        live.push_back({start, end, procs});
      } else if (kind < 8) {
        // removeBusy of a previously added interval (clamped like the
        // ledger does when the origin has advanced past its start).
        const auto pick = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
        const Interval iv = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        p.removeBusy(iv.start, iv.end, iv.procs);
      } else {
        // shiftOrigin forward; drop intervals that fell entirely behind.
        origin += rng.uniformInt(0, 20);
        p.shiftOrigin(origin);
        std::erase_if(live, [origin](const Interval& iv) {
          return iv.end <= origin;
        });
      }

      const AvailabilityProfile naive = naiveProfile(live, origin, total);
      for (int probe = 0; probe < 8; ++probe) {
        const Time t = origin + rng.uniformInt(0, 110);
        ASSERT_EQ(p.freeAt(t), naiveFreeAt(live, t, total))
            << "round " << round << " op " << op << " t=" << t;
        ASSERT_EQ(p.freeAt(t), naive.freeAt(t));
      }
      for (int probe = 0; probe < 4; ++probe) {
        const Time dur = rng.uniformInt(1, 30);
        const auto procs =
            static_cast<std::uint32_t>(rng.uniformInt(1, total));
        ASSERT_EQ(p.findAnchor(origin, dur, procs),
                  naive.findAnchor(origin, dur, procs));
      }
      // Coalescing invariant: every incremental breakpoint is an endpoint
      // of a live interval (removeBusy coalesces dead boundaries), so the
      // churned profile never carries more steps than the fresh rebuild.
      ASSERT_LE(p.stepCount(), naive.stepCount());
    }
  }
}

// Ledger-level crosscheck: one Incremental and one Rebuild ledger observe
// the same simulation; after every refresh both profiles must agree at all
// probe points, and the zombie accounting must match the machine's view.
TEST(ReservationLedgerTest, IncrementalAgreesWithRebuildOverARun) {
  const auto trace = makeTrace(
      8, {{0, 10, 4}, {0, 20, 4}, {1, 5, 2, 8}, {3, 30, 6, 35},
          {12, 4, 8, 6}, {18, 7, 3, 9}, {25, 9, 5, 12}});
  test::ScriptedPolicy policy;
  sim::Simulator simulator(trace, policy);
  ReservationLedger inc(KernelMode::Incremental);
  ReservationLedger reb(KernelMode::Rebuild);
  inc.attach(simulator);
  reb.attach(simulator);

  auto crosscheck = [&](sim::Simulator& s) {
    inc.refresh(s);
    reb.refresh(s);
    for (Time dt = 0; dt <= 60; ++dt)
      ASSERT_EQ(inc.profile().freeAt(s.now() + dt),
                reb.profile().freeAt(s.now() + dt))
          << "t=" << s.now() << " dt=" << dt;
    ASSERT_EQ(inc.zombieProcsAt(s.now()), reb.zombieProcsAt(s.now()));
  };
  policy.arrival = [&](sim::Simulator& s, JobId) {
    crosscheck(s);
    test::ScriptedPolicy::greedy(s);
    crosscheck(s);
  };
  policy.completion = policy.arrival;
  simulator.run();
}

TEST(ReservationLedgerTest, ZombieProcsCountPendingCompletions) {
  // A and B both end (estimated AND actual) at t=10. When A's completion
  // fires first, B is a zombie: estimated end == now but still Running.
  const auto trace = makeTrace(4, {{0, 10, 2}, {0, 10, 2}});
  test::ScriptedPolicy policy;
  sim::Simulator simulator(trace, policy);
  ReservationLedger ledger(KernelMode::Incremental);
  ledger.attach(simulator);
  std::vector<std::uint32_t> zombiesSeen;
  policy.completion = [&](sim::Simulator& s, JobId) {
    ledger.refresh(s);
    zombiesSeen.push_back(ledger.zombieProcsAt(s.now()));
    test::ScriptedPolicy::greedy(s);
  };
  simulator.run();
  ASSERT_EQ(zombiesSeen.size(), 2u);
  EXPECT_EQ(zombiesSeen[0], 2u);  // the sibling still holds its processors
  EXPECT_EQ(zombiesSeen[1], 0u);
}

TEST(ReservationLedgerTest, ReservationsLayerOnRunningJobs) {
  const auto trace = makeTrace(8, {{0, 20, 6}, {0, 5, 2}, {0, 5, 2}});
  test::ScriptedPolicy policy;
  sim::Simulator simulator(trace, policy);
  ReservationLedger ledger(KernelMode::Incremental);
  BackfillEngine engine(ledger);
  ledger.attach(simulator);
  bool checked = false;
  policy.arrival = [&](sim::Simulator& s, JobId id) {
    if (id != 2) {
      test::ScriptedPolicy::greedy(s);
      return;  // jobs 0 and 1 start; job 2 stays queued for the checks
    }
    ledger.refresh(s);
    // Job 0 runs [0,20)x6, job 1 runs [0,5)x2: machine full until 5.
    ledger.addReservation(7, 5, 10, 2);  // synthetic guarantee [5,15)x2
    EXPECT_TRUE(ledger.hasReservation(7));
    EXPECT_EQ(ledger.reservationCount(), 1u);
    EXPECT_EQ(ledger.profile().freeAt(4), 0u);
    EXPECT_EQ(ledger.profile().freeAt(5), 0u);   // reservation occupies it
    EXPECT_EQ(ledger.profile().freeAt(15), 2u);  // reservation ended
    EXPECT_EQ(ledger.profile().findAnchor(0, 10, 2), 15);
    // Job 2 (2 procs, estimate 5) anchors behind the reservation.
    const auto anchor = engine.anchorOf(s, 2);
    EXPECT_EQ(anchor.start, 15);
    EXPECT_FALSE(anchor.startNow);
    ledger.removeReservation(7);
    EXPECT_FALSE(ledger.hasReservation(7));
    EXPECT_EQ(ledger.profile().findAnchor(0, 10, 2), 5);
    checked = true;
  };
  // Default completion hook (greedy) starts job 2 once job 1 finishes.
  simulator.run();
  EXPECT_TRUE(checked);
}

TEST(ReservationLedgerTest, RefreshRequiresAttachedSimulator) {
  const auto trace = makeTrace(4, {{0, 5, 1}});
  test::ScriptedPolicy policy;
  sim::Simulator simulator(trace, policy);
  ReservationLedger ledger;
  EXPECT_THROW(ledger.refresh(simulator), InvariantError);
}

}  // namespace
}  // namespace sps::sched
