// Unit tests: workload categorization (Tables I and VI).
#include <gtest/gtest.h>

#include "util/check.hpp"
#include "workload/category.hpp"

namespace sps::workload {
namespace {

TEST(Category16, RunClassBoundaries) {
  EXPECT_EQ(runClassOf(1), RunClass::VeryShort);
  EXPECT_EQ(runClassOf(600), RunClass::VeryShort);   // inclusive
  EXPECT_EQ(runClassOf(601), RunClass::Short);
  EXPECT_EQ(runClassOf(3600), RunClass::Short);
  EXPECT_EQ(runClassOf(3601), RunClass::Long);
  EXPECT_EQ(runClassOf(28800), RunClass::Long);
  EXPECT_EQ(runClassOf(28801), RunClass::VeryLong);
  EXPECT_EQ(runClassOf(1000000), RunClass::VeryLong);
}

TEST(Category16, WidthClassBoundaries) {
  EXPECT_EQ(widthClassOf(1), WidthClass::Sequential);
  EXPECT_EQ(widthClassOf(2), WidthClass::Narrow);
  EXPECT_EQ(widthClassOf(8), WidthClass::Narrow);
  EXPECT_EQ(widthClassOf(9), WidthClass::Wide);
  EXPECT_EQ(widthClassOf(32), WidthClass::Wide);
  EXPECT_EQ(widthClassOf(33), WidthClass::VeryWide);
  EXPECT_EQ(widthClassOf(430), WidthClass::VeryWide);
}

TEST(Category16, IndexLayoutIsRowMajor) {
  EXPECT_EQ(category16(RunClass::VeryShort, WidthClass::Sequential), 0u);
  EXPECT_EQ(category16(RunClass::VeryShort, WidthClass::VeryWide), 3u);
  EXPECT_EQ(category16(RunClass::Short, WidthClass::Sequential), 4u);
  EXPECT_EQ(category16(RunClass::VeryLong, WidthClass::VeryWide), 15u);
}

TEST(Category16, JobOverloadUsesActualRuntime) {
  Job j;
  j.runtime = 300;     // VS
  j.estimate = 90000;  // would be VL by estimate
  j.procs = 16;        // W
  EXPECT_EQ(category16(j), category16(RunClass::VeryShort, WidthClass::Wide));
}

TEST(Category16, Names) {
  EXPECT_EQ(category16Name(0), "VS Seq");
  EXPECT_EQ(category16Name(3), "VS VW");
  EXPECT_EQ(category16Name(15), "VL VW");
  EXPECT_EQ(runClassName(RunClass::Long), "L");
  EXPECT_EQ(widthClassName(WidthClass::Narrow), "N");
  EXPECT_THROW((void)category16Name(16), InvariantError);
}

TEST(Category16, RoundTripDecomposition) {
  for (std::size_t c = 0; c < kNumCategories16; ++c) {
    EXPECT_EQ(category16(runClassOfCategory(c), widthClassOfCategory(c)), c);
  }
}

TEST(Category4, Boundaries) {
  // Order: SN, SW, LN, LW (Table VI: <=1h / >1h x <=8 / >8 procs).
  EXPECT_EQ(category4(3600, 8), 0u);
  EXPECT_EQ(category4(3600, 9), 1u);
  EXPECT_EQ(category4(3601, 8), 2u);
  EXPECT_EQ(category4(3601, 9), 3u);
}

TEST(Category4, Names) {
  EXPECT_EQ(category4Name(0), "SN");
  EXPECT_EQ(category4Name(1), "SW");
  EXPECT_EQ(category4Name(2), "LN");
  EXPECT_EQ(category4Name(3), "LW");
  EXPECT_THROW((void)category4Name(4), InvariantError);
}

// Property sweep: the 16-way and 4-way schemes must agree on the coarse
// boundaries they share (1 h runtime, 8 proc width).
struct CatCase {
  Time runtime;
  std::uint32_t procs;
};

class CategoryConsistency : public ::testing::TestWithParam<CatCase> {};

TEST_P(CategoryConsistency, CoarseBoundariesAgree) {
  const auto [runtime, procs] = GetParam();
  const std::size_t c16 = category16(runtime, procs);
  const std::size_t c4 = category4(runtime, procs);
  const auto r16 = runClassOfCategory(c16);
  const auto w16 = widthClassOfCategory(c16);
  const bool long4 = c4 >= 2;
  const bool wide4 = (c4 % 2) == 1;
  // 16-way classes VS/S are the 4-way Short; L/VL are Long.
  EXPECT_EQ(long4, r16 == RunClass::Long || r16 == RunClass::VeryLong);
  // 16-way Seq/N are the 4-way Narrow; W/VW are Wide.
  EXPECT_EQ(wide4,
            w16 == WidthClass::Wide || w16 == WidthClass::VeryWide);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, CategoryConsistency,
    ::testing::Values(CatCase{1, 1}, CatCase{600, 8}, CatCase{601, 9},
                      CatCase{3600, 8}, CatCase{3601, 8}, CatCase{3600, 9},
                      CatCase{3601, 9}, CatCase{28800, 32},
                      CatCase{28801, 33}, CatCase{86400, 430},
                      CatCase{100, 33}, CatCase{40000, 2}));

}  // namespace
}  // namespace sps::workload
