// Golden-equivalence suite for the scheduling kernel (ISSUE: incremental
// scheduling kernel). Every policy runs the same seeded synthetic trace
// twice — once with KernelMode::Incremental (the kernel's amortized
// maintenance) and once with KernelMode::Rebuild (the pre-kernel,
// reconstruct-per-event behaviour kept as the reference) — and the two
// schedules must be bit-identical: the full (time, job, from, to)
// transition sequence, not just summary statistics.
//
// Labeled perf-smoke: `ctest -L perf-smoke` runs exactly this suite plus
// the small end-to-end sweep at the bottom, which is the gate the bench
// numbers in BENCH_engine.json are meaningful against.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/simulation.hpp"
#include "helpers.hpp"
#include "sched/overhead.hpp"
#include "sim/simulator.hpp"
#include "workload/estimate_model.hpp"
#include "workload/synthetic.hpp"

namespace sps {
namespace {

using sched::kernel::KernelMode;

/// One job state transition, exactly as the simulator reported it.
using Transition = std::tuple<Time, JobId, int, int>;

struct Schedule {
  std::vector<Transition> transitions;
  std::vector<Time> firstStart;
  std::vector<Time> finish;
  std::vector<std::uint32_t> suspendCount;
};

using sched::withKernelMode;

Schedule runSchedule(const workload::Trace& trace,
                     const core::PolicySpec& spec, KernelMode mode,
                     const sim::OverheadPolicy* overhead) {
  const auto policy = core::makePolicy(withKernelMode(spec, mode));
  sim::Simulator::Config config;
  config.overhead = overhead;
  // Cross the queue implementations with the kernel modes so equivalence
  // pins both redesigned layers at once: the rebuild reference runs on the
  // binary heap, the incremental kernel on the calendar queue.
  config.queueKind = mode == KernelMode::Rebuild ? sim::QueueKind::BinaryHeap
                                                 : sim::QueueKind::Calendar;
  sim::Simulator simulator(trace, *policy, config);
  Schedule schedule;
  simulator.observers().onStateChange(
      [&schedule](const sim::Simulator& s, JobId id, sim::JobState from,
                  sim::JobState to) {
        schedule.transitions.emplace_back(s.now(), id, static_cast<int>(from),
                                          static_cast<int>(to));
      });
  simulator.run();
  for (JobId id = 0; id < trace.jobs.size(); ++id) {
    schedule.firstStart.push_back(simulator.exec(id).firstStart);
    schedule.finish.push_back(simulator.exec(id).finish);
    schedule.suspendCount.push_back(simulator.exec(id).suspendCount);
  }
  return schedule;
}

/// Assert two schedules are identical, with a useful first-divergence
/// message rather than a dump of both transition logs.
void expectIdentical(const Schedule& a, const Schedule& b,
                     const std::string& context) {
  const std::size_t n = std::min(a.transitions.size(), b.transitions.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.transitions[i] == b.transitions[i]) continue;
    const auto& [ta, ja, fa, sa] = a.transitions[i];
    const auto& [tb, jb, fb, sb] = b.transitions[i];
    FAIL() << context << ": schedules diverge at transition " << i
           << " — incremental (t=" << ta << " job=" << ja << " " << fa << "->"
           << sa << ") vs rebuild (t=" << tb << " job=" << jb << " " << fb
           << "->" << sb << ")";
  }
  EXPECT_EQ(a.transitions.size(), b.transitions.size()) << context;
  EXPECT_EQ(a.firstStart, b.firstStart) << context;
  EXPECT_EQ(a.finish, b.finish) << context;
  EXPECT_EQ(a.suspendCount, b.suspendCount) << context;
}

std::vector<std::pair<std::string, core::PolicySpec>> kernelPolicies() {
  std::vector<std::pair<std::string, core::PolicySpec>> specs;
  core::PolicySpec spec;

  spec = {};
  spec.kind = core::PolicyKind::Conservative;
  specs.emplace_back("conservative", spec);

  spec = {};
  spec.kind = core::PolicyKind::Easy;
  specs.emplace_back("easy-fcfs", spec);

  spec = {};
  spec.kind = core::PolicyKind::Easy;
  spec.easy.order = sched::QueueOrder::ShortestFirst;
  specs.emplace_back("sjf-bf", spec);

  spec = {};
  spec.kind = core::PolicyKind::DepthBackfill;
  spec.depth.depth = 2;
  specs.emplace_back("depth-2", spec);

  spec = {};
  spec.kind = core::PolicyKind::DepthBackfill;
  spec.depth.depth = sched::kUnlimitedDepth;
  specs.emplace_back("depth-inf", spec);

  spec = {};
  spec.kind = core::PolicyKind::SelectiveSuspension;
  specs.emplace_back("ss", spec);

  spec = {};
  spec.kind = core::PolicyKind::SelectiveSuspension;
  spec.ss.tssOnlineMultiplier = 1.5;
  specs.emplace_back("tss-online", spec);

  spec = {};
  spec.kind = core::PolicyKind::ImmediateService;
  specs.emplace_back("is", spec);

  return specs;
}

class GoldenEquivalence : public ::testing::TestWithParam<
                              std::tuple<const char*, std::size_t>> {};

TEST_P(GoldenEquivalence, IncrementalMatchesRebuild) {
  const auto& [traceKind, jobCount] = GetParam();
  workload::Trace trace = generateTrace(
      std::string(traceKind) == "ctc" ? workload::ctcConfig(jobCount, 42)
                                      : workload::sdscConfig(jobCount, 42));
  // Two estimate regimes: exact estimates drive the incremental kernel's
  // on-time-completion fast paths on every completion; the Modal model
  // makes most completions early, driving the full compression/rebuild
  // path plus the mixed transitions between the two.
  for (const bool inaccurate : {false, true}) {
    if (inaccurate) {
      workload::EstimateModelConfig model;
      model.kind = workload::EstimateModelKind::Modal;
      applyEstimates(trace, model);
    }
    const sched::DiskSwapOverhead swap(trace);
    for (const auto& [label, spec] : kernelPolicies()) {
      // Overhead only matters to the preemptive policies, but running every
      // policy under both cost models is cheap and catches accidental
      // coupling between the ledger and the overhead path.
      for (const sim::OverheadPolicy* overhead :
           {static_cast<const sim::OverheadPolicy*>(nullptr),
            static_cast<const sim::OverheadPolicy*>(&swap)}) {
        const Schedule inc =
            runSchedule(trace, spec, KernelMode::Incremental, overhead);
        const Schedule reb =
            runSchedule(trace, spec, KernelMode::Rebuild, overhead);
        std::ostringstream context;
        context << label << " on " << traceKind << "/" << jobCount
                << (inaccurate ? " modal-estimates" : " exact-estimates")
                << (overhead ? " +overhead" : "");
        expectIdentical(inc, reb, context.str());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Traces, GoldenEquivalence,
    ::testing::Values(std::make_tuple("ctc", std::size_t{800}),
                      std::make_tuple("sdsc", std::size_t{800})),
    [](const auto& paramInfo) {
      return std::string(std::get<0>(paramInfo.param)) + "_" +
             std::to_string(std::get<1>(paramInfo.param));
    });

// The deferred-start edge both kernel modes must agree on: C's anchor lands
// at t=10 while A and B's completion events are still pending in the same
// timestamp batch, so the profile says "start now" before the machine can.
// The startNow test (anchor == now AND physically fits) defers the start to
// the completion cascade — still within t=10.
TEST(GoldenEquivalenceEdge, DeferredStartAtAnchorEqualsNow) {
  const auto trace =
      test::makeTrace(4, {{0, 10, 2}, {0, 10, 2}, {1, 5, 4}});
  for (const KernelMode mode : {KernelMode::Incremental, KernelMode::Rebuild}) {
    core::PolicySpec spec;
    spec.kind = core::PolicyKind::Conservative;
    const Schedule s = runSchedule(trace, spec, mode, nullptr);
    EXPECT_EQ(s.firstStart[0], 0);
    EXPECT_EQ(s.firstStart[1], 0);
    EXPECT_EQ(s.firstStart[2], 10) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(s.finish[2], 15);
  }
}

// Small end-to-end sweep (the second half of the perf-smoke gate): every
// policy × both kernel modes completes a short SDSC run with sane metrics.
TEST(PerfSmokeSweep, AllPoliciesCompleteWithSaneStats) {
  const workload::Trace trace =
      generateTrace(workload::sdscConfig(300, 7));
  for (const auto& [label, spec] : kernelPolicies()) {
    for (const KernelMode mode :
         {KernelMode::Incremental, KernelMode::Rebuild}) {
      const metrics::RunStats stats =
          core::runSimulation(trace, withKernelMode(spec, mode));
      EXPECT_EQ(stats.jobs.size(), trace.jobs.size()) << label;
      EXPECT_GT(stats.utilization, 0.0) << label;
      EXPECT_LE(stats.utilization, 1.0) << label;
      EXPECT_GE(stats.meanBoundedSlowdown(), 1.0) << label;
      EXPECT_GT(stats.span, 0) << label;
    }
  }
}

}  // namespace
}  // namespace sps
