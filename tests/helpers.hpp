// Shared test fixtures: trace builders and a scripted policy for driving the
// simulator deterministically from tests.
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/policy.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"
#include "workload/transforms.hpp"

namespace sps::test {

/// Compact job literal: submit, runtime, procs, optional estimate/memory.
struct J {
  Time submit;
  Time runtime;
  std::uint32_t procs;
  Time estimate = 0;  ///< 0 = accurate (estimate == runtime)
  std::uint32_t memoryMb = 0;
};

inline workload::Trace makeTrace(std::uint32_t machineProcs,
                                 std::vector<J> jobs,
                                 std::string name = "test") {
  workload::Trace trace;
  trace.name = std::move(name);
  trace.machineProcs = machineProcs;
  for (const J& spec : jobs) {
    workload::Job job;
    job.submit = spec.submit;
    job.runtime = spec.runtime;
    job.estimate = spec.estimate == 0 ? spec.runtime : spec.estimate;
    job.procs = spec.procs;
    job.memoryMb = spec.memoryMb;
    trace.jobs.push_back(job);
  }
  workload::normalizeTrace(trace);
  workload::validateTrace(trace);
  return trace;
}

/// A policy whose behaviour is scripted through std::function hooks —
/// defaults to greedy FCFS-ish dispatch so simple tests need no hooks.
class ScriptedPolicy final : public sim::SchedulingPolicy {
 public:
  std::function<void(sim::Simulator&, JobId)> arrival;
  std::function<void(sim::Simulator&, JobId)> completion;
  std::function<void(sim::Simulator&, JobId)> drained;
  std::function<void(sim::Simulator&, std::uint64_t)> timer;

  [[nodiscard]] std::string name() const override { return "scripted"; }

  void onJobArrival(sim::Simulator& s, JobId j) override {
    if (arrival) arrival(s, j);
    else greedy(s);
  }
  void onJobCompletion(sim::Simulator& s, JobId j) override {
    if (completion) completion(s, j);
    else greedy(s);
  }
  void onSuspendDrained(sim::Simulator& s, JobId j) override {
    if (drained) drained(s, j);
    else greedy(s);
  }
  void onTimer(sim::Simulator& s, std::uint64_t tag) override {
    if (timer) timer(s, tag);
  }

  /// Start/resume everything that fits, lowest id first.
  static void greedy(sim::Simulator& s) {
    bool progress = true;
    while (progress) {
      progress = false;
      std::vector<JobId> queued(s.queuedJobs());
      std::sort(queued.begin(), queued.end());
      for (JobId id : queued) {
        if (s.job(id).procs <= s.freeCount()) {
          s.startJob(id);
          progress = true;
          break;
        }
      }
      if (progress) continue;
      std::vector<JobId> susp(s.suspendedJobs());
      std::sort(susp.begin(), susp.end());
      for (JobId id : susp) {
        if (s.state(id) == sim::JobState::Suspended &&
            s.exec(id).procs.isSubsetOf(s.freeSet())) {
          s.resumeJob(id);
          progress = true;
          break;
        }
      }
    }
  }
};

}  // namespace sps::test
