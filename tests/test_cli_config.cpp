// Unit tests: core::CliConfig — flag/option/positional parsing, validation
// errors, help, and usage generation.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli_config.hpp"

namespace sps::core {
namespace {

struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    pointers.push_back("prog");
    for (const std::string& s : strings) pointers.push_back(s.c_str());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(pointers.size()); }
  [[nodiscard]] const char* const* argv() const { return pointers.data(); }
  std::vector<std::string> strings;
  std::vector<const char*> pointers;
};

struct Bound {
  std::string preset = "sdsc";
  std::size_t jobs = 10000;
  double sf = 2.0;
  std::optional<double> load;
  bool csv = false;
};

CliConfig makeCli(Bound& b) {
  CliConfig cli("tool", "test tool");
  cli.section("Workload");
  cli.option("--preset", &b.preset, "NAME", "preset name");
  cli.option("--jobs", &b.jobs, "N", "job count");
  cli.option("--load", &b.load, "F", "offered load");
  cli.section("Scheduler");
  cli.option("--sf", &b.sf, "F", "suspension factor");
  cli.flag("--csv", &b.csv, "CSV output");
  return cli;
}

TEST(CliConfig, ParsesEveryKind) {
  Bound b;
  CliConfig cli = makeCli(b);
  const Argv args({"--preset", "ctc", "--jobs", "500", "--sf", "1.5",
                   "--load", "0.9", "--csv"});
  const auto outcome = cli.parse(args.argc(), args.argv());
  EXPECT_FALSE(outcome.helpRequested);
  EXPECT_EQ(b.preset, "ctc");
  EXPECT_EQ(b.jobs, 500u);
  EXPECT_DOUBLE_EQ(b.sf, 1.5);
  ASSERT_TRUE(b.load.has_value());
  EXPECT_DOUBLE_EQ(*b.load, 0.9);
  EXPECT_TRUE(b.csv);
}

TEST(CliConfig, DefaultsSurviveNoArgs) {
  Bound b;
  CliConfig cli = makeCli(b);
  const Argv args({});
  (void)cli.parse(args.argc(), args.argv());
  EXPECT_EQ(b.preset, "sdsc");
  EXPECT_EQ(b.jobs, 10000u);
  EXPECT_FALSE(b.load.has_value());
  EXPECT_FALSE(b.csv);
}

TEST(CliConfig, HelpRequested) {
  Bound b;
  CliConfig cli = makeCli(b);
  for (const char* flag : {"--help", "-h"}) {
    const Argv args({flag});
    EXPECT_TRUE(cli.parse(args.argc(), args.argv()).helpRequested);
  }
}

TEST(CliConfig, RejectsUnknownFlag) {
  Bound b;
  CliConfig cli = makeCli(b);
  const Argv args({"--nope"});
  EXPECT_THROW((void)cli.parse(args.argc(), args.argv()), InputError);
}

TEST(CliConfig, RejectsMissingValue) {
  Bound b;
  CliConfig cli = makeCli(b);
  const Argv args({"--jobs"});
  EXPECT_THROW((void)cli.parse(args.argc(), args.argv()), InputError);
}

TEST(CliConfig, RejectsBadNumbers) {
  Bound b;
  CliConfig cli = makeCli(b);
  for (auto badArgs : {std::vector<std::string>{"--jobs", "many"},
                       std::vector<std::string>{"--sf", "fast"},
                       std::vector<std::string>{"--jobs", "12x"}}) {
    const Argv args(badArgs);
    EXPECT_THROW((void)cli.parse(args.argc(), args.argv()), InputError);
  }
}

TEST(CliConfig, RejectsOutOfRange) {
  Bound b;
  CliConfig cli = makeCli(b);
  const Argv args({"--jobs", "99999999999999999999999999"});
  EXPECT_THROW((void)cli.parse(args.argc(), args.argv()), InputError);
}

TEST(CliConfig, Positionals) {
  std::size_t jobs = 4000;
  std::string machine = "sdsc";
  CliConfig cli("tool", "positional test");
  cli.positional("jobs", &jobs, "job count");
  cli.positional("machine", &machine, "machine name");
  const Argv args({"123", "ctc"});
  (void)cli.parse(args.argc(), args.argv());
  EXPECT_EQ(jobs, 123u);
  EXPECT_EQ(machine, "ctc");

  const Argv extra({"1", "ctc", "surplus"});
  EXPECT_THROW((void)cli.parse(extra.argc(), extra.argv()), InputError);
}

TEST(CliConfig, PositionalsMixWithFlags) {
  std::size_t jobs = 0;
  bool csv = false;
  CliConfig cli("tool", "mix test");
  cli.positional("jobs", &jobs, "job count");
  cli.flag("--csv", &csv, "CSV output");
  const Argv args({"--csv", "77"});
  (void)cli.parse(args.argc(), args.argv());
  EXPECT_EQ(jobs, 77u);
  EXPECT_TRUE(csv);
}

TEST(CliConfig, UsageListsSectionsOptionsAndHelp) {
  Bound b;
  CliConfig cli = makeCli(b);
  std::ostringstream os;
  cli.printUsage(os);
  const std::string usage = os.str();
  EXPECT_NE(usage.find("tool — test tool"), std::string::npos);
  EXPECT_NE(usage.find("Workload:"), std::string::npos);
  EXPECT_NE(usage.find("Scheduler:"), std::string::npos);
  EXPECT_NE(usage.find("--preset NAME"), std::string::npos);
  EXPECT_NE(usage.find("suspension factor"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace sps::core
