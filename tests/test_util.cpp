// Unit tests: util (rng, stats, table, check, log).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sps {
namespace {

// --- check macros -----------------------------------------------------------

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(SPS_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsInvariantError) {
  EXPECT_THROW(SPS_CHECK(false), InvariantError);
}

TEST(Check, MessageIncludesExpressionAndText) {
  try {
    SPS_CHECK_MSG(false, "custom context " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniformInt(5, 4), InvariantError);
}

TEST(Rng, LogUniformInRange) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.logUniform(10.0, 1000.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 1000.0);
  }
}

TEST(Rng, LogUniformMedianIsGeometricMean) {
  Rng rng(23);
  Samples s;
  for (int i = 0; i < 20000; ++i) s.add(rng.logUniform(10.0, 1000.0));
  EXPECT_NEAR(s.median(), 100.0, 8.0);  // geometric mean of 10 and 1000
}

TEST(Rng, LogUniformIntBounds) {
  Rng rng(29);
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.logUniformInt(2, 8);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 8);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(41);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(47);
  const double w[3] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weightedIndex(w, 3)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexRejectsZeroTotal) {
  Rng rng(53);
  const double w[2] = {0.0, 0.0};
  EXPECT_THROW(rng.weightedIndex(w, 2), InvariantError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(59);
  Rng b = a.fork();
  // The fork consumed one draw; the two streams should differ immediately.
  EXPECT_NE(a.next(), b.next());
}

// --- stats -------------------------------------------------------------------

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, EmptyThrowsOnMean) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_THROW(acc.mean(), InvariantError);
  EXPECT_THROW(acc.min(), InvariantError);
  EXPECT_THROW(acc.max(), InvariantError);
}

TEST(Accumulator, SingleSampleVarianceZero) {
  Accumulator acc;
  acc.add(7.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  Accumulator all, left, right;
  Rng rng(61);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5, 5);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  Accumulator b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Samples, PercentilesExact) {
  Samples s;
  for (int i = 10; i >= 1; --i) s.add(i);  // 1..10 unsorted
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.5);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.mean(), InvariantError);
  EXPECT_THROW(s.percentile(50), InvariantError);
}

TEST(Samples, PercentileRejectsOutOfRange) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), InvariantError);
  EXPECT_THROW(s.percentile(101), InvariantError);
}

TEST(Samples, AddAfterQueryResorts) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Samples, ValuesKeepSubmissionOrderAcrossQueries) {
  // Regression: percentile/min/max used to sort the exposed vector in
  // place, so values() silently flipped from submission order to sorted
  // order after the first statistics query. The order is now pinned.
  Samples s;
  const std::vector<double> submitted = {5.0, 1.0, 9.0, 3.0, 7.0};
  for (const double v : submitted) s.add(v);
  EXPECT_EQ(s.values(), submitted);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.values(), submitted) << "queries must not reorder values()";
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);
  std::vector<double> extended = submitted;
  extended.push_back(2.0);
  EXPECT_EQ(s.values(), extended);
}

// --- table -------------------------------------------------------------------

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("a").cell(1.5, 1);
  t.row().cell("longer").cell(std::int64_t{42});
  const std::string out = t.toAscii();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.row().cell("x,y").cell("quote\"inside");
  const std::string csv = t.toCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("one");
  EXPECT_THROW(t.cell("two"), InvariantError);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"c"});
  EXPECT_THROW(t.cell("x"), InvariantError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table(std::vector<std::string>{}), InvariantError);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(2.0, 0), "2");
  EXPECT_EQ(formatFixed(-1.005, 1), "-1.0");
}

TEST(FormatDuration, Shapes) {
  EXPECT_EQ(formatDuration(4), "4s");
  EXPECT_EQ(formatDuration(65), "1m 05s");
  EXPECT_EQ(formatDuration(3600), "1h 00m 00s");
  EXPECT_EQ(formatDuration(3661), "1h 01m 01s");
}

// --- log ---------------------------------------------------------------------

TEST(Log, LevelGateWorks) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::Error);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  // Below threshold: must not emit (no crash, no observable side effect).
  SPS_LOG_DEBUG("this must be gated");
  setLogLevel(before);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(logLevelName(LogLevel::Info), "INFO");
  EXPECT_STREQ(logLevelName(LogLevel::Error), "ERROR");
}

}  // namespace
}  // namespace sps
