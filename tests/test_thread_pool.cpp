// Unit tests: util::ThreadPool — task execution, exception propagation,
// shutdown draining, oversubscription.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace sps::util {
namespace {

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
  ThreadPool pool;
  EXPECT_EQ(pool.size(), ThreadPool::defaultThreadCount());
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RunsEveryTaskManyMoreTasksThanThreads) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ReturnsTaskValues) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 41 + 1; });
  auto f2 = pool.submit([] { return std::string("hello"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "hello");
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW((void)bad.get(), std::runtime_error);
}

TEST(ThreadPool, OneFailureDoesNotPoisonOtherTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      if (i == 5) throw std::logic_error("boom");
      ++counter;
    }));
  }
  int failures = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::logic_error&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(counter.load(), 19);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);  // single worker: tasks queue up behind the sleeper
    futures.push_back(pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }));
    for (int i = 0; i < 10; ++i)
      futures.push_back(pool.submit([&counter] { ++counter; }));
  }  // ~ThreadPool must run all 10 queued increments before joining
  EXPECT_EQ(counter.load(), 10);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  std::mutex futuresMutex;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto f = pool.submit([&counter] { ++counter; });
        std::lock_guard<std::mutex> lock(futuresMutex);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace sps::util
