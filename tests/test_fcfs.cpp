// Unit tests: FCFS scheduling.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sched/fcfs.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {
namespace {

using test::J;
using test::makeTrace;

TEST(Fcfs, RunsJobsInOrder) {
  FcfsScheduler policy;
  const auto trace = makeTrace(4, {{0, 100, 4}, {1, 10, 4}, {2, 10, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).firstStart, 0);
  EXPECT_EQ(s.exec(1).firstStart, 100);
  EXPECT_EQ(s.exec(2).firstStart, 110);
}

TEST(Fcfs, HeadOfLineBlocksSmallerJobs) {
  // Classic FCFS fragmentation: a wide head job leaves narrow followers
  // waiting even though processors are idle.
  FcfsScheduler policy;
  const auto trace = makeTrace(4, {{0, 100, 3}, {1, 100, 4}, {2, 10, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  // Job 2 (1 proc) could have run at t=2 next to job 0 (3 procs), but FCFS
  // holds it behind the 4-proc job 1.
  EXPECT_EQ(s.exec(1).firstStart, 100);
  EXPECT_EQ(s.exec(2).firstStart, 200);
}

TEST(Fcfs, ConcurrentJobsSharemachine) {
  FcfsScheduler policy;
  const auto trace = makeTrace(8, {{0, 100, 4}, {0, 100, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).firstStart, 0);
  EXPECT_EQ(s.exec(1).firstStart, 0);
}

TEST(Fcfs, DrainsLongQueue) {
  FcfsScheduler policy;
  std::vector<J> jobs;
  for (int i = 0; i < 50; ++i)
    jobs.push_back({i, 10, 4});
  const auto trace = makeTrace(4, jobs);
  sim::Simulator s(trace, policy);
  s.run();
  // Strictly serial: each starts when the previous finishes.
  for (JobId i = 1; i < 50; ++i)
    EXPECT_EQ(s.exec(i).firstStart, s.exec(i - 1).finish);
}

TEST(Fcfs, NoSuspensionsEver) {
  FcfsScheduler policy;
  const auto trace = makeTrace(8, {{0, 50, 2}, {5, 50, 8}, {9, 50, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.totalSuspensions(), 0u);
}

}  // namespace
}  // namespace sps::sched
