// Regression and gap-coverage tests: primitives added during the
// reproduction effort (bounded Pareto sampling, preferring allocation,
// migrating resume, the state-change hook, steady-state utilization) and
// pinned-down bugs (same-instant completion cascades in conservative
// backfilling, IS grant livelock).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/simulation.hpp"
#include "helpers.hpp"
#include "metrics/collector.hpp"
#include "sched/conservative.hpp"
#include "sched/immediate_service.hpp"
#include "sched/overhead.hpp"
#include "sim/machine.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/synthetic.hpp"

namespace sps {
namespace {

using test::J;
using test::ScriptedPolicy;
using test::makeTrace;

// --- Rng::boundedPareto -------------------------------------------------------

TEST(BoundedPareto, StaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.boundedPareto(10.0, 400.0, 2.5);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 400.0);
  }
}

TEST(BoundedPareto, AlphaOneIsLogUniform) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.boundedPareto(2.0, 64.0, 1.0), b.logUniform(2.0, 64.0));
}

TEST(BoundedPareto, LargerAlphaShiftsMassDown) {
  double prevMedian = 1e18;
  for (double alpha : {1.0, 2.0, 3.0, 4.0}) {
    Rng rng(7);
    Samples s;
    for (int i = 0; i < 20000; ++i)
      s.add(rng.boundedPareto(33.0, 430.0, alpha));
    EXPECT_LT(s.median(), prevMedian) << "alpha=" << alpha;
    prevMedian = s.median();
  }
}

TEST(BoundedPareto, IntVariantInclusiveBounds) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 50000; ++i) {
    const auto v = rng.boundedParetoInt(2, 8, 1.2);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 8);
    sawLo |= v == 2;
    sawHi |= v == 8;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(BoundedPareto, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW((void)rng.boundedPareto(0.0, 10.0, 2.0), InvariantError);
  EXPECT_THROW((void)rng.boundedPareto(10.0, 10.0, 2.0), InvariantError);
  EXPECT_THROW((void)rng.boundedPareto(1.0, 10.0, 0.5), InvariantError);
}

// --- Machine::allocatePreferring -----------------------------------------------

TEST(AllocatePreferring, AvoidsWhenPossible) {
  sim::Machine m(16);
  const sim::ProcSet avoid = sim::ProcSet::firstN(8);
  const sim::ProcSet got = m.allocatePreferring(8, avoid, sim::ProcSet{}, 0);
  EXPECT_FALSE(got.intersects(avoid));
  EXPECT_EQ(got.count(), 8u);
}

TEST(AllocatePreferring, DipsInOnlyForShortfall) {
  sim::Machine m(16);
  const sim::ProcSet avoid = sim::ProcSet::firstN(12);
  const sim::ProcSet got = m.allocatePreferring(8, avoid, sim::ProcSet{}, 0);
  EXPECT_EQ(got.count(), 8u);
  // 4 non-avoided processors exist (12-15); the shortfall of 4 comes from
  // the avoided set.
  EXPECT_EQ((got & avoid).count(), 4u);
  EXPECT_EQ((got - avoid).count(), 4u);
}

TEST(AllocatePreferring, FullOverlapStillAllocates) {
  sim::Machine m(8);
  const sim::ProcSet avoid = sim::ProcSet::firstN(8);
  const sim::ProcSet got = m.allocatePreferring(8, avoid, sim::ProcSet{}, 0);
  EXPECT_EQ(got.count(), 8u);
}

TEST(AllocatePreferring, InsufficientFreeThrows) {
  sim::Machine m(8);
  m.allocate(6, 0);
  EXPECT_THROW((void)m.allocatePreferring(4, sim::ProcSet{}, sim::ProcSet{}, 0),
               InvariantError);
}

// Found by sps_fuzz (seed 2829767830633408312, ss:1.5, Incremental): when
// the shortfall path had to dip into avoided processors, the merged
// soft|hard avoid set let it hand out FENCED processors even though
// soft-avoided ones sufficed. The fence must never be touched.
TEST(AllocatePreferring, ShortfallNeverTakesHardFence) {
  sim::Machine m(16);
  const sim::ProcSet hard = sim::ProcSet::firstN(4);        // procs 0-3
  sim::ProcSet soft = sim::ProcSet::firstN(12) - hard;      // procs 4-11
  // Only 4 procs (12-15) are outside both sets; asking for 8 forces the
  // shortfall path. Pre-fix, .lowest() on the merged set returned 0-3.
  const sim::ProcSet got = m.allocatePreferring(8, soft, hard, 0);
  EXPECT_EQ(got.count(), 8u);
  EXPECT_FALSE(got.intersects(hard));
  EXPECT_EQ((got & soft).count(), 4u);
}

TEST(AllocatePreferring, InsufficientUnfencedThrows) {
  sim::Machine m(8);
  EXPECT_THROW(
      (void)m.allocatePreferring(6, sim::ProcSet{}, sim::ProcSet::firstN(4), 0),
      InvariantError);
}

// --- Simulator::resumeJobMigrating ----------------------------------------------

TEST(ResumeMigrating, MovesToFreeProcessors) {
  const auto trace = makeTrace(12, {{0, 100, 4}, {0, 100, 4}});
  ScriptedPolicy policy;
  policy.arrival = [](sim::Simulator& s, JobId j) {
    s.startJob(j);
    if (j == 1) s.scheduleTimer(10, 1);
  };
  policy.timer = [](sim::Simulator& s, std::uint64_t) {
    // Suspend job 0 (procs {0-3}); job 1 holds {4-7}; {8-11} free. Block
    // {0,1} with a hard avoid set to force job 0 onto new processors.
    s.suspendJob(0);
    s.resumeJobMigrating(0, sim::ProcSet::firstN(2));
    EXPECT_FALSE(s.exec(0).procs.contains(0));
    EXPECT_FALSE(s.exec(0).procs.contains(1));
    EXPECT_EQ(s.exec(0).procs.count(), 4u);
  };
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.state(0), sim::JobState::Finished);
}

TEST(ResumeMigrating, RequiresSuspendedState) {
  const auto trace = makeTrace(8, {{0, 100, 4}});
  ScriptedPolicy policy;
  policy.arrival = [](sim::Simulator& s, JobId j) {
    EXPECT_THROW(s.resumeJobMigrating(j, sim::ProcSet{}), InvariantError);
    s.startJob(j);
  };
  sim::Simulator s(trace, policy);
  s.run();
}

// --- state-change hook -----------------------------------------------------------

TEST(StateHook, ObservesFullLifecycle) {
  const auto trace = makeTrace(8, {{0, 100, 4}});
  ScriptedPolicy policy;
  policy.arrival = [](sim::Simulator& s, JobId j) {
    s.startJob(j);
    s.scheduleTimer(40, 1);
  };
  policy.timer = [](sim::Simulator& s, std::uint64_t) {
    s.suspendJob(0);
    s.resumeJob(0);
  };
  std::vector<std::pair<sim::JobState, sim::JobState>> transitions;
  sim::Simulator s(trace, policy);
  s.observers().onStateChange([&](const sim::Simulator&, JobId,
                                  sim::JobState from, sim::JobState to) {
    transitions.emplace_back(from, to);
  });
  s.run();
  using S = sim::JobState;
  const std::vector<std::pair<S, S>> expected = {
      {S::NotArrived, S::Queued},   {S::Queued, S::Running},
      {S::Running, S::Suspended},   {S::Suspended, S::Running},
      {S::Running, S::Finished}};
  EXPECT_EQ(transitions, expected);
}

TEST(StateHook, SeesDrainPhaseWithOverhead) {
  const auto trace = makeTrace(8, {{0, 100, 4}});
  sched::FixedOverhead overhead(20, 20);
  ScriptedPolicy policy;
  policy.arrival = [](sim::Simulator& s, JobId j) {
    s.startJob(j);
    s.scheduleTimer(40, 1);
  };
  policy.timer = [](sim::Simulator& s, std::uint64_t) { s.suspendJob(0); };
  policy.drained = [](sim::Simulator& s, JobId j) { s.resumeJob(j); };
  bool sawSuspending = false, sawDrained = false;
  sim::Simulator::Config config;
  config.overhead = &overhead;
  sim::Simulator s(trace, policy, config);
  s.observers().onStateChange([&](const sim::Simulator&, JobId,
                                  sim::JobState from, sim::JobState to) {
    sawSuspending |= to == sim::JobState::Suspending;
    sawDrained |= from == sim::JobState::Suspending &&
                  to == sim::JobState::Suspended;
  });
  s.run();
  EXPECT_TRUE(sawSuspending);
  EXPECT_TRUE(sawDrained);
}

// --- steady-state utilization -----------------------------------------------------

TEST(SteadyUtilization, CountsOnlyTheArrivalWindow) {
  // Jobs at t=0 and t=100 (4 procs each, 200 s runtime, 8-proc machine):
  // the arrival window is [0, 100]; both busy integrals are known exactly.
  const auto trace = makeTrace(8, {{0, 200, 4}, {100, 200, 4}});
  ScriptedPolicy policy;
  sim::Simulator s(trace, policy);
  s.run();
  // Busy over [0,100]: job0 runs 4 procs the whole window = 400 proc-s.
  // (job1 starts exactly at t=100 — outside the integral.)
  EXPECT_DOUBLE_EQ(s.busyProcSecondsAtLastSubmit(), 400.0);
  const auto stats = metrics::collect(s, "x");
  EXPECT_DOUBLE_EQ(stats.steadyUtilization, 400.0 / (8.0 * 100.0));
}

TEST(SteadyUtilization, ZeroWindowIsZero) {
  const auto trace = makeTrace(8, {{0, 100, 4}, {0, 100, 4}});
  ScriptedPolicy policy;
  sim::Simulator s(trace, policy);
  s.run();
  const auto stats = metrics::collect(s, "x");
  EXPECT_DOUBLE_EQ(stats.steadyUtilization, 0.0);  // window has length 0
}

// --- pinned regressions -------------------------------------------------------------

TEST(Regression, ConservativeSameInstantCompletionCascade) {
  // Two running jobs ending at the same instant, with reservations anchored
  // exactly at that instant. Historically the profile padded still-running
  // jobs by 1 s and the re-anchoring CHECK fired ("guarantee regressed
  // 100 -> 101"). The deferral logic must ride out the cascade.
  sched::ConservativeBackfill policy;
  const auto trace = makeTrace(
      16, {{0, 100, 8, 100}, {0, 100, 8, 100}, {1, 50, 16}, {2, 50, 16}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(2).firstStart, 100);
  EXPECT_EQ(s.exec(3).firstStart, 150);
}

TEST(Regression, ConservativeLargeTraceNoOversubscription) {
  // The arrival-path variant of the same bug oversubscribed the profile on
  // big traces ("19 free, adding 38"). Just running to completion is the
  // assertion — the profile CHECKs internally.
  const auto trace = workload::generateTrace(workload::sdscConfig(2000, 31));
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Conservative;
  const auto stats = core::runSimulation(trace, spec);
  EXPECT_EQ(stats.jobs.size(), 2000u);
}

TEST(Regression, IsWideGrantUnderOverheadTerminates) {
  // The IS livelock: a wide job's immediate-service victims drained, the
  // greedy dispatcher resumed them instantly, and the grant retried forever.
  // The pending-grant fence must break the cycle.
  sched::IsConfig cfg;
  sched::ImmediateService policy(cfg);
  sched::FixedOverhead overhead(15, 15);
  std::vector<J> jobs;
  jobs.push_back({0, 4000, 5});
  jobs.push_back({0, 4000, 3});
  jobs.push_back({700, 300, 8});  // machine-wide: needs both victims
  for (int i = 0; i < 10; ++i) jobs.push_back({800 + i * 50, 100, 2});
  const auto trace = makeTrace(8, jobs);
  sim::Simulator::Config config;
  config.overhead = &overhead;
  sim::Simulator s(trace, policy, config);
  s.run();  // must terminate
  for (JobId i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(s.state(i), sim::JobState::Finished);
}

TEST(Regression, SuspendDuringReadBackChargesElapsedOnly) {
  // A job suspended in the middle of its resume read-back must charge only
  // the elapsed overhead (wait identity: TAT = runtime + wait + elapsed
  // read-back).
  const auto trace = makeTrace(8, {{0, 100, 4}});
  sched::FixedOverhead overhead(0, 50);
  ScriptedPolicy policy;
  policy.arrival = [](sim::Simulator& s, JobId j) {
    s.startJob(j);
    s.scheduleTimer(30, 1);   // suspend + resume (read-back 50 s starts)
    s.scheduleTimer(50, 2);   // suspend again: only 20 s of read-back done
    s.scheduleTimer(60, 3);   // final resume
  };
  policy.timer = [](sim::Simulator& s, std::uint64_t tag) {
    if (tag == 1) {
      s.suspendJob(0);
      s.resumeJob(0);
    } else if (tag == 2) {
      s.suspendJob(0);
      EXPECT_EQ(s.exec(0).resumeOverheadElapsed, 20);
      EXPECT_EQ(s.exec(0).remainingWork, 70);  // no work during read-back
    } else {
      s.resumeJob(0);
    }
  };
  sim::Simulator::Config config;
  config.overhead = &overhead;
  sim::Simulator s(trace, policy, config);
  s.run();
  const auto& x = s.exec(0);
  // Timeline: work 0-30 (30), read-back 30-50 (interrupted at 20 s),
  // suspended 50-60, read-back 60-110, work 110-180.
  EXPECT_EQ(x.finish, 180);
  EXPECT_EQ(x.resumeOverheadElapsed, 70);  // 20 partial + 50 full
  EXPECT_EQ(s.accumulatedWait(0) + 100 + x.resumeOverheadElapsed, x.finish);
}

}  // namespace
}  // namespace sps
