// Chaos fuzzing: a policy that takes random (but legal) actions against the
// simulator, checking that the kernel's invariants hold under arbitrary
// interleavings of start/suspend/resume/migrate — far beyond what any
// well-behaved scheduler exercises.
#include <gtest/gtest.h>

#include <vector>

#include "check/invariants.hpp"
#include "helpers.hpp"
#include "metrics/collector.hpp"
#include "sched/overhead.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sps {
namespace {

using test::J;
using test::makeTrace;

/// Acts randomly on every event: maybe start queued jobs, maybe suspend a
/// running job, maybe resume (locally or migrating). Guarantees progress so
/// the run terminates: with no running jobs it always starts/resumes
/// something startable.
class ChaosPolicy final : public sim::SchedulingPolicy {
 public:
  explicit ChaosPolicy(std::uint64_t seed, bool allowMigration)
      : rng_(seed), allowMigration_(allowMigration) {}

  [[nodiscard]] std::string name() const override { return "chaos"; }

  void onJobArrival(sim::Simulator& s, JobId) override { act(s); }
  void onJobCompletion(sim::Simulator& s, JobId) override { act(s); }
  void onSuspendDrained(sim::Simulator& s, JobId) override { act(s); }
  void onTimer(sim::Simulator& s, std::uint64_t) override { act(s); }

 private:
  void act(sim::Simulator& s) {
    s.auditState();
    // Random suspensions (bounded so work still progresses).
    if (!s.runningJobs().empty() && rng_.bernoulli(0.3)) {
      const auto& running = s.runningJobs();
      const JobId victim = running[static_cast<std::size_t>(
          rng_.uniformInt(0, static_cast<std::int64_t>(running.size()) - 1))];
      // Cap per-job suspensions so the chaos converges.
      if (s.exec(victim).suspendCount < 8) s.suspendJob(victim);
    }
    // Random resumes.
    std::vector<JobId> suspended(s.suspendedJobs());
    for (JobId id : suspended) {
      if (s.state(id) != sim::JobState::Suspended) continue;
      if (!rng_.bernoulli(0.5)) continue;
      if (allowMigration_ && rng_.bernoulli(0.5)) {
        if (s.freeCount() >= s.job(id).procs)
          s.resumeJobMigrating(id, sim::ProcSet{});
      } else if (s.exec(id).procs.isSubsetOf(s.freeSet())) {
        s.resumeJob(id);
      }
    }
    // Random starts.
    std::vector<JobId> queued(s.queuedJobs());
    for (JobId id : queued) {
      if (s.job(id).procs <= s.freeCount() && rng_.bernoulli(0.7))
        s.startJob(id);
    }
    ensureProgress(s);
    s.auditState();
  }

  /// If nothing runs and nothing drains, force something in so the event
  /// queue cannot empty with unfinished jobs.
  void ensureProgress(sim::Simulator& s) {
    if (!s.runningJobs().empty()) return;
    bool draining = false;
    for (JobId id : s.suspendedJobs())
      draining |= s.state(id) == sim::JobState::Suspending;
    if (draining) return;
    for (JobId id : std::vector<JobId>(s.suspendedJobs())) {
      if (s.state(id) == sim::JobState::Suspended &&
          s.exec(id).procs.isSubsetOf(s.freeSet())) {
        s.resumeJob(id);
        return;
      }
    }
    for (JobId id : std::vector<JobId>(s.queuedJobs())) {
      if (s.job(id).procs <= s.freeCount()) {
        s.startJob(id);
        return;
      }
    }
    // Everything left is suspended with occupied processors — impossible
    // here because nothing is running; free the logjam by migrating.
    for (JobId id : std::vector<JobId>(s.suspendedJobs())) {
      if (s.state(id) == sim::JobState::Suspended &&
          s.job(id).procs <= s.freeCount()) {
        s.resumeJobMigrating(id, sim::ProcSet{});
        return;
      }
    }
  }

  Rng rng_;
  bool allowMigration_;
};

struct ChaosCase {
  std::uint64_t seed;
  bool migration;
  bool overhead;
};

class ChaosFuzz : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosFuzz, KernelInvariantsSurviveRandomActions) {
  const auto& param = GetParam();
  Rng traceRng(param.seed * 1000003);
  std::vector<J> jobs;
  Time t = 0;
  for (int i = 0; i < 80; ++i) {
    t += traceRng.uniformInt(0, 200);
    jobs.push_back({t, traceRng.uniformInt(1, 1500),
                    static_cast<std::uint32_t>(traceRng.uniformInt(1, 12)),
                    0, static_cast<std::uint32_t>(traceRng.uniformInt(1, 32))});
  }
  const auto trace = makeTrace(12, jobs);

  ChaosPolicy policy(param.seed, param.migration);
  sched::DiskSwapOverhead overhead(trace, 32.0);
  sim::Simulator::Config config;
  if (param.overhead) config.overhead = &overhead;
  sim::Simulator s(trace, policy, config);
  // The full invariant oracle rides along at stride 1: chaos interleavings
  // must satisfy capacity/conservation like any well-behaved scheduler.
  // (ChaosPolicy exposes no guarantee/TSS/ledger probes, so those layers
  // arm as no-ops.)
  check::InvariantChecker checker(check::CheckConfig::all(1));
  checker.arm(s, policy);
  s.run();
  checker.finalize(s);
  EXPECT_GT(checker.epochAudits(), 0u);
  s.auditState();

  for (const auto& j : trace.jobs) {
    const auto& x = s.exec(j.id);
    EXPECT_EQ(s.state(j.id), sim::JobState::Finished);
    EXPECT_EQ(x.remainingWork, 0);
    EXPECT_GE(x.finish, j.submit + j.runtime);
    EXPECT_EQ(s.accumulatedWait(j.id) + j.runtime + x.resumeOverheadElapsed,
              x.finish - j.submit);
  }
  // Collector must accept whatever the chaos produced.
  const auto stats = metrics::collect(s, "chaos");
  EXPECT_EQ(stats.jobs.size(), trace.jobs.size());
  EXPECT_GE(stats.utilization, 0.0);
  EXPECT_LE(stats.utilization, 1.0 + 1e-9);
}

std::string chaosName(const ::testing::TestParamInfo<ChaosCase>& info) {
  std::string name = "seed" + std::to_string(info.param.seed);
  if (info.param.migration) name += "_mig";
  if (info.param.overhead) name += "_oh";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ChaosFuzz,
    ::testing::Values(ChaosCase{1, false, false}, ChaosCase{2, false, false},
                      ChaosCase{3, false, false}, ChaosCase{4, true, false},
                      ChaosCase{5, true, false}, ChaosCase{6, false, true},
                      ChaosCase{7, false, true}, ChaosCase{8, true, true},
                      ChaosCase{9, true, true}, ChaosCase{10, true, true}),
    chaosName);

}  // namespace
}  // namespace sps
