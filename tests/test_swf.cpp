// Unit tests: SWF parsing and writing.
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "workload/swf.hpp"

namespace sps::workload {
namespace {

const char* kSample =
    "; Comment line\n"
    ";MaxProcs: 128\n"
    "\n"
    "1 100 5 300 4 -1 2048 4 600 -1 1 1 1 -1 1 -1 -1 -1\n"
    "2 150 0 50 1 -1 -1 1 100 -1 1 2 1 -1 1 -1 -1 -1\n";

TEST(Swf, ParsesBasicFields) {
  std::istringstream in(kSample);
  SwfReadStats stats;
  const Trace t = readSwf(in, "sample", 128, &stats);
  ASSERT_EQ(t.jobs.size(), 2u);
  EXPECT_EQ(stats.jobsAccepted, 2u);
  EXPECT_EQ(t.machineProcs, 128u);
  // normalizeTrace shifts submits so the first is 0.
  EXPECT_EQ(t.jobs[0].submit, 0);
  EXPECT_EQ(t.jobs[0].runtime, 300);
  EXPECT_EQ(t.jobs[0].procs, 4u);
  EXPECT_EQ(t.jobs[0].estimate, 600);
  EXPECT_EQ(t.jobs[0].memoryMb, 2u);  // 2048 KB -> 2 MB
  EXPECT_EQ(t.jobs[1].submit, 50);
  EXPECT_EQ(t.jobs[1].procs, 1u);
}

TEST(Swf, SkipsCommentsAndBlanks) {
  std::istringstream in("; only comments\n\n;\n");
  SwfReadStats stats;
  const Trace t = readSwf(in, "empty", 64, &stats);
  EXPECT_TRUE(t.jobs.empty());
  EXPECT_EQ(stats.linesRead, 0u);
}

TEST(Swf, DropsNonPositiveRuntime) {
  std::istringstream in(
      "1 0 -1 0 4 -1 -1 4 600 -1 0 1 1 -1 1 -1 -1 -1\n"
      "2 10 -1 -1 4 -1 -1 4 600 -1 5 1 1 -1 1 -1 -1 -1\n"
      "3 20 -1 30 4 -1 -1 4 600 -1 1 1 1 -1 1 -1 -1 -1\n");
  SwfReadStats stats;
  const Trace t = readSwf(in, "drops", 64, &stats);
  EXPECT_EQ(t.jobs.size(), 1u);
  EXPECT_EQ(stats.droppedNonPositiveRuntime, 2u);
}

TEST(Swf, DropsNonPositiveProcs) {
  std::istringstream in("1 0 -1 100 -1 -1 -1 -1 600 -1 1 1 1 -1 1 -1 -1 -1\n");
  SwfReadStats stats;
  const Trace t = readSwf(in, "drops", 64, &stats);
  EXPECT_TRUE(t.jobs.empty());
  EXPECT_EQ(stats.droppedNonPositiveProcs, 1u);
}

TEST(Swf, DropsJobsWiderThanMachine) {
  std::istringstream in("1 0 -1 100 80 -1 -1 80 600 -1 1 1 1 -1 1 -1 -1 -1\n");
  SwfReadStats stats;
  const Trace t = readSwf(in, "wide", 64, &stats);
  EXPECT_TRUE(t.jobs.empty());
  EXPECT_EQ(stats.droppedTooWide, 1u);
}

TEST(Swf, FallsBackToRequestedProcs) {
  std::istringstream in("1 0 -1 100 -1 -1 -1 16 600 -1 1 1 1 -1 1 -1 -1 -1\n");
  const Trace t = readSwf(in, "fallback", 64, nullptr);
  ASSERT_EQ(t.jobs.size(), 1u);
  EXPECT_EQ(t.jobs[0].procs, 16u);
}

TEST(Swf, ClampsEstimateUpToRuntime) {
  // Requested time 50 < runtime 100: clamp (kill-at-limit consistency).
  std::istringstream in("1 0 -1 100 4 -1 -1 4 50 -1 1 1 1 -1 1 -1 -1 -1\n");
  SwfReadStats stats;
  const Trace t = readSwf(in, "clamp", 64, &stats);
  ASSERT_EQ(t.jobs.size(), 1u);
  EXPECT_EQ(t.jobs[0].estimate, 100);
  EXPECT_EQ(stats.estimatesClamped, 1u);
}

TEST(Swf, MissingEstimateDefaultsToRuntime) {
  std::istringstream in("1 0 -1 100 4 -1 -1 4 -1 -1 1 1 1 -1 1 -1 -1 -1\n");
  const Trace t = readSwf(in, "noest", 64, nullptr);
  ASSERT_EQ(t.jobs.size(), 1u);
  EXPECT_EQ(t.jobs[0].estimate, 100);
}

TEST(Swf, ShortLineThrows) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(readSwf(in, "bad", 64, nullptr), InputError);
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(readSwfFile("/nonexistent/file.swf", "x", 64, nullptr),
               InputError);
}

TEST(Swf, WriteReadRoundTrip) {
  Trace t;
  t.name = "round";
  t.machineProcs = 64;
  for (int i = 0; i < 5; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.submit = i * 100;
    j.runtime = 50 + i;
    j.estimate = 100 + i;
    j.procs = static_cast<std::uint32_t>(1 + i);
    j.memoryMb = 256;
    t.jobs.push_back(j);
  }
  std::ostringstream out;
  writeSwf(out, t);
  std::istringstream in(out.str());
  const Trace back = readSwf(in, "round", 64, nullptr);
  ASSERT_EQ(back.jobs.size(), t.jobs.size());
  for (std::size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].submit, t.jobs[i].submit);
    EXPECT_EQ(back.jobs[i].runtime, t.jobs[i].runtime);
    EXPECT_EQ(back.jobs[i].estimate, t.jobs[i].estimate);
    EXPECT_EQ(back.jobs[i].procs, t.jobs[i].procs);
    EXPECT_EQ(back.jobs[i].memoryMb, t.jobs[i].memoryMb);
  }
}

TEST(Swf, ResultIsValidatedTrace) {
  // Out-of-order submits in the file must come back normalized.
  std::istringstream in(
      "1 500 -1 100 4 -1 -1 4 100 -1 1 1 1 -1 1 -1 -1 -1\n"
      "2 100 -1 100 4 -1 -1 4 100 -1 1 1 1 -1 1 -1 -1 -1\n");
  const Trace t = readSwf(in, "order", 64, nullptr);
  EXPECT_NO_THROW(validateTrace(t));
  EXPECT_EQ(t.jobs[0].submit, 0);
  EXPECT_EQ(t.jobs[1].submit, 400);
}

}  // namespace
}  // namespace sps::workload
