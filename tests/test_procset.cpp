// Unit tests: sim::ProcSet.
#include <gtest/gtest.h>

#include <vector>

#include "sim/procset.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sps::sim {
namespace {

TEST(ProcSet, DefaultIsEmpty) {
  ProcSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
}

TEST(ProcSet, InsertEraseContains) {
  ProcSet s;
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(1023);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(1023));
  EXPECT_FALSE(s.contains(1));
  s.erase(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.count(), 3u);
}

TEST(ProcSet, FirstNShapes) {
  EXPECT_EQ(ProcSet::firstN(0).count(), 0u);
  EXPECT_EQ(ProcSet::firstN(1).count(), 1u);
  EXPECT_EQ(ProcSet::firstN(64).count(), 64u);
  EXPECT_EQ(ProcSet::firstN(65).count(), 65u);
  EXPECT_EQ(ProcSet::firstN(430).count(), 430u);
  EXPECT_EQ(ProcSet::firstN(1024).count(), 1024u);
  const ProcSet s = ProcSet::firstN(100);
  EXPECT_TRUE(s.contains(99));
  EXPECT_FALSE(s.contains(100));
}

TEST(ProcSet, FirstNBeyondInlineBits) {
  const ProcSet s = ProcSet::firstN(ProcSet::kInlineBits + 1);
  EXPECT_EQ(s.count(), ProcSet::kInlineBits + 1);
  EXPECT_TRUE(s.contains(ProcSet::kInlineBits));
  EXPECT_FALSE(s.contains(ProcSet::kInlineBits + 1));
  const ProcSet big = ProcSet::firstN(100'000);
  EXPECT_EQ(big.count(), 100'000u);
  EXPECT_TRUE(big.contains(99'999));
  EXPECT_FALSE(big.contains(100'000));
}

TEST(ProcSet, LargeSetInsertEraseAcrossBoundary) {
  ProcSet s;
  for (std::uint32_t p : {1023u, 1024u, 4096u, 65'535u, 99'999u}) s.insert(p);
  EXPECT_EQ(s.count(), 5u);
  for (std::uint32_t p : {1023u, 1024u, 4096u, 65'535u, 99'999u})
    EXPECT_TRUE(s.contains(p));
  EXPECT_FALSE(s.contains(1025));
  s.erase(4096);
  s.erase(99'999);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_FALSE(s.contains(4096));
  s.erase(1024);
  s.erase(65'535);
  s.erase(1023);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s, ProcSet{});
}

TEST(ProcSet, LargeSetEqualityIsHistoryIndependent) {
  // Canonical trimming: the same member set must compare equal no matter
  // which operations built it (windows grown high-to-low, low-to-high, or
  // carved out of a larger set).
  ProcSet up, down;
  for (std::uint32_t p : {2000u, 50'000u, 90'000u}) up.insert(p);
  for (std::uint32_t p : {90'000u, 50'000u, 2000u}) down.insert(p);
  EXPECT_EQ(up, down);
  ProcSet carved = ProcSet::firstN(100'000);
  carved &= up;
  EXPECT_EQ(carved, up);
  ProcSet wide = up;
  wide.insert(99'000);
  wide.erase(99'000);
  EXPECT_EQ(wide, up);
  wide.insert(1500);
  wide.erase(1500);
  EXPECT_EQ(wide, up);
}

TEST(ProcSet, LargeSetLowestSpansBoundary) {
  const ProcSet all = ProcSet::firstN(3000);
  EXPECT_EQ(all.lowest(1024), ProcSet::firstN(1024));
  EXPECT_EQ(all.lowest(2000), ProcSet::firstN(2000));
  EXPECT_EQ(all.lowest(3000), all);
  ProcSet sparse;
  for (std::uint32_t p = 0; p < 3000; p += 100) sparse.insert(p);
  const ProcSet low = sparse.lowest(15);
  EXPECT_EQ(low.count(), 15u);
  EXPECT_TRUE(low.contains(1400));
  EXPECT_FALSE(low.contains(1500));
}

TEST(ProcSet, LargeSetFirstAndForEach) {
  ProcSet s;
  s.insert(70'000);
  EXPECT_EQ(s.first(), 70'000u);
  s.insert(1024);
  EXPECT_EQ(s.first(), 1024u);
  s.insert(5);
  EXPECT_EQ(s.first(), 5u);
  std::vector<std::uint32_t> seen;
  s.forEach([&](std::uint32_t p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{5, 1024, 70'000}));
  EXPECT_EQ(s.toString(), "{5,1024,70000}");
}

TEST(ProcSet, SetAlgebra) {
  ProcSet a, b;
  for (std::uint32_t i = 0; i < 10; ++i) a.insert(i);
  for (std::uint32_t i = 5; i < 15; ++i) b.insert(i);
  EXPECT_EQ((a | b).count(), 15u);
  EXPECT_EQ((a & b).count(), 5u);
  EXPECT_EQ((a - b).count(), 5u);
  EXPECT_TRUE((a - b).contains(0));
  EXPECT_FALSE((a - b).contains(5));
  EXPECT_TRUE((a & b).contains(7));
}

TEST(ProcSet, CompoundAssignmentMatchesBinary) {
  ProcSet a, b;
  a.insert(3);
  a.insert(100);
  b.insert(100);
  b.insert(200);
  ProcSet u = a;
  u |= b;
  EXPECT_EQ(u, (a | b));
  ProcSet i = a;
  i &= b;
  EXPECT_EQ(i, (a & b));
  ProcSet d = a;
  d -= b;
  EXPECT_EQ(d, (a - b));
}

TEST(ProcSet, IntersectsAndSubset) {
  ProcSet a, b, c;
  a.insert(1);
  a.insert(2);
  b.insert(2);
  b.insert(3);
  c.insert(1);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(b.intersects(c));
  EXPECT_TRUE(c.isSubsetOf(a));
  EXPECT_FALSE(a.isSubsetOf(c));
  EXPECT_TRUE(ProcSet{}.isSubsetOf(a));
  EXPECT_FALSE(a.intersects(ProcSet{}));
}

TEST(ProcSet, LowestTakesSmallestIds) {
  ProcSet s;
  for (std::uint32_t p : {5u, 70u, 3u, 200u, 64u}) s.insert(p);
  const ProcSet low = s.lowest(3);
  EXPECT_EQ(low.count(), 3u);
  EXPECT_TRUE(low.contains(3));
  EXPECT_TRUE(low.contains(5));
  EXPECT_TRUE(low.contains(64));
  EXPECT_FALSE(low.contains(70));
}

TEST(ProcSet, LowestAllAndZero) {
  ProcSet s;
  s.insert(10);
  s.insert(20);
  EXPECT_EQ(s.lowest(2), s);
  EXPECT_TRUE(s.lowest(0).empty());
}

TEST(ProcSet, LowestTooManyThrows) {
  ProcSet s;
  s.insert(1);
  EXPECT_THROW((void)s.lowest(2), InvariantError);
}

TEST(ProcSet, FirstReturnsMinimum) {
  ProcSet s;
  s.insert(700);
  EXPECT_EQ(s.first(), 700u);
  s.insert(64);
  EXPECT_EQ(s.first(), 64u);
  s.insert(2);
  EXPECT_EQ(s.first(), 2u);
}

TEST(ProcSet, FirstOnEmptyThrows) {
  EXPECT_THROW((void)ProcSet{}.first(), InvariantError);
}

TEST(ProcSet, ForEachVisitsInOrder) {
  ProcSet s;
  const std::vector<std::uint32_t> expected = {0, 63, 64, 128, 1000};
  for (auto p : expected) s.insert(p);
  std::vector<std::uint32_t> seen;
  s.forEach([&](std::uint32_t p) { seen.push_back(p); });
  EXPECT_EQ(seen, expected);
}

TEST(ProcSet, ToStringRanges) {
  ProcSet s;
  for (std::uint32_t p : {0u, 1u, 2u, 3u, 7u, 12u, 13u, 14u, 15u}) s.insert(p);
  EXPECT_EQ(s.toString(), "{0-3,7,12-15}");
  EXPECT_EQ(ProcSet{}.toString(), "{}");
  ProcSet single;
  single.insert(5);
  EXPECT_EQ(single.toString(), "{5}");
}

TEST(ProcSet, EqualityIsStructural) {
  ProcSet a, b;
  a.insert(9);
  b.insert(9);
  EXPECT_EQ(a, b);
  b.insert(10);
  EXPECT_NE(a, b);
}

// Property sweep: algebra laws on random sets across word boundaries AND
// across the inline/window representation boundary (odd seeds draw from
// [0, 100k), so both modes participate in every identity).
class ProcSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProcSetProperty, AlgebraLaws) {
  Rng rng(GetParam());
  const std::int64_t hi = (GetParam() % 2 == 0) ? 1023 : 99'999;
  ProcSet a, b;
  for (int i = 0; i < 60; ++i) {
    a.insert(static_cast<std::uint32_t>(rng.uniformInt(0, hi)));
    b.insert(static_cast<std::uint32_t>(rng.uniformInt(0, hi)));
  }
  // De Morgan-ish identities expressible without complement:
  EXPECT_EQ(((a | b) - b), (a - b));
  EXPECT_EQ(((a & b) | (a - b)), a);
  EXPECT_EQ((a | b).count() + (a & b).count(), a.count() + b.count());
  EXPECT_TRUE((a & b).isSubsetOf(a));
  EXPECT_TRUE(a.isSubsetOf(a | b));
  EXPECT_EQ(a.intersects(b), !(a & b).empty());
  // lowest(k) is a k-subset whose members all precede every excluded member.
  const auto k = a.count() / 2;
  const ProcSet low = a.lowest(k);
  EXPECT_EQ(low.count(), k);
  EXPECT_TRUE(low.isSubsetOf(a));
  if (!low.empty() && !(a - low).empty()) {
    std::uint32_t maxLow = 0;
    low.forEach([&](std::uint32_t p) { maxLow = p; });
    EXPECT_LT(maxLow, (a - low).first());
  }
}

TEST_P(ProcSetProperty, LowestIsPrefixOfIteration) {
  Rng rng(GetParam() * 7919);
  const std::int64_t hi = (GetParam() % 2 == 0) ? 1023 : 99'999;
  ProcSet a;
  for (int i = 0; i < 40; ++i)
    a.insert(static_cast<std::uint32_t>(rng.uniformInt(0, hi)));
  std::vector<std::uint32_t> all;
  a.forEach([&](std::uint32_t p) { all.push_back(p); });
  const auto k = static_cast<std::uint32_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(all.size())));
  std::vector<std::uint32_t> low;
  a.lowest(k).forEach([&](std::uint32_t p) { low.push_back(p); });
  ASSERT_EQ(low.size(), k);
  for (std::uint32_t i = 0; i < k; ++i) EXPECT_EQ(low[i], all[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcSetProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace sps::sim
