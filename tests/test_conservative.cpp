// Unit tests: conservative backfilling (Section II-A.1).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sched/conservative.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {
namespace {

using test::J;
using test::makeTrace;

TEST(Conservative, BackfillsIntoHole) {
  // Machine 4. Job0: 3 procs, 100 s. Job1: 4 procs -> reserved at 100.
  // Job2: 1 proc, 50 s — fits beside job0 without delaying job1.
  ConservativeBackfill policy;
  const auto trace = makeTrace(4, {{0, 100, 3}, {1, 100, 4}, {2, 50, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(2).firstStart, 2);     // backfilled immediately
  EXPECT_EQ(s.exec(1).firstStart, 100);   // reservation honoured
}

TEST(Conservative, BackfillMustNotDelayAnyReservation) {
  // Job2 is small enough in procs but too long to finish before job1's
  // anchor; starting it would delay job1 -> it must wait.
  ConservativeBackfill policy;
  const auto trace = makeTrace(4, {{0, 100, 3}, {1, 100, 4}, {2, 200, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_GE(s.exec(2).firstStart, 100);  // not backfilled before job1
  EXPECT_EQ(s.exec(1).firstStart, 100);  // job1's guarantee intact
}

TEST(Conservative, LaterJobCannotDelayEarlierReservation) {
  // Three queued wide jobs get stacked reservations in order.
  ConservativeBackfill policy;
  const auto trace =
      makeTrace(4, {{0, 100, 4}, {1, 100, 4}, {2, 100, 4}, {3, 100, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 100);
  EXPECT_EQ(s.exec(2).firstStart, 200);
  EXPECT_EQ(s.exec(3).firstStart, 300);
}

TEST(Conservative, CompressionOnEarlyCompletion) {
  // Job0 estimates 1000 but actually runs 100: job1's reservation at 1000
  // must compress to 100 when job0 finishes.
  ConservativeBackfill policy;
  const auto trace = makeTrace(4, {{0, 100, 4, 1000}, {1, 50, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 100);
}

TEST(Conservative, CompressionPreservesOrderWhenNoHole) {
  // After early completion, released jobs re-anchor in guarantee order.
  ConservativeBackfill policy;
  const auto trace = makeTrace(
      4, {{0, 100, 4, 500}, {1, 100, 4}, {2, 100, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 100);
  EXPECT_EQ(s.exec(2).firstStart, 200);
}

TEST(Conservative, GuaranteeOfQueuedJobVisible) {
  ConservativeBackfill policy;
  const auto trace = makeTrace(4, {{0, 100, 4, 100}, {1, 50, 4}});
  Time guarantee = kNoTime;
  // Probe the guarantee mid-run via a scripted check at arrival of job 1:
  // easiest is to re-run the allocation logic: job1 should be anchored at
  // job0's estimated end (100).
  sim::Simulator s(trace, policy);
  s.run();
  guarantee = s.exec(1).firstStart;
  EXPECT_EQ(guarantee, 100);
  EXPECT_EQ(policy.guaranteeOf(1), kNoTime);  // consumed once started
}

TEST(Conservative, SequentialStreamKeepsMachineBusy) {
  // Narrow jobs should pack the machine tightly (no FCFS blocking).
  ConservativeBackfill policy;
  std::vector<J> jobs;
  for (int i = 0; i < 16; ++i) jobs.push_back({0, 100, 1});
  jobs.push_back({1, 100, 16});     // wide job reserved at 100
  for (int i = 0; i < 8; ++i) jobs.push_back({2, 50, 1});  // backfill? no:
  const auto trace = makeTrace(16, jobs);
  sim::Simulator s(trace, policy);
  s.run();
  // The 16 sequential jobs all start at 0.
  for (JobId i = 0; i < 16; ++i) EXPECT_EQ(s.exec(i).firstStart, 0);
  // The wide job starts exactly at 100.
  EXPECT_EQ(s.exec(16).firstStart, 100);
  // The trailing 50 s jobs cannot run before 100 (they would delay the wide
  // job: every processor is busy until then), so they follow it.
  for (JobId i = 17; i < 25; ++i) EXPECT_GE(s.exec(i).firstStart, 100);
}

TEST(Conservative, EstimateOverrunImpossibleByConstruction) {
  // estimate >= runtime is enforced by validateTrace; conservative relies on
  // it. A job finishing exactly at its estimate must not break anything.
  ConservativeBackfill policy;
  const auto trace = makeTrace(4, {{0, 100, 4, 100}, {0, 100, 4, 100}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).finish, 200);
}

TEST(Conservative, NoSuspensionsEver) {
  ConservativeBackfill policy;
  const auto trace = makeTrace(8, {{0, 50, 2}, {5, 50, 8}, {9, 50, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.totalSuspensions(), 0u);
}

}  // namespace
}  // namespace sps::sched
