// Unit + integration tests: core::Runner — determinism across thread counts,
// result ordering, hooks, error propagation, and the convenience wrappers
// (compareSchemes / loadSweep / replicate) that ride on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/progress.hpp"
#include "core/replicate.hpp"
#include "core/runner.hpp"
#include "helpers.hpp"
#include "metrics/json.hpp"
#include "obs/trace.hpp"
#include "obs/trace_sink.hpp"
#include "workload/synthetic.hpp"

namespace sps::core {
namespace {

std::vector<RunRequest> smallBatch(
    const std::shared_ptr<const workload::Trace>& trace) {
  std::vector<RunRequest> batch;
  std::size_t i = 0;
  for (const PolicySpec& spec : ssSchemeSet()) {
    RunRequest request;
    request.trace = trace;
    request.spec = spec;
    request.seed = i++;
    batch.push_back(std::move(request));
  }
  return batch;
}

/// The per-job-stats fingerprint of a batch: JSON is shortest-round-trip, so
/// byte-equal strings == bit-for-bit equal stats. Excludes wallSeconds.
std::vector<std::string> statsFingerprints(
    const std::vector<RunResult>& results) {
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const RunResult& r : results)
    out.push_back(metrics::runStatsJson(r.stats));
  return out;
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  const auto trace =
      shareTrace(workload::generateTrace(workload::sdscConfig(400, 17)));
  Runner one({.threads = 1});
  const auto baseline = statsFingerprints(one.runAll(smallBatch(trace)));
  ASSERT_EQ(baseline.size(), 5u);
  for (std::size_t threads : {2u, 8u}) {
    Runner runner({.threads = threads});
    const auto fingerprints =
        statsFingerprints(runner.runAll(smallBatch(trace)));
    ASSERT_EQ(fingerprints.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i)
      EXPECT_EQ(fingerprints[i], baseline[i])
          << "run " << i << " diverged at " << threads << " threads";
  }
}

TEST(Runner, ResultsOrderedByRequestIndex) {
  const auto trace =
      shareTrace(workload::generateTrace(workload::sdscConfig(200, 3)));
  Runner runner({.threads = 4});
  const auto results = runner.runAll(smallBatch(trace));
  ASSERT_EQ(results.size(), 5u);
  const auto specs = ssSchemeSet();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].seed, i);  // request echo preserved
    EXPECT_EQ(results[i].policyName, policyLabel(specs[i]));
    EXPECT_EQ(results[i].label, policyLabel(specs[i]));  // default label
    EXPECT_GE(results[i].wallSeconds, 0.0);
  }
}

TEST(Runner, EmptyBatch) {
  Runner runner({.threads = 4});
  EXPECT_TRUE(runner.runAll({}).empty());
}

TEST(Runner, RunOneEchoesRequestFields) {
  const auto trace = shareTrace(test::makeTrace(8, {{0, 100, 4}}));
  Runner runner({.threads = 1});
  RunRequest request;
  request.trace = trace;
  request.spec.kind = PolicyKind::Easy;
  request.seed = 99;
  request.label = "tagged";
  const RunResult result = runner.runOne(request);
  EXPECT_EQ(result.seed, 99u);
  EXPECT_EQ(result.label, "tagged");
  EXPECT_EQ(result.stats.jobs.size(), 1u);
}

TEST(Runner, MissingTraceThrowsFromAnyThreadCount) {
  for (std::size_t threads : {1u, 4u}) {
    Runner runner({.threads = threads});
    std::vector<RunRequest> batch(2);
    batch[0].trace =
        shareTrace(test::makeTrace(8, {{0, 50, 2}}));
    batch[0].spec.kind = PolicyKind::Easy;
    // batch[1].trace left null — the whole batch must surface the error.
    EXPECT_THROW((void)runner.runAll(std::move(batch)), InvariantError)
        << threads << " threads";
  }
}

TEST(Runner, HookSeesEveryRunSerialized) {
  const auto trace =
      shareTrace(workload::generateTrace(workload::sdscConfig(150, 5)));
  Runner runner({.threads = 4});
  // Plain (non-atomic) state: the hook contract says invocations are
  // serialized, so this is race-free — and TSan verifies that claim.
  std::vector<std::size_t> seen;
  runner.onRunComplete(
      [&seen](const RunResult& r) { seen.push_back(r.index); });
  const auto results = runner.runAll(smallBatch(trace));
  ASSERT_EQ(seen.size(), results.size());
  EXPECT_EQ(std::set<std::size_t>(seen.begin(), seen.end()).size(),
            results.size());  // every index exactly once, any order
}

TEST(Runner, WrappersMatchExplicitBatches) {
  const auto trace = workload::generateTrace(workload::sdscConfig(200, 7));
  const auto specs = worstCaseSchemeSet();

  Runner runner({.threads = 2});
  const auto viaWrapper = compareSchemes(runner, trace, specs);
  const auto shared = borrowTrace(trace);
  std::vector<RunRequest> batch;
  for (const PolicySpec& spec : specs) {
    RunRequest request;
    request.trace = shared;
    request.spec = spec;
    batch.push_back(std::move(request));
  }
  Runner direct({.threads = 2});
  const auto viaRunner = direct.runAll(std::move(batch));
  ASSERT_EQ(viaWrapper.size(), viaRunner.size());
  for (std::size_t i = 0; i < viaWrapper.size(); ++i)
    EXPECT_EQ(metrics::runStatsJson(viaWrapper[i]),
              metrics::runStatsJson(viaRunner[i].stats));
}

// Integration: regenerate one small figure sweep (the Fig. 13/14-style load
// sweep) through the Runner at several thread counts and require identical
// results — the parallel engine reproduces the paper pipeline exactly.
TEST(Runner, LoadSweepIdenticalAtAllThreadCounts) {
  const auto trace = workload::generateTrace(workload::sdscConfig(250, 21));
  const std::vector<double> factors = {1.0, 1.2};

  auto sweep = [&](std::size_t threads) {
    Runner runner({.threads = threads});
    return loadSweep(runner, trace, worstCaseSchemeSet(), factors);
  };
  const auto base = sweep(1);
  ASSERT_EQ(base.size(), factors.size());
  for (std::size_t threads : {2u, 8u}) {
    const auto points = sweep(threads);
    ASSERT_EQ(points.size(), base.size());
    for (std::size_t f = 0; f < points.size(); ++f) {
      EXPECT_DOUBLE_EQ(points[f].loadFactor, base[f].loadFactor);
      ASSERT_EQ(points[f].runs.size(), base[f].runs.size());
      for (std::size_t s = 0; s < points[f].runs.size(); ++s)
        EXPECT_EQ(metrics::runStatsJson(points[f].runs[s]),
                  metrics::runStatsJson(base[f].runs[s]));
    }
  }
}

TEST(Runner, ReplicateMatchesSequentialAggregates) {
  auto makeTrace = [](std::uint64_t seed) {
    return workload::generateTrace(workload::sdscConfig(150, seed));
  };
  PolicySpec ns;
  ns.kind = PolicyKind::Easy;
  ns.label = "NS";
  PolicySpec tss;
  tss.kind = PolicyKind::SelectiveSuspension;
  tss.ss.tssLimits.emplace();  // engaged: recalibrated per seed
  tss.label = "TSS";

  Runner sequential({.threads = 1});
  Runner parallel({.threads = 4});
  const auto a = replicate(sequential, makeTrace, {1, 2, 3}, {ns, tss});
  const auto b = replicate(parallel, makeTrace, {1, 2, 3}, {ns, tss});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].policyName, b[p].policyName);
    EXPECT_EQ(a[p].meanSlowdown.mean(), b[p].meanSlowdown.mean());
    EXPECT_EQ(a[p].meanSlowdown.stddev(), b[p].meanSlowdown.stddev());
    EXPECT_EQ(a[p].meanTurnaround.mean(), b[p].meanTurnaround.mean());
    EXPECT_EQ(a[p].suspensionsPerJob.mean(), b[p].suspensionsPerJob.mean());
  }
}

TEST(Runner, BootstrapTssLimitsMatchesWrapper) {
  const auto trace = workload::generateTrace(workload::sdscConfig(300, 5));
  Runner runner({.threads = 2});
  const auto viaRunner = bootstrapTssLimits(runner, trace);
  const auto viaWrapper = bootstrapTssLimits(trace);
  for (std::size_t c = 0; c < viaRunner.size(); ++c)
    EXPECT_EQ(viaRunner[c], viaWrapper[c]);
}

TEST(Runner, JsonBatchExportHasSchemaAndAllRuns) {
  const auto trace = shareTrace(test::makeTrace(8, {{0, 100, 4}, {5, 60, 2}}));
  Runner runner({.threads = 2});
  const auto results = runner.runAll(smallBatch(trace));
  const std::string json = runResultsJson(results);
  EXPECT_NE(json.find("\"schemaVersion\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"runCount\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"NS\""), std::string::npos);
  EXPECT_NE(json.find("\"wallSeconds\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\""), std::string::npos);
}

TEST(Runner, SharedTraceSinkAcrossWorkersIsThreadCountInvariant) {
  // One sink shared by every worker: emit counts must not depend on the
  // thread count (and the TSan lane proves the sharing is race-free). In a
  // default build both counts are zero — the hot path makes no sink calls.
  const auto trace =
      shareTrace(workload::generateTrace(workload::sdscConfig(200, 13)));
  auto batchWith = [&trace](obs::TraceSink* sink) {
    auto batch = smallBatch(trace);
    for (RunRequest& request : batch) request.options.traceSink = sink;
    return batch;
  };
  obs::CountingSink sequential;
  Runner one({.threads = 1});
  (void)one.runAll(batchWith(&sequential));
  obs::CountingSink concurrent;
  Runner pool({.threads = 8});
  (void)pool.runAll(batchWith(&concurrent));
  EXPECT_EQ(concurrent.count(), sequential.count());
  if (!obs::kTraceCompiledIn) {
    EXPECT_EQ(sequential.count(), 0u);
  }
}

TEST(Runner, ThrowingHookIsContainedAndCounted) {
  const auto trace =
      shareTrace(workload::generateTrace(workload::sdscConfig(120, 3)));
  for (std::size_t threads : {1u, 4u}) {
    Runner runner({.threads = threads});
    runner.onRunComplete(
        [](const RunResult&) { throw std::runtime_error("hook bug"); });
    const auto results = runner.runAll(smallBatch(trace));
    // The batch itself must succeed: every result present and populated.
    ASSERT_EQ(results.size(), 5u) << threads << " threads";
    for (const RunResult& r : results)
      EXPECT_FALSE(r.stats.jobs.empty()) << threads << " threads";
    EXPECT_EQ(runner.engineCounters().value(obs::Counter::RunnerHookExceptions),
              results.size())
        << threads << " threads";
  }
}

TEST(Runner, ProgressFinalSnapshotIsThreadCountInvariant) {
  const auto trace =
      shareTrace(workload::generateTrace(workload::sdscConfig(150, 21)));
  std::uint64_t wantEvents = 0;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ProgressBoard board;
    Runner runner({.threads = threads});
    runner.attachProgress(&board);
    const auto results = runner.runAll(smallBatch(trace));
    runner.attachProgress(nullptr);

    std::uint64_t events = 0;
    for (const RunResult& r : results) events += r.stats.eventsProcessed;
    if (wantEvents == 0) wantEvents = events;

    const ProgressSnapshot snap = board.snapshot();
    EXPECT_EQ(snap.runsTotal, results.size()) << threads << " threads";
    EXPECT_EQ(snap.runsDone, results.size()) << threads << " threads";
    EXPECT_EQ(snap.runsActive, 0u) << threads << " threads";
    EXPECT_TRUE(snap.activeSimFractions.empty()) << threads << " threads";
    EXPECT_DOUBLE_EQ(snap.fractionDone, 1.0) << threads << " threads";
    // Final event counts are delta-corrected on finish, so the board total
    // equals the exact per-run sum — at every thread count.
    EXPECT_EQ(snap.events, wantEvents) << threads << " threads";
  }
}

TEST(Runner, ProgressBoardAccumulatesAcrossBatches) {
  const auto trace = shareTrace(test::makeTrace(8, {{0, 50, 2}, {10, 20, 4}}));
  ProgressBoard board;
  Runner runner({.threads = 2});
  runner.attachProgress(&board);
  RunRequest request;
  request.trace = trace;
  request.spec.kind = PolicyKind::Fcfs;
  (void)runner.runOne(request);
  (void)runner.runAll({request, request});
  const ProgressSnapshot snap = board.snapshot();
  EXPECT_EQ(snap.runsTotal, 3u);
  EXPECT_EQ(snap.runsDone, 3u);
}

TEST(Runner, ProgressTicketReleasesSlotOnAbandon) {
  // The exception path: a ticket destroyed without finishRun must free its
  // slot without counting the run as done.
  ProgressBoard board;
  board.beginBatch(2);
  {
    ProgressBoard::Ticket ticket = board.startRun(100);
    ticket.onSimProgress(50, 1000);
    const ProgressSnapshot mid = board.snapshot();
    EXPECT_EQ(mid.runsActive, 1u);
    ASSERT_EQ(mid.activeSimFractions.size(), 1u);
    EXPECT_DOUBLE_EQ(mid.activeSimFractions[0], 0.5);
    EXPECT_EQ(mid.events, 1000u);
  }
  const ProgressSnapshot snap = board.snapshot();
  EXPECT_EQ(snap.runsActive, 0u);
  EXPECT_EQ(snap.runsDone, 0u);

  // The freed slot is reusable and finishRun folds the exact event count.
  ProgressBoard::Ticket ticket = board.startRun(100);
  ticket.onSimProgress(100, 500);
  board.finishRun(ticket, 750);
  const ProgressSnapshot done = board.snapshot();
  EXPECT_EQ(done.runsDone, 1u);
  EXPECT_EQ(done.events, 1000u + 750u);
}

TEST(Runner, ProgressReporterPaintsFinalFrame) {
  ProgressBoard board;
  board.beginBatch(1);
  {
    ProgressBoard::Ticket ticket = board.startRun(10);
    board.finishRun(ticket, 42);
  }
  std::ostringstream os;
  {
    ProgressReporter reporter(board, os,
                              std::chrono::milliseconds(5));
    reporter.stop();
    reporter.stop();  // idempotent
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("1/1"), std::string::npos) << out;
  EXPECT_NE(out.find('\r'), std::string::npos) << out;
  EXPECT_TRUE(out.ends_with('\n')) << out;
}

}  // namespace
}  // namespace sps::core
