// Unit tests: aggressive (EASY) backfilling (Section II-A.2) — the paper's
// No-Suspension baseline.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sched/easy.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {
namespace {

using test::J;
using test::makeTrace;

TEST(Easy, StartsHeadWhenItFits) {
  EasyBackfill policy;
  const auto trace = makeTrace(8, {{0, 100, 4}, {1, 100, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).firstStart, 0);
  EXPECT_EQ(s.exec(1).firstStart, 1);
}

TEST(Easy, BackfillByEarlyTermination) {
  // Head (job1) needs the full machine at t=100. Job2 terminates by then:
  // eligible via condition (1).
  EasyBackfill policy;
  const auto trace = makeTrace(4, {{0, 100, 3}, {1, 100, 4}, {2, 50, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(2).firstStart, 2);
  EXPECT_EQ(s.exec(1).firstStart, 100);
  EXPECT_EQ(policy.backfillCount(), 1u);
}

TEST(Easy, BackfillByExtraProcessors) {
  // Machine 8. Job0: 4 procs to t=100. Head job1: 6 procs -> shadow 100,
  // extra = 8 - 6 = 2. Job2: 2 procs, long — eligible via condition (2).
  EasyBackfill policy;
  const auto trace = makeTrace(8, {{0, 100, 4}, {1, 100, 6}, {2, 500, 2}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(2).firstStart, 2);
  EXPECT_EQ(s.exec(1).firstStart, 100);  // head not delayed
}

TEST(Easy, BackfillRejectedWhenItWouldDelayHead) {
  // Job2: 3 procs and runs past the shadow — would steal the head's procs.
  EasyBackfill policy;
  const auto trace = makeTrace(8, {{0, 100, 4}, {1, 100, 6}, {2, 500, 3}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 100);     // head on time
  EXPECT_GE(s.exec(2).firstStart, 100);     // job2 had to wait
}

TEST(Easy, HeadJobCannotBeStarvedByStream) {
  // A continuous stream of small long jobs must not push the wide head
  // past its shadow time.
  EasyBackfill policy;
  std::vector<J> jobs;
  jobs.push_back({0, 100, 6});   // running
  jobs.push_back({1, 100, 8});   // head, shadow = 100
  for (int i = 0; i < 30; ++i) jobs.push_back({2 + i, 1000, 2});
  const auto trace = makeTrace(8, jobs);
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 100);
}

TEST(Easy, SecondQueuedJobHasNoReservation) {
  // Unlike conservative: a backfill job may delay the *second* queued job.
  // Machine 4. Job0: 2 procs to 100. Job1(head): 4 procs, shadow 100.
  // Job2: 3 procs (queued behind head, no guarantee). Job3: 2 procs 100 s,
  // finishes at t=103 <= shadow -> backfills, delaying job2 past what a
  // conservative reservation would have given it.
  EasyBackfill policy;
  const auto trace =
      makeTrace(4, {{0, 100, 2}, {1, 100, 4}, {2, 100, 3}, {3, 97, 2}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(3).firstStart, 3);    // aggressive backfill
  EXPECT_EQ(s.exec(1).firstStart, 100);  // head unharmed
  EXPECT_GE(s.exec(2).firstStart, 200);  // second queued job delayed
}

TEST(Easy, UsesEstimatesNotRuntimes) {
  // Job2's *estimate* (200) crosses the shadow even though its runtime (10)
  // does not: EASY must reject the backfill (condition (1) on estimates)
  // and condition (2) fails (3 > extra 0 since head takes everything).
  EasyBackfill policy;
  const auto trace = makeTrace(8, {{0, 100, 5}, {1, 100, 8}, {2, 10, 3, 200}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_GE(s.exec(2).firstStart, 100);
  EXPECT_EQ(s.exec(1).firstStart, 100);
}

TEST(Easy, EarlyCompletionTriggersReschedule) {
  // Job0 estimates 1000, actually 50. On completion the head starts early.
  EasyBackfill policy;
  const auto trace = makeTrace(4, {{0, 50, 4, 1000}, {1, 100, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 50);
}

TEST(Easy, FifoAmongEqualJobs) {
  EasyBackfill policy;
  const auto trace =
      makeTrace(4, {{0, 100, 4}, {1, 100, 4}, {1, 100, 4}, {1, 100, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 100);
  EXPECT_EQ(s.exec(2).firstStart, 200);
  EXPECT_EQ(s.exec(3).firstStart, 300);
}

TEST(Easy, NoSuspensionsEver) {
  EasyBackfill policy;
  const auto trace = makeTrace(8, {{0, 50, 2}, {5, 50, 8}, {9, 50, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.totalSuspensions(), 0u);
}

TEST(Easy, BackfillImprovesOverFcfsShape) {
  // The motivating scenario of Section II: EASY fills the FCFS hole.
  EasyBackfill policy;
  const auto trace = makeTrace(4, {{0, 100, 3}, {1, 100, 4}, {2, 50, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  // FCFS would start job2 at 200 (see test_fcfs); EASY starts it at t=2.
  EXPECT_EQ(s.exec(2).firstStart, 2);
}

}  // namespace
}  // namespace sps::sched
