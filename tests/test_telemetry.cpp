// Tests for the simulation-time telemetry subsystem: the TimelineRecorder
// sim-clock series, the QuantileSketch streaming estimator, and the
// OpenMetrics exposition + validator. (Live Runner progress is covered in
// test_runner.cpp next to the other concurrency suites.)
//
// Like test_obs.cpp, everything here passes in both build flavours: counter
// track emission is runtime-gated on the sink, not on SPS_TRACE.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/simulation.hpp"
#include "helpers.hpp"
#include "metrics/json.hpp"
#include "metrics/openmetrics.hpp"
#include "obs/counters.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "obs/trace_sink.hpp"
#include "util/quantile_sketch.hpp"
#include "util/stats.hpp"
#include "workload/synthetic.hpp"

namespace sps {
namespace {

using test::J;
using util::QuantileSketch;

// --- QuantileSketch ---------------------------------------------------------

/// Exact empirical quantile by sorting (the reference the sketch must track).
double exactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

double relativeError(double estimate, double exact) {
  return std::abs(estimate - exact) / std::max(std::abs(exact), 1e-12);
}

/// Heavy-tailed deterministic stream, shaped like the slowdown/wait
/// distributions the sketch is built for.
std::vector<double> lognormalStream(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::lognormal_distribution<double> dist(4.0, 1.5);
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) values.push_back(dist(rng));
  return values;
}

TEST(QuantileSketch, ExactOnSmallStreams) {
  // Below the compaction threshold nothing is merged, so quantiles come
  // straight from the raw observations.
  QuantileSketch sketch;
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) {
    values.push_back(i);
    sketch.add(i);
  }
  EXPECT_EQ(sketch.count(), 100u);
  EXPECT_DOUBLE_EQ(sketch.min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 100.0);
  EXPECT_DOUBLE_EQ(sketch.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(sketch.mean(), 50.5);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 100.0);
  EXPECT_NEAR(sketch.quantile(0.5), exactQuantile(values, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(sketch.percentile(95), sketch.quantile(0.95));
}

TEST(QuantileSketch, TracksExactWithinOnePercent) {
  const std::vector<double> values = lognormalStream(50000, 1234);
  QuantileSketch sketch;
  Samples exact;
  for (const double v : values) {
    sketch.add(v);
    exact.add(v);
  }
  EXPECT_LE(sketch.centroidCount(),
            QuantileSketch::kDefaultCompression + 16);
  for (const double p : {50.0, 90.0, 95.0, 99.0}) {
    const double reference = exact.percentile(p);
    EXPECT_LT(relativeError(sketch.percentile(p), reference), 0.01)
        << "p" << p << ": sketch " << sketch.percentile(p) << " vs exact "
        << reference;
  }
}

TEST(QuantileSketch, MergeApproximatesUnion) {
  const std::vector<double> a = lognormalStream(20000, 7);
  const std::vector<double> b = lognormalStream(30000, 8);
  QuantileSketch sa, sb;
  for (const double v : a) sa.add(v);
  for (const double v : b) sb.add(v);
  sa.merge(sb);

  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  EXPECT_EQ(sa.count(), all.size());
  EXPECT_DOUBLE_EQ(sa.totalWeight(), static_cast<double>(all.size()));
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_LT(relativeError(sa.quantile(q), exactQuantile(all, q)), 0.01)
        << "q=" << q;
  }
}

TEST(QuantileSketch, DeterministicAcrossIdenticalStreams) {
  const std::vector<double> values = lognormalStream(10000, 99);
  QuantileSketch first, second;
  for (const double v : values) {
    first.add(v);
    second.add(v);
  }
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(first.quantile(q), second.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(first.centroidCount(), second.centroidCount());
}

TEST(QuantileSketch, WeightedAddMatchesRepeatedAdd) {
  QuantileSketch weighted, repeated;
  for (int i = 1; i <= 50; ++i) {
    weighted.add(i, 4.0);
    for (int k = 0; k < 4; ++k) repeated.add(i);
  }
  EXPECT_DOUBLE_EQ(weighted.totalWeight(), repeated.totalWeight());
  for (const double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(weighted.quantile(q), repeated.quantile(q), 1.0) << "q=" << q;
  }
}

// --- TimelineRecorder -------------------------------------------------------

core::SimulationOptions timelineOptions(Time stride,
                                        std::size_t maxSamples = 4096) {
  core::SimulationOptions options;
  options.timeline.enabled = true;
  options.timeline.stride = stride;
  options.timeline.maxSamples = maxSamples;
  return options;
}

/// 4-proc machine: two 2-wide jobs run [0,100), a 4-wide job arrives at 50,
/// waits (backlog 4x60=240), runs [100,160). Every machine state on a
/// stride-25 timeline is known in closed form.
metrics::RunStats runKnownTimeline(Time stride, std::size_t maxSamples) {
  const workload::Trace trace = test::makeTrace(
      4, {J{0, 100, 2}, J{0, 100, 2}, J{50, 60, 4}});
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Fcfs;
  return core::runSimulation(trace, spec,
                             timelineOptions(stride, maxSamples));
}

TEST(Timeline, SamplesKnownScheduleAtStride) {
  const metrics::RunStats stats = runKnownTimeline(25, 4096);
  const obs::TimelineData& t = stats.timeline;
  ASSERT_EQ(t.sampleCount(), 6u);  // samples at 25,50,...,150 (span 160)
  EXPECT_EQ(t.stride, 25);
  EXPECT_EQ(t.timeAt(0), 25);
  EXPECT_EQ(t.timeAt(5), 150);

  // Sample k reflects the state over the interval ending at its timestamp,
  // so the arrival at t=50 is not yet visible in the t=50 sample.
  const std::vector<std::uint32_t> wantQueue = {0, 0, 1, 1, 0, 0};
  const std::vector<std::uint32_t> wantRunning = {2, 2, 2, 2, 1, 1};
  const std::vector<double> wantBacklog = {0, 0, 240, 240, 0, 0};
  EXPECT_EQ(t.queueDepth, wantQueue);
  EXPECT_EQ(t.runningJobs, wantRunning);
  EXPECT_EQ(t.backlogProcSeconds, wantBacklog);
  for (std::size_t k = 0; k < t.sampleCount(); ++k) {
    EXPECT_EQ(t.suspendedJobs[k], 0u);
    EXPECT_EQ(t.freeProcs[k], 0u);
    EXPECT_DOUBLE_EQ(t.utilization[k], 1.0);
  }
  EXPECT_EQ(stats.counters.value(obs::Counter::TimelineSamples), 6u);
  EXPECT_EQ(stats.counters.value(obs::Counter::TimelineDecimations), 0u);
}

TEST(Timeline, DecimationDoublesStrideUnderCap) {
  // 1 job, span 1000, stride 10, cap 4: the recorder must repeatedly halve
  // (keeping the odd-index points so timeAt stays exact) until the series
  // fits. Walk: stride 10 -> 20 -> 40 -> 80 -> 160 -> 320.
  const workload::Trace trace = test::makeTrace(1, {J{0, 1000, 1}});
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Fcfs;
  const metrics::RunStats stats =
      core::runSimulation(trace, spec, timelineOptions(10, 4));
  const obs::TimelineData& t = stats.timeline;
  EXPECT_EQ(t.stride, 320);
  ASSERT_EQ(t.sampleCount(), 3u);  // 320, 640, 960
  EXPECT_EQ(t.timeAt(2), 960);
  for (std::size_t k = 0; k < t.sampleCount(); ++k) {
    EXPECT_EQ(t.runningJobs[k], 1u);
    EXPECT_DOUBLE_EQ(t.utilization[k], 1.0);
  }
  EXPECT_EQ(stats.counters.value(obs::Counter::TimelineDecimations), 5u);
  EXPECT_EQ(stats.counters.value(obs::Counter::TimelineSamples), 13u);
}

TEST(Timeline, DisabledRecordsNothing) {
  const workload::Trace trace = test::makeTrace(4, {J{0, 100, 2}});
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Fcfs;
  const metrics::RunStats stats =
      core::runSimulation(trace, spec, core::SimulationOptions{});
  EXPECT_TRUE(stats.timeline.empty());
  EXPECT_EQ(stats.counters.value(obs::Counter::TimelineSamples), 0u);

  // The JSON export must omit the block entirely, not write an empty one.
  const std::string json = metrics::runStatsJson(stats);
  EXPECT_EQ(json.find("timeline"), std::string::npos) << json;
}

TEST(Timeline, UtilizationIntegralMatchesRunStats) {
  // Golden consistency check on a tier-1 synthetic workload: the mean of
  // the sampled instantaneous utilization is a Riemann approximation of
  // RunStats::utilization (busy proc-seconds / (procs x span)).
  const workload::Trace trace =
      workload::generateTrace(workload::ctcConfig(600, 7));
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Easy;

  // Pass 1 learns the span so pass 2 can pick a stride that avoids
  // decimation while staying fine-grained (~2000 points).
  const metrics::RunStats probe =
      core::runSimulation(trace, spec, core::SimulationOptions{});
  const Time stride = std::max<Time>(1, probe.span / 2000);
  const metrics::RunStats stats =
      core::runSimulation(trace, spec, timelineOptions(stride));
  const obs::TimelineData& t = stats.timeline;
  ASSERT_GT(t.sampleCount(), 1000u);
  EXPECT_EQ(stats.counters.value(obs::Counter::TimelineDecimations), 0u);

  double sum = 0.0;
  for (const double u : t.utilization) {
    ASSERT_GE(u, 0.0);
    ASSERT_LE(u, 1.0);
    sum += u;
  }
  const double integralMean = sum / static_cast<double>(t.sampleCount());
  EXPECT_LT(relativeError(integralMean, stats.utilization), 0.03)
      << "integral " << integralMean << " vs collected "
      << stats.utilization;
}

TEST(Timeline, EmitsCounterTracksThroughChromeSink) {
  std::ostringstream os;
  std::uint64_t emitted = 0;
  std::size_t samples = 0;
  {
    obs::ChromeTraceSink sink(os);
    const workload::Trace trace = test::makeTrace(
        4, {J{0, 100, 2}, J{0, 100, 2}, J{50, 60, 4}});
    core::PolicySpec spec;
    spec.kind = core::PolicyKind::Fcfs;
    core::SimulationOptions options = timelineOptions(25);
    options.traceSink = &sink;
    const metrics::RunStats stats =
        core::runSimulation(trace, spec, options);
    samples = stats.timeline.sampleCount();
    emitted = sink.eventCount();
  }  // destructor closes the JSON array

  ASSERT_GT(samples, 0u);
  // Four counter tracks per sample; in the default (non-instrumented) build
  // nothing else writes to the sink, so the count is exact.
  if (!obs::kTraceCompiledIn) {
    EXPECT_EQ(emitted, samples * 4);
  }
  EXPECT_GE(emitted, samples * 4);

  const std::string trace = os.str();
  std::string error;
  EXPECT_TRUE(metrics::validateJson(trace, &error)) << error;
  EXPECT_NE(trace.find("\"C\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("utilizationPct"), std::string::npos);
  EXPECT_NE(trace.find("backlogProcSeconds"), std::string::npos);
  EXPECT_NE(trace.find("timeline"), std::string::npos);
}

TEST(Timeline, JsonBlockValidatesAndRoundsTrip) {
  const metrics::RunStats stats = runKnownTimeline(25, 4096);
  const std::string json = metrics::runStatsJson(stats);
  std::string error;
  EXPECT_TRUE(metrics::validateJson(json, &error)) << error;
  EXPECT_NE(json.find("\"timeline\""), std::string::npos);
  EXPECT_NE(json.find("\"stride\": 25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\": 6"), std::string::npos) << json;
}

// --- OpenMetrics ------------------------------------------------------------

TEST(OpenMetrics, EmittedBatchValidatesAndCarriesLabels) {
  const workload::Trace trace = test::makeTrace(
      4, {J{0, 100, 2}, J{0, 100, 2}, J{50, 60, 4}});
  core::Runner runner({.threads = 1});
  const auto shared = core::borrowTrace(trace);
  std::vector<core::RunRequest> batch(2);
  batch[0].trace = shared;
  batch[0].spec.kind = core::PolicyKind::Fcfs;
  batch[0].seed = 11;
  batch[1].trace = shared;
  batch[1].spec.kind = core::PolicyKind::Easy;
  batch[1].seed = 12;
  const std::vector<core::RunResult> results = runner.runAll(std::move(batch));

  std::ostringstream os;
  core::writeRunResultsOpenMetrics(os, results);
  const std::string text = os.str();

  std::string error;
  EXPECT_TRUE(metrics::validateOpenMetrics(text, &error)) << error << "\n"
                                                          << text;
  EXPECT_NE(text.find("# TYPE sps_run_utilization gauge"), std::string::npos);
  EXPECT_NE(text.find("sps_sim_events_total"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("run=\"1\""), std::string::npos);
  EXPECT_NE(text.find("seed=\"12\""), std::string::npos);
  EXPECT_NE(text.find("sps_run_wall_seconds"), std::string::npos);
  // Exactly one document terminator, at the very end.
  EXPECT_TRUE(text.ends_with("# EOF\n"));
  EXPECT_EQ(text.find("# EOF"), text.size() - 6);
}

TEST(OpenMetrics, SingleRunConvenienceValidates) {
  const metrics::RunStats stats = runKnownTimeline(25, 4096);
  const std::string text = metrics::openMetrics(stats);
  std::string error;
  EXPECT_TRUE(metrics::validateOpenMetrics(text, &error)) << error << "\n"
                                                          << text;
  // The timeline run counted samples; they surface as a counter family.
  EXPECT_NE(text.find("sps_obs_timeline_samples_total"), std::string::npos)
      << text;
}

TEST(OpenMetrics, EscapesHostileLabelValues) {
  metrics::RunStats stats;
  stats.policyName = "po\"li\\cy\nname";
  stats.traceName = "tr\\ace";
  const std::string text = metrics::openMetrics(stats);
  std::string error;
  EXPECT_TRUE(metrics::validateOpenMetrics(text, &error)) << error << "\n"
                                                          << text;
  EXPECT_NE(text.find("po\\\"li\\\\cy\\nname"), std::string::npos) << text;
}

TEST(OpenMetrics, ValidatorAcceptsMinimalDocument) {
  const std::string doc =
      "# TYPE a gauge\n"
      "a{x=\"1\"} 2\n"
      "a 3.5\n"
      "# TYPE b counter\n"
      "# HELP b a counter\n"
      "b_total{y=\"z\"} 4\n"
      "# TYPE c summary\n"
      "c{quantile=\"0.5\"} 1\n"
      "c_count 2\n"
      "c_sum 3\n"
      "# EOF\n";
  std::string error;
  EXPECT_TRUE(metrics::validateOpenMetrics(doc, &error)) << error;
}

TEST(OpenMetrics, ValidatorRejectsMalformedDocuments) {
  const struct {
    const char* doc;
    const char* why;
  } cases[] = {
      {"# TYPE a gauge\na 1\n", "missing # EOF"},
      {"# TYPE a gauge\na 1\n# EOF\nx 1\n", "content after EOF"},
      {"# TYPE a gauge\n\na 1\n# EOF\n", "empty line"},
      {"a 1\n# EOF\n", "sample before any TYPE"},
      {"# TYPE a counter\na 1\n# EOF\n", "counter sample missing _total"},
      {"# TYPE a gauge\na_total 1\n# EOF\n", "gauge sample with suffix"},
      {"# TYPE a gauge\na 1\n# TYPE a gauge\na 2\n# EOF\n",
       "family declared twice"},
      {"# TYPE a gauge\nb 1\n# EOF\n", "sample outside its family"},
      {"# TYPE a gauge\na{x=1} 1\n# EOF\n", "unquoted label value"},
      {"# TYPE a gauge\na{x=\"1\",x=\"2\"} 1\n# EOF\n", "duplicate label"},
      {"# TYPE a gauge\na{x=\"\\q\"} 1\n# EOF\n", "bad escape"},
      {"# TYPE a gauge\na one\n# EOF\n", "non-numeric value"},
      {"# TYPE a gauge\na 1 2 3\n# EOF\n", "trailing tokens"},
      {"# TYPE a summary\na 1\n# EOF\n", "summary base without quantile"},
      {"# TYPE a summary\na{quantile=\"1.5\"} 1\n# EOF\n",
       "quantile out of range"},
      {"# TYPE a histogram\na_bucket 1\n# EOF\n", "unsupported type"},
      {"# TYPE 9a gauge\n# EOF\n", "bad family name"},
      {"#comment\n# EOF\n", "malformed comment"},
      {"# HELP b text\n# EOF\n", "HELP outside family block"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(metrics::validateOpenMetrics(c.doc, &error)) << c.why;
    EXPECT_FALSE(error.empty()) << c.why;
    EXPECT_NE(error.find("line"), std::string::npos) << c.why << ": " << error;
  }
}

}  // namespace
}  // namespace sps
