// Unit tests: core facade — policy factory, simulation runner, experiment
// helpers (TSS bootstrap, scheme sets, load sweep).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/replicate.hpp"
#include "core/figures.hpp"
#include "core/simulation.hpp"
#include "helpers.hpp"
#include "workload/synthetic.hpp"

#include <cmath>
#include <sstream>

namespace sps::core {
namespace {

using test::J;
using test::makeTrace;

TEST(PolicyFactory, BuildsEveryKind) {
  for (PolicyKind kind :
       {PolicyKind::Fcfs, PolicyKind::Conservative, PolicyKind::Easy,
        PolicyKind::SelectiveSuspension, PolicyKind::ImmediateService}) {
    PolicySpec spec;
    spec.kind = kind;
    const auto policy = makePolicy(spec);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
  }
}

TEST(PolicyFactory, KindNames) {
  EXPECT_STREQ(policyKindName(PolicyKind::Easy), "EASY");
  EXPECT_STREQ(policyKindName(PolicyKind::SelectiveSuspension),
               "SelectiveSuspension");
}

TEST(PolicyFactory, LabelOverride) {
  PolicySpec spec;
  spec.kind = PolicyKind::Easy;
  EXPECT_EQ(policyLabel(spec), "EASY (NS)");
  spec.label = "custom";
  EXPECT_EQ(policyLabel(spec), "custom");
}

TEST(RunSimulation, EndToEndSmallTrace) {
  const auto trace = makeTrace(8, {{0, 100, 4}, {10, 50, 4}, {20, 30, 8}});
  PolicySpec spec;
  spec.kind = PolicyKind::Easy;
  const metrics::RunStats stats = runSimulation(trace, spec);
  EXPECT_EQ(stats.jobs.size(), 3u);
  for (const auto& j : stats.jobs) EXPECT_GE(j.finish, j.submit + j.runtime);
}

TEST(RunSimulation, DeterministicAcrossCalls) {
  const auto trace = workload::generateTrace(workload::sdscConfig(400, 3));
  PolicySpec spec;
  spec.kind = PolicyKind::SelectiveSuspension;
  const auto a = runSimulation(trace, spec);
  const auto b = runSimulation(trace, spec);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
  EXPECT_EQ(a.suspensions, b.suspensions);
}

TEST(Experiment, BootstrapTssLimitsAreCalibrated) {
  const auto trace = workload::generateTrace(workload::sdscConfig(800, 5));
  const auto limits = bootstrapTssLimits(trace);
  // Every populated category must get a finite, >= 1.5 limit (avg slowdown
  // >= 1 always).
  const auto dist = metrics::distribution16(trace.jobs);
  for (std::size_t c = 0; c < limits.size(); ++c) {
    if (dist[c] > 0.0) {
      EXPECT_GE(limits[c], 1.5) << workload::category16Name(c);
      EXPECT_TRUE(std::isfinite(limits[c]));
    }
  }
}

TEST(Experiment, CompareSchemesPreservesOrder) {
  const auto trace = workload::generateTrace(workload::sdscConfig(300, 7));
  const auto specs = worstCaseSchemeSet();
  const auto runs = compareSchemes(trace, specs);
  ASSERT_EQ(runs.size(), specs.size());
  EXPECT_EQ(runs[0].policyName, "SS(SF=2.0)");
  EXPECT_EQ(runs[1].policyName, "NS");
  EXPECT_EQ(runs[2].policyName, "IS");
}

TEST(Experiment, SchemeSetShapes) {
  EXPECT_EQ(ssSchemeSet().size(), 5u);
  EXPECT_EQ(worstCaseSchemeSet().size(), 3u);
  std::array<double, workload::kNumCategories16> limits{};
  limits.fill(100.0);
  const auto tss = tssSchemeSet(limits);
  EXPECT_EQ(tss.size(), 5u);
  EXPECT_EQ(tss[0].label, "TSS(SF=1.5)");
  ASSERT_TRUE(tss[1].ss.tssLimits.has_value());
  EXPECT_DOUBLE_EQ((*tss[1].ss.tssLimits)[0], 100.0);
}

TEST(Experiment, LoadSweepScalesTraceAndRuns) {
  const auto trace = workload::generateTrace(workload::sdscConfig(300, 9));
  PolicySpec ns;
  ns.kind = PolicyKind::Easy;
  ns.label = "NS";
  const auto points = loadSweep(trace, {ns}, {1.0, 1.3});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].loadFactor, 1.0);
  ASSERT_EQ(points[0].runs.size(), 1u);
  // Higher load -> equal or higher mean slowdown (statistically solid at
  // 1.3x on this seed).
  EXPECT_GE(points[1].runs[0].meanBoundedSlowdown(),
            points[0].runs[0].meanBoundedSlowdown() * 0.9);
}

TEST(Experiment, LoadSweepRecalibratesTss) {
  const auto trace = workload::generateTrace(workload::sdscConfig(300, 11));
  std::array<double, workload::kNumCategories16> limits{};
  limits.fill(1.0);  // deliberately wrong; recalibration must replace them
  auto specs = tssSchemeSet(limits);
  const auto points = loadSweep(trace, specs, {1.0}, /*recalibrateTss=*/true);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].runs.size(), specs.size());
}

TEST(Replicate, AggregatesAcrossSeeds) {
  auto makeTrace = [](std::uint64_t seed) {
    return workload::generateTrace(workload::sdscConfig(300, seed));
  };
  PolicySpec ns;
  ns.kind = PolicyKind::Easy;
  ns.label = "NS";
  PolicySpec ss;
  ss.kind = PolicyKind::SelectiveSuspension;
  ss.label = "SS";
  const auto results = replicate(makeTrace, {1, 2, 3}, {ns, ss});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].policyName, "NS");
  EXPECT_EQ(results[0].meanSlowdown.count(), 3u);
  EXPECT_EQ(results[1].meanSlowdown.count(), 3u);
  // SS dominates NS in the mean even at this small scale.
  EXPECT_LT(results[1].meanSlowdown.mean(), results[0].meanSlowdown.mean());
  // NS never suspends.
  EXPECT_DOUBLE_EQ(results[0].suspensionsPerJob.mean(), 0.0);
}

TEST(Replicate, TssRecalibratedPerSeed) {
  auto makeTrace = [](std::uint64_t seed) {
    return workload::generateTrace(workload::sdscConfig(300, seed));
  };
  PolicySpec tss;
  tss.kind = PolicyKind::SelectiveSuspension;
  tss.ss.tssLimits.emplace();  // zero limits; must be replaced per seed
  tss.label = "TSS";
  const auto results = replicate(makeTrace, {1, 2}, {tss});
  ASSERT_EQ(results.size(), 1u);
  // With zero limits nothing could ever be preempted; recalibration makes
  // suspensions possible again.
  EXPECT_GT(results[0].suspensionsPerJob.mean(), 0.0);
}

TEST(Replicate, RejectsEmptyInputs) {
  auto makeTrace = [](std::uint64_t seed) {
    return workload::generateTrace(workload::sdscConfig(50, seed));
  };
  PolicySpec ns;
  ns.kind = PolicyKind::Easy;
  EXPECT_THROW((void)replicate(makeTrace, {}, {ns}), InvariantError);
  EXPECT_THROW((void)replicate(makeTrace, {1}, {}), InvariantError);
}

TEST(Replicate, TableShowsPlusMinus) {
  auto makeTrace = [](std::uint64_t seed) {
    return workload::generateTrace(workload::sdscConfig(200, seed));
  };
  PolicySpec ns;
  ns.kind = PolicyKind::Easy;
  ns.label = "NS";
  const auto table = replicationTable(replicate(makeTrace, {5, 6}, {ns}));
  const std::string out = table.toAscii();
  EXPECT_NE(out.find("NS"), std::string::npos);
  EXPECT_NE(out.find("±"), std::string::npos);
}

TEST(Figures, PanelsPrintAllRunClasses) {
  const auto trace = workload::generateTrace(workload::sdscConfig(300, 13));
  PolicySpec ns;
  ns.kind = PolicyKind::Easy;
  ns.label = "NS";
  const auto runs = compareSchemes(trace, {ns});
  std::ostringstream os;
  printFigurePanels(os, "test figure", runs, metrics::Metric::AvgSlowdown);
  const std::string out = os.str();
  EXPECT_NE(out.find("test figure"), std::string::npos);
  EXPECT_NE(out.find("Very Short"), std::string::npos);
  EXPECT_NE(out.find("Very Long"), std::string::npos);
  EXPECT_NE(out.find("NS"), std::string::npos);
}

TEST(Figures, SummariesOnePerRun) {
  const auto trace = makeTrace(8, {{0, 100, 4}});
  PolicySpec ns;
  ns.kind = PolicyKind::Easy;
  const auto runs = compareSchemes(trace, {ns, ns});
  std::ostringstream os;
  printRunSummaries(os, runs);
  std::size_t lines = 0;
  for (char ch : os.str())
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 2u);
}

}  // namespace
}  // namespace sps::core
