// Unit tests: workload::Job/Trace validation and transforms.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "util/check.hpp"
#include "workload/job.hpp"
#include "workload/transforms.hpp"

namespace sps::workload {
namespace {

using test::J;
using test::makeTrace;

TEST(Trace, ValidateAcceptsWellFormed) {
  const Trace t = makeTrace(16, {{0, 10, 2}, {5, 20, 4}});
  EXPECT_NO_THROW(validateTrace(t));
}

TEST(Trace, ValidateRejectsZeroMachine) {
  Trace t;
  t.machineProcs = 0;
  EXPECT_THROW(validateTrace(t), InputError);
}

TEST(Trace, ValidateRejectsUnsortedSubmits) {
  Trace t = makeTrace(16, {{0, 10, 2}, {5, 20, 4}});
  std::swap(t.jobs[0].submit, t.jobs[1].submit);
  EXPECT_THROW(validateTrace(t), InputError);
}

TEST(Trace, ValidateRejectsNonDenseIds) {
  Trace t = makeTrace(16, {{0, 10, 2}, {5, 20, 4}});
  t.jobs[1].id = 7;
  EXPECT_THROW(validateTrace(t), InputError);
}

TEST(Trace, ValidateRejectsZeroRuntime) {
  Trace t = makeTrace(16, {{0, 10, 2}});
  t.jobs[0].runtime = 0;
  EXPECT_THROW(validateTrace(t), InputError);
}

TEST(Trace, ValidateRejectsEstimateBelowRuntime) {
  Trace t = makeTrace(16, {{0, 10, 2}});
  t.jobs[0].estimate = 5;
  EXPECT_THROW(validateTrace(t), InputError);
}

TEST(Trace, ValidateRejectsZeroProcs) {
  Trace t = makeTrace(16, {{0, 10, 2}});
  t.jobs[0].procs = 0;
  EXPECT_THROW(validateTrace(t), InputError);
}

TEST(Trace, ValidateRejectsTooWideJob) {
  Trace t = makeTrace(16, {{0, 10, 2}});
  t.jobs[0].procs = 17;
  EXPECT_THROW(validateTrace(t), InputError);
}

TEST(Trace, TotalWorkSums) {
  const Trace t = makeTrace(16, {{0, 10, 2}, {5, 20, 4}});
  EXPECT_DOUBLE_EQ(totalWork(t), 10.0 * 2 + 20.0 * 4);
}

TEST(Trace, OfferedLoadDefinition) {
  // Span: first submit 0 to last end max(0+100, 50+100) = 150.
  const Trace t = makeTrace(10, {{0, 100, 5}, {50, 100, 5}});
  EXPECT_DOUBLE_EQ(offeredLoad(t), (100.0 * 5 + 100.0 * 5) / (10.0 * 150.0));
}

TEST(Trace, OfferedLoadEmptyIsZero) {
  Trace t;
  t.machineProcs = 4;
  EXPECT_DOUBLE_EQ(offeredLoad(t), 0.0);
}

TEST(Normalize, ShiftsAndRenumbers) {
  Trace t;
  t.machineProcs = 8;
  Job a;
  a.submit = 500;
  a.runtime = a.estimate = 10;
  a.procs = 1;
  Job b = a;
  b.submit = 300;
  t.jobs = {a, b};
  normalizeTrace(t);
  EXPECT_EQ(t.jobs[0].submit, 0);
  EXPECT_EQ(t.jobs[1].submit, 200);
  EXPECT_EQ(t.jobs[0].id, 0u);
  EXPECT_EQ(t.jobs[1].id, 1u);
}

TEST(Normalize, StableForEqualSubmits) {
  Trace t;
  t.machineProcs = 8;
  for (int i = 0; i < 5; ++i) {
    Job j;
    j.submit = 100;
    j.runtime = j.estimate = 10 + i;  // distinguishes original order
    j.procs = 1;
    t.jobs.push_back(j);
  }
  normalizeTrace(t);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(t.jobs[static_cast<std::size_t>(i)].runtime, 10 + i);
}

TEST(ScaleLoad, DividesArrivals) {
  const Trace t = makeTrace(16, {{0, 10, 2}, {100, 10, 2}, {220, 10, 2}});
  const Trace s = scaleLoad(t, 2.0);
  EXPECT_EQ(s.jobs[1].submit, 50);
  EXPECT_EQ(s.jobs[2].submit, 110);
  // Runtimes untouched.
  EXPECT_EQ(s.jobs[0].runtime, 10);
  EXPECT_NE(s.name, t.name);
}

TEST(ScaleLoad, RaisesOfferedLoadProportionally) {
  const Trace t = makeTrace(16, {{0, 100, 8}, {1000, 100, 8},
                                 {2000, 100, 8}, {3000, 100, 8}});
  const double base = offeredLoad(t);
  const double doubled = offeredLoad(scaleLoad(t, 2.0));
  EXPECT_NEAR(doubled / base, 2.0, 0.15);  // end effects blunt it slightly
}

TEST(ScaleLoad, FactorOneIsIdentityOnSubmits) {
  const Trace t = makeTrace(16, {{0, 10, 2}, {77, 10, 2}});
  const Trace s = scaleLoad(t, 1.0);
  EXPECT_EQ(s.jobs[1].submit, 77);
}

TEST(ScaleLoad, RejectsNonPositiveFactor) {
  const Trace t = makeTrace(16, {{0, 10, 2}});
  EXPECT_THROW(scaleLoad(t, 0.0), InvariantError);
  EXPECT_THROW(scaleLoad(t, -1.0), InvariantError);
}

TEST(Truncate, KeepsPrefix) {
  const Trace t = makeTrace(16, {{0, 10, 2}, {5, 10, 2}, {9, 10, 2}});
  const Trace s = truncateTrace(t, 2);
  EXPECT_EQ(s.jobs.size(), 2u);
  EXPECT_EQ(s.jobs[1].submit, 5);
}

TEST(Truncate, LargerThanSizeIsNoop) {
  const Trace t = makeTrace(16, {{0, 10, 2}});
  EXPECT_EQ(truncateTrace(t, 99).jobs.size(), 1u);
}

TEST(Filter, KeepsMatchingAndRenumbers) {
  const Trace t = makeTrace(16, {{0, 10, 2}, {5, 10, 8}, {9, 10, 2}});
  const Trace s =
      filterTrace(t, [](const Job& j) { return j.procs == 2; });
  EXPECT_EQ(s.jobs.size(), 2u);
  EXPECT_EQ(s.jobs[0].id, 0u);
  EXPECT_EQ(s.jobs[1].id, 1u);
  EXPECT_EQ(s.jobs[1].submit, 9);
}

}  // namespace
}  // namespace sps::workload
