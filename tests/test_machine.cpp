// Unit tests: sim::Machine (allocation, release, busy-time integral).
#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "util/check.hpp"

namespace sps::sim {
namespace {

TEST(Machine, StartsAllFree) {
  Machine m(128);
  EXPECT_EQ(m.totalProcs(), 128u);
  EXPECT_EQ(m.freeCount(), 128u);
  EXPECT_EQ(m.busyCount(), 0u);
}

TEST(Machine, RejectsZeroOrOversizedMachine) {
  EXPECT_THROW(Machine(0), InvariantError);
  EXPECT_THROW(Machine(Machine::kMaxMachineProcs + 1), InvariantError);
}

TEST(Machine, SupportsMachinesBeyondInlineBits) {
  Machine m(100'000);
  EXPECT_EQ(m.totalProcs(), 100'000u);
  EXPECT_EQ(m.freeCount(), 100'000u);
  const ProcSet a = m.allocate(50'000, 0);
  EXPECT_EQ(a, ProcSet::firstN(50'000));
  EXPECT_EQ(m.freeCount(), 50'000u);
  const ProcSet b = m.allocate(50'000, 0);
  EXPECT_EQ(m.freeCount(), 0u);
  EXPECT_TRUE(b.contains(99'999));
  m.release(a, 10);
  EXPECT_EQ(m.freeCount(), 50'000u);
  m.release(b, 10);
  EXPECT_EQ(m.freeCount(), 100'000u);
  EXPECT_EQ(m.freeSet(), ProcSet::firstN(100'000));
}

TEST(Machine, AllocateTakesLowestFree) {
  Machine m(16);
  const ProcSet a = m.allocate(4, 0);
  EXPECT_EQ(a, ProcSet::firstN(4));
  EXPECT_EQ(m.freeCount(), 12u);
  const ProcSet b = m.allocate(2, 0);
  EXPECT_TRUE(b.contains(4));
  EXPECT_TRUE(b.contains(5));
}

TEST(Machine, ReleaseMakesProcsReusable) {
  Machine m(8);
  const ProcSet a = m.allocate(8, 0);
  EXPECT_EQ(m.freeCount(), 0u);
  m.release(a, 10);
  EXPECT_EQ(m.freeCount(), 8u);
  EXPECT_EQ(m.allocate(8, 10), a);
}

TEST(Machine, AllocateMoreThanFreeThrows) {
  Machine m(4);
  m.allocate(3, 0);
  EXPECT_THROW(m.allocate(2, 0), InvariantError);
}

TEST(Machine, AllocateZeroThrows) {
  Machine m(4);
  EXPECT_THROW(m.allocate(0, 0), InvariantError);
}

TEST(Machine, DoubleReleaseThrows) {
  Machine m(4);
  const ProcSet a = m.allocate(2, 0);
  m.release(a, 1);
  EXPECT_THROW(m.release(a, 2), InvariantError);
}

TEST(Machine, ReleaseOfFreeProcsThrows) {
  Machine m(4);
  ProcSet s;
  s.insert(3);
  EXPECT_THROW(m.release(s, 0), InvariantError);
}

TEST(Machine, AllocateExactTakesRequestedSet) {
  Machine m(16);
  ProcSet want;
  want.insert(3);
  want.insert(9);
  m.allocateExact(want, 0);
  EXPECT_EQ(m.freeCount(), 14u);
  EXPECT_FALSE(m.freeSet().contains(3));
  EXPECT_FALSE(m.freeSet().contains(9));
}

TEST(Machine, AllocateExactOfBusyThrows) {
  Machine m(16);
  const ProcSet a = m.allocate(4, 0);
  EXPECT_THROW(m.allocateExact(a, 0), InvariantError);
}

TEST(Machine, AllocateAvoidingSkipsAvoidSet) {
  Machine m(8);
  ProcSet avoid;
  avoid.insert(0);
  avoid.insert(1);
  const ProcSet got = m.allocateAvoiding(2, avoid, 0);
  EXPECT_TRUE(got.contains(2));
  EXPECT_TRUE(got.contains(3));
  EXPECT_FALSE(got.intersects(avoid));
  // The avoided processors are still free.
  EXPECT_TRUE(avoid.isSubsetOf(m.freeSet()));
}

TEST(Machine, AllocateAvoidingInsufficientThrows) {
  Machine m(4);
  const ProcSet avoid = ProcSet::firstN(3);
  EXPECT_THROW(m.allocateAvoiding(2, avoid, 0), InvariantError);
}

TEST(Machine, BusyIntegralAccumulates) {
  Machine m(10);
  EXPECT_DOUBLE_EQ(m.busyProcSeconds(100), 0.0);
  const ProcSet a = m.allocate(4, 100);   // 4 busy from t=100
  EXPECT_DOUBLE_EQ(m.busyProcSeconds(110), 40.0);
  const ProcSet b = m.allocate(6, 110);   // 10 busy from t=110
  EXPECT_DOUBLE_EQ(m.busyProcSeconds(120), 40.0 + 100.0);
  m.release(a, 120);                      // 6 busy from t=120
  m.release(b, 130);
  EXPECT_DOUBLE_EQ(m.busyProcSeconds(130), 40.0 + 100.0 + 60.0);
  EXPECT_DOUBLE_EQ(m.busyProcSeconds(1000), 200.0);
}

TEST(Machine, TimeMustNotGoBackwards) {
  Machine m(4);
  m.allocate(1, 100);
  EXPECT_THROW(m.allocate(1, 50), InvariantError);
}

TEST(Machine, FullMachineLifecycle) {
  Machine m(430);  // CTC size
  const ProcSet all = m.allocate(430, 0);
  EXPECT_EQ(m.busyCount(), 430u);
  EXPECT_EQ(m.freeCount(), 0u);
  m.release(all, 3600);
  EXPECT_DOUBLE_EQ(m.busyProcSeconds(3600), 430.0 * 3600.0);
}

}  // namespace
}  // namespace sps::sim
