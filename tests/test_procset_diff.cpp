// Differential property suite: the hybrid ProcSet (inline words + dynamic
// window) against a plain reference bitset, over adversarial run patterns —
// runs straddling the inline/window boundary, window prepend/append growth,
// erases that hollow out the window edges (trim canonicality), and algebra
// between sets whose windows are disjoint, nested, or partially overlapping.
// Wired as `ctest -L kernel`: this is the proof obligation that lets every
// layer above treat the representation change as invisible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "sim/procset.hpp"
#include "util/rng.hpp"

namespace sps::sim {
namespace {

/// Reference model: an ordered set of processor IDs. Every ProcSet
/// operation has an obvious, independently-written counterpart here.
class RefSet {
 public:
  void insert(std::uint32_t p) { s_.insert(p); }
  void erase(std::uint32_t p) { s_.erase(p); }
  [[nodiscard]] bool contains(std::uint32_t p) const { return s_.count(p); }
  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(s_.size());
  }
  [[nodiscard]] bool empty() const { return s_.empty(); }

  [[nodiscard]] RefSet unionWith(const RefSet& o) const {
    RefSet r = *this;
    r.s_.insert(o.s_.begin(), o.s_.end());
    return r;
  }
  [[nodiscard]] RefSet intersectWith(const RefSet& o) const {
    RefSet r;
    for (auto p : s_)
      if (o.contains(p)) r.s_.insert(p);
    return r;
  }
  [[nodiscard]] RefSet differenceWith(const RefSet& o) const {
    RefSet r;
    for (auto p : s_)
      if (!o.contains(p)) r.s_.insert(p);
    return r;
  }
  [[nodiscard]] bool intersects(const RefSet& o) const {
    return !intersectWith(o).empty();
  }
  [[nodiscard]] bool isSubsetOf(const RefSet& o) const {
    return differenceWith(o).empty();
  }
  [[nodiscard]] RefSet lowest(std::uint32_t n) const {
    RefSet r;
    auto it = s_.begin();
    for (std::uint32_t i = 0; i < n; ++i) r.s_.insert(*it++);
    return r;
  }
  [[nodiscard]] std::vector<std::uint32_t> members() const {
    return {s_.begin(), s_.end()};
  }

 private:
  std::set<std::uint32_t> s_;
};

/// Full-state agreement check: membership order, count, emptiness.
void expectSame(const ProcSet& got, const RefSet& want) {
  std::vector<std::uint32_t> gotMembers;
  got.forEach([&](std::uint32_t p) { gotMembers.push_back(p); });
  ASSERT_EQ(gotMembers, want.members());
  EXPECT_EQ(got.count(), want.count());
  EXPECT_EQ(got.empty(), want.empty());
  if (!want.empty()) {
    EXPECT_EQ(got.first(), want.members().front());
  }
}

/// Adversarial proc draw: clusters around the representation's fault
/// lines — word boundaries, the inline/window boundary at 1024, and the
/// far end of a 100k machine — plus uniform fill in between.
std::uint32_t adversarialProc(Rng& rng) {
  static constexpr std::uint32_t kHotspots[] = {
      0, 63, 64, 1022, 1023, 1024, 1025, 1087, 1088,
      2048, 4095, 4096, 65'535, 65'536, 99'998, 99'999};
  switch (rng.uniformInt(0, 3)) {
    case 0: {
      constexpr auto n =
          static_cast<std::int64_t>(sizeof(kHotspots) / sizeof(kHotspots[0]));
      return kHotspots[rng.uniformInt(0, n - 1)];
    }
    case 1:  // a run start: multiples of 64 +- 1
      return static_cast<std::uint32_t>(
          std::clamp<std::int64_t>(rng.uniformInt(0, 1562) * 64 +
                                       rng.uniformInt(-1, 1),
                                   0, 99'999));
    default:
      return static_cast<std::uint32_t>(rng.uniformInt(0, 99'999));
  }
}

/// Insert a contiguous run [start, start+len) into both representations.
void insertRun(ProcSet& p, RefSet& r, std::uint32_t start,
               std::uint32_t len) {
  for (std::uint32_t i = 0; i < len && start + i < 100'000; ++i) {
    p.insert(start + i);
    r.insert(start + i);
  }
}

class ProcSetDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProcSetDiff, PointOperationSequence) {
  Rng rng(GetParam());
  ProcSet p;
  RefSet r;
  for (int step = 0; step < 400; ++step) {
    const std::uint32_t proc = adversarialProc(rng);
    if (rng.uniformInt(0, 2) != 0) {
      p.insert(proc);
      r.insert(proc);
    } else {
      p.erase(proc);
      r.erase(proc);
    }
    EXPECT_EQ(p.contains(proc), r.contains(proc));
    if (step % 50 == 49) expectSame(p, r);
  }
  expectSame(p, r);
}

TEST_P(ProcSetDiff, RunPatternSequence) {
  Rng rng(GetParam() * 6151);
  ProcSet p;
  RefSet r;
  for (int step = 0; step < 60; ++step) {
    const std::uint32_t start = adversarialProc(rng);
    const auto len =
        static_cast<std::uint32_t>(rng.uniformInt(1, 200));
    if (rng.uniformInt(0, 2) != 0) {
      insertRun(p, r, start, len);
    } else {
      for (std::uint32_t i = 0; i < len && start + i < 100'000; ++i) {
        p.erase(start + i);
        r.erase(start + i);
      }
    }
  }
  expectSame(p, r);
}

TEST_P(ProcSetDiff, AlgebraOnAdversarialWindows) {
  Rng rng(GetParam() * 31);
  // Build two sets whose windows overlap / nest / miss each other depending
  // on the seed, from runs around the fault lines.
  ProcSet pa, pb;
  RefSet ra, rb;
  for (int i = 0; i < 8; ++i) {
    insertRun(pa, ra, adversarialProc(rng),
              static_cast<std::uint32_t>(rng.uniformInt(1, 150)));
    insertRun(pb, rb, adversarialProc(rng),
              static_cast<std::uint32_t>(rng.uniformInt(1, 150)));
  }
  expectSame(pa | pb, ra.unionWith(rb));
  expectSame(pa & pb, ra.intersectWith(rb));
  expectSame(pa - pb, ra.differenceWith(rb));
  expectSame(pb - pa, rb.differenceWith(ra));
  EXPECT_EQ(pa.intersects(pb), ra.intersects(rb));
  EXPECT_EQ(pa.isSubsetOf(pb), ra.isSubsetOf(rb));
  EXPECT_EQ((pa & pb).isSubsetOf(pa), true);
  // Compound assignment agrees with the binary forms.
  ProcSet u = pa;
  u |= pb;
  EXPECT_EQ(u, pa | pb);
  ProcSet n = pa;
  n &= pb;
  EXPECT_EQ(n, pa & pb);
  ProcSet d = pa;
  d -= pb;
  EXPECT_EQ(d, pa - pb);
}

TEST_P(ProcSetDiff, LowestMatchesReference) {
  Rng rng(GetParam() * 977);
  ProcSet p;
  RefSet r;
  for (int i = 0; i < 10; ++i)
    insertRun(p, r, adversarialProc(rng),
              static_cast<std::uint32_t>(rng.uniformInt(1, 120)));
  const std::uint32_t total = r.count();
  for (std::uint32_t n :
       {std::uint32_t{0}, std::uint32_t{1}, total / 2, total}) {
    expectSame(p.lowest(n), r.lowest(n));
  }
}

TEST_P(ProcSetDiff, EqualityAgreesAfterDivergentHistories) {
  // Build the same member set along two different operation paths (with
  // detours through extra members) — canonical trimming must make the
  // representations structurally identical.
  Rng rng(GetParam() * 409);
  std::vector<std::uint32_t> procs;
  for (int i = 0; i < 50; ++i) procs.push_back(adversarialProc(rng));
  ProcSet fwd, rev;
  for (auto it = procs.begin(); it != procs.end(); ++it) fwd.insert(*it);
  for (auto it = procs.rbegin(); it != procs.rend(); ++it) rev.insert(*it);
  // Detour: push the window edges out and back.
  const std::uint32_t detour = adversarialProc(rng);
  if (std::find(procs.begin(), procs.end(), detour) == procs.end()) {
    rev.insert(detour);
    rev.erase(detour);
  }
  EXPECT_EQ(fwd, rev);
  // And via algebra: carving the set out of firstN(100k).
  ProcSet carved = ProcSet::firstN(100'000);
  carved &= fwd;
  EXPECT_EQ(carved, fwd);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcSetDiff,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace sps::sim
