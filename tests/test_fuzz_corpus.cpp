// Corpus replay (`ctest -L fuzz`): every .repro under tests/corpus/ runs
// through the differential harness — both kernel modes, invariant oracle at
// stride 1 — and must come back clean. The fence-alloc-* files are shrunk
// fuzzer finds (regression tests for fixed bugs); the stress-* files are
// adversarial workloads dumped with `sps_fuzz --dump` to keep every policy
// family exercised here even when the fuzzer has nothing new to say.
// Repros carrying federated directives (shards/router/delay) route through
// fed::diffFederated instead: the case runs as a federation and must equal
// its per-shard single-cluster replays bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/diff_harness.hpp"
#include "fed/fed_diff.hpp"

namespace sps {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpusFiles() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(SPS_CORPUS_DIR))
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, DirectoryIsNotEmpty) {
  EXPECT_GE(corpusFiles().size(), 4u) << "corpus dir: " << SPS_CORPUS_DIR;
}

TEST(FuzzCorpus, EveryReproDiffsClean) {
  const check::DiffHarness harness;  // CheckConfig::all(1)
  for (const fs::path& path : corpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream is(path);
    ASSERT_TRUE(is) << "cannot open " << path;
    check::FuzzCase c;
    ASSERT_NO_THROW(c = check::readRepro(is));
    const check::DiffOutcome outcome =
        c.fedShards > 0 ? fed::diffFederated(c) : harness.diff(c);
    EXPECT_TRUE(outcome.violation.empty()) << outcome.violation;
    EXPECT_TRUE(outcome.divergence.empty()) << outcome.divergence;
  }
}

// At least two corpus entries must keep the federated lane exercised.
TEST(FuzzCorpus, CarriesFederatedRepros) {
  std::size_t federated = 0;
  for (const fs::path& path : corpusFiles()) {
    std::ifstream is(path);
    ASSERT_TRUE(is);
    check::FuzzCase c;
    ASSERT_NO_THROW(c = check::readRepro(is));
    if (c.fedShards > 0) ++federated;
  }
  EXPECT_GE(federated, 2u);
}

// The repro format round-trips: write(read(f)) parses back to the same case.
TEST(FuzzCorpus, ReproFormatRoundTrips) {
  for (const fs::path& path : corpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream is(path);
    ASSERT_TRUE(is);
    check::FuzzCase first;
    ASSERT_NO_THROW(first = check::readRepro(is));

    std::stringstream ss;
    check::writeRepro(ss, first);
    check::FuzzCase second = check::readRepro(ss);

    EXPECT_EQ(first.policyToken, second.policyToken);
    EXPECT_EQ(first.overhead, second.overhead);
    EXPECT_EQ(first.trace.machineProcs, second.trace.machineProcs);
    EXPECT_EQ(first.fedShards, second.fedShards);
    EXPECT_EQ(first.fedRouter, second.fedRouter);
    EXPECT_EQ(first.fedDelay, second.fedDelay);
    ASSERT_EQ(first.trace.jobs.size(), second.trace.jobs.size());
    for (std::size_t i = 0; i < first.trace.jobs.size(); ++i) {
      EXPECT_EQ(first.trace.jobs[i].submit, second.trace.jobs[i].submit);
      EXPECT_EQ(first.trace.jobs[i].runtime, second.trace.jobs[i].runtime);
      EXPECT_EQ(first.trace.jobs[i].estimate, second.trace.jobs[i].estimate);
      EXPECT_EQ(first.trace.jobs[i].procs, second.trace.jobs[i].procs);
    }
  }
}

}  // namespace
}  // namespace sps
